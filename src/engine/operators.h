#ifndef MIP_ENGINE_OPERATORS_H_
#define MIP_ENGINE_OPERATORS_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "engine/exec_context.h"
#include "engine/expr.h"
#include "engine/table.h"

namespace mip::engine {

class FunctionRegistry;

/// \brief One aggregate output in an aggregation: func(arg) AS output_name.
struct AggregateSpec {
  AggFunc func = AggFunc::kCountStar;
  ExprPtr arg;  ///< null for COUNT(*)
  std::string output_name;
};

/// Keeps the rows where `predicate` evaluates non-null true. `predicate`
/// must be bound against table.schema(). Predicate evaluation and selection
/// run per-morsel on `exec` (nullptr => ExecContext::Default()).
Result<Table> Filter(const Table& table, const Expr& predicate,
                     const FunctionRegistry* registry = nullptr,
                     const ExecContext* exec = nullptr);

/// Evaluates each (bound) expression into an output column named by `names`.
Result<Table> Project(const Table& table, const std::vector<ExprPtr>& exprs,
                      const std::vector<std::string>& names,
                      const FunctionRegistry* registry = nullptr,
                      const ExecContext* exec = nullptr);

/// Whole-table aggregation (no grouping): one output row. Rows stream into
/// per-morsel partial states merged in morsel order, so results are
/// bit-identical at any thread count (see ExecContext).
Result<Table> AggregateAll(const Table& table,
                           const std::vector<AggregateSpec>& aggs,
                           const FunctionRegistry* registry = nullptr,
                           const ExecContext* exec = nullptr);

/// Hash group-by aggregation. `keys` are bound grouping expressions surfaced
/// as the first output columns under `key_names`. Each morsel builds a
/// private hash table; partials merge in morsel order, which reproduces the
/// serial scan's first-seen group order and per-group states exactly.
Result<Table> GroupByAggregate(const Table& table,
                               const std::vector<ExprPtr>& keys,
                               const std::vector<std::string>& key_names,
                               const std::vector<AggregateSpec>& aggs,
                               const FunctionRegistry* registry = nullptr,
                               const ExecContext* exec = nullptr);

/// Stable multi-key sort by output-column names. `ascending` parallels
/// `keys`. NULLs sort last.
Result<Table> SortBy(const Table& table, const std::vector<std::string>& keys,
                     const std::vector<bool>& ascending);

enum class JoinType { kInner, kLeft };

/// Single-key hash join; right side is built into the hash table (serial,
/// row order), left side probes morsel-parallel on `exec` with per-morsel
/// match lists concatenated in morsel order — byte-identical at any thread
/// count. Key equality follows the engine's comparison kernels: NULLs (and
/// NaNs) never match, string keys compare as strings, numeric keys through
/// the double view (5 joins 5.0), string-vs-numeric never matches. Output
/// schema = left fields then right fields (right key column included; name
/// collisions get a "_r" suffix).
Result<Table> HashJoin(const Table& left, const Table& right,
                       const std::string& left_key,
                       const std::string& right_key, JoinType type,
                       const ExecContext* exec = nullptr);

/// First `limit` rows after skipping `offset`.
Table Limit(const Table& table, size_t limit, size_t offset = 0);

}  // namespace mip::engine

#endif  // MIP_ENGINE_OPERATORS_H_
