#include "engine/sql_parser.h"

#include <cstdlib>

#include "common/string_util.h"
#include "engine/sql_lexer.h"

namespace mip::engine {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<SqlStatement> ParseStatement() {
    if (Peek().IsKeyword("select")) {
      MIP_ASSIGN_OR_RETURN(SelectStmt s, ParseSelect());
      MIP_RETURN_NOT_OK(ExpectEnd());
      return SqlStatement(std::move(s));
    }
    if (Peek().IsKeyword("explain")) {
      Next();
      ExplainStmt explain;
      MIP_ASSIGN_OR_RETURN(explain.select, ParseSelect());
      MIP_RETURN_NOT_OK(ExpectEnd());
      return SqlStatement(std::move(explain));
    }
    if (Peek().IsKeyword("create")) return ParseCreate();
    if (Peek().IsKeyword("insert")) return ParseInsert();
    if (Peek().IsKeyword("drop")) return ParseDrop();
    return ErrorHere("expected SELECT, EXPLAIN, CREATE, INSERT or DROP");
  }

  Result<ExprPtr> ParseStandaloneExpression() {
    MIP_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    MIP_RETURN_NOT_OK(ExpectEnd());
    return e;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    const size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }
  const Token& Next() {
    const Token& t = Peek();
    if (pos_ + 1 < tokens_.size()) ++pos_;
    return t;
  }
  bool AcceptSymbol(const char* s) {
    if (Peek().IsSymbol(s)) {
      Next();
      return true;
    }
    return false;
  }
  bool AcceptKeyword(const char* kw) {
    if (Peek().IsKeyword(kw)) {
      Next();
      return true;
    }
    return false;
  }
  Status ExpectSymbol(const char* s) {
    if (!AcceptSymbol(s)) {
      return Status::ParseError(std::string("expected '") + s + "' near '" +
                                Peek().text + "' (offset " +
                                std::to_string(Peek().position) + ")");
    }
    return Status::OK();
  }
  Status ExpectKeyword(const char* kw) {
    if (!AcceptKeyword(kw)) {
      return Status::ParseError(std::string("expected ") + kw + " near '" +
                                Peek().text + "'");
    }
    return Status::OK();
  }
  Status ExpectEnd() {
    AcceptSymbol(";");
    if (Peek().type != TokenType::kEnd) {
      return Status::ParseError("unexpected trailing input near '" +
                                Peek().text + "'");
    }
    return Status::OK();
  }
  Status ErrorHere(const std::string& msg) const {
    return Status::ParseError(msg + " near '" + Peek().text + "' (offset " +
                              std::to_string(Peek().position) + ")");
  }
  Result<std::string> ExpectIdentifier() {
    if (Peek().type != TokenType::kIdentifier) {
      return Status::ParseError("expected identifier near '" + Peek().text +
                                "'");
    }
    return Next().text;
  }

  // --- Expressions ---------------------------------------------------------

  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    MIP_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (Peek().IsKeyword("or")) {
      Next();
      MIP_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      lhs = Binary(BinaryOp::kOr, lhs, rhs);
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    MIP_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
    while (Peek().IsKeyword("and")) {
      Next();
      MIP_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
      lhs = Binary(BinaryOp::kAnd, lhs, rhs);
    }
    return lhs;
  }

  Result<ExprPtr> ParseNot() {
    if (Peek().IsKeyword("not")) {
      Next();
      MIP_ASSIGN_OR_RETURN(ExprPtr operand, ParseNot());
      return Unary(UnaryOp::kNot, operand);
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    MIP_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
    if (Peek().IsKeyword("is")) {
      Next();
      const bool negated = AcceptKeyword("not");
      MIP_RETURN_NOT_OK(ExpectKeyword("null"));
      return Unary(negated ? UnaryOp::kIsNotNull : UnaryOp::kIsNull, lhs);
    }
    // [NOT] BETWEEN / IN / LIKE.
    bool negated = false;
    if (Peek().IsKeyword("not") &&
        (Peek(1).IsKeyword("between") || Peek(1).IsKeyword("in") ||
         Peek(1).IsKeyword("like"))) {
      Next();
      negated = true;
    }
    if (AcceptKeyword("between")) {
      MIP_ASSIGN_OR_RETURN(ExprPtr lo, ParseAdditive());
      MIP_RETURN_NOT_OK(ExpectKeyword("and"));
      MIP_ASSIGN_OR_RETURN(ExprPtr hi, ParseAdditive());
      ExprPtr range = And(Binary(BinaryOp::kGe, lhs, lo),
                          Binary(BinaryOp::kLe, lhs, hi));
      return negated ? Unary(UnaryOp::kNot, range) : range;
    }
    if (AcceptKeyword("in")) {
      MIP_RETURN_NOT_OK(ExpectSymbol("("));
      ExprPtr any;
      for (;;) {
        MIP_ASSIGN_OR_RETURN(ExprPtr item, ParseAdditive());
        ExprPtr match = Eq(lhs, item);
        any = any == nullptr ? match : Or(any, match);
        if (AcceptSymbol(")")) break;
        MIP_RETURN_NOT_OK(ExpectSymbol(","));
      }
      return negated ? Unary(UnaryOp::kNot, any) : any;
    }
    if (AcceptKeyword("like")) {
      MIP_ASSIGN_OR_RETURN(ExprPtr pattern, ParseAdditive());
      ExprPtr match = Call("like", {lhs, pattern});
      return negated ? Unary(UnaryOp::kNot, match) : match;
    }
    struct OpMap {
      const char* sym;
      BinaryOp op;
    };
    static const OpMap kOps[] = {{"=", BinaryOp::kEq},  {"<>", BinaryOp::kNe},
                                 {"<=", BinaryOp::kLe}, {">=", BinaryOp::kGe},
                                 {"<", BinaryOp::kLt},  {">", BinaryOp::kGt}};
    for (const OpMap& m : kOps) {
      if (Peek().IsSymbol(m.sym)) {
        Next();
        MIP_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
        return Binary(m.op, lhs, rhs);
      }
    }
    return lhs;
  }

  Result<ExprPtr> ParseAdditive() {
    MIP_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
    for (;;) {
      if (Peek().IsSymbol("+")) {
        Next();
        MIP_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
        lhs = Binary(BinaryOp::kAdd, lhs, rhs);
      } else if (Peek().IsSymbol("-")) {
        Next();
        MIP_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
        lhs = Binary(BinaryOp::kSub, lhs, rhs);
      } else {
        return lhs;
      }
    }
  }

  Result<ExprPtr> ParseMultiplicative() {
    MIP_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    for (;;) {
      BinaryOp op;
      if (Peek().IsSymbol("*")) {
        op = BinaryOp::kMul;
      } else if (Peek().IsSymbol("/")) {
        op = BinaryOp::kDiv;
      } else if (Peek().IsSymbol("%")) {
        op = BinaryOp::kMod;
      } else {
        return lhs;
      }
      Next();
      MIP_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
      lhs = Binary(op, lhs, rhs);
    }
  }

  Result<ExprPtr> ParseUnary() {
    if (Peek().IsSymbol("-")) {
      Next();
      MIP_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
      // Fold negation into numeric literals for cleaner plans.
      if (operand->kind == ExprKind::kLiteral) {
        if (operand->literal.kind() == Value::Kind::kInt) {
          return Lit(Value::Int(-operand->literal.int_value()));
        }
        if (operand->literal.kind() == Value::Kind::kDouble) {
          return Lit(Value::Double(-operand->literal.double_value()));
        }
      }
      return Unary(UnaryOp::kNeg, operand);
    }
    if (Peek().IsSymbol("+")) Next();
    return ParsePrimary();
  }

  static bool AggFromName(const std::string& lower, AggFunc* out) {
    if (lower == "count") {
      *out = AggFunc::kCount;
    } else if (lower == "sum") {
      *out = AggFunc::kSum;
    } else if (lower == "avg") {
      *out = AggFunc::kAvg;
    } else if (lower == "min") {
      *out = AggFunc::kMin;
    } else if (lower == "max") {
      *out = AggFunc::kMax;
    } else if (lower == "var_samp" || lower == "variance") {
      *out = AggFunc::kVarSamp;
    } else if (lower == "stddev_samp" || lower == "stddev") {
      *out = AggFunc::kStddevSamp;
    } else {
      return false;
    }
    return true;
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& t = Peek();
    switch (t.type) {
      case TokenType::kInteger: {
        Next();
        return Lit(Value::Int(std::strtoll(t.text.c_str(), nullptr, 10)));
      }
      case TokenType::kFloat: {
        Next();
        return Lit(Value::Double(std::strtod(t.text.c_str(), nullptr)));
      }
      case TokenType::kString: {
        Next();
        return Lit(Value::String(t.text));
      }
      case TokenType::kIdentifier: {
        if (t.IsKeyword("true")) {
          Next();
          return Lit(Value::Bool(true));
        }
        if (t.IsKeyword("false")) {
          Next();
          return Lit(Value::Bool(false));
        }
        if (t.IsKeyword("null")) {
          Next();
          return Lit(Value::Null());
        }
        if (t.IsKeyword("case")) return ParseCase();
        if (t.IsKeyword("cast")) return ParseCast();
        const std::string name = Next().text;
        if (AcceptSymbol("(")) {
          // Aggregate or scalar function call.
          const std::string lower = ToLower(name);
          AggFunc agg;
          if (AggFromName(lower, &agg)) {
            if (agg == AggFunc::kCount && AcceptSymbol("*")) {
              MIP_RETURN_NOT_OK(ExpectSymbol(")"));
              return CountStar();
            }
            if (agg == AggFunc::kCount && AcceptKeyword("distinct")) {
              agg = AggFunc::kCountDistinct;
            }
            MIP_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
            MIP_RETURN_NOT_OK(ExpectSymbol(")"));
            return Aggregate(agg, arg);
          }
          std::vector<ExprPtr> args;
          if (!AcceptSymbol(")")) {
            for (;;) {
              MIP_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
              args.push_back(std::move(arg));
              if (AcceptSymbol(")")) break;
              MIP_RETURN_NOT_OK(ExpectSymbol(","));
            }
          }
          return Call(name, std::move(args));
        }
        // Optional table qualifier: "t.col" -> "col" (single-table dialect).
        if (AcceptSymbol(".")) {
          MIP_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
          return Col(col);
        }
        return Col(name);
      }
      case TokenType::kSymbol:
        if (t.IsSymbol("(")) {
          Next();
          MIP_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
          MIP_RETURN_NOT_OK(ExpectSymbol(")"));
          return inner;
        }
        break;
      case TokenType::kEnd:
        break;
    }
    return ErrorHere("expected expression");
  }

  Result<ExprPtr> ParseCase() {
    MIP_RETURN_NOT_OK(ExpectKeyword("case"));
    std::vector<ExprPtr> args;
    if (!Peek().IsKeyword("when")) {
      return ErrorHere("only searched CASE (CASE WHEN ...) is supported");
    }
    while (AcceptKeyword("when")) {
      MIP_ASSIGN_OR_RETURN(ExprPtr cond, ParseExpr());
      MIP_RETURN_NOT_OK(ExpectKeyword("then"));
      MIP_ASSIGN_OR_RETURN(ExprPtr value, ParseExpr());
      args.push_back(std::move(cond));
      args.push_back(std::move(value));
    }
    if (AcceptKeyword("else")) {
      MIP_ASSIGN_OR_RETURN(ExprPtr other, ParseExpr());
      args.push_back(std::move(other));
    }
    MIP_RETURN_NOT_OK(ExpectKeyword("end"));
    return CaseWhen(std::move(args));
  }

  Result<ExprPtr> ParseCast() {
    MIP_RETURN_NOT_OK(ExpectKeyword("cast"));
    MIP_RETURN_NOT_OK(ExpectSymbol("("));
    MIP_ASSIGN_OR_RETURN(ExprPtr operand, ParseExpr());
    MIP_RETURN_NOT_OK(ExpectKeyword("as"));
    MIP_ASSIGN_OR_RETURN(DataType type, ParseColumnType());
    MIP_RETURN_NOT_OK(ExpectSymbol(")"));
    const char* fn = "cast_double";
    switch (type) {
      case DataType::kInt64:
        fn = "cast_bigint";
        break;
      case DataType::kString:
        fn = "cast_varchar";
        break;
      case DataType::kBool:
      case DataType::kFloat64:
        fn = "cast_double";
        break;
    }
    return Call(fn, {operand});
  }

  // --- Statements ----------------------------------------------------------

  Result<SelectStmt> ParseSelect() {
    MIP_RETURN_NOT_OK(ExpectKeyword("select"));
    SelectStmt stmt;
    stmt.distinct = AcceptKeyword("distinct");
    for (;;) {
      SelectItem item;
      if (AcceptSymbol("*")) {
        item.star = true;
      } else {
        MIP_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (AcceptKeyword("as")) {
          MIP_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier());
        } else if (Peek().type == TokenType::kIdentifier &&
                   !Peek().IsKeyword("from")) {
          // Bare alias.
          item.alias = Next().text;
        }
      }
      stmt.items.push_back(std::move(item));
      if (!AcceptSymbol(",")) break;
    }
    MIP_RETURN_NOT_OK(ExpectKeyword("from"));
    MIP_ASSIGN_OR_RETURN(stmt.from, ParseTableRef());

    if (AcceptKeyword("where")) {
      MIP_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
    }
    if (AcceptKeyword("group")) {
      MIP_RETURN_NOT_OK(ExpectKeyword("by"));
      for (;;) {
        MIP_ASSIGN_OR_RETURN(ExprPtr key, ParseExpr());
        stmt.group_by.push_back(std::move(key));
        if (!AcceptSymbol(",")) break;
      }
    }
    if (AcceptKeyword("having")) {
      MIP_ASSIGN_OR_RETURN(stmt.having, ParseExpr());
    }
    if (AcceptKeyword("order")) {
      MIP_RETURN_NOT_OK(ExpectKeyword("by"));
      for (;;) {
        OrderItem item;
        MIP_ASSIGN_OR_RETURN(item.column, ExpectIdentifier());
        if (AcceptKeyword("desc")) {
          item.ascending = false;
        } else {
          AcceptKeyword("asc");
        }
        stmt.order_by.push_back(std::move(item));
        if (!AcceptSymbol(",")) break;
      }
    }
    if (AcceptKeyword("limit")) {
      if (Peek().type != TokenType::kInteger) {
        return ErrorHere("expected integer after LIMIT");
      }
      stmt.limit = std::strtoll(Next().text.c_str(), nullptr, 10);
    }
    return stmt;
  }

  Result<std::shared_ptr<TableRef>> ParseTableRef() {
    auto ref = std::make_shared<TableRef>();
    MIP_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier());
    if (AcceptSymbol("(")) {
      // Table function call with literal arguments.
      ref->kind = TableRef::Kind::kFunction;
      ref->func_name = name;
      if (!AcceptSymbol(")")) {
        for (;;) {
          MIP_ASSIGN_OR_RETURN(Value v, ParseLiteralValue());
          ref->func_args.push_back(std::move(v));
          if (AcceptSymbol(")")) break;
          MIP_RETURN_NOT_OK(ExpectSymbol(","));
        }
      }
      return ref;
    }
    ref->kind = TableRef::Kind::kNamed;
    ref->name = name;
    // Zero or more JOIN clauses, folded into a left-deep tree:
    // a JOIN b ON .. JOIN c ON ..  =>  Join(Join(a, b), c).
    for (;;) {
      bool left_join = false;
      if (Peek().IsKeyword("left")) {
        left_join = true;
        Next();
        AcceptKeyword("outer");
      } else if (Peek().IsKeyword("inner")) {
        Next();
      }
      if (!AcceptKeyword("join")) {
        if (left_join) return ErrorHere("expected JOIN after LEFT");
        return ref;
      }
      auto join = std::make_shared<TableRef>();
      join->kind = TableRef::Kind::kJoin;
      join->join_type = left_join ? JoinType::kLeft : JoinType::kInner;
      join->left = ref;
      auto right = std::make_shared<TableRef>();
      right->kind = TableRef::Kind::kNamed;
      MIP_ASSIGN_OR_RETURN(right->name, ExpectIdentifier());
      join->right = right;
      MIP_RETURN_NOT_OK(ExpectKeyword("on"));
      // ON [t.]a = [u.]b
      MIP_ASSIGN_OR_RETURN(std::string a, ExpectIdentifier());
      if (AcceptSymbol(".")) {
        MIP_ASSIGN_OR_RETURN(a, ExpectIdentifier());
      }
      MIP_RETURN_NOT_OK(ExpectSymbol("="));
      MIP_ASSIGN_OR_RETURN(std::string b, ExpectIdentifier());
      if (AcceptSymbol(".")) {
        MIP_ASSIGN_OR_RETURN(b, ExpectIdentifier());
      }
      join->left_key = a;
      join->right_key = b;
      ref = join;
    }
  }

  Result<Value> ParseLiteralValue() {
    bool negative = false;
    if (AcceptSymbol("-")) negative = true;
    const Token& t = Peek();
    switch (t.type) {
      case TokenType::kInteger: {
        Next();
        const int64_t v = std::strtoll(t.text.c_str(), nullptr, 10);
        return Value::Int(negative ? -v : v);
      }
      case TokenType::kFloat: {
        Next();
        const double v = std::strtod(t.text.c_str(), nullptr);
        return Value::Double(negative ? -v : v);
      }
      case TokenType::kString:
        if (negative) return ErrorHere("cannot negate a string literal");
        Next();
        return Value::String(t.text);
      case TokenType::kIdentifier:
        if (negative) return ErrorHere("cannot negate this literal");
        if (t.IsKeyword("null")) {
          Next();
          return Value::Null();
        }
        if (t.IsKeyword("true")) {
          Next();
          return Value::Bool(true);
        }
        if (t.IsKeyword("false")) {
          Next();
          return Value::Bool(false);
        }
        break;
      default:
        break;
    }
    return ErrorHere("expected literal value");
  }

  Result<DataType> ParseColumnType() {
    MIP_ASSIGN_OR_RETURN(std::string type_name, ExpectIdentifier());
    const std::string lower = ToLower(type_name);
    if (lower == "bigint" || lower == "int" || lower == "integer") {
      return DataType::kInt64;
    }
    if (lower == "double" || lower == "real" || lower == "float") {
      // Optional "double precision".
      if (lower == "double") AcceptKeyword("precision");
      return DataType::kFloat64;
    }
    if (lower == "boolean" || lower == "bool") return DataType::kBool;
    if (lower == "varchar" || lower == "text" || lower == "string") {
      if (AcceptSymbol("(")) {  // varchar(n): length ignored
        Next();
        MIP_RETURN_NOT_OK(ExpectSymbol(")"));
      }
      return DataType::kString;
    }
    return Status::ParseError("unknown column type '" + type_name + "'");
  }

  Result<SqlStatement> ParseCreate() {
    MIP_RETURN_NOT_OK(ExpectKeyword("create"));
    if (AcceptKeyword("remote")) {
      MIP_RETURN_NOT_OK(ExpectKeyword("table"));
      CreateRemoteTableStmt stmt;
      MIP_ASSIGN_OR_RETURN(stmt.name, ExpectIdentifier());
      MIP_RETURN_NOT_OK(ExpectKeyword("on"));
      if (Peek().type != TokenType::kString) {
        return ErrorHere("expected quoted location after ON");
      }
      stmt.location = Next().text;
      stmt.remote_name = stmt.name;
      if (AcceptKeyword("as")) {
        MIP_ASSIGN_OR_RETURN(stmt.remote_name, ExpectIdentifier());
      }
      MIP_RETURN_NOT_OK(ExpectEnd());
      return SqlStatement(std::move(stmt));
    }
    if (AcceptKeyword("merge")) {
      MIP_RETURN_NOT_OK(ExpectKeyword("table"));
      CreateMergeTableStmt stmt;
      MIP_ASSIGN_OR_RETURN(stmt.name, ExpectIdentifier());
      MIP_RETURN_NOT_OK(ExpectSymbol("("));
      for (;;) {
        MIP_ASSIGN_OR_RETURN(std::string part, ExpectIdentifier());
        stmt.parts.push_back(std::move(part));
        if (AcceptSymbol(")")) break;
        MIP_RETURN_NOT_OK(ExpectSymbol(","));
      }
      MIP_RETURN_NOT_OK(ExpectEnd());
      return SqlStatement(std::move(stmt));
    }
    MIP_RETURN_NOT_OK(ExpectKeyword("table"));
    CreateTableStmt stmt;
    MIP_ASSIGN_OR_RETURN(stmt.name, ExpectIdentifier());
    MIP_RETURN_NOT_OK(ExpectSymbol("("));
    for (;;) {
      Field f;
      MIP_ASSIGN_OR_RETURN(f.name, ExpectIdentifier());
      MIP_ASSIGN_OR_RETURN(f.type, ParseColumnType());
      stmt.fields.push_back(std::move(f));
      if (AcceptSymbol(")")) break;
      MIP_RETURN_NOT_OK(ExpectSymbol(","));
    }
    MIP_RETURN_NOT_OK(ExpectEnd());
    return SqlStatement(std::move(stmt));
  }

  Result<SqlStatement> ParseInsert() {
    MIP_RETURN_NOT_OK(ExpectKeyword("insert"));
    MIP_RETURN_NOT_OK(ExpectKeyword("into"));
    InsertStmt stmt;
    MIP_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier());
    MIP_RETURN_NOT_OK(ExpectKeyword("values"));
    for (;;) {
      MIP_RETURN_NOT_OK(ExpectSymbol("("));
      std::vector<Value> row;
      for (;;) {
        MIP_ASSIGN_OR_RETURN(Value v, ParseLiteralValue());
        row.push_back(std::move(v));
        if (AcceptSymbol(")")) break;
        MIP_RETURN_NOT_OK(ExpectSymbol(","));
      }
      stmt.rows.push_back(std::move(row));
      if (!AcceptSymbol(",")) break;
    }
    MIP_RETURN_NOT_OK(ExpectEnd());
    return SqlStatement(std::move(stmt));
  }

  Result<SqlStatement> ParseDrop() {
    MIP_RETURN_NOT_OK(ExpectKeyword("drop"));
    MIP_RETURN_NOT_OK(ExpectKeyword("table"));
    DropTableStmt stmt;
    MIP_ASSIGN_OR_RETURN(stmt.name, ExpectIdentifier());
    MIP_RETURN_NOT_OK(ExpectEnd());
    return SqlStatement(std::move(stmt));
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<SqlStatement> ParseSql(const std::string& sql) {
  MIP_ASSIGN_OR_RETURN(std::vector<Token> tokens, LexSql(sql));
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

Result<ExprPtr> ParseExpression(const std::string& text) {
  MIP_ASSIGN_OR_RETURN(std::vector<Token> tokens, LexSql(text));
  Parser parser(std::move(tokens));
  return parser.ParseStandaloneExpression();
}

}  // namespace mip::engine
