#ifndef MIP_ENGINE_ENCODING_H_
#define MIP_ENGINE_ENCODING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "engine/bitmap.h"

namespace mip::engine {

/// \brief Light-weight columnar codecs for federated transfers.
///
/// Every encoded column is a self-describing block:
///
///   u8      codec        one of Codec below
///   varint  count        element count
///   u8[...] payload      codec-specific
///
/// The encoder tries every codec applicable to the value type, measures the
/// candidates, and keeps the smallest — raw is always a candidate, so the
/// block never exceeds the fixed-width layout by more than the header. The
/// decoder trusts nothing: counts are capped, varints are length-limited,
/// dictionary indices are range-checked and RLE runs must tile the block
/// exactly, so a corrupt or hostile payload yields a clean Status (the same
/// hardening bar as the frame/envelope deserializers in src/net).
///
/// Codec applicability by value type:
///   int64   kRaw, kDeltaVarint (zigzag of consecutive deltas)
///   double  kRaw, kXorDouble   (varint of bits XOR previous bits)
///   bool    kRaw, kRle         ((value byte, varint run length) pairs)
///   string  kRaw, kDict        (first-appearance dictionary + indices;
///                               only when distinct values fit kDictMaxEntries)
///   validity bitmaps encode as bool columns of their bits.
enum class Codec : uint8_t {
  kRaw = 0,
  kRle = 1,
  kDict = 2,
  kDeltaVarint = 3,
  kXorDouble = 4,
};

/// Dictionary spill threshold: a string column with more distinct values
/// falls back to raw (the indices would approach the data size anyway).
inline constexpr size_t kDictMaxEntries = 64 * 1024;

/// Ceiling on any decoded element count — defends decode-side allocations
/// against hostile counts the same way kDefaultMaxFramePayload defends the
/// frame layer (2^26 elements * 8 bytes = 512 MiB, past the frame cap).
inline constexpr uint64_t kMaxWireElements = 1ull << 26;

/// LEB128 unsigned varint (at most 10 bytes for a u64).
void PutVarint(BufferWriter* w, uint64_t v);
Result<uint64_t> GetVarint(BufferReader* r);
/// Encoded size of one varint without writing it.
size_t VarintSize(uint64_t v);

/// Zigzag mapping: small magnitudes (of either sign) get small varints.
inline uint64_t ZigZagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ (v < 0 ? ~0ull : 0ull);
}
inline int64_t ZigZagDecode(uint64_t u) {
  return static_cast<int64_t>((u >> 1) ^ (~(u & 1) + 1));
}

// --- Encoders: write one self-describing block, return the codec chosen. ---
Codec EncodeInts(const std::vector<int64_t>& values, BufferWriter* w);
Codec EncodeDoubles(const std::vector<double>& values, BufferWriter* w);
Codec EncodeBools(const std::vector<uint8_t>& values, BufferWriter* w);
Codec EncodeStrings(const std::vector<std::string>& values, BufferWriter* w);
Codec EncodeValidity(const Bitmap& validity, BufferWriter* w);

// --- Decoders: bounds-checked inverses of the encoders above. ---
Result<std::vector<int64_t>> DecodeInts(BufferReader* r);
Result<std::vector<double>> DecodeDoubles(BufferReader* r);
Result<std::vector<uint8_t>> DecodeBools(BufferReader* r);
Result<std::vector<std::string>> DecodeStrings(BufferReader* r);
Result<Bitmap> DecodeValidity(BufferReader* r);

}  // namespace mip::engine

#endif  // MIP_ENGINE_ENCODING_H_
