#include "engine/table.h"

#include <sstream>

#include "common/string_util.h"

namespace mip::engine {

int Schema::FieldIndex(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (EqualsIgnoreCase(fields_[i].name, name)) return static_cast<int>(i);
  }
  return -1;
}

Status Schema::AddField(Field field) {
  if (FieldIndex(field.name) >= 0) {
    return Status::AlreadyExists("duplicate field '" + field.name + "'");
  }
  fields_.push_back(std::move(field));
  return Status::OK();
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].name;
    out += " ";
    out += DataTypeName(fields_[i].type);
  }
  out += ")";
  return out;
}

Result<Table> Table::Make(Schema schema, std::vector<Column> columns) {
  if (schema.num_fields() != columns.size()) {
    return Status::InvalidArgument("schema/column count mismatch");
  }
  size_t rows = columns.empty() ? 0 : columns[0].length();
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].type() != schema.field(i).type) {
      return Status::TypeError("column " + std::to_string(i) +
                               " type does not match schema field '" +
                               schema.field(i).name + "'");
    }
    if (columns[i].length() != rows) {
      return Status::InvalidArgument("column lengths differ");
    }
  }
  Table t;
  t.schema_ = std::move(schema);
  t.columns_ = std::move(columns);
  t.num_rows_ = rows;
  return t;
}

Table Table::Empty(Schema schema) {
  Table t;
  for (const Field& f : schema.fields()) t.columns_.emplace_back(f.type);
  t.schema_ = std::move(schema);
  return t;
}

Result<const Column*> Table::ColumnByName(const std::string& name) const {
  const int idx = schema_.FieldIndex(name);
  if (idx < 0) return Status::NotFound("no column named '" + name + "'");
  return &columns_[static_cast<size_t>(idx)];
}

Status Table::AppendRow(const std::vector<Value>& row) {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument("row width mismatch");
  }
  for (size_t i = 0; i < row.size(); ++i) {
    MIP_RETURN_NOT_OK(columns_[i].AppendValue(row[i]));
  }
  ++num_rows_;
  return Status::OK();
}

Table Table::Take(const std::vector<int64_t>& indices) const {
  Table t;
  t.schema_ = schema_;
  for (const Column& c : columns_) t.columns_.push_back(c.Take(indices));
  t.num_rows_ = indices.size();
  return t;
}

Table Table::Slice(size_t offset, size_t count) const {
  std::vector<int64_t> idx;
  for (size_t i = offset; i < offset + count && i < num_rows_; ++i) {
    idx.push_back(static_cast<int64_t>(i));
  }
  return Take(idx);
}

Result<Table> Table::Concat(const std::vector<Table>& parts) {
  if (parts.empty()) return Status::InvalidArgument("Concat of zero tables");
  Table out = Table::Empty(parts[0].schema());
  for (const Table& part : parts) {
    if (part.num_columns() != out.num_columns()) {
      return Status::TypeError("Concat schema mismatch (column count)");
    }
    for (size_t c = 0; c < part.num_columns(); ++c) {
      if (part.column(c).type() != out.column(c).type()) {
        return Status::TypeError("Concat schema mismatch (column type)");
      }
    }
    for (size_t r = 0; r < part.num_rows(); ++r) {
      std::vector<Value> row;
      row.reserve(part.num_columns());
      for (size_t c = 0; c < part.num_columns(); ++c) {
        row.push_back(part.At(r, c));
      }
      MIP_RETURN_NOT_OK(out.AppendRow(row));
    }
  }
  return out;
}

std::string Table::ToString(size_t max_rows) const {
  std::ostringstream os;
  for (size_t i = 0; i < schema_.num_fields(); ++i) {
    if (i > 0) os << " | ";
    os << schema_.field(i).name;
  }
  os << "\n";
  const size_t rows = std::min(num_rows_, max_rows);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < columns_.size(); ++c) {
      if (c > 0) os << " | ";
      os << At(r, c).ToString();
    }
    os << "\n";
  }
  if (num_rows_ > rows) {
    os << "... (" << num_rows_ - rows << " more rows)\n";
  }
  return os.str();
}

void SerializeTable(const Table& table, BufferWriter* w) {
  w->WriteU32(static_cast<uint32_t>(table.num_columns()));
  w->WriteU64(table.num_rows());
  for (size_t c = 0; c < table.num_columns(); ++c) {
    const Field& f = table.schema().field(c);
    w->WriteString(f.name);
    w->WriteU8(static_cast<uint8_t>(f.type));
    const Column& col = table.column(c);
    w->WriteBool(col.has_validity());
    if (col.has_validity()) {
      std::vector<uint64_t> words = col.validity().words();
      w->WriteU64Vector(words);
    }
    switch (f.type) {
      case DataType::kBool: {
        w->WriteU32(static_cast<uint32_t>(col.bools().size()));
        w->AppendRaw(col.bools().data(), col.bools().size());
        break;
      }
      case DataType::kInt64:
        w->WriteI64Vector(col.ints());
        break;
      case DataType::kFloat64:
        w->WriteDoubleVector(col.doubles());
        break;
      case DataType::kString: {
        w->WriteU32(static_cast<uint32_t>(col.strings().size()));
        for (const std::string& s : col.strings()) w->WriteString(s);
        break;
      }
    }
  }
}

Result<Table> DeserializeTable(BufferReader* r) {
  MIP_ASSIGN_OR_RETURN(uint32_t num_cols, r->ReadU32());
  MIP_ASSIGN_OR_RETURN(uint64_t num_rows, r->ReadU64());
  Schema schema;
  std::vector<Column> columns;
  for (uint32_t c = 0; c < num_cols; ++c) {
    MIP_ASSIGN_OR_RETURN(std::string name, r->ReadString());
    MIP_ASSIGN_OR_RETURN(uint8_t type_byte, r->ReadU8());
    if (type_byte > static_cast<uint8_t>(DataType::kString)) {
      return Status::IOError("table wire format has unknown column type " +
                             std::to_string(type_byte));
    }
    const DataType type = static_cast<DataType>(type_byte);
    MIP_RETURN_NOT_OK(schema.AddField(Field{name, type}));
    MIP_ASSIGN_OR_RETURN(bool has_validity, r->ReadBool());
    Bitmap validity;
    if (has_validity) {
      MIP_ASSIGN_OR_RETURN(std::vector<uint64_t> words, r->ReadU64Vector());
      if (words.size() * 64 < num_rows) {
        return Status::IOError("table validity bitmap shorter than row count");
      }
      validity = Bitmap(num_rows, true);
      for (size_t i = 0; i < num_rows; ++i) {
        const bool bit = (words[i >> 6] >> (i & 63)) & 1ull;
        validity.Set(i, bit);
      }
    }
    Column col(type);
    switch (type) {
      case DataType::kBool: {
        MIP_ASSIGN_OR_RETURN(uint32_t n, r->ReadU32());
        if (n > r->Remaining()) {
          return Status::IOError("truncated buffer while deserializing");
        }
        std::vector<uint8_t> vals(n);
        for (uint32_t i = 0; i < n; ++i) {
          MIP_ASSIGN_OR_RETURN(vals[i], r->ReadU8());
        }
        col = Column::FromBools(std::move(vals));
        break;
      }
      case DataType::kInt64: {
        MIP_ASSIGN_OR_RETURN(std::vector<int64_t> vals, r->ReadI64Vector());
        col = Column::FromInts(std::move(vals));
        break;
      }
      case DataType::kFloat64: {
        MIP_ASSIGN_OR_RETURN(std::vector<double> vals, r->ReadDoubleVector());
        col = Column::FromDoubles(std::move(vals));
        break;
      }
      case DataType::kString: {
        MIP_ASSIGN_OR_RETURN(uint32_t n, r->ReadU32());
        if (static_cast<size_t>(n) > r->Remaining() / sizeof(uint32_t)) {
          return Status::IOError("truncated buffer while deserializing");
        }
        std::vector<std::string> vals(n);
        for (uint32_t i = 0; i < n; ++i) {
          MIP_ASSIGN_OR_RETURN(vals[i], r->ReadString());
        }
        col = Column::FromStrings(std::move(vals));
        break;
      }
    }
    if (has_validity) MIP_RETURN_NOT_OK(col.SetValidity(std::move(validity)));
    columns.push_back(std::move(col));
  }
  return Table::Make(std::move(schema), std::move(columns));
}

}  // namespace mip::engine
