#include "engine/table.h"

#include <sstream>

#include "common/string_util.h"
#include "engine/encoding.h"

namespace mip::engine {

int Schema::FieldIndex(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (EqualsIgnoreCase(fields_[i].name, name)) return static_cast<int>(i);
  }
  return -1;
}

Status Schema::AddField(Field field) {
  if (FieldIndex(field.name) >= 0) {
    return Status::AlreadyExists("duplicate field '" + field.name + "'");
  }
  fields_.push_back(std::move(field));
  return Status::OK();
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].name;
    out += " ";
    out += DataTypeName(fields_[i].type);
  }
  out += ")";
  return out;
}

Result<Table> Table::Make(Schema schema, std::vector<Column> columns) {
  if (schema.num_fields() != columns.size()) {
    return Status::InvalidArgument("schema/column count mismatch");
  }
  size_t rows = columns.empty() ? 0 : columns[0].length();
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].type() != schema.field(i).type) {
      return Status::TypeError("column " + std::to_string(i) +
                               " type does not match schema field '" +
                               schema.field(i).name + "'");
    }
    if (columns[i].length() != rows) {
      return Status::InvalidArgument("column lengths differ");
    }
  }
  Table t;
  t.schema_ = std::move(schema);
  t.columns_ = std::move(columns);
  t.num_rows_ = rows;
  return t;
}

Table Table::Empty(Schema schema) {
  Table t;
  for (const Field& f : schema.fields()) t.columns_.emplace_back(f.type);
  t.schema_ = std::move(schema);
  return t;
}

Result<const Column*> Table::ColumnByName(const std::string& name) const {
  const int idx = schema_.FieldIndex(name);
  if (idx < 0) return Status::NotFound("no column named '" + name + "'");
  return &columns_[static_cast<size_t>(idx)];
}

Status Table::AppendRow(const std::vector<Value>& row) {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument("row width mismatch");
  }
  for (size_t i = 0; i < row.size(); ++i) {
    MIP_RETURN_NOT_OK(columns_[i].AppendValue(row[i]));
  }
  ++num_rows_;
  return Status::OK();
}

Table Table::Take(const std::vector<int64_t>& indices) const {
  Table t;
  t.schema_ = schema_;
  for (const Column& c : columns_) t.columns_.push_back(c.Take(indices));
  t.num_rows_ = indices.size();
  return t;
}

Table Table::Slice(size_t offset, size_t count) const {
  std::vector<int64_t> idx;
  for (size_t i = offset; i < offset + count && i < num_rows_; ++i) {
    idx.push_back(static_cast<int64_t>(i));
  }
  return Take(idx);
}

Result<Table> Table::Concat(const std::vector<Table>& parts) {
  if (parts.empty()) return Status::InvalidArgument("Concat of zero tables");
  Table out = Table::Empty(parts[0].schema());
  size_t total_rows = 0;
  for (const Table& part : parts) {
    if (part.num_columns() != out.num_columns()) {
      return Status::TypeError("Concat schema mismatch (column count)");
    }
    for (size_t c = 0; c < part.num_columns(); ++c) {
      if (part.column(c).type() != out.column(c).type()) {
        return Status::TypeError("Concat schema mismatch (column type)");
      }
    }
    total_rows += part.num_rows();
  }
  // Columnar concatenation: one reserve + typed bulk copies per column,
  // instead of boxing every cell into a Value row (the merge-table hot path).
  for (size_t c = 0; c < out.num_columns(); ++c) {
    out.columns_[c].Reserve(total_rows);
    for (const Table& part : parts) {
      out.columns_[c].AppendFrom(part.column(c));
    }
  }
  out.num_rows_ = total_rows;
  return out;
}

std::string Table::ToString(size_t max_rows) const {
  std::ostringstream os;
  for (size_t i = 0; i < schema_.num_fields(); ++i) {
    if (i > 0) os << " | ";
    os << schema_.field(i).name;
  }
  os << "\n";
  const size_t rows = std::min(num_rows_, max_rows);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < columns_.size(); ++c) {
      if (c > 0) os << " | ";
      os << At(r, c).ToString();
    }
    os << "\n";
  }
  if (num_rows_ > rows) {
    os << "... (" << num_rows_ - rows << " more rows)\n";
  }
  return os.str();
}

size_t RawTableWireBytes(const Table& table) {
  size_t total = sizeof(uint32_t) + sizeof(uint64_t);
  for (size_t c = 0; c < table.num_columns(); ++c) {
    const Field& f = table.schema().field(c);
    const Column& col = table.column(c);
    total += sizeof(uint32_t) + f.name.size() + 1 /*type*/ + 1 /*validity?*/;
    if (col.has_validity()) {
      total += sizeof(uint32_t) +
               col.validity().words().size() * sizeof(uint64_t);
    }
    switch (f.type) {
      case DataType::kBool:
        total += sizeof(uint32_t) + col.bools().size();
        break;
      case DataType::kInt64:
        total += sizeof(uint32_t) + col.ints().size() * sizeof(int64_t);
        break;
      case DataType::kFloat64:
        total += sizeof(uint32_t) + col.doubles().size() * sizeof(double);
        break;
      case DataType::kString:
        total += sizeof(uint32_t);
        for (const std::string& s : col.strings()) {
          total += sizeof(uint32_t) + s.size();
        }
        break;
    }
  }
  return total;
}

void SerializeTable(const Table& table, BufferWriter* w) {
  w->Reserve(RawTableWireBytes(table));
  w->WriteU32(static_cast<uint32_t>(table.num_columns()));
  w->WriteU64(table.num_rows());
  for (size_t c = 0; c < table.num_columns(); ++c) {
    const Field& f = table.schema().field(c);
    w->WriteString(f.name);
    w->WriteU8(static_cast<uint8_t>(f.type));
    const Column& col = table.column(c);
    w->WriteBool(col.has_validity());
    if (col.has_validity()) {
      std::vector<uint64_t> words = col.validity().words();
      w->WriteU64Vector(words);
    }
    switch (f.type) {
      case DataType::kBool: {
        w->WriteU32(static_cast<uint32_t>(col.bools().size()));
        w->AppendRaw(col.bools().data(), col.bools().size());
        break;
      }
      case DataType::kInt64:
        w->WriteI64Vector(col.ints());
        break;
      case DataType::kFloat64:
        w->WriteDoubleVector(col.doubles());
        break;
      case DataType::kString: {
        w->WriteU32(static_cast<uint32_t>(col.strings().size()));
        for (const std::string& s : col.strings()) w->WriteString(s);
        break;
      }
    }
  }
}

namespace {

/// Compressed (v2) layout:
///
///   u32     kTableWireMagic
///   u8      kTableWireVersion
///   varint  num_cols
///   varint  num_rows
///   per column:
///     u32+bytes  field name (BufferWriter::WriteString)
///     u8         DataType
///     u8         has_validity
///     [codec block]  validity (when present)
///     codec block    column data
void SerializeTableV2(const Table& table, BufferWriter* w) {
  w->WriteU32(kTableWireMagic);
  w->WriteU8(kTableWireVersion);
  PutVarint(w, table.num_columns());
  PutVarint(w, table.num_rows());
  for (size_t c = 0; c < table.num_columns(); ++c) {
    const Field& f = table.schema().field(c);
    const Column& col = table.column(c);
    w->WriteString(f.name);
    w->WriteU8(static_cast<uint8_t>(f.type));
    w->WriteBool(col.has_validity());
    if (col.has_validity()) EncodeValidity(col.validity(), w);
    switch (f.type) {
      case DataType::kBool:
        EncodeBools(col.bools(), w);
        break;
      case DataType::kInt64:
        EncodeInts(col.ints(), w);
        break;
      case DataType::kFloat64:
        EncodeDoubles(col.doubles(), w);
        break;
      case DataType::kString:
        EncodeStrings(col.strings(), w);
        break;
    }
  }
}

Result<Table> DeserializeTableV2(BufferReader* r) {
  MIP_ASSIGN_OR_RETURN(uint32_t magic, r->ReadU32());
  if (magic != kTableWireMagic) {
    return Status::IOError("compressed table magic mismatch");
  }
  MIP_ASSIGN_OR_RETURN(uint8_t version, r->ReadU8());
  if (version != kTableWireVersion) {
    return Status::IOError("unsupported compressed table version " +
                           std::to_string(version));
  }
  MIP_ASSIGN_OR_RETURN(uint64_t num_cols, GetVarint(r));
  MIP_ASSIGN_OR_RETURN(uint64_t num_rows, GetVarint(r));
  // Every column costs at least its name prefix; reject impossible counts
  // before looping (the loop itself re-checks every read).
  if (num_cols > r->Remaining()) {
    return Status::IOError("truncated buffer while deserializing");
  }
  if (num_rows > kMaxWireElements) {
    return Status::IOError("compressed table row count exceeds the limit");
  }
  Schema schema;
  std::vector<Column> columns;
  for (uint64_t c = 0; c < num_cols; ++c) {
    MIP_ASSIGN_OR_RETURN(std::string name, r->ReadString());
    MIP_ASSIGN_OR_RETURN(uint8_t type_byte, r->ReadU8());
    if (type_byte > static_cast<uint8_t>(DataType::kString)) {
      return Status::IOError("table wire format has unknown column type " +
                             std::to_string(type_byte));
    }
    const DataType type = static_cast<DataType>(type_byte);
    MIP_RETURN_NOT_OK(schema.AddField(Field{name, type}));
    MIP_ASSIGN_OR_RETURN(bool has_validity, r->ReadBool());
    Bitmap validity;
    if (has_validity) {
      MIP_ASSIGN_OR_RETURN(validity, DecodeValidity(r));
      if (validity.length() != num_rows) {
        return Status::IOError("validity length does not match row count");
      }
    }
    Column col(type);
    size_t decoded = 0;
    switch (type) {
      case DataType::kBool: {
        MIP_ASSIGN_OR_RETURN(std::vector<uint8_t> vals, DecodeBools(r));
        decoded = vals.size();
        col = Column::FromBools(std::move(vals));
        break;
      }
      case DataType::kInt64: {
        MIP_ASSIGN_OR_RETURN(std::vector<int64_t> vals, DecodeInts(r));
        decoded = vals.size();
        col = Column::FromInts(std::move(vals));
        break;
      }
      case DataType::kFloat64: {
        MIP_ASSIGN_OR_RETURN(std::vector<double> vals, DecodeDoubles(r));
        decoded = vals.size();
        col = Column::FromDoubles(std::move(vals));
        break;
      }
      case DataType::kString: {
        MIP_ASSIGN_OR_RETURN(std::vector<std::string> vals, DecodeStrings(r));
        decoded = vals.size();
        col = Column::FromStrings(std::move(vals));
        break;
      }
    }
    if (decoded != num_rows) {
      return Status::IOError("column length does not match row count");
    }
    if (has_validity) MIP_RETURN_NOT_OK(col.SetValidity(std::move(validity)));
    columns.push_back(std::move(col));
  }
  return Table::Make(std::move(schema), std::move(columns));
}

}  // namespace

void SerializeTable(const Table& table, BufferWriter* w,
                    const TableWireOptions& options) {
  if (!options.codecs) {
    SerializeTable(table, w);
    return;
  }
  // Measured, not guessed: commit the compressed layout only when it beats
  // the fixed-width one, so bytes_wire <= bytes_raw holds unconditionally.
  const size_t raw_bytes = RawTableWireBytes(table);
  BufferWriter scratch;
  SerializeTableV2(table, &scratch);
  if (scratch.size() < raw_bytes) {
    w->AppendRaw(scratch.bytes().data(), scratch.size());
  } else {
    SerializeTable(table, w);
  }
}

Result<Table> DeserializeTable(BufferReader* r) {
  Result<uint32_t> sniff = r->PeekU32();
  if (sniff.ok() && sniff.ValueOrDie() == kTableWireMagic) {
    return DeserializeTableV2(r);
  }
  MIP_ASSIGN_OR_RETURN(uint32_t num_cols, r->ReadU32());
  MIP_ASSIGN_OR_RETURN(uint64_t num_rows, r->ReadU64());
  Schema schema;
  std::vector<Column> columns;
  for (uint32_t c = 0; c < num_cols; ++c) {
    MIP_ASSIGN_OR_RETURN(std::string name, r->ReadString());
    MIP_ASSIGN_OR_RETURN(uint8_t type_byte, r->ReadU8());
    if (type_byte > static_cast<uint8_t>(DataType::kString)) {
      return Status::IOError("table wire format has unknown column type " +
                             std::to_string(type_byte));
    }
    const DataType type = static_cast<DataType>(type_byte);
    MIP_RETURN_NOT_OK(schema.AddField(Field{name, type}));
    MIP_ASSIGN_OR_RETURN(bool has_validity, r->ReadBool());
    Bitmap validity;
    if (has_validity) {
      MIP_ASSIGN_OR_RETURN(std::vector<uint64_t> words, r->ReadU64Vector());
      if (words.size() * 64 < num_rows) {
        return Status::IOError("table validity bitmap shorter than row count");
      }
      validity = Bitmap(num_rows, true);
      for (size_t i = 0; i < num_rows; ++i) {
        const bool bit = (words[i >> 6] >> (i & 63)) & 1ull;
        validity.Set(i, bit);
      }
    }
    Column col(type);
    switch (type) {
      case DataType::kBool: {
        MIP_ASSIGN_OR_RETURN(uint32_t n, r->ReadU32());
        if (n > r->Remaining()) {
          return Status::IOError("truncated buffer while deserializing");
        }
        std::vector<uint8_t> vals(n);
        for (uint32_t i = 0; i < n; ++i) {
          MIP_ASSIGN_OR_RETURN(vals[i], r->ReadU8());
        }
        col = Column::FromBools(std::move(vals));
        break;
      }
      case DataType::kInt64: {
        MIP_ASSIGN_OR_RETURN(std::vector<int64_t> vals, r->ReadI64Vector());
        col = Column::FromInts(std::move(vals));
        break;
      }
      case DataType::kFloat64: {
        MIP_ASSIGN_OR_RETURN(std::vector<double> vals, r->ReadDoubleVector());
        col = Column::FromDoubles(std::move(vals));
        break;
      }
      case DataType::kString: {
        MIP_ASSIGN_OR_RETURN(uint32_t n, r->ReadU32());
        if (static_cast<size_t>(n) > r->Remaining() / sizeof(uint32_t)) {
          return Status::IOError("truncated buffer while deserializing");
        }
        std::vector<std::string> vals(n);
        for (uint32_t i = 0; i < n; ++i) {
          MIP_ASSIGN_OR_RETURN(vals[i], r->ReadString());
        }
        col = Column::FromStrings(std::move(vals));
        break;
      }
    }
    if (has_validity) MIP_RETURN_NOT_OK(col.SetValidity(std::move(validity)));
    columns.push_back(std::move(col));
  }
  return Table::Make(std::move(schema), std::move(columns));
}

}  // namespace mip::engine
