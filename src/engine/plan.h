#ifndef MIP_ENGINE_PLAN_H_
#define MIP_ENGINE_PLAN_H_

#include <atomic>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/exec_context.h"
#include "engine/expr.h"
#include "engine/operators.h"
#include "engine/sql_ast.h"
#include "engine/storage_iface.h"
#include "engine/table.h"

namespace mip::engine {

class FunctionRegistry;

/// \brief Logical query plan IR.
///
/// SELECT execution is split into three layers (mirroring how MonetDB — the
/// worker engine of the MIP paper — decomposes queries over merge tables so
/// computation moves to the data):
///
///   1. the planner (PlanSelect) turns a parsed SelectStmt into a tree of
///      typed PlanNodes, resolving FROM sources through a PlanCatalog;
///   2. the rule-based optimizer (engine/optimizer.h) rewrites the tree —
///      predicate/projection/limit pushdown into scans (remote scans lower
///      them into the SQL shipped to the owning node) and the merge-table
///      partial-aggregate decomposition;
///   3. the executor (ExecutePlan) walks the tree bottom-up with the
///      existing vectorized operators and ExecContext morsel parallelism.
///
/// Invariant: for any query, the optimized plan produces byte-identical
/// results to the unoptimized plan (and to the pre-plan-layer interpreter):
/// row order, first-seen group order, and float arithmetic order are all
/// preserved by every rule except the merge-aggregate decomposition, which
/// reassociates float sums exactly like the legacy pushdown path did.
enum class PlanKind {
  kScan,        ///< base table or table-function scan
  kIndexScan,   ///< disk scan that additionally probes ordered indexes
  kRemoteScan,  ///< scan served by another node (MonetDB REMOTE table)
  kMergeUnion,  ///< non-materialized UNION ALL over parts (MERGE table)
  kJoin,        ///< two-way equi hash join
  kFilter,      ///< keep rows where predicate is non-null true
  kProject,     ///< evaluate select items / expressions into output columns
  kAggregate,   ///< hash group-by (empty keys = whole-table aggregation)
  kDistinct,    ///< keep first occurrence of each distinct row
  kSort,        ///< stable multi-key sort by output column names
  kLimit,       ///< first n rows
};

const char* PlanKindName(PlanKind kind);

/// \brief Physical strategy of a distributed join, chosen by the cost model
/// (optimizer.cc) per join node.
///
///   kCollect   — fetch both sides through the compressed wire format and
///                hash-join at the master (the only pre-cost-model behavior,
///                and the MIP_COST_MODEL=0 ablation).
///   kBroadcast — materialize the small (right/build) side once, ship it to
///                every worker holding a left-side part, and push the join
///                into the worker via a bound-table SQL round trip; the
///                master only concatenates per-part join results.
///
/// The strategy is a *physical* annotation: results are byte-identical
/// either way (each worker joins its part against the identical build table,
/// and per-part outputs concatenate in part order — exactly the master-side
/// join of the concatenated parts), so the canonical rendering omits it and
/// strategy flips never fracture the gateway result cache.
enum class JoinStrategy { kCollect, kBroadcast };

struct PlanNode;
using PlanPtr = std::shared_ptr<PlanNode>;

/// One node of a logical plan. A tagged union in the style of the Expr tree:
/// `kind` selects which fields are meaningful.
struct PlanNode {
  PlanKind kind = PlanKind::kScan;
  std::vector<PlanPtr> children;

  // --- kScan / kRemoteScan / kMergeUnion --------------------------------
  /// Local catalog name of the scanned table (merge tables keep their view
  /// name here; remote scans the local alias).
  std::string table_name;
  /// kScan only: table-function source. Function scans are materialized
  /// once at plan time (exactly as often as the legacy interpreter ran
  /// them) and carried in `prebound`.
  std::string func_name;
  std::vector<Value> func_args;
  std::shared_ptr<Table> prebound;
  /// Projection pruning: the only columns this scan must produce (and a
  /// remote scan must *fetch*). Empty = all columns.
  std::vector<std::string> columns;
  /// LIMIT pushed below a sort-free pipeline; -1 = none.
  int64_t scan_limit = -1;
  /// kScan only: the table is disk-resident (TableKind::kDisk) and executes
  /// through PlanExecutorOptions::scan_disk.
  bool disk = false;
  /// kScan over a disk table: predicate copied down by the optimizer as a
  /// zone-map pruning *hint*. Purely advisory — the originating Filter node
  /// stays above the scan, so pruning can never change results (the same
  /// "at most, not exactly" contract as scan_limit).
  ExprPtr prune_filter;
  /// Optimizer annotation for EXPLAIN: segment counts the zone maps decide
  /// to scan/prune for this disk scan, filled by the prune-annotation pass
  /// from PlanCatalog::DiskPrunePreview. -1 = not annotated.
  int64_t seg_total = -1;
  int64_t seg_pruned = -1;
  /// kIndexScan annotation for EXPLAIN: ordered-index probes the access-path
  /// rule previewed and the candidate rows they matched. -1 = not annotated.
  int64_t idx_probes = -1;
  int64_t idx_rows = -1;

  // --- kRemoteScan -------------------------------------------------------
  std::string location;     ///< node id that owns the data
  std::string remote_name;  ///< table name on that node
  /// Predicate lowered into the SQL shipped via run_sql; null = none.
  ExprPtr remote_filter;
  /// Full remote SQL override (merge-aggregate partials). When set it wins
  /// over columns/remote_filter/scan_limit.
  std::string sql_override;

  // --- kFilter -----------------------------------------------------------
  ExprPtr predicate;

  // --- kProject ----------------------------------------------------------
  /// Two flavors: raw select items (star expansion + output naming happen
  /// at execution against the input schema, exactly like the legacy path),
  /// or pre-resolved expressions with final output names (aggregate
  /// rewrites). `exprs` non-empty selects the second flavor.
  std::vector<SelectItem> items;
  std::vector<ExprPtr> exprs;
  std::vector<std::string> names;

  // --- kAggregate --------------------------------------------------------
  std::vector<ExprPtr> keys;
  std::vector<std::string> key_names;
  std::vector<AggregateSpec> aggs;

  // --- kJoin -------------------------------------------------------------
  std::string left_key;
  std::string right_key;
  JoinType join_type = JoinType::kInner;
  /// Physical strategy (see JoinStrategy); excluded from the canonical
  /// rendering like the segment/index annotations.
  JoinStrategy strategy = JoinStrategy::kCollect;
  /// Cost-model annotations for EXPLAIN (-1 = not annotated): estimated
  /// input/output cardinalities and the modeled wire cost of each strategy.
  double est_left_rows = -1.0;
  double est_right_rows = -1.0;
  double est_out_rows = -1.0;
  double cost_broadcast = -1.0;
  double cost_collect = -1.0;

  // --- kSort -------------------------------------------------------------
  std::vector<std::string> sort_keys;
  std::vector<bool> sort_ascending;

  // --- kLimit ------------------------------------------------------------
  int64_t limit = -1;
};

PlanPtr MakePlanNode(PlanKind kind);

/// \brief Catalog view the planner and optimizer resolve table names
/// against. Implemented by Database; kept abstract so the plan layer does
/// not depend on the catalog's storage.
class PlanCatalog {
 public:
  enum class TableKind { kBase, kRemote, kMerge, kDisk };
  struct TableInfo {
    TableKind kind = TableKind::kBase;
    std::string location;     // kRemote
    std::string remote_name;  // kRemote
    std::vector<std::string> parts;  // kMerge
  };

  virtual ~PlanCatalog() = default;

  /// Kind and metadata of a named table; NotFound when absent.
  virtual Result<TableInfo> Describe(const std::string& name) const = 0;

  /// Schema of a named table without materializing it when possible (remote
  /// schemas may cost one lightweight round trip on first use).
  virtual Result<Schema> TableSchema(const std::string& name) const = 0;

  /// Runs a FROM-clause table function.
  virtual Result<Table> RunTableFunction(
      const std::string& name, const std::vector<Value>& args) const = 0;

  /// Zone-map prune counts for a disk table (TableKind::kDisk) under a
  /// pruning hint — how the optimizer annotates `segments:` on EXPLAIN
  /// output. Defaulted so catalogs without attached storage (and test
  /// doubles) need not implement it; the annotation pass skips scans whose
  /// catalog answers NotImplemented.
  virtual Result<ScanStats> DiskPrunePreview(const std::string& name,
                                             const Expr* prune_filter) const {
    (void)name;
    (void)prune_filter;
    return Status::NotImplemented("catalog has no attached disk storage");
  }

  /// Access-path preview for a disk table: would probing its ordered
  /// secondary indexes under this pruning hint skip more segments than zone
  /// maps alone? Drives the optimizer's Scan-vs-IndexScan choice; defaulted
  /// like DiskPrunePreview so storage-less catalogs answer NotImplemented
  /// and the choice pass leaves scans untouched.
  virtual Result<IndexPreview> DiskIndexPreview(const std::string& name,
                                                const Expr* prune_filter) const {
    (void)name;
    (void)prune_filter;
    return Status::NotImplemented("catalog has no attached disk storage");
  }

  /// Table statistics feeding the cost model: row counts, per-column NDV
  /// and ranges (engine/stats.h). Local tables compute (and cache) them,
  /// remote tables answer through the `get_stats` envelope, merge tables
  /// combine their parts. Defaulted like the previews above — a catalog
  /// without statistics simply leaves the cost model blind, which degrades
  /// to the pre-cost-model plan (collect), never to a wrong result.
  virtual Result<TableStats> GetTableStats(const std::string& name) const {
    (void)name;
    return Status::NotImplemented("catalog has no table statistics");
  }
};

/// Deep-copies an expression tree (unbinding is not performed; clones carry
/// whatever binding state the source had).
ExprPtr CloneExpr(const Expr& e);

/// \brief Output-name uniquing shared by the planner, the executor's star
/// expansion, and the aggregate rewrite: append '_' until `name` (compared
/// case-insensitively) is unused, then record it in `used`.
std::string UniquifyName(std::string name, std::set<std::string>* used);

/// True when `name` lexes as one plain identifier token and is not a keyword
/// of the engine's grammar — i.e. it can be spliced into generated SQL text
/// (remote column lists, lowered predicates) without changing its parse.
bool IsSqlIdentifier(const std::string& name);

/// \brief Renders `expr` as SQL text that reparses to an equivalent tree.
///
/// Unlike Expr::ToString (whose double formatting is for humans), double
/// literals are printed with round-trip precision — the text a RemoteScan
/// ships must select exactly the rows a local evaluation would.
std::string LowerExprToSql(const Expr& expr);

/// True when `expr` only uses constructs every peer engine evaluates
/// identically from SQL text: literals (finite doubles, strings without
/// embedded quotes), column refs, unary/binary operators, CASE, and calls
/// to scalar built-ins. UDF calls and aggregates are not remotable.
bool IsRemotelyEvaluable(const Expr& expr);

/// \brief Builds the logical plan for a SELECT. The plan is unoptimized:
/// merge tables expand to MergeUnion over their parts, remote tables to
/// bare RemoteScans, and all filtering/projection happens above the scans.
Result<PlanPtr> PlanSelect(const SelectStmt& stmt, const PlanCatalog& catalog);

/// Output schema of a source subtree (scans, unions, joins, filters) — used
/// for the sort-placement decision and by the optimizer. May cost a remote
/// schema lookup for RemoteScan nodes.
Result<Schema> InferPlanSchema(const PlanNode& node, const PlanCatalog& catalog);

/// \brief Stable text rendering of a plan (the EXPLAIN output): one node
/// per line, two-space indent per depth. Golden-testable.
std::string RenderPlan(const PlanNode& root);

/// \brief 64-bit FNV-1a fingerprint of the plan's *canonical* rendering —
/// the gateway's result-cache key. Two statements that optimize to the same
/// plan (modulo whitespace in the original SQL, aliasing that doesn't
/// survive planning) share a fingerprint; any semantic difference —
/// predicates, projections, limits, aggregate specs, sources — renders
/// differently and diverges. Stable across processes: no pointers, no
/// iteration-order dependence.
///
/// Canonical means physical-only annotations are excluded: the `segments:`
/// / `index:` stat lines are omitted and IndexScan renders as Scan. Those
/// reflect the store's current segment layout, which flushes, compactions,
/// and access-path flips change without changing any result — a cache keyed
/// on them would miss (or worse, never invalidate) for byte-identical
/// answers. Real data changes invalidate through catalog_version, not the
/// fingerprint.
uint64_t PlanFingerprint(const PlanNode& root);

/// \brief Lifetime join counters for the /metrics surface. `joins_planned`
/// and the strategy tallies are incremented by the optimizer's strategy
/// chooser; `build_rows`/`probe_rows` by the executor (probe rows count
/// master-side probes only — a pushed broadcast join probes on the worker,
/// where the master cannot see the row count).
struct JoinCounters {
  std::atomic<uint64_t> joins_planned{0};
  std::atomic<uint64_t> broadcast_chosen{0};
  std::atomic<uint64_t> collect_chosen{0};
  std::atomic<uint64_t> build_rows{0};
  std::atomic<uint64_t> probe_rows{0};
};

/// \brief Everything the executor needs from its host database.
struct PlanExecutorOptions {
  const FunctionRegistry* functions = nullptr;
  const ExecContext* exec = nullptr;
  /// Host database name, used only in error messages.
  std::string db_name;
  /// Materializes a base table by catalog name.
  std::function<Result<Table>(const std::string& name)> get_table;
  /// Scans a disk-resident table (TableKind::kDisk), consulting zone maps
  /// against the advisory prune filter (may be null) to skip segments.
  /// Unset = the catalog has no attached storage; executing a disk scan
  /// then fails with an execution error.
  std::function<Result<Table>(const std::string& name,
                              const Expr* prune_filter)>
      scan_disk;
  /// Scans a disk-resident table through its ordered secondary indexes
  /// (kIndexScan): same contract and byte-identical results as scan_disk,
  /// but segments whose index probe proves zero candidates are skipped
  /// without being decoded. Unset = kIndexScan falls back to scan_disk
  /// (always correct; the index path is purely an accelerator).
  std::function<Result<Table>(const std::string& name,
                              const Expr* prune_filter)>
      index_scan_disk;
  /// Fetches a whole remote table (fetch_table); used by bare RemoteScans.
  std::function<Result<Table>(const std::string& location,
                              const std::string& remote_name)>
      fetch_remote;
  /// Runs SQL on the remote node (run_sql); used by RemoteScans that carry
  /// a pushed filter, pruned columns, a limit, or a partial-aggregate
  /// override. May be null — the optimizer only lowers work into remote
  /// SQL when a runner is available.
  std::function<Result<Table>(const std::string& location,
                              const std::string& sql)>
      run_remote_sql;
  /// Runs SQL on the remote node with a shipped bound table
  /// (run_sql_bound): the worker registers `bound` under `temp_name`, runs
  /// `sql`, drops the temp table, and replies with the result — the
  /// transport of a BroadcastJoin's build side. May be null (no broadcast-
  /// capable transport); broadcast joins then fall back per part to
  /// fetching the part and joining at the master, byte-identically.
  std::function<Result<Table>(const std::string& location,
                              const std::string& temp_name,
                              const std::string& sql, const Table& bound)>
      run_remote_bound_sql;
  /// Lifetime join counters (may be null): executor-side build/probe rows.
  JoinCounters* join_counters = nullptr;
};

/// Executes an (optimized or raw) logical plan.
Result<Table> ExecutePlan(const PlanNode& root,
                          const PlanExecutorOptions& options);

}  // namespace mip::engine

#endif  // MIP_ENGINE_PLAN_H_
