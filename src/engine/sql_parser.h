#ifndef MIP_ENGINE_SQL_PARSER_H_
#define MIP_ENGINE_SQL_PARSER_H_

#include <string>

#include "common/result.h"
#include "engine/sql_ast.h"

namespace mip::engine {

/// \brief Parses one SQL statement of the engine's dialect.
///
/// Supported grammar (case-insensitive keywords):
///
///   SELECT item[, ...] FROM source [WHERE expr] [GROUP BY expr[, ...]]
///     [HAVING expr] [ORDER BY col [ASC|DESC][, ...]] [LIMIT n]
///   source := name | name JOIN name ON a.x = b.y | func(lit, ...)
///   CREATE TABLE name (col type[, ...])
///   INSERT INTO name VALUES (lit, ...)[, (lit, ...)]
///   CREATE REMOTE TABLE name ON 'location' [AS remote_name]
///   CREATE MERGE TABLE name (part[, ...])
///   DROP TABLE name
///   EXPLAIN <select>   -- renders the optimized logical plan as text
///
/// Aggregates: count(*), count, sum, avg, min, max, var_samp/variance,
/// stddev_samp/stddev. Scalar built-ins per engine/expr.h plus registered
/// UDFs (resolved at bind time, not parse time).
Result<SqlStatement> ParseSql(const std::string& sql);

/// Parses a standalone scalar expression (used by tests and the UDF
/// generator's loopback predicates).
Result<ExprPtr> ParseExpression(const std::string& text);

}  // namespace mip::engine

#endif  // MIP_ENGINE_SQL_PARSER_H_
