#include "engine/stats.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstring>

namespace mip::engine {
namespace {

/// Strcasecmp-equivalent without locale surprises (ASCII only, matching
/// Schema::FieldIndex).
bool NameEquals(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

uint64_t Fnv1a(const void* data, size_t len, uint64_t seed) {
  const auto* bytes = static_cast<const uint8_t*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= bytes[i];
    h *= 1099511628211ull;
  }
  return h;
}

constexpr uint64_t kStringSeed = 14695981039346656037ull;
constexpr uint64_t kNumericSeed = 0x6d69702d6e756d00ull;  // "mip-num"

}  // namespace

const ColumnStats* TableStats::FindColumn(const std::string& name) const {
  for (const ColumnStats& c : columns) {
    if (NameEquals(c.name, name)) return &c;
  }
  return nullptr;
}

void HllSketch::AddHash(uint64_t hash) {
  const uint32_t bucket = static_cast<uint32_t>(hash >> (64 - kRegisterBits));
  const uint64_t rest = hash << kRegisterBits;
  // Rank = leading zeros of the remaining bits, + 1; the all-zero remainder
  // gets the maximum rank.
  uint8_t rank = 1;
  uint64_t probe = rest;
  while (rank <= 64 - kRegisterBits && (probe & 0x8000000000000000ull) == 0) {
    rank += 1;
    probe <<= 1;
  }
  registers_[bucket] = std::max(registers_[bucket], rank);
}

int64_t HllSketch::Estimate() const {
  constexpr double kAlpha = 0.7213 / (1.0 + 1.079 / kRegisters);
  double inverse_sum = 0.0;
  int zeros = 0;
  for (int i = 0; i < kRegisters; ++i) {
    inverse_sum += std::ldexp(1.0, -registers_[i]);
    zeros += registers_[i] == 0 ? 1 : 0;
  }
  double estimate = kAlpha * kRegisters * kRegisters / inverse_sum;
  if (estimate <= 2.5 * kRegisters && zeros > 0) {
    estimate = kRegisters * std::log(static_cast<double>(kRegisters) / zeros);
  }
  return static_cast<int64_t>(std::llround(estimate));
}

void HllSketch::Merge(const HllSketch& other) {
  for (int i = 0; i < kRegisters; ++i) {
    registers_[i] = std::max(registers_[i], other.registers_[i]);
  }
}

uint64_t HllSketch::HashString(const std::string& s) {
  return SplitMix64(Fnv1a(s.data(), s.size(), kStringSeed));
}

uint64_t HllSketch::HashNumeric(double v) {
  if (v == 0.0) v = 0.0;  // -0.0 -> +0.0: equal values must hash equal
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return SplitMix64(bits ^ kNumericSeed);
}

TableStats ComputeTableStats(const Table& table) {
  TableStats stats;
  stats.row_count = static_cast<int64_t>(table.num_rows());
  stats.columns.reserve(table.num_columns());
  for (size_t c = 0; c < table.num_columns(); ++c) {
    const Column& col = table.column(c);
    ColumnStats cs;
    cs.name = table.schema().field(c).name;
    cs.null_count = static_cast<int64_t>(col.null_count());
    HllSketch hll;
    const bool is_string = col.type() == DataType::kString;
    for (size_t i = 0; i < col.length(); ++i) {
      if (!col.IsValid(i)) continue;
      if (is_string) {
        hll.AddHash(HllSketch::HashString(col.StringAt(i)));
        continue;
      }
      const double v = col.AsDoubleAt(i);
      if (std::isnan(v)) continue;  // NaN excluded, like the zone maps
      hll.AddHash(HllSketch::HashNumeric(v));
      if (!cs.has_range) {
        cs.has_range = true;
        cs.min_value = cs.max_value = v;
      } else {
        cs.min_value = std::min(cs.min_value, v);
        cs.max_value = std::max(cs.max_value, v);
      }
    }
    cs.ndv = hll.Estimate();
    stats.columns.push_back(std::move(cs));
  }
  return stats;
}

TableStats MergeTableStats(const std::vector<TableStats>& parts) {
  TableStats merged;
  if (parts.empty()) return merged;
  merged.row_count = 0;
  for (const TableStats& part : parts) {
    if (part.row_count < 0) {
      merged.row_count = -1;
      break;
    }
    merged.row_count += part.row_count;
  }
  // Column set of the first shard; shards of one federated table share a
  // schema, so this is the union.
  for (const ColumnStats& first : parts[0].columns) {
    ColumnStats out;
    out.name = first.name;
    out.ndv = 0;
    out.has_range = true;
    bool all_known_ndv = true;
    bool any_range = false;
    for (const TableStats& part : parts) {
      const ColumnStats* c = part.FindColumn(first.name);
      if (c == nullptr) {
        all_known_ndv = false;
        continue;
      }
      out.null_count += c->null_count;
      if (c->ndv < 0) {
        all_known_ndv = false;
      } else if (all_known_ndv) {
        out.ndv += c->ndv;
      }
      if (c->has_range) {
        if (!any_range) {
          any_range = true;
          out.min_value = c->min_value;
          out.max_value = c->max_value;
        } else {
          out.min_value = std::min(out.min_value, c->min_value);
          out.max_value = std::max(out.max_value, c->max_value);
        }
      }
    }
    out.has_range = any_range;
    if (!all_known_ndv) {
      out.ndv = -1;
    } else if (merged.row_count >= 0) {
      // Shards may repeat values: the sum is an upper bound, the row count
      // a harder one.
      out.ndv = std::min(out.ndv, merged.row_count);
    }
    merged.columns.push_back(std::move(out));
  }
  return merged;
}

Table StatsToTable(const TableStats& stats) {
  Schema schema;
  (void)schema.AddField({"column", DataType::kString});
  (void)schema.AddField({"row_count", DataType::kInt64});
  (void)schema.AddField({"null_count", DataType::kInt64});
  (void)schema.AddField({"ndv", DataType::kInt64});
  (void)schema.AddField({"has_range", DataType::kBool});
  (void)schema.AddField({"min", DataType::kFloat64});
  (void)schema.AddField({"max", DataType::kFloat64});
  Table out = Table::Empty(schema);
  auto append = [&](const std::string& name, const ColumnStats* c) {
    std::vector<Value> row;
    row.push_back(Value::String(name));
    row.push_back(Value::Int(stats.row_count));
    row.push_back(Value::Int(c != nullptr ? c->null_count : 0));
    row.push_back(Value::Int(c != nullptr ? c->ndv : -1));
    row.push_back(Value::Bool(c != nullptr && c->has_range));
    row.push_back(Value::Double(c != nullptr && c->has_range ? c->min_value
                                                             : 0.0));
    row.push_back(Value::Double(c != nullptr && c->has_range ? c->max_value
                                                             : 0.0));
    (void)out.AppendRow(row);
  };
  if (stats.columns.empty()) {
    append("", nullptr);  // carrier row: the row count must survive
  }
  for (const ColumnStats& c : stats.columns) append(c.name, &c);
  return out;
}

Result<TableStats> StatsFromTable(const Table& table) {
  const int column = table.schema().FieldIndex("column");
  const int row_count = table.schema().FieldIndex("row_count");
  const int null_count = table.schema().FieldIndex("null_count");
  const int ndv = table.schema().FieldIndex("ndv");
  const int has_range = table.schema().FieldIndex("has_range");
  const int min_f = table.schema().FieldIndex("min");
  const int max_f = table.schema().FieldIndex("max");
  if (column < 0 || row_count < 0 || null_count < 0 || ndv < 0 ||
      has_range < 0 || min_f < 0 || max_f < 0) {
    return Status::InvalidArgument("malformed stats table: " +
                                   table.schema().ToString());
  }
  TableStats stats;
  for (size_t i = 0; i < table.num_rows(); ++i) {
    stats.row_count = table.column(row_count).IntAt(i);
    const std::string& name = table.column(column).StringAt(i);
    if (name.empty()) continue;  // zero-column carrier row
    ColumnStats cs;
    cs.name = name;
    cs.null_count = table.column(null_count).IntAt(i);
    cs.ndv = table.column(ndv).IntAt(i);
    cs.has_range = table.column(has_range).BoolAt(i);
    cs.min_value = table.column(min_f).DoubleAt(i);
    cs.max_value = table.column(max_f).DoubleAt(i);
    stats.columns.push_back(std::move(cs));
  }
  return stats;
}

}  // namespace mip::engine
