#include "engine/encoding.h"

#include <cstring>
#include <unordered_map>

namespace mip::engine {

namespace {

void PutBlockHeader(BufferWriter* w, Codec codec, uint64_t count) {
  w->WriteU8(static_cast<uint8_t>(codec));
  PutVarint(w, count);
}

struct BlockHeader {
  Codec codec;
  uint64_t count;
};

/// Reads and validates one block header. `allowed` is a bitmask over codec
/// values — a codec byte outside the set valid for the value type is a
/// corrupt block, not a fallback.
Result<BlockHeader> ReadBlockHeader(BufferReader* r, uint32_t allowed) {
  MIP_ASSIGN_OR_RETURN(uint8_t codec_byte, r->ReadU8());
  if (codec_byte > static_cast<uint8_t>(Codec::kXorDouble) ||
      (allowed & (1u << codec_byte)) == 0) {
    return Status::IOError("column block has invalid codec byte " +
                           std::to_string(codec_byte));
  }
  MIP_ASSIGN_OR_RETURN(uint64_t count, GetVarint(r));
  if (count > kMaxWireElements) {
    return Status::IOError("column block count " + std::to_string(count) +
                           " exceeds the element limit");
  }
  return BlockHeader{static_cast<Codec>(codec_byte), count};
}

constexpr uint32_t CodecBit(Codec c) { return 1u << static_cast<uint8_t>(c); }

Status ZeroRunError() {
  return Status::IOError("zero-length RLE run");
}

Status RunOverflowError() {
  return Status::IOError("RLE runs exceed the block count");
}

}  // namespace

void PutVarint(BufferWriter* w, uint64_t v) {
  while (v >= 0x80) {
    w->WriteU8(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  w->WriteU8(static_cast<uint8_t>(v));
}

size_t VarintSize(uint64_t v) {
  size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

Result<uint64_t> GetVarint(BufferReader* r) {
  uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    MIP_ASSIGN_OR_RETURN(uint8_t b, r->ReadU8());
    if (shift == 63 && (b & 0x7F) > 1) {
      return Status::IOError("varint overflows 64 bits");
    }
    v |= static_cast<uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) return v;
  }
  return Status::IOError("varint longer than 10 bytes");
}

Codec EncodeInts(const std::vector<int64_t>& values, BufferWriter* w) {
  const uint64_t n = values.size();
  const size_t raw_size = values.size() * sizeof(int64_t);
  // Candidate: zigzag varints of consecutive deltas (first delta vs 0).
  // Deltas are computed in uint64 wraparound arithmetic so INT64_MIN/MAX
  // neighbors cannot trip signed overflow.
  BufferWriter delta;
  uint64_t prev = 0;
  for (int64_t v : values) {
    const uint64_t cur = static_cast<uint64_t>(v);
    PutVarint(&delta, ZigZagEncode(static_cast<int64_t>(cur - prev)));
    prev = cur;
  }
  if (n > 0 && delta.size() < raw_size) {
    PutBlockHeader(w, Codec::kDeltaVarint, n);
    w->AppendRaw(delta.bytes().data(), delta.size());
    return Codec::kDeltaVarint;
  }
  PutBlockHeader(w, Codec::kRaw, n);
  w->AppendRaw(values.data(), raw_size);
  return Codec::kRaw;
}

Result<std::vector<int64_t>> DecodeInts(BufferReader* r) {
  MIP_ASSIGN_OR_RETURN(
      BlockHeader h,
      ReadBlockHeader(r, CodecBit(Codec::kRaw) | CodecBit(Codec::kDeltaVarint)));
  std::vector<int64_t> out;
  if (h.codec == Codec::kRaw) {
    if (h.count * sizeof(int64_t) > r->Remaining()) {
      return Status::IOError("truncated raw int block");
    }
    out.resize(h.count);
    if (h.count > 0) {
      MIP_RETURN_NOT_OK(r->ReadRawBytes(out.data(),
                                        h.count * sizeof(int64_t)));
    }
    return out;
  }
  if (h.count > r->Remaining()) {
    return Status::IOError("truncated delta-varint int block");
  }
  out.reserve(h.count);
  uint64_t prev = 0;
  for (uint64_t i = 0; i < h.count; ++i) {
    MIP_ASSIGN_OR_RETURN(uint64_t z, GetVarint(r));
    prev += static_cast<uint64_t>(ZigZagDecode(z));
    out.push_back(static_cast<int64_t>(prev));
  }
  return out;
}

Codec EncodeDoubles(const std::vector<double>& values, BufferWriter* w) {
  const uint64_t n = values.size();
  const size_t raw_size = values.size() * sizeof(double);
  // Candidate: varint of the IEEE-754 bits XORed with the previous value's
  // bits — repeated and sign/exponent-stable sequences collapse, while
  // values are reproduced bit-exactly (NaN payloads, -0.0, infinities).
  BufferWriter xr;
  uint64_t prev = 0;
  for (double v : values) {
    uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    PutVarint(&xr, bits ^ prev);
    prev = bits;
  }
  if (n > 0 && xr.size() < raw_size) {
    PutBlockHeader(w, Codec::kXorDouble, n);
    w->AppendRaw(xr.bytes().data(), xr.size());
    return Codec::kXorDouble;
  }
  PutBlockHeader(w, Codec::kRaw, n);
  w->AppendRaw(values.data(), raw_size);
  return Codec::kRaw;
}

Result<std::vector<double>> DecodeDoubles(BufferReader* r) {
  MIP_ASSIGN_OR_RETURN(
      BlockHeader h,
      ReadBlockHeader(r, CodecBit(Codec::kRaw) | CodecBit(Codec::kXorDouble)));
  std::vector<double> out;
  if (h.codec == Codec::kRaw) {
    if (h.count * sizeof(double) > r->Remaining()) {
      return Status::IOError("truncated raw double block");
    }
    out.resize(h.count);
    if (h.count > 0) {
      MIP_RETURN_NOT_OK(r->ReadRawBytes(out.data(),
                                        h.count * sizeof(double)));
    }
    return out;
  }
  if (h.count > r->Remaining()) {
    return Status::IOError("truncated xor-double block");
  }
  out.reserve(h.count);
  uint64_t prev = 0;
  for (uint64_t i = 0; i < h.count; ++i) {
    MIP_ASSIGN_OR_RETURN(uint64_t x, GetVarint(r));
    prev ^= x;
    double v = 0.0;
    std::memcpy(&v, &prev, sizeof(v));
    out.push_back(v);
  }
  return out;
}

Codec EncodeBools(const std::vector<uint8_t>& values, BufferWriter* w) {
  const uint64_t n = values.size();
  // Candidate: (value byte, varint run length) pairs over exact byte runs,
  // so decode reproduces the input bytes verbatim.
  BufferWriter rle;
  size_t i = 0;
  while (i < values.size()) {
    const uint8_t v = values[i];
    size_t j = i + 1;
    while (j < values.size() && values[j] == v) ++j;
    rle.WriteU8(v);
    PutVarint(&rle, j - i);
    i = j;
  }
  if (n > 0 && rle.size() < values.size()) {
    PutBlockHeader(w, Codec::kRle, n);
    w->AppendRaw(rle.bytes().data(), rle.size());
    return Codec::kRle;
  }
  PutBlockHeader(w, Codec::kRaw, n);
  w->AppendRaw(values.data(), values.size());
  return Codec::kRaw;
}

Result<std::vector<uint8_t>> DecodeBools(BufferReader* r) {
  MIP_ASSIGN_OR_RETURN(
      BlockHeader h,
      ReadBlockHeader(r, CodecBit(Codec::kRaw) | CodecBit(Codec::kRle)));
  std::vector<uint8_t> out;
  if (h.codec == Codec::kRaw) {
    if (h.count > r->Remaining()) {
      return Status::IOError("truncated raw bool block");
    }
    out.resize(h.count);
    if (h.count > 0) MIP_RETURN_NOT_OK(r->ReadRawBytes(out.data(), h.count));
    return out;
  }
  out.reserve(h.count);
  while (out.size() < h.count) {
    MIP_ASSIGN_OR_RETURN(uint8_t v, r->ReadU8());
    MIP_ASSIGN_OR_RETURN(uint64_t run, GetVarint(r));
    if (run == 0) return ZeroRunError();
    if (run > h.count - out.size()) return RunOverflowError();
    out.insert(out.end(), run, v);
  }
  return out;
}

Codec EncodeStrings(const std::vector<std::string>& values, BufferWriter* w) {
  const uint64_t n = values.size();
  size_t raw_size = 0;
  for (const std::string& s : values) {
    raw_size += VarintSize(s.size()) + s.size();
  }
  // Candidate: first-appearance dictionary + per-row varint indices, sized
  // analytically before committing any bytes. More than kDictMaxEntries
  // distinct values spills to raw.
  std::unordered_map<std::string, uint32_t> index_of;
  std::vector<const std::string*> entries;
  std::vector<uint32_t> indices;
  indices.reserve(values.size());
  bool dict_viable = n > 0;
  size_t dict_size = 0;
  for (const std::string& s : values) {
    if (!dict_viable) break;
    auto [it, inserted] =
        index_of.emplace(s, static_cast<uint32_t>(entries.size()));
    if (inserted) {
      if (entries.size() >= kDictMaxEntries) {
        dict_viable = false;
        break;
      }
      entries.push_back(&s);
      dict_size += VarintSize(s.size()) + s.size();
    }
    indices.push_back(it->second);
    dict_size += VarintSize(it->second);
  }
  if (dict_viable) {
    dict_size += VarintSize(entries.size());
    if (dict_size < raw_size) {
      PutBlockHeader(w, Codec::kDict, n);
      PutVarint(w, entries.size());
      for (const std::string* s : entries) {
        PutVarint(w, s->size());
        w->AppendRaw(s->data(), s->size());
      }
      for (uint32_t idx : indices) PutVarint(w, idx);
      return Codec::kDict;
    }
  }
  PutBlockHeader(w, Codec::kRaw, n);
  for (const std::string& s : values) {
    PutVarint(w, s.size());
    w->AppendRaw(s.data(), s.size());
  }
  return Codec::kRaw;
}

Result<std::vector<std::string>> DecodeStrings(BufferReader* r) {
  MIP_ASSIGN_OR_RETURN(
      BlockHeader h,
      ReadBlockHeader(r, CodecBit(Codec::kRaw) | CodecBit(Codec::kDict)));
  std::vector<std::string> out;
  if (h.codec == Codec::kRaw) {
    if (h.count > r->Remaining()) {
      return Status::IOError("truncated raw string block");
    }
    out.reserve(h.count);
    for (uint64_t i = 0; i < h.count; ++i) {
      MIP_ASSIGN_OR_RETURN(uint64_t len, GetVarint(r));
      if (len > r->Remaining()) {
        return Status::IOError("truncated string payload");
      }
      std::string s(len, '\0');
      if (len > 0) MIP_RETURN_NOT_OK(r->ReadRawBytes(s.data(), len));
      out.push_back(std::move(s));
    }
    return out;
  }
  MIP_ASSIGN_OR_RETURN(uint64_t num_entries, GetVarint(r));
  if (num_entries > kDictMaxEntries) {
    return Status::IOError("string dictionary exceeds the entry limit");
  }
  if (num_entries > r->Remaining()) {
    return Status::IOError("truncated string dictionary");
  }
  std::vector<std::string> dict;
  dict.reserve(num_entries);
  for (uint64_t i = 0; i < num_entries; ++i) {
    MIP_ASSIGN_OR_RETURN(uint64_t len, GetVarint(r));
    if (len > r->Remaining()) {
      return Status::IOError("truncated dictionary entry");
    }
    std::string s(len, '\0');
    if (len > 0) MIP_RETURN_NOT_OK(r->ReadRawBytes(s.data(), len));
    dict.push_back(std::move(s));
  }
  if (h.count > r->Remaining()) {
    return Status::IOError("truncated dictionary index block");
  }
  out.reserve(h.count);
  for (uint64_t i = 0; i < h.count; ++i) {
    MIP_ASSIGN_OR_RETURN(uint64_t idx, GetVarint(r));
    if (idx >= dict.size()) {
      return Status::IOError("dictionary index out of range");
    }
    out.push_back(dict[idx]);
  }
  return out;
}

Codec EncodeValidity(const Bitmap& validity, BufferWriter* w) {
  const size_t n = validity.length();
  const size_t raw_size = ((n + 63) / 64) * sizeof(uint64_t);
  // Candidate: RLE over bit runs — validity is usually a few long runs.
  BufferWriter rle;
  size_t i = 0;
  while (i < n) {
    const bool v = validity.Get(i);
    size_t j = i + 1;
    while (j < n && validity.Get(j) == v) ++j;
    rle.WriteU8(v ? 1 : 0);
    PutVarint(&rle, j - i);
    i = j;
  }
  if (n > 0 && rle.size() < raw_size) {
    PutBlockHeader(w, Codec::kRle, n);
    w->AppendRaw(rle.bytes().data(), rle.size());
    return Codec::kRle;
  }
  PutBlockHeader(w, Codec::kRaw, n);
  // Canonical packed words rebuilt from the bits (never trailing garbage).
  std::vector<uint64_t> words((n + 63) / 64, 0);
  for (size_t b = 0; b < n; ++b) {
    if (validity.Get(b)) words[b >> 6] |= 1ull << (b & 63);
  }
  w->AppendRaw(words.data(), raw_size);
  return Codec::kRaw;
}

Result<Bitmap> DecodeValidity(BufferReader* r) {
  MIP_ASSIGN_OR_RETURN(
      BlockHeader h,
      ReadBlockHeader(r, CodecBit(Codec::kRaw) | CodecBit(Codec::kRle)));
  Bitmap out(h.count, true);
  if (h.codec == Codec::kRaw) {
    const size_t num_words = (h.count + 63) / 64;
    if (num_words * sizeof(uint64_t) > r->Remaining()) {
      return Status::IOError("truncated validity word block");
    }
    std::vector<uint64_t> words(num_words);
    if (num_words > 0) {
      MIP_RETURN_NOT_OK(r->ReadRawBytes(words.data(),
                                        num_words * sizeof(uint64_t)));
    }
    for (uint64_t i = 0; i < h.count; ++i) {
      if (((words[i >> 6] >> (i & 63)) & 1ull) == 0) out.Set(i, false);
    }
    return out;
  }
  uint64_t total = 0;
  while (total < h.count) {
    MIP_ASSIGN_OR_RETURN(uint8_t v, r->ReadU8());
    MIP_ASSIGN_OR_RETURN(uint64_t run, GetVarint(r));
    if (run == 0) return ZeroRunError();
    if (run > h.count - total) return RunOverflowError();
    if (v == 0) {
      for (uint64_t i = 0; i < run; ++i) out.Set(total + i, false);
    }
    total += run;
  }
  return out;
}

}  // namespace mip::engine
