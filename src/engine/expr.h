#ifndef MIP_ENGINE_EXPR_H_
#define MIP_ENGINE_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/table.h"
#include "engine/value.h"

namespace mip::engine {

class FunctionRegistry;

enum class ExprKind {
  kLiteral,
  kColumnRef,
  kUnary,
  kBinary,
  kCall,       ///< scalar function (built-in or registered UDF)
  kAggregate,  ///< aggregate function; only valid in select lists
  kStar,       ///< `*` inside COUNT(*)
  /// CASE WHEN c1 THEN v1 [WHEN c2 THEN v2 ...] [ELSE e] END.
  /// args = [c1, v1, c2, v2, ..., else?]; odd arg count means an ELSE is
  /// present as the last entry.
  kCase,
};

enum class BinaryOp {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
};

enum class UnaryOp {
  kNeg,
  kNot,
  kIsNull,
  kIsNotNull,
};

enum class AggFunc {
  kCountStar,
  kCount,
  kCountDistinct,
  kSum,
  kAvg,
  kMin,
  kMax,
  kVarSamp,
  kStddevSamp,
};

const char* BinaryOpName(BinaryOp op);
const char* AggFuncName(AggFunc func);

/// \brief Scalar expression tree.
///
/// Expressions are built with the factory helpers below (or by the SQL
/// parser), then bound against a Schema, then executed by one of three
/// engines: the row interpreter (engine/row_interpreter.h), the vectorized
/// evaluator (engine/vectorized.h), or a compiled VectorProgram
/// (engine/vector_program.h).
struct Expr {
  ExprKind kind = ExprKind::kLiteral;

  Value literal;            ///< kLiteral
  std::string column_name;  ///< kColumnRef
  BinaryOp binary_op = BinaryOp::kAdd;
  UnaryOp unary_op = UnaryOp::kNeg;
  std::string func_name;  ///< kCall
  AggFunc agg = AggFunc::kCountStar;
  std::vector<std::shared_ptr<Expr>> args;

  // Filled by BindExpr:
  int bound_index = -1;  ///< column ordinal for kColumnRef
  DataType result_type = DataType::kFloat64;
  bool bound = false;

  /// Canonical text form; also used to match GROUP BY keys against
  /// select-list items.
  std::string ToString() const;

  /// True if any node in the tree is an aggregate.
  bool ContainsAggregate() const;
};

using ExprPtr = std::shared_ptr<Expr>;

// --- Factory helpers -------------------------------------------------------

ExprPtr Lit(Value v);
ExprPtr LitInt(int64_t v);
ExprPtr LitDouble(double v);
ExprPtr LitString(std::string v);
ExprPtr Col(std::string name);
ExprPtr Unary(UnaryOp op, ExprPtr a);
ExprPtr Binary(BinaryOp op, ExprPtr a, ExprPtr b);
ExprPtr Add(ExprPtr a, ExprPtr b);
ExprPtr Sub(ExprPtr a, ExprPtr b);
ExprPtr Mul(ExprPtr a, ExprPtr b);
ExprPtr Div(ExprPtr a, ExprPtr b);
ExprPtr Eq(ExprPtr a, ExprPtr b);
ExprPtr Lt(ExprPtr a, ExprPtr b);
ExprPtr Gt(ExprPtr a, ExprPtr b);
ExprPtr And(ExprPtr a, ExprPtr b);
ExprPtr Or(ExprPtr a, ExprPtr b);
ExprPtr Call(std::string func, std::vector<ExprPtr> args);
ExprPtr Aggregate(AggFunc func, ExprPtr arg);
ExprPtr CountStar();
/// args as documented on ExprKind::kCase.
ExprPtr CaseWhen(std::vector<ExprPtr> args);

/// True when `lower_name` (already lowercased) names one of the engine's
/// built-in scalar functions. Built-ins evaluate identically on every node,
/// unlike UDFs, which are registered per-database — the distinction gates
/// which predicates the optimizer may ship to a remote scan.
bool IsBuiltinScalarFunction(const std::string& lower_name);

/// \brief Resolves column references against `schema`, type-checks the tree,
/// and annotates every node with its result type.
///
/// `registry` resolves scalar UDF calls; pass nullptr if only built-ins
/// (abs, sqrt, ln, exp, pow, floor, ceil, round, coalesce, least, greatest)
/// may appear.
Status BindExpr(Expr* expr, const Schema& schema,
                const FunctionRegistry* registry = nullptr);

}  // namespace mip::engine

#endif  // MIP_ENGINE_EXPR_H_
