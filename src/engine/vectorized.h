#ifndef MIP_ENGINE_VECTORIZED_H_
#define MIP_ENGINE_VECTORIZED_H_

#include "common/result.h"
#include "engine/exec_context.h"
#include "engine/expr.h"
#include "engine/table.h"

namespace mip::engine {

class FunctionRegistry;

/// \brief Column-at-a-time expression evaluation.
///
/// Each operator node materializes a full intermediate column and applies a
/// tight loop over raw arrays — the execution model of columnar engines like
/// the one MIP deploys on each Worker. Fast for analytics; intermediates are
/// full-column sized (the JIT-fused VectorProgram removes that memory
/// traffic, see engine/vector_program.h).
///
/// The numeric kernels dispatch per-morsel on `exec` (nullptr resolves to
/// ExecContext::Default()); the string/UDF/CASE fallback paths stay serial.
/// Results are identical at any thread count — elementwise kernels write
/// disjoint index ranges.
///
/// The expression must have been bound with BindExpr against the table's
/// schema.
Result<Column> EvalVectorized(const Expr& expr, const Table& table,
                              const FunctionRegistry* registry = nullptr,
                              const ExecContext* exec = nullptr);

/// \brief Dense double view of a column: values where valid, NaN for nulls
/// and strings. One typed pass per column type plus a word-level validity
/// expansion — the kernels' conversion fast path (vs. the per-element
/// AsDoubleAt type switch; see bench_engine's DenseDoubles micro-bench).
std::vector<double> DenseDoubles(const Column& col,
                                 const ExecContext* exec = nullptr);

/// \brief Evaluates a predicate expression to a selection vector: indices of
/// rows where the predicate is non-null and true. Rows are scanned per-morsel
/// and the per-morsel selections are concatenated in morsel order, so the
/// result equals the serial scan's at any thread count.
Result<std::vector<int64_t>> EvalPredicate(
    const Expr& expr, const Table& table,
    const FunctionRegistry* registry = nullptr,
    const ExecContext* exec = nullptr);

}  // namespace mip::engine

#endif  // MIP_ENGINE_VECTORIZED_H_
