#ifndef MIP_ENGINE_VECTORIZED_H_
#define MIP_ENGINE_VECTORIZED_H_

#include "common/result.h"
#include "engine/expr.h"
#include "engine/table.h"

namespace mip::engine {

class FunctionRegistry;

/// \brief Column-at-a-time expression evaluation.
///
/// Each operator node materializes a full intermediate column and applies a
/// tight loop over raw arrays — the execution model of columnar engines like
/// the one MIP deploys on each Worker. Fast for analytics; intermediates are
/// full-column sized (the JIT-fused VectorProgram removes that memory
/// traffic, see engine/vector_program.h).
///
/// The expression must have been bound with BindExpr against the table's
/// schema.
Result<Column> EvalVectorized(const Expr& expr, const Table& table,
                              const FunctionRegistry* registry = nullptr);

/// \brief Evaluates a predicate expression to a selection vector: indices of
/// rows where the predicate is non-null and true.
Result<std::vector<int64_t>> EvalPredicate(
    const Expr& expr, const Table& table,
    const FunctionRegistry* registry = nullptr);

}  // namespace mip::engine

#endif  // MIP_ENGINE_VECTORIZED_H_
