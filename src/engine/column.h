#ifndef MIP_ENGINE_COLUMN_H_
#define MIP_ENGINE_COLUMN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/bitmap.h"
#include "engine/type.h"
#include "engine/value.h"

namespace mip::engine {

/// \brief A typed, nullable, contiguous column of values.
///
/// Storage is a dense typed vector plus an optional validity bitmap. A column
/// with no nulls carries no bitmap (`has_validity() == false`), so vectorized
/// kernels can run branch-free over raw arrays — the layout property the MIP
/// paper leans on for in-database analytics performance.
class Column {
 public:
  explicit Column(DataType type = DataType::kFloat64) : type_(type) {}

  /// Builds an all-valid column from raw doubles.
  static Column FromDoubles(std::vector<double> values);
  /// Builds an all-valid column from raw int64s.
  static Column FromInts(std::vector<int64_t> values);
  /// Builds an all-valid column from raw bools.
  static Column FromBools(std::vector<uint8_t> values);
  /// Builds an all-valid column from strings.
  static Column FromStrings(std::vector<std::string> values);

  DataType type() const { return type_; }
  size_t length() const { return length_; }

  bool has_validity() const { return validity_.length() > 0; }
  bool IsValid(size_t i) const {
    return !has_validity() || validity_.Get(i);
  }
  /// Number of null entries.
  size_t null_count() const {
    return has_validity() ? length_ - validity_.CountSet() : 0;
  }

  // --- Typed element access (caller must respect type()). ---
  int64_t IntAt(size_t i) const { return ints_[i]; }
  double DoubleAt(size_t i) const { return doubles_[i]; }
  bool BoolAt(size_t i) const { return bools_[i] != 0; }
  const std::string& StringAt(size_t i) const { return strings_[i]; }

  /// Numeric view of element i (bool -> 0/1, int -> double); NaN for nulls
  /// and strings.
  double AsDoubleAt(size_t i) const;

  /// Boxed view of element i.
  Value ValueAt(size_t i) const;

  // --- Appending (builder-style use). ---
  void AppendNull();
  void AppendInt(int64_t v);
  void AppendDouble(double v);
  void AppendBool(bool v);
  void AppendString(std::string v);
  /// Appends a boxed value, coercing numerics to the column type.
  Status AppendValue(const Value& v);

  /// Reserves capacity in the underlying typed vector.
  void Reserve(size_t n);

  /// Appends every row of `other` (same type; Table::Concat validates) via
  /// typed bulk copies — the unboxed path behind merge-table concatenation.
  void AppendFrom(const Column& other);

  /// Gathers rows by index.
  Column Take(const std::vector<int64_t>& indices) const;

  /// Contiguous sub-range [offset, offset + count).
  Column Slice(size_t offset, size_t count) const;

  /// Raw storage (kernels only; type must match).
  const std::vector<double>& doubles() const { return doubles_; }
  const std::vector<int64_t>& ints() const { return ints_; }
  const std::vector<uint8_t>& bools() const { return bools_; }
  const std::vector<std::string>& strings() const { return strings_; }
  std::vector<double>& mutable_doubles() { return doubles_; }
  std::vector<int64_t>& mutable_ints() { return ints_; }
  std::vector<uint8_t>& mutable_bools() { return bools_; }
  std::vector<std::string>& mutable_strings() { return strings_; }

  /// Installs a validity bitmap (length must equal column length).
  Status SetValidity(Bitmap validity);
  const Bitmap& validity() const { return validity_; }

  /// Dense vector of the non-null numeric values (drops nulls) — the common
  /// hand-off from engine storage to the stats substrate.
  std::vector<double> NonNullDoubles() const;

 private:
  void EnsureValidity();

  DataType type_;
  size_t length_ = 0;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<uint8_t> bools_;
  std::vector<std::string> strings_;
  Bitmap validity_;  // empty => all valid
};

}  // namespace mip::engine

#endif  // MIP_ENGINE_COLUMN_H_
