#include "engine/type.h"

namespace mip::engine {

const char* DataTypeName(DataType type) {
  switch (type) {
    case DataType::kBool:
      return "boolean";
    case DataType::kInt64:
      return "bigint";
    case DataType::kFloat64:
      return "double";
    case DataType::kString:
      return "varchar";
  }
  return "unknown";
}

bool IsNumeric(DataType type) {
  return type == DataType::kBool || type == DataType::kInt64 ||
         type == DataType::kFloat64;
}

DataType PromoteNumeric(DataType a, DataType b) {
  if (a == DataType::kFloat64 || b == DataType::kFloat64) {
    return DataType::kFloat64;
  }
  if (a == DataType::kInt64 || b == DataType::kInt64) return DataType::kInt64;
  return DataType::kBool;
}

}  // namespace mip::engine
