#include "engine/column.h"

#include <cmath>
#include <limits>

namespace mip::engine {

Column Column::FromDoubles(std::vector<double> values) {
  Column c(DataType::kFloat64);
  c.length_ = values.size();
  c.doubles_ = std::move(values);
  return c;
}

Column Column::FromInts(std::vector<int64_t> values) {
  Column c(DataType::kInt64);
  c.length_ = values.size();
  c.ints_ = std::move(values);
  return c;
}

Column Column::FromBools(std::vector<uint8_t> values) {
  Column c(DataType::kBool);
  c.length_ = values.size();
  c.bools_ = std::move(values);
  return c;
}

Column Column::FromStrings(std::vector<std::string> values) {
  Column c(DataType::kString);
  c.length_ = values.size();
  c.strings_ = std::move(values);
  return c;
}

double Column::AsDoubleAt(size_t i) const {
  if (!IsValid(i)) return std::numeric_limits<double>::quiet_NaN();
  switch (type_) {
    case DataType::kBool:
      return bools_[i] ? 1.0 : 0.0;
    case DataType::kInt64:
      return static_cast<double>(ints_[i]);
    case DataType::kFloat64:
      return doubles_[i];
    case DataType::kString:
      return std::numeric_limits<double>::quiet_NaN();
  }
  return std::numeric_limits<double>::quiet_NaN();
}

Value Column::ValueAt(size_t i) const {
  if (!IsValid(i)) return Value::Null();
  switch (type_) {
    case DataType::kBool:
      return Value::Bool(bools_[i] != 0);
    case DataType::kInt64:
      return Value::Int(ints_[i]);
    case DataType::kFloat64:
      return Value::Double(doubles_[i]);
    case DataType::kString:
      return Value::String(strings_[i]);
  }
  return Value::Null();
}

void Column::EnsureValidity() {
  if (!has_validity()) validity_ = Bitmap(length_, true);
}

void Column::AppendNull() {
  EnsureValidity();
  switch (type_) {
    case DataType::kBool:
      bools_.push_back(0);
      break;
    case DataType::kInt64:
      ints_.push_back(0);
      break;
    case DataType::kFloat64:
      doubles_.push_back(std::numeric_limits<double>::quiet_NaN());
      break;
    case DataType::kString:
      strings_.emplace_back();
      break;
  }
  validity_.Append(false);
  ++length_;
}

void Column::AppendInt(int64_t v) {
  ints_.push_back(v);
  if (has_validity()) validity_.Append(true);
  ++length_;
}

void Column::AppendDouble(double v) {
  doubles_.push_back(v);
  if (has_validity()) validity_.Append(true);
  ++length_;
}

void Column::AppendBool(bool v) {
  bools_.push_back(v ? 1 : 0);
  if (has_validity()) validity_.Append(true);
  ++length_;
}

void Column::AppendString(std::string v) {
  strings_.push_back(std::move(v));
  if (has_validity()) validity_.Append(true);
  ++length_;
}

Status Column::AppendValue(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return Status::OK();
  }
  switch (type_) {
    case DataType::kBool:
      AppendBool(v.AsBool());
      return Status::OK();
    case DataType::kInt64:
      if (v.kind() == Value::Kind::kString) {
        return Status::TypeError("cannot append string to bigint column");
      }
      AppendInt(v.AsInt());
      return Status::OK();
    case DataType::kFloat64:
      if (v.kind() == Value::Kind::kString) {
        return Status::TypeError("cannot append string to double column");
      }
      AppendDouble(v.AsDouble());
      return Status::OK();
    case DataType::kString:
      if (v.kind() != Value::Kind::kString) {
        AppendString(v.ToString());
      } else {
        AppendString(v.string_value());
      }
      return Status::OK();
  }
  return Status::Internal("unknown column type");
}

void Column::Reserve(size_t n) {
  switch (type_) {
    case DataType::kBool:
      bools_.reserve(n);
      break;
    case DataType::kInt64:
      ints_.reserve(n);
      break;
    case DataType::kFloat64:
      doubles_.reserve(n);
      break;
    case DataType::kString:
      strings_.reserve(n);
      break;
  }
}

Column Column::Take(const std::vector<int64_t>& indices) const {
  Column out(type_);
  out.Reserve(indices.size());
  for (int64_t idx : indices) {
    const size_t i = static_cast<size_t>(idx);
    if (!IsValid(i)) {
      out.AppendNull();
      continue;
    }
    switch (type_) {
      case DataType::kBool:
        out.AppendBool(bools_[i] != 0);
        break;
      case DataType::kInt64:
        out.AppendInt(ints_[i]);
        break;
      case DataType::kFloat64:
        out.AppendDouble(doubles_[i]);
        break;
      case DataType::kString:
        out.AppendString(strings_[i]);
        break;
    }
  }
  return out;
}

Column Column::Slice(size_t offset, size_t count) const {
  std::vector<int64_t> idx;
  idx.reserve(count);
  for (size_t i = offset; i < offset + count && i < length_; ++i) {
    idx.push_back(static_cast<int64_t>(i));
  }
  return Take(idx);
}

Status Column::SetValidity(Bitmap validity) {
  if (validity.length() != length_) {
    return Status::InvalidArgument("validity length mismatch");
  }
  validity_ = std::move(validity);
  return Status::OK();
}

std::vector<double> Column::NonNullDoubles() const {
  std::vector<double> out;
  out.reserve(length_);
  for (size_t i = 0; i < length_; ++i) {
    if (!IsValid(i)) continue;
    const double v = AsDoubleAt(i);
    if (!std::isnan(v)) out.push_back(v);
  }
  return out;
}

}  // namespace mip::engine
