#include "engine/column.h"

#include <cmath>
#include <limits>

namespace mip::engine {

Column Column::FromDoubles(std::vector<double> values) {
  Column c(DataType::kFloat64);
  c.length_ = values.size();
  c.doubles_ = std::move(values);
  return c;
}

Column Column::FromInts(std::vector<int64_t> values) {
  Column c(DataType::kInt64);
  c.length_ = values.size();
  c.ints_ = std::move(values);
  return c;
}

Column Column::FromBools(std::vector<uint8_t> values) {
  Column c(DataType::kBool);
  c.length_ = values.size();
  c.bools_ = std::move(values);
  return c;
}

Column Column::FromStrings(std::vector<std::string> values) {
  Column c(DataType::kString);
  c.length_ = values.size();
  c.strings_ = std::move(values);
  return c;
}

double Column::AsDoubleAt(size_t i) const {
  if (!IsValid(i)) return std::numeric_limits<double>::quiet_NaN();
  switch (type_) {
    case DataType::kBool:
      return bools_[i] ? 1.0 : 0.0;
    case DataType::kInt64:
      return static_cast<double>(ints_[i]);
    case DataType::kFloat64:
      return doubles_[i];
    case DataType::kString:
      return std::numeric_limits<double>::quiet_NaN();
  }
  return std::numeric_limits<double>::quiet_NaN();
}

Value Column::ValueAt(size_t i) const {
  if (!IsValid(i)) return Value::Null();
  switch (type_) {
    case DataType::kBool:
      return Value::Bool(bools_[i] != 0);
    case DataType::kInt64:
      return Value::Int(ints_[i]);
    case DataType::kFloat64:
      return Value::Double(doubles_[i]);
    case DataType::kString:
      return Value::String(strings_[i]);
  }
  return Value::Null();
}

void Column::EnsureValidity() {
  if (!has_validity()) validity_ = Bitmap(length_, true);
}

void Column::AppendNull() {
  EnsureValidity();
  switch (type_) {
    case DataType::kBool:
      bools_.push_back(0);
      break;
    case DataType::kInt64:
      ints_.push_back(0);
      break;
    case DataType::kFloat64:
      doubles_.push_back(std::numeric_limits<double>::quiet_NaN());
      break;
    case DataType::kString:
      strings_.emplace_back();
      break;
  }
  validity_.Append(false);
  ++length_;
}

void Column::AppendInt(int64_t v) {
  ints_.push_back(v);
  if (has_validity()) validity_.Append(true);
  ++length_;
}

void Column::AppendDouble(double v) {
  doubles_.push_back(v);
  if (has_validity()) validity_.Append(true);
  ++length_;
}

void Column::AppendBool(bool v) {
  bools_.push_back(v ? 1 : 0);
  if (has_validity()) validity_.Append(true);
  ++length_;
}

void Column::AppendString(std::string v) {
  strings_.push_back(std::move(v));
  if (has_validity()) validity_.Append(true);
  ++length_;
}

Status Column::AppendValue(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return Status::OK();
  }
  switch (type_) {
    case DataType::kBool:
      AppendBool(v.AsBool());
      return Status::OK();
    case DataType::kInt64:
      if (v.kind() == Value::Kind::kString) {
        return Status::TypeError("cannot append string to bigint column");
      }
      AppendInt(v.AsInt());
      return Status::OK();
    case DataType::kFloat64:
      if (v.kind() == Value::Kind::kString) {
        return Status::TypeError("cannot append string to double column");
      }
      AppendDouble(v.AsDouble());
      return Status::OK();
    case DataType::kString:
      if (v.kind() != Value::Kind::kString) {
        AppendString(v.ToString());
      } else {
        AppendString(v.string_value());
      }
      return Status::OK();
  }
  return Status::Internal("unknown column type");
}

void Column::Reserve(size_t n) {
  switch (type_) {
    case DataType::kBool:
      bools_.reserve(n);
      break;
    case DataType::kInt64:
      ints_.reserve(n);
      break;
    case DataType::kFloat64:
      doubles_.reserve(n);
      break;
    case DataType::kString:
      strings_.reserve(n);
      break;
  }
}

void Column::AppendFrom(const Column& other) {
  // Null storage slots are re-canonicalized (NaN / 0 / "") below, exactly
  // what the old boxed AppendValue path produced, so serialized bytes are
  // unchanged.
  const size_t base = length_;
  switch (type_) {
    case DataType::kBool:
      bools_.insert(bools_.end(), other.bools_.begin(), other.bools_.end());
      if (other.has_validity()) {
        for (size_t i = 0; i < other.length_; ++i) {
          if (!other.validity_.Get(i)) bools_[base + i] = 0;
        }
      }
      break;
    case DataType::kInt64:
      ints_.insert(ints_.end(), other.ints_.begin(), other.ints_.end());
      if (other.has_validity()) {
        for (size_t i = 0; i < other.length_; ++i) {
          if (!other.validity_.Get(i)) ints_[base + i] = 0;
        }
      }
      break;
    case DataType::kFloat64:
      doubles_.insert(doubles_.end(), other.doubles_.begin(),
                      other.doubles_.end());
      if (other.has_validity()) {
        for (size_t i = 0; i < other.length_; ++i) {
          if (!other.validity_.Get(i)) {
            doubles_[base + i] = std::numeric_limits<double>::quiet_NaN();
          }
        }
      }
      break;
    case DataType::kString:
      strings_.insert(strings_.end(), other.strings_.begin(),
                      other.strings_.end());
      if (other.has_validity()) {
        for (size_t i = 0; i < other.length_; ++i) {
          if (!other.validity_.Get(i)) strings_[base + i].clear();
        }
      }
      break;
  }
  // The bitmap stays absent until an actual null arrives (the branch-free
  // fast-path invariant): materialize only when either side carries one.
  if (other.has_validity()) {
    EnsureValidity();  // length_ is still the pre-append length here
    for (size_t i = 0; i < other.length_; ++i) {
      validity_.Append(other.validity_.Get(i));
    }
  } else if (has_validity()) {
    for (size_t i = 0; i < other.length_; ++i) validity_.Append(true);
  }
  length_ = base + other.length_;
}

Column Column::Take(const std::vector<int64_t>& indices) const {
  Column out(type_);
  const size_t n = indices.size();
  // Typed gather, no per-cell Value boxing; null slots get the canonical
  // storage values AppendNull would have written.
  switch (type_) {
    case DataType::kBool: {
      out.bools_.resize(n);
      for (size_t k = 0; k < n; ++k) {
        const size_t i = static_cast<size_t>(indices[k]);
        out.bools_[k] = IsValid(i) ? bools_[i] : 0;
      }
      break;
    }
    case DataType::kInt64: {
      out.ints_.resize(n);
      for (size_t k = 0; k < n; ++k) {
        const size_t i = static_cast<size_t>(indices[k]);
        out.ints_[k] = IsValid(i) ? ints_[i] : 0;
      }
      break;
    }
    case DataType::kFloat64: {
      out.doubles_.resize(n);
      for (size_t k = 0; k < n; ++k) {
        const size_t i = static_cast<size_t>(indices[k]);
        out.doubles_[k] = IsValid(i)
                              ? doubles_[i]
                              : std::numeric_limits<double>::quiet_NaN();
      }
      break;
    }
    case DataType::kString: {
      out.strings_.resize(n);
      for (size_t k = 0; k < n; ++k) {
        const size_t i = static_cast<size_t>(indices[k]);
        if (IsValid(i)) out.strings_[k] = strings_[i];
      }
      break;
    }
  }
  out.length_ = n;
  if (has_validity()) {
    Bitmap bm(n, true);
    bool any_null = false;
    for (size_t k = 0; k < n; ++k) {
      if (!validity_.Get(static_cast<size_t>(indices[k]))) {
        bm.Set(k, false);
        any_null = true;
      }
    }
    if (any_null) out.validity_ = std::move(bm);
  }
  return out;
}

Column Column::Slice(size_t offset, size_t count) const {
  std::vector<int64_t> idx;
  idx.reserve(count);
  for (size_t i = offset; i < offset + count && i < length_; ++i) {
    idx.push_back(static_cast<int64_t>(i));
  }
  return Take(idx);
}

Status Column::SetValidity(Bitmap validity) {
  if (validity.length() != length_) {
    return Status::InvalidArgument("validity length mismatch");
  }
  validity_ = std::move(validity);
  return Status::OK();
}

std::vector<double> Column::NonNullDoubles() const {
  std::vector<double> out;
  out.reserve(length_);
  for (size_t i = 0; i < length_; ++i) {
    if (!IsValid(i)) continue;
    const double v = AsDoubleAt(i);
    if (!std::isnan(v)) out.push_back(v);
  }
  return out;
}

}  // namespace mip::engine
