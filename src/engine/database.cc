#include "engine/database.h"

#include <set>

#include "common/string_util.h"
#include "engine/operators.h"
#include "engine/sql_parser.h"
#include "engine/vectorized.h"

namespace mip::engine {

namespace {

ExprPtr CloneExpr(const Expr& e) {
  auto out = std::make_shared<Expr>(e);
  out->args.clear();
  for (const auto& a : e.args) out->args.push_back(CloneExpr(*a));
  return out;
}

/// Replaces every aggregate node in `expr` with a column reference to a
/// hidden aggregate output, appending the extracted AggregateSpec to `specs`.
/// Identical aggregates (by text) are extracted once.
ExprPtr ExtractAggregates(const Expr& expr,
                          std::vector<AggregateSpec>* specs,
                          std::map<std::string, std::string>* seen) {
  if (expr.kind == ExprKind::kAggregate) {
    const std::string text = expr.ToString();
    auto it = seen->find(text);
    if (it != seen->end()) return Col(it->second);
    const std::string name = "__agg" + std::to_string(specs->size());
    AggregateSpec spec;
    spec.func = expr.agg;
    spec.arg = expr.args.empty() ? nullptr : CloneExpr(*expr.args[0]);
    spec.output_name = name;
    specs->push_back(std::move(spec));
    seen->emplace(text, name);
    return Col(name);
  }
  auto out = std::make_shared<Expr>(expr);
  out->args.clear();
  for (const auto& a : expr.args) {
    out->args.push_back(ExtractAggregates(*a, specs, seen));
  }
  return out;
}

// Keeps the first occurrence of each distinct row (SELECT DISTINCT).
Table DedupRows(const Table& table) {
  std::set<std::string> seen;
  std::vector<int64_t> keep;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    std::string key;
    for (size_t c = 0; c < table.num_columns(); ++c) {
      const Value v = table.At(r, c);
      key.push_back(static_cast<char>(v.kind()));
      key += v.ToString();
      key.push_back('\x1f');
    }
    if (seen.insert(std::move(key)).second) {
      keep.push_back(static_cast<int64_t>(r));
    }
  }
  return table.Take(keep);
}

std::string DefaultItemName(const SelectItem& item, size_t ordinal) {
  if (!item.alias.empty()) return item.alias;
  if (item.expr->kind == ExprKind::kColumnRef) return item.expr->column_name;
  if (item.expr->kind == ExprKind::kAggregate) {
    if (item.expr->agg == AggFunc::kCountStar) return "count";
    std::string base = AggFuncName(item.expr->agg);
    if (!item.expr->args.empty() &&
        item.expr->args[0]->kind == ExprKind::kColumnRef) {
      return base + "_" + ToLower(item.expr->args[0]->column_name);
    }
    return base;
  }
  return "expr" + std::to_string(ordinal);
}

}  // namespace

Status Database::CreateTable(const std::string& table_name, Schema schema) {
  const std::string key = ToLower(table_name);
  if (tables_.count(key) > 0) {
    return Status::AlreadyExists("table '" + table_name + "' already exists");
  }
  Entry e;
  e.kind = Entry::Kind::kBase;
  e.table = Table::Empty(std::move(schema));
  tables_.emplace(key, std::move(e));
  return Status::OK();
}

Status Database::PutTable(const std::string& table_name, Table table) {
  Entry e;
  e.kind = Entry::Kind::kBase;
  e.table = std::move(table);
  tables_[ToLower(table_name)] = std::move(e);
  return Status::OK();
}

Status Database::DropTable(const std::string& table_name) {
  if (tables_.erase(ToLower(table_name)) == 0) {
    return Status::NotFound("table '" + table_name + "' does not exist");
  }
  return Status::OK();
}

bool Database::HasTable(const std::string& table_name) const {
  return tables_.count(ToLower(table_name)) > 0;
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [k, v] : tables_) names.push_back(k);
  return names;
}

Result<Table> Database::GetTable(const std::string& table_name) const {
  auto it = tables_.find(ToLower(table_name));
  if (it == tables_.end()) {
    return Status::NotFound("table '" + table_name + "' does not exist in " +
                            name_);
  }
  const Entry& e = it->second;
  switch (e.kind) {
    case Entry::Kind::kBase:
      return e.table;
    case Entry::Kind::kRemote:
      if (!fetcher_) {
        return Status::ExecutionError(
            "remote table '" + table_name +
            "' has no remote fetcher installed on database " + name_);
      }
      return fetcher_(e.location, e.remote_name);
    case Entry::Kind::kMerge: {
      std::vector<Table> parts;
      for (const std::string& part : e.parts) {
        MIP_ASSIGN_OR_RETURN(Table t, GetTable(part));
        parts.push_back(std::move(t));
      }
      return Table::Concat(parts);
    }
  }
  return Status::Internal("bad table entry kind");
}

Result<Schema> Database::GetSchema(const std::string& table_name) const {
  auto it = tables_.find(ToLower(table_name));
  if (it == tables_.end()) {
    return Status::NotFound("table '" + table_name + "' does not exist");
  }
  const Entry& e = it->second;
  if (e.kind == Entry::Kind::kBase) return e.table.schema();
  if (e.kind == Entry::Kind::kMerge && !e.parts.empty()) {
    return GetSchema(e.parts[0]);
  }
  MIP_ASSIGN_OR_RETURN(Table t, GetTable(table_name));
  return t.schema();
}

Result<Table> Database::ResolveTableRef(const TableRef& ref) {
  switch (ref.kind) {
    case TableRef::Kind::kNamed:
      return GetTable(ref.name);
    case TableRef::Kind::kFunction: {
      const auto* fn = functions_.FindTable(ref.func_name);
      if (fn == nullptr) {
        return Status::NotFound("unknown table function '" + ref.func_name +
                                "'");
      }
      return fn->fn(ref.func_args);
    }
    case TableRef::Kind::kJoin: {
      MIP_ASSIGN_OR_RETURN(Table left, ResolveTableRef(*ref.left));
      MIP_ASSIGN_OR_RETURN(Table right, ResolveTableRef(*ref.right));
      // The ON clause does not say which side each key belongs to; try
      // left.key on the left first, then swapped.
      if (left.schema().FieldIndex(ref.left_key) >= 0 &&
          right.schema().FieldIndex(ref.right_key) >= 0) {
        return HashJoin(left, right, ref.left_key, ref.right_key,
                        ref.join_type);
      }
      if (left.schema().FieldIndex(ref.right_key) >= 0 &&
          right.schema().FieldIndex(ref.left_key) >= 0) {
        return HashJoin(left, right, ref.right_key, ref.left_key,
                        ref.join_type);
      }
      return Status::NotFound("join keys not found: " + ref.left_key + ", " +
                              ref.right_key);
    }
  }
  return Status::Internal("bad table ref kind");
}

namespace {

/// The decomposed shape of an aggregate query: grouping keys, extracted
/// aggregate specs, the rewritten select items / HAVING over hidden
/// __key*/__agg* columns. Built unbound; each execution path binds against
/// its own schema.
struct AggregatePlan {
  std::vector<ExprPtr> key_exprs;  // unbound clones of GROUP BY expressions
  std::vector<std::string> key_names;
  std::vector<std::string> key_texts;
  std::vector<AggregateSpec> specs;  // args unbound
  struct OutputItem {
    ExprPtr rewritten;  // references __key*/__agg* columns
    std::string name;
  };
  std::vector<OutputItem> out_items;
  ExprPtr having_rewritten;
};

Result<AggregatePlan> BuildAggregatePlan(const SelectStmt& stmt) {
  AggregatePlan plan;
  for (size_t i = 0; i < stmt.group_by.size(); ++i) {
    plan.key_exprs.push_back(CloneExpr(*stmt.group_by[i]));
    plan.key_names.push_back("__key" + std::to_string(i));
    plan.key_texts.push_back(stmt.group_by[i]->ToString());
  }
  std::map<std::string, std::string> seen;
  for (size_t i = 0; i < stmt.items.size(); ++i) {
    const SelectItem& item = stmt.items[i];
    if (item.star) {
      return Status::InvalidArgument("'*' not allowed with GROUP BY");
    }
    AggregatePlan::OutputItem out;
    out.name = DefaultItemName(item, i);
    const std::string text = item.expr->ToString();
    int key_idx = -1;
    for (size_t k = 0; k < plan.key_texts.size(); ++k) {
      if (plan.key_texts[k] == text) {
        key_idx = static_cast<int>(k);
        break;
      }
    }
    if (key_idx >= 0) {
      out.rewritten = Col(plan.key_names[static_cast<size_t>(key_idx)]);
    } else {
      if (!item.expr->ContainsAggregate()) {
        return Status::InvalidArgument(
            "select item '" + text +
            "' is neither an aggregate nor a GROUP BY key");
      }
      out.rewritten = ExtractAggregates(*item.expr, &plan.specs, &seen);
    }
    plan.out_items.push_back(std::move(out));
  }
  if (stmt.having != nullptr) {
    plan.having_rewritten =
        ExtractAggregates(*stmt.having, &plan.specs, &seen);
  }
  return plan;
}

}  // namespace

Result<Table> Database::TryMergeAggregatePushdown(const SelectStmt& stmt) {
  if (stmt.from->kind != TableRef::Kind::kNamed) {
    return Status::NotImplemented("pushdown needs a named source");
  }
  auto it = tables_.find(ToLower(stmt.from->name));
  if (it == tables_.end() || it->second.kind != Entry::Kind::kMerge) {
    return Status::NotImplemented("pushdown applies to merge tables");
  }
  const std::vector<std::string> parts = it->second.parts;
  MIP_ASSIGN_OR_RETURN(AggregatePlan plan, BuildAggregatePlan(stmt));

  // Every aggregate must decompose into partial aggregates + a combiner.
  for (const AggregateSpec& spec : plan.specs) {
    if (spec.func == AggFunc::kCountDistinct) {
      return Status::NotImplemented("COUNT(DISTINCT) does not decompose");
    }
  }

  // --- Per-part partial SQL ------------------------------------------
  std::string select = "SELECT ";
  bool first = true;
  auto add = [&select, &first](const std::string& item) {
    if (!first) select += ", ";
    first = false;
    select += item;
  };
  for (size_t i = 0; i < plan.key_texts.size(); ++i) {
    add(plan.key_texts[i] + " AS " + plan.key_names[i]);
  }
  for (size_t j = 0; j < plan.specs.size(); ++j) {
    const AggregateSpec& spec = plan.specs[j];
    const std::string p = "__p" + std::to_string(j);
    const std::string arg =
        spec.arg != nullptr ? spec.arg->ToString() : "";
    switch (spec.func) {
      case AggFunc::kCountStar:
        add("count(*) AS " + p + "_a");
        break;
      case AggFunc::kCount:
        add("count(" + arg + ") AS " + p + "_a");
        break;
      case AggFunc::kSum:
        add("sum(" + arg + ") AS " + p + "_a");
        break;
      case AggFunc::kMin:
        add("min(" + arg + ") AS " + p + "_a");
        break;
      case AggFunc::kMax:
        add("max(" + arg + ") AS " + p + "_a");
        break;
      case AggFunc::kAvg:
        add("sum(" + arg + ") AS " + p + "_a");
        add("count(" + arg + ") AS " + p + "_b");
        break;
      case AggFunc::kVarSamp:
      case AggFunc::kStddevSamp:
        add("sum(" + arg + ") AS " + p + "_a");
        add("count(" + arg + ") AS " + p + "_b");
        add("sum((" + arg + ") * (" + arg + ")) AS " + p + "_c");
        break;
      case AggFunc::kCountDistinct:
        return Status::NotImplemented("unreachable");
    }
  }
  std::string tail;
  if (stmt.where != nullptr) tail += " WHERE " + stmt.where->ToString();
  if (!plan.key_texts.empty()) {
    tail += " GROUP BY ";
    for (size_t i = 0; i < plan.key_texts.size(); ++i) {
      if (i > 0) tail += ", ";
      tail += plan.key_texts[i];
    }
  }

  std::vector<Table> partials;
  for (const std::string& part : parts) {
    auto pit = tables_.find(ToLower(part));
    if (pit == tables_.end()) {
      return Status::NotFound("merge part '" + part + "' vanished");
    }
    if (pit->second.kind == Entry::Kind::kRemote && query_runner_) {
      // True pushdown: the partial aggregate runs on the remote node.
      const std::string sql =
          select + " FROM " + pit->second.remote_name + tail;
      MIP_ASSIGN_OR_RETURN(Table partial,
                           query_runner_(pit->second.location, sql));
      partials.push_back(std::move(partial));
    } else {
      // Local (or fetch-and-compute) partial.
      MIP_ASSIGN_OR_RETURN(Table partial,
                           ExecuteSql(select + " FROM " + part + tail));
      partials.push_back(std::move(partial));
    }
  }
  MIP_ASSIGN_OR_RETURN(Table unioned, Table::Concat(partials));

  // --- Combine stage ---------------------------------------------------
  std::vector<ExprPtr> combine_keys;
  for (const std::string& name : plan.key_names) {
    combine_keys.push_back(Col(name));
  }
  std::vector<AggregateSpec> combine_specs;
  for (size_t j = 0; j < plan.specs.size(); ++j) {
    const std::string p = "__p" + std::to_string(j);
    auto add_spec = [&combine_specs](AggFunc func, const std::string& in,
                                     const std::string& out) {
      AggregateSpec spec;
      spec.func = func;
      spec.arg = Col(in);
      spec.output_name = out;
      combine_specs.push_back(std::move(spec));
    };
    switch (plan.specs[j].func) {
      case AggFunc::kCountStar:
      case AggFunc::kCount:
      case AggFunc::kSum:
        add_spec(AggFunc::kSum, p + "_a", p + "_ca");
        break;
      case AggFunc::kMin:
        add_spec(AggFunc::kMin, p + "_a", p + "_ca");
        break;
      case AggFunc::kMax:
        add_spec(AggFunc::kMax, p + "_a", p + "_ca");
        break;
      case AggFunc::kAvg:
        add_spec(AggFunc::kSum, p + "_a", p + "_ca");
        add_spec(AggFunc::kSum, p + "_b", p + "_cb");
        break;
      case AggFunc::kVarSamp:
      case AggFunc::kStddevSamp:
        add_spec(AggFunc::kSum, p + "_a", p + "_ca");
        add_spec(AggFunc::kSum, p + "_b", p + "_cb");
        add_spec(AggFunc::kSum, p + "_c", p + "_cc");
        break;
      case AggFunc::kCountDistinct:
        break;
    }
  }
  for (ExprPtr& k : combine_keys) {
    MIP_RETURN_NOT_OK(BindExpr(k.get(), unioned.schema(), &functions_));
  }
  for (AggregateSpec& spec : combine_specs) {
    MIP_RETURN_NOT_OK(BindExpr(spec.arg.get(), unioned.schema(),
                               &functions_));
  }
  MIP_ASSIGN_OR_RETURN(
      Table combined,
      GroupByAggregate(unioned, combine_keys, plan.key_names, combine_specs,
                       &functions_, exec_context_));

  // --- Final __key*/__agg* projection ----------------------------------
  std::vector<ExprPtr> exprs;
  std::vector<std::string> names;
  for (const std::string& name : plan.key_names) {
    exprs.push_back(Col(name));
    names.push_back(name);
  }
  for (size_t j = 0; j < plan.specs.size(); ++j) {
    const std::string p = "__p" + std::to_string(j);
    ExprPtr value;
    switch (plan.specs[j].func) {
      case AggFunc::kCountStar:
      case AggFunc::kCount:
        // Sums of partial counts come back as doubles; cast to bigint so
        // the pushdown result matches the direct path's types.
        value = Call("cast_bigint", {Col(p + "_ca")});
        break;
      case AggFunc::kSum:
      case AggFunc::kMin:
      case AggFunc::kMax:
        value = Col(p + "_ca");
        break;
      case AggFunc::kAvg:
        value = Div(Col(p + "_ca"), Col(p + "_cb"));
        break;
      case AggFunc::kVarSamp:
      case AggFunc::kStddevSamp: {
        // (sum_sq - sum^2 / n) / (n - 1)
        ExprPtr n = Col(p + "_cb");
        ExprPtr var = Div(Sub(Col(p + "_cc"),
                              Div(Mul(Col(p + "_ca"), Col(p + "_ca")), n)),
                          Sub(n, LitDouble(1.0)));
        value = plan.specs[j].func == AggFunc::kStddevSamp
                    ? Call("sqrt", {var})
                    : var;
        break;
      }
      case AggFunc::kCountDistinct:
        break;
    }
    exprs.push_back(value);
    names.push_back("__agg" + std::to_string(j));
  }
  for (ExprPtr& e : exprs) {
    MIP_RETURN_NOT_OK(BindExpr(e.get(), combined.schema(), &functions_));
  }
  return Project(combined, exprs, names, &functions_, exec_context_);
}

Result<Table> Database::ExecuteSelect(const SelectStmt& stmt) {
  bool has_aggregate = !stmt.group_by.empty();
  for (const SelectItem& item : stmt.items) {
    if (!item.star && item.expr->ContainsAggregate()) has_aggregate = true;
  }

  Table output;
  if (has_aggregate) {
    MIP_ASSIGN_OR_RETURN(AggregatePlan plan, BuildAggregatePlan(stmt));
    Table agg;
    bool have_agg = false;
    if (aggregate_pushdown_) {
      Result<Table> pushed = TryMergeAggregatePushdown(stmt);
      if (pushed.ok()) {
        agg = pushed.MoveValueUnsafe();
        have_agg = true;
      } else if (pushed.status().code() != StatusCode::kNotImplemented) {
        return pushed.status();
      }
    }
    if (!have_agg) {
      MIP_ASSIGN_OR_RETURN(Table input, ResolveTableRef(*stmt.from));
      if (stmt.where != nullptr) {
        MIP_RETURN_NOT_OK(
            BindExpr(stmt.where.get(), input.schema(), &functions_));
        MIP_ASSIGN_OR_RETURN(input, Filter(input, *stmt.where, &functions_, exec_context_));
      }
      for (ExprPtr& key : plan.key_exprs) {
        MIP_RETURN_NOT_OK(BindExpr(key.get(), input.schema(), &functions_));
      }
      for (AggregateSpec& spec : plan.specs) {
        if (spec.arg != nullptr) {
          MIP_RETURN_NOT_OK(
              BindExpr(spec.arg.get(), input.schema(), &functions_));
        }
      }
      MIP_ASSIGN_OR_RETURN(
          agg, GroupByAggregate(input, plan.key_exprs, plan.key_names,
                                plan.specs, &functions_, exec_context_));
    }

    if (plan.having_rewritten != nullptr) {
      MIP_RETURN_NOT_OK(BindExpr(plan.having_rewritten.get(), agg.schema(),
                                 &functions_));
      MIP_ASSIGN_OR_RETURN(agg,
                           Filter(agg, *plan.having_rewritten, &functions_, exec_context_));
    }

    std::vector<ExprPtr> exprs;
    std::vector<std::string> names;
    std::set<std::string> used;
    for (AggregatePlan::OutputItem& item : plan.out_items) {
      MIP_RETURN_NOT_OK(
          BindExpr(item.rewritten.get(), agg.schema(), &functions_));
      std::string name = item.name;
      while (used.count(ToLower(name)) > 0) name += "_";
      used.insert(ToLower(name));
      exprs.push_back(item.rewritten);
      names.push_back(name);
    }
    MIP_ASSIGN_OR_RETURN(
        output, Project(agg, exprs, names, &functions_, exec_context_));
    if (stmt.distinct) output = DedupRows(output);

    if (!stmt.order_by.empty()) {
      std::vector<std::string> keys;
      std::vector<bool> asc;
      for (const OrderItem& o : stmt.order_by) {
        keys.push_back(o.column);
        asc.push_back(o.ascending);
      }
      MIP_ASSIGN_OR_RETURN(output, SortBy(output, keys, asc));
    }
    if (stmt.limit >= 0) {
      output = Limit(output, static_cast<size_t>(stmt.limit));
    }
    return output;
  }

  // --- Non-aggregate path ------------------------------------------------
  MIP_ASSIGN_OR_RETURN(Table input, ResolveTableRef(*stmt.from));
  if (stmt.where != nullptr) {
    MIP_RETURN_NOT_OK(BindExpr(stmt.where.get(), input.schema(), &functions_));
    MIP_ASSIGN_OR_RETURN(input, Filter(input, *stmt.where, &functions_, exec_context_));
  }

  // ORDER BY may reference input columns that are not projected (standard
  // SQL): when every key resolves in the input, sort before projecting.
  bool sort_before_projection = false;
  if (!stmt.order_by.empty()) {
    bool all_in_input = true;
    for (const OrderItem& o : stmt.order_by) {
      if (input.schema().FieldIndex(o.column) < 0) all_in_input = false;
    }
    if (all_in_input) {
      std::vector<std::string> keys;
      std::vector<bool> asc;
      for (const OrderItem& o : stmt.order_by) {
        keys.push_back(o.column);
        asc.push_back(o.ascending);
      }
      MIP_ASSIGN_OR_RETURN(input, SortBy(input, keys, asc));
      sort_before_projection = true;
    }
  }

  std::vector<ExprPtr> exprs;
  std::vector<std::string> names;
  std::set<std::string> used;
  for (size_t i = 0; i < stmt.items.size(); ++i) {
    const SelectItem& item = stmt.items[i];
    if (item.star) {
      for (const Field& f : input.schema().fields()) {
        exprs.push_back(Col(f.name));
        names.push_back(f.name);
        used.insert(ToLower(f.name));
      }
      continue;
    }
    std::string name = DefaultItemName(item, i);
    while (used.count(ToLower(name)) > 0) name += "_";
    used.insert(ToLower(name));
    exprs.push_back(item.expr);
    names.push_back(name);
  }
  for (const ExprPtr& e : exprs) {
    MIP_RETURN_NOT_OK(BindExpr(e.get(), input.schema(), &functions_));
  }
  MIP_ASSIGN_OR_RETURN(
      output, Project(input, exprs, names, &functions_, exec_context_));
  if (stmt.distinct) output = DedupRows(output);

  if (!stmt.order_by.empty() && !sort_before_projection) {
    std::vector<std::string> keys;
    std::vector<bool> asc;
    for (const OrderItem& o : stmt.order_by) {
      keys.push_back(o.column);
      asc.push_back(o.ascending);
    }
    MIP_ASSIGN_OR_RETURN(output, SortBy(output, keys, asc));
  }
  if (stmt.limit >= 0) {
    output = Limit(output, static_cast<size_t>(stmt.limit));
  }
  return output;
}

Result<Table> Database::ExecuteSql(const std::string& sql) {
  MIP_ASSIGN_OR_RETURN(SqlStatement stmt, ParseSql(sql));

  if (auto* select = std::get_if<SelectStmt>(&stmt)) {
    return ExecuteSelect(*select);
  }
  if (auto* create = std::get_if<CreateTableStmt>(&stmt)) {
    Schema schema;
    for (const Field& f : create->fields) {
      MIP_RETURN_NOT_OK(schema.AddField(f));
    }
    MIP_RETURN_NOT_OK(CreateTable(create->name, std::move(schema)));
    return Table();
  }
  if (auto* insert = std::get_if<InsertStmt>(&stmt)) {
    auto it = tables_.find(ToLower(insert->table));
    if (it == tables_.end()) {
      return Status::NotFound("table '" + insert->table + "' does not exist");
    }
    if (it->second.kind != Entry::Kind::kBase) {
      return Status::InvalidArgument(
          "cannot INSERT into a remote or merge table");
    }
    for (const auto& row : insert->rows) {
      MIP_RETURN_NOT_OK(it->second.table.AppendRow(row));
    }
    return Table();
  }
  if (auto* remote = std::get_if<CreateRemoteTableStmt>(&stmt)) {
    const std::string key = ToLower(remote->name);
    if (tables_.count(key) > 0) {
      return Status::AlreadyExists("table '" + remote->name +
                                   "' already exists");
    }
    Entry e;
    e.kind = Entry::Kind::kRemote;
    e.location = remote->location;
    e.remote_name = remote->remote_name;
    tables_.emplace(key, std::move(e));
    return Table();
  }
  if (auto* merge = std::get_if<CreateMergeTableStmt>(&stmt)) {
    const std::string key = ToLower(merge->name);
    if (tables_.count(key) > 0) {
      return Status::AlreadyExists("table '" + merge->name +
                                   "' already exists");
    }
    for (const std::string& part : merge->parts) {
      if (!HasTable(part)) {
        return Status::NotFound("merge part '" + part + "' does not exist");
      }
    }
    Entry e;
    e.kind = Entry::Kind::kMerge;
    e.parts = merge->parts;
    tables_.emplace(key, std::move(e));
    return Table();
  }
  if (auto* drop = std::get_if<DropTableStmt>(&stmt)) {
    MIP_RETURN_NOT_OK(DropTable(drop->name));
    return Table();
  }
  return Status::Internal("unhandled statement kind");
}

}  // namespace mip::engine
