#include "engine/database.h"

#include <cstdlib>
#include <utility>

#include "common/string_util.h"
#include "engine/optimizer.h"
#include "engine/sql_parser.h"

namespace mip::engine {

Database::Database(std::string name)
    : name_(std::move(name)),
      join_counters_(std::make_unique<JoinCounters>()),
      stats_mu_(std::make_unique<std::mutex>()) {
  const char* env = std::getenv("MIP_OPTIMIZER");
  if (env != nullptr && std::string(env) == "0") optimizer_enabled_ = false;
  const char* idx_env = std::getenv("MIP_INDEX_SCAN");
  if (idx_env != nullptr && std::string(idx_env) == "0") index_scan_ = false;
  const char* cost_env = std::getenv("MIP_COST_MODEL");
  if (cost_env != nullptr && std::string(cost_env) == "0") cost_model_ = false;
  const char* strat_env = std::getenv("MIP_JOIN_STRATEGY");
  if (strat_env != nullptr) {
    const std::string strat(strat_env);
    if (strat == "broadcast") {
      force_join_strategy_ = static_cast<int>(JoinStrategy::kBroadcast);
    } else if (strat == "collect") {
      force_join_strategy_ = static_cast<int>(JoinStrategy::kCollect);
    }
  }
}

Status Database::AttachStorage(TableStorage* storage) {
  if (storage == nullptr) {
    return Status::InvalidArgument("AttachStorage: null storage");
  }
  if (storage_ != nullptr) {
    return Status::InvalidArgument("database " + name_ +
                                   " already has storage attached");
  }
  for (const std::string& name : storage->StorageTableNames()) {
    if (tables_.count(ToLower(name)) > 0) {
      return Status::AlreadyExists(
          "disk table '" + name +
          "' collides with an existing catalog entry in " + name_);
    }
  }
  storage_ = storage;
  for (const std::string& name : storage->StorageTableNames()) {
    Entry e;
    e.kind = Entry::Kind::kDisk;
    tables_.emplace(ToLower(name), std::move(e));
  }
  ++catalog_version_;
  return Status::OK();
}

Status Database::IngestDisk(const std::string& table_name, const Table& rows) {
  if (storage_ == nullptr) {
    return Status::InvalidArgument("database " + name_ +
                                   " has no storage attached");
  }
  const std::string key = ToLower(table_name);
  auto it = tables_.find(key);
  if (it != tables_.end() && it->second.kind != Entry::Kind::kDisk) {
    return Status::AlreadyExists("table '" + table_name +
                                 "' exists and is not disk-resident");
  }
  MIP_RETURN_NOT_OK(storage_->AppendRows(table_name, rows));
  if (it == tables_.end()) {
    Entry e;
    e.kind = Entry::Kind::kDisk;
    tables_.emplace(key, std::move(e));
  }
  ++catalog_version_;
  return Status::OK();
}

Status Database::CreateTable(const std::string& table_name, Schema schema) {
  const std::string key = ToLower(table_name);
  if (tables_.count(key) > 0) {
    return Status::AlreadyExists("table '" + table_name + "' already exists");
  }
  Entry e;
  e.kind = Entry::Kind::kBase;
  e.table = Table::Empty(std::move(schema));
  tables_.emplace(key, std::move(e));
  ++catalog_version_;
  return Status::OK();
}

Status Database::PutTable(const std::string& table_name, Table table) {
  const std::string key = ToLower(table_name);
  Entry e;
  e.kind = Entry::Kind::kBase;
  e.table = std::move(table);
  tables_[key] = std::move(e);
  remote_schema_cache_.erase(key);
  {
    std::lock_guard<std::mutex> lock(*stats_mu_);
    stats_cache_.erase(key);
  }
  ++catalog_version_;
  return Status::OK();
}

Status Database::DropTable(const std::string& table_name) {
  const std::string key = ToLower(table_name);
  auto it = tables_.find(key);
  if (it == tables_.end()) {
    return Status::NotFound("table '" + table_name + "' does not exist");
  }
  if (it->second.kind == Entry::Kind::kDisk) {
    // Catalog drops must not silently orphan durable data; disk tables are
    // managed through the storage layer.
    return Status::InvalidArgument("cannot DROP disk-resident table '" +
                                   table_name + "'");
  }
  tables_.erase(it);
  remote_schema_cache_.erase(key);
  {
    std::lock_guard<std::mutex> lock(*stats_mu_);
    stats_cache_.erase(key);
  }
  ++catalog_version_;
  return Status::OK();
}

bool Database::HasTable(const std::string& table_name) const {
  return tables_.count(ToLower(table_name)) > 0;
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [k, v] : tables_) names.push_back(k);
  return names;
}

Result<Table> Database::GetTable(const std::string& table_name) const {
  auto it = tables_.find(ToLower(table_name));
  if (it == tables_.end()) {
    return Status::NotFound("table '" + table_name + "' does not exist in " +
                            name_);
  }
  const Entry& e = it->second;
  switch (e.kind) {
    case Entry::Kind::kBase:
      return e.table;
    case Entry::Kind::kRemote:
      if (!fetcher_) {
        return Status::ExecutionError(
            "remote table '" + table_name +
            "' has no remote fetcher installed on database " + name_);
      }
      return fetcher_(e.location, e.remote_name);
    case Entry::Kind::kMerge: {
      std::vector<Table> parts;
      for (const std::string& part : e.parts) {
        MIP_ASSIGN_OR_RETURN(Table t, GetTable(part));
        parts.push_back(std::move(t));
      }
      return Table::Concat(parts);
    }
    case Entry::Kind::kDisk:
      if (storage_ == nullptr) {
        return Status::ExecutionError("disk table '" + table_name +
                                      "' has no storage attached on " +
                                      name_);
      }
      return storage_->ScanTable(table_name, nullptr, nullptr);
  }
  return Status::Internal("bad table entry kind");
}

Result<Schema> Database::GetSchema(const std::string& table_name) const {
  auto it = tables_.find(ToLower(table_name));
  if (it == tables_.end()) {
    return Status::NotFound("table '" + table_name + "' does not exist");
  }
  const Entry& e = it->second;
  if (e.kind == Entry::Kind::kBase) return e.table.schema();
  if (e.kind == Entry::Kind::kDisk) {
    if (storage_ == nullptr) {
      return Status::ExecutionError("disk table '" + table_name +
                                    "' has no storage attached");
    }
    return storage_->StorageTableSchema(table_name);
  }
  if (e.kind == Entry::Kind::kMerge && !e.parts.empty()) {
    return GetSchema(e.parts[0]);
  }
  if (e.kind == Entry::Kind::kRemote) {
    const std::string key = ToLower(table_name);
    auto cached = remote_schema_cache_.find(key);
    if (cached != remote_schema_cache_.end()) return cached->second;
    if (schema_fetcher_) {
      Result<Schema> remote = schema_fetcher_(e.location, e.remote_name);
      if (remote.ok()) {
        remote_schema_cache_.emplace(key, *remote);
        return remote;
      }
      // Old peers may not answer schema requests; fall through to a full
      // fetch, which also yields the schema.
    }
  }
  MIP_ASSIGN_OR_RETURN(Table t, GetTable(table_name));
  if (e.kind == Entry::Kind::kRemote) {
    remote_schema_cache_.emplace(ToLower(table_name), t.schema());
  }
  return t.schema();
}

Result<PlanCatalog::TableInfo> Database::Describe(
    const std::string& table_name) const {
  auto it = tables_.find(ToLower(table_name));
  if (it == tables_.end()) {
    return Status::NotFound("table '" + table_name + "' does not exist in " +
                            name_);
  }
  const Entry& e = it->second;
  TableInfo info;
  switch (e.kind) {
    case Entry::Kind::kBase:
      info.kind = TableKind::kBase;
      break;
    case Entry::Kind::kRemote:
      info.kind = TableKind::kRemote;
      info.location = e.location;
      info.remote_name = e.remote_name;
      break;
    case Entry::Kind::kMerge:
      info.kind = TableKind::kMerge;
      info.parts = e.parts;
      break;
    case Entry::Kind::kDisk:
      info.kind = TableKind::kDisk;
      break;
  }
  return info;
}

Result<ScanStats> Database::DiskPrunePreview(const std::string& table_name,
                                             const Expr* prune_filter) const {
  if (storage_ == nullptr) {
    return Status::NotImplemented("database " + name_ +
                                  " has no storage attached");
  }
  return storage_->PrunePreview(table_name, prune_filter);
}

Result<IndexPreview> Database::DiskIndexPreview(const std::string& table_name,
                                                const Expr* prune_filter) const {
  if (storage_ == nullptr) {
    return Status::NotImplemented("database " + name_ +
                                  " has no storage attached");
  }
  return storage_->PreviewIndexScan(table_name, prune_filter);
}

Result<TableStats> Database::GetTableStats(
    const std::string& table_name) const {
  const std::string key = ToLower(table_name);
  auto it = tables_.find(key);
  if (it == tables_.end()) {
    return Status::NotFound("table '" + table_name + "' does not exist in " +
                            name_);
  }
  {
    std::lock_guard<std::mutex> lock(*stats_mu_);
    auto cached = stats_cache_.find(key);
    if (cached != stats_cache_.end() &&
        cached->second.first == catalog_version_) {
      return cached->second.second;
    }
  }
  const Entry& e = it->second;
  Result<TableStats> stats = [&]() -> Result<TableStats> {
    switch (e.kind) {
      case Entry::Kind::kBase:
        return ComputeTableStats(e.table);
      case Entry::Kind::kDisk:
        if (storage_ == nullptr) {
          return Status::NotImplemented("disk table '" + table_name +
                                        "' has no storage attached");
        }
        return storage_->StorageTableStats(table_name);
      case Entry::Kind::kMerge: {
        std::vector<TableStats> parts;
        for (const std::string& part : e.parts) {
          MIP_ASSIGN_OR_RETURN(TableStats s, GetTableStats(part));
          parts.push_back(std::move(s));
        }
        return MergeTableStats(parts);
      }
      case Entry::Kind::kRemote:
        // No full-fetch fallback here, deliberately: statistics are a
        // planning hint, and planning must never cost more wire traffic
        // than the plan it is costing.
        if (!stats_fetcher_) {
          return Status::NotImplemented(
              "remote table '" + table_name +
              "' has no remote stats fetcher installed on " + name_);
        }
        return stats_fetcher_(e.location, e.remote_name);
    }
    return Status::Internal("bad table entry kind");
  }();
  MIP_RETURN_NOT_OK(stats.status());
  {
    std::lock_guard<std::mutex> lock(*stats_mu_);
    stats_cache_[key] = {catalog_version_, *stats};
  }
  return stats;
}

Result<Table> Database::RunTableFunction(
    const std::string& func_name, const std::vector<Value>& args) const {
  const auto* fn = functions_.FindTable(func_name);
  if (fn == nullptr) {
    return Status::NotFound("unknown table function '" + func_name + "'");
  }
  return fn->fn(args);
}

Result<PlanPtr> Database::BuildOptimizedPlan(const SelectStmt& stmt) {
  MIP_ASSIGN_OR_RETURN(PlanPtr plan, PlanSelect(stmt, *this));
  if (optimizer_enabled_) {
    OptimizerOptions options;
    options.merge_aggregate_pushdown = aggregate_pushdown_;
    options.index_scan = index_scan_;
    options.cost_model = cost_model_;
    options.force_join_strategy = force_join_strategy_;
    options.has_remote_query_runner = static_cast<bool>(query_runner_);
    options.has_remote_bound_runner = static_cast<bool>(bound_runner_);
    options.join_counters = join_counters_.get();
    MIP_ASSIGN_OR_RETURN(plan, OptimizePlan(std::move(plan), *this, options));
  }
  return plan;
}

Result<Table> Database::ExecuteSelect(const SelectStmt& stmt) {
  MIP_ASSIGN_OR_RETURN(PlanPtr plan, BuildOptimizedPlan(stmt));
  return ExecutePlannedSelect(*plan);
}

Result<PlanPtr> Database::TryPlanSelectSql(const std::string& sql) {
  MIP_ASSIGN_OR_RETURN(SqlStatement stmt, ParseSql(sql));
  auto* select = std::get_if<SelectStmt>(&stmt);
  if (select == nullptr) return PlanPtr();  // not a SELECT: run via ExecuteSql
  return BuildOptimizedPlan(*select);
}

Result<Table> Database::ExecutePlannedSelect(const PlanNode& plan) const {
  PlanExecutorOptions options;
  options.functions = &functions_;
  options.exec = exec_context_;
  options.db_name = name_;
  options.get_table = [this](const std::string& name) {
    return GetTable(name);
  };
  if (fetcher_) options.fetch_remote = fetcher_;
  if (query_runner_) options.run_remote_sql = query_runner_;
  if (bound_runner_) options.run_remote_bound_sql = bound_runner_;
  options.join_counters = join_counters_.get();
  if (storage_ != nullptr) {
    options.scan_disk = [this](const std::string& name,
                               const Expr* prune_filter) {
      return storage_->ScanTable(name, prune_filter, nullptr);
    };
    options.index_scan_disk = [this](const std::string& name,
                                     const Expr* prune_filter) {
      return storage_->IndexScanTable(name, prune_filter, nullptr);
    };
  }
  return ExecutePlan(plan, options);
}

Result<std::string> Database::ExplainSelect(const SelectStmt& stmt) {
  MIP_ASSIGN_OR_RETURN(PlanPtr plan, BuildOptimizedPlan(stmt));
  return RenderPlan(*plan);
}

Result<Table> Database::ExecuteSql(const std::string& sql) {
  MIP_ASSIGN_OR_RETURN(SqlStatement stmt, ParseSql(sql));

  if (auto* select = std::get_if<SelectStmt>(&stmt)) {
    return ExecuteSelect(*select);
  }
  if (auto* explain = std::get_if<ExplainStmt>(&stmt)) {
    MIP_ASSIGN_OR_RETURN(std::string text, ExplainSelect(explain->select));
    Schema schema;
    MIP_RETURN_NOT_OK(schema.AddField(Field{"plan", DataType::kString}));
    Table out = Table::Empty(std::move(schema));
    size_t start = 0;
    while (start < text.size()) {
      size_t newline = text.find('\n', start);
      if (newline == std::string::npos) newline = text.size();
      MIP_RETURN_NOT_OK(out.AppendRow(
          {Value::String(text.substr(start, newline - start))}));
      start = newline + 1;
    }
    return out;
  }
  if (auto* create = std::get_if<CreateTableStmt>(&stmt)) {
    Schema schema;
    for (const Field& f : create->fields) {
      MIP_RETURN_NOT_OK(schema.AddField(f));
    }
    MIP_RETURN_NOT_OK(CreateTable(create->name, std::move(schema)));
    return Table();
  }
  if (auto* insert = std::get_if<InsertStmt>(&stmt)) {
    auto it = tables_.find(ToLower(insert->table));
    if (it == tables_.end()) {
      return Status::NotFound("table '" + insert->table + "' does not exist");
    }
    if (it->second.kind == Entry::Kind::kDisk) {
      // Route through the LSM ingest path: WAL + memtable on the attached
      // storage. IngestDisk bumps the catalog version, invalidating any
      // gateway-cached results over this table.
      if (storage_ == nullptr) {
        return Status::ExecutionError("disk table '" + insert->table +
                                      "' has no storage attached");
      }
      MIP_ASSIGN_OR_RETURN(Schema schema,
                           storage_->StorageTableSchema(insert->table));
      Table batch = Table::Empty(std::move(schema));
      for (const auto& row : insert->rows) {
        MIP_RETURN_NOT_OK(batch.AppendRow(row));
      }
      MIP_RETURN_NOT_OK(IngestDisk(insert->table, batch));
      return Table();
    }
    if (it->second.kind != Entry::Kind::kBase) {
      return Status::InvalidArgument(
          "cannot INSERT into a remote or merge table");
    }
    for (const auto& row : insert->rows) {
      MIP_RETURN_NOT_OK(it->second.table.AppendRow(row));
    }
    ++catalog_version_;
    return Table();
  }
  if (auto* remote = std::get_if<CreateRemoteTableStmt>(&stmt)) {
    const std::string key = ToLower(remote->name);
    if (tables_.count(key) > 0) {
      return Status::AlreadyExists("table '" + remote->name +
                                   "' already exists");
    }
    Entry e;
    e.kind = Entry::Kind::kRemote;
    e.location = remote->location;
    e.remote_name = remote->remote_name;
    tables_.emplace(key, std::move(e));
    ++catalog_version_;
    return Table();
  }
  if (auto* merge = std::get_if<CreateMergeTableStmt>(&stmt)) {
    const std::string key = ToLower(merge->name);
    if (tables_.count(key) > 0) {
      return Status::AlreadyExists("table '" + merge->name +
                                   "' already exists");
    }
    for (const std::string& part : merge->parts) {
      if (!HasTable(part)) {
        return Status::NotFound("merge part '" + part + "' does not exist");
      }
    }
    Entry e;
    e.kind = Entry::Kind::kMerge;
    e.parts = merge->parts;
    tables_.emplace(key, std::move(e));
    ++catalog_version_;
    return Table();
  }
  if (auto* drop = std::get_if<DropTableStmt>(&stmt)) {
    MIP_RETURN_NOT_OK(DropTable(drop->name));
    return Table();
  }
  return Status::Internal("unhandled statement kind");
}

}  // namespace mip::engine
