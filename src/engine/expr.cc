#include "engine/expr.h"

#include "common/string_util.h"
#include "engine/function_registry.h"

namespace mip::engine {

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kMod:
      return "%";
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "<>";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAnd:
      return "and";
    case BinaryOp::kOr:
      return "or";
  }
  return "?";
}

const char* AggFuncName(AggFunc func) {
  switch (func) {
    case AggFunc::kCountStar:
      return "count(*)";
    case AggFunc::kCount:
      return "count";
    case AggFunc::kCountDistinct:
      return "count_distinct";
    case AggFunc::kSum:
      return "sum";
    case AggFunc::kAvg:
      return "avg";
    case AggFunc::kMin:
      return "min";
    case AggFunc::kMax:
      return "max";
    case AggFunc::kVarSamp:
      return "var_samp";
    case AggFunc::kStddevSamp:
      return "stddev_samp";
  }
  return "?";
}

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kLiteral:
      return literal.ToSqlString();
    case ExprKind::kColumnRef:
      return ToLower(column_name);
    case ExprKind::kUnary:
      switch (unary_op) {
        case UnaryOp::kNeg:
          return "(-" + args[0]->ToString() + ")";
        case UnaryOp::kNot:
          return "(not " + args[0]->ToString() + ")";
        case UnaryOp::kIsNull:
          return "(" + args[0]->ToString() + " is null)";
        case UnaryOp::kIsNotNull:
          return "(" + args[0]->ToString() + " is not null)";
      }
      return "?";
    case ExprKind::kBinary:
      return "(" + args[0]->ToString() + " " + BinaryOpName(binary_op) + " " +
             args[1]->ToString() + ")";
    case ExprKind::kCall: {
      std::string s = ToLower(func_name) + "(";
      for (size_t i = 0; i < args.size(); ++i) {
        if (i > 0) s += ", ";
        s += args[i]->ToString();
      }
      return s + ")";
    }
    case ExprKind::kAggregate:
      if (agg == AggFunc::kCountStar) return "count(*)";
      if (agg == AggFunc::kCountDistinct) {
        return "count(distinct " + args[0]->ToString() + ")";
      }
      return std::string(AggFuncName(agg)) + "(" + args[0]->ToString() + ")";
    case ExprKind::kStar:
      return "*";
    case ExprKind::kCase: {
      std::string s = "case";
      size_t i = 0;
      for (; i + 1 < args.size(); i += 2) {
        s += " when " + args[i]->ToString() + " then " +
             args[i + 1]->ToString();
      }
      if (i < args.size()) s += " else " + args[i]->ToString();
      return s + " end";
    }
  }
  return "?";
}

bool Expr::ContainsAggregate() const {
  if (kind == ExprKind::kAggregate) return true;
  for (const auto& a : args) {
    if (a->ContainsAggregate()) return true;
  }
  return false;
}

namespace {

ExprPtr MakeExpr(ExprKind kind) {
  auto e = std::make_shared<Expr>();
  e->kind = kind;
  return e;
}

}  // namespace

ExprPtr Lit(Value v) {
  auto e = MakeExpr(ExprKind::kLiteral);
  e->literal = std::move(v);
  return e;
}
ExprPtr LitInt(int64_t v) { return Lit(Value::Int(v)); }
ExprPtr LitDouble(double v) { return Lit(Value::Double(v)); }
ExprPtr LitString(std::string v) { return Lit(Value::String(std::move(v))); }

ExprPtr Col(std::string name) {
  auto e = MakeExpr(ExprKind::kColumnRef);
  e->column_name = std::move(name);
  return e;
}

ExprPtr Unary(UnaryOp op, ExprPtr a) {
  auto e = MakeExpr(ExprKind::kUnary);
  e->unary_op = op;
  e->args = {std::move(a)};
  return e;
}

ExprPtr Binary(BinaryOp op, ExprPtr a, ExprPtr b) {
  auto e = MakeExpr(ExprKind::kBinary);
  e->binary_op = op;
  e->args = {std::move(a), std::move(b)};
  return e;
}

ExprPtr Add(ExprPtr a, ExprPtr b) { return Binary(BinaryOp::kAdd, a, b); }
ExprPtr Sub(ExprPtr a, ExprPtr b) { return Binary(BinaryOp::kSub, a, b); }
ExprPtr Mul(ExprPtr a, ExprPtr b) { return Binary(BinaryOp::kMul, a, b); }
ExprPtr Div(ExprPtr a, ExprPtr b) { return Binary(BinaryOp::kDiv, a, b); }
ExprPtr Eq(ExprPtr a, ExprPtr b) { return Binary(BinaryOp::kEq, a, b); }
ExprPtr Lt(ExprPtr a, ExprPtr b) { return Binary(BinaryOp::kLt, a, b); }
ExprPtr Gt(ExprPtr a, ExprPtr b) { return Binary(BinaryOp::kGt, a, b); }
ExprPtr And(ExprPtr a, ExprPtr b) { return Binary(BinaryOp::kAnd, a, b); }
ExprPtr Or(ExprPtr a, ExprPtr b) { return Binary(BinaryOp::kOr, a, b); }

ExprPtr Call(std::string func, std::vector<ExprPtr> args) {
  auto e = MakeExpr(ExprKind::kCall);
  e->func_name = std::move(func);
  e->args = std::move(args);
  return e;
}

ExprPtr Aggregate(AggFunc func, ExprPtr arg) {
  auto e = MakeExpr(ExprKind::kAggregate);
  e->agg = func;
  if (arg) e->args = {std::move(arg)};
  return e;
}

ExprPtr CountStar() { return Aggregate(AggFunc::kCountStar, nullptr); }

ExprPtr CaseWhen(std::vector<ExprPtr> args) {
  auto e = MakeExpr(ExprKind::kCase);
  e->args = std::move(args);
  return e;
}

namespace {

struct BuiltinInfo {
  const char* name;
  int arity;  // -1 variadic (>= 1)
};

constexpr BuiltinInfo kBuiltins[] = {
    {"abs", 1},   {"sqrt", 1},  {"ln", 1},        {"log", 1},
    {"exp", 1},   {"pow", 2},   {"floor", 1},     {"ceil", 1},
    {"round", 1}, {"sign", 1},  {"coalesce", -1}, {"least", -1},
    {"greatest", -1},
    // string predicate / casts (CAST(x AS t) parses to these).
    {"like", 2},  {"cast_double", 1}, {"cast_bigint", 1},
    {"cast_varchar", 1},
};

const BuiltinInfo* FindBuiltin(const std::string& lower_name) {
  for (const auto& b : kBuiltins) {
    if (lower_name == b.name) return &b;
  }
  return nullptr;
}

}  // namespace

bool IsBuiltinScalarFunction(const std::string& lower_name) {
  return FindBuiltin(lower_name) != nullptr;
}

Status BindExpr(Expr* expr, const Schema& schema,
                const FunctionRegistry* registry) {
  for (auto& a : expr->args) {
    MIP_RETURN_NOT_OK(BindExpr(a.get(), schema, registry));
  }
  switch (expr->kind) {
    case ExprKind::kLiteral:
      switch (expr->literal.kind()) {
        case Value::Kind::kBool:
          expr->result_type = DataType::kBool;
          break;
        case Value::Kind::kInt:
          expr->result_type = DataType::kInt64;
          break;
        case Value::Kind::kString:
          expr->result_type = DataType::kString;
          break;
        default:
          expr->result_type = DataType::kFloat64;
          break;
      }
      break;
    case ExprKind::kColumnRef: {
      const int idx = schema.FieldIndex(expr->column_name);
      if (idx < 0) {
        return Status::NotFound("unknown column '" + expr->column_name +
                                "' in schema " + schema.ToString());
      }
      expr->bound_index = idx;
      expr->result_type = schema.field(static_cast<size_t>(idx)).type;
      break;
    }
    case ExprKind::kUnary:
      switch (expr->unary_op) {
        case UnaryOp::kNeg:
          if (!IsNumeric(expr->args[0]->result_type)) {
            return Status::TypeError("negation of non-numeric expression");
          }
          expr->result_type = expr->args[0]->result_type == DataType::kFloat64
                                  ? DataType::kFloat64
                                  : DataType::kInt64;
          break;
        case UnaryOp::kNot:
        case UnaryOp::kIsNull:
        case UnaryOp::kIsNotNull:
          expr->result_type = DataType::kBool;
          break;
      }
      break;
    case ExprKind::kBinary: {
      const DataType lt = expr->args[0]->result_type;
      const DataType rt = expr->args[1]->result_type;
      switch (expr->binary_op) {
        case BinaryOp::kAdd:
        case BinaryOp::kSub:
        case BinaryOp::kMul:
        case BinaryOp::kMod:
          if (!IsNumeric(lt) || !IsNumeric(rt)) {
            return Status::TypeError("arithmetic on non-numeric operands in " +
                                     expr->ToString());
          }
          expr->result_type = PromoteNumeric(lt, rt);
          if (expr->result_type == DataType::kBool) {
            expr->result_type = DataType::kInt64;
          }
          break;
        case BinaryOp::kDiv:
          if (!IsNumeric(lt) || !IsNumeric(rt)) {
            return Status::TypeError("division on non-numeric operands");
          }
          expr->result_type = DataType::kFloat64;
          break;
        case BinaryOp::kEq:
        case BinaryOp::kNe:
        case BinaryOp::kLt:
        case BinaryOp::kLe:
        case BinaryOp::kGt:
        case BinaryOp::kGe:
          if ((lt == DataType::kString) != (rt == DataType::kString)) {
            return Status::TypeError(
                "comparison between string and non-string in " +
                expr->ToString());
          }
          expr->result_type = DataType::kBool;
          break;
        case BinaryOp::kAnd:
        case BinaryOp::kOr:
          expr->result_type = DataType::kBool;
          break;
      }
      break;
    }
    case ExprKind::kCall: {
      const std::string lower = ToLower(expr->func_name);
      const BuiltinInfo* builtin = FindBuiltin(lower);
      if (builtin != nullptr) {
        if (builtin->arity >= 0 &&
            static_cast<int>(expr->args.size()) != builtin->arity) {
          return Status::InvalidArgument(
              "function " + lower + " expects " +
              std::to_string(builtin->arity) + " argument(s)");
        }
        if (builtin->arity < 0 && expr->args.empty()) {
          return Status::InvalidArgument("function " + lower +
                                         " expects at least one argument");
        }
        if (lower == "coalesce" || lower == "least" || lower == "greatest") {
          expr->result_type = expr->args[0]->result_type;
        } else if (lower == "like") {
          if (expr->args[0]->result_type != DataType::kString ||
              expr->args[1]->result_type != DataType::kString) {
            return Status::TypeError("LIKE needs string operands");
          }
          expr->result_type = DataType::kBool;
        } else if (lower == "cast_bigint") {
          expr->result_type = DataType::kInt64;
        } else if (lower == "cast_varchar") {
          expr->result_type = DataType::kString;
        } else {
          expr->result_type = DataType::kFloat64;
        }
        break;
      }
      if (registry != nullptr) {
        const auto* udf = registry->FindScalar(lower);
        if (udf != nullptr) {
          if (udf->arity >= 0 &&
              static_cast<int>(expr->args.size()) != udf->arity) {
            return Status::InvalidArgument(
                "UDF " + lower + " expects " + std::to_string(udf->arity) +
                " argument(s), got " + std::to_string(expr->args.size()));
          }
          expr->result_type = udf->result_type;
          break;
        }
      }
      return Status::NotFound("unknown function '" + expr->func_name + "'");
    }
    case ExprKind::kAggregate:
      switch (expr->agg) {
        case AggFunc::kCountStar:
        case AggFunc::kCount:
        case AggFunc::kCountDistinct:
          expr->result_type = DataType::kInt64;
          break;
        case AggFunc::kMin:
        case AggFunc::kMax:
          expr->result_type =
              expr->args.empty() ? DataType::kFloat64
                                 : expr->args[0]->result_type;
          break;
        default:
          expr->result_type = DataType::kFloat64;
          break;
      }
      break;
    case ExprKind::kStar:
      break;
    case ExprKind::kCase: {
      if (expr->args.size() < 2) {
        return Status::InvalidArgument("CASE needs at least one WHEN/THEN");
      }
      // Result type: promotion over THEN/ELSE branches.
      DataType result = DataType::kBool;
      bool first = true;
      size_t i = 0;
      auto merge = [&](DataType t) -> Status {
        if (first) {
          result = t;
          first = false;
          return Status::OK();
        }
        if (t == result) return Status::OK();
        if (IsNumeric(t) && IsNumeric(result)) {
          result = PromoteNumeric(t, result);
          return Status::OK();
        }
        return Status::TypeError("CASE branches have incompatible types");
      };
      for (; i + 1 < expr->args.size(); i += 2) {
        MIP_RETURN_NOT_OK(merge(expr->args[i + 1]->result_type));
      }
      if (i < expr->args.size()) {
        MIP_RETURN_NOT_OK(merge(expr->args[i]->result_type));
      }
      expr->result_type = result;
      break;
    }
  }
  expr->bound = true;
  return Status::OK();
}

}  // namespace mip::engine
