#ifndef MIP_ENGINE_BITMAP_H_
#define MIP_ENGINE_BITMAP_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mip::engine {

/// \brief Packed validity bitmap (1 = valid, 0 = null), 64 bits per word.
///
/// Columns carry a Bitmap only when they contain at least one null; an
/// all-valid column keeps the bitmap empty, which lets the hot kernels take a
/// branch-free fast path (the "zero-cost" layout the paper attributes to the
/// underlying engine).
class Bitmap {
 public:
  Bitmap() = default;
  /// All-`valid` bitmap of the given length.
  Bitmap(size_t length, bool valid);

  size_t length() const { return length_; }

  bool Get(size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1ull;
  }

  void Set(size_t i, bool valid) {
    if (valid) {
      words_[i >> 6] |= (1ull << (i & 63));
    } else {
      words_[i >> 6] &= ~(1ull << (i & 63));
    }
  }

  /// Appends one bit.
  void Append(bool valid);

  /// Number of set (valid) bits.
  size_t CountSet() const;

  /// True if every bit is set.
  bool AllSet() const { return CountSet() == length_; }

  /// Bitwise AND of two equal-length bitmaps.
  static Bitmap And(const Bitmap& a, const Bitmap& b);

  const std::vector<uint64_t>& words() const { return words_; }

 private:
  size_t length_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace mip::engine

#endif  // MIP_ENGINE_BITMAP_H_
