#include "engine/vector_program.h"

#include <cmath>
#include <sstream>

#include "common/parallel.h"
#include "common/string_util.h"

namespace mip::engine {

struct VectorProgram::Compiler {
  const Schema& schema;
  std::vector<Instr> instrs;
  std::vector<int> free_regs;
  int next_reg = 0;

  explicit Compiler(const Schema& s) : schema(s) {}

  int AllocReg() {
    if (!free_regs.empty()) {
      const int r = free_regs.back();
      free_regs.pop_back();
      return r;
    }
    return next_reg++;
  }

  void FreeReg(int r) { free_regs.push_back(r); }

  Result<int> CompileNode(const Expr& expr) {
    switch (expr.kind) {
      case ExprKind::kLiteral: {
        if (expr.literal.kind() == Value::Kind::kString) {
          return Status::NotImplemented("string literal in vector program");
        }
        const int dst = AllocReg();
        Instr in;
        in.op = OpCode::kLoadConst;
        in.dst = dst;
        in.konst = expr.literal.is_null()
                       ? std::numeric_limits<double>::quiet_NaN()
                       : expr.literal.AsDouble();
        instrs.push_back(in);
        return dst;
      }
      case ExprKind::kColumnRef: {
        if (expr.bound_index < 0) {
          return Status::Internal("unbound column in vector program");
        }
        if (expr.result_type == DataType::kString) {
          return Status::NotImplemented("string column in vector program");
        }
        const int dst = AllocReg();
        Instr in;
        in.op = OpCode::kLoadCol;
        in.dst = dst;
        in.col = expr.bound_index;
        instrs.push_back(in);
        return dst;
      }
      case ExprKind::kUnary: {
        MIP_ASSIGN_OR_RETURN(int a, CompileNode(*expr.args[0]));
        OpCode op = OpCode::kNeg;
        switch (expr.unary_op) {
          case UnaryOp::kNeg:
            op = OpCode::kNeg;
            break;
          case UnaryOp::kNot:
            op = OpCode::kNot;
            break;
          case UnaryOp::kIsNull:
            op = OpCode::kIsNull;
            break;
          case UnaryOp::kIsNotNull:
            op = OpCode::kIsNotNull;
            break;
        }
        Instr in;
        in.op = op;
        in.dst = a;  // unary ops run in place
        in.a = a;
        instrs.push_back(in);
        return a;
      }
      case ExprKind::kBinary: {
        MIP_ASSIGN_OR_RETURN(int a, CompileNode(*expr.args[0]));
        MIP_ASSIGN_OR_RETURN(int b, CompileNode(*expr.args[1]));
        OpCode op = OpCode::kAdd;
        switch (expr.binary_op) {
          case BinaryOp::kAdd:
            op = OpCode::kAdd;
            break;
          case BinaryOp::kSub:
            op = OpCode::kSub;
            break;
          case BinaryOp::kMul:
            op = OpCode::kMul;
            break;
          case BinaryOp::kDiv:
            op = OpCode::kDiv;
            break;
          case BinaryOp::kMod:
            op = OpCode::kMod;
            break;
          case BinaryOp::kEq:
            op = OpCode::kCmpEq;
            break;
          case BinaryOp::kNe:
            op = OpCode::kCmpNe;
            break;
          case BinaryOp::kLt:
            op = OpCode::kCmpLt;
            break;
          case BinaryOp::kLe:
            op = OpCode::kCmpLe;
            break;
          case BinaryOp::kGt:
            op = OpCode::kCmpGt;
            break;
          case BinaryOp::kGe:
            op = OpCode::kCmpGe;
            break;
          case BinaryOp::kAnd:
            op = OpCode::kAnd;
            break;
          case BinaryOp::kOr:
            op = OpCode::kOr;
            break;
        }
        Instr in;
        in.op = op;
        in.dst = a;  // result overwrites the left operand register
        in.a = a;
        in.b = b;
        instrs.push_back(in);
        FreeReg(b);
        return a;
      }
      case ExprKind::kCall: {
        const std::string lower = ToLower(expr.func_name);
        OpCode op;
        if (lower == "abs") {
          op = OpCode::kAbs;
        } else if (lower == "sqrt") {
          op = OpCode::kSqrt;
        } else if (lower == "ln" || lower == "log") {
          op = OpCode::kLog;
        } else if (lower == "exp") {
          op = OpCode::kExp;
        } else if (lower == "floor") {
          op = OpCode::kFloor;
        } else if (lower == "ceil") {
          op = OpCode::kCeil;
        } else if (lower == "round") {
          op = OpCode::kRound;
        } else if (lower == "sign") {
          op = OpCode::kSign;
        } else if (lower == "pow") {
          MIP_ASSIGN_OR_RETURN(int a, CompileNode(*expr.args[0]));
          MIP_ASSIGN_OR_RETURN(int b, CompileNode(*expr.args[1]));
          Instr in;
          in.op = OpCode::kPow;
          in.dst = a;
          in.a = a;
          in.b = b;
          instrs.push_back(in);
          FreeReg(b);
          return a;
        } else {
          return Status::NotImplemented("function '" + lower +
                                        "' not compilable; use EvalVectorized");
        }
        MIP_ASSIGN_OR_RETURN(int a, CompileNode(*expr.args[0]));
        Instr in;
        in.op = op;
        in.dst = a;
        in.a = a;
        instrs.push_back(in);
        return a;
      }
      case ExprKind::kAggregate:
      case ExprKind::kStar:
        return Status::NotImplemented("aggregate in vector program");
      case ExprKind::kCase: {
        // Fold from the tail: acc = else (or NULL), then for each WHEN pair
        // (right to left): acc = select(cond, then, acc).
        int acc;
        size_t pairs = expr.args.size() / 2;
        const bool has_else = expr.args.size() % 2 == 1;
        if (has_else) {
          MIP_ASSIGN_OR_RETURN(acc, CompileNode(*expr.args.back()));
        } else {
          acc = AllocReg();
          Instr in;
          in.op = OpCode::kLoadConst;
          in.dst = acc;
          in.konst = std::numeric_limits<double>::quiet_NaN();
          instrs.push_back(in);
        }
        for (size_t p = pairs; p > 0; --p) {
          MIP_ASSIGN_OR_RETURN(int cond, CompileNode(*expr.args[2 * p - 2]));
          MIP_ASSIGN_OR_RETURN(int then, CompileNode(*expr.args[2 * p - 1]));
          Instr in;
          in.op = OpCode::kSelect;
          in.dst = cond;  // result reuses the condition register
          in.a = cond;
          in.b = then;
          in.c = acc;
          instrs.push_back(in);
          FreeReg(then);
          FreeReg(acc);
          acc = cond;
        }
        return acc;
      }
    }
    return Status::Internal("bad expr kind");
  }
};

Result<VectorProgram> VectorProgram::Compile(const Expr& expr,
                                             const Schema& schema) {
  Compiler c(schema);
  MIP_ASSIGN_OR_RETURN(int result_reg, c.CompileNode(expr));
  VectorProgram p;
  p.instrs_ = std::move(c.instrs);
  p.num_registers_ = c.next_reg;
  p.result_reg_ = result_reg;
  p.result_type_ =
      expr.result_type == DataType::kString ? DataType::kFloat64
                                            : expr.result_type;
  return p;
}

namespace {

// NaN-propagating boolean encode: definite true -> 1, definite false -> 0,
// unknown -> NaN.
inline double CmpResult(bool b, double a_val, double b_val) {
  if (std::isnan(a_val) || std::isnan(b_val)) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  return b ? 1.0 : 0.0;
}

}  // namespace

Result<Column> VectorProgram::Execute(const Table& table,
                                      const ExecOptions& options) const {
  const size_t n = table.num_rows();
  const size_t batch = options.batch_size == 0 ? kBatchSize
                                               : options.batch_size;
  std::vector<double> result(n);

  auto run_range = [this, &table, batch, &result](size_t range_begin,
                                                  size_t range_end) {
    // Preallocated cache-resident registers, one set per thread.
    std::vector<std::vector<double>> regs(
        static_cast<size_t>(num_registers_), std::vector<double>(batch));
    for (size_t base = range_begin; base < range_end; base += batch) {
      const size_t len = std::min(batch, range_end - base);
    for (const Instr& in : instrs_) {
      double* dst = regs[static_cast<size_t>(in.dst)].data();
      const double* a =
          in.a >= 0 ? regs[static_cast<size_t>(in.a)].data() : nullptr;
      const double* b =
          in.b >= 0 ? regs[static_cast<size_t>(in.b)].data() : nullptr;
      switch (in.op) {
        case OpCode::kLoadConst:
          for (size_t i = 0; i < len; ++i) dst[i] = in.konst;
          break;
        case OpCode::kLoadCol: {
          const Column& col = table.column(static_cast<size_t>(in.col));
          if (col.type() == DataType::kFloat64 && !col.has_validity()) {
            const double* src = col.doubles().data() + base;
            for (size_t i = 0; i < len; ++i) dst[i] = src[i];
          } else {
            for (size_t i = 0; i < len; ++i) {
              dst[i] = col.AsDoubleAt(base + i);
            }
          }
          break;
        }
        case OpCode::kAdd:
          for (size_t i = 0; i < len; ++i) dst[i] = a[i] + b[i];
          break;
        case OpCode::kSub:
          for (size_t i = 0; i < len; ++i) dst[i] = a[i] - b[i];
          break;
        case OpCode::kMul:
          for (size_t i = 0; i < len; ++i) dst[i] = a[i] * b[i];
          break;
        case OpCode::kDiv:
          for (size_t i = 0; i < len; ++i) {
            dst[i] = b[i] == 0.0 ? std::numeric_limits<double>::quiet_NaN()
                                 : a[i] / b[i];
          }
          break;
        case OpCode::kMod:
          for (size_t i = 0; i < len; ++i) dst[i] = std::fmod(a[i], b[i]);
          break;
        case OpCode::kNeg:
          for (size_t i = 0; i < len; ++i) dst[i] = -a[i];
          break;
        case OpCode::kAbs:
          for (size_t i = 0; i < len; ++i) dst[i] = std::fabs(a[i]);
          break;
        case OpCode::kSqrt:
          for (size_t i = 0; i < len; ++i) dst[i] = std::sqrt(a[i]);
          break;
        case OpCode::kLog:
          for (size_t i = 0; i < len; ++i) dst[i] = std::log(a[i]);
          break;
        case OpCode::kExp:
          for (size_t i = 0; i < len; ++i) dst[i] = std::exp(a[i]);
          break;
        case OpCode::kFloor:
          for (size_t i = 0; i < len; ++i) dst[i] = std::floor(a[i]);
          break;
        case OpCode::kCeil:
          for (size_t i = 0; i < len; ++i) dst[i] = std::ceil(a[i]);
          break;
        case OpCode::kRound:
          for (size_t i = 0; i < len; ++i) dst[i] = std::round(a[i]);
          break;
        case OpCode::kSign:
          for (size_t i = 0; i < len; ++i) {
            dst[i] = a[i] > 0 ? 1.0 : (a[i] < 0 ? -1.0 : a[i]);
          }
          break;
        case OpCode::kPow:
          for (size_t i = 0; i < len; ++i) dst[i] = std::pow(a[i], b[i]);
          break;
        case OpCode::kCmpEq:
          for (size_t i = 0; i < len; ++i) {
            dst[i] = CmpResult(a[i] == b[i], a[i], b[i]);
          }
          break;
        case OpCode::kCmpNe:
          for (size_t i = 0; i < len; ++i) {
            dst[i] = CmpResult(a[i] != b[i], a[i], b[i]);
          }
          break;
        case OpCode::kCmpLt:
          for (size_t i = 0; i < len; ++i) {
            dst[i] = CmpResult(a[i] < b[i], a[i], b[i]);
          }
          break;
        case OpCode::kCmpLe:
          for (size_t i = 0; i < len; ++i) {
            dst[i] = CmpResult(a[i] <= b[i], a[i], b[i]);
          }
          break;
        case OpCode::kCmpGt:
          for (size_t i = 0; i < len; ++i) {
            dst[i] = CmpResult(a[i] > b[i], a[i], b[i]);
          }
          break;
        case OpCode::kCmpGe:
          for (size_t i = 0; i < len; ++i) {
            dst[i] = CmpResult(a[i] >= b[i], a[i], b[i]);
          }
          break;
        case OpCode::kAnd:
          for (size_t i = 0; i < len; ++i) {
            const bool a_nan = std::isnan(a[i]);
            const bool b_nan = std::isnan(b[i]);
            if (!a_nan && !b_nan) {
              dst[i] = (a[i] != 0.0 && b[i] != 0.0) ? 1.0 : 0.0;
            } else if ((!a_nan && a[i] == 0.0) || (!b_nan && b[i] == 0.0)) {
              dst[i] = 0.0;  // definite false dominates NULL
            } else {
              dst[i] = std::numeric_limits<double>::quiet_NaN();
            }
          }
          break;
        case OpCode::kOr:
          for (size_t i = 0; i < len; ++i) {
            const bool a_nan = std::isnan(a[i]);
            const bool b_nan = std::isnan(b[i]);
            if (!a_nan && !b_nan) {
              dst[i] = (a[i] != 0.0 || b[i] != 0.0) ? 1.0 : 0.0;
            } else if ((!a_nan && a[i] != 0.0) || (!b_nan && b[i] != 0.0)) {
              dst[i] = 1.0;  // definite true dominates NULL
            } else {
              dst[i] = std::numeric_limits<double>::quiet_NaN();
            }
          }
          break;
        case OpCode::kNot:
          for (size_t i = 0; i < len; ++i) {
            dst[i] = std::isnan(a[i])
                         ? a[i]
                         : (a[i] != 0.0 ? 0.0 : 1.0);
          }
          break;
        case OpCode::kIsNull:
          for (size_t i = 0; i < len; ++i) {
            dst[i] = std::isnan(a[i]) ? 1.0 : 0.0;
          }
          break;
        case OpCode::kIsNotNull:
          for (size_t i = 0; i < len; ++i) {
            dst[i] = std::isnan(a[i]) ? 0.0 : 1.0;
          }
          break;
        case OpCode::kSelect: {
          const double* sel_else =
              regs[static_cast<size_t>(in.c)].data();
          for (size_t i = 0; i < len; ++i) {
            const bool taken = !std::isnan(a[i]) && a[i] != 0.0;
            dst[i] = taken ? b[i] : sel_else[i];
          }
          break;
        }
      }
    }
      const double* out = regs[static_cast<size_t>(result_reg_)].data();
      std::copy(out, out + len, result.begin() + static_cast<long>(base));
    }
  };
  const ExecContext& ctx = ExecContext::Resolve(options.exec);
  ctx.ForEachMorsel(
      n, [&run_range](size_t, size_t begin, size_t end) {
        run_range(begin, end);
      });

  // Convert NaN back to NULL validity; booleans to a bool column.
  std::vector<uint8_t> valid(n, 1);
  bool any_null = false;
  for (size_t i = 0; i < n; ++i) {
    if (std::isnan(result[i])) {
      valid[i] = 0;
      any_null = true;
    }
  }
  Column col(DataType::kFloat64);
  if (result_type_ == DataType::kBool) {
    std::vector<uint8_t> bits(n);
    for (size_t i = 0; i < n; ++i) bits[i] = result[i] != 0.0 ? 1 : 0;
    col = Column::FromBools(std::move(bits));
  } else if (result_type_ == DataType::kInt64) {
    std::vector<int64_t> ints(n);
    for (size_t i = 0; i < n; ++i) {
      ints[i] = valid[i] ? static_cast<int64_t>(result[i]) : 0;
    }
    col = Column::FromInts(std::move(ints));
  } else {
    col = Column::FromDoubles(std::move(result));
  }
  if (any_null) {
    Bitmap bm(n, true);
    for (size_t i = 0; i < n; ++i) {
      if (!valid[i]) bm.Set(i, false);
    }
    MIP_RETURN_NOT_OK(col.SetValidity(std::move(bm)));
  }
  return col;
}

const char* VectorProgram::OpName(OpCode op) {
  switch (op) {
    case OpCode::kLoadCol:
      return "load_col";
    case OpCode::kLoadConst:
      return "load_const";
    case OpCode::kAdd:
      return "add";
    case OpCode::kSub:
      return "sub";
    case OpCode::kMul:
      return "mul";
    case OpCode::kDiv:
      return "div";
    case OpCode::kMod:
      return "mod";
    case OpCode::kNeg:
      return "neg";
    case OpCode::kAbs:
      return "abs";
    case OpCode::kSqrt:
      return "sqrt";
    case OpCode::kLog:
      return "log";
    case OpCode::kExp:
      return "exp";
    case OpCode::kFloor:
      return "floor";
    case OpCode::kCeil:
      return "ceil";
    case OpCode::kRound:
      return "round";
    case OpCode::kSign:
      return "sign";
    case OpCode::kPow:
      return "pow";
    case OpCode::kCmpEq:
      return "cmp_eq";
    case OpCode::kCmpNe:
      return "cmp_ne";
    case OpCode::kCmpLt:
      return "cmp_lt";
    case OpCode::kCmpLe:
      return "cmp_le";
    case OpCode::kCmpGt:
      return "cmp_gt";
    case OpCode::kCmpGe:
      return "cmp_ge";
    case OpCode::kAnd:
      return "and";
    case OpCode::kOr:
      return "or";
    case OpCode::kNot:
      return "not";
    case OpCode::kIsNull:
      return "is_null";
    case OpCode::kIsNotNull:
      return "is_not_null";
    case OpCode::kSelect:
      return "select";
  }
  return "?";
}

std::string VectorProgram::Disassemble() const {
  std::ostringstream os;
  for (size_t i = 0; i < instrs_.size(); ++i) {
    const Instr& in = instrs_[i];
    os << i << ": r" << in.dst << " = " << OpName(in.op);
    if (in.op == OpCode::kLoadCol) {
      os << " col#" << in.col;
    } else if (in.op == OpCode::kLoadConst) {
      os << " " << in.konst;
    } else {
      if (in.a >= 0) os << " r" << in.a;
      if (in.b >= 0) os << " r" << in.b;
    }
    os << "\n";
  }
  os << "result: r" << result_reg_ << " (" << DataTypeName(result_type_)
     << ")\n";
  return os.str();
}

}  // namespace mip::engine
