#ifndef MIP_ENGINE_VALUE_H_
#define MIP_ENGINE_VALUE_H_

#include <cstdint>
#include <string>

#include "engine/type.h"

namespace mip::engine {

/// \brief A single scalar cell: SQL literal, row element, or UDF scalar
/// argument. NULL is a first-class state.
class Value {
 public:
  enum class Kind { kNull, kBool, kInt, kDouble, kString };

  Value() : kind_(Kind::kNull) {}

  static Value Null() { return Value(); }
  static Value Bool(bool b) {
    Value v;
    v.kind_ = Kind::kBool;
    v.bool_ = b;
    return v;
  }
  static Value Int(int64_t i) {
    Value v;
    v.kind_ = Kind::kInt;
    v.int_ = i;
    return v;
  }
  static Value Double(double d) {
    Value v;
    v.kind_ = Kind::kDouble;
    v.double_ = d;
    return v;
  }
  static Value String(std::string s) {
    Value v;
    v.kind_ = Kind::kString;
    v.string_ = std::move(s);
    return v;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }

  bool bool_value() const { return bool_; }
  int64_t int_value() const { return int_; }
  double double_value() const { return double_; }
  const std::string& string_value() const { return string_; }

  /// Numeric coercion (bool -> 0/1, int -> double). NULL/string -> NaN.
  double AsDouble() const;

  /// Integer coercion; doubles are truncated. NULL/string -> 0.
  int64_t AsInt() const;

  /// Truthiness for predicates: NULL -> false, 0 / 0.0 / "" -> false.
  bool AsBool() const;

  /// SQL rendering ("NULL", "3.14", "'text'").
  std::string ToSqlString() const;

  /// Plain rendering (no string quoting).
  std::string ToString() const;

  /// SQL equality semantics except NULL == NULL is true here (used for
  /// group-by keys and test assertions, not for WHERE).
  bool Equals(const Value& other) const;

 private:
  Kind kind_;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
};

}  // namespace mip::engine

#endif  // MIP_ENGINE_VALUE_H_
