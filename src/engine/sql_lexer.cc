#include "engine/sql_lexer.h"

#include <cctype>

#include "common/string_util.h"

namespace mip::engine {

bool Token::IsKeyword(const char* kw) const {
  return type == TokenType::kIdentifier && EqualsIgnoreCase(text, kw);
}

Result<std::vector<Token>> LexSql(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    Token t;
    t.position = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(sql[j])) ||
                       sql[j] == '_')) {
        ++j;
      }
      t.type = TokenType::kIdentifier;
      t.text = sql.substr(i, j - i);
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '.' && i + 1 < n &&
                std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t j = i;
      bool is_float = false;
      while (j < n && (std::isdigit(static_cast<unsigned char>(sql[j])) ||
                       sql[j] == '.' || sql[j] == 'e' || sql[j] == 'E' ||
                       ((sql[j] == '+' || sql[j] == '-') && j > i &&
                        (sql[j - 1] == 'e' || sql[j - 1] == 'E')))) {
        if (sql[j] == '.' || sql[j] == 'e' || sql[j] == 'E') is_float = true;
        ++j;
      }
      t.type = is_float ? TokenType::kFloat : TokenType::kInteger;
      t.text = sql.substr(i, j - i);
      i = j;
    } else if (c == '\'') {
      size_t j = i + 1;
      std::string value;
      bool closed = false;
      while (j < n) {
        if (sql[j] == '\'') {
          if (j + 1 < n && sql[j + 1] == '\'') {  // escaped quote
            value.push_back('\'');
            j += 2;
            continue;
          }
          closed = true;
          ++j;
          break;
        }
        value.push_back(sql[j]);
        ++j;
      }
      if (!closed) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(i));
      }
      t.type = TokenType::kString;
      t.text = std::move(value);
      i = j;
    } else {
      // Two-character operators first.
      if (i + 1 < n) {
        const std::string two = sql.substr(i, 2);
        if (two == "<=" || two == ">=" || two == "<>" || two == "!=" ||
            two == "==") {
          t.type = TokenType::kSymbol;
          t.text = two == "!=" ? "<>" : (two == "==" ? "=" : two);
          tokens.push_back(t);
          i += 2;
          continue;
        }
      }
      static const std::string kSingles = "()+-*/%,=<>.;";
      if (kSingles.find(c) == std::string::npos) {
        return Status::ParseError(std::string("unexpected character '") + c +
                                  "' at offset " + std::to_string(i));
      }
      t.type = TokenType::kSymbol;
      t.text = std::string(1, c);
      i += 1;
    }
    tokens.push_back(std::move(t));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.position = n;
  tokens.push_back(end);
  return tokens;
}

}  // namespace mip::engine
