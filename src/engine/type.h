#ifndef MIP_ENGINE_TYPE_H_
#define MIP_ENGINE_TYPE_H_

namespace mip::engine {

/// \brief Physical column types supported by the MIP analytics engine.
///
/// The engine is deliberately small: the clinical CDE model used by MIP only
/// needs integers, reals, booleans and (enumerated) text. Strings cover
/// nominal variables such as diagnosis categories.
enum class DataType {
  kBool,
  kInt64,
  kFloat64,
  kString,
};

/// Canonical lower-case SQL-ish name ("bigint", "double", ...).
const char* DataTypeName(DataType type);

/// True for kInt64 / kFloat64 / kBool (bool promotes to 0/1 in arithmetic).
bool IsNumeric(DataType type);

/// Binary numeric promotion: double wins over int wins over bool.
DataType PromoteNumeric(DataType a, DataType b);

}  // namespace mip::engine

#endif  // MIP_ENGINE_TYPE_H_
