#ifndef MIP_ENGINE_EXEC_CONTEXT_H_
#define MIP_ENGINE_EXEC_CONTEXT_H_

#include <cstddef>
#include <functional>

#include "common/parallel.h"

namespace mip::engine {

/// \brief Execution context for engine operators: the thread pool to dispatch
/// morsels on and the morsel size.
///
/// The engine parallelizes scans, filters, aggregates, and group-bys by
/// splitting columns into fixed-size morsels and running them on `pool`
/// via ThreadPool::ParallelFor. Morsel boundaries depend only on
/// `morsel_size` — never on the thread count — and every reduction merges
/// per-morsel partial states in morsel order, so results are bit-identical
/// whether a query runs on 1 thread or 8 (pinned by engine_parallel_test).
///
/// A null `pool` means serial execution on the calling thread (same morsel
/// boundaries, same results). Operators take `const ExecContext*` defaulting
/// to nullptr, which resolves to Default().
struct ExecContext {
  static constexpr size_t kDefaultMorselSize = 64 * 1024;

  ThreadPool* pool = nullptr;       ///< not owned; null => serial
  size_t morsel_size = kDefaultMorselSize;

  /// Process-wide default: a lazily created shared pool sized by the
  /// MIP_THREADS environment variable (unset => HardwareThreads();
  /// <= 1 => serial, no pool). The pool lives for the process lifetime.
  static const ExecContext& Default();

  /// A context that always executes serially (no pool).
  static const ExecContext& Serial();

  /// `ctx` if non-null, Default() otherwise — the resolution rule every
  /// operator applies to its optional exec parameter.
  static const ExecContext& Resolve(const ExecContext* ctx) {
    return ctx != nullptr ? *ctx : Default();
  }

  /// Runs `body(morsel_index, begin, end)` for each morsel of [0, n), in
  /// parallel when a pool is present (one ParallelFor chunk per morsel),
  /// serially in morsel order otherwise. Bodies for different morsels must
  /// be independent (disjoint writes or per-morsel partial states).
  void ForEachMorsel(
      size_t n,
      const std::function<void(size_t morsel, size_t begin, size_t end)>&
          body) const;

  /// Number of morsels covering [0, n).
  size_t NumMorsels(size_t n) const {
    const size_t m = morsel_size == 0 ? kDefaultMorselSize : morsel_size;
    return n == 0 ? 0 : (n + m - 1) / m;
  }
};

}  // namespace mip::engine

#endif  // MIP_ENGINE_EXEC_CONTEXT_H_
