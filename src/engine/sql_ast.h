#ifndef MIP_ENGINE_SQL_AST_H_
#define MIP_ENGINE_SQL_AST_H_

#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "engine/expr.h"
#include "engine/operators.h"
#include "engine/table.h"

namespace mip::engine {

/// One entry of a select list: an expression with an optional alias, or `*`.
struct SelectItem {
  ExprPtr expr;
  std::string alias;
  bool star = false;
};

/// FROM-clause source: a named table, a table-function call, or a two-way
/// equi-join of named sources.
struct TableRef {
  enum class Kind { kNamed, kFunction, kJoin };
  Kind kind = Kind::kNamed;

  std::string name;  // kNamed

  std::string func_name;  // kFunction
  std::vector<Value> func_args;

  std::shared_ptr<TableRef> left;  // kJoin
  std::shared_ptr<TableRef> right;
  std::string left_key;
  std::string right_key;
  JoinType join_type = JoinType::kInner;
};

struct OrderItem {
  std::string column;
  bool ascending = true;
};

struct SelectStmt {
  bool distinct = false;
  std::vector<SelectItem> items;
  std::shared_ptr<TableRef> from;
  ExprPtr where;
  std::vector<ExprPtr> group_by;
  ExprPtr having;
  std::vector<OrderItem> order_by;
  int64_t limit = -1;  ///< -1 = no limit
};

struct CreateTableStmt {
  std::string name;
  std::vector<Field> fields;
};

struct InsertStmt {
  std::string table;
  std::vector<std::vector<Value>> rows;
};

/// MonetDB-style remote table: a local name whose scans are served by
/// another node's table. `location` identifies the remote database (a worker
/// id in the federation), `remote_name` the table there.
struct CreateRemoteTableStmt {
  std::string name;
  std::string location;
  std::string remote_name;
};

/// MonetDB-style merge table: a non-materialized UNION ALL view over parts.
struct CreateMergeTableStmt {
  std::string name;
  std::vector<std::string> parts;
};

struct DropTableStmt {
  std::string name;
};

/// EXPLAIN <select>: returns the optimized logical plan as a text tree (one
/// row per line) instead of executing the query.
struct ExplainStmt {
  SelectStmt select;
};

using SqlStatement =
    std::variant<SelectStmt, CreateTableStmt, InsertStmt,
                 CreateRemoteTableStmt, CreateMergeTableStmt, DropTableStmt,
                 ExplainStmt>;

}  // namespace mip::engine

#endif  // MIP_ENGINE_SQL_AST_H_
