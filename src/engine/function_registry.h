#ifndef MIP_ENGINE_FUNCTION_REGISTRY_H_
#define MIP_ENGINE_FUNCTION_REGISTRY_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/table.h"
#include "engine/value.h"

namespace mip::engine {

/// \brief Per-database registry of user-defined functions.
///
/// The UDFGenerator (src/udf) registers generated functions here so that the
/// SQL layer can call them: scalar UDFs inside expressions, table UDFs in
/// FROM clauses — mirroring how MIP wraps procedural algorithm steps as SQL
/// UDFs inside MonetDB.
class FunctionRegistry {
 public:
  /// A scalar function: row of boxed arguments -> boxed value.
  struct ScalarFunction {
    std::string name;
    int arity = 1;  ///< -1 = variadic
    DataType result_type = DataType::kFloat64;
    std::function<Value(const std::vector<Value>&)> fn;
  };

  /// A table-producing function callable in a FROM clause. Receives the
  /// literal call arguments and a handle for loopback queries (see
  /// udf/udf_context.h; opaque here).
  struct TableFunction {
    std::string name;
    std::function<Result<Table>(const std::vector<Value>&)> fn;
  };

  Status RegisterScalar(ScalarFunction f);
  Status RegisterTable(TableFunction f);

  /// nullptr when unknown.
  const ScalarFunction* FindScalar(const std::string& name) const;
  const TableFunction* FindTable(const std::string& name) const;

  std::vector<std::string> ScalarNames() const;

 private:
  std::map<std::string, ScalarFunction> scalars_;
  std::map<std::string, TableFunction> tables_;
};

}  // namespace mip::engine

#endif  // MIP_ENGINE_FUNCTION_REGISTRY_H_
