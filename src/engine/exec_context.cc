#include "engine/exec_context.h"

#include <algorithm>
#include <cstdlib>

namespace mip::engine {

namespace {

int DefaultThreadCount() {
  if (const char* env = std::getenv("MIP_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && v >= 0 && v <= 1024) return static_cast<int>(v);
  }
  return HardwareThreads();
}

}  // namespace

const ExecContext& ExecContext::Default() {
  // Leaked on purpose: engine threads must outlive every static destructor
  // that might still run a query during teardown.
  static const ExecContext* ctx = [] {
    auto* c = new ExecContext();
    const int threads = DefaultThreadCount();
    if (threads > 1) c->pool = new ThreadPool(threads);
    return c;
  }();
  return *ctx;
}

const ExecContext& ExecContext::Serial() {
  static const ExecContext ctx;
  return ctx;
}

void ExecContext::ForEachMorsel(
    size_t n,
    const std::function<void(size_t, size_t, size_t)>& body) const {
  if (n == 0) return;
  const size_t m = morsel_size == 0 ? kDefaultMorselSize : morsel_size;
  if (pool == nullptr || n <= m) {
    for (size_t begin = 0, morsel = 0; begin < n; begin += m, ++morsel) {
      body(morsel, begin, std::min(n, begin + m));
    }
    return;
  }
  // One ParallelFor chunk per morsel — but re-split the handed range on
  // morsel boundaries anyway: ParallelFor may coalesce chunks (e.g. its
  // single-thread shortcut runs [0, n) in one call), and determinism
  // requires the morsel decomposition to be identical no matter how the
  // pool schedules the ranges.
  pool->ParallelFor(n, m, [&](size_t begin, size_t end) {
    for (size_t b = begin; b < end; b += m) {
      body(b / m, b, std::min(end, b + m));
    }
  });
}

}  // namespace mip::engine
