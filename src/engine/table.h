#ifndef MIP_ENGINE_TABLE_H_
#define MIP_ENGINE_TABLE_H_

#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "engine/column.h"
#include "engine/type.h"
#include "engine/value.h"

namespace mip::engine {

/// \brief A named, typed column slot in a schema.
struct Field {
  std::string name;
  DataType type = DataType::kFloat64;
};

/// \brief Ordered list of fields; the engine resolves column references
/// against a Schema at bind time.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of the (case-insensitively matched) field, or -1.
  int FieldIndex(const std::string& name) const;

  /// Adds a field; duplicate names are an error.
  Status AddField(Field field);

  std::string ToString() const;

 private:
  std::vector<Field> fields_;
};

/// \brief Immutable-ish columnar table: a schema plus one Column per field.
///
/// Tables are value types (cheap enough at MIP scales); the federation layer
/// serializes them with SerializeTable/DeserializeTable when results cross a
/// node boundary.
class Table {
 public:
  Table() = default;

  /// Validates schema/columns agreement (count, types, equal lengths).
  static Result<Table> Make(Schema schema, std::vector<Column> columns);

  /// Empty table with the given schema (for appending rows).
  static Table Empty(Schema schema);

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }

  const Column& column(size_t i) const { return columns_[i]; }
  Column& mutable_column(size_t i) { return columns_[i]; }

  /// Column lookup by field name.
  Result<const Column*> ColumnByName(const std::string& name) const;

  /// Appends a row of boxed values (one per field).
  Status AppendRow(const std::vector<Value>& row);

  /// Gathers rows by index into a new table.
  Table Take(const std::vector<int64_t>& indices) const;

  /// Contiguous row range.
  Table Slice(size_t offset, size_t count) const;

  /// Vertical concatenation; schemas must match exactly.
  static Result<Table> Concat(const std::vector<Table>& parts);

  /// Pretty-printer (first `max_rows` rows).
  std::string ToString(size_t max_rows = 20) const;

  /// Value at (row, col).
  Value At(size_t row, size_t col) const { return columns_[col].ValueAt(row); }

 private:
  Schema schema_;
  std::vector<Column> columns_;
  size_t num_rows_ = 0;
};

/// Serializes a table into `w` (schema + column data + validity) in the
/// legacy fixed-width (v1) layout.
void SerializeTable(const Table& table, BufferWriter* w);

/// Magic prefix of the compressed (v2) table layout. v1 starts with a u32
/// column count — far below this value — so DeserializeTable can sniff the
/// format from the first four bytes.
inline constexpr uint32_t kTableWireMagic = 0x32425443u;  // "CTB2"
inline constexpr uint8_t kTableWireVersion = 2;

struct TableWireOptions {
  /// When true, columns are written through the engine::Codec blocks
  /// (encoding.h) inside a magic-tagged v2 container — but only if the v2
  /// bytes actually come out smaller than v1; otherwise the v1 layout is
  /// written. When false, always the v1 layout (for peers that predate the
  /// codec negotiation).
  bool codecs = true;
};

/// Codec-aware serializer; see TableWireOptions.
void SerializeTable(const Table& table, BufferWriter* w,
                    const TableWireOptions& options);

/// Inverse of SerializeTable; accepts both the v1 and the v2 layout.
Result<Table> DeserializeTable(BufferReader* r);

/// Exact byte size the v1 (uncompressed) layout would produce for `table`,
/// computed without serializing — the "raw" side of the bytes_raw/bytes_wire
/// compression ledger, and the Reserve() hint for SerializeTable.
size_t RawTableWireBytes(const Table& table);

}  // namespace mip::engine

#endif  // MIP_ENGINE_TABLE_H_
