#include "engine/plan.h"

#include <atomic>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <map>

#include "common/string_util.h"
#include "engine/function_registry.h"

namespace mip::engine {

const char* PlanKindName(PlanKind kind) {
  switch (kind) {
    case PlanKind::kScan:
      return "Scan";
    case PlanKind::kIndexScan:
      return "IndexScan";
    case PlanKind::kRemoteScan:
      return "RemoteScan";
    case PlanKind::kMergeUnion:
      return "MergeUnion";
    case PlanKind::kJoin:
      return "Join";
    case PlanKind::kFilter:
      return "Filter";
    case PlanKind::kProject:
      return "Project";
    case PlanKind::kAggregate:
      return "Aggregate";
    case PlanKind::kDistinct:
      return "Distinct";
    case PlanKind::kSort:
      return "Sort";
    case PlanKind::kLimit:
      return "Limit";
  }
  return "?";
}

PlanPtr MakePlanNode(PlanKind kind) {
  auto node = std::make_shared<PlanNode>();
  node->kind = kind;
  return node;
}

ExprPtr CloneExpr(const Expr& e) {
  auto out = std::make_shared<Expr>(e);
  out->args.clear();
  for (const auto& a : e.args) out->args.push_back(CloneExpr(*a));
  return out;
}

std::string UniquifyName(std::string name, std::set<std::string>* used) {
  while (used->count(ToLower(name)) > 0) name += "_";
  used->insert(ToLower(name));
  return name;
}

// --- SQL lowering ----------------------------------------------------------

namespace {

std::string DoubleToSql(double d) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  std::string s = buf;
  // An integral double must stay a float token or it would reparse as a
  // bigint literal.
  if (s.find_first_of(".eEnN") == std::string::npos) s += ".0";
  return s;
}

std::string LowerValueToSql(const Value& v) {
  switch (v.kind()) {
    case Value::Kind::kNull:
      return "NULL";
    case Value::Kind::kBool:
      return v.bool_value() ? "true" : "false";
    case Value::Kind::kInt:
      return std::to_string(v.int_value());
    case Value::Kind::kDouble:
      return DoubleToSql(v.double_value());
    case Value::Kind::kString: {
      std::string out = "'";
      for (char c : v.string_value()) {
        if (c == '\'') out += "''";
        else out.push_back(c);
      }
      return out + "'";
    }
  }
  return "NULL";
}

}  // namespace

bool IsSqlIdentifier(const std::string& name) {
  if (name.empty()) return false;
  if (!std::isalpha(static_cast<unsigned char>(name[0])) && name[0] != '_') {
    return false;
  }
  for (char c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') return false;
  }
  // Words the parser treats as syntax when they appear bare.
  static const char* kReserved[] = {
      "select", "distinct", "from",  "where",    "group", "by",     "having",
      "order",  "limit",    "asc",   "desc",     "join",  "left",   "inner",
      "outer",  "on",       "as",    "and",      "or",    "not",    "between",
      "in",     "is",       "like",  "case",     "when",  "then",   "else",
      "end",    "null",     "true",  "false",    "cast",  "create", "insert",
      "drop",   "table",    "merge", "remote",   "into",  "values",
  };
  const std::string lower = ToLower(name);
  for (const char* kw : kReserved) {
    if (lower == kw) return false;
  }
  return true;
}

std::string LowerExprToSql(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kLiteral:
      return LowerValueToSql(e.literal);
    case ExprKind::kColumnRef:
      return ToLower(e.column_name);
    case ExprKind::kUnary:
      switch (e.unary_op) {
        case UnaryOp::kNeg:
          return "(-" + LowerExprToSql(*e.args[0]) + ")";
        case UnaryOp::kNot:
          return "(not " + LowerExprToSql(*e.args[0]) + ")";
        case UnaryOp::kIsNull:
          return "(" + LowerExprToSql(*e.args[0]) + " is null)";
        case UnaryOp::kIsNotNull:
          return "(" + LowerExprToSql(*e.args[0]) + " is not null)";
      }
      return "?";
    case ExprKind::kBinary:
      return "(" + LowerExprToSql(*e.args[0]) + " " +
             BinaryOpName(e.binary_op) + " " + LowerExprToSql(*e.args[1]) +
             ")";
    case ExprKind::kCall: {
      std::string s = ToLower(e.func_name) + "(";
      for (size_t i = 0; i < e.args.size(); ++i) {
        if (i > 0) s += ", ";
        s += LowerExprToSql(*e.args[i]);
      }
      return s + ")";
    }
    case ExprKind::kAggregate:
      if (e.agg == AggFunc::kCountStar) return "count(*)";
      if (e.agg == AggFunc::kCountDistinct) {
        return "count(distinct " + LowerExprToSql(*e.args[0]) + ")";
      }
      return std::string(AggFuncName(e.agg)) + "(" +
             LowerExprToSql(*e.args[0]) + ")";
    case ExprKind::kStar:
      return "*";
    case ExprKind::kCase: {
      std::string s = "case";
      size_t i = 0;
      for (; i + 1 < e.args.size(); i += 2) {
        s += " when " + LowerExprToSql(*e.args[i]) + " then " +
             LowerExprToSql(*e.args[i + 1]);
      }
      if (i < e.args.size()) s += " else " + LowerExprToSql(*e.args[i]);
      return s + " end";
    }
  }
  return "?";
}

bool IsRemotelyEvaluable(const Expr& e) {
  for (const auto& a : e.args) {
    if (!IsRemotelyEvaluable(*a)) return false;
  }
  switch (e.kind) {
    case ExprKind::kLiteral:
      if (e.literal.kind() == Value::Kind::kDouble &&
          !std::isfinite(e.literal.double_value())) {
        return false;  // inf/nan have no SQL literal form
      }
      return true;
    case ExprKind::kColumnRef:
      return IsSqlIdentifier(e.column_name);
    case ExprKind::kUnary:
    case ExprKind::kBinary:
    case ExprKind::kCase:
      return true;
    case ExprKind::kCall:
      // UDFs are registered per-database; only built-ins are guaranteed to
      // exist (and agree) on the remote node.
      return IsBuiltinScalarFunction(ToLower(e.func_name));
    case ExprKind::kAggregate:
    case ExprKind::kStar:
      return false;
  }
  return false;
}

// --- Planner ---------------------------------------------------------------

namespace {

std::string DefaultItemName(const SelectItem& item, size_t ordinal) {
  if (!item.alias.empty()) return item.alias;
  if (item.expr->kind == ExprKind::kColumnRef) return item.expr->column_name;
  if (item.expr->kind == ExprKind::kAggregate) {
    if (item.expr->agg == AggFunc::kCountStar) return "count";
    std::string base = AggFuncName(item.expr->agg);
    if (!item.expr->args.empty() &&
        item.expr->args[0]->kind == ExprKind::kColumnRef) {
      return base + "_" + ToLower(item.expr->args[0]->column_name);
    }
    return base;
  }
  return "expr" + std::to_string(ordinal);
}

/// Replaces every aggregate node in `expr` with a column reference to a
/// hidden aggregate output, appending the extracted AggregateSpec to `specs`.
/// Identical aggregates (by text) are extracted once.
ExprPtr ExtractAggregates(const Expr& expr,
                          std::vector<AggregateSpec>* specs,
                          std::map<std::string, std::string>* seen) {
  if (expr.kind == ExprKind::kAggregate) {
    const std::string text = expr.ToString();
    auto it = seen->find(text);
    if (it != seen->end()) return Col(it->second);
    const std::string name = "__agg" + std::to_string(specs->size());
    AggregateSpec spec;
    spec.func = expr.agg;
    spec.arg = expr.args.empty() ? nullptr : CloneExpr(*expr.args[0]);
    spec.output_name = name;
    specs->push_back(std::move(spec));
    seen->emplace(text, name);
    return Col(name);
  }
  auto out = std::make_shared<Expr>(expr);
  out->args.clear();
  for (const auto& a : expr.args) {
    out->args.push_back(ExtractAggregates(*a, specs, seen));
  }
  return out;
}

/// The decomposed shape of an aggregate query: grouping keys, extracted
/// aggregate specs, the rewritten select items / HAVING over hidden
/// __key*/__agg* columns. Built unbound; the executor binds against the
/// actual input schema.
struct AggregatePlan {
  std::vector<ExprPtr> key_exprs;  // unbound clones of GROUP BY expressions
  std::vector<std::string> key_names;
  std::vector<std::string> key_texts;
  std::vector<AggregateSpec> specs;  // args unbound
  struct OutputItem {
    ExprPtr rewritten;  // references __key*/__agg* columns
    std::string name;
  };
  std::vector<OutputItem> out_items;
  ExprPtr having_rewritten;
};

Result<AggregatePlan> BuildAggregatePlan(const SelectStmt& stmt) {
  AggregatePlan plan;
  for (size_t i = 0; i < stmt.group_by.size(); ++i) {
    plan.key_exprs.push_back(CloneExpr(*stmt.group_by[i]));
    plan.key_names.push_back("__key" + std::to_string(i));
    plan.key_texts.push_back(stmt.group_by[i]->ToString());
  }
  std::map<std::string, std::string> seen;
  for (size_t i = 0; i < stmt.items.size(); ++i) {
    const SelectItem& item = stmt.items[i];
    if (item.star) {
      return Status::InvalidArgument("'*' not allowed with GROUP BY");
    }
    AggregatePlan::OutputItem out;
    out.name = DefaultItemName(item, i);
    const std::string text = item.expr->ToString();
    int key_idx = -1;
    for (size_t k = 0; k < plan.key_texts.size(); ++k) {
      if (plan.key_texts[k] == text) {
        key_idx = static_cast<int>(k);
        break;
      }
    }
    if (key_idx >= 0) {
      out.rewritten = Col(plan.key_names[static_cast<size_t>(key_idx)]);
    } else {
      if (!item.expr->ContainsAggregate()) {
        return Status::InvalidArgument(
            "select item '" + text +
            "' is neither an aggregate nor a GROUP BY key");
      }
      out.rewritten = ExtractAggregates(*item.expr, &plan.specs, &seen);
    }
    plan.out_items.push_back(std::move(out));
  }
  if (stmt.having != nullptr) {
    plan.having_rewritten =
        ExtractAggregates(*stmt.having, &plan.specs, &seen);
  }
  return plan;
}

Result<PlanPtr> PlanNamedSource(const std::string& name,
                                const PlanCatalog& catalog) {
  MIP_ASSIGN_OR_RETURN(PlanCatalog::TableInfo info, catalog.Describe(name));
  switch (info.kind) {
    case PlanCatalog::TableKind::kBase: {
      auto node = MakePlanNode(PlanKind::kScan);
      node->table_name = name;
      return node;
    }
    case PlanCatalog::TableKind::kDisk: {
      auto node = MakePlanNode(PlanKind::kScan);
      node->table_name = name;
      node->disk = true;
      return node;
    }
    case PlanCatalog::TableKind::kRemote: {
      auto node = MakePlanNode(PlanKind::kRemoteScan);
      node->table_name = name;
      node->location = info.location;
      node->remote_name = info.remote_name;
      return node;
    }
    case PlanCatalog::TableKind::kMerge: {
      auto node = MakePlanNode(PlanKind::kMergeUnion);
      node->table_name = name;
      for (const std::string& part : info.parts) {
        MIP_ASSIGN_OR_RETURN(PlanPtr child, PlanNamedSource(part, catalog));
        node->children.push_back(std::move(child));
      }
      return node;
    }
  }
  return Status::Internal("bad table kind");
}

Result<PlanPtr> PlanSource(const TableRef& ref, const PlanCatalog& catalog) {
  switch (ref.kind) {
    case TableRef::Kind::kNamed:
      return PlanNamedSource(ref.name, catalog);
    case TableRef::Kind::kFunction: {
      // Table functions are materialized once at plan time — the same
      // single invocation the interpreter performed — which also yields
      // their schema for free.
      MIP_ASSIGN_OR_RETURN(Table t,
                           catalog.RunTableFunction(ref.func_name,
                                                    ref.func_args));
      auto node = MakePlanNode(PlanKind::kScan);
      node->func_name = ref.func_name;
      node->func_args = ref.func_args;
      node->prebound = std::make_shared<Table>(std::move(t));
      return node;
    }
    case TableRef::Kind::kJoin: {
      auto node = MakePlanNode(PlanKind::kJoin);
      MIP_ASSIGN_OR_RETURN(PlanPtr left, PlanSource(*ref.left, catalog));
      MIP_ASSIGN_OR_RETURN(PlanPtr right, PlanSource(*ref.right, catalog));
      node->children = {std::move(left), std::move(right)};
      node->left_key = ref.left_key;
      node->right_key = ref.right_key;
      node->join_type = ref.join_type;
      return node;
    }
  }
  return Status::Internal("bad table ref kind");
}

PlanPtr WrapSortLimit(PlanPtr root, const SelectStmt& stmt, bool add_sort) {
  if (add_sort && !stmt.order_by.empty()) {
    auto sort = MakePlanNode(PlanKind::kSort);
    for (const OrderItem& o : stmt.order_by) {
      sort->sort_keys.push_back(o.column);
      sort->sort_ascending.push_back(o.ascending);
    }
    sort->children = {std::move(root)};
    root = std::move(sort);
  }
  if (stmt.limit >= 0) {
    auto limit = MakePlanNode(PlanKind::kLimit);
    limit->limit = stmt.limit;
    limit->children = {std::move(root)};
    root = std::move(limit);
  }
  return root;
}

}  // namespace

Result<PlanPtr> PlanSelect(const SelectStmt& stmt,
                           const PlanCatalog& catalog) {
  bool has_aggregate = !stmt.group_by.empty();
  for (const SelectItem& item : stmt.items) {
    if (!item.star && item.expr->ContainsAggregate()) has_aggregate = true;
  }

  if (has_aggregate) {
    // Shape error checks (star with GROUP BY, non-key non-aggregate items)
    // come before source resolution, as in the interpreter.
    MIP_ASSIGN_OR_RETURN(AggregatePlan agg_plan, BuildAggregatePlan(stmt));
    MIP_ASSIGN_OR_RETURN(PlanPtr root, PlanSource(*stmt.from, catalog));
    if (stmt.where != nullptr) {
      auto filter = MakePlanNode(PlanKind::kFilter);
      filter->predicate = CloneExpr(*stmt.where);
      filter->children = {std::move(root)};
      root = std::move(filter);
    }
    auto agg = MakePlanNode(PlanKind::kAggregate);
    agg->keys = std::move(agg_plan.key_exprs);
    agg->key_names = std::move(agg_plan.key_names);
    agg->aggs = std::move(agg_plan.specs);
    agg->children = {std::move(root)};
    root = std::move(agg);
    if (agg_plan.having_rewritten != nullptr) {
      auto having = MakePlanNode(PlanKind::kFilter);
      having->predicate = std::move(agg_plan.having_rewritten);
      having->children = {std::move(root)};
      root = std::move(having);
    }
    auto proj = MakePlanNode(PlanKind::kProject);
    std::set<std::string> used;
    for (AggregatePlan::OutputItem& item : agg_plan.out_items) {
      proj->exprs.push_back(std::move(item.rewritten));
      proj->names.push_back(UniquifyName(item.name, &used));
    }
    proj->children = {std::move(root)};
    root = std::move(proj);
    if (stmt.distinct) {
      auto distinct = MakePlanNode(PlanKind::kDistinct);
      distinct->children = {std::move(root)};
      root = std::move(distinct);
    }
    return WrapSortLimit(std::move(root), stmt, /*add_sort=*/true);
  }

  // --- Non-aggregate shape -------------------------------------------------
  MIP_ASSIGN_OR_RETURN(PlanPtr root, PlanSource(*stmt.from, catalog));
  if (stmt.where != nullptr) {
    auto filter = MakePlanNode(PlanKind::kFilter);
    filter->predicate = CloneExpr(*stmt.where);
    filter->children = {std::move(root)};
    root = std::move(filter);
  }

  // ORDER BY may reference input columns that are not projected (standard
  // SQL): when every key resolves in the input schema, sort before
  // projecting; otherwise sort the projected output.
  bool sort_before_projection = false;
  if (!stmt.order_by.empty()) {
    MIP_ASSIGN_OR_RETURN(Schema input, InferPlanSchema(*root, catalog));
    bool all_in_input = true;
    for (const OrderItem& o : stmt.order_by) {
      if (input.FieldIndex(o.column) < 0) all_in_input = false;
    }
    if (all_in_input) {
      auto sort = MakePlanNode(PlanKind::kSort);
      for (const OrderItem& o : stmt.order_by) {
        sort->sort_keys.push_back(o.column);
        sort->sort_ascending.push_back(o.ascending);
      }
      sort->children = {std::move(root)};
      root = std::move(sort);
      sort_before_projection = true;
    }
  }

  auto proj = MakePlanNode(PlanKind::kProject);
  for (const SelectItem& item : stmt.items) {
    SelectItem copy;
    copy.star = item.star;
    copy.alias = item.alias;
    if (!item.star) copy.expr = CloneExpr(*item.expr);
    proj->items.push_back(std::move(copy));
  }
  proj->children = {std::move(root)};
  root = std::move(proj);
  if (stmt.distinct) {
    auto distinct = MakePlanNode(PlanKind::kDistinct);
    distinct->children = {std::move(root)};
    root = std::move(distinct);
  }
  return WrapSortLimit(std::move(root), stmt,
                       /*add_sort=*/!sort_before_projection);
}

// --- Schema inference ------------------------------------------------------

namespace {

Result<Schema> SubsetSchema(const Schema& schema,
                            const std::vector<std::string>& columns) {
  if (columns.empty()) return schema;
  Schema out;
  for (const std::string& name : columns) {
    const int idx = schema.FieldIndex(name);
    if (idx < 0) {
      return Status::NotFound("pruned column '" + name +
                              "' missing from schema " + schema.ToString());
    }
    MIP_RETURN_NOT_OK(out.AddField(schema.field(static_cast<size_t>(idx))));
  }
  return out;
}

}  // namespace

Result<Schema> InferPlanSchema(const PlanNode& node,
                               const PlanCatalog& catalog) {
  switch (node.kind) {
    case PlanKind::kScan:
    case PlanKind::kIndexScan: {
      Schema schema;
      if (node.prebound != nullptr) {
        schema = node.prebound->schema();
      } else {
        MIP_ASSIGN_OR_RETURN(schema, catalog.TableSchema(node.table_name));
      }
      return SubsetSchema(schema, node.columns);
    }
    case PlanKind::kRemoteScan: {
      if (!node.sql_override.empty()) {
        return Status::NotImplemented(
            "no schema inference for sql-override remote scans");
      }
      MIP_ASSIGN_OR_RETURN(Schema schema,
                           catalog.TableSchema(node.table_name));
      return SubsetSchema(schema, node.columns);
    }
    case PlanKind::kMergeUnion:
      if (node.children.empty()) {
        return Status::InvalidArgument("merge table '" + node.table_name +
                                       "' has no parts");
      }
      return InferPlanSchema(*node.children[0], catalog);
    case PlanKind::kJoin: {
      MIP_ASSIGN_OR_RETURN(Schema left,
                           InferPlanSchema(*node.children[0], catalog));
      MIP_ASSIGN_OR_RETURN(Schema right,
                           InferPlanSchema(*node.children[1], catalog));
      // Mirrors HashJoin's output schema: left fields, then right fields
      // with a "_r" suffix on name collisions.
      Schema out = left;
      for (const Field& f : right.fields()) {
        Field field = f;
        if (out.FieldIndex(field.name) >= 0) field.name += "_r";
        MIP_RETURN_NOT_OK(out.AddField(std::move(field)));
      }
      return out;
    }
    case PlanKind::kFilter:
    case PlanKind::kDistinct:
    case PlanKind::kSort:
    case PlanKind::kLimit:
      return InferPlanSchema(*node.children[0], catalog);
    case PlanKind::kProject:
    case PlanKind::kAggregate:
      // Output types would need full binding; nothing in the planner or
      // optimizer looks above these nodes.
      return Status::NotImplemented(
          "schema inference stops below projections/aggregates");
  }
  return Status::Internal("bad plan node kind");
}

// --- EXPLAIN rendering -----------------------------------------------------

namespace {

std::string JoinStrings(const std::vector<std::string>& parts) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += ", ";
    out += parts[i];
  }
  return out;
}

std::string AggSpecText(const AggregateSpec& spec) {
  std::string text;
  switch (spec.func) {
    case AggFunc::kCountStar:
      text = "count(*)";
      break;
    case AggFunc::kCountDistinct:
      text = "count(distinct " + spec.arg->ToString() + ")";
      break;
    default:
      text = std::string(AggFuncName(spec.func)) + "(" +
             spec.arg->ToString() + ")";
      break;
  }
  return text + " AS " + spec.output_name;
}

/// `canonical` is the PlanFingerprint rendering: physical-only annotations
/// (segment/index stats) are omitted and IndexScan prints as Scan, so cache
/// keys survive flushes, compactions, and access-path flips — none of which
/// change results (see PlanFingerprint in plan.h).
void RenderNode(const PlanNode& node, int depth, bool canonical,
                std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  std::string line = canonical && node.kind == PlanKind::kIndexScan
                         ? PlanKindName(PlanKind::kScan)
                         : PlanKindName(node.kind);
  switch (node.kind) {
    case PlanKind::kScan:
    case PlanKind::kIndexScan: {
      if (node.prebound != nullptr) {
        std::vector<std::string> args;
        for (const Value& v : node.func_args) args.push_back(v.ToSqlString());
        line += " " + node.func_name + "(" + JoinStrings(args) + ")";
      } else {
        line += " " + node.table_name;
      }
      if (node.disk) line += " disk";
      if (!node.columns.empty()) {
        line += " cols=[" + JoinStrings(node.columns) + "]";
      }
      if (node.scan_limit >= 0) {
        line += " limit=" + std::to_string(node.scan_limit);
      }
      if (node.prune_filter != nullptr) {
        line += " prune=" + node.prune_filter->ToString();
      }
      if (!canonical && node.seg_total >= 0) {
        const int64_t pruned = node.seg_pruned < 0 ? 0 : node.seg_pruned;
        line += " segments: scanned=" + std::to_string(node.seg_total - pruned) +
                " pruned=" + std::to_string(pruned) +
                " total=" + std::to_string(node.seg_total);
      }
      if (!canonical && node.idx_probes >= 0) {
        line += " index: probes=" + std::to_string(node.idx_probes) +
                " rows=" + std::to_string(node.idx_rows < 0 ? 0 : node.idx_rows);
      }
      break;
    }
    case PlanKind::kRemoteScan: {
      line += " " + node.table_name + " on " + node.location +
              " remote=" + node.remote_name;
      if (!node.sql_override.empty()) {
        line += " sql=[" + node.sql_override + "]";
        break;
      }
      if (!node.columns.empty()) {
        line += " cols=[" + JoinStrings(node.columns) + "]";
      }
      if (node.remote_filter != nullptr) {
        line += " filter=" + node.remote_filter->ToString();
      }
      if (node.scan_limit >= 0) {
        line += " limit=" + std::to_string(node.scan_limit);
      }
      break;
    }
    case PlanKind::kMergeUnion:
      line += " " + node.table_name;
      break;
    case PlanKind::kJoin: {
      line += node.join_type == JoinType::kLeft ? " LEFT" : " INNER";
      line += " on " + node.left_key + " = " + node.right_key;
      // Strategy and cost annotations are physical: the same bytes come
      // back under either strategy, so the canonical (fingerprint)
      // rendering omits them — a cost-model flip must not fracture the
      // gateway result cache.
      if (!canonical && node.strategy == JoinStrategy::kBroadcast) {
        line += " strategy=broadcast";
      }
      char buf[96];
      if (!canonical && node.est_left_rows >= 0) {
        std::snprintf(buf, sizeof(buf), " est: left=%.0f right=%.0f out=%.0f",
                      node.est_left_rows, node.est_right_rows,
                      node.est_out_rows);
        line += buf;
      }
      if (!canonical && node.cost_collect >= 0) {
        std::snprintf(buf, sizeof(buf), " cost: broadcast=%.0f collect=%.0f",
                      node.cost_broadcast, node.cost_collect);
        line += buf;
      }
      break;
    }
    case PlanKind::kFilter:
      line += " " + node.predicate->ToString();
      break;
    case PlanKind::kProject: {
      std::vector<std::string> parts;
      if (!node.exprs.empty()) {
        for (size_t i = 0; i < node.exprs.size(); ++i) {
          parts.push_back(node.exprs[i]->ToString() + " AS " + node.names[i]);
        }
      } else {
        for (const SelectItem& item : node.items) {
          if (item.star) {
            parts.push_back("*");
          } else if (!item.alias.empty()) {
            parts.push_back(item.expr->ToString() + " AS " + item.alias);
          } else {
            parts.push_back(item.expr->ToString());
          }
        }
      }
      line += " " + JoinStrings(parts);
      break;
    }
    case PlanKind::kAggregate: {
      if (!node.keys.empty()) {
        std::vector<std::string> keys;
        for (size_t i = 0; i < node.keys.size(); ++i) {
          keys.push_back(node.keys[i]->ToString() + " AS " +
                         node.key_names[i]);
        }
        line += " keys=[" + JoinStrings(keys) + "]";
      }
      std::vector<std::string> aggs;
      for (const AggregateSpec& spec : node.aggs) {
        aggs.push_back(AggSpecText(spec));
      }
      line += " aggs=[" + JoinStrings(aggs) + "]";
      break;
    }
    case PlanKind::kDistinct:
      break;
    case PlanKind::kSort: {
      std::vector<std::string> keys;
      for (size_t i = 0; i < node.sort_keys.size(); ++i) {
        keys.push_back(node.sort_keys[i] +
                       (node.sort_ascending[i] ? " ASC" : " DESC"));
      }
      line += " " + JoinStrings(keys);
      break;
    }
    case PlanKind::kLimit:
      line += " " + std::to_string(node.limit);
      break;
  }
  out->append(line);
  out->push_back('\n');
  for (const PlanPtr& child : node.children) {
    RenderNode(*child, depth + 1, canonical, out);
  }
}

}  // namespace

std::string RenderPlan(const PlanNode& root) {
  std::string out;
  RenderNode(root, 0, /*canonical=*/false, &out);
  return out;
}

uint64_t PlanFingerprint(const PlanNode& root) {
  std::string text;
  RenderNode(root, 0, /*canonical=*/true, &text);
  uint64_t h = 1469598103934665603ull;  // FNV-1a 64 offset basis
  for (const char c : text) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;  // FNV-1a 64 prime
  }
  return h;
}

// --- Executor --------------------------------------------------------------

namespace {

// Keeps the first occurrence of each distinct row (SELECT DISTINCT).
Table DedupRows(const Table& table) {
  std::set<std::string> seen;
  std::vector<int64_t> keep;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    std::string key;
    for (size_t c = 0; c < table.num_columns(); ++c) {
      const Value v = table.At(r, c);
      key.push_back(static_cast<char>(v.kind()));
      key += v.ToString();
      key.push_back('\x1f');
    }
    if (seen.insert(std::move(key)).second) {
      keep.push_back(static_cast<int64_t>(r));
    }
  }
  return table.Take(keep);
}

Result<Table> SelectTableColumns(const Table& table,
                                 const std::vector<std::string>& columns) {
  Schema schema;
  std::vector<Column> cols;
  for (const std::string& name : columns) {
    const int idx = table.schema().FieldIndex(name);
    if (idx < 0) {
      return Status::Internal("pruned column '" + name +
                              "' missing from scanned table");
    }
    MIP_RETURN_NOT_OK(
        schema.AddField(table.schema().field(static_cast<size_t>(idx))));
    cols.push_back(table.column(static_cast<size_t>(idx)));
  }
  return Table::Make(std::move(schema), std::move(cols));
}

std::string BuildRemoteScanSql(const PlanNode& node) {
  std::string sql = "SELECT ";
  sql += node.columns.empty() ? "*" : JoinStrings(node.columns);
  sql += " FROM " + node.remote_name;
  if (node.remote_filter != nullptr) {
    sql += " WHERE " + LowerExprToSql(*node.remote_filter);
  }
  if (node.scan_limit >= 0) {
    sql += " LIMIT " + std::to_string(node.scan_limit);
  }
  return sql;
}

/// Process-wide counter naming broadcast temp tables; uniqueness matters
/// because concurrent joins may broadcast to the same worker, whose bound
/// runner creates/drops the temp table by name.
std::atomic<uint64_t> g_broadcast_temp_counter{0};

struct PlanExecutor {
  const PlanExecutorOptions& opts;

  /// Master-side hash join of two materialized sides. The ON clause does
  /// not say which side each key belongs to; try left.key on the left
  /// first, then swapped.
  Result<Table> LocalJoin(const PlanNode& node, const Table& left,
                          const Table& right) {
    if (opts.join_counters != nullptr) {
      opts.join_counters->probe_rows += left.num_rows();
    }
    if (left.schema().FieldIndex(node.left_key) >= 0 &&
        right.schema().FieldIndex(node.right_key) >= 0) {
      return HashJoin(left, right, node.left_key, node.right_key,
                      node.join_type, opts.exec);
    }
    if (left.schema().FieldIndex(node.right_key) >= 0 &&
        right.schema().FieldIndex(node.left_key) >= 0) {
      return HashJoin(left, right, node.right_key, node.left_key,
                      node.join_type, opts.exec);
    }
    return Status::NotFound("join keys not found: " + node.left_key + ", " +
                            node.right_key);
  }

  /// BroadcastJoin: ship the materialized build side to every worker
  /// holding a left-side part and push the join into the worker; the
  /// master concatenates per-part results in part order. Byte-identical to
  /// the collect strategy: each part joins against the identical build
  /// table, workers resolve the ambiguous ON exactly like LocalJoin, and
  /// per-part probe order concatenated in part order IS the probe order of
  /// the concatenated left side. Any part that cannot be pushed — local
  /// scan, sql-override, no bound runner, or a peer that fails the
  /// round trip (e.g. predates run_sql_bound) — falls back to fetching
  /// that part and joining at the master, preserving the result bytes.
  Result<Table> ExecBroadcastJoin(const PlanNode& node, const Table& small) {
    const PlanNode& left = *node.children[0];
    std::vector<const PlanNode*> parts;
    if (left.kind == PlanKind::kMergeUnion) {
      for (const PlanPtr& child : left.children) parts.push_back(child.get());
    } else {
      parts.push_back(&left);
    }
    std::vector<Table> results;
    results.reserve(parts.size());
    for (const PlanNode* part : parts) {
      MIP_ASSIGN_OR_RETURN(Table joined,
                           ExecBroadcastPart(node, *part, small));
      results.push_back(std::move(joined));
    }
    return Table::Concat(results);
  }

  Result<Table> ExecBroadcastPart(const PlanNode& node, const PlanNode& part,
                                  const Table& small) {
    const bool pushable =
        part.kind == PlanKind::kRemoteScan && part.sql_override.empty() &&
        part.columns.empty() && part.scan_limit < 0 &&
        static_cast<bool>(opts.run_remote_bound_sql) &&
        IsSqlIdentifier(part.remote_name) && IsSqlIdentifier(node.left_key) &&
        IsSqlIdentifier(node.right_key);
    if (pushable) {
      const std::string temp_name =
          "__bcast" +
          std::to_string(g_broadcast_temp_counter.fetch_add(1) + 1);
      std::string sql = "SELECT * FROM " + part.remote_name +
                        (node.join_type == JoinType::kLeft ? " LEFT JOIN "
                                                           : " JOIN ") +
                        temp_name + " ON " + node.left_key + " = " +
                        node.right_key;
      // A filter pushed into this part references part columns only, so
      // WHERE above the worker's join keeps/drops whole per-probe-row match
      // groups — identical to filtering the part before the join.
      if (part.remote_filter != nullptr) {
        sql += " WHERE " + LowerExprToSql(*part.remote_filter);
      }
      Result<Table> pushed =
          opts.run_remote_bound_sql(part.location, temp_name, sql, small);
      if (pushed.ok()) return pushed;
      // Fall through: fetch the part and join here instead.
    }
    MIP_ASSIGN_OR_RETURN(Table left_part, Exec(part));
    return LocalJoin(node, left_part, small);
  }

  Result<Table> Exec(const PlanNode& node) {
    switch (node.kind) {
      case PlanKind::kScan:
      case PlanKind::kIndexScan: {
        Table t;
        if (node.prebound != nullptr) {
          t = *node.prebound;
        } else if (node.disk) {
          // kIndexScan prefers the index-probing scan; falling back to the
          // plain disk scan is always byte-identical (the index only skips
          // segments it proves empty).
          const auto& scan =
              node.kind == PlanKind::kIndexScan && opts.index_scan_disk
                  ? opts.index_scan_disk
                  : opts.scan_disk;
          if (!scan) {
            return Status::ExecutionError(
                "disk table '" + node.table_name +
                "' has no storage attached on database " + opts.db_name);
          }
          MIP_ASSIGN_OR_RETURN(
              t, scan(node.table_name, node.prune_filter.get()));
        } else {
          MIP_ASSIGN_OR_RETURN(t, opts.get_table(node.table_name));
        }
        if (node.scan_limit >= 0) {
          t = Limit(t, static_cast<size_t>(node.scan_limit));
        }
        if (!node.columns.empty()) {
          return SelectTableColumns(t, node.columns);
        }
        return t;
      }
      case PlanKind::kRemoteScan: {
        const bool lowered = !node.sql_override.empty() ||
                             node.remote_filter != nullptr ||
                             !node.columns.empty() || node.scan_limit >= 0;
        if (lowered) {
          if (!opts.run_remote_sql) {
            return Status::ExecutionError(
                "remote table '" + node.table_name +
                "' has no remote query runner installed on database " +
                opts.db_name);
          }
          const std::string sql = node.sql_override.empty()
                                      ? BuildRemoteScanSql(node)
                                      : node.sql_override;
          return opts.run_remote_sql(node.location, sql);
        }
        if (!opts.fetch_remote) {
          return Status::ExecutionError(
              "remote table '" + node.table_name +
              "' has no remote fetcher installed on database " +
              opts.db_name);
        }
        return opts.fetch_remote(node.location, node.remote_name);
      }
      case PlanKind::kMergeUnion: {
        std::vector<Table> parts;
        parts.reserve(node.children.size());
        for (const PlanPtr& child : node.children) {
          MIP_ASSIGN_OR_RETURN(Table part, Exec(*child));
          parts.push_back(std::move(part));
        }
        return Table::Concat(parts);
      }
      case PlanKind::kJoin: {
        // Build side first: both strategies materialize it exactly once.
        MIP_ASSIGN_OR_RETURN(Table right, Exec(*node.children[1]));
        if (opts.join_counters != nullptr) {
          opts.join_counters->build_rows += right.num_rows();
        }
        if (node.strategy == JoinStrategy::kBroadcast) {
          return ExecBroadcastJoin(node, right);
        }
        MIP_ASSIGN_OR_RETURN(Table left, Exec(*node.children[0]));
        return LocalJoin(node, left, right);
      }
      case PlanKind::kFilter: {
        MIP_ASSIGN_OR_RETURN(Table input, Exec(*node.children[0]));
        MIP_RETURN_NOT_OK(BindExpr(node.predicate.get(), input.schema(),
                                   opts.functions));
        return Filter(input, *node.predicate, opts.functions, opts.exec);
      }
      case PlanKind::kProject: {
        MIP_ASSIGN_OR_RETURN(Table input, Exec(*node.children[0]));
        std::vector<ExprPtr> exprs;
        std::vector<std::string> names;
        if (!node.exprs.empty()) {
          exprs = node.exprs;
          names = node.names;
        } else {
          std::set<std::string> used;
          for (size_t i = 0; i < node.items.size(); ++i) {
            const SelectItem& item = node.items[i];
            if (item.star) {
              for (const Field& f : input.schema().fields()) {
                exprs.push_back(Col(f.name));
                names.push_back(f.name);
                used.insert(ToLower(f.name));
              }
              continue;
            }
            names.push_back(UniquifyName(DefaultItemName(item, i), &used));
            exprs.push_back(item.expr);
          }
        }
        for (const ExprPtr& e : exprs) {
          MIP_RETURN_NOT_OK(BindExpr(e.get(), input.schema(),
                                     opts.functions));
        }
        return Project(input, exprs, names, opts.functions, opts.exec);
      }
      case PlanKind::kAggregate: {
        MIP_ASSIGN_OR_RETURN(Table input, Exec(*node.children[0]));
        for (const ExprPtr& key : node.keys) {
          MIP_RETURN_NOT_OK(BindExpr(key.get(), input.schema(),
                                     opts.functions));
        }
        for (const AggregateSpec& spec : node.aggs) {
          if (spec.arg != nullptr) {
            MIP_RETURN_NOT_OK(BindExpr(spec.arg.get(), input.schema(),
                                       opts.functions));
          }
        }
        return GroupByAggregate(input, node.keys, node.key_names, node.aggs,
                                opts.functions, opts.exec);
      }
      case PlanKind::kDistinct: {
        MIP_ASSIGN_OR_RETURN(Table input, Exec(*node.children[0]));
        return DedupRows(input);
      }
      case PlanKind::kSort: {
        MIP_ASSIGN_OR_RETURN(Table input, Exec(*node.children[0]));
        return SortBy(input, node.sort_keys, node.sort_ascending);
      }
      case PlanKind::kLimit: {
        MIP_ASSIGN_OR_RETURN(Table input, Exec(*node.children[0]));
        return Limit(input, static_cast<size_t>(node.limit));
      }
    }
    return Status::Internal("bad plan node kind");
  }
};

}  // namespace

Result<Table> ExecutePlan(const PlanNode& root,
                          const PlanExecutorOptions& options) {
  PlanExecutor executor{options};
  return executor.Exec(root);
}

}  // namespace mip::engine
