#include "engine/function_registry.h"

#include "common/string_util.h"

namespace mip::engine {

Status FunctionRegistry::RegisterScalar(ScalarFunction f) {
  const std::string key = ToLower(f.name);
  if (scalars_.count(key) > 0) {
    return Status::AlreadyExists("scalar function '" + f.name +
                                 "' already registered");
  }
  scalars_.emplace(key, std::move(f));
  return Status::OK();
}

Status FunctionRegistry::RegisterTable(TableFunction f) {
  const std::string key = ToLower(f.name);
  if (tables_.count(key) > 0) {
    return Status::AlreadyExists("table function '" + f.name +
                                 "' already registered");
  }
  tables_.emplace(key, std::move(f));
  return Status::OK();
}

const FunctionRegistry::ScalarFunction* FunctionRegistry::FindScalar(
    const std::string& name) const {
  auto it = scalars_.find(ToLower(name));
  return it == scalars_.end() ? nullptr : &it->second;
}

const FunctionRegistry::TableFunction* FunctionRegistry::FindTable(
    const std::string& name) const {
  auto it = tables_.find(ToLower(name));
  return it == tables_.end() ? nullptr : &it->second;
}

std::vector<std::string> FunctionRegistry::ScalarNames() const {
  std::vector<std::string> names;
  names.reserve(scalars_.size());
  for (const auto& [k, v] : scalars_) names.push_back(k);
  return names;
}

}  // namespace mip::engine
