#ifndef MIP_ENGINE_OPTIMIZER_H_
#define MIP_ENGINE_OPTIMIZER_H_

#include "engine/plan.h"

namespace mip::engine {

/// \brief Per-rule switches for the plan optimizer. All rules default on;
/// Database turns them off wholesale via set_optimizer_enabled(false) (or
/// MIP_OPTIMIZER=0) for the on-vs-off parity tests and CI diff job.
struct OptimizerOptions {
  /// Replicates a Filter over a MergeUnion into per-part filters, and lowers
  /// remotely-evaluable predicates into the SQL a RemoteScan ships. Exact:
  /// filtering is row-local and order-preserving on both sides.
  bool predicate_pushdown = true;

  /// Trims Scan/RemoteScan output to the columns the plan references; a
  /// pruned remote scan only *fetches* those columns. Exact: no expression
  /// sees a value it would not have seen.
  bool projection_pruning = true;

  /// Pushes LIMIT below Sort-free 1:1 pipelines into scans (lowered as a SQL
  /// LIMIT on remote scans). Exact: row order is preserved end to end.
  bool limit_pushdown = true;

  /// Decomposes Aggregate-over-MergeUnion into per-part partial aggregates
  /// (shipped as SQL to remote parts) plus a combine stage. This is the one
  /// rule that reassociates float sums — results match the direct path up to
  /// rounding, which is why Database exposes it as its own ablation switch
  /// (set_aggregate_pushdown). COUNT(DISTINCT) does not decompose and
  /// bypasses the rule.
  bool merge_aggregate_pushdown = true;

  /// Converts a disk Scan into an IndexScan when the catalog's access-path
  /// preview (real, footer-guided index probes) shows the index path would
  /// decode strictly fewer segments than zone maps alone. Exact: an index
  /// probe only skips segments it proves hold zero candidate rows, and the
  /// Filter above the scan re-applies the predicate either way — Database
  /// exposes it as an ablation switch (set_index_scan / MIP_INDEX_SCAN=0)
  /// purely for benchmarking the two access paths.
  bool index_scan = true;

  /// Chooses a physical strategy per Join node (broadcast vs collect) by
  /// comparing modeled wire costs fed by the statistics layer, and
  /// annotates EXPLAIN with estimated cardinalities and costs. Exact:
  /// strategy is physical only — both strategies produce byte-identical
  /// results — so this is an ablation switch (MIP_COST_MODEL=0) for
  /// benchmarking, never a correctness knob. Off = every join collects,
  /// the only pre-cost-model behavior.
  bool cost_model = true;

  /// Forces every join's strategy regardless of the cost model: -1 = let
  /// the model choose, otherwise a JoinStrategy value. Benchmarks use it to
  /// measure both sides of the crossover on identical data; the executor
  /// falls back per part when a forced broadcast cannot be pushed.
  int force_join_strategy = -1;

  /// Whether the executor will have a run_sql runner available. Without one
  /// nothing may be lowered into remote SQL text; remote scans fall back to
  /// whole-table fetches exactly like the pre-plan-layer interpreter.
  bool has_remote_query_runner = false;

  /// Whether the executor will have a run_sql_bound runner available (the
  /// broadcast transport). Without one the cost model never picks
  /// broadcast: it would only fall back to collect at execution time.
  bool has_remote_bound_runner = false;

  /// Lifetime join counters (may be null): the strategy chooser tallies
  /// joins planned and broadcast/collect decisions here.
  JoinCounters* join_counters = nullptr;
};

/// \brief Applies the ordered rule-pass pipeline to `plan`, mutating/
/// replacing nodes, and returns the optimized root. Passes run in a fixed
/// order — each rewrite pass first (it changes tree shape), then the
/// annotation/choice passes over the final shape:
///
///   1. merge-aggregate decomposition   (rewrite)
///   2. predicate pushdown              (rewrite; includes join-derived
///                                       key filters pushed into both sides)
///   3. projection pruning              (rewrite)
///   4. limit pushdown                  (rewrite)
///   5. segment-prune annotation        (annotate)
///   6. access-path choice              (costed choice: Scan vs IndexScan,
///                                       from real index-probe previews)
///   7. join-strategy choice            (costed choice: broadcast vs
///                                       collect, from the stats layer)
///
/// Invariant: the optimized plan is byte-identical to the input plan for
/// every query, except under merge_aggregate_pushdown (float reassociation,
/// see above).
Result<PlanPtr> OptimizePlan(PlanPtr plan, const PlanCatalog& catalog,
                             const OptimizerOptions& options);

}  // namespace mip::engine

#endif  // MIP_ENGINE_OPTIMIZER_H_
