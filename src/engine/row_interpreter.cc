#include "engine/row_interpreter.h"

#include <cmath>
#include <cstdlib>

#include "common/string_util.h"
#include "engine/function_registry.h"

namespace mip::engine {

namespace {

// SQL LIKE with % (any run) and _ (any one char), via backtracking.
bool LikeMatch(const std::string& text, const std::string& pattern,
               size_t ti = 0, size_t pi = 0) {
  while (pi < pattern.size()) {
    const char pc = pattern[pi];
    if (pc == '%') {
      // Collapse consecutive %.
      while (pi + 1 < pattern.size() && pattern[pi + 1] == '%') ++pi;
      if (pi + 1 == pattern.size()) return true;
      for (size_t skip = ti; skip <= text.size(); ++skip) {
        if (LikeMatch(text, pattern, skip, pi + 1)) return true;
      }
      return false;
    }
    if (ti >= text.size()) return false;
    if (pc != '_' && pc != text[ti]) return false;
    ++ti;
    ++pi;
  }
  return ti == text.size();
}

Result<Value> EvalBuiltinCallImpl(const std::string& lower,
                                  const std::vector<Value>& argv) {
  if (lower == "like") {
    if (argv[0].is_null() || argv[1].is_null()) return Value::Null();
    return Value::Bool(
        LikeMatch(argv[0].string_value(), argv[1].string_value()));
  }
  if (lower == "cast_double") {
    if (argv[0].is_null()) return Value::Null();
    if (argv[0].kind() == Value::Kind::kString) {
      char* end = nullptr;
      const std::string& s = argv[0].string_value();
      const double v = std::strtod(s.c_str(), &end);
      if (s.empty() || end != s.c_str() + s.size()) return Value::Null();
      return Value::Double(v);
    }
    return Value::Double(argv[0].AsDouble());
  }
  if (lower == "cast_bigint") {
    if (argv[0].is_null()) return Value::Null();
    if (argv[0].kind() == Value::Kind::kString) {
      char* end = nullptr;
      const std::string& s = argv[0].string_value();
      const long long v = std::strtoll(s.c_str(), &end, 10);
      if (s.empty() || end != s.c_str() + s.size()) return Value::Null();
      return Value::Int(v);
    }
    return Value::Int(argv[0].AsInt());
  }
  if (lower == "cast_varchar") {
    if (argv[0].is_null()) return Value::Null();
    return Value::String(argv[0].ToString());
  }
  if (lower == "coalesce") {
    for (const Value& v : argv) {
      if (!v.is_null()) return v;
    }
    return Value::Null();
  }
  if (lower == "least" || lower == "greatest") {
    Value best = Value::Null();
    for (const Value& v : argv) {
      if (v.is_null()) continue;
      if (best.is_null()) {
        best = v;
        continue;
      }
      const bool smaller = v.AsDouble() < best.AsDouble();
      if ((lower == "least") == smaller) best = v;
    }
    return best;
  }
  // Numeric unary/binary builtins: NULL in -> NULL out.
  for (const Value& v : argv) {
    if (v.is_null()) return Value::Null();
  }
  const double x = argv[0].AsDouble();
  if (lower == "abs") return Value::Double(std::fabs(x));
  if (lower == "sqrt") return Value::Double(std::sqrt(x));
  if (lower == "ln" || lower == "log") return Value::Double(std::log(x));
  if (lower == "exp") return Value::Double(std::exp(x));
  if (lower == "floor") return Value::Double(std::floor(x));
  if (lower == "ceil") return Value::Double(std::ceil(x));
  if (lower == "round") return Value::Double(std::round(x));
  if (lower == "sign") {
    return Value::Double(x > 0 ? 1.0 : (x < 0 ? -1.0 : 0.0));
  }
  if (lower == "pow") return Value::Double(std::pow(x, argv[1].AsDouble()));
  return Status::NotFound("unknown function '" + lower + "'");
}

Value CompareValues(BinaryOp op, const Value& l, const Value& r) {
  if (l.is_null() || r.is_null()) return Value::Null();
  int cmp;
  if (l.kind() == Value::Kind::kString || r.kind() == Value::Kind::kString) {
    cmp = l.string_value().compare(r.string_value());
  } else {
    const double a = l.AsDouble();
    const double b = r.AsDouble();
    cmp = (a < b) ? -1 : (a > b ? 1 : 0);
  }
  switch (op) {
    case BinaryOp::kEq:
      return Value::Bool(cmp == 0);
    case BinaryOp::kNe:
      return Value::Bool(cmp != 0);
    case BinaryOp::kLt:
      return Value::Bool(cmp < 0);
    case BinaryOp::kLe:
      return Value::Bool(cmp <= 0);
    case BinaryOp::kGt:
      return Value::Bool(cmp > 0);
    case BinaryOp::kGe:
      return Value::Bool(cmp >= 0);
    default:
      return Value::Null();
  }
}

}  // namespace

Result<Value> EvalScalarBuiltin(const std::string& lower_name,
                                const std::vector<Value>& argv) {
  return EvalBuiltinCallImpl(lower_name, argv);
}

Result<Value> EvalRow(const Expr& expr, const Table& table, size_t row,
                      const FunctionRegistry* registry) {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      return expr.literal;
    case ExprKind::kColumnRef: {
      if (expr.bound_index < 0) {
        return Status::Internal("unbound column reference '" +
                                expr.column_name + "'");
      }
      return table.column(static_cast<size_t>(expr.bound_index)).ValueAt(row);
    }
    case ExprKind::kUnary: {
      MIP_ASSIGN_OR_RETURN(Value a, EvalRow(*expr.args[0], table, row,
                                            registry));
      switch (expr.unary_op) {
        case UnaryOp::kNeg:
          if (a.is_null()) return Value::Null();
          if (a.kind() == Value::Kind::kInt) return Value::Int(-a.int_value());
          return Value::Double(-a.AsDouble());
        case UnaryOp::kNot:
          if (a.is_null()) return Value::Null();
          return Value::Bool(!a.AsBool());
        case UnaryOp::kIsNull:
          return Value::Bool(a.is_null());
        case UnaryOp::kIsNotNull:
          return Value::Bool(!a.is_null());
      }
      return Status::Internal("bad unary op");
    }
    case ExprKind::kBinary: {
      // AND/OR need 3-valued short-circuit semantics.
      if (expr.binary_op == BinaryOp::kAnd || expr.binary_op == BinaryOp::kOr) {
        MIP_ASSIGN_OR_RETURN(Value l,
                             EvalRow(*expr.args[0], table, row, registry));
        MIP_ASSIGN_OR_RETURN(Value r,
                             EvalRow(*expr.args[1], table, row, registry));
        const bool is_and = expr.binary_op == BinaryOp::kAnd;
        if (!l.is_null() && !r.is_null()) {
          return Value::Bool(is_and ? (l.AsBool() && r.AsBool())
                                    : (l.AsBool() || r.AsBool()));
        }
        // NULL AND false = false; NULL OR true = true; otherwise NULL.
        if (is_and) {
          if ((!l.is_null() && !l.AsBool()) || (!r.is_null() && !r.AsBool())) {
            return Value::Bool(false);
          }
        } else {
          if ((!l.is_null() && l.AsBool()) || (!r.is_null() && r.AsBool())) {
            return Value::Bool(true);
          }
        }
        return Value::Null();
      }
      MIP_ASSIGN_OR_RETURN(Value l,
                           EvalRow(*expr.args[0], table, row, registry));
      MIP_ASSIGN_OR_RETURN(Value r,
                           EvalRow(*expr.args[1], table, row, registry));
      switch (expr.binary_op) {
        case BinaryOp::kAdd:
        case BinaryOp::kSub:
        case BinaryOp::kMul:
        case BinaryOp::kMod: {
          if (l.is_null() || r.is_null()) return Value::Null();
          if (expr.result_type == DataType::kInt64) {
            const int64_t a = l.AsInt();
            const int64_t b = r.AsInt();
            switch (expr.binary_op) {
              case BinaryOp::kAdd:
                return Value::Int(a + b);
              case BinaryOp::kSub:
                return Value::Int(a - b);
              case BinaryOp::kMul:
                return Value::Int(a * b);
              case BinaryOp::kMod:
                if (b == 0) return Value::Null();
                return Value::Int(a % b);
              default:
                break;
            }
          }
          const double a = l.AsDouble();
          const double b = r.AsDouble();
          switch (expr.binary_op) {
            case BinaryOp::kAdd:
              return Value::Double(a + b);
            case BinaryOp::kSub:
              return Value::Double(a - b);
            case BinaryOp::kMul:
              return Value::Double(a * b);
            case BinaryOp::kMod:
              return Value::Double(std::fmod(a, b));
            default:
              break;
          }
          return Status::Internal("bad arithmetic op");
        }
        case BinaryOp::kDiv: {
          if (l.is_null() || r.is_null()) return Value::Null();
          const double b = r.AsDouble();
          if (b == 0.0) return Value::Null();  // SQL: division by zero -> NULL
          return Value::Double(l.AsDouble() / b);
        }
        default:
          return CompareValues(expr.binary_op, l, r);
      }
    }
    case ExprKind::kCall: {
      std::vector<Value> argv;
      argv.reserve(expr.args.size());
      for (const auto& a : expr.args) {
        MIP_ASSIGN_OR_RETURN(Value v, EvalRow(*a, table, row, registry));
        argv.push_back(std::move(v));
      }
      const std::string lower = ToLower(expr.func_name);
      if (registry != nullptr) {
        const auto* udf = registry->FindScalar(lower);
        if (udf != nullptr) return udf->fn(argv);
      }
      return EvalBuiltinCallImpl(lower, argv);
    }
    case ExprKind::kAggregate:
      return Status::ExecutionError(
          "aggregate expression in row context: " + expr.ToString());
    case ExprKind::kStar:
      return Status::ExecutionError("'*' outside COUNT(*)");
    case ExprKind::kCase: {
      size_t i = 0;
      for (; i + 1 < expr.args.size(); i += 2) {
        MIP_ASSIGN_OR_RETURN(Value cond,
                             EvalRow(*expr.args[i], table, row, registry));
        // A NULL condition does not match (SQL semantics).
        if (!cond.is_null() && cond.AsBool()) {
          return EvalRow(*expr.args[i + 1], table, row, registry);
        }
      }
      if (i < expr.args.size()) {
        return EvalRow(*expr.args[i], table, row, registry);
      }
      return Value::Null();  // no ELSE -> NULL
    }
  }
  return Status::Internal("bad expression kind");
}

}  // namespace mip::engine
