#ifndef MIP_ENGINE_VECTOR_PROGRAM_H_
#define MIP_ENGINE_VECTOR_PROGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/exec_context.h"
#include "engine/expr.h"
#include "engine/table.h"

namespace mip::engine {

/// \brief A numeric expression JIT-compiled into a linear register program
/// executed batch-at-a-time over cache-resident vector registers.
///
/// This is MIP's stand-in for the tracing-JIT / UDF-fusion execution path
/// ([1, 9] in the paper): the expression tree is lowered once into a flat
/// instruction sequence; execution streams the table through fixed-size
/// batches (kBatchSize rows), so every intermediate lives in a preallocated
/// L1/L2-resident register instead of a full-column materialization.
///
/// Scope: numeric expressions (arithmetic, comparisons, logical connectives,
/// unary math builtins, pow). NULL is represented as NaN inside registers and
/// converted back to validity on output; semantics match the vectorized
/// evaluator (property-tested). Strings and registered UDF calls do not
/// compile — Compile returns NotImplemented and callers fall back to
/// EvalVectorized.
class VectorProgram {
 public:
  static constexpr size_t kBatchSize = 2048;

  /// Lowers a bound expression. The expression must have been bound against
  /// `schema` (BindExpr).
  static Result<VectorProgram> Compile(const Expr& expr, const Schema& schema);

  /// Tuning knobs for Execute: intermediate-register batch size (the cache
  /// residency ablation of bench_engine) and intra-query parallelism (rows
  /// are split into morsels dispatched on exec's ThreadPool, one register
  /// set per morsel invocation; nullptr resolves to ExecContext::Default()).
  struct ExecOptions {
    size_t batch_size = kBatchSize;
    const ExecContext* exec = nullptr;
  };

  /// Runs the program over `table` (whose schema must match the compile-time
  /// schema) and returns the result column.
  Result<Column> Execute(const Table& table) const {
    return Execute(table, ExecOptions());
  }
  Result<Column> Execute(const Table& table, const ExecOptions& options) const;

  size_t num_instructions() const { return instrs_.size(); }
  int num_registers() const { return num_registers_; }
  DataType result_type() const { return result_type_; }

  /// Human-readable listing, one instruction per line.
  std::string Disassemble() const;

 private:
  enum class OpCode : uint8_t {
    kLoadCol,
    kLoadConst,
    kAdd,
    kSub,
    kMul,
    kDiv,
    kMod,
    kNeg,
    kAbs,
    kSqrt,
    kLog,
    kExp,
    kFloor,
    kCeil,
    kRound,
    kSign,
    kPow,
    kCmpEq,
    kCmpNe,
    kCmpLt,
    kCmpLe,
    kCmpGt,
    kCmpGe,
    kAnd,
    kOr,
    kNot,
    kIsNull,
    kIsNotNull,
    /// dst = (a is non-NULL and non-zero) ? b : c  — lowers CASE chains.
    kSelect,
  };

  struct Instr {
    OpCode op;
    int dst = 0;
    int a = -1;
    int b = -1;
    int c = -1;
    double konst = 0.0;
    int col = -1;
  };

  struct Compiler;

  static const char* OpName(OpCode op);

  std::vector<Instr> instrs_;
  int num_registers_ = 0;
  DataType result_type_ = DataType::kFloat64;
  int result_reg_ = 0;
};

}  // namespace mip::engine

#endif  // MIP_ENGINE_VECTOR_PROGRAM_H_
