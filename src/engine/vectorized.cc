#include "engine/vectorized.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/string_util.h"
#include "engine/function_registry.h"
#include "engine/row_interpreter.h"

namespace mip::engine {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// Morsel-parallel range loop: body(begin, end) over [0, n). Bodies write
/// disjoint index ranges, so any thread count gives identical results.
void MorselLoop(const ExecContext& exec, size_t n,
                const std::function<void(size_t, size_t)>& body) {
  exec.ForEachMorsel(n, [&body](size_t, size_t begin, size_t end) {
    body(begin, end);
  });
}

// Dense double view of a column: values where valid, NaN elsewhere. One
// typed pass per column type (not a per-element type switch), then a
// word-level validity pass — see bench_engine's DenseDoubles micro-bench.
std::vector<double> DenseDoublesImpl(const Column& col,
                                     const ExecContext& exec) {
  const size_t n = col.length();
  std::vector<double> out(n);
  switch (col.type()) {
    case DataType::kFloat64: {
      const double* src = col.doubles().data();
      MorselLoop(exec, n, [&](size_t b, size_t e) {
        std::copy(src + b, src + e, out.data() + b);
      });
      break;
    }
    case DataType::kInt64: {
      const int64_t* src = col.ints().data();
      MorselLoop(exec, n, [&](size_t b, size_t e) {
        for (size_t i = b; i < e; ++i) out[i] = static_cast<double>(src[i]);
      });
      break;
    }
    case DataType::kBool: {
      const uint8_t* src = col.bools().data();
      MorselLoop(exec, n, [&](size_t b, size_t e) {
        for (size_t i = b; i < e; ++i) out[i] = src[i] ? 1.0 : 0.0;
      });
      break;
    }
    case DataType::kString:
      std::fill(out.begin(), out.end(), kNaN);
      return out;  // validity is irrelevant: strings are NaN either way
  }
  if (col.has_validity()) {
    const uint64_t* words = col.validity().words().data();
    MorselLoop(exec, n, [&](size_t b, size_t e) {
      for (size_t i = b; i < e; ++i) {
        if (((words[i >> 6] >> (i & 63)) & 1ull) == 0) out[i] = kNaN;
      }
    });
  }
  return out;
}

// Dense validity view (1 = valid), expanded from the packed bitmap words.
std::vector<uint8_t> DenseValidity(const Column& col,
                                   const ExecContext& exec) {
  const size_t n = col.length();
  std::vector<uint8_t> out(n, 1);
  if (col.has_validity()) {
    const uint64_t* words = col.validity().words().data();
    MorselLoop(exec, n, [&](size_t b, size_t e) {
      for (size_t i = b; i < e; ++i) {
        out[i] = static_cast<uint8_t>((words[i >> 6] >> (i & 63)) & 1ull);
      }
    });
  }
  return out;
}

Column MakeDoubleColumn(std::vector<double> values,
                        const std::vector<uint8_t>& valid) {
  const size_t n = values.size();
  Column out = Column::FromDoubles(std::move(values));
  bool any_null = false;
  for (uint8_t v : valid) {
    if (!v) {
      any_null = true;
      break;
    }
  }
  if (any_null) {
    Bitmap bm(n, true);
    for (size_t i = 0; i < n; ++i) {
      if (!valid[i]) bm.Set(i, false);
    }
    (void)out.SetValidity(std::move(bm));
  }
  return out;
}

Column MakeIntColumn(std::vector<int64_t> values,
                     const std::vector<uint8_t>& valid) {
  const size_t n = values.size();
  Column out = Column::FromInts(std::move(values));
  bool any_null = false;
  for (uint8_t v : valid) {
    if (!v) {
      any_null = true;
      break;
    }
  }
  if (any_null) {
    Bitmap bm(n, true);
    for (size_t i = 0; i < n; ++i) {
      if (!valid[i]) bm.Set(i, false);
    }
    (void)out.SetValidity(std::move(bm));
  }
  return out;
}

Column MakeBoolColumn(std::vector<uint8_t> values,
                      const std::vector<uint8_t>& valid) {
  const size_t n = values.size();
  Column out = Column::FromBools(std::move(values));
  bool any_null = false;
  for (uint8_t v : valid) {
    if (!v) {
      any_null = true;
      break;
    }
  }
  if (any_null) {
    Bitmap bm(n, true);
    for (size_t i = 0; i < n; ++i) {
      if (!valid[i]) bm.Set(i, false);
    }
    (void)out.SetValidity(std::move(bm));
  }
  return out;
}

Column BroadcastLiteral(const Value& v, size_t n) {
  switch (v.kind()) {
    case Value::Kind::kNull: {
      Column c(DataType::kFloat64);
      for (size_t i = 0; i < n; ++i) c.AppendNull();
      return c;
    }
    case Value::Kind::kBool:
      return Column::FromBools(
          std::vector<uint8_t>(n, v.bool_value() ? 1 : 0));
    case Value::Kind::kInt:
      return Column::FromInts(std::vector<int64_t>(n, v.int_value()));
    case Value::Kind::kDouble:
      return Column::FromDoubles(std::vector<double>(n, v.double_value()));
    case Value::Kind::kString:
      return Column::FromStrings(
          std::vector<std::string>(n, v.string_value()));
  }
  return Column(DataType::kFloat64);
}

Result<Column> EvalArithmetic(const Expr& expr, const Column& l,
                              const Column& r, const ExecContext& exec) {
  const size_t n = l.length();
  std::vector<uint8_t> valid(n, 1);
  const std::vector<uint8_t> lv = DenseValidity(l, exec);
  const std::vector<uint8_t> rv = DenseValidity(r, exec);
  MorselLoop(exec, n, [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) valid[i] = lv[i] & rv[i];
  });

  if (expr.result_type == DataType::kInt64 &&
      expr.binary_op != BinaryOp::kDiv) {
    std::vector<int64_t> a(n), b(n);
    MorselLoop(exec, n, [&](size_t mb, size_t me) {
      for (size_t i = mb; i < me; ++i) {
        a[i] = l.type() == DataType::kInt64
                   ? l.IntAt(i)
                   : static_cast<int64_t>(l.AsDoubleAt(i));
        b[i] = r.type() == DataType::kInt64
                   ? r.IntAt(i)
                   : static_cast<int64_t>(r.AsDoubleAt(i));
      }
    });
    std::vector<int64_t> out(n);
    switch (expr.binary_op) {
      case BinaryOp::kAdd:
        MorselLoop(exec, n, [&](size_t mb, size_t me) {
          for (size_t i = mb; i < me; ++i) out[i] = a[i] + b[i];
        });
        break;
      case BinaryOp::kSub:
        MorselLoop(exec, n, [&](size_t mb, size_t me) {
          for (size_t i = mb; i < me; ++i) out[i] = a[i] - b[i];
        });
        break;
      case BinaryOp::kMul:
        MorselLoop(exec, n, [&](size_t mb, size_t me) {
          for (size_t i = mb; i < me; ++i) out[i] = a[i] * b[i];
        });
        break;
      case BinaryOp::kMod:
        MorselLoop(exec, n, [&](size_t mb, size_t me) {
          for (size_t i = mb; i < me; ++i) {
            if (b[i] == 0) {
              valid[i] = 0;
              out[i] = 0;
            } else {
              out[i] = a[i] % b[i];
            }
          }
        });
        break;
      default:
        return Status::Internal("bad int arithmetic op");
    }
    return MakeIntColumn(std::move(out), valid);
  }

  const std::vector<double> a = DenseDoublesImpl(l, exec);
  const std::vector<double> b = DenseDoublesImpl(r, exec);
  std::vector<double> out(n);
  switch (expr.binary_op) {
    case BinaryOp::kAdd:
      MorselLoop(exec, n, [&](size_t mb, size_t me) {
        for (size_t i = mb; i < me; ++i) out[i] = a[i] + b[i];
      });
      break;
    case BinaryOp::kSub:
      MorselLoop(exec, n, [&](size_t mb, size_t me) {
        for (size_t i = mb; i < me; ++i) out[i] = a[i] - b[i];
      });
      break;
    case BinaryOp::kMul:
      MorselLoop(exec, n, [&](size_t mb, size_t me) {
        for (size_t i = mb; i < me; ++i) out[i] = a[i] * b[i];
      });
      break;
    case BinaryOp::kDiv:
      MorselLoop(exec, n, [&](size_t mb, size_t me) {
        for (size_t i = mb; i < me; ++i) {
          if (b[i] == 0.0) {
            valid[i] = 0;
            out[i] = 0.0;
          } else {
            out[i] = a[i] / b[i];
          }
        }
      });
      break;
    case BinaryOp::kMod:
      MorselLoop(exec, n, [&](size_t mb, size_t me) {
        for (size_t i = mb; i < me; ++i) out[i] = std::fmod(a[i], b[i]);
      });
      break;
    default:
      return Status::Internal("bad arithmetic op");
  }
  return MakeDoubleColumn(std::move(out), valid);
}

Result<Column> EvalComparison(const Expr& expr, const Column& l,
                              const Column& r, const ExecContext& exec) {
  const size_t n = l.length();
  std::vector<uint8_t> out(n, 0);
  std::vector<uint8_t> valid(n, 1);
  const std::vector<uint8_t> lv = DenseValidity(l, exec);
  const std::vector<uint8_t> rv = DenseValidity(r, exec);

  const bool strings =
      l.type() == DataType::kString || r.type() == DataType::kString;
  const BinaryOp op = expr.binary_op;
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      break;
    default:
      return Status::Internal("bad comparison op");
  }
  MorselLoop(exec, n, [&](size_t mb, size_t me) {
    for (size_t i = mb; i < me; ++i) {
      if (!(lv[i] & rv[i])) {
        valid[i] = 0;
        continue;
      }
      int cmp;
      if (strings) {
        cmp = l.StringAt(i).compare(r.StringAt(i));
      } else {
        const double a = l.AsDoubleAt(i);
        const double b = r.AsDoubleAt(i);
        cmp = (a < b) ? -1 : (a > b ? 1 : 0);
      }
      bool res = false;
      switch (op) {
        case BinaryOp::kEq:
          res = cmp == 0;
          break;
        case BinaryOp::kNe:
          res = cmp != 0;
          break;
        case BinaryOp::kLt:
          res = cmp < 0;
          break;
        case BinaryOp::kLe:
          res = cmp <= 0;
          break;
        case BinaryOp::kGt:
          res = cmp > 0;
          break;
        default:
          res = cmp >= 0;
          break;
      }
      out[i] = res ? 1 : 0;
    }
  });
  return MakeBoolColumn(std::move(out), valid);
}

Result<Column> EvalLogical(const Expr& expr, const Column& l, const Column& r,
                           const ExecContext& exec) {
  const size_t n = l.length();
  std::vector<uint8_t> out(n, 0);
  std::vector<uint8_t> valid(n, 1);
  const std::vector<uint8_t> lv = DenseValidity(l, exec);
  const std::vector<uint8_t> rv = DenseValidity(r, exec);
  const bool is_and = expr.binary_op == BinaryOp::kAnd;
  MorselLoop(exec, n, [&](size_t mb, size_t me) {
    for (size_t i = mb; i < me; ++i) {
      const bool lb = lv[i] && l.ValueAt(i).AsBool();
      const bool rb = rv[i] && r.ValueAt(i).AsBool();
      if (lv[i] && rv[i]) {
        out[i] = (is_and ? (lb && rb) : (lb || rb)) ? 1 : 0;
        continue;
      }
      // Three-valued logic with at least one NULL operand.
      if (is_and) {
        if ((lv[i] && !lb) || (rv[i] && !rb)) {
          out[i] = 0;  // definite false
        } else {
          valid[i] = 0;
        }
      } else {
        if ((lv[i] && lb) || (rv[i] && rb)) {
          out[i] = 1;  // definite true
        } else {
          valid[i] = 0;
        }
      }
    }
  });
  return MakeBoolColumn(std::move(out), valid);
}

using UnaryMathFn = double (*)(double);

Result<Column> EvalBuiltinMath(const std::string& lower,
                               const std::vector<Column>& argv,
                               const ExecContext& exec) {
  const Column& a = argv[0];
  const size_t n = a.length();
  std::vector<double> x = DenseDoublesImpl(a, exec);
  std::vector<uint8_t> valid = DenseValidity(a, exec);
  std::vector<double> out(n);

  UnaryMathFn fn = nullptr;
  if (lower == "abs") fn = [](double v) { return std::fabs(v); };
  else if (lower == "sqrt") fn = [](double v) { return std::sqrt(v); };
  else if (lower == "ln" || lower == "log") fn = [](double v) { return std::log(v); };
  else if (lower == "exp") fn = [](double v) { return std::exp(v); };
  else if (lower == "floor") fn = [](double v) { return std::floor(v); };
  else if (lower == "ceil") fn = [](double v) { return std::ceil(v); };
  else if (lower == "round") fn = [](double v) { return std::round(v); };
  else if (lower == "sign") fn = [](double v) { return v > 0 ? 1.0 : (v < 0 ? -1.0 : 0.0); };

  if (fn != nullptr) {
    MorselLoop(exec, n, [&](size_t mb, size_t me) {
      for (size_t i = mb; i < me; ++i) out[i] = fn(x[i]);
    });
    return MakeDoubleColumn(std::move(out), valid);
  }
  if (lower == "pow") {
    const std::vector<double> y = DenseDoublesImpl(argv[1], exec);
    const std::vector<uint8_t> yv = DenseValidity(argv[1], exec);
    MorselLoop(exec, n, [&](size_t mb, size_t me) {
      for (size_t i = mb; i < me; ++i) {
        valid[i] &= yv[i];
        out[i] = std::pow(x[i], y[i]);
      }
    });
    return MakeDoubleColumn(std::move(out), valid);
  }
  return Status::NotFound("unknown vectorized builtin '" + lower + "'");
}

}  // namespace

std::vector<double> DenseDoubles(const Column& col, const ExecContext* exec) {
  return DenseDoublesImpl(col, ExecContext::Resolve(exec));
}

Result<Column> EvalVectorized(const Expr& expr, const Table& table,
                              const FunctionRegistry* registry,
                              const ExecContext* exec) {
  const ExecContext& ctx = ExecContext::Resolve(exec);
  const size_t n = table.num_rows();
  switch (expr.kind) {
    case ExprKind::kLiteral:
      return BroadcastLiteral(expr.literal, n);
    case ExprKind::kColumnRef:
      if (expr.bound_index < 0) {
        return Status::Internal("unbound column '" + expr.column_name + "'");
      }
      return table.column(static_cast<size_t>(expr.bound_index));
    case ExprKind::kUnary: {
      MIP_ASSIGN_OR_RETURN(
          Column a, EvalVectorized(*expr.args[0], table, registry, &ctx));
      switch (expr.unary_op) {
        case UnaryOp::kNeg: {
          std::vector<uint8_t> valid = DenseValidity(a, ctx);
          if (expr.result_type == DataType::kInt64) {
            std::vector<int64_t> out(n);
            MorselLoop(ctx, n, [&](size_t mb, size_t me) {
              for (size_t i = mb; i < me; ++i) out[i] = -a.IntAt(i);
            });
            return MakeIntColumn(std::move(out), valid);
          }
          std::vector<double> out = DenseDoublesImpl(a, ctx);
          MorselLoop(ctx, n, [&](size_t mb, size_t me) {
            for (size_t i = mb; i < me; ++i) out[i] = -out[i];
          });
          return MakeDoubleColumn(std::move(out), valid);
        }
        case UnaryOp::kNot: {
          std::vector<uint8_t> valid = DenseValidity(a, ctx);
          std::vector<uint8_t> out(n, 0);
          MorselLoop(ctx, n, [&](size_t mb, size_t me) {
            for (size_t i = mb; i < me; ++i) {
              out[i] = a.ValueAt(i).AsBool() ? 0 : 1;
            }
          });
          return MakeBoolColumn(std::move(out), valid);
        }
        case UnaryOp::kIsNull: {
          std::vector<uint8_t> out(n, 0);
          MorselLoop(ctx, n, [&](size_t mb, size_t me) {
            for (size_t i = mb; i < me; ++i) out[i] = a.IsValid(i) ? 0 : 1;
          });
          return Column::FromBools(std::move(out));
        }
        case UnaryOp::kIsNotNull: {
          std::vector<uint8_t> out(n, 0);
          MorselLoop(ctx, n, [&](size_t mb, size_t me) {
            for (size_t i = mb; i < me; ++i) out[i] = a.IsValid(i) ? 1 : 0;
          });
          return Column::FromBools(std::move(out));
        }
      }
      return Status::Internal("bad unary op");
    }
    case ExprKind::kBinary: {
      MIP_ASSIGN_OR_RETURN(
          Column l, EvalVectorized(*expr.args[0], table, registry, &ctx));
      MIP_ASSIGN_OR_RETURN(
          Column r, EvalVectorized(*expr.args[1], table, registry, &ctx));
      switch (expr.binary_op) {
        case BinaryOp::kAdd:
        case BinaryOp::kSub:
        case BinaryOp::kMul:
        case BinaryOp::kDiv:
        case BinaryOp::kMod:
          return EvalArithmetic(expr, l, r, ctx);
        case BinaryOp::kAnd:
        case BinaryOp::kOr:
          return EvalLogical(expr, l, r, ctx);
        default:
          return EvalComparison(expr, l, r, ctx);
      }
    }
    case ExprKind::kCall: {
      const std::string lower = ToLower(expr.func_name);
      std::vector<Column> argv;
      argv.reserve(expr.args.size());
      for (const auto& a : expr.args) {
        MIP_ASSIGN_OR_RETURN(Column c,
                             EvalVectorized(*a, table, registry, &ctx));
        argv.push_back(std::move(c));
      }
      // Generic variadic/string builtins and registered UDFs fall back to a
      // serial row loop over the already-evaluated argument columns (UDFs
      // give no thread-safety guarantee; Column appends are sequential).
      const bool generic = lower == "coalesce" || lower == "least" ||
                           lower == "greatest" || lower == "like" ||
                           StartsWith(lower, "cast_") ||
                           (registry != nullptr &&
                            registry->FindScalar(lower) != nullptr);
      if (!generic) return EvalBuiltinMath(lower, argv, ctx);

      Column out(expr.result_type);
      std::vector<Value> row_args(argv.size());
      const auto* udf =
          registry != nullptr ? registry->FindScalar(lower) : nullptr;
      for (size_t i = 0; i < n; ++i) {
        for (size_t j = 0; j < argv.size(); ++j) {
          row_args[j] = argv[j].ValueAt(i);
        }
        Value v;
        if (udf != nullptr) {
          v = udf->fn(row_args);
        } else {
          MIP_ASSIGN_OR_RETURN(v, EvalScalarBuiltin(lower, row_args));
        }
        MIP_RETURN_NOT_OK(out.AppendValue(v));
      }
      return out;
    }
    case ExprKind::kAggregate:
      return Status::ExecutionError("aggregate in scalar vectorized context");
    case ExprKind::kStar:
      return Status::ExecutionError("'*' outside COUNT(*)");
    case ExprKind::kCase: {
      // Evaluate all conditions and branches column-wise, then select
      // (serial: the select loop appends boxed values).
      std::vector<Column> evaluated;
      evaluated.reserve(expr.args.size());
      for (const auto& a : expr.args) {
        MIP_ASSIGN_OR_RETURN(Column c,
                             EvalVectorized(*a, table, registry, &ctx));
        evaluated.push_back(std::move(c));
      }
      Column out(expr.result_type);
      for (size_t r = 0; r < n; ++r) {
        Value v;  // NULL when nothing matches and no ELSE
        bool matched = false;
        size_t i = 0;
        for (; i + 1 < evaluated.size(); i += 2) {
          if (evaluated[i].IsValid(r) &&
              evaluated[i].ValueAt(r).AsBool()) {
            v = evaluated[i + 1].ValueAt(r);
            matched = true;
            break;
          }
        }
        if (!matched && i < evaluated.size()) {
          v = evaluated[i].ValueAt(r);
        }
        MIP_RETURN_NOT_OK(out.AppendValue(v));
      }
      return out;
    }
  }
  return Status::Internal("bad expression kind");
}

Result<std::vector<int64_t>> EvalPredicate(const Expr& expr,
                                           const Table& table,
                                           const FunctionRegistry* registry,
                                           const ExecContext* exec) {
  const ExecContext& ctx = ExecContext::Resolve(exec);
  MIP_ASSIGN_OR_RETURN(Column pred,
                       EvalVectorized(expr, table, registry, &ctx));
  const size_t n = pred.length();
  const bool is_bool = pred.type() == DataType::kBool;
  // Per-morsel selection vectors concatenated in morsel order == the serial
  // scan's output at any thread count.
  std::vector<std::vector<int64_t>> parts(ctx.NumMorsels(n));
  ctx.ForEachMorsel(n, [&](size_t morsel, size_t begin, size_t end) {
    std::vector<int64_t>& out = parts[morsel];
    for (size_t i = begin; i < end; ++i) {
      if (!pred.IsValid(i)) continue;
      const bool hit = is_bool ? pred.bools()[i] != 0
                               : pred.ValueAt(i).AsBool();
      if (hit) out.push_back(static_cast<int64_t>(i));
    }
  });
  std::vector<int64_t> sel;
  size_t total = 0;
  for (const auto& p : parts) total += p.size();
  sel.reserve(total);
  for (const auto& p : parts) sel.insert(sel.end(), p.begin(), p.end());
  return sel;
}

}  // namespace mip::engine
