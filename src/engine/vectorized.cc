#include "engine/vectorized.h"

#include <cmath>

#include "common/string_util.h"
#include "engine/function_registry.h"
#include "engine/row_interpreter.h"

namespace mip::engine {

namespace {

// Dense double view of a column: values where valid, NaN elsewhere.
std::vector<double> DenseDoubles(const Column& col) {
  std::vector<double> out(col.length());
  for (size_t i = 0; i < col.length(); ++i) out[i] = col.AsDoubleAt(i);
  return out;
}

// Dense validity view (1 = valid).
std::vector<uint8_t> DenseValidity(const Column& col) {
  std::vector<uint8_t> out(col.length(), 1);
  if (col.has_validity()) {
    for (size_t i = 0; i < col.length(); ++i) {
      out[i] = col.validity().Get(i) ? 1 : 0;
    }
  }
  return out;
}

Column MakeDoubleColumn(std::vector<double> values,
                        const std::vector<uint8_t>& valid) {
  const size_t n = values.size();
  Column out = Column::FromDoubles(std::move(values));
  bool any_null = false;
  for (uint8_t v : valid) {
    if (!v) {
      any_null = true;
      break;
    }
  }
  if (any_null) {
    Bitmap bm(n, true);
    for (size_t i = 0; i < n; ++i) {
      if (!valid[i]) bm.Set(i, false);
    }
    (void)out.SetValidity(std::move(bm));
  }
  return out;
}

Column MakeIntColumn(std::vector<int64_t> values,
                     const std::vector<uint8_t>& valid) {
  const size_t n = values.size();
  Column out = Column::FromInts(std::move(values));
  bool any_null = false;
  for (uint8_t v : valid) {
    if (!v) {
      any_null = true;
      break;
    }
  }
  if (any_null) {
    Bitmap bm(n, true);
    for (size_t i = 0; i < n; ++i) {
      if (!valid[i]) bm.Set(i, false);
    }
    (void)out.SetValidity(std::move(bm));
  }
  return out;
}

Column MakeBoolColumn(std::vector<uint8_t> values,
                      const std::vector<uint8_t>& valid) {
  const size_t n = values.size();
  Column out = Column::FromBools(std::move(values));
  bool any_null = false;
  for (uint8_t v : valid) {
    if (!v) {
      any_null = true;
      break;
    }
  }
  if (any_null) {
    Bitmap bm(n, true);
    for (size_t i = 0; i < n; ++i) {
      if (!valid[i]) bm.Set(i, false);
    }
    (void)out.SetValidity(std::move(bm));
  }
  return out;
}

Column BroadcastLiteral(const Value& v, size_t n) {
  switch (v.kind()) {
    case Value::Kind::kNull: {
      Column c(DataType::kFloat64);
      for (size_t i = 0; i < n; ++i) c.AppendNull();
      return c;
    }
    case Value::Kind::kBool:
      return Column::FromBools(
          std::vector<uint8_t>(n, v.bool_value() ? 1 : 0));
    case Value::Kind::kInt:
      return Column::FromInts(std::vector<int64_t>(n, v.int_value()));
    case Value::Kind::kDouble:
      return Column::FromDoubles(std::vector<double>(n, v.double_value()));
    case Value::Kind::kString:
      return Column::FromStrings(
          std::vector<std::string>(n, v.string_value()));
  }
  return Column(DataType::kFloat64);
}

Result<Column> EvalArithmetic(const Expr& expr, const Column& l,
                              const Column& r) {
  const size_t n = l.length();
  std::vector<uint8_t> valid(n, 1);
  const std::vector<uint8_t> lv = DenseValidity(l);
  const std::vector<uint8_t> rv = DenseValidity(r);
  for (size_t i = 0; i < n; ++i) valid[i] = lv[i] & rv[i];

  if (expr.result_type == DataType::kInt64 &&
      expr.binary_op != BinaryOp::kDiv) {
    std::vector<int64_t> a(n), b(n);
    for (size_t i = 0; i < n; ++i) {
      a[i] = l.type() == DataType::kInt64
                 ? l.IntAt(i)
                 : static_cast<int64_t>(l.AsDoubleAt(i));
      b[i] = r.type() == DataType::kInt64
                 ? r.IntAt(i)
                 : static_cast<int64_t>(r.AsDoubleAt(i));
    }
    std::vector<int64_t> out(n);
    switch (expr.binary_op) {
      case BinaryOp::kAdd:
        for (size_t i = 0; i < n; ++i) out[i] = a[i] + b[i];
        break;
      case BinaryOp::kSub:
        for (size_t i = 0; i < n; ++i) out[i] = a[i] - b[i];
        break;
      case BinaryOp::kMul:
        for (size_t i = 0; i < n; ++i) out[i] = a[i] * b[i];
        break;
      case BinaryOp::kMod:
        for (size_t i = 0; i < n; ++i) {
          if (b[i] == 0) {
            valid[i] = 0;
            out[i] = 0;
          } else {
            out[i] = a[i] % b[i];
          }
        }
        break;
      default:
        return Status::Internal("bad int arithmetic op");
    }
    return MakeIntColumn(std::move(out), valid);
  }

  const std::vector<double> a = DenseDoubles(l);
  const std::vector<double> b = DenseDoubles(r);
  std::vector<double> out(n);
  switch (expr.binary_op) {
    case BinaryOp::kAdd:
      for (size_t i = 0; i < n; ++i) out[i] = a[i] + b[i];
      break;
    case BinaryOp::kSub:
      for (size_t i = 0; i < n; ++i) out[i] = a[i] - b[i];
      break;
    case BinaryOp::kMul:
      for (size_t i = 0; i < n; ++i) out[i] = a[i] * b[i];
      break;
    case BinaryOp::kDiv:
      for (size_t i = 0; i < n; ++i) {
        if (b[i] == 0.0) {
          valid[i] = 0;
          out[i] = 0.0;
        } else {
          out[i] = a[i] / b[i];
        }
      }
      break;
    case BinaryOp::kMod:
      for (size_t i = 0; i < n; ++i) out[i] = std::fmod(a[i], b[i]);
      break;
    default:
      return Status::Internal("bad arithmetic op");
  }
  return MakeDoubleColumn(std::move(out), valid);
}

Result<Column> EvalComparison(const Expr& expr, const Column& l,
                              const Column& r) {
  const size_t n = l.length();
  std::vector<uint8_t> out(n, 0);
  std::vector<uint8_t> valid(n, 1);
  const std::vector<uint8_t> lv = DenseValidity(l);
  const std::vector<uint8_t> rv = DenseValidity(r);

  const bool strings =
      l.type() == DataType::kString || r.type() == DataType::kString;
  for (size_t i = 0; i < n; ++i) {
    if (!(lv[i] & rv[i])) {
      valid[i] = 0;
      continue;
    }
    int cmp;
    if (strings) {
      cmp = l.StringAt(i).compare(r.StringAt(i));
    } else {
      const double a = l.AsDoubleAt(i);
      const double b = r.AsDoubleAt(i);
      cmp = (a < b) ? -1 : (a > b ? 1 : 0);
    }
    bool res = false;
    switch (expr.binary_op) {
      case BinaryOp::kEq:
        res = cmp == 0;
        break;
      case BinaryOp::kNe:
        res = cmp != 0;
        break;
      case BinaryOp::kLt:
        res = cmp < 0;
        break;
      case BinaryOp::kLe:
        res = cmp <= 0;
        break;
      case BinaryOp::kGt:
        res = cmp > 0;
        break;
      case BinaryOp::kGe:
        res = cmp >= 0;
        break;
      default:
        return Status::Internal("bad comparison op");
    }
    out[i] = res ? 1 : 0;
  }
  return MakeBoolColumn(std::move(out), valid);
}

Result<Column> EvalLogical(const Expr& expr, const Column& l,
                           const Column& r) {
  const size_t n = l.length();
  std::vector<uint8_t> out(n, 0);
  std::vector<uint8_t> valid(n, 1);
  const std::vector<uint8_t> lv = DenseValidity(l);
  const std::vector<uint8_t> rv = DenseValidity(r);
  const bool is_and = expr.binary_op == BinaryOp::kAnd;
  for (size_t i = 0; i < n; ++i) {
    const bool lb = lv[i] && l.ValueAt(i).AsBool();
    const bool rb = rv[i] && r.ValueAt(i).AsBool();
    if (lv[i] && rv[i]) {
      out[i] = (is_and ? (lb && rb) : (lb || rb)) ? 1 : 0;
      continue;
    }
    // Three-valued logic with at least one NULL operand.
    if (is_and) {
      if ((lv[i] && !lb) || (rv[i] && !rb)) {
        out[i] = 0;  // definite false
      } else {
        valid[i] = 0;
      }
    } else {
      if ((lv[i] && lb) || (rv[i] && rb)) {
        out[i] = 1;  // definite true
      } else {
        valid[i] = 0;
      }
    }
  }
  return MakeBoolColumn(std::move(out), valid);
}

using UnaryMathFn = double (*)(double);

Result<Column> EvalBuiltinMath(const std::string& lower,
                               const std::vector<Column>& argv) {
  const Column& a = argv[0];
  const size_t n = a.length();
  std::vector<double> x = DenseDoubles(a);
  std::vector<uint8_t> valid = DenseValidity(a);
  std::vector<double> out(n);

  UnaryMathFn fn = nullptr;
  if (lower == "abs") fn = [](double v) { return std::fabs(v); };
  else if (lower == "sqrt") fn = [](double v) { return std::sqrt(v); };
  else if (lower == "ln" || lower == "log") fn = [](double v) { return std::log(v); };
  else if (lower == "exp") fn = [](double v) { return std::exp(v); };
  else if (lower == "floor") fn = [](double v) { return std::floor(v); };
  else if (lower == "ceil") fn = [](double v) { return std::ceil(v); };
  else if (lower == "round") fn = [](double v) { return std::round(v); };
  else if (lower == "sign") fn = [](double v) { return v > 0 ? 1.0 : (v < 0 ? -1.0 : 0.0); };

  if (fn != nullptr) {
    for (size_t i = 0; i < n; ++i) out[i] = fn(x[i]);
    return MakeDoubleColumn(std::move(out), valid);
  }
  if (lower == "pow") {
    const std::vector<double> y = DenseDoubles(argv[1]);
    const std::vector<uint8_t> yv = DenseValidity(argv[1]);
    for (size_t i = 0; i < n; ++i) {
      valid[i] &= yv[i];
      out[i] = std::pow(x[i], y[i]);
    }
    return MakeDoubleColumn(std::move(out), valid);
  }
  return Status::NotFound("unknown vectorized builtin '" + lower + "'");
}

}  // namespace

Result<Column> EvalVectorized(const Expr& expr, const Table& table,
                              const FunctionRegistry* registry) {
  const size_t n = table.num_rows();
  switch (expr.kind) {
    case ExprKind::kLiteral:
      return BroadcastLiteral(expr.literal, n);
    case ExprKind::kColumnRef:
      if (expr.bound_index < 0) {
        return Status::Internal("unbound column '" + expr.column_name + "'");
      }
      return table.column(static_cast<size_t>(expr.bound_index));
    case ExprKind::kUnary: {
      MIP_ASSIGN_OR_RETURN(Column a,
                           EvalVectorized(*expr.args[0], table, registry));
      switch (expr.unary_op) {
        case UnaryOp::kNeg: {
          std::vector<uint8_t> valid = DenseValidity(a);
          if (expr.result_type == DataType::kInt64) {
            std::vector<int64_t> out(n);
            for (size_t i = 0; i < n; ++i) out[i] = -a.IntAt(i);
            return MakeIntColumn(std::move(out), valid);
          }
          std::vector<double> out = DenseDoubles(a);
          for (double& v : out) v = -v;
          return MakeDoubleColumn(std::move(out), valid);
        }
        case UnaryOp::kNot: {
          std::vector<uint8_t> valid = DenseValidity(a);
          std::vector<uint8_t> out(n, 0);
          for (size_t i = 0; i < n; ++i) {
            out[i] = a.ValueAt(i).AsBool() ? 0 : 1;
          }
          return MakeBoolColumn(std::move(out), valid);
        }
        case UnaryOp::kIsNull: {
          std::vector<uint8_t> out(n, 0);
          for (size_t i = 0; i < n; ++i) out[i] = a.IsValid(i) ? 0 : 1;
          return Column::FromBools(std::move(out));
        }
        case UnaryOp::kIsNotNull: {
          std::vector<uint8_t> out(n, 0);
          for (size_t i = 0; i < n; ++i) out[i] = a.IsValid(i) ? 1 : 0;
          return Column::FromBools(std::move(out));
        }
      }
      return Status::Internal("bad unary op");
    }
    case ExprKind::kBinary: {
      MIP_ASSIGN_OR_RETURN(Column l,
                           EvalVectorized(*expr.args[0], table, registry));
      MIP_ASSIGN_OR_RETURN(Column r,
                           EvalVectorized(*expr.args[1], table, registry));
      switch (expr.binary_op) {
        case BinaryOp::kAdd:
        case BinaryOp::kSub:
        case BinaryOp::kMul:
        case BinaryOp::kDiv:
        case BinaryOp::kMod:
          return EvalArithmetic(expr, l, r);
        case BinaryOp::kAnd:
        case BinaryOp::kOr:
          return EvalLogical(expr, l, r);
        default:
          return EvalComparison(expr, l, r);
      }
    }
    case ExprKind::kCall: {
      const std::string lower = ToLower(expr.func_name);
      std::vector<Column> argv;
      argv.reserve(expr.args.size());
      for (const auto& a : expr.args) {
        MIP_ASSIGN_OR_RETURN(Column c, EvalVectorized(*a, table, registry));
        argv.push_back(std::move(c));
      }
      // Generic variadic/string builtins and registered UDFs fall back to a
      // row loop over the already-evaluated argument columns.
      const bool generic = lower == "coalesce" || lower == "least" ||
                           lower == "greatest" || lower == "like" ||
                           StartsWith(lower, "cast_") ||
                           (registry != nullptr &&
                            registry->FindScalar(lower) != nullptr);
      if (!generic) return EvalBuiltinMath(lower, argv);

      Column out(expr.result_type);
      std::vector<Value> row_args(argv.size());
      const auto* udf =
          registry != nullptr ? registry->FindScalar(lower) : nullptr;
      for (size_t i = 0; i < n; ++i) {
        for (size_t j = 0; j < argv.size(); ++j) {
          row_args[j] = argv[j].ValueAt(i);
        }
        Value v;
        if (udf != nullptr) {
          v = udf->fn(row_args);
        } else {
          MIP_ASSIGN_OR_RETURN(v, EvalScalarBuiltin(lower, row_args));
        }
        MIP_RETURN_NOT_OK(out.AppendValue(v));
      }
      return out;
    }
    case ExprKind::kAggregate:
      return Status::ExecutionError("aggregate in scalar vectorized context");
    case ExprKind::kStar:
      return Status::ExecutionError("'*' outside COUNT(*)");
    case ExprKind::kCase: {
      // Evaluate all conditions and branches column-wise, then select.
      std::vector<Column> evaluated;
      evaluated.reserve(expr.args.size());
      for (const auto& a : expr.args) {
        MIP_ASSIGN_OR_RETURN(Column c, EvalVectorized(*a, table, registry));
        evaluated.push_back(std::move(c));
      }
      Column out(expr.result_type);
      for (size_t r = 0; r < n; ++r) {
        Value v;  // NULL when nothing matches and no ELSE
        bool matched = false;
        size_t i = 0;
        for (; i + 1 < evaluated.size(); i += 2) {
          if (evaluated[i].IsValid(r) &&
              evaluated[i].ValueAt(r).AsBool()) {
            v = evaluated[i + 1].ValueAt(r);
            matched = true;
            break;
          }
        }
        if (!matched && i < evaluated.size()) {
          v = evaluated[i].ValueAt(r);
        }
        MIP_RETURN_NOT_OK(out.AppendValue(v));
      }
      return out;
    }
  }
  return Status::Internal("bad expression kind");
}

Result<std::vector<int64_t>> EvalPredicate(const Expr& expr,
                                           const Table& table,
                                           const FunctionRegistry* registry) {
  MIP_ASSIGN_OR_RETURN(Column pred, EvalVectorized(expr, table, registry));
  std::vector<int64_t> sel;
  sel.reserve(table.num_rows());
  for (size_t i = 0; i < pred.length(); ++i) {
    if (pred.IsValid(i) && pred.ValueAt(i).AsBool()) {
      sel.push_back(static_cast<int64_t>(i));
    }
  }
  return sel;
}

}  // namespace mip::engine
