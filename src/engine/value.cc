#include "engine/value.h"

#include <cmath>
#include <limits>
#include <sstream>

namespace mip::engine {

double Value::AsDouble() const {
  switch (kind_) {
    case Kind::kBool:
      return bool_ ? 1.0 : 0.0;
    case Kind::kInt:
      return static_cast<double>(int_);
    case Kind::kDouble:
      return double_;
    default:
      return std::numeric_limits<double>::quiet_NaN();
  }
}

int64_t Value::AsInt() const {
  switch (kind_) {
    case Kind::kBool:
      return bool_ ? 1 : 0;
    case Kind::kInt:
      return int_;
    case Kind::kDouble:
      return static_cast<int64_t>(double_);
    default:
      return 0;
  }
}

bool Value::AsBool() const {
  switch (kind_) {
    case Kind::kNull:
      return false;
    case Kind::kBool:
      return bool_;
    case Kind::kInt:
      return int_ != 0;
    case Kind::kDouble:
      return double_ != 0.0;
    case Kind::kString:
      return !string_.empty();
  }
  return false;
}

std::string Value::ToSqlString() const {
  if (kind_ == Kind::kString) return "'" + string_ + "'";
  return ToString();
}

std::string Value::ToString() const {
  switch (kind_) {
    case Kind::kNull:
      return "NULL";
    case Kind::kBool:
      return bool_ ? "true" : "false";
    case Kind::kInt:
      return std::to_string(int_);
    case Kind::kDouble: {
      std::ostringstream os;
      os << double_;
      return os.str();
    }
    case Kind::kString:
      return string_;
  }
  return "";
}

bool Value::Equals(const Value& other) const {
  if (kind_ != other.kind_) {
    // Numeric cross-kind comparison (int vs double).
    if ((kind_ == Kind::kInt || kind_ == Kind::kDouble) &&
        (other.kind_ == Kind::kInt || other.kind_ == Kind::kDouble)) {
      return AsDouble() == other.AsDouble();
    }
    return false;
  }
  switch (kind_) {
    case Kind::kNull:
      return true;
    case Kind::kBool:
      return bool_ == other.bool_;
    case Kind::kInt:
      return int_ == other.int_;
    case Kind::kDouble:
      return double_ == other.double_ ||
             (std::isnan(double_) && std::isnan(other.double_));
    case Kind::kString:
      return string_ == other.string_;
  }
  return false;
}

}  // namespace mip::engine
