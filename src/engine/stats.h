#ifndef MIP_ENGINE_STATS_H_
#define MIP_ENGINE_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/table.h"

namespace mip::engine {

/// \brief Per-column statistics the cost model consumes: null count, a
/// distinct-value estimate, and a numeric min/max range.
///
/// `ndv` is estimated with a HyperLogLog-style sketch (see HllSketch) when
/// computed from data, copied from zone maps as -1 (unknown) when only the
/// storage footer is available, and summed-with-cap when merging shards.
/// min/max use the engine's numeric comparator view (bool -> 0/1,
/// int -> double); strings carry no range — the cost model only needs
/// ranges for selectivity on numeric predicates.
struct ColumnStats {
  std::string name;
  int64_t null_count = 0;
  /// Estimated number of distinct non-null values; -1 = unknown.
  int64_t ndv = -1;
  /// True when min_value/max_value describe a non-empty numeric range
  /// (NaN excluded, mirroring the storage zone maps).
  bool has_range = false;
  double min_value = 0.0;
  double max_value = 0.0;
};

/// \brief Table-level statistics: exact-or-estimated row count plus one
/// ColumnStats per schema field. row_count == -1 means unknown (the cost
/// model then falls back to the pre-cost-model behavior).
struct TableStats {
  int64_t row_count = -1;
  std::vector<ColumnStats> columns;

  /// Case-insensitive column lookup; nullptr when absent.
  const ColumnStats* FindColumn(const std::string& name) const;
};

/// \brief Deterministic HyperLogLog sketch for NDV estimation.
///
/// 1024 registers (~3.2% standard error — plenty for join costing, where
/// being within 2x picks the right strategy). The hash is a fixed FNV-1a /
/// splitmix64 combination, so the same data always produces the same
/// estimate on every node: stats are reproducible, cacheable, and safe to
/// diff in tests.
class HllSketch {
 public:
  static constexpr int kRegisterBits = 10;
  static constexpr int kRegisters = 1 << kRegisterBits;

  void AddHash(uint64_t hash);
  /// Estimated distinct count (small-range linear-counting correction
  /// applied below 2.5m, per the HyperLogLog paper).
  int64_t Estimate() const;
  /// Register-wise max, making shard sketches mergeable without rescanning.
  void Merge(const HllSketch& other);

  /// The sketch's canonical value hash: strings hash as tagged bytes,
  /// numerics (bool/int/double) as the tagged bit pattern of their double
  /// view with -0.0 normalized to +0.0 — two values hash equal exactly when
  /// the engine's join/comparison kernels would treat them as equal.
  static uint64_t HashString(const std::string& s);
  static uint64_t HashNumeric(double v);

 private:
  uint8_t registers_[kRegisters] = {0};
};

/// Computes full statistics (exact row/null counts, HLL NDV, numeric
/// min/max) by scanning `table` once.
TableStats ComputeTableStats(const Table& table);

/// Combines shard statistics for a merged (federated) table: row and null
/// counts sum; NDV sums capped at the total row count (an upper bound —
/// shards may share values); ranges take the enclosing min/max. Any shard
/// with an unknown field makes the merged field unknown.
TableStats MergeTableStats(const std::vector<TableStats>& parts);

/// Wire representation: one row per column
/// (column, row_count, null_count, ndv, has_range, min, max), so stats ride
/// the existing compressed table codec through the `get_stats` envelope.
/// A zero-column table still produces one carrier row (empty column name)
/// so the row count survives the trip.
Table StatsToTable(const TableStats& stats);
Result<TableStats> StatsFromTable(const Table& table);

}  // namespace mip::engine

#endif  // MIP_ENGINE_STATS_H_
