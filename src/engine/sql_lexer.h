#ifndef MIP_ENGINE_SQL_LEXER_H_
#define MIP_ENGINE_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace mip::engine {

enum class TokenType {
  kIdentifier,  ///< bare word (keywords are matched case-insensitively later)
  kInteger,
  kFloat,
  kString,  ///< single-quoted literal, quotes stripped
  kSymbol,  ///< punctuation / operator, text holds the exact spelling
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;
  size_t position = 0;  ///< byte offset in the statement, for error messages

  bool IsSymbol(const char* s) const {
    return type == TokenType::kSymbol && text == s;
  }
  /// Case-insensitive keyword check against an identifier token.
  bool IsKeyword(const char* kw) const;
};

/// \brief Tokenizes one SQL statement. Comments (`-- ...`) are skipped.
Result<std::vector<Token>> LexSql(const std::string& sql);

}  // namespace mip::engine

#endif  // MIP_ENGINE_SQL_LEXER_H_
