#include "engine/optimizer.h"

#include <algorithm>

#include "common/string_util.h"
#include "engine/sql_parser.h"

namespace mip::engine {

namespace {

// --- Rule 1: merge-aggregate decomposition ---------------------------------

/// True when every aggregate decomposes into partial aggregates plus a
/// combiner. COUNT(DISTINCT x) does not: distinct counts cannot be summed
/// across parts, so the query bypasses the rule and aggregates the
/// materialized union directly (this is also what makes the old side-path's
/// null-expression hole for kCountDistinct structurally unreachable here).
bool SpecsDecompose(const std::vector<AggregateSpec>& specs) {
  for (const AggregateSpec& spec : specs) {
    if (spec.func == AggFunc::kCountDistinct) return false;
  }
  return true;
}

/// Rewrites Aggregate -> [Filter] -> MergeUnion into
///
///   Project(final __key*/__agg* expressions)
///     Aggregate(combine partials)
///       MergeUnion(per-part partial aggregates)
///
/// where remote parts ship their partial as SQL text (run_sql) and every
/// other part gets a locally planned + optimized partial subplan — which
/// recurses through nested merge tables exactly like the interpreter's
/// recursive ExecuteSql did.
Result<PlanPtr> RewriteMergeAggregate(const PlanNode& agg,
                                      const PlanNode* where_filter,
                                      const PlanNode& merge,
                                      const PlanCatalog& catalog,
                                      const OptimizerOptions& options) {
  // --- Per-part partial SQL ------------------------------------------------
  std::string select = "SELECT ";
  bool first = true;
  auto add = [&select, &first](const std::string& item) {
    if (!first) select += ", ";
    first = false;
    select += item;
  };
  for (size_t i = 0; i < agg.keys.size(); ++i) {
    add(LowerExprToSql(*agg.keys[i]) + " AS " + agg.key_names[i]);
  }
  for (size_t j = 0; j < agg.aggs.size(); ++j) {
    const AggregateSpec& spec = agg.aggs[j];
    const std::string p = "__p" + std::to_string(j);
    const std::string arg =
        spec.arg != nullptr ? LowerExprToSql(*spec.arg) : "";
    switch (spec.func) {
      case AggFunc::kCountStar:
        add("count(*) AS " + p + "_a");
        break;
      case AggFunc::kCount:
        add("count(" + arg + ") AS " + p + "_a");
        break;
      case AggFunc::kSum:
        add("sum(" + arg + ") AS " + p + "_a");
        break;
      case AggFunc::kMin:
        add("min(" + arg + ") AS " + p + "_a");
        break;
      case AggFunc::kMax:
        add("max(" + arg + ") AS " + p + "_a");
        break;
      case AggFunc::kAvg:
        add("sum(" + arg + ") AS " + p + "_a");
        add("count(" + arg + ") AS " + p + "_b");
        break;
      case AggFunc::kVarSamp:
      case AggFunc::kStddevSamp:
        add("sum(" + arg + ") AS " + p + "_a");
        add("count(" + arg + ") AS " + p + "_b");
        add("sum((" + arg + ") * (" + arg + ")) AS " + p + "_c");
        break;
      case AggFunc::kCountDistinct:
        return Status::Internal("COUNT(DISTINCT) must bypass the rule");
    }
  }
  std::string tail;
  if (where_filter != nullptr) {
    tail += " WHERE " + LowerExprToSql(*where_filter->predicate);
  }
  if (!agg.keys.empty()) {
    tail += " GROUP BY ";
    for (size_t i = 0; i < agg.keys.size(); ++i) {
      if (i > 0) tail += ", ";
      tail += LowerExprToSql(*agg.keys[i]);
    }
  }

  auto new_merge = MakePlanNode(PlanKind::kMergeUnion);
  new_merge->table_name = merge.table_name;
  for (const PlanPtr& part : merge.children) {
    if (part->kind == PlanKind::kRemoteScan &&
        options.has_remote_query_runner) {
      // True pushdown: the partial aggregate runs on the remote node.
      auto scan = MakePlanNode(PlanKind::kRemoteScan);
      scan->table_name = part->table_name;
      scan->location = part->location;
      scan->remote_name = part->remote_name;
      scan->sql_override = select + " FROM " + part->remote_name + tail;
      new_merge->children.push_back(std::move(scan));
    } else {
      // Local (or fetch-and-compute) partial: plan and optimize the partial
      // query against this catalog.
      const std::string sql = select + " FROM " + part->table_name + tail;
      MIP_ASSIGN_OR_RETURN(SqlStatement stmt, ParseSql(sql));
      auto* partial_select = std::get_if<SelectStmt>(&stmt);
      if (partial_select == nullptr) {
        return Status::Internal("partial aggregate SQL is not a SELECT");
      }
      MIP_ASSIGN_OR_RETURN(PlanPtr sub, PlanSelect(*partial_select, catalog));
      MIP_ASSIGN_OR_RETURN(sub, OptimizePlan(std::move(sub), catalog,
                                             options));
      new_merge->children.push_back(std::move(sub));
    }
  }

  // --- Combine stage -------------------------------------------------------
  auto combine = MakePlanNode(PlanKind::kAggregate);
  for (const std::string& name : agg.key_names) {
    combine->keys.push_back(Col(name));
  }
  combine->key_names = agg.key_names;
  for (size_t j = 0; j < agg.aggs.size(); ++j) {
    const std::string p = "__p" + std::to_string(j);
    auto add_spec = [&combine](AggFunc func, const std::string& in,
                               const std::string& out) {
      AggregateSpec spec;
      spec.func = func;
      spec.arg = Col(in);
      spec.output_name = out;
      combine->aggs.push_back(std::move(spec));
    };
    switch (agg.aggs[j].func) {
      case AggFunc::kCountStar:
      case AggFunc::kCount:
      case AggFunc::kSum:
        add_spec(AggFunc::kSum, p + "_a", p + "_ca");
        break;
      case AggFunc::kMin:
        add_spec(AggFunc::kMin, p + "_a", p + "_ca");
        break;
      case AggFunc::kMax:
        add_spec(AggFunc::kMax, p + "_a", p + "_ca");
        break;
      case AggFunc::kAvg:
        add_spec(AggFunc::kSum, p + "_a", p + "_ca");
        add_spec(AggFunc::kSum, p + "_b", p + "_cb");
        break;
      case AggFunc::kVarSamp:
      case AggFunc::kStddevSamp:
        add_spec(AggFunc::kSum, p + "_a", p + "_ca");
        add_spec(AggFunc::kSum, p + "_b", p + "_cb");
        add_spec(AggFunc::kSum, p + "_c", p + "_cc");
        break;
      case AggFunc::kCountDistinct:
        return Status::Internal("COUNT(DISTINCT) must bypass the rule");
    }
  }
  combine->children = {std::move(new_merge)};

  // --- Final __key*/__agg* projection --------------------------------------
  auto proj = MakePlanNode(PlanKind::kProject);
  for (const std::string& name : agg.key_names) {
    proj->exprs.push_back(Col(name));
    proj->names.push_back(name);
  }
  for (size_t j = 0; j < agg.aggs.size(); ++j) {
    const std::string p = "__p" + std::to_string(j);
    ExprPtr value;
    switch (agg.aggs[j].func) {
      case AggFunc::kCountStar:
      case AggFunc::kCount:
        // Sums of partial counts come back as doubles; cast to bigint so
        // the pushdown result matches the direct path's types.
        value = Call("cast_bigint", {Col(p + "_ca")});
        break;
      case AggFunc::kSum:
      case AggFunc::kMin:
      case AggFunc::kMax:
        value = Col(p + "_ca");
        break;
      case AggFunc::kAvg:
        value = Div(Col(p + "_ca"), Col(p + "_cb"));
        break;
      case AggFunc::kVarSamp:
      case AggFunc::kStddevSamp: {
        // (sum_sq - sum^2 / n) / (n - 1)
        ExprPtr n = Col(p + "_cb");
        ExprPtr var = Div(Sub(Col(p + "_cc"),
                              Div(Mul(Col(p + "_ca"), Col(p + "_ca")), n)),
                          Sub(n, LitDouble(1.0)));
        value = agg.aggs[j].func == AggFunc::kStddevSamp ? Call("sqrt", {var})
                                                         : var;
        break;
      }
      case AggFunc::kCountDistinct:
        // The decomposability gate above makes this unreachable; returning
        // instead of falling through guarantees no null expression is ever
        // projected (the latent bug in the old side path).
        return Status::Internal("COUNT(DISTINCT) must bypass the rule");
    }
    proj->exprs.push_back(std::move(value));
    proj->names.push_back("__agg" + std::to_string(j));
  }
  proj->children = {std::move(combine)};
  return proj;
}

Result<PlanPtr> ApplyMergeAggregateRule(PlanPtr node,
                                        const PlanCatalog& catalog,
                                        const OptimizerOptions& options) {
  for (PlanPtr& child : node->children) {
    MIP_ASSIGN_OR_RETURN(child, ApplyMergeAggregateRule(std::move(child),
                                                        catalog, options));
  }
  if (node->kind != PlanKind::kAggregate) return node;
  const PlanNode* where_filter = nullptr;
  const PlanNode* below = node->children[0].get();
  if (below->kind == PlanKind::kFilter) {
    where_filter = below;
    below = below->children[0].get();
  }
  if (below->kind != PlanKind::kMergeUnion) return node;
  if (!SpecsDecompose(node->aggs)) return node;
  return RewriteMergeAggregate(*node, where_filter, *below, catalog, options);
}

// --- Rule 2: predicate pushdown --------------------------------------------

void CollectColumnRefs(const Expr& e, std::vector<std::string>* out) {
  if (e.kind == ExprKind::kColumnRef) {
    for (const std::string& name : *out) {
      if (EqualsIgnoreCase(name, e.column_name)) return;
    }
    out->push_back(e.column_name);
    return;
  }
  for (const auto& a : e.args) CollectColumnRefs(*a, out);
}

/// A predicate may move into a RemoteScan only when the remote node is
/// guaranteed to evaluate it identically AND any bind error the local path
/// would have raised still surfaces (hence the schema check: unknown-column
/// predicates stay local).
bool EligibleRemoteFilter(const Expr& predicate, const PlanNode& scan,
                          const PlanCatalog& catalog,
                          const OptimizerOptions& options) {
  if (!options.has_remote_query_runner) return false;
  if (!scan.sql_override.empty() || scan.remote_filter != nullptr) {
    return false;
  }
  if (!IsRemotelyEvaluable(predicate)) return false;
  Result<Schema> schema = catalog.TableSchema(scan.table_name);
  if (!schema.ok()) return false;
  std::vector<std::string> refs;
  CollectColumnRefs(predicate, &refs);
  for (const std::string& name : refs) {
    if (schema->FieldIndex(name) < 0) return false;
  }
  return true;
}

PlanPtr PushPredicates(PlanPtr node, const PlanCatalog& catalog,
                       const OptimizerOptions& options) {
  if (node->kind == PlanKind::kFilter) {
    PlanPtr child = node->children[0];
    if (child->kind == PlanKind::kMergeUnion) {
      // concat-then-filter == filter-per-part-then-concat, row for row.
      for (PlanPtr& part : child->children) {
        auto filter = MakePlanNode(PlanKind::kFilter);
        filter->predicate = CloneExpr(*node->predicate);
        filter->children = {std::move(part)};
        part = PushPredicates(std::move(filter), catalog, options);
      }
      return child;
    }
    if (child->kind == PlanKind::kRemoteScan &&
        EligibleRemoteFilter(*node->predicate, *child, catalog, options)) {
      child->remote_filter = node->predicate;
      return child;
    }
    if (child->kind == PlanKind::kScan && child->disk &&
        child->prune_filter == nullptr) {
      // Copy (don't move) the predicate down as a zone-map pruning hint.
      // The Filter node stays: pruning only ever skips segments whose zone
      // maps prove no row can pass, so keeping the filter makes the hint
      // advisory — a storage layer that ignores it is still correct.
      child->prune_filter = CloneExpr(*node->predicate);
      // Fall through: the Filter node is returned below, child unchanged
      // in place.
    }
  }
  for (PlanPtr& child : node->children) {
    child = PushPredicates(std::move(child), catalog, options);
  }
  return node;
}

// --- Rule 3: projection pruning --------------------------------------------

/// Whether a scan subtree can honor a pruned column list. MergeUnion parts
/// must all agree (prune everywhere or nowhere) or Concat would see
/// mismatched schemas.
bool CanPruneScan(const PlanNode& node,
                  const std::vector<std::string>& required,
                  const PlanCatalog& catalog,
                  const OptimizerOptions& options) {
  if (required.empty()) return false;
  switch (node.kind) {
    case PlanKind::kScan: {
      if (node.prebound != nullptr) return false;
      Result<Schema> schema = catalog.TableSchema(node.table_name);
      if (!schema.ok()) return false;
      for (const std::string& name : required) {
        // An unknown column must keep the full scan so the bind error (and
        // its message) surfaces exactly as in the unoptimized plan.
        if (schema->FieldIndex(name) < 0) return false;
      }
      return required.size() < schema->num_fields();
    }
    case PlanKind::kRemoteScan: {
      if (!options.has_remote_query_runner) return false;
      if (!node.sql_override.empty()) return false;
      for (const std::string& name : required) {
        if (!IsSqlIdentifier(name)) return false;
      }
      Result<Schema> schema = catalog.TableSchema(node.table_name);
      if (!schema.ok()) return false;
      for (const std::string& name : required) {
        if (schema->FieldIndex(name) < 0) return false;
      }
      return required.size() < schema->num_fields();
    }
    case PlanKind::kMergeUnion: {
      for (const PlanPtr& child : node.children) {
        if (!CanPruneScan(*child, required, catalog, options)) return false;
      }
      return !node.children.empty();
    }
    default:
      return false;
  }
}

void AddRequired(std::vector<std::string>* required, const std::string& name) {
  for (const std::string& existing : *required) {
    if (EqualsIgnoreCase(existing, name)) return;
  }
  required->push_back(name);
}

/// `required` lists the only columns the parent needs, in first-mention
/// order; nullptr means "all columns".
void PruneColumns(PlanNode* node, const std::vector<std::string>* required,
                  const PlanCatalog& catalog,
                  const OptimizerOptions& options) {
  switch (node->kind) {
    case PlanKind::kScan:
    case PlanKind::kIndexScan:
    case PlanKind::kRemoteScan:
      if (required != nullptr &&
          CanPruneScan(*node, *required, catalog, options)) {
        node->columns = *required;
      }
      return;
    case PlanKind::kMergeUnion: {
      const std::vector<std::string>* pass = required;
      if (required != nullptr &&
          !CanPruneScan(*node, *required, catalog, options)) {
        pass = nullptr;
      }
      for (PlanPtr& child : node->children) {
        PruneColumns(child.get(), pass, catalog, options);
      }
      return;
    }
    case PlanKind::kJoin:
      // The "_r" collision renaming makes column provenance ambiguous; no
      // pruning through joins.
      for (PlanPtr& child : node->children) {
        PruneColumns(child.get(), nullptr, catalog, options);
      }
      return;
    case PlanKind::kFilter: {
      if (required == nullptr) {
        PruneColumns(node->children[0].get(), nullptr, catalog, options);
        return;
      }
      std::vector<std::string> merged = *required;
      CollectColumnRefs(*node->predicate, &merged);
      PruneColumns(node->children[0].get(), &merged, catalog, options);
      return;
    }
    case PlanKind::kSort: {
      if (required == nullptr) {
        PruneColumns(node->children[0].get(), nullptr, catalog, options);
        return;
      }
      std::vector<std::string> merged = *required;
      for (const std::string& key : node->sort_keys) {
        AddRequired(&merged, key);
      }
      PruneColumns(node->children[0].get(), &merged, catalog, options);
      return;
    }
    case PlanKind::kProject: {
      std::vector<std::string> refs;
      bool star = false;
      if (!node->exprs.empty()) {
        for (const ExprPtr& e : node->exprs) CollectColumnRefs(*e, &refs);
      } else {
        for (const SelectItem& item : node->items) {
          if (item.star) {
            star = true;
          } else {
            CollectColumnRefs(*item.expr, &refs);
          }
        }
      }
      PruneColumns(node->children[0].get(), star ? nullptr : &refs, catalog,
                   options);
      return;
    }
    case PlanKind::kAggregate: {
      std::vector<std::string> refs;
      for (const ExprPtr& key : node->keys) CollectColumnRefs(*key, &refs);
      for (const AggregateSpec& spec : node->aggs) {
        if (spec.arg != nullptr) CollectColumnRefs(*spec.arg, &refs);
      }
      PruneColumns(node->children[0].get(), &refs, catalog, options);
      return;
    }
    case PlanKind::kDistinct:
    case PlanKind::kLimit:
      PruneColumns(node->children[0].get(), required, catalog, options);
      return;
  }
}

// --- Rule 4: limit pushdown ------------------------------------------------

/// Pushes a row budget below 1:1 stages into scans. Stops at anything that
/// filters, reorders, or regroups rows — limiting their *input* would change
/// the result. The originating Limit node is kept (a pushed scan produces at
/// most, not exactly, the budget).
void AnnotateLimit(PlanNode* node, int64_t limit,
                   const OptimizerOptions& options) {
  switch (node->kind) {
    case PlanKind::kScan:
      node->scan_limit =
          node->scan_limit < 0 ? limit : std::min(node->scan_limit, limit);
      return;
    case PlanKind::kRemoteScan:
      if (!node->sql_override.empty()) return;
      // A scan limit forces the run_sql path, so only lower it when a
      // runner exists.
      if (!options.has_remote_query_runner) return;
      node->scan_limit =
          node->scan_limit < 0 ? limit : std::min(node->scan_limit, limit);
      return;
    case PlanKind::kProject:
      AnnotateLimit(node->children[0].get(), limit, options);
      return;
    case PlanKind::kMergeUnion:
      // Each part needs at most `limit` rows; the outer Limit still trims
      // the concatenation.
      for (PlanPtr& child : node->children) {
        AnnotateLimit(child.get(), limit, options);
      }
      return;
    case PlanKind::kLimit:
      AnnotateLimit(node->children[0].get(), std::min(limit, node->limit),
                    options);
      return;
    default:
      return;
  }
}

void PushLimits(PlanNode* node, const OptimizerOptions& options) {
  if (node->kind == PlanKind::kLimit) {
    AnnotateLimit(node->children[0].get(), node->limit, options);
  }
  for (PlanPtr& child : node->children) {
    PushLimits(child.get(), options);
  }
}

// --- Rule 5: segment-prune annotation --------------------------------------

/// Fills seg_total/seg_pruned on disk scans from the catalog's zone-map
/// preview so EXPLAIN shows the skip decisions the executor will make.
/// Annotation only — never changes what executes. A catalog without
/// attached storage answers NotImplemented and the scan stays unannotated.
void AnnotateSegmentPruning(PlanNode* node, const PlanCatalog& catalog) {
  if (node->kind == PlanKind::kScan && node->disk) {
    Result<ScanStats> preview =
        catalog.DiskPrunePreview(node->table_name, node->prune_filter.get());
    if (preview.ok()) {
      node->seg_total = preview->total;
      node->seg_pruned = preview->pruned;
    }
  }
  for (PlanPtr& child : node->children) {
    AnnotateSegmentPruning(child.get(), catalog);
  }
}

// --- Rule 6: access-path choice (Scan vs IndexScan) ------------------------

/// Asks the catalog whether probing the ordered secondary indexes under the
/// scan's pruning hint would decode strictly fewer segments than zone maps
/// alone; if so, retags the node kIndexScan and records the probe stats for
/// EXPLAIN (`index: probes=N rows=M`). The preview does real (cheap,
/// footer-guided) probes, so the match-fraction estimate is exact at plan
/// time. Results are unaffected either way — an index probe only skips
/// segments it proves empty, and the Filter above re-applies the predicate;
/// only the decode count changes. Scans without a pruning hint stay scans:
/// with nothing to probe for, the index path degenerates to the zone path.
void ChooseAccessPath(PlanNode* node, const PlanCatalog& catalog) {
  if (node->kind == PlanKind::kScan && node->disk &&
      node->prune_filter != nullptr) {
    Result<IndexPreview> preview =
        catalog.DiskIndexPreview(node->table_name, node->prune_filter.get());
    if (preview.ok() && preview->use_index) {
      node->kind = PlanKind::kIndexScan;
      node->idx_probes = preview->probes;
      node->idx_rows = preview->rows;
      node->seg_total = preview->stats.total;
      node->seg_pruned = preview->stats.pruned;
    }
  }
  for (PlanPtr& child : node->children) {
    ChooseAccessPath(child.get(), catalog);
  }
}

}  // namespace

Result<PlanPtr> OptimizePlan(PlanPtr plan, const PlanCatalog& catalog,
                             const OptimizerOptions& options) {
  if (options.merge_aggregate_pushdown) {
    MIP_ASSIGN_OR_RETURN(
        plan, ApplyMergeAggregateRule(std::move(plan), catalog, options));
  }
  if (options.predicate_pushdown) {
    plan = PushPredicates(std::move(plan), catalog, options);
  }
  if (options.projection_pruning) {
    PruneColumns(plan.get(), nullptr, catalog, options);
  }
  if (options.limit_pushdown) {
    PushLimits(plan.get(), options);
  }
  AnnotateSegmentPruning(plan.get(), catalog);
  if (options.index_scan) {
    ChooseAccessPath(plan.get(), catalog);
  }
  return plan;
}

}  // namespace mip::engine
