#include "engine/optimizer.h"

#include <algorithm>
#include <atomic>
#include <functional>

#include "common/string_util.h"
#include "engine/sql_parser.h"

namespace mip::engine {

namespace {

// --- Rule 1: merge-aggregate decomposition ---------------------------------

/// True when every aggregate decomposes into partial aggregates plus a
/// combiner. COUNT(DISTINCT x) does not: distinct counts cannot be summed
/// across parts, so the query bypasses the rule and aggregates the
/// materialized union directly (this is also what makes the old side-path's
/// null-expression hole for kCountDistinct structurally unreachable here).
bool SpecsDecompose(const std::vector<AggregateSpec>& specs) {
  for (const AggregateSpec& spec : specs) {
    if (spec.func == AggFunc::kCountDistinct) return false;
  }
  return true;
}

/// Rewrites Aggregate -> [Filter] -> MergeUnion into
///
///   Project(final __key*/__agg* expressions)
///     Aggregate(combine partials)
///       MergeUnion(per-part partial aggregates)
///
/// where remote parts ship their partial as SQL text (run_sql) and every
/// other part gets a locally planned + optimized partial subplan — which
/// recurses through nested merge tables exactly like the interpreter's
/// recursive ExecuteSql did.
Result<PlanPtr> RewriteMergeAggregate(const PlanNode& agg,
                                      const PlanNode* where_filter,
                                      const PlanNode& merge,
                                      const PlanCatalog& catalog,
                                      const OptimizerOptions& options) {
  // --- Per-part partial SQL ------------------------------------------------
  std::string select = "SELECT ";
  bool first = true;
  auto add = [&select, &first](const std::string& item) {
    if (!first) select += ", ";
    first = false;
    select += item;
  };
  for (size_t i = 0; i < agg.keys.size(); ++i) {
    add(LowerExprToSql(*agg.keys[i]) + " AS " + agg.key_names[i]);
  }
  for (size_t j = 0; j < agg.aggs.size(); ++j) {
    const AggregateSpec& spec = agg.aggs[j];
    const std::string p = "__p" + std::to_string(j);
    const std::string arg =
        spec.arg != nullptr ? LowerExprToSql(*spec.arg) : "";
    switch (spec.func) {
      case AggFunc::kCountStar:
        add("count(*) AS " + p + "_a");
        break;
      case AggFunc::kCount:
        add("count(" + arg + ") AS " + p + "_a");
        break;
      case AggFunc::kSum:
        add("sum(" + arg + ") AS " + p + "_a");
        break;
      case AggFunc::kMin:
        add("min(" + arg + ") AS " + p + "_a");
        break;
      case AggFunc::kMax:
        add("max(" + arg + ") AS " + p + "_a");
        break;
      case AggFunc::kAvg:
        add("sum(" + arg + ") AS " + p + "_a");
        add("count(" + arg + ") AS " + p + "_b");
        break;
      case AggFunc::kVarSamp:
      case AggFunc::kStddevSamp:
        add("sum(" + arg + ") AS " + p + "_a");
        add("count(" + arg + ") AS " + p + "_b");
        add("sum((" + arg + ") * (" + arg + ")) AS " + p + "_c");
        break;
      case AggFunc::kCountDistinct:
        return Status::Internal("COUNT(DISTINCT) must bypass the rule");
    }
  }
  std::string tail;
  if (where_filter != nullptr) {
    tail += " WHERE " + LowerExprToSql(*where_filter->predicate);
  }
  if (!agg.keys.empty()) {
    tail += " GROUP BY ";
    for (size_t i = 0; i < agg.keys.size(); ++i) {
      if (i > 0) tail += ", ";
      tail += LowerExprToSql(*agg.keys[i]);
    }
  }

  auto new_merge = MakePlanNode(PlanKind::kMergeUnion);
  new_merge->table_name = merge.table_name;
  for (const PlanPtr& part : merge.children) {
    if (part->kind == PlanKind::kRemoteScan &&
        options.has_remote_query_runner) {
      // True pushdown: the partial aggregate runs on the remote node.
      auto scan = MakePlanNode(PlanKind::kRemoteScan);
      scan->table_name = part->table_name;
      scan->location = part->location;
      scan->remote_name = part->remote_name;
      scan->sql_override = select + " FROM " + part->remote_name + tail;
      new_merge->children.push_back(std::move(scan));
    } else {
      // Local (or fetch-and-compute) partial: plan and optimize the partial
      // query against this catalog.
      const std::string sql = select + " FROM " + part->table_name + tail;
      MIP_ASSIGN_OR_RETURN(SqlStatement stmt, ParseSql(sql));
      auto* partial_select = std::get_if<SelectStmt>(&stmt);
      if (partial_select == nullptr) {
        return Status::Internal("partial aggregate SQL is not a SELECT");
      }
      MIP_ASSIGN_OR_RETURN(PlanPtr sub, PlanSelect(*partial_select, catalog));
      MIP_ASSIGN_OR_RETURN(sub, OptimizePlan(std::move(sub), catalog,
                                             options));
      new_merge->children.push_back(std::move(sub));
    }
  }

  // --- Combine stage -------------------------------------------------------
  auto combine = MakePlanNode(PlanKind::kAggregate);
  for (const std::string& name : agg.key_names) {
    combine->keys.push_back(Col(name));
  }
  combine->key_names = agg.key_names;
  for (size_t j = 0; j < agg.aggs.size(); ++j) {
    const std::string p = "__p" + std::to_string(j);
    auto add_spec = [&combine](AggFunc func, const std::string& in,
                               const std::string& out) {
      AggregateSpec spec;
      spec.func = func;
      spec.arg = Col(in);
      spec.output_name = out;
      combine->aggs.push_back(std::move(spec));
    };
    switch (agg.aggs[j].func) {
      case AggFunc::kCountStar:
      case AggFunc::kCount:
      case AggFunc::kSum:
        add_spec(AggFunc::kSum, p + "_a", p + "_ca");
        break;
      case AggFunc::kMin:
        add_spec(AggFunc::kMin, p + "_a", p + "_ca");
        break;
      case AggFunc::kMax:
        add_spec(AggFunc::kMax, p + "_a", p + "_ca");
        break;
      case AggFunc::kAvg:
        add_spec(AggFunc::kSum, p + "_a", p + "_ca");
        add_spec(AggFunc::kSum, p + "_b", p + "_cb");
        break;
      case AggFunc::kVarSamp:
      case AggFunc::kStddevSamp:
        add_spec(AggFunc::kSum, p + "_a", p + "_ca");
        add_spec(AggFunc::kSum, p + "_b", p + "_cb");
        add_spec(AggFunc::kSum, p + "_c", p + "_cc");
        break;
      case AggFunc::kCountDistinct:
        return Status::Internal("COUNT(DISTINCT) must bypass the rule");
    }
  }
  combine->children = {std::move(new_merge)};

  // --- Final __key*/__agg* projection --------------------------------------
  auto proj = MakePlanNode(PlanKind::kProject);
  for (const std::string& name : agg.key_names) {
    proj->exprs.push_back(Col(name));
    proj->names.push_back(name);
  }
  for (size_t j = 0; j < agg.aggs.size(); ++j) {
    const std::string p = "__p" + std::to_string(j);
    ExprPtr value;
    switch (agg.aggs[j].func) {
      case AggFunc::kCountStar:
      case AggFunc::kCount:
        // Sums of partial counts come back as doubles; cast to bigint so
        // the pushdown result matches the direct path's types.
        value = Call("cast_bigint", {Col(p + "_ca")});
        break;
      case AggFunc::kSum:
      case AggFunc::kMin:
      case AggFunc::kMax:
        value = Col(p + "_ca");
        break;
      case AggFunc::kAvg:
        value = Div(Col(p + "_ca"), Col(p + "_cb"));
        break;
      case AggFunc::kVarSamp:
      case AggFunc::kStddevSamp: {
        // (sum_sq - sum^2 / n) / (n - 1)
        ExprPtr n = Col(p + "_cb");
        ExprPtr var = Div(Sub(Col(p + "_cc"),
                              Div(Mul(Col(p + "_ca"), Col(p + "_ca")), n)),
                          Sub(n, LitDouble(1.0)));
        value = agg.aggs[j].func == AggFunc::kStddevSamp ? Call("sqrt", {var})
                                                         : var;
        break;
      }
      case AggFunc::kCountDistinct:
        // The decomposability gate above makes this unreachable; returning
        // instead of falling through guarantees no null expression is ever
        // projected (the latent bug in the old side path).
        return Status::Internal("COUNT(DISTINCT) must bypass the rule");
    }
    proj->exprs.push_back(std::move(value));
    proj->names.push_back("__agg" + std::to_string(j));
  }
  proj->children = {std::move(combine)};
  return proj;
}

Result<PlanPtr> ApplyMergeAggregateRule(PlanPtr node,
                                        const PlanCatalog& catalog,
                                        const OptimizerOptions& options) {
  for (PlanPtr& child : node->children) {
    MIP_ASSIGN_OR_RETURN(child, ApplyMergeAggregateRule(std::move(child),
                                                        catalog, options));
  }
  if (node->kind != PlanKind::kAggregate) return node;
  const PlanNode* where_filter = nullptr;
  const PlanNode* below = node->children[0].get();
  if (below->kind == PlanKind::kFilter) {
    where_filter = below;
    below = below->children[0].get();
  }
  if (below->kind != PlanKind::kMergeUnion) return node;
  if (!SpecsDecompose(node->aggs)) return node;
  return RewriteMergeAggregate(*node, where_filter, *below, catalog, options);
}

// --- Rule 2: predicate pushdown --------------------------------------------

void CollectColumnRefs(const Expr& e, std::vector<std::string>* out) {
  if (e.kind == ExprKind::kColumnRef) {
    for (const std::string& name : *out) {
      if (EqualsIgnoreCase(name, e.column_name)) return;
    }
    out->push_back(e.column_name);
    return;
  }
  for (const auto& a : e.args) CollectColumnRefs(*a, out);
}

/// A predicate may move into a RemoteScan only when the remote node is
/// guaranteed to evaluate it identically AND any bind error the local path
/// would have raised still surfaces (hence the schema check: unknown-column
/// predicates stay local).
bool EligibleRemoteFilter(const Expr& predicate, const PlanNode& scan,
                          const PlanCatalog& catalog,
                          const OptimizerOptions& options) {
  if (!options.has_remote_query_runner) return false;
  if (!scan.sql_override.empty() || scan.remote_filter != nullptr) {
    return false;
  }
  if (!IsRemotelyEvaluable(predicate)) return false;
  Result<Schema> schema = catalog.TableSchema(scan.table_name);
  if (!schema.ok()) return false;
  std::vector<std::string> refs;
  CollectColumnRefs(predicate, &refs);
  for (const std::string& name : refs) {
    if (schema->FieldIndex(name) < 0) return false;
  }
  return true;
}

/// Splits `e` on AND into its conjuncts (no clones; callers clone what they
/// keep).
void FlattenConjuncts(const ExprPtr& e, std::vector<ExprPtr>* out) {
  if (e->kind == ExprKind::kBinary && e->binary_op == BinaryOp::kAnd) {
    FlattenConjuncts(e->args[0], out);
    FlattenConjuncts(e->args[1], out);
    return;
  }
  out->push_back(e);
}

bool AllRefsResolve(const Expr& e, const Schema& schema) {
  std::vector<std::string> refs;
  CollectColumnRefs(e, &refs);
  for (const std::string& name : refs) {
    if (schema.FieldIndex(name) < 0) return false;
  }
  return true;
}

bool AnyRefResolves(const Expr& e, const Schema& schema) {
  std::vector<std::string> refs;
  CollectColumnRefs(e, &refs);
  for (const std::string& name : refs) {
    if (schema.FieldIndex(name) >= 0) return true;
  }
  return false;
}

/// Clone of `e` with every column ref named `from` renamed to `to`.
ExprPtr RenameColumnRefs(const Expr& e, const std::string& from,
                         const std::string& to) {
  ExprPtr out = CloneExpr(e);
  std::function<void(Expr*)> walk = [&](Expr* n) {
    if (n->kind == ExprKind::kColumnRef &&
        EqualsIgnoreCase(n->column_name, from)) {
      n->column_name = to;
    }
    for (const ExprPtr& a : n->args) walk(a.get());
  };
  walk(out.get());
  return out;
}

/// Sinks eligible conjuncts of a Filter sitting above a Join into the join's
/// inputs (the Filter itself stays above — every push below must be sound on
/// its own, and keeping the original preserves the full predicate including
/// anything that could not move).
///
///   - A conjunct whose refs all resolve in the left input filters the left
///     side for INNER and LEFT joins alike (rows it drops would have been
///     dropped — or never null-extended differently — above).
///   - INNER only: a conjunct whose refs all resolve in the right input and
///     none in the left (the "_r" collision rename means a ref resolving in
///     the left names the LEFT column after the join) filters the right side.
///   - INNER only, and only when each join key resolves on exactly one side:
///     a conjunct constraining just one join key is mirrored to the other
///     key and distributed like any other conjunct — `a.k = b.k AND a.k = 5`
///     implies `b.k = 5` on every surviving row, so both remote scans get
///     the derived filter instead of shipping one side unfiltered.
///
/// New per-side Filters are returned un-recursed; the caller's recursion
/// sinks them further (into remote_filter, MergeUnion parts, prune hints).
void PushJoinPredicates(const PlanNode& filter, PlanNode* join,
                        const PlanCatalog& catalog) {
  Result<Schema> left_schema = InferPlanSchema(*join->children[0], catalog);
  Result<Schema> right_schema = InferPlanSchema(*join->children[1], catalog);
  if (!left_schema.ok() || !right_schema.ok()) return;
  const bool inner = join->join_type == JoinType::kInner;

  std::vector<ExprPtr> conjuncts;
  FlattenConjuncts(filter.predicate, &conjuncts);

  // Derived key filters need unambiguous key sides: each key name resolving
  // on exactly one input (a key living on both sides would make the
  // executor's ON-side resolution — and therefore the implication — murky).
  std::string left_side_key, right_side_key;
  if (inner) {
    const bool lk_l = left_schema->FieldIndex(join->left_key) >= 0;
    const bool lk_r = right_schema->FieldIndex(join->left_key) >= 0;
    const bool rk_l = left_schema->FieldIndex(join->right_key) >= 0;
    const bool rk_r = right_schema->FieldIndex(join->right_key) >= 0;
    if (lk_l && !lk_r && rk_r && !rk_l) {
      left_side_key = join->left_key;
      right_side_key = join->right_key;
    } else if (lk_r && !lk_l && rk_l && !rk_r) {
      left_side_key = join->right_key;
      right_side_key = join->left_key;
    }
  }
  const size_t original_count = conjuncts.size();
  if (!left_side_key.empty()) {
    for (size_t i = 0; i < original_count; ++i) {
      std::vector<std::string> refs;
      CollectColumnRefs(*conjuncts[i], &refs);
      if (refs.size() != 1) continue;
      if (EqualsIgnoreCase(refs[0], left_side_key)) {
        conjuncts.push_back(
            RenameColumnRefs(*conjuncts[i], left_side_key, right_side_key));
      } else if (EqualsIgnoreCase(refs[0], right_side_key)) {
        conjuncts.push_back(
            RenameColumnRefs(*conjuncts[i], right_side_key, left_side_key));
      }
    }
  }

  std::vector<ExprPtr> to_left;
  std::vector<ExprPtr> to_right;
  for (const ExprPtr& c : conjuncts) {
    if (AllRefsResolve(*c, *left_schema)) {
      to_left.push_back(CloneExpr(*c));
    } else if (inner && AllRefsResolve(*c, *right_schema) &&
               !AnyRefResolves(*c, *left_schema)) {
      to_right.push_back(CloneExpr(*c));
    }
  }
  auto wrap = [&](size_t side, std::vector<ExprPtr>& preds) {
    if (preds.empty()) return;
    ExprPtr combined = preds[0];
    for (size_t i = 1; i < preds.size(); ++i) {
      combined = And(std::move(combined), std::move(preds[i]));
    }
    auto f = MakePlanNode(PlanKind::kFilter);
    f->predicate = std::move(combined);
    f->children = {join->children[side]};
    join->children[side] = std::move(f);
  };
  wrap(0, to_left);
  wrap(1, to_right);
}

PlanPtr PushPredicates(PlanPtr node, const PlanCatalog& catalog,
                       const OptimizerOptions& options) {
  if (node->kind == PlanKind::kFilter) {
    PlanPtr child = node->children[0];
    if (child->kind == PlanKind::kMergeUnion) {
      // concat-then-filter == filter-per-part-then-concat, row for row.
      for (PlanPtr& part : child->children) {
        auto filter = MakePlanNode(PlanKind::kFilter);
        filter->predicate = CloneExpr(*node->predicate);
        filter->children = {std::move(part)};
        part = PushPredicates(std::move(filter), catalog, options);
      }
      return child;
    }
    if (child->kind == PlanKind::kRemoteScan &&
        EligibleRemoteFilter(*node->predicate, *child, catalog, options)) {
      child->remote_filter = node->predicate;
      return child;
    }
    if (child->kind == PlanKind::kJoin) {
      // Sink eligible conjuncts (including join-key-derived ones) into the
      // join inputs; the Filter stays above, and the recursion below pushes
      // the new per-side Filters the rest of the way down.
      PushJoinPredicates(*node, child.get(), catalog);
      // Fall through: the Filter node is returned below.
    }
    if (child->kind == PlanKind::kScan && child->disk &&
        child->prune_filter == nullptr) {
      // Copy (don't move) the predicate down as a zone-map pruning hint.
      // The Filter node stays: pruning only ever skips segments whose zone
      // maps prove no row can pass, so keeping the filter makes the hint
      // advisory — a storage layer that ignores it is still correct.
      child->prune_filter = CloneExpr(*node->predicate);
      // Fall through: the Filter node is returned below, child unchanged
      // in place.
    }
  }
  for (PlanPtr& child : node->children) {
    child = PushPredicates(std::move(child), catalog, options);
  }
  return node;
}

// --- Rule 3: projection pruning --------------------------------------------

/// Whether a scan subtree can honor a pruned column list. MergeUnion parts
/// must all agree (prune everywhere or nowhere) or Concat would see
/// mismatched schemas.
bool CanPruneScan(const PlanNode& node,
                  const std::vector<std::string>& required,
                  const PlanCatalog& catalog,
                  const OptimizerOptions& options) {
  if (required.empty()) return false;
  switch (node.kind) {
    case PlanKind::kScan: {
      if (node.prebound != nullptr) return false;
      Result<Schema> schema = catalog.TableSchema(node.table_name);
      if (!schema.ok()) return false;
      for (const std::string& name : required) {
        // An unknown column must keep the full scan so the bind error (and
        // its message) surfaces exactly as in the unoptimized plan.
        if (schema->FieldIndex(name) < 0) return false;
      }
      return required.size() < schema->num_fields();
    }
    case PlanKind::kRemoteScan: {
      if (!options.has_remote_query_runner) return false;
      if (!node.sql_override.empty()) return false;
      for (const std::string& name : required) {
        if (!IsSqlIdentifier(name)) return false;
      }
      Result<Schema> schema = catalog.TableSchema(node.table_name);
      if (!schema.ok()) return false;
      for (const std::string& name : required) {
        if (schema->FieldIndex(name) < 0) return false;
      }
      return required.size() < schema->num_fields();
    }
    case PlanKind::kMergeUnion: {
      for (const PlanPtr& child : node.children) {
        if (!CanPruneScan(*child, required, catalog, options)) return false;
      }
      return !node.children.empty();
    }
    default:
      return false;
  }
}

void AddRequired(std::vector<std::string>* required, const std::string& name) {
  for (const std::string& existing : *required) {
    if (EqualsIgnoreCase(existing, name)) return;
  }
  required->push_back(name);
}

/// `required` lists the only columns the parent needs, in first-mention
/// order; nullptr means "all columns".
void PruneColumns(PlanNode* node, const std::vector<std::string>* required,
                  const PlanCatalog& catalog,
                  const OptimizerOptions& options) {
  switch (node->kind) {
    case PlanKind::kScan:
    case PlanKind::kIndexScan:
    case PlanKind::kRemoteScan:
      if (required != nullptr &&
          CanPruneScan(*node, *required, catalog, options)) {
        node->columns = *required;
      }
      return;
    case PlanKind::kMergeUnion: {
      const std::vector<std::string>* pass = required;
      if (required != nullptr &&
          !CanPruneScan(*node, *required, catalog, options)) {
        pass = nullptr;
      }
      for (PlanPtr& child : node->children) {
        PruneColumns(child.get(), pass, catalog, options);
      }
      return;
    }
    case PlanKind::kJoin:
      // The "_r" collision renaming makes column provenance ambiguous; no
      // pruning through joins.
      for (PlanPtr& child : node->children) {
        PruneColumns(child.get(), nullptr, catalog, options);
      }
      return;
    case PlanKind::kFilter: {
      if (required == nullptr) {
        PruneColumns(node->children[0].get(), nullptr, catalog, options);
        return;
      }
      std::vector<std::string> merged = *required;
      CollectColumnRefs(*node->predicate, &merged);
      PruneColumns(node->children[0].get(), &merged, catalog, options);
      return;
    }
    case PlanKind::kSort: {
      if (required == nullptr) {
        PruneColumns(node->children[0].get(), nullptr, catalog, options);
        return;
      }
      std::vector<std::string> merged = *required;
      for (const std::string& key : node->sort_keys) {
        AddRequired(&merged, key);
      }
      PruneColumns(node->children[0].get(), &merged, catalog, options);
      return;
    }
    case PlanKind::kProject: {
      std::vector<std::string> refs;
      bool star = false;
      if (!node->exprs.empty()) {
        for (const ExprPtr& e : node->exprs) CollectColumnRefs(*e, &refs);
      } else {
        for (const SelectItem& item : node->items) {
          if (item.star) {
            star = true;
          } else {
            CollectColumnRefs(*item.expr, &refs);
          }
        }
      }
      PruneColumns(node->children[0].get(), star ? nullptr : &refs, catalog,
                   options);
      return;
    }
    case PlanKind::kAggregate: {
      std::vector<std::string> refs;
      for (const ExprPtr& key : node->keys) CollectColumnRefs(*key, &refs);
      for (const AggregateSpec& spec : node->aggs) {
        if (spec.arg != nullptr) CollectColumnRefs(*spec.arg, &refs);
      }
      PruneColumns(node->children[0].get(), &refs, catalog, options);
      return;
    }
    case PlanKind::kDistinct:
    case PlanKind::kLimit:
      PruneColumns(node->children[0].get(), required, catalog, options);
      return;
  }
}

// --- Rule 4: limit pushdown ------------------------------------------------

/// Pushes a row budget below 1:1 stages into scans. Stops at anything that
/// filters, reorders, or regroups rows — limiting their *input* would change
/// the result. The originating Limit node is kept (a pushed scan produces at
/// most, not exactly, the budget).
void AnnotateLimit(PlanNode* node, int64_t limit,
                   const OptimizerOptions& options) {
  switch (node->kind) {
    case PlanKind::kScan:
      node->scan_limit =
          node->scan_limit < 0 ? limit : std::min(node->scan_limit, limit);
      return;
    case PlanKind::kRemoteScan:
      if (!node->sql_override.empty()) return;
      // A scan limit forces the run_sql path, so only lower it when a
      // runner exists.
      if (!options.has_remote_query_runner) return;
      node->scan_limit =
          node->scan_limit < 0 ? limit : std::min(node->scan_limit, limit);
      return;
    case PlanKind::kProject:
      AnnotateLimit(node->children[0].get(), limit, options);
      return;
    case PlanKind::kMergeUnion:
      // Each part needs at most `limit` rows; the outer Limit still trims
      // the concatenation.
      for (PlanPtr& child : node->children) {
        AnnotateLimit(child.get(), limit, options);
      }
      return;
    case PlanKind::kLimit:
      AnnotateLimit(node->children[0].get(), std::min(limit, node->limit),
                    options);
      return;
    default:
      return;
  }
}

void PushLimits(PlanNode* node, const OptimizerOptions& options) {
  if (node->kind == PlanKind::kLimit) {
    AnnotateLimit(node->children[0].get(), node->limit, options);
  }
  for (PlanPtr& child : node->children) {
    PushLimits(child.get(), options);
  }
}

// --- Rule 5: segment-prune annotation --------------------------------------

/// Fills seg_total/seg_pruned on disk scans from the catalog's zone-map
/// preview so EXPLAIN shows the skip decisions the executor will make.
/// Annotation only — never changes what executes. A catalog without
/// attached storage answers NotImplemented and the scan stays unannotated.
void AnnotateSegmentPruning(PlanNode* node, const PlanCatalog& catalog) {
  if (node->kind == PlanKind::kScan && node->disk) {
    Result<ScanStats> preview =
        catalog.DiskPrunePreview(node->table_name, node->prune_filter.get());
    if (preview.ok()) {
      node->seg_total = preview->total;
      node->seg_pruned = preview->pruned;
    }
  }
  for (PlanPtr& child : node->children) {
    AnnotateSegmentPruning(child.get(), catalog);
  }
}

// --- Rule 6: access-path choice (Scan vs IndexScan) ------------------------

/// Asks the catalog whether probing the ordered secondary indexes under the
/// scan's pruning hint would decode strictly fewer segments than zone maps
/// alone; if so, retags the node kIndexScan and records the probe stats for
/// EXPLAIN (`index: probes=N rows=M`). The preview does real (cheap,
/// footer-guided) probes, so the match-fraction estimate is exact at plan
/// time. Results are unaffected either way — an index probe only skips
/// segments it proves empty, and the Filter above re-applies the predicate;
/// only the decode count changes. Scans without a pruning hint stay scans:
/// with nothing to probe for, the index path degenerates to the zone path.
void ChooseAccessPath(PlanNode* node, const PlanCatalog& catalog) {
  if (node->kind == PlanKind::kScan && node->disk &&
      node->prune_filter != nullptr) {
    Result<IndexPreview> preview =
        catalog.DiskIndexPreview(node->table_name, node->prune_filter.get());
    if (preview.ok() && preview->use_index) {
      node->kind = PlanKind::kIndexScan;
      node->idx_probes = preview->probes;
      node->idx_rows = preview->rows;
      node->seg_total = preview->stats.total;
      node->seg_pruned = preview->stats.pruned;
    }
  }
  for (PlanPtr& child : node->children) {
    ChooseAccessPath(child.get(), catalog);
  }
}

// --- Rule 7: join-strategy choice (broadcast vs collect) -------------------

/// Textbook selectivity guesses, refined by column statistics when the stats
/// layer can see the column (equality -> 1/NDV, IS NULL -> null fraction).
/// Estimates feed the physical strategy choice only — never results.
double EstimateSelectivity(const Expr& e, const TableStats* stats) {
  switch (e.kind) {
    case ExprKind::kLiteral:
      if (e.literal.is_null()) return 0.0;
      return e.literal.AsBool() ? 1.0 : 0.0;
    case ExprKind::kUnary:
      switch (e.unary_op) {
        case UnaryOp::kNot:
          return 1.0 - EstimateSelectivity(*e.args[0], stats);
        case UnaryOp::kIsNull:
        case UnaryOp::kIsNotNull: {
          double frac = 0.1;
          if (stats != nullptr && stats->row_count > 0 &&
              e.args[0]->kind == ExprKind::kColumnRef) {
            const ColumnStats* c =
                stats->FindColumn(e.args[0]->column_name);
            if (c != nullptr) {
              frac = static_cast<double>(c->null_count) /
                     static_cast<double>(stats->row_count);
            }
          }
          return e.unary_op == UnaryOp::kIsNull ? frac : 1.0 - frac;
        }
        default:
          return 0.25;
      }
    case ExprKind::kBinary:
      switch (e.binary_op) {
        case BinaryOp::kAnd:
          return EstimateSelectivity(*e.args[0], stats) *
                 EstimateSelectivity(*e.args[1], stats);
        case BinaryOp::kOr:
          return std::min(1.0, EstimateSelectivity(*e.args[0], stats) +
                                   EstimateSelectivity(*e.args[1], stats));
        case BinaryOp::kEq: {
          const Expr* col = nullptr;
          if (e.args[0]->kind == ExprKind::kColumnRef) {
            col = e.args[0].get();
          } else if (e.args[1]->kind == ExprKind::kColumnRef) {
            col = e.args[1].get();
          }
          if (col != nullptr && stats != nullptr) {
            const ColumnStats* c = stats->FindColumn(col->column_name);
            if (c != nullptr && c->ndv > 0) {
              return std::min(1.0, 1.0 / static_cast<double>(c->ndv));
            }
          }
          return 0.1;
        }
        case BinaryOp::kNe:
          return 0.9;
        case BinaryOp::kLt:
        case BinaryOp::kLe:
        case BinaryOp::kGt:
        case BinaryOp::kGe:
          return 1.0 / 3.0;
        default:
          return 0.25;
      }
    default:
      return 0.25;
  }
}

/// Statistics of the base relation feeding a subtree (for NDV / null-count
/// lookups). Follows row-preserving-ish wrappers down to the scans; any
/// other shape is unknown.
Result<TableStats> SubtreeStats(const PlanNode& node,
                                const PlanCatalog& catalog) {
  switch (node.kind) {
    case PlanKind::kScan:
    case PlanKind::kIndexScan:
      if (node.prebound != nullptr) return ComputeTableStats(*node.prebound);
      return catalog.GetTableStats(node.table_name);
    case PlanKind::kRemoteScan:
      if (!node.sql_override.empty()) {
        return Status::NotImplemented("no stats under a SQL override");
      }
      return catalog.GetTableStats(node.table_name);
    case PlanKind::kMergeUnion: {
      std::vector<TableStats> parts;
      for (const PlanPtr& child : node.children) {
        MIP_ASSIGN_OR_RETURN(TableStats s, SubtreeStats(*child, catalog));
        parts.push_back(std::move(s));
      }
      return MergeTableStats(parts);
    }
    case PlanKind::kFilter:
    case PlanKind::kSort:
    case PlanKind::kLimit:
    case PlanKind::kDistinct:
      return SubtreeStats(*node.children[0], catalog);
    default:
      return Status::NotImplemented("no stats for this plan shape");
  }
}

/// Estimated output rows of a subtree, or -1 when the stats layer cannot
/// see enough to say.
double EstimateRows(const PlanNode& node, const PlanCatalog& catalog) {
  switch (node.kind) {
    case PlanKind::kScan:
    case PlanKind::kIndexScan:
    case PlanKind::kRemoteScan: {
      double rows = -1.0;
      if (node.prebound != nullptr) {
        rows = static_cast<double>(node.prebound->num_rows());
      } else if (node.kind == PlanKind::kRemoteScan &&
                 !node.sql_override.empty()) {
        return -1.0;
      } else {
        Result<TableStats> stats = catalog.GetTableStats(node.table_name);
        if (!stats.ok() || stats->row_count < 0) return -1.0;
        rows = static_cast<double>(stats->row_count);
        if (node.remote_filter != nullptr) {
          rows *= EstimateSelectivity(*node.remote_filter, &*stats);
        }
      }
      if (node.scan_limit >= 0) {
        rows = std::min(rows, static_cast<double>(node.scan_limit));
      }
      return rows;
    }
    case PlanKind::kMergeUnion: {
      double total = 0.0;
      for (const PlanPtr& child : node.children) {
        const double rows = EstimateRows(*child, catalog);
        if (rows < 0) return -1.0;
        total += rows;
      }
      return total;
    }
    case PlanKind::kFilter: {
      const double rows = EstimateRows(*node.children[0], catalog);
      if (rows < 0) return -1.0;
      Result<TableStats> stats = SubtreeStats(*node.children[0], catalog);
      return rows * EstimateSelectivity(
                        *node.predicate, stats.ok() ? &*stats : nullptr);
    }
    case PlanKind::kJoin: {
      const double l = EstimateRows(*node.children[0], catalog);
      const double r = EstimateRows(*node.children[1], catalog);
      if (l < 0 || r < 0) return -1.0;
      // Classic equi-join estimate: |L||R| / max(NDV of the key). The key
      // may be named from either input, so probe both stats for both names
      // and keep the largest NDV seen.
      double ndv = -1.0;
      for (int side = 0; side < 2; ++side) {
        Result<TableStats> stats = SubtreeStats(*node.children[side], catalog);
        if (!stats.ok()) continue;
        for (const std::string* key : {&node.left_key, &node.right_key}) {
          const ColumnStats* c = stats->FindColumn(*key);
          if (c != nullptr && c->ndv > 0) {
            ndv = std::max(ndv, static_cast<double>(c->ndv));
          }
        }
      }
      if (ndv >= 1.0) return l * r / ndv;
      return std::max(l, r);
    }
    case PlanKind::kLimit: {
      const double rows = EstimateRows(*node.children[0], catalog);
      const double limit = static_cast<double>(node.limit);
      return rows < 0 ? limit : std::min(rows, limit);
    }
    case PlanKind::kSort:
    case PlanKind::kDistinct:
    case PlanKind::kProject:
      return EstimateRows(*node.children[0], catalog);
    case PlanKind::kAggregate:
      return -1.0;  // group counts are not modeled
  }
  return -1.0;
}

/// Rows a subtree pulls across the wire to the master when it executes
/// there (the collect path). -1 = unknown. Terms common to both strategies
/// (e.g. fetching the build side) appear in both costs, so only the
/// difference ever decides.
double EstimateRemoteRows(const PlanNode& node, const PlanCatalog& catalog) {
  switch (node.kind) {
    case PlanKind::kRemoteScan:
      return EstimateRows(node, catalog);
    case PlanKind::kScan:
    case PlanKind::kIndexScan:
      return 0.0;
    default: {
      double total = 0.0;
      for (const PlanPtr& child : node.children) {
        const double rows = EstimateRemoteRows(*child, catalog);
        if (rows < 0) return -1.0;
        total += rows;
      }
      return total;
    }
  }
}

/// Mirror of the executor's per-part pushability test (ExecBroadcastPart):
/// the join can only be pushed into a bare RemoteScan of a named table.
bool BroadcastPushablePart(const PlanNode& part, const PlanNode& join) {
  return part.kind == PlanKind::kRemoteScan && part.sql_override.empty() &&
         part.columns.empty() && part.scan_limit < 0 &&
         IsSqlIdentifier(part.remote_name) &&
         IsSqlIdentifier(join.left_key) && IsSqlIdentifier(join.right_key);
}

/// Rough wire bytes per row of a subtree's output. The compressed codec is
/// column-major and adaptive, but 8 bytes per field plus framing tracks
/// *relative* sizes well enough to rank two strategies over the same data.
double RowBytes(const PlanNode& node, const PlanCatalog& catalog) {
  Result<Schema> schema = InferPlanSchema(node, catalog);
  if (!schema.ok()) return -1.0;
  return 8.0 * static_cast<double>(schema->num_fields()) + 8.0;
}

/// Picks broadcast vs collect per Join node by modeled wire cost, and
/// annotates the node with the estimates behind the choice (EXPLAIN shows
/// them outside canonical mode). Strategy is physical only: both paths
/// produce byte-identical results, so a wrong estimate costs time, never
/// correctness. With the cost model off (or nothing pushable) every join
/// collects — exactly the pre-cost-model behavior.
void ChooseJoinStrategy(PlanNode* node, const PlanCatalog& catalog,
                        const OptimizerOptions& options) {
  for (PlanPtr& child : node->children) {
    ChooseJoinStrategy(child.get(), catalog, options);
  }
  if (node->kind != PlanKind::kJoin) return;
  if (options.join_counters != nullptr) {
    options.join_counters->joins_planned.fetch_add(1,
                                                   std::memory_order_relaxed);
  }

  JoinStrategy chosen = JoinStrategy::kCollect;
  if (options.cost_model) {
    const PlanNode& left = *node->children[0];
    const PlanNode& right = *node->children[1];
    const double l = EstimateRows(left, catalog);
    const double r = EstimateRows(right, catalog);
    if (l >= 0 && r >= 0) {
      node->est_left_rows = l;
      node->est_right_rows = r;
      node->est_out_rows = EstimateRows(*node, catalog);
    }

    // Broadcast is on the table only when at least one left part can take
    // the pushed join and a bound-table runner exists to ship it.
    int pushable = 0;
    double pushable_rows = 0.0;
    bool parts_known = true;
    auto add_part = [&](const PlanNode& part) {
      if (!BroadcastPushablePart(part, *node)) return;
      const double rows = EstimateRows(part, catalog);
      if (rows < 0) {
        parts_known = false;
        return;
      }
      ++pushable;
      pushable_rows += rows;
    };
    if (options.has_remote_bound_runner) {
      if (left.kind == PlanKind::kMergeUnion) {
        for (const PlanPtr& part : left.children) add_part(*part);
      } else {
        add_part(left);
      }
    }

    if (pushable > 0 && parts_known && l >= 0 && r >= 0 &&
        node->est_out_rows >= 0) {
      const double left_bytes = RowBytes(left, catalog);
      const double right_bytes = RowBytes(right, catalog);
      const double remote_left = EstimateRemoteRows(left, catalog);
      const double remote_right = EstimateRemoteRows(right, catalog);
      if (left_bytes >= 0 && right_bytes >= 0 && remote_left >= 0 &&
          remote_right >= 0) {
        // Wire traffic under each strategy. Collect: both sides cross to
        // the master. Broadcast: the build side crosses once, then ships to
        // every pushable part, joined rows come back, and any unpushable
        // remote part still collects.
        node->cost_collect =
            remote_left * left_bytes + remote_right * right_bytes;
        node->cost_broadcast =
            remote_right * right_bytes +
            r * right_bytes * static_cast<double>(pushable) +
            node->est_out_rows * (left_bytes + right_bytes) +
            (remote_left - pushable_rows) * left_bytes;
        if (node->cost_broadcast < node->cost_collect) {
          chosen = JoinStrategy::kBroadcast;
        }
      }
    }
  }
  if (options.force_join_strategy >= 0) {
    chosen = static_cast<JoinStrategy>(options.force_join_strategy);
  }
  node->strategy = chosen;
  if (options.join_counters != nullptr) {
    auto& counter = chosen == JoinStrategy::kBroadcast
                        ? options.join_counters->broadcast_chosen
                        : options.join_counters->collect_chosen;
    counter.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace

Result<PlanPtr> OptimizePlan(PlanPtr plan, const PlanCatalog& catalog,
                             const OptimizerOptions& options) {
  if (options.merge_aggregate_pushdown) {
    MIP_ASSIGN_OR_RETURN(
        plan, ApplyMergeAggregateRule(std::move(plan), catalog, options));
  }
  if (options.predicate_pushdown) {
    plan = PushPredicates(std::move(plan), catalog, options);
  }
  if (options.projection_pruning) {
    PruneColumns(plan.get(), nullptr, catalog, options);
  }
  if (options.limit_pushdown) {
    PushLimits(plan.get(), options);
  }
  AnnotateSegmentPruning(plan.get(), catalog);
  if (options.index_scan) {
    ChooseAccessPath(plan.get(), catalog);
  }
  // Last: strategy choice reads columns/scan_limit annotations left by the
  // rewrite passes, so it must see the final tree.
  ChooseJoinStrategy(plan.get(), catalog, options);
  return plan;
}

}  // namespace mip::engine
