#ifndef MIP_ENGINE_STORAGE_IFACE_H_
#define MIP_ENGINE_STORAGE_IFACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/stats.h"
#include "engine/table.h"

namespace mip::engine {

struct Expr;

/// \brief Per-scan segment accounting: how many on-disk segments a scan
/// touched vs skipped (zone maps, and on the index path also ordered-index
/// probes that proved a segment empty). `total == scanned + pruned`;
/// memtable rows are not segments and are never counted.
struct ScanStats {
  int64_t total = 0;
  int64_t scanned = 0;
  int64_t pruned = 0;
  /// Index accounting (IndexScan path only): segments probed through an
  /// ordered secondary index, and the total candidate rows those probes
  /// matched. Zero on the plain scan path.
  int64_t index_probes = 0;
  int64_t index_rows = 0;
};

/// \brief The storage layer's answer to "would an IndexScan beat the
/// zone-map scan here?" — computed from real (cheap, footer-guided) index
/// probes, so `rows` is the exact candidate count at preview time, not a
/// guess. The optimizer turns `use_index` into a plan-node choice and
/// copies the numbers into EXPLAIN.
struct IndexPreview {
  bool use_index = false;
  int64_t probes = 0;  ///< segments probed via an index
  int64_t rows = 0;    ///< candidate rows across surviving segments
  /// Segment accounting the index path would produce (pruned counts both
  /// zone-map skips and index-proved-empty skips).
  ScanStats stats;
};

/// \brief Monotonic storage-layer counters for the /metrics surface:
/// lifetime totals since the store opened (in-memory, reset per process).
struct StorageCounters {
  uint64_t segments_scanned = 0;  ///< segments decoded by scans
  uint64_t segments_pruned = 0;   ///< segments skipped (zone map or index)
  uint64_t index_probes = 0;      ///< per-segment ordered-index probes
  uint64_t index_hits = 0;        ///< probes that found candidate rows
  uint64_t flushes = 0;           ///< memtable flushes committed
  uint64_t compactions = 0;       ///< background/explicit compactions
  uint64_t wal_replays = 0;       ///< WAL records replayed at Open
};

/// \brief Abstract view of a disk-resident table store, implemented by
/// storage::StorageEngine and injected into Database (the same
/// dependency-inverting shape as RemoteFetcher: the engine plans and
/// executes against the interface, the storage library depends on the
/// engine — never the reverse).
class TableStorage {
 public:
  virtual ~TableStorage() = default;

  /// Names of every disk-resident table (lower-cased catalog keys).
  virtual std::vector<std::string> StorageTableNames() const = 0;

  virtual Result<Schema> StorageTableSchema(const std::string& name) const = 0;

  /// Materializes a table: committed segments in ingest order, then the
  /// WAL'd memtable rows. `prune_filter` (may be null) is advisory — the
  /// scan may use its conjuncts against per-segment zone maps to skip
  /// segments that provably match no rows, but must never change the
  /// result: the executor keeps the Filter node above the scan, so a scan
  /// that ignores the hint entirely is still correct. Fills `*stats` when
  /// non-null.
  virtual Result<Table> ScanTable(const std::string& name,
                                  const Expr* prune_filter,
                                  ScanStats* stats) const = 0;

  /// Durably appends rows (WAL first, then memtable; flush policy is the
  /// implementation's). Creates the table from the batch schema when it
  /// does not exist yet.
  virtual Status AppendRows(const std::string& name, const Table& rows) = 0;

  /// Zone-map prune accounting for EXPLAIN without reading any data
  /// blocks: exactly the skip decisions ScanTable would make right now.
  virtual Result<ScanStats> PrunePreview(const std::string& name,
                                         const Expr* prune_filter) const = 0;

  /// Like ScanTable, but additionally consults the per-segment ordered
  /// secondary indexes: a segment whose probe proves zero candidate rows is
  /// skipped without being decoded. Same superset contract as zone maps —
  /// the Filter above re-applies the predicate, so results are byte-
  /// identical to ScanTable for any filter. Defaults to the plain scan so
  /// implementations without indexes stay correct.
  virtual Result<Table> IndexScanTable(const std::string& name,
                                       const Expr* prune_filter,
                                       ScanStats* stats) const {
    return ScanTable(name, prune_filter, stats);
  }

  /// Access-path preview for the optimizer: probes the ordered indexes
  /// under `prune_filter` (cheap, footer-guided) and reports whether the
  /// index path would decode strictly fewer segments than the zone-map
  /// path. Defaulted so stores without indexes need not implement it.
  virtual Result<IndexPreview> PreviewIndexScan(const std::string& name,
                                                const Expr* prune_filter) const {
    (void)name;
    (void)prune_filter;
    return Status::NotImplemented("storage has no ordered indexes");
  }

  /// Table statistics for the cost model, assembled from footer metadata
  /// (row counts, zone-map min/max/null counts) without decoding any data
  /// blocks; NDV stays -1 (unknown) since footers carry no sketches.
  /// Defaulted so stores without statistics need not implement it.
  virtual Result<TableStats> StorageTableStats(const std::string& name) const {
    (void)name;
    return Status::NotImplemented("storage has no table statistics");
  }

  /// Lifetime counters for the serving layer's /metrics page.
  virtual StorageCounters Counters() const { return StorageCounters(); }
};

}  // namespace mip::engine

#endif  // MIP_ENGINE_STORAGE_IFACE_H_
