#ifndef MIP_ENGINE_STORAGE_IFACE_H_
#define MIP_ENGINE_STORAGE_IFACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/table.h"

namespace mip::engine {

struct Expr;

/// \brief Per-scan segment accounting: how many on-disk segments a scan
/// touched vs skipped via zone maps. `total == scanned + pruned`; memtable
/// rows are not segments and are never counted.
struct ScanStats {
  int64_t total = 0;
  int64_t scanned = 0;
  int64_t pruned = 0;
};

/// \brief Abstract view of a disk-resident table store, implemented by
/// storage::StorageEngine and injected into Database (the same
/// dependency-inverting shape as RemoteFetcher: the engine plans and
/// executes against the interface, the storage library depends on the
/// engine — never the reverse).
class TableStorage {
 public:
  virtual ~TableStorage() = default;

  /// Names of every disk-resident table (lower-cased catalog keys).
  virtual std::vector<std::string> StorageTableNames() const = 0;

  virtual Result<Schema> StorageTableSchema(const std::string& name) const = 0;

  /// Materializes a table: committed segments in ingest order, then the
  /// WAL'd memtable rows. `prune_filter` (may be null) is advisory — the
  /// scan may use its conjuncts against per-segment zone maps to skip
  /// segments that provably match no rows, but must never change the
  /// result: the executor keeps the Filter node above the scan, so a scan
  /// that ignores the hint entirely is still correct. Fills `*stats` when
  /// non-null.
  virtual Result<Table> ScanTable(const std::string& name,
                                  const Expr* prune_filter,
                                  ScanStats* stats) const = 0;

  /// Durably appends rows (WAL first, then memtable; flush policy is the
  /// implementation's). Creates the table from the batch schema when it
  /// does not exist yet.
  virtual Status AppendRows(const std::string& name, const Table& rows) = 0;

  /// Zone-map prune accounting for EXPLAIN without reading any data
  /// blocks: exactly the skip decisions ScanTable would make right now.
  virtual Result<ScanStats> PrunePreview(const std::string& name,
                                         const Expr* prune_filter) const = 0;
};

}  // namespace mip::engine

#endif  // MIP_ENGINE_STORAGE_IFACE_H_
