#include "engine/bitmap.h"

#include <bit>

namespace mip::engine {

Bitmap::Bitmap(size_t length, bool valid) : length_(length) {
  words_.assign((length + 63) / 64, valid ? ~0ull : 0ull);
  if (valid && length % 64 != 0 && !words_.empty()) {
    // Clear bits past the logical end so CountSet stays exact.
    words_.back() &= (1ull << (length % 64)) - 1;
  }
}

void Bitmap::Append(bool valid) {
  if (length_ % 64 == 0) words_.push_back(0);
  if (valid) words_.back() |= (1ull << (length_ % 64));
  ++length_;
}

size_t Bitmap::CountSet() const {
  size_t n = 0;
  for (uint64_t w : words_) n += static_cast<size_t>(std::popcount(w));
  return n;
}

Bitmap Bitmap::And(const Bitmap& a, const Bitmap& b) {
  Bitmap out(a.length_, true);
  for (size_t i = 0; i < out.words_.size(); ++i) {
    out.words_[i] = a.words_[i] & b.words_[i];
  }
  return out;
}

}  // namespace mip::engine
