#include "engine/operators.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <unordered_map>

#include "engine/vectorized.h"

namespace mip::engine {

namespace {

/// Streaming state for one aggregate output.
struct AggState {
  int64_t count = 0;
  double sum = 0.0;
  double mean = 0.0;
  double m2 = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  Value min_value;  // typed min/max (strings supported)
  Value max_value;
  std::set<std::string> distinct;  // only populated for COUNT(DISTINCT)

  void Add(const Value& v, AggFunc func) {
    if (v.is_null()) return;
    ++count;
    if (func == AggFunc::kCountDistinct) {
      std::string key;
      key.push_back(static_cast<char>(v.kind()));
      key += v.ToString();
      distinct.insert(std::move(key));
      return;
    }
    if (v.kind() == Value::Kind::kString) {
      if (min_value.is_null() ||
          v.string_value() < min_value.string_value()) {
        min_value = v;
      }
      if (max_value.is_null() ||
          v.string_value() > max_value.string_value()) {
        max_value = v;
      }
      return;
    }
    const double x = v.AsDouble();
    sum += x;
    const double delta = x - mean;
    mean += delta / static_cast<double>(count);
    m2 += delta * (x - mean);
    if (x < min) {
      min = x;
      min_value = v;
    }
    if (x > max) {
      max = x;
      max_value = v;
    }
  }

  Value Finish(AggFunc func, int64_t group_rows) const {
    switch (func) {
      case AggFunc::kCountStar:
        return Value::Int(group_rows);
      case AggFunc::kCount:
        return Value::Int(count);
      case AggFunc::kCountDistinct:
        return Value::Int(static_cast<int64_t>(distinct.size()));
      case AggFunc::kSum:
        return count > 0 ? Value::Double(sum) : Value::Null();
      case AggFunc::kAvg:
        return count > 0 ? Value::Double(mean) : Value::Null();
      case AggFunc::kMin:
        return min_value;
      case AggFunc::kMax:
        return max_value;
      case AggFunc::kVarSamp:
        return count > 1
                   ? Value::Double(m2 / static_cast<double>(count - 1))
                   : Value::Null();
      case AggFunc::kStddevSamp:
        return count > 1
                   ? Value::Double(
                         std::sqrt(m2 / static_cast<double>(count - 1)))
                   : Value::Null();
    }
    return Value::Null();
  }
};

DataType AggOutputType(const AggregateSpec& spec) {
  switch (spec.func) {
    case AggFunc::kCountStar:
    case AggFunc::kCount:
    case AggFunc::kCountDistinct:
      return DataType::kInt64;
    case AggFunc::kMin:
    case AggFunc::kMax:
      return spec.arg != nullptr ? spec.arg->result_type
                                 : DataType::kFloat64;
    default:
      return DataType::kFloat64;
  }
}

// Encodes a grouping key tuple into a hashable string with type tags.
std::string EncodeKey(const std::vector<Column>& key_cols, size_t row) {
  std::string key;
  for (const Column& c : key_cols) {
    const Value v = c.ValueAt(row);
    key.push_back(static_cast<char>(v.kind()));
    key += v.ToString();
    key.push_back('\x1f');
  }
  return key;
}

}  // namespace

Result<Table> Filter(const Table& table, const Expr& predicate,
                     const FunctionRegistry* registry) {
  MIP_ASSIGN_OR_RETURN(std::vector<int64_t> sel,
                       EvalPredicate(predicate, table, registry));
  return table.Take(sel);
}

Result<Table> Project(const Table& table, const std::vector<ExprPtr>& exprs,
                      const std::vector<std::string>& names,
                      const FunctionRegistry* registry) {
  if (exprs.size() != names.size()) {
    return Status::InvalidArgument("project exprs/names size mismatch");
  }
  Schema schema;
  std::vector<Column> columns;
  for (size_t i = 0; i < exprs.size(); ++i) {
    MIP_ASSIGN_OR_RETURN(Column col,
                         EvalVectorized(*exprs[i], table, registry));
    MIP_RETURN_NOT_OK(schema.AddField(Field{names[i], col.type()}));
    columns.push_back(std::move(col));
  }
  return Table::Make(std::move(schema), std::move(columns));
}

Result<Table> AggregateAll(const Table& table,
                           const std::vector<AggregateSpec>& aggs,
                           const FunctionRegistry* registry) {
  std::vector<AggState> states(aggs.size());
  std::vector<Column> arg_cols;
  arg_cols.reserve(aggs.size());
  for (const AggregateSpec& a : aggs) {
    if (a.arg != nullptr) {
      MIP_ASSIGN_OR_RETURN(Column c, EvalVectorized(*a.arg, table, registry));
      arg_cols.push_back(std::move(c));
    } else {
      arg_cols.emplace_back(DataType::kFloat64);
    }
  }
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t i = 0; i < aggs.size(); ++i) {
      if (aggs[i].arg != nullptr) {
        states[i].Add(arg_cols[i].ValueAt(r), aggs[i].func);
      }
    }
  }
  Schema schema;
  std::vector<Column> columns;
  for (size_t i = 0; i < aggs.size(); ++i) {
    const DataType type = AggOutputType(aggs[i]);
    MIP_RETURN_NOT_OK(schema.AddField(Field{aggs[i].output_name, type}));
    Column col(type);
    MIP_RETURN_NOT_OK(col.AppendValue(states[i].Finish(
        aggs[i].func, static_cast<int64_t>(table.num_rows()))));
    columns.push_back(std::move(col));
  }
  return Table::Make(std::move(schema), std::move(columns));
}

Result<Table> GroupByAggregate(const Table& table,
                               const std::vector<ExprPtr>& keys,
                               const std::vector<std::string>& key_names,
                               const std::vector<AggregateSpec>& aggs,
                               const FunctionRegistry* registry) {
  if (keys.empty()) return AggregateAll(table, aggs, registry);
  if (keys.size() != key_names.size()) {
    return Status::InvalidArgument("group keys/names size mismatch");
  }

  std::vector<Column> key_cols;
  for (const ExprPtr& k : keys) {
    MIP_ASSIGN_OR_RETURN(Column c, EvalVectorized(*k, table, registry));
    key_cols.push_back(std::move(c));
  }
  std::vector<Column> arg_cols;
  for (const AggregateSpec& a : aggs) {
    if (a.arg != nullptr) {
      MIP_ASSIGN_OR_RETURN(Column c, EvalVectorized(*a.arg, table, registry));
      arg_cols.push_back(std::move(c));
    } else {
      arg_cols.emplace_back(DataType::kFloat64);
    }
  }

  struct Group {
    size_t first_row;
    int64_t rows = 0;
    std::vector<AggState> states;
  };
  std::unordered_map<std::string, size_t> index;
  std::vector<Group> groups;

  for (size_t r = 0; r < table.num_rows(); ++r) {
    const std::string key = EncodeKey(key_cols, r);
    auto [it, inserted] = index.emplace(key, groups.size());
    if (inserted) {
      Group g;
      g.first_row = r;
      g.states.resize(aggs.size());
      groups.push_back(std::move(g));
    }
    Group& g = groups[it->second];
    ++g.rows;
    for (size_t i = 0; i < aggs.size(); ++i) {
      if (aggs[i].arg != nullptr) {
        g.states[i].Add(arg_cols[i].ValueAt(r), aggs[i].func);
      }
    }
  }

  Schema schema;
  std::vector<Column> out_cols;
  for (size_t i = 0; i < keys.size(); ++i) {
    MIP_RETURN_NOT_OK(
        schema.AddField(Field{key_names[i], key_cols[i].type()}));
    Column col(key_cols[i].type());
    for (const Group& g : groups) {
      MIP_RETURN_NOT_OK(col.AppendValue(key_cols[i].ValueAt(g.first_row)));
    }
    out_cols.push_back(std::move(col));
  }
  for (size_t i = 0; i < aggs.size(); ++i) {
    const DataType type = AggOutputType(aggs[i]);
    MIP_RETURN_NOT_OK(schema.AddField(Field{aggs[i].output_name, type}));
    Column col(type);
    for (const Group& g : groups) {
      MIP_RETURN_NOT_OK(
          col.AppendValue(g.states[i].Finish(aggs[i].func, g.rows)));
    }
    out_cols.push_back(std::move(col));
  }
  return Table::Make(std::move(schema), std::move(out_cols));
}

Result<Table> SortBy(const Table& table, const std::vector<std::string>& keys,
                     const std::vector<bool>& ascending) {
  if (keys.size() != ascending.size()) {
    return Status::InvalidArgument("sort keys/direction size mismatch");
  }
  std::vector<const Column*> cols;
  for (const std::string& k : keys) {
    MIP_ASSIGN_OR_RETURN(const Column* c, table.ColumnByName(k));
    cols.push_back(c);
  }
  std::vector<int64_t> idx(table.num_rows());
  for (size_t i = 0; i < idx.size(); ++i) idx[i] = static_cast<int64_t>(i);

  auto compare_rows = [&](int64_t a, int64_t b) {
    for (size_t k = 0; k < cols.size(); ++k) {
      const Column& c = *cols[k];
      const bool av = c.IsValid(static_cast<size_t>(a));
      const bool bv = c.IsValid(static_cast<size_t>(b));
      if (!av && !bv) continue;
      if (!av) return false;  // NULLs last
      if (!bv) return true;
      int cmp = 0;
      if (c.type() == DataType::kString) {
        cmp = c.StringAt(static_cast<size_t>(a))
                  .compare(c.StringAt(static_cast<size_t>(b)));
      } else {
        const double x = c.AsDoubleAt(static_cast<size_t>(a));
        const double y = c.AsDoubleAt(static_cast<size_t>(b));
        cmp = x < y ? -1 : (x > y ? 1 : 0);
      }
      if (cmp != 0) return ascending[k] ? cmp < 0 : cmp > 0;
    }
    return false;
  };
  std::stable_sort(idx.begin(), idx.end(), compare_rows);
  return table.Take(idx);
}

Result<Table> HashJoin(const Table& left, const Table& right,
                       const std::string& left_key,
                       const std::string& right_key, JoinType type) {
  MIP_ASSIGN_OR_RETURN(const Column* lkey, left.ColumnByName(left_key));
  MIP_ASSIGN_OR_RETURN(const Column* rkey, right.ColumnByName(right_key));

  // Build phase over the right input.
  std::unordered_map<std::string, std::vector<int64_t>> build;
  for (size_t r = 0; r < right.num_rows(); ++r) {
    if (!rkey->IsValid(r)) continue;  // NULL keys never match
    const Value v = rkey->ValueAt(r);
    std::string key;
    key.push_back(static_cast<char>(v.kind()));
    key += v.ToString();
    build[key].push_back(static_cast<int64_t>(r));
  }

  std::vector<int64_t> left_idx;
  std::vector<int64_t> right_idx;  // -1 => unmatched (left join)
  for (size_t l = 0; l < left.num_rows(); ++l) {
    bool matched = false;
    if (lkey->IsValid(l)) {
      const Value v = lkey->ValueAt(l);
      std::string key;
      key.push_back(static_cast<char>(v.kind()));
      key += v.ToString();
      auto it = build.find(key);
      if (it != build.end()) {
        for (int64_t r : it->second) {
          left_idx.push_back(static_cast<int64_t>(l));
          right_idx.push_back(r);
        }
        matched = true;
      }
    }
    if (!matched && type == JoinType::kLeft) {
      left_idx.push_back(static_cast<int64_t>(l));
      right_idx.push_back(-1);
    }
  }

  Schema schema;
  std::vector<Column> columns;
  for (size_t c = 0; c < left.num_columns(); ++c) {
    MIP_RETURN_NOT_OK(schema.AddField(left.schema().field(c)));
    columns.push_back(left.column(c).Take(left_idx));
  }
  for (size_t c = 0; c < right.num_columns(); ++c) {
    Field f = right.schema().field(c);
    if (schema.FieldIndex(f.name) >= 0) f.name += "_r";
    MIP_RETURN_NOT_OK(schema.AddField(f));
    Column col(right.column(c).type());
    for (int64_t r : right_idx) {
      if (r < 0) {
        col.AppendNull();
      } else {
        MIP_RETURN_NOT_OK(
            col.AppendValue(right.column(c).ValueAt(static_cast<size_t>(r))));
      }
    }
    columns.push_back(std::move(col));
  }
  return Table::Make(std::move(schema), std::move(columns));
}

Table Limit(const Table& table, size_t limit, size_t offset) {
  return table.Slice(offset, limit);
}

}  // namespace mip::engine
