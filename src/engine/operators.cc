#include "engine/operators.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <set>
#include <unordered_map>

#include "engine/vectorized.h"

namespace mip::engine {

namespace {

/// Streaming state for one aggregate output.
///
/// Aggregation is morsel-parallel: each morsel streams its rows into a
/// private AggState, then the per-morsel partials are merged (Merge) in
/// morsel order. Morsel boundaries depend only on ExecContext::morsel_size,
/// so the merge tree — and therefore every last bit of the result — is
/// identical at any thread count.
struct AggState {
  int64_t count = 0;
  double sum = 0.0;
  double mean = 0.0;
  double m2 = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  Value min_value;  // typed min/max (strings supported)
  Value max_value;
  std::set<std::string> distinct;  // only populated for COUNT(DISTINCT)

  void Add(const Value& v, AggFunc func) {
    if (v.is_null()) return;
    ++count;
    if (func == AggFunc::kCountDistinct) {
      std::string key;
      key.push_back(static_cast<char>(v.kind()));
      key += v.ToString();
      distinct.insert(std::move(key));
      return;
    }
    if (v.kind() == Value::Kind::kString) {
      if (min_value.is_null() ||
          v.string_value() < min_value.string_value()) {
        min_value = v;
      }
      if (max_value.is_null() ||
          v.string_value() > max_value.string_value()) {
        max_value = v;
      }
      return;
    }
    AddNumeric(v.AsDouble(), v);
  }

  /// Unboxed fast paths for the numeric aggregate functions — same updates
  /// as Add() on the equivalent boxed value, minus the Value round-trip.
  void AddDouble(double x) { AddNumericTracked(x, Value::Kind::kDouble, 0); }
  void AddInt(int64_t v) {
    AddNumericTracked(static_cast<double>(v), Value::Kind::kInt, v);
  }

  /// Merges `o` into this state, where `o` accumulated a later row range.
  /// Must be applied in morsel order: min/max ties and the variance combine
  /// assume `this` precedes `o`.
  void Merge(const AggState& o, AggFunc /*func*/) {
    if (o.count == 0) return;
    if (count == 0) {
      *this = o;
      return;
    }
    distinct.insert(o.distinct.begin(), o.distinct.end());
    // String min/max (numeric states keep these in lockstep with min/max).
    if (!o.min_value.is_null() &&
        o.min_value.kind() == Value::Kind::kString) {
      if (min_value.is_null() ||
          o.min_value.string_value() < min_value.string_value()) {
        min_value = o.min_value;
      }
      if (max_value.is_null() ||
          o.max_value.string_value() > max_value.string_value()) {
        max_value = o.max_value;
      }
    } else {
      // Strict comparisons: on ties the earlier morsel wins, matching the
      // serial stream's first-occurrence behavior.
      if (o.min < min) {
        min = o.min;
        min_value = o.min_value;
      }
      if (o.max > max) {
        max = o.max;
        max_value = o.max_value;
      }
    }
    // Chan et al. pairwise combine of (count, mean, m2).
    const double na = static_cast<double>(count);
    const double nb = static_cast<double>(o.count);
    const double nt = na + nb;
    const double delta = o.mean - mean;
    mean += delta * (nb / nt);
    m2 += o.m2 + delta * delta * na * (nb / nt);
    sum += o.sum;
    count += o.count;
  }

  Value Finish(AggFunc func, int64_t group_rows) const {
    switch (func) {
      case AggFunc::kCountStar:
        return Value::Int(group_rows);
      case AggFunc::kCount:
        return Value::Int(count);
      case AggFunc::kCountDistinct:
        return Value::Int(static_cast<int64_t>(distinct.size()));
      case AggFunc::kSum:
        return count > 0 ? Value::Double(sum) : Value::Null();
      case AggFunc::kAvg:
        return count > 0 ? Value::Double(mean) : Value::Null();
      case AggFunc::kMin:
        return min_value;
      case AggFunc::kMax:
        return max_value;
      case AggFunc::kVarSamp:
        return count > 1
                   ? Value::Double(m2 / static_cast<double>(count - 1))
                   : Value::Null();
      case AggFunc::kStddevSamp:
        return count > 1
                   ? Value::Double(
                         std::sqrt(m2 / static_cast<double>(count - 1)))
                   : Value::Null();
    }
    return Value::Null();
  }

 private:
  void AddNumeric(double x, const Value& v) {
    sum += x;
    const double delta = x - mean;
    mean += delta / static_cast<double>(count);
    m2 += delta * (x - mean);
    if (x < min) {
      min = x;
      min_value = v;
    }
    if (x > max) {
      max = x;
      max_value = v;
    }
  }

  void AddNumericTracked(double x, Value::Kind kind, int64_t iv) {
    ++count;
    sum += x;
    const double delta = x - mean;
    mean += delta / static_cast<double>(count);
    m2 += delta * (x - mean);
    if (x < min) {
      min = x;
      min_value = kind == Value::Kind::kInt ? Value::Int(iv)
                                            : Value::Double(x);
    }
    if (x > max) {
      max = x;
      max_value = kind == Value::Kind::kInt ? Value::Int(iv)
                                            : Value::Double(x);
    }
  }
};

/// Streams row `r` of `col` into `state`, taking the unboxed path for
/// numeric columns (the hot aggregate loop) and the boxed path otherwise.
inline void AddRow(const Column& col, size_t r, AggFunc func,
                   AggState* state) {
  if (func != AggFunc::kCountDistinct) {
    if (col.type() == DataType::kFloat64) {
      if (col.IsValid(r)) state->AddDouble(col.doubles()[r]);
      return;
    }
    if (col.type() == DataType::kInt64) {
      if (col.IsValid(r)) state->AddInt(col.ints()[r]);
      return;
    }
  }
  state->Add(col.ValueAt(r), func);
}

DataType AggOutputType(const AggregateSpec& spec) {
  switch (spec.func) {
    case AggFunc::kCountStar:
    case AggFunc::kCount:
    case AggFunc::kCountDistinct:
      return DataType::kInt64;
    case AggFunc::kMin:
    case AggFunc::kMax:
      return spec.arg != nullptr ? spec.arg->result_type
                                 : DataType::kFloat64;
    default:
      return DataType::kFloat64;
  }
}

// Encodes a grouping key tuple into a hashable string with type tags.
std::string EncodeKey(const std::vector<Column>& key_cols, size_t row) {
  std::string key;
  for (const Column& c : key_cols) {
    const Value v = c.ValueAt(row);
    key.push_back(static_cast<char>(v.kind()));
    key += v.ToString();
    key.push_back('\x1f');
  }
  return key;
}

}  // namespace

Result<Table> Filter(const Table& table, const Expr& predicate,
                     const FunctionRegistry* registry,
                     const ExecContext* exec) {
  MIP_ASSIGN_OR_RETURN(std::vector<int64_t> sel,
                       EvalPredicate(predicate, table, registry, exec));
  return table.Take(sel);
}

Result<Table> Project(const Table& table, const std::vector<ExprPtr>& exprs,
                      const std::vector<std::string>& names,
                      const FunctionRegistry* registry,
                      const ExecContext* exec) {
  if (exprs.size() != names.size()) {
    return Status::InvalidArgument("project exprs/names size mismatch");
  }
  Schema schema;
  std::vector<Column> columns;
  for (size_t i = 0; i < exprs.size(); ++i) {
    MIP_ASSIGN_OR_RETURN(Column col,
                         EvalVectorized(*exprs[i], table, registry, exec));
    MIP_RETURN_NOT_OK(schema.AddField(Field{names[i], col.type()}));
    columns.push_back(std::move(col));
  }
  return Table::Make(std::move(schema), std::move(columns));
}

Result<Table> AggregateAll(const Table& table,
                           const std::vector<AggregateSpec>& aggs,
                           const FunctionRegistry* registry,
                           const ExecContext* exec) {
  const ExecContext& ctx = ExecContext::Resolve(exec);
  std::vector<Column> arg_cols;
  arg_cols.reserve(aggs.size());
  for (const AggregateSpec& a : aggs) {
    if (a.arg != nullptr) {
      MIP_ASSIGN_OR_RETURN(Column c,
                           EvalVectorized(*a.arg, table, registry, &ctx));
      arg_cols.push_back(std::move(c));
    } else {
      arg_cols.emplace_back(DataType::kFloat64);
    }
  }
  const size_t n = table.num_rows();
  // Per-morsel partial states, merged in morsel order below.
  std::vector<std::vector<AggState>> partials(
      ctx.NumMorsels(n), std::vector<AggState>(aggs.size()));
  ctx.ForEachMorsel(n, [&](size_t morsel, size_t begin, size_t end) {
    std::vector<AggState>& local = partials[morsel];
    for (size_t r = begin; r < end; ++r) {
      for (size_t i = 0; i < aggs.size(); ++i) {
        if (aggs[i].arg != nullptr) {
          AddRow(arg_cols[i], r, aggs[i].func, &local[i]);
        }
      }
    }
  });
  std::vector<AggState> states(aggs.size());
  for (const std::vector<AggState>& local : partials) {
    for (size_t i = 0; i < aggs.size(); ++i) {
      states[i].Merge(local[i], aggs[i].func);
    }
  }
  Schema schema;
  std::vector<Column> columns;
  for (size_t i = 0; i < aggs.size(); ++i) {
    const DataType type = AggOutputType(aggs[i]);
    MIP_RETURN_NOT_OK(schema.AddField(Field{aggs[i].output_name, type}));
    Column col(type);
    MIP_RETURN_NOT_OK(col.AppendValue(states[i].Finish(
        aggs[i].func, static_cast<int64_t>(table.num_rows()))));
    columns.push_back(std::move(col));
  }
  return Table::Make(std::move(schema), std::move(columns));
}

Result<Table> GroupByAggregate(const Table& table,
                               const std::vector<ExprPtr>& keys,
                               const std::vector<std::string>& key_names,
                               const std::vector<AggregateSpec>& aggs,
                               const FunctionRegistry* registry,
                               const ExecContext* exec) {
  if (keys.empty()) return AggregateAll(table, aggs, registry, exec);
  if (keys.size() != key_names.size()) {
    return Status::InvalidArgument("group keys/names size mismatch");
  }
  const ExecContext& ctx = ExecContext::Resolve(exec);

  std::vector<Column> key_cols;
  for (const ExprPtr& k : keys) {
    MIP_ASSIGN_OR_RETURN(Column c, EvalVectorized(*k, table, registry, &ctx));
    key_cols.push_back(std::move(c));
  }
  std::vector<Column> arg_cols;
  for (const AggregateSpec& a : aggs) {
    if (a.arg != nullptr) {
      MIP_ASSIGN_OR_RETURN(Column c,
                           EvalVectorized(*a.arg, table, registry, &ctx));
      arg_cols.push_back(std::move(c));
    } else {
      arg_cols.emplace_back(DataType::kFloat64);
    }
  }

  struct Group {
    size_t first_row;
    int64_t rows = 0;
    std::vector<AggState> states;
  };
  // Each morsel builds a private hash table; groups keep within-morsel
  // first-seen order.
  struct PartialGroups {
    std::unordered_map<std::string, size_t> index;
    std::vector<std::string> insertion_keys;
    std::vector<Group> groups;
  };
  const size_t n = table.num_rows();
  std::vector<PartialGroups> parts(ctx.NumMorsels(n));
  ctx.ForEachMorsel(n, [&](size_t morsel, size_t begin, size_t end) {
    PartialGroups& part = parts[morsel];
    for (size_t r = begin; r < end; ++r) {
      std::string key = EncodeKey(key_cols, r);
      auto [it, inserted] = part.index.emplace(key, part.groups.size());
      if (inserted) {
        part.insertion_keys.push_back(std::move(key));
        Group g;
        g.first_row = r;
        g.states.resize(aggs.size());
        part.groups.push_back(std::move(g));
      }
      Group& g = part.groups[it->second];
      ++g.rows;
      for (size_t i = 0; i < aggs.size(); ++i) {
        if (aggs[i].arg != nullptr) {
          AddRow(arg_cols[i], r, aggs[i].func, &g.states[i]);
        }
      }
    }
  });

  // Merge partial tables in morsel order. A key's first insertion comes from
  // the lowest morsel containing it, and morsels scan disjoint ascending row
  // ranges, so the resulting group order (and first_row) equals the serial
  // whole-table scan's first-seen order.
  std::unordered_map<std::string, size_t> index;
  std::vector<Group> groups;
  for (PartialGroups& part : parts) {
    for (size_t gi = 0; gi < part.groups.size(); ++gi) {
      auto [it, inserted] =
          index.emplace(std::move(part.insertion_keys[gi]), groups.size());
      if (inserted) {
        groups.push_back(std::move(part.groups[gi]));
        continue;
      }
      Group& g = groups[it->second];
      const Group& pg = part.groups[gi];
      g.rows += pg.rows;
      for (size_t i = 0; i < aggs.size(); ++i) {
        g.states[i].Merge(pg.states[i], aggs[i].func);
      }
    }
  }

  Schema schema;
  std::vector<Column> out_cols;
  for (size_t i = 0; i < keys.size(); ++i) {
    MIP_RETURN_NOT_OK(
        schema.AddField(Field{key_names[i], key_cols[i].type()}));
    Column col(key_cols[i].type());
    for (const Group& g : groups) {
      MIP_RETURN_NOT_OK(col.AppendValue(key_cols[i].ValueAt(g.first_row)));
    }
    out_cols.push_back(std::move(col));
  }
  for (size_t i = 0; i < aggs.size(); ++i) {
    const DataType type = AggOutputType(aggs[i]);
    MIP_RETURN_NOT_OK(schema.AddField(Field{aggs[i].output_name, type}));
    Column col(type);
    for (const Group& g : groups) {
      MIP_RETURN_NOT_OK(
          col.AppendValue(g.states[i].Finish(aggs[i].func, g.rows)));
    }
    out_cols.push_back(std::move(col));
  }
  return Table::Make(std::move(schema), std::move(out_cols));
}

Result<Table> SortBy(const Table& table, const std::vector<std::string>& keys,
                     const std::vector<bool>& ascending) {
  if (keys.size() != ascending.size()) {
    return Status::InvalidArgument("sort keys/direction size mismatch");
  }
  std::vector<const Column*> cols;
  for (const std::string& k : keys) {
    MIP_ASSIGN_OR_RETURN(const Column* c, table.ColumnByName(k));
    cols.push_back(c);
  }
  std::vector<int64_t> idx(table.num_rows());
  for (size_t i = 0; i < idx.size(); ++i) idx[i] = static_cast<int64_t>(i);

  auto compare_rows = [&](int64_t a, int64_t b) {
    for (size_t k = 0; k < cols.size(); ++k) {
      const Column& c = *cols[k];
      const bool av = c.IsValid(static_cast<size_t>(a));
      const bool bv = c.IsValid(static_cast<size_t>(b));
      if (!av && !bv) continue;
      if (!av) return false;  // NULLs last
      if (!bv) return true;
      int cmp = 0;
      if (c.type() == DataType::kString) {
        cmp = c.StringAt(static_cast<size_t>(a))
                  .compare(c.StringAt(static_cast<size_t>(b)));
      } else {
        const double x = c.AsDoubleAt(static_cast<size_t>(a));
        const double y = c.AsDoubleAt(static_cast<size_t>(b));
        cmp = x < y ? -1 : (x > y ? 1 : 0);
      }
      if (cmp != 0) return ascending[k] ? cmp < 0 : cmp > 0;
    }
    return false;
  };
  std::stable_sort(idx.begin(), idx.end(), compare_rows);
  return table.Take(idx);
}

namespace {

/// Typed gather with -1 => NULL (the left-join null-extension path; plain
/// Column::Take cannot express a missing row).
Column TakeWithNulls(const Column& col, const std::vector<int64_t>& idx) {
  Column out(col.type());
  out.Reserve(idx.size());
  for (int64_t i : idx) {
    if (i < 0 || !col.IsValid(static_cast<size_t>(i))) {
      out.AppendNull();
      continue;
    }
    const size_t r = static_cast<size_t>(i);
    switch (col.type()) {
      case DataType::kBool:
        out.AppendBool(col.BoolAt(r));
        break;
      case DataType::kInt64:
        out.AppendInt(col.IntAt(r));
        break;
      case DataType::kFloat64:
        out.AppendDouble(col.DoubleAt(r));
        break;
      case DataType::kString:
        out.AppendString(col.StringAt(r));
        break;
    }
  }
  return out;
}

/// Normalized numeric key bits: -0.0 folds into +0.0 so values the
/// comparison kernels call equal hash equal. Callers exclude NaN first.
uint64_t NumericKeyBits(double v) {
  if (v == 0.0) v = 0.0;
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

}  // namespace

Result<Table> HashJoin(const Table& left, const Table& right,
                       const std::string& left_key,
                       const std::string& right_key, JoinType type,
                       const ExecContext* exec) {
  MIP_ASSIGN_OR_RETURN(const Column* lkey, left.ColumnByName(left_key));
  MIP_ASSIGN_OR_RETURN(const Column* rkey, right.ColumnByName(right_key));
  const ExecContext& ctx = ExecContext::Resolve(exec);

  // Key semantics mirror the engine's comparison kernels: NULL keys never
  // match; two string keys compare as strings; numeric keys (bool/int/
  // double) compare through the double view, so 5 joins 5.0; a NaN key —
  // including every cell of a string column probed against a numeric one —
  // matches nothing. Build runs serially over the right side in row order,
  // so per-key match lists carry build-insertion order.
  const bool string_keys =
      lkey->type() == DataType::kString && rkey->type() == DataType::kString;
  const bool numeric_keys =
      lkey->type() != DataType::kString && rkey->type() != DataType::kString;
  std::unordered_map<std::string, std::vector<int64_t>> string_build;
  std::unordered_map<uint64_t, std::vector<int64_t>> numeric_build;
  if (string_keys) {
    string_build.reserve(right.num_rows());
    for (size_t r = 0; r < right.num_rows(); ++r) {
      if (!rkey->IsValid(r)) continue;
      string_build[rkey->StringAt(r)].push_back(static_cast<int64_t>(r));
    }
  } else if (numeric_keys) {
    numeric_build.reserve(right.num_rows());
    for (size_t r = 0; r < right.num_rows(); ++r) {
      if (!rkey->IsValid(r)) continue;
      const double v = rkey->AsDoubleAt(r);
      if (std::isnan(v)) continue;
      numeric_build[NumericKeyBits(v)].push_back(static_cast<int64_t>(r));
    }
  }
  // Mixed string/numeric keys build nothing: no probe can match.

  // Probe phase: morsel-parallel over the left side into per-morsel index
  // pairs, concatenated in morsel order — byte-identical to the serial
  // probe at any thread count (the determinism contract every vectorized
  // operator in this engine keeps).
  const size_t n = left.num_rows();
  const size_t num_morsels = ctx.NumMorsels(n);
  std::vector<std::vector<int64_t>> l_parts(num_morsels);
  std::vector<std::vector<int64_t>> r_parts(num_morsels);
  ctx.ForEachMorsel(n, [&](size_t morsel, size_t begin, size_t end) {
    std::vector<int64_t>& li = l_parts[morsel];
    std::vector<int64_t>& ri = r_parts[morsel];
    for (size_t l = begin; l < end; ++l) {
      const std::vector<int64_t>* matches = nullptr;
      if (lkey->IsValid(l)) {
        if (string_keys) {
          auto it = string_build.find(lkey->StringAt(l));
          if (it != string_build.end()) matches = &it->second;
        } else if (numeric_keys) {
          const double v = lkey->AsDoubleAt(l);
          if (!std::isnan(v)) {
            auto it = numeric_build.find(NumericKeyBits(v));
            if (it != numeric_build.end()) matches = &it->second;
          }
        }
      }
      if (matches != nullptr) {
        for (int64_t r : *matches) {
          li.push_back(static_cast<int64_t>(l));
          ri.push_back(r);
        }
      } else if (type == JoinType::kLeft) {
        li.push_back(static_cast<int64_t>(l));
        ri.push_back(-1);  // null-extended
      }
    }
  });
  size_t total = 0;
  for (const auto& part : l_parts) total += part.size();
  std::vector<int64_t> left_idx;
  std::vector<int64_t> right_idx;
  left_idx.reserve(total);
  right_idx.reserve(total);
  for (size_t m = 0; m < num_morsels; ++m) {
    left_idx.insert(left_idx.end(), l_parts[m].begin(), l_parts[m].end());
    right_idx.insert(right_idx.end(), r_parts[m].begin(), r_parts[m].end());
  }

  Schema schema;
  std::vector<Column> columns;
  for (size_t c = 0; c < left.num_columns(); ++c) {
    MIP_RETURN_NOT_OK(schema.AddField(left.schema().field(c)));
    columns.push_back(left.column(c).Take(left_idx));
  }
  for (size_t c = 0; c < right.num_columns(); ++c) {
    Field f = right.schema().field(c);
    if (schema.FieldIndex(f.name) >= 0) f.name += "_r";
    MIP_RETURN_NOT_OK(schema.AddField(f));
    columns.push_back(TakeWithNulls(right.column(c), right_idx));
  }
  return Table::Make(std::move(schema), std::move(columns));
}

Table Limit(const Table& table, size_t limit, size_t offset) {
  return table.Slice(offset, limit);
}

}  // namespace mip::engine
