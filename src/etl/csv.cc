#include "etl/csv.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

namespace mip::etl {

namespace {

// Splits one CSV record honoring quotes; returns false on unterminated
// quote.
bool SplitRecord(const std::string& line, char delim,
                 std::vector<std::string>* out) {
  out->clear();
  std::string cell;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cell.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cell.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == delim) {
      out->push_back(cell);
      cell.clear();
    } else if (c == '\r') {
      // ignore
    } else {
      cell.push_back(c);
    }
  }
  out->push_back(cell);
  return !in_quotes;
}

bool IsNullToken(const std::string& cell, const CsvOptions& options) {
  for (const std::string& t : options.null_tokens) {
    if (cell == t) return true;
  }
  return false;
}

bool LooksLikeInt(const std::string& s) {
  if (s.empty()) return false;
  size_t i = (s[0] == '-' || s[0] == '+') ? 1 : 0;
  if (i == s.size()) return false;
  for (; i < s.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(s[i]))) return false;
  }
  return true;
}

bool LooksLikeDouble(const std::string& s) {
  if (s.empty()) return false;
  char* end = nullptr;
  std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size();
}

}  // namespace

Result<engine::Table> ReadCsvString(const std::string& text,
                                    const CsvOptions& options) {
  std::vector<std::vector<std::string>> records;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::vector<std::string> cells;
    if (!SplitRecord(line, options.delimiter, &cells)) {
      return Status::ParseError("unterminated quote in CSV record");
    }
    records.push_back(std::move(cells));
  }
  if (records.empty()) return Status::ParseError("empty CSV input");

  std::vector<std::string> names;
  size_t first_data = 0;
  if (options.header) {
    names = records[0];
    first_data = 1;
  } else {
    for (size_t i = 0; i < records[0].size(); ++i) {
      names.push_back("col" + std::to_string(i));
    }
  }
  const size_t width = names.size();
  for (size_t r = first_data; r < records.size(); ++r) {
    if (records[r].size() != width) {
      return Status::ParseError("CSV row " + std::to_string(r) + " has " +
                                std::to_string(records[r].size()) +
                                " cells, expected " + std::to_string(width));
    }
  }

  // Type inference per column.
  std::vector<engine::DataType> types(width, engine::DataType::kString);
  if (options.infer_types) {
    for (size_t c = 0; c < width; ++c) {
      bool all_int = true;
      bool all_double = true;
      bool any_value = false;
      for (size_t r = first_data; r < records.size(); ++r) {
        const std::string& cell = records[r][c];
        if (IsNullToken(cell, options)) continue;
        any_value = true;
        if (!LooksLikeInt(cell)) all_int = false;
        if (!LooksLikeDouble(cell)) all_double = false;
      }
      if (any_value && all_int) {
        types[c] = engine::DataType::kInt64;
      } else if (any_value && all_double) {
        types[c] = engine::DataType::kFloat64;
      }
    }
  }

  engine::Schema schema;
  for (size_t c = 0; c < width; ++c) {
    MIP_RETURN_NOT_OK(schema.AddField(engine::Field{names[c], types[c]}));
  }
  engine::Table table = engine::Table::Empty(std::move(schema));
  for (size_t r = first_data; r < records.size(); ++r) {
    std::vector<engine::Value> row;
    row.reserve(width);
    for (size_t c = 0; c < width; ++c) {
      const std::string& cell = records[r][c];
      if (IsNullToken(cell, options)) {
        row.push_back(engine::Value::Null());
        continue;
      }
      switch (types[c]) {
        case engine::DataType::kInt64:
          row.push_back(
              engine::Value::Int(std::strtoll(cell.c_str(), nullptr, 10)));
          break;
        case engine::DataType::kFloat64:
          row.push_back(
              engine::Value::Double(std::strtod(cell.c_str(), nullptr)));
          break;
        default:
          row.push_back(engine::Value::String(cell));
          break;
      }
    }
    MIP_RETURN_NOT_OK(table.AppendRow(row));
  }
  return table;
}

Result<engine::Table> ReadCsvFile(const std::string& path,
                                  const CsvOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return ReadCsvString(buf.str(), options);
}

std::string WriteCsvString(const engine::Table& table, char delimiter) {
  std::ostringstream os;
  for (size_t c = 0; c < table.num_columns(); ++c) {
    if (c > 0) os << delimiter;
    os << table.schema().field(c).name;
  }
  os << "\n";
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (c > 0) os << delimiter;
      const engine::Value v = table.At(r, c);
      if (v.is_null()) continue;
      std::string s = v.ToString();
      if (s.find(delimiter) != std::string::npos ||
          s.find('"') != std::string::npos) {
        std::string quoted = "\"";
        for (char ch : s) {
          if (ch == '"') quoted += "\"\"";
          else quoted.push_back(ch);
        }
        quoted += "\"";
        s = quoted;
      }
      os << s;
    }
    os << "\n";
  }
  return os.str();
}

Status WriteCsvFile(const engine::Table& table, const std::string& path,
                    char delimiter) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  out << WriteCsvString(table, delimiter);
  return Status::OK();
}

}  // namespace mip::etl
