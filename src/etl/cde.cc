#include "etl/cde.h"

#include <cmath>
#include <sstream>

#include "common/string_util.h"

namespace mip::etl {

Status CdeCatalog::AddVariable(CdeVariable variable) {
  for (const CdeVariable& v : variables_) {
    if (EqualsIgnoreCase(v.name, variable.name)) {
      return Status::AlreadyExists("CDE '" + variable.name +
                                   "' already defined");
    }
  }
  variables_.push_back(std::move(variable));
  return Status::OK();
}

Result<const CdeVariable*> CdeCatalog::GetVariable(
    const std::string& name) const {
  for (const CdeVariable& v : variables_) {
    if (EqualsIgnoreCase(v.name, name)) return &v;
  }
  return Status::NotFound("no CDE named '" + name + "'");
}

const CdeVariable* CdeCatalog::Resolve(const std::string& source_name) const {
  for (const CdeVariable& v : variables_) {
    if (EqualsIgnoreCase(v.name, source_name)) return &v;
    for (const std::string& alias : v.aliases) {
      if (EqualsIgnoreCase(alias, source_name)) return &v;
    }
  }
  return nullptr;
}

CdeCatalog DementiaCatalog() {
  CdeCatalog catalog("dementia");
  auto add = [&catalog](const std::string& name, const std::string& label,
                        engine::DataType type, bool required, double min_v,
                        double max_v, std::vector<std::string> enumeration,
                        std::vector<std::string> aliases) {
    CdeVariable v;
    v.name = name;
    v.label = label;
    v.type = type;
    v.required = required;
    v.min_value = min_v;
    v.max_value = max_v;
    v.enumeration = std::move(enumeration);
    v.aliases = std::move(aliases);
    (void)catalog.AddVariable(std::move(v));
  };

  add("subject_id", "Pseudonymized subject identifier",
      engine::DataType::kString, true, 0, 0, {}, {"id", "patient_id"});
  add("diagnosis", "Clinical diagnosis", engine::DataType::kString, true, 0,
      0, {"CN", "MCI", "AD", "Other"}, {"dx", "alzheimerbroadcategory"});
  add("age", "Age at visit (years)", engine::DataType::kFloat64, false, 18,
      110, {}, {"subjectage", "age_value"});
  add("sex", "Biological sex", engine::DataType::kString, false, 0, 0,
      {"M", "F"}, {"gender"});
  add("mmse", "Mini Mental State Examination total",
      engine::DataType::kFloat64, false, 0, 30, {}, {"minimentalstate"});
  add("left_hippocampus", "Left hippocampus volume (cm3)",
      engine::DataType::kFloat64, false, 0.5, 8, {}, {"lefthippocampus"});
  add("right_hippocampus", "Right hippocampus volume (cm3)",
      engine::DataType::kFloat64, false, 0.5, 8, {}, {"righthippocampus"});
  add("left_entorhinal_area", "Left entorhinal area volume (cm3)",
      engine::DataType::kFloat64, false, 0.2, 5, {},
      {"leftententorhinalarea"});
  add("lateral_ventricles", "Lateral ventricles volume (cm3)",
      engine::DataType::kFloat64, false, 2, 200, {},
      {"rightinflatvent", "lateralventricles"});
  add("abeta42", "CSF amyloid beta 1-42 (pg/ml)",
      engine::DataType::kFloat64, false, 50, 2500, {},
      {"ab42", "csf_abeta42"});
  add("p_tau", "CSF phosphorylated tau (pg/ml)", engine::DataType::kFloat64,
      false, 3, 400, {}, {"ptau", "csf_ptau"});
  return catalog;
}

CdeCatalog EpilepsyCatalog() {
  CdeCatalog catalog("epilepsy");
  auto add = [&catalog](const std::string& name, const std::string& label,
                        engine::DataType type, bool required, double min_v,
                        double max_v, std::vector<std::string> enumeration,
                        std::vector<std::string> aliases) {
    CdeVariable v;
    v.name = name;
    v.label = label;
    v.type = type;
    v.required = required;
    v.min_value = min_v;
    v.max_value = max_v;
    v.enumeration = std::move(enumeration);
    v.aliases = std::move(aliases);
    (void)catalog.AddVariable(std::move(v));
  };
  add("subject_id", "Pseudonymized subject identifier",
      engine::DataType::kString, true, 0, 0, {}, {"id"});
  add("age", "Age at evaluation (years)", engine::DataType::kFloat64, false,
      1, 100, {}, {});
  add("age_at_onset", "Age at first seizure (years)",
      engine::DataType::kFloat64, false, 0, 100, {}, {"onset_age"});
  add("seizure_frequency", "Seizures per month",
      engine::DataType::kFloat64, false, 0, 3000, {}, {"sz_freq"});
  add("ieeg_spike_rate", "Intracerebral EEG spikes per minute",
      engine::DataType::kFloat64, false, 0, 1000, {}, {"spike_rate"});
  add("ieeg_hfo_rate", "High-frequency oscillations per minute (iEEG)",
      engine::DataType::kFloat64, false, 0, 500, {}, {"hfo_rate"});
  add("mri_lesional", "Lesion visible on MRI", engine::DataType::kString,
      false, 0, 0, {"yes", "no"}, {"lesional"});
  add("engel_class", "Engel surgical outcome class",
      engine::DataType::kString, false, 0, 0, {"I", "II", "III", "IV"},
      {"engel"});
  return catalog;
}

CdeCatalog TbiCatalog() {
  CdeCatalog catalog("traumatic_brain_injury");
  auto add = [&catalog](const std::string& name, const std::string& label,
                        engine::DataType type, bool required, double min_v,
                        double max_v, std::vector<std::string> enumeration,
                        std::vector<std::string> aliases) {
    CdeVariable v;
    v.name = name;
    v.label = label;
    v.type = type;
    v.required = required;
    v.min_value = min_v;
    v.max_value = max_v;
    v.enumeration = std::move(enumeration);
    v.aliases = std::move(aliases);
    (void)catalog.AddVariable(std::move(v));
  };
  add("subject_id", "Pseudonymized subject identifier",
      engine::DataType::kString, true, 0, 0, {}, {"id"});
  add("age", "Age at injury (years)", engine::DataType::kFloat64, false, 0,
      110, {}, {});
  add("gcs_total", "Glasgow Coma Scale total (3-15)",
      engine::DataType::kFloat64, false, 3, 15, {}, {"gcs"});
  add("pupils", "Pupillary reactivity", engine::DataType::kString, false, 0,
      0, {"both", "one", "none"}, {"pupil_react"});
  add("predicted_mortality", "Model-predicted 6-month mortality",
      engine::DataType::kFloat64, false, 0, 1, {}, {"pred_mort"});
  add("mortality_6m", "Observed 6-month mortality (0/1)",
      engine::DataType::kFloat64, false, 0, 1, {}, {"died"});
  return catalog;
}

Result<engine::Table> Harmonize(const engine::Table& source,
                                const CdeCatalog& catalog,
                                HarmonizationReport* report) {
  HarmonizationReport local_report;
  HarmonizationReport* rep = report != nullptr ? report : &local_report;
  *rep = HarmonizationReport();
  rep->rows_in = static_cast<int64_t>(source.num_rows());

  // Map source columns to CDEs, preserving catalog order in the output.
  struct Mapping {
    const CdeVariable* cde;
    size_t source_col;
  };
  std::vector<Mapping> mappings;
  std::vector<bool> cde_used(catalog.variables().size(), false);
  for (size_t c = 0; c < source.num_columns(); ++c) {
    const std::string& name = source.schema().field(c).name;
    const CdeVariable* cde = catalog.Resolve(name);
    if (cde == nullptr) {
      rep->unmapped_columns.push_back(name);
      continue;
    }
    mappings.push_back({cde, c});
  }
  // Order mappings by catalog position.
  std::vector<Mapping> ordered;
  for (const CdeVariable& v : catalog.variables()) {
    for (const Mapping& m : mappings) {
      if (m.cde == &v) {
        ordered.push_back(m);
        break;
      }
    }
  }

  engine::Schema schema;
  for (const Mapping& m : ordered) {
    MIP_RETURN_NOT_OK(
        schema.AddField(engine::Field{m.cde->name, m.cde->type}));
  }
  engine::Table out = engine::Table::Empty(std::move(schema));

  for (size_t r = 0; r < source.num_rows(); ++r) {
    std::vector<engine::Value> row;
    row.reserve(ordered.size());
    bool drop = false;
    for (const Mapping& m : ordered) {
      engine::Value v = source.At(r, m.source_col);
      // Type coercion.
      if (!v.is_null()) {
        if (m.cde->type == engine::DataType::kFloat64 ||
            m.cde->type == engine::DataType::kInt64) {
          if (v.kind() == engine::Value::Kind::kString) {
            char* end = nullptr;
            const double parsed = std::strtod(v.string_value().c_str(), &end);
            if (end == v.string_value().c_str() + v.string_value().size() &&
                !v.string_value().empty()) {
              v = engine::Value::Double(parsed);
            } else {
              v = engine::Value::Null();
              ++rep->cells_nulled_bad_enum;
            }
          }
          if (!v.is_null() && m.cde->min_value != m.cde->max_value) {
            const double x = v.AsDouble();
            if (x < m.cde->min_value || x > m.cde->max_value) {
              v = engine::Value::Null();
              ++rep->cells_nulled_out_of_range;
            }
          }
          if (!v.is_null() && m.cde->type == engine::DataType::kInt64) {
            v = engine::Value::Int(v.AsInt());
          }
        } else if (m.cde->type == engine::DataType::kString) {
          if (v.kind() != engine::Value::Kind::kString) {
            v = engine::Value::String(v.ToString());
          }
          if (!m.cde->enumeration.empty()) {
            bool ok = false;
            for (const std::string& e : m.cde->enumeration) {
              if (EqualsIgnoreCase(e, v.string_value())) {
                v = engine::Value::String(e);  // canonical casing
                ok = true;
                break;
              }
            }
            if (!ok) {
              v = engine::Value::Null();
              ++rep->cells_nulled_bad_enum;
            }
          }
        }
      }
      if (v.is_null() && m.cde->required) {
        drop = true;
        break;
      }
      row.push_back(std::move(v));
    }
    if (drop) {
      ++rep->rows_dropped_missing_required;
      continue;
    }
    MIP_RETURN_NOT_OK(out.AppendRow(row));
  }
  rep->rows_out = static_cast<int64_t>(out.num_rows());
  return out;
}

std::string HarmonizationReport::ToString() const {
  std::ostringstream os;
  os << "Harmonization: " << rows_in << " rows in, " << rows_out
     << " rows out, " << rows_dropped_missing_required
     << " dropped (missing required), " << cells_nulled_out_of_range
     << " cells nulled (range), " << cells_nulled_bad_enum
     << " cells nulled (enumeration), " << unmapped_columns.size()
     << " unmapped columns\n";
  return os.str();
}

}  // namespace mip::etl
