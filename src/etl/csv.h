#ifndef MIP_ETL_CSV_H_
#define MIP_ETL_CSV_H_

#include <string>

#include "common/result.h"
#include "engine/table.h"

namespace mip::etl {

/// \brief Options for CSV ingestion (hospital source data arrives as CSV in
/// MIP deployments; the ETL uploads it into the analytics engine).
struct CsvOptions {
  char delimiter = ',';
  bool header = true;
  /// Cells equal to any of these become NULL.
  std::vector<std::string> null_tokens = {"", "NA", "null", "NULL", "NaN"};
  /// When true, column types are inferred (int -> double -> string);
  /// otherwise everything is read as string.
  bool infer_types = true;
};

/// Parses CSV text into a table. Quoted fields ("a,b", doubled quotes)
/// are supported.
Result<engine::Table> ReadCsvString(const std::string& text,
                                    const CsvOptions& options = CsvOptions());

/// Reads a CSV file from disk.
Result<engine::Table> ReadCsvFile(const std::string& path,
                                  const CsvOptions& options = CsvOptions());

/// Renders a table as CSV text (header + rows, NULL as empty cell).
std::string WriteCsvString(const engine::Table& table,
                           char delimiter = ',');

/// Writes a table to a CSV file.
Status WriteCsvFile(const engine::Table& table, const std::string& path,
                    char delimiter = ',');

}  // namespace mip::etl

#endif  // MIP_ETL_CSV_H_
