#ifndef MIP_ETL_CDE_H_
#define MIP_ETL_CDE_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/table.h"

namespace mip::etl {

/// \brief A Common Data Element: the harmonized definition of one clinical
/// variable that every federated hospital must conform to before its data
/// enters the Worker engine.
struct CdeVariable {
  std::string name;        ///< harmonized name
  std::string label;       ///< human-readable description
  engine::DataType type = engine::DataType::kFloat64;
  bool required = false;   ///< rows missing it are dropped
  /// Accepted range for numerics (ignored when min == max == 0).
  double min_value = 0.0;
  double max_value = 0.0;
  /// Accepted values for categoricals (empty = anything).
  std::vector<std::string> enumeration;
  /// Source-column aliases this CDE harmonizes from (e.g. "ptau" for
  /// "p_tau").
  std::vector<std::string> aliases;
};

/// \brief A CDE catalog for one pathology domain (dementia, epilepsy, ...).
class CdeCatalog {
 public:
  explicit CdeCatalog(std::string domain) : domain_(std::move(domain)) {}

  const std::string& domain() const { return domain_; }

  Status AddVariable(CdeVariable variable);
  Result<const CdeVariable*> GetVariable(const std::string& name) const;
  const std::vector<CdeVariable>& variables() const { return variables_; }

  /// Resolves a source-column name (exact or alias, case-insensitive) to
  /// the harmonized variable, or nullptr.
  const CdeVariable* Resolve(const std::string& source_name) const;

 private:
  std::string domain_;
  std::vector<CdeVariable> variables_;
};

/// \brief The dementia CDE catalog used by the examples and benchmarks —
/// the variables visible in the paper's dashboard (Figure 3): brain
/// volumes, CSF biomarkers, diagnosis, demographics.
CdeCatalog DementiaCatalog();

/// \brief Epilepsy CDEs (the paper: pathologies include epilepsy; data
/// types include intracerebral EEG): seizure burden, iEEG spike metrics,
/// surgery outcome (Engel class).
CdeCatalog EpilepsyCatalog();

/// \brief Traumatic-brain-injury CDEs (GCS, pupils, predicted mortality) —
/// the domain the Calibration Belt was built for.
CdeCatalog TbiCatalog();

/// \brief Outcome of a harmonization pass over one source table.
struct HarmonizationReport {
  int64_t rows_in = 0;
  int64_t rows_out = 0;
  int64_t cells_nulled_out_of_range = 0;
  int64_t cells_nulled_bad_enum = 0;
  int64_t rows_dropped_missing_required = 0;
  std::vector<std::string> unmapped_columns;  ///< ignored source columns

  std::string ToString() const;
};

/// \brief Harmonizes a raw source table against a CDE catalog: renames
/// aliased columns, coerces types, nulls out-of-range numerics and
/// out-of-enumeration categoricals, drops rows missing required variables.
/// Output columns follow the catalog's order (only variables present in the
/// source appear).
Result<engine::Table> Harmonize(const engine::Table& source,
                                const CdeCatalog& catalog,
                                HarmonizationReport* report = nullptr);

}  // namespace mip::etl

#endif  // MIP_ETL_CDE_H_
