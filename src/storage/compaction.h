#ifndef MIP_STORAGE_COMPACTION_H_
#define MIP_STORAGE_COMPACTION_H_

#include <functional>
#include <string>

#include "common/result.h"
#include "engine/table.h"

namespace mip::storage {

/// \brief Background segment compaction: merge a table's small flush
/// segments into one *sorted* group so zone maps become sharp (key-disjoint
/// segments) — without changing any visible scan result.
///
/// The re-sort is the whole point (clustering the data is what lets zone
/// maps prune), but scans must stay byte-identical to the pre-compaction
/// store at any thread count, and the gateway result cache must stay valid
/// (compaction must NOT look like a data change). The trick: every
/// compacted segment carries a hidden kHiddenPosColumn int column holding
/// each row's original position within the compaction group, and the
/// manifest marks the group's segments with a shared group id. Scans
/// restore the original order per group (an O(n) inverse permutation when
/// the whole group survives pruning, an argsort of the surviving positions
/// otherwise) and strip the hidden column — so SELECTs see exactly the
/// pre-compaction rows in the pre-compaction order, while the *files* are
/// globally sorted by the clustering key and partition the key space.
///
/// Crash safety needs no new WAL machinery: output segments and their
/// indexes are written first (orphans if we die), the manifest rewrite is
/// the single atomic commit point, and the input files become unreferenced
/// garbage the next Open sweeps. Kill anywhere and recovery sees either the
/// old epoch or the new one, never a mix.
///
/// Concurrency: inputs are read and outputs written WITHOUT blocking
/// readers (segment files are immutable; compactions are serialized among
/// themselves); only the commit takes the store's exclusive lock, which
/// also makes deleting the replaced files safe — scans hold the shared
/// lock for their entire read.

/// Hidden int64 column appended to compacted segments: the row's original
/// position within its compaction group. Never visible to scans; user
/// tables may not contain columns with the reserved "__mip_" prefix.
inline constexpr char kHiddenPosColumn[] = "__mip_pos";
inline constexpr char kReservedColumnPrefix[] = "__mip_";

/// \brief Test seams for kill-anywhere crash-recovery coverage. `checkpoint`
/// is called between every step of a compaction ("begin", "segment-<i>",
/// "index-<i>-<col>", "pre-commit", "post-commit", "done"); returning a
/// non-OK status makes the compaction return immediately WITHOUT cleanup —
/// simulating a crash at that point (the test then reopens the directory
/// and checks recovery).
struct CompactionHooks {
  std::function<Status(const std::string& step)> checkpoint;
};

/// `schema` plus the hidden position column (what compacted segment files
/// store on disk).
engine::Schema SchemaWithPos(const engine::Schema& schema);

/// Stable-sorts `table` by `cluster_key` (a column of `table`; nulls first,
/// NaNs last among doubles, original order among ties) and appends the
/// hidden position column holding each output row's original row number.
/// The comparator only shapes zone maps — any deterministic total order is
/// correct, because scans restore the original order from the position
/// column.
Result<engine::Table> SortForCompaction(const engine::Table& table,
                                        const std::string& cluster_key);

/// Inverse of the re-sort for the read path: `group` holds the concatenated
/// (surviving) rows of one compaction group including the hidden position
/// column; returns the rows ordered by position with the column stripped.
Result<engine::Table> RestoreGroupOrder(const engine::Table& group);

}  // namespace mip::storage

#endif  // MIP_STORAGE_COMPACTION_H_
