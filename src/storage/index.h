#ifndef MIP_STORAGE_INDEX_H_
#define MIP_STORAGE_INDEX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/column.h"
#include "engine/table.h"
#include "storage/segment.h"

namespace mip::storage {

/// \brief Immutable ordered secondary index: one sorted (key -> row-id) run
/// per (segment, column), stored in a CRC-checked sidecar file.
///
/// The index answers one question cheaply: "how many rows of this segment
/// could satisfy a key interval?" — the match-fraction estimate the
/// optimizer's access-path choice and the IndexScan executor both use to
/// decide which segments are worth decoding at all. Because segments have
/// no random-access decode (stream codecs), the win of an index is not
/// row-level gathers but *segment confinement*: a selective point predicate
/// on an unsorted high-cardinality column probes every segment in a couple
/// of footer-guided block reads and decodes only the segments that actually
/// hold candidates.
///
/// Layout, all integers little-endian:
///
///   u32 magic        "MIX1"
///   u8  version      1
///   -- entry blocks of up to kIndexBlockEntries (key, row-id) pairs,
///      globally sorted by (key, row-id); each block is independently
///      decodable (engine codecs) and CRC'd:
///     [block] keys     (EncodeInts / EncodeDoubles / EncodeStrings)
///     [block] row_ids  (EncodeInts)
///   -- NaN side list (kFloat64 only, present iff nan_count > 0):
///     [block] row_ids of NaN cells (EncodeInts)
///   -- footer:
///     string  column        (indexed column name)
///     u8      type          (DataType)
///     varint  num_rows      (rows in the segment the index covers)
///     varint  num_entries   (indexed rows: non-null, non-NaN)
///     varint  nan_count
///     varint nan_offset, varint nan_length, u32 nan_crc   (iff nan_count>0)
///     varint  num_blocks, per block:
///       typed   first_key, last_key   (sparse top level)
///       varint  count
///       varint  offset, varint length, u32 crc
///   -- trailer (fixed 12 bytes):
///     u32 footer_len
///     u32 footer_crc
///     u32 magic        "MIXF"
///
/// NULL rows are excluded: under this engine's semantics a NULL cell never
/// passes a comparison filter, so their absence can never drop a real
/// match. NaN rows (doubles) sit in the side list because they satisfy
/// =, <=, >= against ANY literal (cmp == 0 under the engine's kernels, see
/// segment.h) — a probe adds nan_count exactly when every conjunct on the
/// column is eq-like, mirroring SegmentCanMatch.
///
/// Readers trust nothing (magics, CRCs, counts, offsets, sortedness); a
/// truncated or bit-flipped index yields kIOError, which the store treats
/// as "no index" — it falls back to the zone-map scan path, never to wrong
/// results. Index files are immutable and visibility flows through the
/// manifest, so probes are latch-free.
inline constexpr uint32_t kIndexMagic = 0x3158494Du;        // "MIX1"
inline constexpr uint32_t kIndexFooterMagic = 0x4658494Du;  // "MIXF"
inline constexpr uint8_t kIndexVersion = 1;
inline constexpr size_t kIndexHeaderBytes = 5;
inline constexpr size_t kIndexTrailerBytes = 12;
inline constexpr uint64_t kIndexBlockEntries = 1024;
inline constexpr uint64_t kMaxIndexBlocks = 1u << 20;

/// Sparse top-level entry for one block: key range, row count, location.
struct IndexBlock {
  int64_t first_i = 0, last_i = 0;     // kInt64 / kBool (0/1)
  double first_d = 0.0, last_d = 0.0;  // kFloat64 (never NaN)
  std::string first_s, last_s;         // kString
  uint64_t count = 0;
  uint64_t offset = 0;
  uint64_t length = 0;
  uint32_t crc = 0;
};

struct IndexFooter {
  std::string column;
  engine::DataType type = engine::DataType::kFloat64;
  uint64_t num_rows = 0;     // segment rows the index covers
  uint64_t num_entries = 0;  // indexed (non-null, non-NaN) rows
  uint64_t nan_count = 0;
  uint64_t nan_offset = 0, nan_length = 0;
  uint32_t nan_crc = 0;
  std::vector<IndexBlock> blocks;
};

/// \brief Key interval a probe counts candidates in, derived from the
/// pruning conjuncts naming one column. Semantics mirror the engine's
/// comparison kernels exactly (numerics compared as doubles; NaN literals
/// and NaN cells compare "equal" to everything), so the candidate count is
/// always a superset of the rows the Filter above the scan will keep.
struct KeyInterval {
  /// At least one conjunct restricted the interval. False = probing is
  /// pointless (every indexed row is a candidate); the caller should treat
  /// the segment as zone-maps would.
  bool restricts = false;
  /// Provably no non-NaN row matches (contradictory bounds, or a NaN
  /// literal under < / >).
  bool empty = false;
  /// Whether NaN rows are candidates: true iff every usable conjunct on
  /// the column is eq-like (=, <=, >=).
  bool include_nan = true;

  // Numeric bounds (kBool/kInt64/kFloat64), in the double domain the
  // engine compares in. has_lo/has_hi false = unbounded on that side.
  bool has_lo = false, has_hi = false;
  bool lo_inclusive = true, hi_inclusive = true;
  double lo = 0.0, hi = 0.0;

  // String bounds (kString).
  std::string lo_s, hi_s;
};

/// Builds the probe interval for `column` from the conjuncts that name it
/// (case-insensitive). Conjuncts the index cannot evaluate exactly like the
/// engine (mixed-type literals) are ignored — dropping a conjunct only
/// widens the interval, keeping the count a superset.
KeyInterval BuildKeyInterval(engine::DataType type, const std::string& column,
                             const std::vector<PruneConjunct>& conjuncts);

/// Builds and crash-atomically writes the index for one segment column.
/// `column_name` keys the footer; `column` is the segment's decoded column.
Result<IndexFooter> WriteIndex(const std::string& path,
                               const std::string& column_name,
                               const engine::Column& column);

/// Reads and validates only the footer (magics, trailer, CRC, block bounds
/// and ordering) — the cheap path recovery uses. Block payloads are checked
/// lazily at probe time.
Result<IndexFooter> ReadIndexFooter(const std::string& path);

struct IndexProbe {
  uint64_t candidates = 0;   // rows that could satisfy the interval
  uint64_t blocks_read = 0;  // entry blocks decoded (probe cost)
};

/// Counts candidate rows in `interval`. Footer-level block ranges resolve
/// most blocks without IO; only blocks straddling an interval bound are
/// read (CRC-checked) and counted entry by entry. Any corruption is
/// kIOError — the caller falls back to the scan path.
Result<IndexProbe> ProbeIndex(const std::string& path,
                              const IndexFooter& footer,
                              const KeyInterval& interval);

/// Full audit: every block read, CRC'd, decoded; global (key, row-id)
/// sortedness; row ids < num_rows; counts consistent with the footer.
/// The explicit check surfaces the typed kIOError that silent probe-time
/// fallback deliberately swallows.
Status VerifyIndex(const std::string& path, const IndexFooter& footer);

}  // namespace mip::storage

#endif  // MIP_STORAGE_INDEX_H_
