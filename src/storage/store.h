#ifndef MIP_STORAGE_STORE_H_
#define MIP_STORAGE_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/storage_iface.h"
#include "engine/table.h"
#include "storage/manifest.h"
#include "storage/segment.h"

namespace mip::storage {

struct StorageOptions {
  /// Memtable flush threshold, summed across tables (estimated in-memory
  /// bytes of WAL'd-but-unflushed rows).
  uint64_t memtable_budget_bytes = 4ull << 20;
  /// Rows per segment file; larger memtables flush into several segments,
  /// which is what gives zone maps something to prune.
  uint64_t target_segment_rows = 64 * 1024;
};

/// \brief Disk-backed columnar table store with LSM-style ingest.
///
/// Layout inside the data directory:
///   MANIFEST            committed root (manifest.h)
///   seg-<id>.mip        immutable columnar segments (segment.h)
///   wal-<id>.log        live WAL epoch (wal.h)
///
/// Append path: WAL record fsynced first, then the batch joins the
/// in-memory memtable; once the summed memtable estimate exceeds the
/// budget, the memtables flush into segments and a new manifest commits
/// atomically. The destructor deliberately does NOT flush — durability
/// must come from the WAL alone, and the crash tests hold us to that.
///
/// Recovery (Open): load + validate MANIFEST, validate every referenced
/// segment footer, delete orphan segments / stale WALs / *.tmp leftovers
/// from an interrupted flush, then replay the live WAL (truncating a torn
/// tail) into the memtables.
///
/// Thread-safe: scans take a shared lock, appends/flushes an exclusive one.
class StorageEngine : public engine::TableStorage {
 public:
  static Result<std::unique_ptr<StorageEngine>> Open(
      const std::string& dir, const StorageOptions& options = {});

  ~StorageEngine() override = default;
  StorageEngine(const StorageEngine&) = delete;
  StorageEngine& operator=(const StorageEngine&) = delete;

  // engine::TableStorage:
  std::vector<std::string> StorageTableNames() const override;
  Result<engine::Schema> StorageTableSchema(
      const std::string& name) const override;
  Result<engine::Table> ScanTable(const std::string& name,
                                  const engine::Expr* prune_filter,
                                  engine::ScanStats* stats) const override;
  Status AppendRows(const std::string& name,
                    const engine::Table& rows) override;
  Result<engine::ScanStats> PrunePreview(
      const std::string& name,
      const engine::Expr* prune_filter) const override;

  /// Forces memtables into segments and commits a new manifest.
  Status Flush();

  const std::string& dir() const { return dir_; }
  /// Committed segment count for one table (tests / tooling).
  Result<uint64_t> SegmentCount(const std::string& name) const;
  /// Rows sitting in the (WAL-backed) memtable for one table.
  Result<uint64_t> MemtableRows(const std::string& name) const;

 private:
  struct SegmentState {
    uint64_t id = 0;
    SegmentFooter footer;
  };
  struct TableState {
    engine::Schema schema;
    std::vector<SegmentState> segments;
    std::vector<engine::Table> memtable;  // batches, ingest order
    uint64_t memtable_rows = 0;
  };

  StorageEngine(std::string dir, StorageOptions options)
      : dir_(std::move(dir)), options_(options) {}

  std::string SegmentPath(uint64_t id) const;
  std::string WalPath(uint64_t id) const;
  std::string ManifestPath() const;

  Status RecoverLocked();
  Status FlushLocked();
  Status ApplyToMemtableLocked(const std::string& key,
                               const engine::Table& rows);

  const std::string dir_;
  const StorageOptions options_;

  mutable std::shared_mutex mu_;
  uint64_t wal_id_ = 0;
  uint64_t next_segment_id_ = 0;
  uint64_t memtable_bytes_ = 0;  // estimate, summed across tables
  std::map<std::string, TableState> tables_;  // key: lower-cased name
};

}  // namespace mip::storage

#endif  // MIP_STORAGE_STORE_H_
