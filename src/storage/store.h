#ifndef MIP_STORAGE_STORE_H_
#define MIP_STORAGE_STORE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "engine/storage_iface.h"
#include "engine/table.h"
#include "storage/compaction.h"
#include "storage/index.h"
#include "storage/manifest.h"
#include "storage/segment.h"

namespace mip::storage {

struct StorageOptions {
  /// Memtable flush threshold, summed across tables (estimated in-memory
  /// bytes of WAL'd-but-unflushed rows).
  uint64_t memtable_budget_bytes = 4ull << 20;
  /// Rows per segment file; larger memtables flush into several segments,
  /// which is what gives zone maps something to prune.
  uint64_t target_segment_rows = 64 * 1024;

  /// Build an ordered secondary index for every column at flush/compaction
  /// time. When false, only `index_columns` (if any) are indexed.
  bool auto_index = true;
  /// Explicit index columns (case-insensitive), used when !auto_index.
  std::vector<std::string> index_columns;
  /// At Open, build any index the manifest is missing (e.g. a version-1
  /// data directory from before indexes existed). Indexes the manifest
  /// references but whose files fail validation are NOT rebuilt — they stay
  /// invalid so the scan fallback remains observable until the next
  /// flush/compaction rewrites them.
  bool build_missing_indexes = true;

  /// Compaction clustering key: the column compacted segments are re-sorted
  /// by (sharpens zone maps / index block ranges). Empty = each table's
  /// first column.
  std::string cluster_key;
  /// Background compaction picks up a table once it has at least this many
  /// segments.
  uint64_t compact_min_segments = 8;
  /// Poll interval of the background compaction thread.
  uint64_t background_compact_interval_ms = 250;
};

/// \brief Disk-backed columnar table store with LSM-style ingest, ordered
/// secondary indexes, and background compaction.
///
/// Layout inside the data directory:
///   MANIFEST            committed root (manifest.h)
///   seg-<id>.mip        immutable columnar segments (segment.h)
///   idx-<id>.mix        immutable ordered indexes, one per
///                       (segment, column) (index.h)
///   wal-<id>.log        live WAL epoch (wal.h)
///
/// Append path: WAL record fsynced first, then the batch joins the
/// in-memory memtable; once the summed memtable estimate exceeds the
/// budget, the memtables flush into segments (and their indexes) and a new
/// manifest commits atomically. The destructor deliberately does NOT flush
/// — durability must come from the WAL alone, and the crash tests hold us
/// to that.
///
/// Recovery (Open): load + validate MANIFEST, validate every referenced
/// segment footer (hard error on mismatch — committed data), load every
/// referenced index footer (soft: an unreadable index is marked invalid
/// and that segment falls back to the zone-map path — an index is an
/// accelerator, losing one must never lose data or fail recovery), delete
/// orphan segments / indexes / stale WALs / *.tmp leftovers, replay the
/// live WAL (truncating a torn tail), then build any indexes the manifest
/// never had (old-format directories gain indexes on boot).
///
/// Read path: ScanTable prunes with zone maps only; IndexScanTable
/// additionally probes each surviving segment's ordered indexes and skips
/// segments a probe proves empty. Both restore the original row order of
/// compacted groups (see compaction.h), so results are byte-identical to
/// each other and to the never-compacted store.
///
/// Thread-safe: scans take a shared lock for their entire read (segment
/// and index files are immutable; visibility flows through the in-memory
/// manifest epoch), appends/flushes/commits an exclusive one. Compactions
/// serialize among themselves and only take the exclusive lock to commit.
class StorageEngine : public engine::TableStorage {
 public:
  static Result<std::unique_ptr<StorageEngine>> Open(
      const std::string& dir, const StorageOptions& options = {});

  /// Stops the background compaction thread; does NOT flush (see above).
  ~StorageEngine() override;
  StorageEngine(const StorageEngine&) = delete;
  StorageEngine& operator=(const StorageEngine&) = delete;

  // engine::TableStorage:
  std::vector<std::string> StorageTableNames() const override;
  Result<engine::Schema> StorageTableSchema(
      const std::string& name) const override;
  Result<engine::Table> ScanTable(const std::string& name,
                                  const engine::Expr* prune_filter,
                                  engine::ScanStats* stats) const override;
  Status AppendRows(const std::string& name,
                    const engine::Table& rows) override;
  Result<engine::ScanStats> PrunePreview(
      const std::string& name,
      const engine::Expr* prune_filter) const override;
  Result<engine::Table> IndexScanTable(const std::string& name,
                                       const engine::Expr* prune_filter,
                                       engine::ScanStats* stats) const override;
  Result<engine::IndexPreview> PreviewIndexScan(
      const std::string& name,
      const engine::Expr* prune_filter) const override;
  /// Cost-model statistics from committed footer metadata (segment row
  /// counts + zone maps) plus the live memtable — no data blocks decoded.
  /// NDV is unknown (-1): footers carry no sketches.
  Result<engine::TableStats> StorageTableStats(
      const std::string& name) const override;
  engine::StorageCounters Counters() const override;

  /// Forces memtables into segments and commits a new manifest.
  Status Flush();

  /// Merges `name`'s committed segments into one sorted compaction group
  /// (no-op below two segments). Scan results are unchanged; see
  /// compaction.h for the order-restoration and crash-safety story.
  /// `hooks.checkpoint` is a test seam simulating a crash between steps.
  Status Compact(const std::string& name, const CompactionHooks& hooks = {});
  /// Compacts every table that has at least `min_segments` segments
  /// (defaults to the configured threshold).
  Status CompactAll(uint64_t min_segments = 0);
  /// Starts/stops the periodic background compaction thread. Idempotent;
  /// the destructor stops it.
  void StartBackgroundCompaction();
  void StopBackgroundCompaction();

  /// Full audit of every valid index file (CRCs, sortedness, row ids);
  /// the typed-kIOError surface for corruption that the scan paths
  /// deliberately swallow by falling back.
  Status VerifyIndexes() const;

  const std::string& dir() const { return dir_; }
  /// Committed segment count for one table (tests / tooling).
  Result<uint64_t> SegmentCount(const std::string& name) const;
  /// Valid (loadable) index count across one table's segments.
  Result<uint64_t> IndexCount(const std::string& name) const;
  /// Rows sitting in the (WAL-backed) memtable for one table.
  Result<uint64_t> MemtableRows(const std::string& name) const;

 private:
  struct IndexState {
    uint64_t id = 0;
    std::string column;
    IndexFooter footer;
    /// False when the sidecar failed validation at Open — the segment then
    /// behaves as if this index did not exist.
    bool valid = false;
  };
  struct SegmentState {
    uint64_t id = 0;
    uint64_t group = 0;  // compaction group id, 0 = not compacted
    SegmentFooter footer;
    std::vector<IndexState> indexes;
  };
  struct TableState {
    engine::Schema schema;  // user schema (never contains hidden columns)
    std::vector<SegmentState> segments;
    std::vector<engine::Table> memtable;  // batches, ingest order
    uint64_t memtable_rows = 0;
  };

  StorageEngine(std::string dir, StorageOptions options)
      : dir_(std::move(dir)), options_(std::move(options)) {}

  std::string SegmentPath(uint64_t id) const;
  std::string IndexPath(uint64_t id) const;
  std::string WalPath(uint64_t id) const;
  std::string ManifestPath() const;

  Status RecoverLocked();
  Status FlushLocked();
  Status ApplyToMemtableLocked(const std::string& key,
                               const engine::Table& rows);
  /// Columns of `schema` that should carry indexes under the options.
  std::vector<std::string> IndexedColumns(const engine::Schema& schema) const;
  /// Builds the configured indexes over `data` (one segment's rows),
  /// assigning ids from `*next_index_id`.
  Status BuildSegmentIndexes(const engine::Table& data, uint64_t* next_index_id,
                             std::vector<IndexState>* out) const;
  /// Serializes the in-memory committed state (callers pass the wal/next
  /// ids the manifest should record).
  Manifest BuildManifestLocked(uint64_t wal_id) const;
  /// Builds indexes missing from the manifest (boot path for pre-index
  /// data directories); commits one manifest if anything was built.
  Status EnsureIndexesLocked();
  /// Shared scan body: zone-map pruning, optionally index probes, group
  /// order restoration. Caller holds the shared lock.
  Result<engine::Table> ScanLocked(const TableState& state,
                                   const engine::Expr* prune_filter,
                                   engine::ScanStats* stats,
                                   bool use_index) const;
  void BackgroundCompactionLoop();

  const std::string dir_;
  const StorageOptions options_;

  mutable std::shared_mutex mu_;
  uint64_t wal_id_ = 0;
  uint64_t next_segment_id_ = 0;
  uint64_t next_index_id_ = 0;
  uint64_t memtable_bytes_ = 0;  // estimate, summed across tables
  std::map<std::string, TableState> tables_;  // key: lower-cased name

  /// Serializes compactions against each other (NOT against scans/appends;
  /// those only contend on mu_ at the commit).
  std::mutex compact_mu_;

  std::mutex bg_mu_;
  std::condition_variable bg_cv_;
  bool bg_stop_ = false;
  std::thread bg_thread_;

  // Lifetime counters for /metrics (monotonic, in-memory).
  mutable std::atomic<uint64_t> ctr_segments_scanned_{0};
  mutable std::atomic<uint64_t> ctr_segments_pruned_{0};
  mutable std::atomic<uint64_t> ctr_index_probes_{0};
  mutable std::atomic<uint64_t> ctr_index_hits_{0};
  std::atomic<uint64_t> ctr_flushes_{0};
  std::atomic<uint64_t> ctr_compactions_{0};
  std::atomic<uint64_t> ctr_wal_replays_{0};
};

}  // namespace mip::storage

#endif  // MIP_STORAGE_STORE_H_
