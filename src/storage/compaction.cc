#include "storage/compaction.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <numeric>

#include "common/string_util.h"
#include "storage/io.h"
#include "storage/store.h"

namespace mip::storage {

engine::Schema SchemaWithPos(const engine::Schema& schema) {
  engine::Schema out = schema;
  // Cannot collide: AppendRows rejects user columns with the reserved
  // prefix before they ever reach the WAL.
  (void)out.AddField(
      engine::Field{kHiddenPosColumn, engine::DataType::kInt64});
  return out;
}

Result<engine::Table> SortForCompaction(const engine::Table& table,
                                        const std::string& cluster_key) {
  MIP_ASSIGN_OR_RETURN(const engine::Column* key,
                       table.ColumnByName(cluster_key));
  const size_t n = table.num_rows();
  // Sort category: nulls first, then values, then NaNs — any deterministic
  // total order works (scans restore the original order), this one just
  // keeps the value blocks' zone maps clean of sentinel rows.
  auto category = [key](int64_t i) -> int {
    if (!key->IsValid(static_cast<size_t>(i))) return 0;
    if (key->type() == engine::DataType::kFloat64 &&
        std::isnan(key->DoubleAt(static_cast<size_t>(i)))) {
      return 2;
    }
    return 1;
  };
  auto less = [key, &category](int64_t a, int64_t b) -> bool {
    const int ca = category(a), cb = category(b);
    if (ca != cb) return ca < cb;
    if (ca != 1) return false;  // ties keep original order (stable sort)
    const size_t ia = static_cast<size_t>(a), ib = static_cast<size_t>(b);
    switch (key->type()) {
      case engine::DataType::kBool:
        return key->BoolAt(ia) < key->BoolAt(ib);
      case engine::DataType::kInt64:
        return key->IntAt(ia) < key->IntAt(ib);
      case engine::DataType::kFloat64:
        return key->DoubleAt(ia) < key->DoubleAt(ib);
      case engine::DataType::kString:
        return key->StringAt(ia) < key->StringAt(ib);
    }
    return false;
  };
  std::vector<int64_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), less);

  engine::Table sorted = table.Take(order);
  std::vector<engine::Column> columns;
  columns.reserve(sorted.num_columns() + 1);
  for (size_t c = 0; c < sorted.num_columns(); ++c) {
    columns.push_back(sorted.column(c));
  }
  // Output row i came from original row order[i] — exactly the position
  // column the read path inverts.
  columns.push_back(engine::Column::FromInts(order));
  return engine::Table::Make(SchemaWithPos(table.schema()),
                             std::move(columns));
}

Result<engine::Table> RestoreGroupOrder(const engine::Table& group) {
  const int pos_idx = group.schema().FieldIndex(kHiddenPosColumn);
  if (pos_idx < 0) {
    return Status::IOError("compaction group is missing its '" +
                           std::string(kHiddenPosColumn) + "' column");
  }
  const engine::Column& pos = group.column(static_cast<size_t>(pos_idx));
  const size_t n = group.num_rows();

  // When every row of the group survived pruning, the positions are a
  // permutation of 0..n-1 and the inverse permutation restores the order in
  // O(n); otherwise (some segments pruned) argsort the surviving positions.
  std::vector<int64_t> order(n, -1);
  bool is_permutation = true;
  for (size_t i = 0; i < n; ++i) {
    const int64_t p = pos.IntAt(i);
    if (p < 0 || p >= static_cast<int64_t>(n) || order[p] != -1) {
      is_permutation = false;
      break;
    }
    order[p] = static_cast<int64_t>(i);
  }
  if (!is_permutation) {
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&pos](int64_t a, int64_t b) {
                       return pos.IntAt(static_cast<size_t>(a)) <
                              pos.IntAt(static_cast<size_t>(b));
                     });
  }
  engine::Table sorted = group.Take(order);

  std::vector<engine::Field> fields;
  std::vector<engine::Column> columns;
  for (size_t c = 0; c < sorted.num_columns(); ++c) {
    if (static_cast<int>(c) == pos_idx) continue;
    fields.push_back(sorted.schema().field(c));
    columns.push_back(sorted.column(c));
  }
  return engine::Table::Make(engine::Schema(std::move(fields)),
                             std::move(columns));
}

Status StorageEngine::Compact(const std::string& name,
                              const CompactionHooks& hooks) {
  auto checkpoint = [&hooks](const std::string& step) -> Status {
    if (hooks.checkpoint) return hooks.checkpoint(step);
    return Status::OK();
  };
  // One compaction at a time; scans and appends proceed concurrently and
  // only contend on mu_ at the commit below.
  std::lock_guard<std::mutex> serialize(compact_mu_);

  const std::string key = ToLower(name);
  std::vector<SegmentState> inputs;
  engine::Schema schema;
  {
    std::shared_lock lock(mu_);
    auto it = tables_.find(key);
    if (it == tables_.end()) {
      return Status::NotFound("no disk table named '" + name + "'");
    }
    if (it->second.segments.size() < 2) return Status::OK();
    inputs = it->second.segments;
    schema = it->second.schema;
  }
  if (schema.num_fields() == 0) return Status::OK();
  MIP_RETURN_NOT_OK(checkpoint("begin"));

  // 1. Read every input row in visible order (group-aware, no pruning).
  // Unlocked: segment files are immutable, and only compactions delete
  // them — which this mutex serializes.
  std::vector<engine::Table> parts;
  size_t i = 0;
  while (i < inputs.size()) {
    const uint64_t group = inputs[i].group;
    size_t j = i + 1;
    if (group != 0) {
      while (j < inputs.size() && inputs[j].group == group) ++j;
    }
    std::vector<engine::Table> group_parts;
    for (size_t k = i; k < j; ++k) {
      MIP_ASSIGN_OR_RETURN(
          engine::Table part,
          ReadSegmentData(SegmentPath(inputs[k].id), inputs[k].footer));
      group_parts.push_back(std::move(part));
    }
    if (group != 0) {
      MIP_ASSIGN_OR_RETURN(engine::Table merged,
                           engine::Table::Concat(group_parts));
      MIP_ASSIGN_OR_RETURN(engine::Table restored, RestoreGroupOrder(merged));
      parts.push_back(std::move(restored));
    } else {
      for (engine::Table& part : group_parts) parts.push_back(std::move(part));
    }
    i = j;
  }
  engine::Table all = engine::Table::Empty(schema);
  if (!parts.empty()) {
    MIP_ASSIGN_OR_RETURN(all, engine::Table::Concat(parts));
  }
  parts.clear();

  // 2. Re-sort by the clustering key (configured, or the first column) and
  // remember every row's original position.
  std::string cluster = schema.field(0).name;
  if (!options_.cluster_key.empty()) {
    const int fi = schema.FieldIndex(options_.cluster_key);
    if (fi >= 0) cluster = schema.field(static_cast<size_t>(fi)).name;
  }
  MIP_ASSIGN_OR_RETURN(engine::Table sorted, SortForCompaction(all, cluster));

  // 3. Reserve output ids up front (brief exclusive hold; an aborted
  // compaction just burns the ids).
  const uint64_t rows = sorted.num_rows();
  const uint64_t per = std::max<uint64_t>(1, options_.target_segment_rows);
  const uint64_t nsegs = (rows + per - 1) / per;
  const std::vector<std::string> index_cols = IndexedColumns(schema);
  uint64_t first_seg = 0;
  uint64_t next_idx = 0;
  {
    std::unique_lock lock(mu_);
    first_seg = next_segment_id_;
    next_segment_id_ += nsegs;
    next_idx = next_index_id_;
    next_index_id_ += nsegs * index_cols.size();
  }
  // Nonzero and unique per compaction (distinct first_seg reservations), so
  // adjacent groups in a segment list can never merge.
  const uint64_t group_id = first_seg + 1;

  // 4. Write the new segments and their indexes. Nothing references these
  // files until the commit; a crash anywhere in here leaves orphans for the
  // next Open's sweep.
  std::vector<SegmentState> outputs;
  auto discard_outputs = [this, &outputs] {
    for (const SegmentState& seg : outputs) {
      (void)RemoveFile(SegmentPath(seg.id));
      for (const IndexState& idx : seg.indexes) {
        (void)RemoveFile(IndexPath(idx.id));
      }
    }
  };
  for (uint64_t out_i = 0; out_i * per < rows; ++out_i) {
    const size_t off = static_cast<size_t>(out_i * per);
    const size_t count = std::min<size_t>(per, rows - off);
    const engine::Table chunk = sorted.Slice(off, count);
    SegmentState seg;
    seg.id = first_seg + out_i;
    seg.group = group_id;
    MIP_ASSIGN_OR_RETURN(seg.footer, WriteSegment(SegmentPath(seg.id), chunk));
    MIP_RETURN_NOT_OK(checkpoint("segment-" + std::to_string(out_i)));
    for (const std::string& col : index_cols) {
      MIP_ASSIGN_OR_RETURN(const engine::Column* column,
                           chunk.ColumnByName(col));
      IndexState idx;
      idx.id = next_idx++;
      idx.column = col;
      MIP_ASSIGN_OR_RETURN(idx.footer,
                           WriteIndex(IndexPath(idx.id), col, *column));
      idx.valid = true;
      seg.indexes.push_back(std::move(idx));
      MIP_RETURN_NOT_OK(
          checkpoint("index-" + std::to_string(out_i) + "-" + col));
    }
    outputs.push_back(std::move(seg));
  }
  MIP_RETURN_NOT_OK(checkpoint("pre-commit"));

  // 5. Commit: swap the inputs for the outputs and write the manifest —
  // the single atomic step. Same WAL epoch: compaction rearranges committed
  // rows, the WAL and memtables are untouched.
  {
    std::unique_lock lock(mu_);
    auto it = tables_.find(key);
    bool prefix_intact =
        it != tables_.end() && it->second.segments.size() >= inputs.size();
    if (prefix_intact) {
      for (size_t k = 0; k < inputs.size(); ++k) {
        if (it->second.segments[k].id != inputs[k].id) {
          prefix_intact = false;
          break;
        }
      }
    }
    if (!prefix_intact) {
      // Someone rewrote our inputs (cannot happen while compactions are
      // serialized — flushes only append); abandon quietly.
      lock.unlock();
      discard_outputs();
      return Status::OK();
    }
    std::vector<SegmentState> replaced = outputs;
    for (size_t k = inputs.size(); k < it->second.segments.size(); ++k) {
      replaced.push_back(it->second.segments[k]);
    }
    std::swap(it->second.segments, replaced);  // `replaced` now = old list
    Status st = SaveManifest(ManifestPath(), BuildManifestLocked(wal_id_));
    if (!st.ok()) {
      std::swap(it->second.segments, replaced);
      lock.unlock();
      discard_outputs();
      return st;
    }
    // A "crash" here (post-commit, pre-delete) leaves the replaced files on
    // disk as orphans of the new manifest; recovery sweeps them.
    MIP_RETURN_NOT_OK(checkpoint("post-commit"));
    ctr_compactions_.fetch_add(1, std::memory_order_relaxed);
    // Delete the replaced files under the exclusive lock: scans hold the
    // shared lock for their entire read, so nobody is mid-read in them.
    // Unlink failures are harmless — the next Open's sweep retries.
    for (const SegmentState& seg : inputs) {
      (void)RemoveFile(SegmentPath(seg.id));
      for (const IndexState& idx : seg.indexes) {
        (void)RemoveFile(IndexPath(idx.id));
      }
    }
  }
  return checkpoint("done");
}

Status StorageEngine::CompactAll(uint64_t min_segments) {
  const uint64_t min =
      std::max<uint64_t>(2, min_segments == 0 ? options_.compact_min_segments
                                              : min_segments);
  std::vector<std::string> names;
  {
    std::shared_lock lock(mu_);
    for (const auto& [key, state] : tables_) {
      if (state.segments.size() >= min) names.push_back(key);
    }
  }
  for (const std::string& name : names) {
    MIP_RETURN_NOT_OK(Compact(name));
  }
  return Status::OK();
}

void StorageEngine::StartBackgroundCompaction() {
  std::lock_guard<std::mutex> lock(bg_mu_);
  if (bg_thread_.joinable()) return;
  bg_stop_ = false;
  bg_thread_ = std::thread([this] { BackgroundCompactionLoop(); });
}

void StorageEngine::StopBackgroundCompaction() {
  std::thread thread;
  {
    std::lock_guard<std::mutex> lock(bg_mu_);
    if (!bg_thread_.joinable()) return;
    bg_stop_ = true;
    thread = std::move(bg_thread_);
  }
  bg_cv_.notify_all();
  thread.join();
}

void StorageEngine::BackgroundCompactionLoop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(bg_mu_);
      bg_cv_.wait_for(
          lock,
          std::chrono::milliseconds(options_.background_compact_interval_ms),
          [this] { return bg_stop_; });
      if (bg_stop_) return;
    }
    // Best effort: a failed pass (e.g. disk pressure) retries next tick.
    (void)CompactAll();
  }
}

}  // namespace mip::storage
