#include "storage/manifest.h"

#include "common/bytes.h"
#include "common/crc32.h"
#include "engine/encoding.h"
#include "storage/io.h"

namespace mip::storage {

using engine::GetVarint;
using engine::PutVarint;

ManifestTable* Manifest::FindTable(const std::string& name) {
  for (ManifestTable& t : tables) {
    if (t.name == name) return &t;
  }
  return nullptr;
}

Status SaveManifest(const std::string& path, const Manifest& manifest) {
  BufferWriter w;
  w.WriteU32(kManifestMagic);
  w.WriteU8(kManifestVersion);
  w.WriteU64(manifest.wal_id);
  w.WriteU64(manifest.next_segment_id);
  w.WriteU64(manifest.next_index_id);
  PutVarint(&w, manifest.tables.size());
  for (const ManifestTable& t : manifest.tables) {
    w.WriteString(t.name);
    PutVarint(&w, t.schema.num_fields());
    for (const engine::Field& f : t.schema.fields()) {
      w.WriteString(f.name);
      w.WriteU8(static_cast<uint8_t>(f.type));
    }
    PutVarint(&w, t.segments.size());
    for (const ManifestSegment& s : t.segments) {
      PutVarint(&w, s.id);
      PutVarint(&w, s.rows);
      PutVarint(&w, s.group);
      PutVarint(&w, s.indexes.size());
      for (const ManifestIndex& idx : s.indexes) {
        PutVarint(&w, idx.id);
        w.WriteString(idx.column);
      }
    }
  }
  w.WriteU32(Crc32(w.bytes()));
  return WriteFileAtomic(path, w.bytes());
}

Result<Manifest> LoadManifest(const std::string& path) {
  MIP_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, ReadFileBytes(path));
  if (bytes.size() < 8) {
    return Status::IOError("manifest '" + path + "' too short");
  }
  // CRC covers everything before the trailing u32.
  const std::vector<uint8_t> body(bytes.begin(), bytes.end() - 4);
  BufferReader tail(bytes);
  std::vector<uint8_t> skip(bytes.size() - 4);
  MIP_RETURN_NOT_OK(tail.ReadRawBytes(skip.data(), skip.size()));
  MIP_ASSIGN_OR_RETURN(uint32_t stored_crc, tail.ReadU32());
  if (Crc32(body) != stored_crc) {
    return Status::IOError("manifest '" + path + "' CRC mismatch");
  }

  BufferReader r(body);
  MIP_ASSIGN_OR_RETURN(uint32_t magic, r.ReadU32());
  if (magic != kManifestMagic) {
    return Status::IOError("manifest '" + path + "' bad magic");
  }
  MIP_ASSIGN_OR_RETURN(uint8_t version, r.ReadU8());
  // Version 1 is the PR-7 layout: no next_index_id, no per-segment group or
  // index list. Those fields default to zero/empty on load.
  if (version != 1 && version != kManifestVersion) {
    return Status::IOError("manifest '" + path + "' unsupported version " +
                           std::to_string(version));
  }
  Manifest m;
  MIP_ASSIGN_OR_RETURN(m.wal_id, r.ReadU64());
  MIP_ASSIGN_OR_RETURN(m.next_segment_id, r.ReadU64());
  if (version >= 2) {
    MIP_ASSIGN_OR_RETURN(m.next_index_id, r.ReadU64());
  }
  MIP_ASSIGN_OR_RETURN(uint64_t num_tables, GetVarint(&r));
  if (num_tables > kMaxManifestTables) {
    return Status::IOError("manifest '" + path + "' hostile table count");
  }
  for (uint64_t i = 0; i < num_tables; ++i) {
    ManifestTable t;
    MIP_ASSIGN_OR_RETURN(t.name, r.ReadString());
    if (m.FindTable(t.name) != nullptr) {
      return Status::IOError("manifest '" + path + "' duplicate table '" +
                             t.name + "'");
    }
    MIP_ASSIGN_OR_RETURN(uint64_t num_fields, GetVarint(&r));
    if (num_fields > kMaxManifestTables) {
      return Status::IOError("manifest '" + path + "' hostile field count");
    }
    for (uint64_t f = 0; f < num_fields; ++f) {
      engine::Field field;
      MIP_ASSIGN_OR_RETURN(field.name, r.ReadString());
      MIP_ASSIGN_OR_RETURN(uint8_t type_byte, r.ReadU8());
      if (type_byte > static_cast<uint8_t>(engine::DataType::kString)) {
        return Status::IOError("manifest '" + path + "' bad field type");
      }
      field.type = static_cast<engine::DataType>(type_byte);
      MIP_RETURN_NOT_OK(t.schema.AddField(std::move(field)));
    }
    MIP_ASSIGN_OR_RETURN(uint64_t num_segments, GetVarint(&r));
    if (num_segments > kMaxManifestSegments) {
      return Status::IOError("manifest '" + path + "' hostile segment count");
    }
    for (uint64_t s = 0; s < num_segments; ++s) {
      ManifestSegment seg;
      MIP_ASSIGN_OR_RETURN(seg.id, GetVarint(&r));
      MIP_ASSIGN_OR_RETURN(seg.rows, GetVarint(&r));
      if (seg.id >= m.next_segment_id) {
        return Status::IOError("manifest '" + path +
                               "' segment id beyond next_segment_id");
      }
      if (version >= 2) {
        MIP_ASSIGN_OR_RETURN(seg.group, GetVarint(&r));
        MIP_ASSIGN_OR_RETURN(uint64_t num_indexes, GetVarint(&r));
        if (num_indexes > kMaxManifestIndexes) {
          return Status::IOError("manifest '" + path +
                                 "' hostile index count");
        }
        for (uint64_t x = 0; x < num_indexes; ++x) {
          ManifestIndex idx;
          MIP_ASSIGN_OR_RETURN(idx.id, GetVarint(&r));
          MIP_ASSIGN_OR_RETURN(idx.column, r.ReadString());
          if (idx.id >= m.next_index_id) {
            return Status::IOError("manifest '" + path +
                                   "' index id beyond next_index_id");
          }
          seg.indexes.push_back(std::move(idx));
        }
      }
      t.segments.push_back(std::move(seg));
    }
    m.tables.push_back(std::move(t));
  }
  if (!r.AtEnd()) {
    return Status::IOError("manifest '" + path + "' trailing bytes");
  }
  return m;
}

}  // namespace mip::storage
