#include "storage/segment.h"

#include <cmath>

#include "common/bytes.h"
#include "common/crc32.h"
#include "common/string_util.h"
#include "engine/encoding.h"
#include "storage/io.h"

namespace mip::storage {

using engine::Column;
using engine::DataType;
using engine::DecodeBools;
using engine::DecodeDoubles;
using engine::DecodeInts;
using engine::DecodeStrings;
using engine::DecodeValidity;
using engine::EncodeBools;
using engine::EncodeDoubles;
using engine::EncodeInts;
using engine::EncodeStrings;
using engine::EncodeValidity;
using engine::Expr;
using engine::GetVarint;
using engine::kMaxWireElements;
using engine::PutVarint;
using engine::Schema;
using engine::Table;
using engine::Value;

namespace {

Status Corrupt(const std::string& path, const std::string& why) {
  return Status::IOError("corrupt segment '" + path + "': " + why);
}

}  // namespace

Schema SegmentFooter::schema() const {
  Schema schema;
  for (const SegmentColumn& col : columns) {
    // Duplicate names were rejected at footer-parse time; ignore here.
    (void)schema.AddField(engine::Field{col.name, col.type});
  }
  return schema;
}

ZoneMap ComputeZoneMap(const Column& column) {
  ZoneMap zone;
  zone.null_count = column.null_count();
  for (size_t i = 0; i < column.length(); ++i) {
    if (!column.IsValid(i)) continue;
    switch (column.type()) {
      case DataType::kBool: {
        const int64_t v = column.BoolAt(i) ? 1 : 0;
        if (!zone.has_range) {
          zone.min_i = zone.max_i = v;
          zone.has_range = true;
        } else {
          if (v < zone.min_i) zone.min_i = v;
          if (v > zone.max_i) zone.max_i = v;
        }
        break;
      }
      case DataType::kInt64: {
        const int64_t v = column.IntAt(i);
        if (!zone.has_range) {
          zone.min_i = zone.max_i = v;
          zone.has_range = true;
        } else {
          if (v < zone.min_i) zone.min_i = v;
          if (v > zone.max_i) zone.max_i = v;
        }
        break;
      }
      case DataType::kFloat64: {
        const double v = column.DoubleAt(i);
        if (std::isnan(v)) {
          zone.has_nan = true;
          break;
        }
        if (!zone.has_range) {
          zone.min_d = zone.max_d = v;
          zone.has_range = true;
        } else {
          if (v < zone.min_d) zone.min_d = v;
          if (v > zone.max_d) zone.max_d = v;
        }
        break;
      }
      case DataType::kString: {
        const std::string& v = column.StringAt(i);
        if (!zone.has_range) {
          zone.min_s = zone.max_s = v;
          zone.has_range = true;
        } else {
          if (v < zone.min_s) zone.min_s = v;
          if (v > zone.max_s) zone.max_s = v;
        }
        break;
      }
    }
  }
  return zone;
}

namespace {

void WriteZoneMap(const SegmentColumn& col, BufferWriter* w) {
  const ZoneMap& z = col.zone;
  PutVarint(w, z.null_count);
  w->WriteU8(z.has_range ? 1 : 0);
  w->WriteU8(z.has_nan ? 1 : 0);
  if (!z.has_range) return;
  switch (col.type) {
    case DataType::kBool:
    case DataType::kInt64:
      w->WriteI64(z.min_i);
      w->WriteI64(z.max_i);
      break;
    case DataType::kFloat64:
      w->WriteDouble(z.min_d);
      w->WriteDouble(z.max_d);
      break;
    case DataType::kString:
      w->WriteString(z.min_s);
      w->WriteString(z.max_s);
      break;
  }
}

Status ReadZoneMap(BufferReader* r, SegmentColumn* col) {
  ZoneMap& z = col->zone;
  MIP_ASSIGN_OR_RETURN(z.null_count, GetVarint(r));
  MIP_ASSIGN_OR_RETURN(uint8_t has_range, r->ReadU8());
  MIP_ASSIGN_OR_RETURN(uint8_t has_nan, r->ReadU8());
  if (has_range > 1 || has_nan > 1) {
    return Status::IOError("bad zone-map flag byte");
  }
  z.has_range = has_range == 1;
  z.has_nan = has_nan == 1;
  if (!z.has_range) return Status::OK();
  switch (col->type) {
    case DataType::kBool:
    case DataType::kInt64: {
      MIP_ASSIGN_OR_RETURN(z.min_i, r->ReadI64());
      MIP_ASSIGN_OR_RETURN(z.max_i, r->ReadI64());
      break;
    }
    case DataType::kFloat64: {
      MIP_ASSIGN_OR_RETURN(z.min_d, r->ReadDouble());
      MIP_ASSIGN_OR_RETURN(z.max_d, r->ReadDouble());
      break;
    }
    case DataType::kString: {
      MIP_ASSIGN_OR_RETURN(z.min_s, r->ReadString());
      MIP_ASSIGN_OR_RETURN(z.max_s, r->ReadString());
      break;
    }
  }
  return Status::OK();
}

/// Parses + validates footer bytes. `file_size` and `footer_start` bound
/// every column block: [kSegmentHeaderBytes, footer_start).
Result<SegmentFooter> ParseFooter(const std::string& path,
                                  const std::vector<uint8_t>& footer_bytes,
                                  uint64_t footer_start) {
  BufferReader r(footer_bytes);
  SegmentFooter footer;
  MIP_ASSIGN_OR_RETURN(footer.num_rows, GetVarint(&r));
  if (footer.num_rows > kMaxWireElements) {
    return Corrupt(path, "row count " + std::to_string(footer.num_rows) +
                             " exceeds cap");
  }
  MIP_ASSIGN_OR_RETURN(uint64_t num_cols, GetVarint(&r));
  if (num_cols > kMaxSegmentColumns) {
    return Corrupt(path, "column count " + std::to_string(num_cols) +
                             " exceeds cap");
  }
  Schema dup_check;
  for (uint64_t i = 0; i < num_cols; ++i) {
    SegmentColumn col;
    MIP_ASSIGN_OR_RETURN(col.name, r.ReadString());
    MIP_ASSIGN_OR_RETURN(uint8_t type_byte, r.ReadU8());
    if (type_byte > static_cast<uint8_t>(DataType::kString)) {
      return Corrupt(path, "bad column type byte");
    }
    col.type = static_cast<DataType>(type_byte);
    MIP_RETURN_NOT_OK(ReadZoneMap(&r, &col));
    MIP_ASSIGN_OR_RETURN(col.offset, GetVarint(&r));
    MIP_ASSIGN_OR_RETURN(col.length, GetVarint(&r));
    MIP_ASSIGN_OR_RETURN(col.crc, r.ReadU32());
    if (col.offset < kSegmentHeaderBytes || col.offset > footer_start ||
        col.length > footer_start - col.offset) {
      return Corrupt(path, "column block out of bounds");
    }
    if (col.zone.null_count > footer.num_rows) {
      return Corrupt(path, "null count exceeds row count");
    }
    if (!dup_check.AddField(engine::Field{col.name, col.type}).ok()) {
      return Corrupt(path, "duplicate column name '" + col.name + "'");
    }
    footer.columns.push_back(std::move(col));
  }
  if (!r.AtEnd()) return Corrupt(path, "trailing bytes after footer");
  return footer;
}

/// Splits the trailer, checks magics/CRC, returns (footer_bytes,
/// footer_start) given the file size and a reader positioned on the raw
/// trailer+footer tail bytes.
Result<std::pair<std::vector<uint8_t>, uint64_t>> CheckTail(
    const std::string& path, uint64_t file_size,
    const std::vector<uint8_t>& tail, uint64_t tail_offset) {
  // tail holds bytes [tail_offset, file_size); the last 12 are the trailer.
  if (tail.size() < kSegmentTrailerBytes) {
    return Corrupt(path, "file too small for trailer");
  }
  BufferReader tr(tail.data() + tail.size() - kSegmentTrailerBytes,
                  kSegmentTrailerBytes);
  MIP_ASSIGN_OR_RETURN(uint32_t footer_len, tr.ReadU32());
  MIP_ASSIGN_OR_RETURN(uint32_t footer_crc, tr.ReadU32());
  MIP_ASSIGN_OR_RETURN(uint32_t magic, tr.ReadU32());
  if (magic != kSegmentFooterMagic) {
    return Corrupt(path, "bad footer magic");
  }
  if (footer_len >
      file_size - kSegmentHeaderBytes - kSegmentTrailerBytes) {
    return Corrupt(path, "footer length out of bounds");
  }
  const uint64_t footer_start =
      file_size - kSegmentTrailerBytes - footer_len;
  if (footer_start < tail_offset) {
    return Corrupt(path, "footer longer than tail read");
  }
  const size_t in_tail = static_cast<size_t>(footer_start - tail_offset);
  std::vector<uint8_t> footer_bytes(tail.begin() + in_tail,
                                    tail.end() - kSegmentTrailerBytes);
  if (Crc32(footer_bytes) != footer_crc) {
    return Corrupt(path, "footer CRC mismatch");
  }
  return std::make_pair(std::move(footer_bytes), footer_start);
}

Status CheckHeader(const std::string& path, const uint8_t* data, size_t n) {
  BufferReader r(data, n);
  MIP_ASSIGN_OR_RETURN(uint32_t magic, r.ReadU32());
  if (magic != kSegmentMagic) return Corrupt(path, "bad segment magic");
  MIP_ASSIGN_OR_RETURN(uint8_t version, r.ReadU8());
  if (version != kSegmentVersion) {
    return Corrupt(path, "unsupported segment version " +
                             std::to_string(version));
  }
  return Status::OK();
}

Result<Column> DecodeColumnBlock(const std::string& path,
                                 const SegmentColumn& meta,
                                 const uint8_t* block, uint64_t num_rows) {
  BufferReader r(block, static_cast<size_t>(meta.length));
  MIP_ASSIGN_OR_RETURN(uint8_t has_validity, r.ReadU8());
  if (has_validity > 1) return Corrupt(path, "bad validity flag");
  engine::Bitmap validity;
  if (has_validity == 1) {
    MIP_ASSIGN_OR_RETURN(validity, DecodeValidity(&r));
    if (validity.length() != num_rows) {
      return Corrupt(path, "validity length mismatch");
    }
  }
  Column col;
  switch (meta.type) {
    case DataType::kBool: {
      MIP_ASSIGN_OR_RETURN(std::vector<uint8_t> v, DecodeBools(&r));
      if (v.size() != num_rows) return Corrupt(path, "bool count mismatch");
      col = Column::FromBools(std::move(v));
      break;
    }
    case DataType::kInt64: {
      MIP_ASSIGN_OR_RETURN(std::vector<int64_t> v, DecodeInts(&r));
      if (v.size() != num_rows) return Corrupt(path, "int count mismatch");
      col = Column::FromInts(std::move(v));
      break;
    }
    case DataType::kFloat64: {
      MIP_ASSIGN_OR_RETURN(std::vector<double> v, DecodeDoubles(&r));
      if (v.size() != num_rows) {
        return Corrupt(path, "double count mismatch");
      }
      col = Column::FromDoubles(std::move(v));
      break;
    }
    case DataType::kString: {
      MIP_ASSIGN_OR_RETURN(std::vector<std::string> v, DecodeStrings(&r));
      if (v.size() != num_rows) {
        return Corrupt(path, "string count mismatch");
      }
      col = Column::FromStrings(std::move(v));
      break;
    }
  }
  if (!r.AtEnd()) return Corrupt(path, "trailing bytes in column block");
  if (has_validity == 1) {
    MIP_RETURN_NOT_OK(col.SetValidity(std::move(validity)));
  }
  return col;
}

}  // namespace

Result<SegmentFooter> WriteSegment(const std::string& path,
                                   const Table& table) {
  if (table.num_rows() > kMaxWireElements) {
    return Status::InvalidArgument("segment batch exceeds row cap");
  }
  BufferWriter w;
  w.WriteU32(kSegmentMagic);
  w.WriteU8(kSegmentVersion);

  SegmentFooter footer;
  footer.num_rows = table.num_rows();
  for (size_t i = 0; i < table.num_columns(); ++i) {
    const Column& column = table.column(i);
    BufferWriter block;
    block.WriteU8(column.has_validity() ? 1 : 0);
    if (column.has_validity()) EncodeValidity(column.validity(), &block);
    switch (column.type()) {
      case DataType::kBool:
        EncodeBools(column.bools(), &block);
        break;
      case DataType::kInt64:
        EncodeInts(column.ints(), &block);
        break;
      case DataType::kFloat64:
        EncodeDoubles(column.doubles(), &block);
        break;
      case DataType::kString:
        EncodeStrings(column.strings(), &block);
        break;
    }
    const std::vector<uint8_t> block_bytes = block.TakeBytes();

    SegmentColumn col;
    col.name = table.schema().field(i).name;
    col.type = column.type();
    col.zone = ComputeZoneMap(column);
    col.offset = w.size();
    col.length = block_bytes.size();
    col.crc = Crc32(block_bytes);
    w.AppendRaw(block_bytes.data(), block_bytes.size());
    footer.columns.push_back(std::move(col));
  }

  BufferWriter f;
  PutVarint(&f, footer.num_rows);
  PutVarint(&f, footer.columns.size());
  for (const SegmentColumn& col : footer.columns) {
    f.WriteString(col.name);
    f.WriteU8(static_cast<uint8_t>(col.type));
    WriteZoneMap(col, &f);
    PutVarint(&f, col.offset);
    PutVarint(&f, col.length);
    f.WriteU32(col.crc);
  }
  const std::vector<uint8_t> footer_bytes = f.TakeBytes();
  w.AppendRaw(footer_bytes.data(), footer_bytes.size());
  w.WriteU32(static_cast<uint32_t>(footer_bytes.size()));
  w.WriteU32(Crc32(footer_bytes));
  w.WriteU32(kSegmentFooterMagic);

  MIP_RETURN_NOT_OK(WriteFileAtomic(path, w.bytes()));
  return footer;
}

Result<SegmentFooter> ReadSegmentFooter(const std::string& path) {
  MIP_ASSIGN_OR_RETURN(uint64_t size, FileSize(path));
  if (size < kSegmentHeaderBytes + kSegmentTrailerBytes) {
    return Corrupt(path, "file too small");
  }
  MIP_ASSIGN_OR_RETURN(std::vector<uint8_t> head,
                       ReadFileRange(path, 0, kSegmentHeaderBytes));
  MIP_RETURN_NOT_OK(CheckHeader(path, head.data(), head.size()));
  // One bounded tail read covers the trailer and (almost always) the whole
  // footer; re-read exactly when the footer is larger.
  const uint64_t tail_n = std::min<uint64_t>(size, 64 * 1024);
  MIP_ASSIGN_OR_RETURN(std::vector<uint8_t> tail,
                       ReadFileRange(path, size - tail_n, tail_n));
  auto parsed = CheckTail(path, size, tail, size - tail_n);
  if (!parsed.ok() &&
      parsed.status().message().find("longer than tail read") !=
          std::string::npos) {
    MIP_ASSIGN_OR_RETURN(tail, ReadFileBytes(path));
    parsed = CheckTail(path, size, tail, 0);
  }
  MIP_RETURN_NOT_OK(parsed.status());
  return ParseFooter(path, parsed->first, parsed->second);
}

Result<engine::Table> ReadSegmentData(const std::string& path,
                                      const SegmentFooter& footer) {
  MIP_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, ReadFileBytes(path));
  if (bytes.size() < kSegmentHeaderBytes + kSegmentTrailerBytes) {
    return Corrupt(path, "file too small");
  }
  MIP_RETURN_NOT_OK(CheckHeader(path, bytes.data(), bytes.size()));
  std::vector<Column> columns;
  Schema schema;
  for (const SegmentColumn& meta : footer.columns) {
    if (meta.offset > bytes.size() ||
        meta.length > bytes.size() - meta.offset) {
      return Corrupt(path, "column block out of bounds");
    }
    const uint8_t* block = bytes.data() + meta.offset;
    if (Crc32(block, static_cast<size_t>(meta.length)) != meta.crc) {
      return Corrupt(path, "column '" + meta.name + "' CRC mismatch");
    }
    MIP_ASSIGN_OR_RETURN(Column col,
                         DecodeColumnBlock(path, meta, block,
                                           footer.num_rows));
    MIP_RETURN_NOT_OK(schema.AddField(engine::Field{meta.name, meta.type}));
    columns.push_back(std::move(col));
  }
  return Table::Make(std::move(schema), std::move(columns));
}

Result<engine::Table> ReadSegment(const std::string& path) {
  MIP_ASSIGN_OR_RETURN(SegmentFooter footer, ReadSegmentFooter(path));
  return ReadSegmentData(path, footer);
}

// --- Zone-map pruning -------------------------------------------------------

namespace {

bool IsComparisonOp(engine::BinaryOp op) {
  switch (op) {
    case engine::BinaryOp::kEq:
    case engine::BinaryOp::kLt:
    case engine::BinaryOp::kLe:
    case engine::BinaryOp::kGt:
    case engine::BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

engine::BinaryOp MirrorOp(engine::BinaryOp op) {
  switch (op) {
    case engine::BinaryOp::kLt:
      return engine::BinaryOp::kGt;
    case engine::BinaryOp::kLe:
      return engine::BinaryOp::kGe;
    case engine::BinaryOp::kGt:
      return engine::BinaryOp::kLt;
    case engine::BinaryOp::kGe:
      return engine::BinaryOp::kLe;
    default:
      return op;  // kEq is symmetric
  }
}

void CollectConjuncts(const Expr& e, std::vector<PruneConjunct>* out) {
  if (e.kind != engine::ExprKind::kBinary) return;
  if (e.binary_op == engine::BinaryOp::kAnd) {
    for (const auto& a : e.args) CollectConjuncts(*a, out);
    return;
  }
  if (!IsComparisonOp(e.binary_op) || e.args.size() != 2) return;
  const Expr& l = *e.args[0];
  const Expr& r = *e.args[1];
  if (l.kind == engine::ExprKind::kColumnRef &&
      r.kind == engine::ExprKind::kLiteral && !r.literal.is_null()) {
    out->push_back({l.column_name, e.binary_op, r.literal});
  } else if (r.kind == engine::ExprKind::kColumnRef &&
             l.kind == engine::ExprKind::kLiteral && !l.literal.is_null()) {
    out->push_back({r.column_name, MirrorOp(e.binary_op), l.literal});
  }
}

/// Interval feasibility of `exists x in [min,max] : x op v` for a totally
/// ordered domain. Exact at the bounds: e.g. for kLt, min < v iff x=min is
/// a witness.
template <typename T>
bool RangeFeasible(const T& min, const T& max, const T& v,
                   engine::BinaryOp op) {
  switch (op) {
    case engine::BinaryOp::kEq:
      return !(v < min) && !(max < v);
    case engine::BinaryOp::kLt:
      return min < v;
    case engine::BinaryOp::kLe:
      return !(v < min);
    case engine::BinaryOp::kGt:
      return v < max;
    case engine::BinaryOp::kGe:
      return !(max < v);
    default:
      return true;
  }
}

/// Could any row of this segment column satisfy the conjunct, under the
/// engine's comparison semantics (numerics compared as doubles; NaN on
/// either side compares "equal", satisfying =, <=, >=)?
bool ConjunctFeasible(const SegmentColumn& col, uint64_t num_rows,
                      const PruneConjunct& c) {
  const ZoneMap& z = col.zone;
  const Value& lit = c.literal;
  if (z.null_count >= num_rows) return false;  // all NULL: nothing matches

  if (col.type == DataType::kString) {
    if (lit.kind() != Value::Kind::kString) return true;  // mixed: keep
    if (!z.has_range) return false;
    return RangeFeasible(z.min_s, z.max_s, lit.string_value(), c.op);
  }

  // Numeric column. Only numeric literals prune; a string literal routes
  // the engine through its string comparison path — keep conservatively.
  if (lit.kind() == Value::Kind::kString) return true;
  const double v = lit.AsDouble();
  const bool eq_like = c.op == engine::BinaryOp::kEq ||
                       c.op == engine::BinaryOp::kLe ||
                       c.op == engine::BinaryOp::kGe;
  if (std::isnan(v)) {
    // cmp(x, NaN) == 0 for every x: =, <=, >= match every non-null row;
    // <, > match none.
    return eq_like;
  }
  if (z.has_nan && eq_like) return true;  // a NaN cell matches any v
  if (!z.has_range) return false;
  double lo = 0.0, hi = 0.0;
  switch (col.type) {
    case DataType::kBool:
    case DataType::kInt64:
      // The engine compares cells as doubles; casting the exact integer
      // bounds is monotonic, so the double interval still contains every
      // converted cell value — the test stays conservative.
      lo = static_cast<double>(z.min_i);
      hi = static_cast<double>(z.max_i);
      break;
    default:
      lo = z.min_d;
      hi = z.max_d;
      break;
  }
  return RangeFeasible(lo, hi, v, c.op);
}

}  // namespace

std::vector<PruneConjunct> ExtractPruneConjuncts(const Expr& expr) {
  std::vector<PruneConjunct> out;
  CollectConjuncts(expr, &out);
  return out;
}

bool SegmentCanMatch(const SegmentFooter& footer,
                     const std::vector<PruneConjunct>& conjuncts) {
  if (footer.num_rows == 0) return false;  // empty segment: nothing to scan
  for (const PruneConjunct& c : conjuncts) {
    const SegmentColumn* col = nullptr;
    for (const SegmentColumn& candidate : footer.columns) {
      if (EqualsIgnoreCase(candidate.name, c.column)) {
        col = &candidate;
        break;
      }
    }
    if (col == nullptr) continue;  // unknown column: never prune on it
    if (!ConjunctFeasible(*col, footer.num_rows, c)) return false;
  }
  return true;
}

}  // namespace mip::storage
