#ifndef MIP_STORAGE_SEGMENT_H_
#define MIP_STORAGE_SEGMENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/expr.h"
#include "engine/table.h"

namespace mip::storage {

/// \brief Immutable, compressed, CRC-checked columnar segment files.
///
/// One segment holds one batch of rows for one table, columns encoded with
/// the engine's wire codecs (engine/encoding.h: dict / delta-varint / RLE /
/// XOR-double, smallest candidate wins). Layout, all integers little-endian:
///
///   u32 magic        "MSG1"
///   u8  version      1
///   -- one block per column, schema order:
///     u8      has_validity
///     [block] validity  (EncodeValidity, present iff has_validity)
///     [block] data      (EncodeInts/Doubles/Bools/Strings by column type)
///   -- footer:
///     varint  num_rows
///     varint  num_cols
///     per column:
///       string  name
///       u8      type          (DataType)
///       zone map:
///         varint null_count
///         u8     has_range    (any non-null — and for doubles non-NaN — value)
///         u8     has_nan      (any non-null NaN; doubles only)
///         typed  min, max     (i64 pair / double pair / string pair;
///                              present iff has_range)
///       varint  offset        (column block, absolute file offset)
///       varint  length        (column block byte count)
///       u32     crc32         (of the column block bytes)
///   -- trailer (fixed 12 bytes, so the footer is locatable from EOF):
///     u32 footer_len
///     u32 footer_crc   (of the footer bytes)
///     u32 magic        "MSGF"
///
/// Readers trust nothing: magics, versions, CRCs, counts, offsets and
/// lengths are all validated before any allocation or decode, and the
/// codec decoders underneath are the fuzz-hardened PR-4 ones — a truncated
/// or bit-flipped file yields a clean kIOError, never a crash or over-read.
///
/// NaN is excluded from double min/max on write and tracked as a separate
/// has_nan flag. The flag matters because of how this engine's comparison
/// kernels work: they compute cmp = (a<b) ? -1 : (a>b ? 1 : 0), so a NaN
/// operand yields cmp == 0 — a NaN cell therefore satisfies =, <= and >=
/// against ANY literal (and never satisfies < or >). SegmentCanMatch
/// mirrors those semantics exactly; pruning is only sound relative to the
/// engine it serves.
inline constexpr uint32_t kSegmentMagic = 0x3147534Du;   // "MSG1"
inline constexpr uint32_t kSegmentFooterMagic = 0x4647534Du;  // "MSGF"
inline constexpr uint8_t kSegmentVersion = 1;
inline constexpr size_t kSegmentHeaderBytes = 5;
inline constexpr size_t kSegmentTrailerBytes = 12;
inline constexpr uint64_t kMaxSegmentColumns = 4096;

/// Per-column min/max/null-count statistics.
struct ZoneMap {
  uint64_t null_count = 0;
  /// False when the column holds no non-null (for doubles: non-NaN) value
  /// in this segment.
  bool has_range = false;
  /// Any non-null NaN value (kFloat64 only). NaN rows satisfy =, <=, >=
  /// against every literal under this engine's comparison kernels.
  bool has_nan = false;
  int64_t min_i = 0, max_i = 0;        // kInt64 / kBool (0/1)
  double min_d = 0.0, max_d = 0.0;     // kFloat64, NaN excluded
  std::string min_s, max_s;            // kString
};

struct SegmentColumn {
  std::string name;
  engine::DataType type = engine::DataType::kFloat64;
  ZoneMap zone;
  uint64_t offset = 0;  // column block position in the file
  uint64_t length = 0;  // column block byte count
  uint32_t crc = 0;     // CRC-32 of the column block
};

struct SegmentFooter {
  uint64_t num_rows = 0;
  std::vector<SegmentColumn> columns;

  engine::Schema schema() const;
};

/// Computes the zone map of one column (NaN excluded for doubles).
ZoneMap ComputeZoneMap(const engine::Column& column);

/// Writes `table` as a segment file, crash-atomically (tmp + fsync +
/// rename). Returns the footer that was persisted.
Result<SegmentFooter> WriteSegment(const std::string& path,
                                   const engine::Table& table);

/// Reads and validates only the footer (header magic, trailer, footer CRC,
/// bounds of every column block) — the cheap path pruning and recovery use.
Result<SegmentFooter> ReadSegmentFooter(const std::string& path);

/// Full read: footer validation plus per-column CRC check and codec decode.
/// Every decoded count must equal num_rows.
Result<engine::Table> ReadSegment(const std::string& path);

/// Same, reusing an already-validated footer (the in-memory copy the store
/// caches for immutable segments).
Result<engine::Table> ReadSegmentData(const std::string& path,
                                      const SegmentFooter& footer);

/// \brief One zone-map-testable conjunct of a pruning hint:
/// `column <op> literal` with op in {=, <, <=, >, >=}.
struct PruneConjunct {
  std::string column;
  engine::BinaryOp op = engine::BinaryOp::kEq;
  engine::Value literal;
};

/// Splits an expression on AND and keeps the conjuncts of the form
/// `ColumnRef op Literal` (either side; swapped sides mirror the operator)
/// with op in {=, <, <=, >, >=} and a non-NULL literal. Everything else —
/// ORs, !=, IS NULL, function calls, column-to-column comparisons — is
/// dropped: a dropped conjunct is simply never used to prune, which keeps
/// the decision conservative (a kept Filter above the scan re-applies the
/// full predicate anyway).
std::vector<PruneConjunct> ExtractPruneConjuncts(const engine::Expr& expr);

/// True when some row of the segment *could* satisfy every conjunct —
/// the conservative zone-map test. False means provably zero matching rows
/// (the segment can be skipped). Conjuncts naming unknown columns or with
/// type-incompatible literals are ignored (treated as satisfiable).
bool SegmentCanMatch(const SegmentFooter& footer,
                     const std::vector<PruneConjunct>& conjuncts);

}  // namespace mip::storage

#endif  // MIP_STORAGE_SEGMENT_H_
