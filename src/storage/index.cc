#include "storage/index.h"

#include <algorithm>
#include <cmath>

#include "common/bytes.h"
#include "common/crc32.h"
#include "common/string_util.h"
#include "engine/encoding.h"
#include "storage/io.h"

namespace mip::storage {

using engine::BinaryOp;
using engine::Column;
using engine::DataType;
using engine::DecodeDoubles;
using engine::DecodeInts;
using engine::DecodeStrings;
using engine::EncodeDoubles;
using engine::EncodeInts;
using engine::EncodeStrings;
using engine::GetVarint;
using engine::kMaxWireElements;
using engine::PutVarint;
using engine::Value;

namespace {

Status Corrupt(const std::string& path, const std::string& why) {
  return Status::IOError("corrupt index '" + path + "': " + why);
}

bool EqLike(BinaryOp op) {
  return op == BinaryOp::kEq || op == BinaryOp::kLe || op == BinaryOp::kGe;
}

void TightenLo(KeyInterval* iv, double v, bool inclusive) {
  if (!iv->has_lo || v > iv->lo) {
    iv->has_lo = true;
    iv->lo = v;
    iv->lo_inclusive = inclusive;
  } else if (v == iv->lo && !inclusive) {
    iv->lo_inclusive = false;
  }
}

void TightenHi(KeyInterval* iv, double v, bool inclusive) {
  if (!iv->has_hi || v < iv->hi) {
    iv->has_hi = true;
    iv->hi = v;
    iv->hi_inclusive = inclusive;
  } else if (v == iv->hi && !inclusive) {
    iv->hi_inclusive = false;
  }
}

void TightenLoS(KeyInterval* iv, const std::string& v, bool inclusive) {
  if (!iv->has_lo || v > iv->lo_s) {
    iv->has_lo = true;
    iv->lo_s = v;
    iv->lo_inclusive = inclusive;
  } else if (v == iv->lo_s && !inclusive) {
    iv->lo_inclusive = false;
  }
}

void TightenHiS(KeyInterval* iv, const std::string& v, bool inclusive) {
  if (!iv->has_hi || v < iv->hi_s) {
    iv->has_hi = true;
    iv->hi_s = v;
    iv->hi_inclusive = inclusive;
  } else if (v == iv->hi_s && !inclusive) {
    iv->hi_inclusive = false;
  }
}

/// key below the interval's low bound (numeric domain).
bool BelowLo(const KeyInterval& iv, double k) {
  return iv.has_lo && (k < iv.lo || (k == iv.lo && !iv.lo_inclusive));
}
bool AboveHi(const KeyInterval& iv, double k) {
  return iv.has_hi && (k > iv.hi || (k == iv.hi && !iv.hi_inclusive));
}
bool BelowLoS(const KeyInterval& iv, const std::string& k) {
  return iv.has_lo && (k < iv.lo_s || (k == iv.lo_s && !iv.lo_inclusive));
}
bool AboveHiS(const KeyInterval& iv, const std::string& k) {
  return iv.has_hi && (k > iv.hi_s || (k == iv.hi_s && !iv.hi_inclusive));
}

}  // namespace

KeyInterval BuildKeyInterval(DataType type, const std::string& column,
                             const std::vector<PruneConjunct>& conjuncts) {
  KeyInterval iv;
  for (const PruneConjunct& c : conjuncts) {
    if (!EqualsIgnoreCase(c.column, column)) continue;
    if (type == DataType::kString) {
      // Mixed-type comparisons route the engine through paths the index
      // cannot mirror exactly; ignoring the conjunct only widens the count.
      if (c.literal.kind() != Value::Kind::kString) continue;
      const std::string& v = c.literal.string_value();
      switch (c.op) {
        case BinaryOp::kEq:
          TightenLoS(&iv, v, true);
          TightenHiS(&iv, v, true);
          break;
        case BinaryOp::kLt:
          TightenHiS(&iv, v, false);
          break;
        case BinaryOp::kLe:
          TightenHiS(&iv, v, true);
          break;
        case BinaryOp::kGt:
          TightenLoS(&iv, v, false);
          break;
        case BinaryOp::kGe:
          TightenLoS(&iv, v, true);
          break;
        default:
          continue;
      }
      iv.restricts = true;
      continue;
    }
    // Numeric column: the engine compares cells to the literal as doubles.
    if (c.literal.kind() == Value::Kind::kString) continue;
    const double v = c.literal.AsDouble();
    if (std::isnan(v)) {
      // cmp(x, NaN) == 0 for every x: eq-like ops match every non-null row
      // (no restriction); < and > match nothing at all.
      if (!EqLike(c.op)) {
        iv.empty = true;
        iv.include_nan = false;
        iv.restricts = true;
      }
      continue;
    }
    if (!EqLike(c.op)) iv.include_nan = false;  // NaN cells fail < and >
    switch (c.op) {
      case BinaryOp::kEq:
        TightenLo(&iv, v, true);
        TightenHi(&iv, v, true);
        break;
      case BinaryOp::kLt:
        TightenHi(&iv, v, false);
        break;
      case BinaryOp::kLe:
        TightenHi(&iv, v, true);
        break;
      case BinaryOp::kGt:
        TightenLo(&iv, v, false);
        break;
      case BinaryOp::kGe:
        TightenLo(&iv, v, true);
        break;
      default:
        continue;
    }
    iv.restricts = true;
  }
  if (iv.has_lo && iv.has_hi) {
    const bool contradictory =
        type == DataType::kString
            ? (iv.lo_s > iv.hi_s ||
               (iv.lo_s == iv.hi_s && !(iv.lo_inclusive && iv.hi_inclusive)))
            : (iv.lo > iv.hi ||
               (iv.lo == iv.hi && !(iv.lo_inclusive && iv.hi_inclusive)));
    if (contradictory) iv.empty = true;
  }
  return iv;
}

// --- Writing ---------------------------------------------------------------

namespace {

struct EntryI {
  int64_t key;
  int64_t row;
};
struct EntryD {
  double key;
  int64_t row;
};
struct EntryS {
  std::string key;
  int64_t row;
};

void WriteBlockKey(DataType type, const IndexBlock& b, bool first,
                   BufferWriter* w) {
  switch (type) {
    case DataType::kBool:
    case DataType::kInt64:
      w->WriteI64(first ? b.first_i : b.last_i);
      break;
    case DataType::kFloat64:
      w->WriteDouble(first ? b.first_d : b.last_d);
      break;
    case DataType::kString:
      w->WriteString(first ? b.first_s : b.last_s);
      break;
  }
}

Status ReadBlockKey(DataType type, bool first, BufferReader* r,
                    IndexBlock* b) {
  switch (type) {
    case DataType::kBool:
    case DataType::kInt64: {
      MIP_ASSIGN_OR_RETURN(int64_t v, r->ReadI64());
      (first ? b->first_i : b->last_i) = v;
      break;
    }
    case DataType::kFloat64: {
      MIP_ASSIGN_OR_RETURN(double v, r->ReadDouble());
      if (std::isnan(v)) return Status::IOError("NaN block key");
      (first ? b->first_d : b->last_d) = v;
      break;
    }
    case DataType::kString: {
      MIP_ASSIGN_OR_RETURN(std::string v, r->ReadString());
      (first ? b->first_s : b->last_s) = std::move(v);
      break;
    }
  }
  return Status::OK();
}

}  // namespace

Result<IndexFooter> WriteIndex(const std::string& path,
                               const std::string& column_name,
                               const Column& column) {
  if (column.length() > kMaxWireElements) {
    return Status::InvalidArgument("index batch exceeds row cap");
  }
  IndexFooter footer;
  footer.column = column_name;
  footer.type = column.type();
  footer.num_rows = column.length();

  // Gather the sorted (key, row-id) run. NULLs are excluded (they never
  // pass a comparison filter); NaNs go to the side list.
  std::vector<EntryI> ints;
  std::vector<EntryD> doubles;
  std::vector<EntryS> strings;
  std::vector<int64_t> nan_rows;
  for (size_t i = 0; i < column.length(); ++i) {
    if (!column.IsValid(i)) continue;
    const int64_t row = static_cast<int64_t>(i);
    switch (column.type()) {
      case DataType::kBool:
        ints.push_back({column.BoolAt(i) ? 1 : 0, row});
        break;
      case DataType::kInt64:
        ints.push_back({column.IntAt(i), row});
        break;
      case DataType::kFloat64: {
        const double v = column.DoubleAt(i);
        if (std::isnan(v)) {
          nan_rows.push_back(row);
        } else {
          doubles.push_back({v, row});
        }
        break;
      }
      case DataType::kString:
        strings.push_back({column.StringAt(i), row});
        break;
    }
  }
  std::sort(ints.begin(), ints.end(), [](const EntryI& a, const EntryI& b) {
    return a.key != b.key ? a.key < b.key : a.row < b.row;
  });
  std::sort(doubles.begin(), doubles.end(),
            [](const EntryD& a, const EntryD& b) {
              return a.key != b.key ? a.key < b.key : a.row < b.row;
            });
  std::sort(strings.begin(), strings.end(),
            [](const EntryS& a, const EntryS& b) {
              return a.key != b.key ? a.key < b.key : a.row < b.row;
            });
  footer.num_entries = ints.size() + doubles.size() + strings.size();
  footer.nan_count = nan_rows.size();

  BufferWriter w;
  w.WriteU32(kIndexMagic);
  w.WriteU8(kIndexVersion);

  const uint64_t n = footer.num_entries;
  for (uint64_t off = 0; off < n; off += kIndexBlockEntries) {
    const uint64_t count = std::min<uint64_t>(kIndexBlockEntries, n - off);
    IndexBlock block;
    block.count = count;
    BufferWriter body;
    std::vector<int64_t> row_ids;
    row_ids.reserve(static_cast<size_t>(count));
    switch (footer.type) {
      case DataType::kBool:
      case DataType::kInt64: {
        std::vector<int64_t> keys;
        keys.reserve(static_cast<size_t>(count));
        for (uint64_t k = 0; k < count; ++k) {
          keys.push_back(ints[off + k].key);
          row_ids.push_back(ints[off + k].row);
        }
        block.first_i = keys.front();
        block.last_i = keys.back();
        EncodeInts(keys, &body);
        break;
      }
      case DataType::kFloat64: {
        std::vector<double> keys;
        keys.reserve(static_cast<size_t>(count));
        for (uint64_t k = 0; k < count; ++k) {
          keys.push_back(doubles[off + k].key);
          row_ids.push_back(doubles[off + k].row);
        }
        block.first_d = keys.front();
        block.last_d = keys.back();
        EncodeDoubles(keys, &body);
        break;
      }
      case DataType::kString: {
        std::vector<std::string> keys;
        keys.reserve(static_cast<size_t>(count));
        for (uint64_t k = 0; k < count; ++k) {
          keys.push_back(strings[off + k].key);
          row_ids.push_back(strings[off + k].row);
        }
        block.first_s = keys.front();
        block.last_s = keys.back();
        EncodeStrings(keys, &body);
        break;
      }
    }
    EncodeInts(row_ids, &body);
    const std::vector<uint8_t> bytes = body.TakeBytes();
    block.offset = w.size();
    block.length = bytes.size();
    block.crc = Crc32(bytes);
    w.AppendRaw(bytes.data(), bytes.size());
    footer.blocks.push_back(std::move(block));
  }

  if (!nan_rows.empty()) {
    BufferWriter body;
    EncodeInts(nan_rows, &body);
    const std::vector<uint8_t> bytes = body.TakeBytes();
    footer.nan_offset = w.size();
    footer.nan_length = bytes.size();
    footer.nan_crc = Crc32(bytes);
    w.AppendRaw(bytes.data(), bytes.size());
  }

  BufferWriter f;
  f.WriteString(footer.column);
  f.WriteU8(static_cast<uint8_t>(footer.type));
  PutVarint(&f, footer.num_rows);
  PutVarint(&f, footer.num_entries);
  PutVarint(&f, footer.nan_count);
  if (footer.nan_count > 0) {
    PutVarint(&f, footer.nan_offset);
    PutVarint(&f, footer.nan_length);
    f.WriteU32(footer.nan_crc);
  }
  PutVarint(&f, footer.blocks.size());
  for (const IndexBlock& b : footer.blocks) {
    WriteBlockKey(footer.type, b, true, &f);
    WriteBlockKey(footer.type, b, false, &f);
    PutVarint(&f, b.count);
    PutVarint(&f, b.offset);
    PutVarint(&f, b.length);
    f.WriteU32(b.crc);
  }
  const std::vector<uint8_t> footer_bytes = f.TakeBytes();
  w.AppendRaw(footer_bytes.data(), footer_bytes.size());
  w.WriteU32(static_cast<uint32_t>(footer_bytes.size()));
  w.WriteU32(Crc32(footer_bytes));
  w.WriteU32(kIndexFooterMagic);

  MIP_RETURN_NOT_OK(WriteFileAtomic(path, w.bytes()));
  return footer;
}

// --- Reading ---------------------------------------------------------------

namespace {

/// Validates the global order between consecutive blocks: a.last <= b.first.
bool BlocksOrdered(DataType type, const IndexBlock& a, const IndexBlock& b) {
  switch (type) {
    case DataType::kBool:
    case DataType::kInt64:
      return a.last_i <= b.first_i;
    case DataType::kFloat64:
      return a.last_d <= b.first_d;
    case DataType::kString:
      return a.last_s <= b.first_s;
  }
  return false;
}

/// first_key <= last_key within one block.
bool BlockSelfOrdered(DataType type, const IndexBlock& b) {
  switch (type) {
    case DataType::kBool:
    case DataType::kInt64:
      return b.first_i <= b.last_i;
    case DataType::kFloat64:
      return b.first_d <= b.last_d;
    case DataType::kString:
      return b.first_s <= b.last_s;
  }
  return false;
}

Result<IndexFooter> ParseIndexFooter(const std::string& path,
                                     const std::vector<uint8_t>& footer_bytes,
                                     uint64_t footer_start) {
  BufferReader r(footer_bytes);
  IndexFooter footer;
  MIP_ASSIGN_OR_RETURN(footer.column, r.ReadString());
  MIP_ASSIGN_OR_RETURN(uint8_t type_byte, r.ReadU8());
  if (type_byte > static_cast<uint8_t>(DataType::kString)) {
    return Corrupt(path, "bad column type byte");
  }
  footer.type = static_cast<DataType>(type_byte);
  MIP_ASSIGN_OR_RETURN(footer.num_rows, GetVarint(&r));
  MIP_ASSIGN_OR_RETURN(footer.num_entries, GetVarint(&r));
  MIP_ASSIGN_OR_RETURN(footer.nan_count, GetVarint(&r));
  if (footer.num_rows > kMaxWireElements ||
      footer.num_entries > footer.num_rows ||
      footer.nan_count > footer.num_rows - footer.num_entries) {
    return Corrupt(path, "entry counts exceed row count");
  }
  if (footer.nan_count > 0 && footer.type != DataType::kFloat64) {
    return Corrupt(path, "NaN list on a non-double column");
  }
  if (footer.nan_count > 0) {
    MIP_ASSIGN_OR_RETURN(footer.nan_offset, GetVarint(&r));
    MIP_ASSIGN_OR_RETURN(footer.nan_length, GetVarint(&r));
    MIP_ASSIGN_OR_RETURN(footer.nan_crc, r.ReadU32());
    if (footer.nan_offset < kIndexHeaderBytes ||
        footer.nan_offset > footer_start ||
        footer.nan_length > footer_start - footer.nan_offset) {
      return Corrupt(path, "NaN block out of bounds");
    }
  }
  MIP_ASSIGN_OR_RETURN(uint64_t num_blocks, GetVarint(&r));
  if (num_blocks > kMaxIndexBlocks) {
    return Corrupt(path, "block count exceeds cap");
  }
  uint64_t total = 0;
  for (uint64_t i = 0; i < num_blocks; ++i) {
    IndexBlock b;
    MIP_RETURN_NOT_OK(ReadBlockKey(footer.type, true, &r, &b));
    MIP_RETURN_NOT_OK(ReadBlockKey(footer.type, false, &r, &b));
    MIP_ASSIGN_OR_RETURN(b.count, GetVarint(&r));
    MIP_ASSIGN_OR_RETURN(b.offset, GetVarint(&r));
    MIP_ASSIGN_OR_RETURN(b.length, GetVarint(&r));
    MIP_ASSIGN_OR_RETURN(b.crc, r.ReadU32());
    if (b.count == 0 || b.count > kIndexBlockEntries) {
      return Corrupt(path, "bad block entry count");
    }
    if (b.offset < kIndexHeaderBytes || b.offset > footer_start ||
        b.length > footer_start - b.offset) {
      return Corrupt(path, "block out of bounds");
    }
    if (!BlockSelfOrdered(footer.type, b)) {
      return Corrupt(path, "block first key after last key");
    }
    if (!footer.blocks.empty() &&
        !BlocksOrdered(footer.type, footer.blocks.back(), b)) {
      return Corrupt(path, "blocks out of key order");
    }
    total += b.count;
    footer.blocks.push_back(std::move(b));
  }
  if (total != footer.num_entries) {
    return Corrupt(path, "block counts disagree with num_entries");
  }
  if (!r.AtEnd()) return Corrupt(path, "trailing bytes after footer");
  return footer;
}

Status CheckIndexHeader(const std::string& path, const uint8_t* data,
                        size_t n) {
  BufferReader r(data, n);
  MIP_ASSIGN_OR_RETURN(uint32_t magic, r.ReadU32());
  if (magic != kIndexMagic) return Corrupt(path, "bad index magic");
  MIP_ASSIGN_OR_RETURN(uint8_t version, r.ReadU8());
  if (version != kIndexVersion) {
    return Corrupt(path,
                   "unsupported index version " + std::to_string(version));
  }
  return Status::OK();
}

Result<std::pair<std::vector<uint8_t>, uint64_t>> CheckIndexTail(
    const std::string& path, uint64_t file_size,
    const std::vector<uint8_t>& tail, uint64_t tail_offset) {
  if (tail.size() < kIndexTrailerBytes) {
    return Corrupt(path, "file too small for trailer");
  }
  BufferReader tr(tail.data() + tail.size() - kIndexTrailerBytes,
                  kIndexTrailerBytes);
  MIP_ASSIGN_OR_RETURN(uint32_t footer_len, tr.ReadU32());
  MIP_ASSIGN_OR_RETURN(uint32_t footer_crc, tr.ReadU32());
  MIP_ASSIGN_OR_RETURN(uint32_t magic, tr.ReadU32());
  if (magic != kIndexFooterMagic) {
    return Corrupt(path, "bad footer magic");
  }
  if (footer_len > file_size - kIndexHeaderBytes - kIndexTrailerBytes) {
    return Corrupt(path, "footer length out of bounds");
  }
  const uint64_t footer_start = file_size - kIndexTrailerBytes - footer_len;
  if (footer_start < tail_offset) {
    return Corrupt(path, "footer longer than tail read");
  }
  const size_t in_tail = static_cast<size_t>(footer_start - tail_offset);
  std::vector<uint8_t> footer_bytes(tail.begin() + in_tail,
                                    tail.end() - kIndexTrailerBytes);
  if (Crc32(footer_bytes) != footer_crc) {
    return Corrupt(path, "footer CRC mismatch");
  }
  return std::make_pair(std::move(footer_bytes), footer_start);
}

struct DecodedBlock {
  std::vector<int64_t> key_i;
  std::vector<double> key_d;
  std::vector<std::string> key_s;
  std::vector<int64_t> rows;
};

Result<DecodedBlock> ReadBlock(const std::string& path,
                               const IndexFooter& footer,
                               const IndexBlock& block) {
  MIP_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes,
                       ReadFileRange(path, block.offset, block.length));
  if (Crc32(bytes) != block.crc) return Corrupt(path, "block CRC mismatch");
  BufferReader r(bytes);
  DecodedBlock out;
  size_t n = 0;
  switch (footer.type) {
    case DataType::kBool:
    case DataType::kInt64: {
      MIP_ASSIGN_OR_RETURN(out.key_i, DecodeInts(&r));
      n = out.key_i.size();
      break;
    }
    case DataType::kFloat64: {
      MIP_ASSIGN_OR_RETURN(out.key_d, DecodeDoubles(&r));
      n = out.key_d.size();
      break;
    }
    case DataType::kString: {
      MIP_ASSIGN_OR_RETURN(out.key_s, DecodeStrings(&r));
      n = out.key_s.size();
      break;
    }
  }
  MIP_ASSIGN_OR_RETURN(out.rows, DecodeInts(&r));
  if (n != block.count || out.rows.size() != block.count) {
    return Corrupt(path, "block entry count mismatch");
  }
  if (!r.AtEnd()) return Corrupt(path, "trailing bytes in block");
  return out;
}

}  // namespace

Result<IndexFooter> ReadIndexFooter(const std::string& path) {
  MIP_ASSIGN_OR_RETURN(uint64_t size, FileSize(path));
  if (size < kIndexHeaderBytes + kIndexTrailerBytes) {
    return Corrupt(path, "file too small");
  }
  MIP_ASSIGN_OR_RETURN(std::vector<uint8_t> head,
                       ReadFileRange(path, 0, kIndexHeaderBytes));
  MIP_RETURN_NOT_OK(CheckIndexHeader(path, head.data(), head.size()));
  const uint64_t tail_n = std::min<uint64_t>(size, 64 * 1024);
  MIP_ASSIGN_OR_RETURN(std::vector<uint8_t> tail,
                       ReadFileRange(path, size - tail_n, tail_n));
  auto parsed = CheckIndexTail(path, size, tail, size - tail_n);
  if (!parsed.ok() &&
      parsed.status().message().find("longer than tail read") !=
          std::string::npos) {
    MIP_ASSIGN_OR_RETURN(tail, ReadFileBytes(path));
    parsed = CheckIndexTail(path, size, tail, 0);
  }
  MIP_RETURN_NOT_OK(parsed.status());
  return ParseIndexFooter(path, parsed->first, parsed->second);
}

Result<IndexProbe> ProbeIndex(const std::string& path,
                              const IndexFooter& footer,
                              const KeyInterval& interval) {
  IndexProbe probe;
  const uint64_t nan_part = interval.include_nan ? footer.nan_count : 0;
  if (interval.empty) {
    probe.candidates = nan_part;
    return probe;
  }
  if (!interval.restricts) {
    probe.candidates = footer.num_entries + footer.nan_count;
    return probe;
  }
  const bool is_string = footer.type == DataType::kString;
  for (const IndexBlock& b : footer.blocks) {
    // Block key ranges vs the interval: skip blocks entirely outside, count
    // blocks entirely inside from the footer alone, decode only straddlers.
    const double first_d = footer.type == DataType::kFloat64
                               ? b.first_d
                               : static_cast<double>(b.first_i);
    const double last_d = footer.type == DataType::kFloat64
                              ? b.last_d
                              : static_cast<double>(b.last_i);
    const bool all_above =
        is_string ? BelowLoS(interval, b.last_s) : BelowLo(interval, last_d);
    if (all_above) continue;  // whole block below the interval
    const bool past_hi =
        is_string ? AboveHiS(interval, b.first_s) : AboveHi(interval, first_d);
    if (past_hi) break;  // sorted: this and every later block are above
    const bool inside =
        is_string ? (!BelowLoS(interval, b.first_s) &&
                     !AboveHiS(interval, b.last_s))
                  : (!BelowLo(interval, first_d) && !AboveHi(interval, last_d));
    if (inside) {
      probe.candidates += b.count;
      continue;
    }
    MIP_ASSIGN_OR_RETURN(DecodedBlock decoded, ReadBlock(path, footer, b));
    ++probe.blocks_read;
    for (uint64_t k = 0; k < b.count; ++k) {
      bool in;
      if (is_string) {
        const std::string& key = decoded.key_s[k];
        in = !BelowLoS(interval, key) && !AboveHiS(interval, key);
      } else {
        const double key = footer.type == DataType::kFloat64
                               ? decoded.key_d[k]
                               : static_cast<double>(decoded.key_i[k]);
        in = !BelowLo(interval, key) && !AboveHi(interval, key);
      }
      if (in) ++probe.candidates;
    }
  }
  probe.candidates += nan_part;
  return probe;
}

Status VerifyIndex(const std::string& path, const IndexFooter& footer) {
  // Re-validate the on-disk footer (the cached copy may predate on-disk
  // corruption), then audit every block.
  MIP_ASSIGN_OR_RETURN(IndexFooter disk, ReadIndexFooter(path));
  if (disk.column != footer.column || disk.type != footer.type ||
      disk.num_rows != footer.num_rows ||
      disk.num_entries != footer.num_entries ||
      disk.nan_count != footer.nan_count ||
      disk.blocks.size() != footer.blocks.size()) {
    return Corrupt(path, "footer disagrees with manifest-cached copy");
  }
  bool have_prev = false;
  int64_t prev_i = 0;
  double prev_d = 0.0;
  std::string prev_s;
  int64_t prev_row = 0;
  for (const IndexBlock& b : disk.blocks) {
    MIP_ASSIGN_OR_RETURN(DecodedBlock decoded, ReadBlock(path, disk, b));
    for (uint64_t k = 0; k < b.count; ++k) {
      const int64_t row = decoded.rows[k];
      if (row < 0 || static_cast<uint64_t>(row) >= disk.num_rows) {
        return Corrupt(path, "row id out of range");
      }
      // Strict (key, row-id) order also proves row-id uniqueness.
      bool ordered = true;
      switch (disk.type) {
        case DataType::kBool:
        case DataType::kInt64: {
          const int64_t key = decoded.key_i[k];
          if (have_prev) {
            ordered = prev_i < key || (prev_i == key && prev_row < row);
          }
          prev_i = key;
          break;
        }
        case DataType::kFloat64: {
          const double key = decoded.key_d[k];
          if (std::isnan(key)) return Corrupt(path, "NaN entry key");
          if (have_prev) {
            ordered = prev_d < key || (prev_d == key && prev_row < row);
          }
          prev_d = key;
          break;
        }
        case DataType::kString: {
          const std::string& key = decoded.key_s[k];
          if (have_prev) {
            ordered = prev_s < key || (prev_s == key && prev_row < row);
          }
          prev_s = key;
          break;
        }
      }
      if (!ordered) return Corrupt(path, "entries out of (key, row) order");
      prev_row = row;
      have_prev = true;
    }
  }
  if (disk.nan_count > 0) {
    MIP_ASSIGN_OR_RETURN(
        std::vector<uint8_t> bytes,
        ReadFileRange(path, disk.nan_offset, disk.nan_length));
    if (Crc32(bytes) != disk.nan_crc) {
      return Corrupt(path, "NaN block CRC mismatch");
    }
    BufferReader r(bytes);
    MIP_ASSIGN_OR_RETURN(std::vector<int64_t> rows, DecodeInts(&r));
    if (rows.size() != disk.nan_count || !r.AtEnd()) {
      return Corrupt(path, "NaN block count mismatch");
    }
    for (int64_t row : rows) {
      if (row < 0 || static_cast<uint64_t>(row) >= disk.num_rows) {
        return Corrupt(path, "NaN row id out of range");
      }
    }
  }
  return Status::OK();
}

}  // namespace mip::storage
