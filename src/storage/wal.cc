#include "storage/wal.h"

#include "common/bytes.h"
#include "common/crc32.h"
#include "storage/io.h"

namespace mip::storage {

Status AppendWalRecord(const std::string& path,
                       const std::string& table_name,
                       const engine::Table& rows) {
  BufferWriter payload;
  payload.WriteU8(kWalRecordAppend);
  payload.WriteString(table_name);
  BufferWriter table_bytes;
  engine::SerializeTable(rows, &table_bytes);
  payload.WriteBytes(table_bytes.bytes());
  const std::vector<uint8_t>& p = payload.bytes();
  if (p.size() > kMaxWalRecordBytes) {
    return Status::InvalidArgument("WAL record exceeds size cap");
  }
  BufferWriter record;
  record.Reserve(8 + p.size());
  record.WriteU32(static_cast<uint32_t>(p.size()));
  record.WriteU32(Crc32(p));
  record.AppendRaw(p.data(), p.size());
  return AppendFileSync(path, record.bytes());
}

Result<WalReplay> ReplayWal(const std::string& path) {
  WalReplay replay;
  if (!FileExists(path)) return replay;
  MIP_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, ReadFileBytes(path));
  BufferReader r(bytes);
  while (!r.AtEnd()) {
    const uint64_t record_start = bytes.size() - r.Remaining();
    auto parse_one = [&]() -> Result<WalRecord> {
      MIP_ASSIGN_OR_RETURN(uint32_t length, r.ReadU32());
      if (length > kMaxWalRecordBytes) {
        return Status::IOError("hostile WAL record length");
      }
      MIP_ASSIGN_OR_RETURN(uint32_t crc, r.ReadU32());
      if (length > r.Remaining()) {
        return Status::IOError("truncated WAL record");
      }
      std::vector<uint8_t> payload(length);
      MIP_RETURN_NOT_OK(r.ReadRawBytes(payload.data(), length));
      if (Crc32(payload) != crc) {
        return Status::IOError("WAL record CRC mismatch");
      }
      BufferReader pr(payload);
      MIP_ASSIGN_OR_RETURN(uint8_t type, pr.ReadU8());
      if (type != kWalRecordAppend) {
        return Status::IOError("unknown WAL record type");
      }
      WalRecord record;
      MIP_ASSIGN_OR_RETURN(record.table_name, pr.ReadString());
      MIP_ASSIGN_OR_RETURN(std::vector<uint8_t> table_bytes, pr.ReadBytes());
      BufferReader tr(table_bytes);
      MIP_ASSIGN_OR_RETURN(record.rows, engine::DeserializeTable(&tr));
      if (!pr.AtEnd()) {
        return Status::IOError("trailing bytes in WAL payload");
      }
      return record;
    };
    Result<WalRecord> record = parse_one();
    if (!record.ok()) {
      // Torn tail: drop the suffix (it was never acknowledged).
      replay.valid_bytes = record_start;
      replay.torn = true;
      return replay;
    }
    replay.records.push_back(std::move(*record));
    replay.valid_bytes = bytes.size() - r.Remaining();
  }
  return replay;
}

}  // namespace mip::storage
