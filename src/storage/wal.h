#ifndef MIP_STORAGE_WAL_H_
#define MIP_STORAGE_WAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/table.h"

namespace mip::storage {

/// \brief Write-ahead log for the LSM ingest path.
///
/// One WAL file (`wal-<id>.log`) per manifest epoch. Records are appended
/// and fsynced BEFORE the batch is applied to the memtable, so every
/// acknowledged append survives a crash. Record layout:
///
///   u32 length   payload byte count
///   u32 crc32    CRC-32 of the payload
///   payload:
///     u8     record type (1 = append)
///     string table name
///     bytes  SerializeTable(batch) — the compressed v2 table container
///
/// Replay walks records until EOF or the first record that fails any check
/// (short header, hostile length, CRC mismatch, undecodable payload). That
/// suffix is a torn tail from a mid-write crash: it was never acknowledged,
/// so recovery truncates it and keeps everything before it — committed rows
/// intact, uncommitted rows absent.
inline constexpr uint8_t kWalRecordAppend = 1;
inline constexpr uint32_t kMaxWalRecordBytes = 256u << 20;  // 256 MiB

struct WalRecord {
  std::string table_name;
  engine::Table rows;
};

struct WalReplay {
  std::vector<WalRecord> records;
  /// Byte length of the valid prefix; anything beyond is torn.
  uint64_t valid_bytes = 0;
  bool torn = false;
};

/// Appends one record and fsyncs. Creates the file when absent.
Status AppendWalRecord(const std::string& path,
                       const std::string& table_name,
                       const engine::Table& rows);

/// Replays a WAL file (missing file = empty replay). Never fails on a torn
/// tail — that is the expected crash artifact — but does fail with kIOError
/// on filesystem errors.
Result<WalReplay> ReplayWal(const std::string& path);

}  // namespace mip::storage

#endif  // MIP_STORAGE_WAL_H_
