#include "storage/io.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

namespace mip::storage {

namespace {

Status IOErrorFromErrno(const std::string& op, const std::string& path) {
  return Status::IOError(op + " '" + path + "': " + std::strerror(errno));
}

/// fsyncs the directory containing `path` so a just-renamed entry survives
/// a crash.
Status SyncParentDir(const std::string& path) {
  std::string dir = ".";
  const size_t slash = path.find_last_of('/');
  if (slash != std::string::npos) dir = path.substr(0, slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return IOErrorFromErrno("open dir", dir);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return IOErrorFromErrno("fsync dir", dir);
  return Status::OK();
}

Status WriteAll(int fd, const uint8_t* data, size_t n,
                const std::string& path) {
  size_t off = 0;
  while (off < n) {
    const ssize_t w = ::write(fd, data + off, n - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      return IOErrorFromErrno("write", path);
    }
    off += static_cast<size_t>(w);
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<uint8_t>> ReadFileBytes(const std::string& path) {
  MIP_ASSIGN_OR_RETURN(uint64_t size, FileSize(path));
  return ReadFileRange(path, 0, size);
}

Result<std::vector<uint8_t>> ReadFileRange(const std::string& path,
                                           uint64_t offset, uint64_t n) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return IOErrorFromErrno("open", path);
  std::vector<uint8_t> out(n);
  size_t got = 0;
  while (got < n) {
    const ssize_t r = ::pread(fd, out.data() + got, n - got,
                              static_cast<off_t>(offset + got));
    if (r < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return IOErrorFromErrno("read", path);
    }
    if (r == 0) {
      ::close(fd);
      return Status::IOError("read '" + path + "': unexpected EOF at " +
                             std::to_string(offset + got));
    }
    got += static_cast<size_t>(r);
  }
  ::close(fd);
  return out;
}

Result<uint64_t> FileSize(const std::string& path) {
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) return IOErrorFromErrno("stat", path);
  return static_cast<uint64_t>(st.st_size);
}

bool FileExists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

Status WriteFileAtomic(const std::string& path,
                       const std::vector<uint8_t>& bytes) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return IOErrorFromErrno("open", tmp);
  Status st = WriteAll(fd, bytes.data(), bytes.size(), tmp);
  if (st.ok() && ::fsync(fd) != 0) st = IOErrorFromErrno("fsync", tmp);
  ::close(fd);
  if (!st.ok()) {
    ::unlink(tmp.c_str());
    return st;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const Status rs = IOErrorFromErrno("rename", tmp);
    ::unlink(tmp.c_str());
    return rs;
  }
  return SyncParentDir(path);
}

Status AppendFileSync(const std::string& path,
                      const std::vector<uint8_t>& bytes) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return IOErrorFromErrno("open", path);
  Status st = WriteAll(fd, bytes.data(), bytes.size(), path);
  if (st.ok() && ::fsync(fd) != 0) st = IOErrorFromErrno("fsync", path);
  ::close(fd);
  return st;
}

Status TruncateFile(const std::string& path, uint64_t size) {
  if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
    return IOErrorFromErrno("truncate", path);
  }
  return Status::OK();
}

Status RemoveFile(const std::string& path) {
  if (::unlink(path.c_str()) != 0) return IOErrorFromErrno("unlink", path);
  return Status::OK();
}

Status EnsureDir(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST) {
    return Status::OK();
  }
  return IOErrorFromErrno("mkdir", path);
}

Result<std::vector<std::string>> ListDir(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return IOErrorFromErrno("opendir", dir);
  std::vector<std::string> names;
  while (struct dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name == "." || name == "..") continue;
    names.push_back(name);
  }
  ::closedir(d);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace mip::storage
