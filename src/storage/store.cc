#include "storage/store.h"

#include <algorithm>
#include <map>
#include <mutex>
#include <set>

#include "common/string_util.h"
#include "storage/io.h"
#include "storage/wal.h"

namespace mip::storage {

namespace {

/// Rough in-memory footprint of a batch — drives the flush threshold, so
/// only the order of magnitude matters.
uint64_t EstimateTableBytes(const engine::Table& table) {
  uint64_t bytes = 0;
  for (size_t c = 0; c < table.num_columns(); ++c) {
    const engine::Column& col = table.column(c);
    switch (col.type()) {
      case engine::DataType::kBool:
        bytes += table.num_rows();
        break;
      case engine::DataType::kInt64:
      case engine::DataType::kFloat64:
        bytes += 8 * table.num_rows();
        break;
      case engine::DataType::kString:
        for (const std::string& s : col.strings()) bytes += 16 + s.size();
        break;
    }
    if (col.has_validity()) bytes += table.num_rows() / 8 + 1;
  }
  return bytes;
}

bool SchemasCompatible(const engine::Schema& a, const engine::Schema& b) {
  if (a.num_fields() != b.num_fields()) return false;
  for (size_t i = 0; i < a.num_fields(); ++i) {
    if (a.field(i).type != b.field(i).type) return false;
    if (!EqualsIgnoreCase(a.field(i).name, b.field(i).name)) return false;
  }
  return true;
}

bool IsReservedColumn(const std::string& name) {
  const std::string prefix = kReservedColumnPrefix;
  return ToLower(name).compare(0, prefix.size(), prefix) == 0;
}

/// Rebuilds `rows` under the table's canonical schema (field names may
/// differ only in case; types were already checked).
Result<engine::Table> Canonicalize(const engine::Schema& canonical,
                                   const engine::Table& rows) {
  std::vector<engine::Column> columns;
  columns.reserve(rows.num_columns());
  for (size_t c = 0; c < rows.num_columns(); ++c) {
    columns.push_back(rows.column(c));
  }
  return engine::Table::Make(canonical, std::move(columns));
}

/// Parses "<prefix><decimal id><suffix>", e.g. seg-12.mip / wal-3.log.
bool ParseIdFileName(const std::string& name, const std::string& prefix,
                     const std::string& suffix, uint64_t* id) {
  if (name.size() <= prefix.size() + suffix.size()) return false;
  if (name.compare(0, prefix.size(), prefix) != 0) return false;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return false;
  }
  const std::string digits =
      name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
  uint64_t v = 0;
  for (char ch : digits) {
    if (ch < '0' || ch > '9') return false;
    v = v * 10 + static_cast<uint64_t>(ch - '0');
  }
  *id = v;
  return true;
}

bool HasSuffix(const std::string& name, const std::string& suffix) {
  return name.size() >= suffix.size() &&
         name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

std::string StorageEngine::SegmentPath(uint64_t id) const {
  return dir_ + "/seg-" + std::to_string(id) + ".mip";
}

std::string StorageEngine::IndexPath(uint64_t id) const {
  return dir_ + "/idx-" + std::to_string(id) + ".mix";
}

std::string StorageEngine::WalPath(uint64_t id) const {
  return dir_ + "/wal-" + std::to_string(id) + ".log";
}

std::string StorageEngine::ManifestPath() const { return dir_ + "/MANIFEST"; }

Result<std::unique_ptr<StorageEngine>> StorageEngine::Open(
    const std::string& dir, const StorageOptions& options) {
  if (dir.empty()) return Status::InvalidArgument("empty data directory");
  MIP_RETURN_NOT_OK(EnsureDir(dir));
  std::unique_ptr<StorageEngine> store(new StorageEngine(dir, options));
  MIP_RETURN_NOT_OK(store->RecoverLocked());
  return store;
}

StorageEngine::~StorageEngine() { StopBackgroundCompaction(); }

Status StorageEngine::RecoverLocked() {
  // 1. Committed root.
  Manifest manifest;
  if (FileExists(ManifestPath())) {
    MIP_ASSIGN_OR_RETURN(manifest, LoadManifest(ManifestPath()));
  }
  wal_id_ = manifest.wal_id;
  next_segment_id_ = manifest.next_segment_id;
  next_index_id_ = manifest.next_index_id;

  // 2. Validate every committed segment's footer; committed data that fails
  // validation is a hard error, not something to silently drop. Indexes are
  // the opposite: they are derived accelerators, so an unreadable index is
  // marked invalid (its segment falls back to the zone-map path) and Open
  // proceeds — recovery must never fail, and scans must never be wrong,
  // because of a corrupt sidecar.
  for (const ManifestTable& mt : manifest.tables) {
    TableState state;
    state.schema = mt.schema;
    uint64_t prev_group = 0;
    std::set<uint64_t> closed_groups;
    for (const ManifestSegment& ms : mt.segments) {
      Result<SegmentFooter> footer = ReadSegmentFooter(SegmentPath(ms.id));
      if (!footer.ok()) {
        return Status::IOError("table '" + mt.name + "' segment " +
                               std::to_string(ms.id) +
                               " failed validation: " +
                               footer.status().message());
      }
      // Compacted segments store the hidden position column after the user
      // schema (compaction.h).
      const engine::Schema expect =
          ms.group == 0 ? mt.schema : SchemaWithPos(mt.schema);
      if (footer->num_rows != ms.rows ||
          !SchemasCompatible(footer->schema(), expect)) {
        return Status::IOError("table '" + mt.name + "' segment " +
                               std::to_string(ms.id) +
                               " disagrees with manifest");
      }
      // A compaction group's segments must be contiguous — order
      // restoration walks them as one run.
      if (ms.group != prev_group && closed_groups.count(ms.group) > 0) {
        return Status::IOError("table '" + mt.name + "' compaction group " +
                               std::to_string(ms.group) + " is fragmented");
      }
      if (prev_group != 0 && ms.group != prev_group) {
        closed_groups.insert(prev_group);
      }
      prev_group = ms.group;

      SegmentState seg;
      seg.id = ms.id;
      seg.group = ms.group;
      seg.footer = std::move(*footer);
      for (const ManifestIndex& mi : ms.indexes) {
        IndexState idx;
        idx.id = mi.id;
        idx.column = mi.column;
        Result<IndexFooter> ifooter = ReadIndexFooter(IndexPath(mi.id));
        const int field = mt.schema.FieldIndex(mi.column);
        if (ifooter.ok() && field >= 0 &&
            EqualsIgnoreCase(ifooter->column, mi.column) &&
            ifooter->type == mt.schema.field(field).type &&
            ifooter->num_rows == ms.rows) {
          idx.footer = std::move(*ifooter);
          idx.valid = true;
        }
        seg.indexes.push_back(std::move(idx));
      }
      state.segments.push_back(std::move(seg));
    }
    tables_.emplace(ToLower(mt.name), std::move(state));
  }

  // 3. Sweep orphans: segments/indexes the manifest does not reference (a
  // flush or compaction that died before its manifest committed), WALs from
  // dead epochs, tmp files.
  MIP_ASSIGN_OR_RETURN(std::vector<std::string> names, ListDir(dir_));
  for (const std::string& name : names) {
    uint64_t id = 0;
    bool orphan = false;
    if (HasSuffix(name, ".tmp")) {
      orphan = true;
    } else if (ParseIdFileName(name, "seg-", ".mip", &id)) {
      orphan = true;
      for (const auto& [key, state] : tables_) {
        for (const SegmentState& seg : state.segments) {
          if (seg.id == id) orphan = false;
        }
      }
    } else if (ParseIdFileName(name, "idx-", ".mix", &id)) {
      orphan = true;
      for (const auto& [key, state] : tables_) {
        for (const SegmentState& seg : state.segments) {
          for (const IndexState& idx : seg.indexes) {
            if (idx.id == id) orphan = false;
          }
        }
      }
    } else if (ParseIdFileName(name, "wal-", ".log", &id)) {
      orphan = (id != wal_id_);
    }
    if (orphan) MIP_RETURN_NOT_OK(RemoveFile(dir_ + "/" + name));
  }

  // 4. Replay the live WAL into memtables, truncating a torn tail.
  MIP_ASSIGN_OR_RETURN(WalReplay replay, ReplayWal(WalPath(wal_id_)));
  if (replay.torn) {
    MIP_RETURN_NOT_OK(TruncateFile(WalPath(wal_id_), replay.valid_bytes));
  }
  ctr_wal_replays_.fetch_add(replay.records.size(),
                             std::memory_order_relaxed);
  for (WalRecord& record : replay.records) {
    MIP_RETURN_NOT_OK(ApplyToMemtableLocked(record.table_name, record.rows));
  }

  // 5. Index any segment the manifest predates indexes for — a --data-dir
  // boot of a version-1 directory comes up fully indexed.
  if (options_.build_missing_indexes) {
    MIP_RETURN_NOT_OK(EnsureIndexesLocked());
  }
  return Status::OK();
}

std::vector<std::string> StorageEngine::IndexedColumns(
    const engine::Schema& schema) const {
  std::vector<std::string> columns;
  for (const engine::Field& f : schema.fields()) {
    if (IsReservedColumn(f.name)) continue;  // hidden position column
    if (options_.auto_index) {
      columns.push_back(f.name);
      continue;
    }
    for (const std::string& want : options_.index_columns) {
      if (EqualsIgnoreCase(want, f.name)) {
        columns.push_back(f.name);
        break;
      }
    }
  }
  return columns;
}

Status StorageEngine::BuildSegmentIndexes(const engine::Table& data,
                                          uint64_t* next_index_id,
                                          std::vector<IndexState>* out) const {
  for (const std::string& name : IndexedColumns(data.schema())) {
    MIP_ASSIGN_OR_RETURN(const engine::Column* col, data.ColumnByName(name));
    IndexState idx;
    idx.id = (*next_index_id)++;
    idx.column = name;
    MIP_ASSIGN_OR_RETURN(idx.footer,
                         WriteIndex(IndexPath(idx.id), name, *col));
    idx.valid = true;
    out->push_back(std::move(idx));
  }
  return Status::OK();
}

Manifest StorageEngine::BuildManifestLocked(uint64_t wal_id) const {
  Manifest manifest;
  manifest.wal_id = wal_id;
  manifest.next_segment_id = next_segment_id_;
  manifest.next_index_id = next_index_id_;
  for (const auto& [key, state] : tables_) {
    ManifestTable mt;
    mt.name = key;
    mt.schema = state.schema;
    for (const SegmentState& seg : state.segments) {
      ManifestSegment ms;
      ms.id = seg.id;
      ms.rows = seg.footer.num_rows;
      ms.group = seg.group;
      // Invalid indexes stay referenced: the sweep must not delete their
      // files out from under a later forensic look, and EnsureIndexes must
      // not paper over them — only a flush/compaction rewrite replaces them.
      for (const IndexState& idx : seg.indexes) {
        ms.indexes.push_back(ManifestIndex{idx.id, idx.column});
      }
      mt.segments.push_back(std::move(ms));
    }
    manifest.tables.push_back(std::move(mt));
  }
  return manifest;
}

Status StorageEngine::EnsureIndexesLocked() {
  bool built_any = false;
  for (auto& [key, state] : tables_) {
    const std::vector<std::string> wanted = IndexedColumns(state.schema);
    if (wanted.empty()) continue;
    for (SegmentState& seg : state.segments) {
      engine::Table data;
      bool loaded = false;
      for (const std::string& name : wanted) {
        bool have = false;
        for (const IndexState& idx : seg.indexes) {
          // An existing entry — even an invalid one — blocks a rebuild;
          // see BuildManifestLocked.
          if (EqualsIgnoreCase(idx.column, name)) have = true;
        }
        if (have) continue;
        if (!loaded) {
          MIP_ASSIGN_OR_RETURN(data,
                               ReadSegmentData(SegmentPath(seg.id),
                                               seg.footer));
          loaded = true;
        }
        MIP_ASSIGN_OR_RETURN(const engine::Column* col,
                             data.ColumnByName(name));
        IndexState idx;
        idx.id = next_index_id_++;
        idx.column = name;
        MIP_ASSIGN_OR_RETURN(idx.footer,
                             WriteIndex(IndexPath(idx.id), name, *col));
        idx.valid = true;
        seg.indexes.push_back(std::move(idx));
        built_any = true;
      }
    }
  }
  if (!built_any) return Status::OK();
  // Same WAL epoch: only derived files changed, the data did not.
  return SaveManifest(ManifestPath(), BuildManifestLocked(wal_id_));
}

Status StorageEngine::ApplyToMemtableLocked(const std::string& name,
                                            const engine::Table& rows) {
  const std::string key = ToLower(name);
  auto it = tables_.find(key);
  if (it == tables_.end()) {
    TableState state;
    state.schema = rows.schema();
    it = tables_.emplace(key, std::move(state)).first;
  }
  TableState& state = it->second;
  if (!SchemasCompatible(state.schema, rows.schema())) {
    return Status::TypeError("append to '" + name +
                             "' does not match its schema (" +
                             state.schema.ToString() + ")");
  }
  MIP_ASSIGN_OR_RETURN(engine::Table batch,
                       Canonicalize(state.schema, rows));
  state.memtable_rows += batch.num_rows();
  memtable_bytes_ += EstimateTableBytes(batch);
  state.memtable.push_back(std::move(batch));
  return Status::OK();
}

Status StorageEngine::AppendRows(const std::string& name,
                                 const engine::Table& rows) {
  if (name.empty()) return Status::InvalidArgument("empty table name");
  for (const engine::Field& f : rows.schema().fields()) {
    if (IsReservedColumn(f.name)) {
      return Status::InvalidArgument(
          "column name '" + f.name + "' uses the reserved '" +
          kReservedColumnPrefix + "' prefix");
    }
  }
  std::unique_lock lock(mu_);
  // Validate against the existing schema BEFORE logging, so the WAL never
  // holds a record that replay would reject.
  auto it = tables_.find(ToLower(name));
  if (it != tables_.end() &&
      !SchemasCompatible(it->second.schema, rows.schema())) {
    return Status::TypeError("append to '" + name +
                             "' does not match its schema (" +
                             it->second.schema.ToString() + ")");
  }
  if (rows.num_rows() == 0 && it != tables_.end()) return Status::OK();
  // WAL first: once the fsync returns, the batch is durable.
  MIP_RETURN_NOT_OK(AppendWalRecord(WalPath(wal_id_), name, rows));
  MIP_RETURN_NOT_OK(ApplyToMemtableLocked(name, rows));
  if (memtable_bytes_ >= options_.memtable_budget_bytes) {
    return FlushLocked();
  }
  return Status::OK();
}

Status StorageEngine::Flush() {
  std::unique_lock lock(mu_);
  return FlushLocked();
}

Status StorageEngine::FlushLocked() {
  // 1. Write memtables out as immutable segments, each with its ordered
  // indexes (every write is itself atomic; nothing references these files
  // until the manifest commits).
  std::map<std::string, std::vector<SegmentState>> flushed;
  uint64_t next_id = next_segment_id_;
  uint64_t next_idx = next_index_id_;
  bool wrote = false;
  for (auto& [key, state] : tables_) {
    if (state.memtable.empty()) continue;
    MIP_ASSIGN_OR_RETURN(engine::Table all,
                         engine::Table::Concat(state.memtable));
    for (size_t off = 0; off < all.num_rows();
         off += options_.target_segment_rows) {
      const size_t count =
          std::min<size_t>(options_.target_segment_rows, all.num_rows() - off);
      const engine::Table chunk = all.Slice(off, count);
      SegmentState seg;
      seg.id = next_id++;
      MIP_ASSIGN_OR_RETURN(seg.footer,
                           WriteSegment(SegmentPath(seg.id), chunk));
      MIP_RETURN_NOT_OK(BuildSegmentIndexes(chunk, &next_idx, &seg.indexes));
      flushed[key].push_back(std::move(seg));
      wrote = true;
    }
  }

  // 2. Commit point: the new manifest references the new segments + indexes
  // and the next WAL epoch. A crash before this line leaves only orphans.
  Manifest manifest;
  manifest.wal_id = wal_id_ + 1;
  manifest.next_segment_id = next_id;
  manifest.next_index_id = next_idx;
  for (auto& [key, state] : tables_) {
    ManifestTable mt;
    mt.name = key;
    mt.schema = state.schema;
    auto describe = [&mt](const SegmentState& seg) {
      ManifestSegment ms;
      ms.id = seg.id;
      ms.rows = seg.footer.num_rows;
      ms.group = seg.group;
      for (const IndexState& idx : seg.indexes) {
        ms.indexes.push_back(ManifestIndex{idx.id, idx.column});
      }
      mt.segments.push_back(std::move(ms));
    };
    for (const SegmentState& seg : state.segments) describe(seg);
    auto fit = flushed.find(key);
    if (fit != flushed.end()) {
      for (const SegmentState& seg : fit->second) describe(seg);
    }
    manifest.tables.push_back(std::move(mt));
  }
  MIP_RETURN_NOT_OK(SaveManifest(ManifestPath(), manifest));

  // 3. The old WAL's records are now all represented by segments; drop it.
  // A crash between the manifest commit and this unlink is healed by the
  // stale-epoch sweep in recovery.
  const std::string old_wal = WalPath(wal_id_);
  if (FileExists(old_wal)) MIP_RETURN_NOT_OK(RemoveFile(old_wal));

  wal_id_ += 1;
  next_segment_id_ = next_id;
  next_index_id_ = next_idx;
  memtable_bytes_ = 0;
  for (auto& [key, state] : tables_) {
    auto fit = flushed.find(key);
    if (fit != flushed.end()) {
      for (SegmentState& seg : fit->second) {
        state.segments.push_back(std::move(seg));
      }
    }
    state.memtable.clear();
    state.memtable_rows = 0;
  }
  if (wrote) ctr_flushes_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

std::vector<std::string> StorageEngine::StorageTableNames() const {
  std::shared_lock lock(mu_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [key, state] : tables_) names.push_back(key);
  return names;
}

Result<engine::Schema> StorageEngine::StorageTableSchema(
    const std::string& name) const {
  std::shared_lock lock(mu_);
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) {
    return Status::NotFound("no disk table named '" + name + "'");
  }
  return it->second.schema;
}

namespace {

/// Shared per-scan index-probe state: intervals are built once per column
/// (they depend on the conjuncts and the column type, not the segment).
struct ProbeContext {
  std::vector<std::string> columns;  // distinct conjunct columns (lowered)
  std::map<std::string, KeyInterval> intervals;
};

ProbeContext MakeProbeContext(const std::vector<PruneConjunct>& conjuncts) {
  ProbeContext ctx;
  for (const PruneConjunct& c : conjuncts) {
    const std::string col = ToLower(c.column);
    if (std::find(ctx.columns.begin(), ctx.columns.end(), col) ==
        ctx.columns.end()) {
      ctx.columns.push_back(col);
    }
  }
  return ctx;
}

}  // namespace

Result<engine::Table> StorageEngine::ScanLocked(
    const TableState& state, const engine::Expr* prune_filter,
    engine::ScanStats* stats, bool use_index) const {
  std::vector<PruneConjunct> conjuncts;
  if (prune_filter != nullptr) {
    conjuncts = ExtractPruneConjuncts(*prune_filter);
  }
  ProbeContext ctx = MakeProbeContext(conjuncts);

  engine::ScanStats local;
  local.total = static_cast<int64_t>(state.segments.size());

  // Probes one segment's indexes; returns true when a probe proves the
  // segment holds zero candidate rows. A probe that fails (corrupt sidecar
  // discovered at read time) is treated as "no index" — fall back to
  // decoding the segment, never to wrong results.
  auto index_proves_empty = [&](const SegmentState& seg) -> bool {
    uint64_t min_candidates = 0;
    bool probed = false;
    for (const std::string& col : ctx.columns) {
      const IndexState* index = nullptr;
      for (const IndexState& idx : seg.indexes) {
        if (idx.valid && EqualsIgnoreCase(idx.column, col)) {
          index = &idx;
          break;
        }
      }
      if (index == nullptr) continue;
      auto iit = ctx.intervals.find(col);
      if (iit == ctx.intervals.end()) {
        iit = ctx.intervals
                  .emplace(col, BuildKeyInterval(index->footer.type, col,
                                                 conjuncts))
                  .first;
      }
      const KeyInterval& interval = iit->second;
      if (!interval.restricts && !interval.empty) continue;
      Result<IndexProbe> probe =
          ProbeIndex(IndexPath(index->id), index->footer, interval);
      ++local.index_probes;
      ctr_index_probes_.fetch_add(1, std::memory_order_relaxed);
      if (!probe.ok()) continue;
      if (probe->candidates > 0) {
        ctr_index_hits_.fetch_add(1, std::memory_order_relaxed);
      }
      if (!probed || probe->candidates < min_candidates) {
        min_candidates = probe->candidates;
      }
      probed = true;
      if (min_candidates == 0) break;
    }
    if (!probed) return false;
    local.index_rows += static_cast<int64_t>(min_candidates);
    return min_candidates == 0;
  };

  std::vector<engine::Table> parts;
  const std::vector<SegmentState>& segs = state.segments;
  size_t i = 0;
  while (i < segs.size()) {
    const uint64_t group = segs[i].group;
    size_t j = i + 1;
    if (group != 0) {
      while (j < segs.size() && segs[j].group == group) ++j;
    }
    std::vector<engine::Table> group_parts;
    for (size_t k = i; k < j; ++k) {
      const SegmentState& seg = segs[k];
      if (!SegmentCanMatch(seg.footer, conjuncts)) {
        ++local.pruned;
        continue;
      }
      if (use_index && index_proves_empty(seg)) {
        ++local.pruned;
        continue;
      }
      ++local.scanned;
      MIP_ASSIGN_OR_RETURN(engine::Table part,
                           ReadSegmentData(SegmentPath(seg.id), seg.footer));
      group_parts.push_back(std::move(part));
    }
    if (group != 0 && !group_parts.empty()) {
      // Compacted group: surviving rows carry the hidden position column;
      // put them back in pre-compaction order and strip it.
      MIP_ASSIGN_OR_RETURN(engine::Table merged,
                           engine::Table::Concat(group_parts));
      MIP_ASSIGN_OR_RETURN(engine::Table restored, RestoreGroupOrder(merged));
      parts.push_back(std::move(restored));
    } else {
      for (engine::Table& part : group_parts) parts.push_back(std::move(part));
    }
    i = j;
  }
  // Memtable rows ride along unpruned — they have no zone maps and the
  // Filter above the scan re-applies the predicate anyway.
  for (const engine::Table& batch : state.memtable) parts.push_back(batch);

  ctr_segments_scanned_.fetch_add(static_cast<uint64_t>(local.scanned),
                                  std::memory_order_relaxed);
  ctr_segments_pruned_.fetch_add(static_cast<uint64_t>(local.pruned),
                                 std::memory_order_relaxed);
  if (stats != nullptr) *stats = local;
  if (parts.empty()) return engine::Table::Empty(state.schema);
  return engine::Table::Concat(parts);
}

Result<engine::Table> StorageEngine::ScanTable(
    const std::string& name, const engine::Expr* prune_filter,
    engine::ScanStats* stats) const {
  std::shared_lock lock(mu_);
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) {
    return Status::NotFound("no disk table named '" + name + "'");
  }
  return ScanLocked(it->second, prune_filter, stats, /*use_index=*/false);
}

Result<engine::Table> StorageEngine::IndexScanTable(
    const std::string& name, const engine::Expr* prune_filter,
    engine::ScanStats* stats) const {
  std::shared_lock lock(mu_);
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) {
    return Status::NotFound("no disk table named '" + name + "'");
  }
  return ScanLocked(it->second, prune_filter, stats, /*use_index=*/true);
}

Result<engine::TableStats> StorageEngine::StorageTableStats(
    const std::string& name) const {
  std::shared_lock lock(mu_);
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) {
    return Status::NotFound("no disk table named '" + name + "'");
  }
  const TableState& state = it->second;
  engine::TableStats stats;
  stats.row_count = 0;
  stats.columns.resize(state.schema.num_fields());
  for (size_t f = 0; f < state.schema.num_fields(); ++f) {
    stats.columns[f].name = state.schema.field(f).name;
  }
  auto fold = [&](const std::string& col_name, const ZoneMap& zone,
                  engine::DataType type) {
    const int f = state.schema.FieldIndex(col_name);
    if (f < 0) return;  // hidden compaction column
    engine::ColumnStats& cs = stats.columns[f];
    cs.null_count += static_cast<int64_t>(zone.null_count);
    if (!zone.has_range) return;
    double lo = 0.0, hi = 0.0;
    switch (type) {
      case engine::DataType::kBool:
      case engine::DataType::kInt64:
        lo = static_cast<double>(zone.min_i);
        hi = static_cast<double>(zone.max_i);
        break;
      case engine::DataType::kFloat64:
        lo = zone.min_d;
        hi = zone.max_d;
        break;
      case engine::DataType::kString:
        return;  // numeric ranges only; the cost model ignores string ranges
    }
    if (!cs.has_range) {
      cs.has_range = true;
      cs.min_value = lo;
      cs.max_value = hi;
    } else {
      cs.min_value = std::min(cs.min_value, lo);
      cs.max_value = std::max(cs.max_value, hi);
    }
  };
  for (const SegmentState& seg : state.segments) {
    stats.row_count += static_cast<int64_t>(seg.footer.num_rows);
    for (const SegmentColumn& col : seg.footer.columns) {
      fold(col.name, col.zone, col.type);
    }
  }
  for (const engine::Table& batch : state.memtable) {
    stats.row_count += static_cast<int64_t>(batch.num_rows());
    for (size_t c = 0; c < batch.num_columns(); ++c) {
      fold(batch.schema().field(c).name, ComputeZoneMap(batch.column(c)),
           batch.column(c).type());
    }
  }
  return stats;
}

Result<engine::ScanStats> StorageEngine::PrunePreview(
    const std::string& name, const engine::Expr* prune_filter) const {
  std::shared_lock lock(mu_);
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) {
    return Status::NotFound("no disk table named '" + name + "'");
  }
  std::vector<PruneConjunct> conjuncts;
  if (prune_filter != nullptr) {
    conjuncts = ExtractPruneConjuncts(*prune_filter);
  }
  engine::ScanStats stats;
  stats.total = static_cast<int64_t>(it->second.segments.size());
  for (const SegmentState& seg : it->second.segments) {
    if (SegmentCanMatch(seg.footer, conjuncts)) {
      ++stats.scanned;
    } else {
      ++stats.pruned;
    }
  }
  return stats;
}

Result<engine::IndexPreview> StorageEngine::PreviewIndexScan(
    const std::string& name, const engine::Expr* prune_filter) const {
  std::shared_lock lock(mu_);
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) {
    return Status::NotFound("no disk table named '" + name + "'");
  }
  std::vector<PruneConjunct> conjuncts;
  if (prune_filter != nullptr) {
    conjuncts = ExtractPruneConjuncts(*prune_filter);
  }
  ProbeContext ctx = MakeProbeContext(conjuncts);

  engine::IndexPreview preview;
  preview.stats.total = static_cast<int64_t>(it->second.segments.size());
  int64_t zone_scanned = 0;  // segments the zone-map-only path would decode
  for (const SegmentState& seg : it->second.segments) {
    if (!SegmentCanMatch(seg.footer, conjuncts)) {
      ++preview.stats.pruned;
      continue;
    }
    ++zone_scanned;
    uint64_t min_candidates = 0;
    bool probed = false;
    for (const std::string& col : ctx.columns) {
      const IndexState* index = nullptr;
      for (const IndexState& idx : seg.indexes) {
        if (idx.valid && EqualsIgnoreCase(idx.column, col)) {
          index = &idx;
          break;
        }
      }
      if (index == nullptr) continue;
      auto iit = ctx.intervals.find(col);
      if (iit == ctx.intervals.end()) {
        iit = ctx.intervals
                  .emplace(col, BuildKeyInterval(index->footer.type, col,
                                                 conjuncts))
                  .first;
      }
      const KeyInterval& interval = iit->second;
      if (!interval.restricts && !interval.empty) continue;
      Result<IndexProbe> probe =
          ProbeIndex(IndexPath(index->id), index->footer, interval);
      ++preview.probes;
      if (!probe.ok()) continue;
      if (!probed || probe->candidates < min_candidates) {
        min_candidates = probe->candidates;
      }
      probed = true;
      if (min_candidates == 0) break;
    }
    if (probed) {
      preview.rows += static_cast<int64_t>(min_candidates);
      if (min_candidates == 0) {
        ++preview.stats.pruned;
        continue;
      }
    }
    ++preview.stats.scanned;
  }
  preview.stats.index_probes = preview.probes;
  preview.stats.index_rows = preview.rows;
  // The index path wins when its probes prove segments empty that zone maps
  // alone would decode — fewer segments touched is the whole game here
  // (stream codecs forbid row-level gathers, so decode count IS the cost).
  preview.use_index =
      preview.probes > 0 && preview.stats.scanned < zone_scanned;
  return preview;
}

engine::StorageCounters StorageEngine::Counters() const {
  engine::StorageCounters c;
  c.segments_scanned = ctr_segments_scanned_.load(std::memory_order_relaxed);
  c.segments_pruned = ctr_segments_pruned_.load(std::memory_order_relaxed);
  c.index_probes = ctr_index_probes_.load(std::memory_order_relaxed);
  c.index_hits = ctr_index_hits_.load(std::memory_order_relaxed);
  c.flushes = ctr_flushes_.load(std::memory_order_relaxed);
  c.compactions = ctr_compactions_.load(std::memory_order_relaxed);
  c.wal_replays = ctr_wal_replays_.load(std::memory_order_relaxed);
  return c;
}

Status StorageEngine::VerifyIndexes() const {
  std::shared_lock lock(mu_);
  for (const auto& [key, state] : tables_) {
    for (const SegmentState& seg : state.segments) {
      for (const IndexState& idx : seg.indexes) {
        // Re-read the footer from disk (not the cached copy) so an index
        // that was already invalid at Open — or rotted since — surfaces
        // here as the typed error the silent scan fallback swallows.
        Result<IndexFooter> footer = ReadIndexFooter(IndexPath(idx.id));
        if (!footer.ok()) {
          return Status::IOError(
              "table '" + key + "' index " + std::to_string(idx.id) +
              " (column '" + idx.column + "'): " + footer.status().message());
        }
        Status st = VerifyIndex(IndexPath(idx.id), *footer);
        if (!st.ok()) {
          return Status::IOError(
              "table '" + key + "' index " + std::to_string(idx.id) +
              " (column '" + idx.column + "'): " + st.message());
        }
      }
    }
  }
  return Status::OK();
}

Result<uint64_t> StorageEngine::SegmentCount(const std::string& name) const {
  std::shared_lock lock(mu_);
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) {
    return Status::NotFound("no disk table named '" + name + "'");
  }
  return static_cast<uint64_t>(it->second.segments.size());
}

Result<uint64_t> StorageEngine::IndexCount(const std::string& name) const {
  std::shared_lock lock(mu_);
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) {
    return Status::NotFound("no disk table named '" + name + "'");
  }
  uint64_t count = 0;
  for (const SegmentState& seg : it->second.segments) {
    for (const IndexState& idx : seg.indexes) {
      if (idx.valid) ++count;
    }
  }
  return count;
}

Result<uint64_t> StorageEngine::MemtableRows(const std::string& name) const {
  std::shared_lock lock(mu_);
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) {
    return Status::NotFound("no disk table named '" + name + "'");
  }
  return it->second.memtable_rows;
}

}  // namespace mip::storage
