#include "storage/store.h"

#include <algorithm>
#include <mutex>

#include "common/string_util.h"
#include "storage/io.h"
#include "storage/wal.h"

namespace mip::storage {

namespace {

/// Rough in-memory footprint of a batch — drives the flush threshold, so
/// only the order of magnitude matters.
uint64_t EstimateTableBytes(const engine::Table& table) {
  uint64_t bytes = 0;
  for (size_t c = 0; c < table.num_columns(); ++c) {
    const engine::Column& col = table.column(c);
    switch (col.type()) {
      case engine::DataType::kBool:
        bytes += table.num_rows();
        break;
      case engine::DataType::kInt64:
      case engine::DataType::kFloat64:
        bytes += 8 * table.num_rows();
        break;
      case engine::DataType::kString:
        for (const std::string& s : col.strings()) bytes += 16 + s.size();
        break;
    }
    if (col.has_validity()) bytes += table.num_rows() / 8 + 1;
  }
  return bytes;
}

bool SchemasCompatible(const engine::Schema& a, const engine::Schema& b) {
  if (a.num_fields() != b.num_fields()) return false;
  for (size_t i = 0; i < a.num_fields(); ++i) {
    if (a.field(i).type != b.field(i).type) return false;
    if (!EqualsIgnoreCase(a.field(i).name, b.field(i).name)) return false;
  }
  return true;
}

/// Rebuilds `rows` under the table's canonical schema (field names may
/// differ only in case; types were already checked).
Result<engine::Table> Canonicalize(const engine::Schema& canonical,
                                   const engine::Table& rows) {
  std::vector<engine::Column> columns;
  columns.reserve(rows.num_columns());
  for (size_t c = 0; c < rows.num_columns(); ++c) {
    columns.push_back(rows.column(c));
  }
  return engine::Table::Make(canonical, std::move(columns));
}

/// Parses "<prefix><decimal id><suffix>", e.g. seg-12.mip / wal-3.log.
bool ParseIdFileName(const std::string& name, const std::string& prefix,
                     const std::string& suffix, uint64_t* id) {
  if (name.size() <= prefix.size() + suffix.size()) return false;
  if (name.compare(0, prefix.size(), prefix) != 0) return false;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return false;
  }
  const std::string digits =
      name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
  uint64_t v = 0;
  for (char ch : digits) {
    if (ch < '0' || ch > '9') return false;
    v = v * 10 + static_cast<uint64_t>(ch - '0');
  }
  *id = v;
  return true;
}

bool HasSuffix(const std::string& name, const std::string& suffix) {
  return name.size() >= suffix.size() &&
         name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

std::string StorageEngine::SegmentPath(uint64_t id) const {
  return dir_ + "/seg-" + std::to_string(id) + ".mip";
}

std::string StorageEngine::WalPath(uint64_t id) const {
  return dir_ + "/wal-" + std::to_string(id) + ".log";
}

std::string StorageEngine::ManifestPath() const { return dir_ + "/MANIFEST"; }

Result<std::unique_ptr<StorageEngine>> StorageEngine::Open(
    const std::string& dir, const StorageOptions& options) {
  if (dir.empty()) return Status::InvalidArgument("empty data directory");
  MIP_RETURN_NOT_OK(EnsureDir(dir));
  std::unique_ptr<StorageEngine> store(new StorageEngine(dir, options));
  MIP_RETURN_NOT_OK(store->RecoverLocked());
  return store;
}

Status StorageEngine::RecoverLocked() {
  // 1. Committed root.
  Manifest manifest;
  if (FileExists(ManifestPath())) {
    MIP_ASSIGN_OR_RETURN(manifest, LoadManifest(ManifestPath()));
  }
  wal_id_ = manifest.wal_id;
  next_segment_id_ = manifest.next_segment_id;

  // 2. Validate every committed segment's footer; committed data that fails
  // validation is a hard error, not something to silently drop.
  for (const ManifestTable& mt : manifest.tables) {
    TableState state;
    state.schema = mt.schema;
    for (const ManifestSegment& ms : mt.segments) {
      Result<SegmentFooter> footer = ReadSegmentFooter(SegmentPath(ms.id));
      if (!footer.ok()) {
        return Status::IOError("table '" + mt.name + "' segment " +
                               std::to_string(ms.id) +
                               " failed validation: " +
                               footer.status().message());
      }
      if (footer->num_rows != ms.rows ||
          !SchemasCompatible(footer->schema(), mt.schema)) {
        return Status::IOError("table '" + mt.name + "' segment " +
                               std::to_string(ms.id) +
                               " disagrees with manifest");
      }
      state.segments.push_back(SegmentState{ms.id, std::move(*footer)});
    }
    tables_.emplace(ToLower(mt.name), std::move(state));
  }

  // 3. Sweep orphans: segments the manifest does not reference (a flush that
  // died before its manifest committed), WALs from dead epochs, tmp files.
  MIP_ASSIGN_OR_RETURN(std::vector<std::string> names, ListDir(dir_));
  for (const std::string& name : names) {
    uint64_t id = 0;
    bool orphan = false;
    if (HasSuffix(name, ".tmp")) {
      orphan = true;
    } else if (ParseIdFileName(name, "seg-", ".mip", &id)) {
      orphan = true;
      for (const auto& [key, state] : tables_) {
        for (const SegmentState& seg : state.segments) {
          if (seg.id == id) orphan = false;
        }
      }
    } else if (ParseIdFileName(name, "wal-", ".log", &id)) {
      orphan = (id != wal_id_);
    }
    if (orphan) MIP_RETURN_NOT_OK(RemoveFile(dir_ + "/" + name));
  }

  // 4. Replay the live WAL into memtables, truncating a torn tail.
  MIP_ASSIGN_OR_RETURN(WalReplay replay, ReplayWal(WalPath(wal_id_)));
  if (replay.torn) {
    MIP_RETURN_NOT_OK(TruncateFile(WalPath(wal_id_), replay.valid_bytes));
  }
  for (WalRecord& record : replay.records) {
    MIP_RETURN_NOT_OK(ApplyToMemtableLocked(record.table_name, record.rows));
  }
  return Status::OK();
}

Status StorageEngine::ApplyToMemtableLocked(const std::string& name,
                                            const engine::Table& rows) {
  const std::string key = ToLower(name);
  auto it = tables_.find(key);
  if (it == tables_.end()) {
    TableState state;
    state.schema = rows.schema();
    it = tables_.emplace(key, std::move(state)).first;
  }
  TableState& state = it->second;
  if (!SchemasCompatible(state.schema, rows.schema())) {
    return Status::TypeError("append to '" + name +
                             "' does not match its schema (" +
                             state.schema.ToString() + ")");
  }
  MIP_ASSIGN_OR_RETURN(engine::Table batch,
                       Canonicalize(state.schema, rows));
  state.memtable_rows += batch.num_rows();
  memtable_bytes_ += EstimateTableBytes(batch);
  state.memtable.push_back(std::move(batch));
  return Status::OK();
}

Status StorageEngine::AppendRows(const std::string& name,
                                 const engine::Table& rows) {
  if (name.empty()) return Status::InvalidArgument("empty table name");
  std::unique_lock lock(mu_);
  // Validate against the existing schema BEFORE logging, so the WAL never
  // holds a record that replay would reject.
  auto it = tables_.find(ToLower(name));
  if (it != tables_.end() &&
      !SchemasCompatible(it->second.schema, rows.schema())) {
    return Status::TypeError("append to '" + name +
                             "' does not match its schema (" +
                             it->second.schema.ToString() + ")");
  }
  if (rows.num_rows() == 0 && it != tables_.end()) return Status::OK();
  // WAL first: once the fsync returns, the batch is durable.
  MIP_RETURN_NOT_OK(AppendWalRecord(WalPath(wal_id_), name, rows));
  MIP_RETURN_NOT_OK(ApplyToMemtableLocked(name, rows));
  if (memtable_bytes_ >= options_.memtable_budget_bytes) {
    return FlushLocked();
  }
  return Status::OK();
}

Status StorageEngine::Flush() {
  std::unique_lock lock(mu_);
  return FlushLocked();
}

Status StorageEngine::FlushLocked() {
  // 1. Write memtables out as immutable segments (each write is itself
  // atomic; nothing references these files until the manifest commits).
  std::map<std::string, std::vector<SegmentState>> flushed;
  uint64_t next_id = next_segment_id_;
  for (auto& [key, state] : tables_) {
    if (state.memtable.empty()) continue;
    MIP_ASSIGN_OR_RETURN(engine::Table all,
                         engine::Table::Concat(state.memtable));
    for (size_t off = 0; off < all.num_rows();
         off += options_.target_segment_rows) {
      const size_t count =
          std::min<size_t>(options_.target_segment_rows, all.num_rows() - off);
      const engine::Table chunk = all.Slice(off, count);
      MIP_ASSIGN_OR_RETURN(SegmentFooter footer,
                           WriteSegment(SegmentPath(next_id), chunk));
      flushed[key].push_back(SegmentState{next_id, std::move(footer)});
      ++next_id;
    }
  }

  // 2. Commit point: the new manifest references the new segments and the
  // next WAL epoch. A crash before this line leaves only orphans.
  Manifest manifest;
  manifest.wal_id = wal_id_ + 1;
  manifest.next_segment_id = next_id;
  for (auto& [key, state] : tables_) {
    ManifestTable mt;
    mt.name = key;
    mt.schema = state.schema;
    for (const SegmentState& seg : state.segments) {
      mt.segments.push_back(ManifestSegment{seg.id, seg.footer.num_rows});
    }
    auto fit = flushed.find(key);
    if (fit != flushed.end()) {
      for (const SegmentState& seg : fit->second) {
        mt.segments.push_back(ManifestSegment{seg.id, seg.footer.num_rows});
      }
    }
    manifest.tables.push_back(std::move(mt));
  }
  MIP_RETURN_NOT_OK(SaveManifest(ManifestPath(), manifest));

  // 3. The old WAL's records are now all represented by segments; drop it.
  // A crash between the manifest commit and this unlink is healed by the
  // stale-epoch sweep in recovery.
  const std::string old_wal = WalPath(wal_id_);
  if (FileExists(old_wal)) MIP_RETURN_NOT_OK(RemoveFile(old_wal));

  wal_id_ += 1;
  next_segment_id_ = next_id;
  memtable_bytes_ = 0;
  for (auto& [key, state] : tables_) {
    auto fit = flushed.find(key);
    if (fit != flushed.end()) {
      for (SegmentState& seg : fit->second) {
        state.segments.push_back(std::move(seg));
      }
    }
    state.memtable.clear();
    state.memtable_rows = 0;
  }
  return Status::OK();
}

std::vector<std::string> StorageEngine::StorageTableNames() const {
  std::shared_lock lock(mu_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [key, state] : tables_) names.push_back(key);
  return names;
}

Result<engine::Schema> StorageEngine::StorageTableSchema(
    const std::string& name) const {
  std::shared_lock lock(mu_);
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) {
    return Status::NotFound("no disk table named '" + name + "'");
  }
  return it->second.schema;
}

Result<engine::Table> StorageEngine::ScanTable(
    const std::string& name, const engine::Expr* prune_filter,
    engine::ScanStats* stats) const {
  std::shared_lock lock(mu_);
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) {
    return Status::NotFound("no disk table named '" + name + "'");
  }
  const TableState& state = it->second;
  std::vector<PruneConjunct> conjuncts;
  if (prune_filter != nullptr) {
    conjuncts = ExtractPruneConjuncts(*prune_filter);
  }
  engine::ScanStats local;
  local.total = static_cast<int64_t>(state.segments.size());
  std::vector<engine::Table> parts;
  for (const SegmentState& seg : state.segments) {
    if (!SegmentCanMatch(seg.footer, conjuncts)) {
      ++local.pruned;
      continue;
    }
    ++local.scanned;
    MIP_ASSIGN_OR_RETURN(engine::Table part,
                         ReadSegmentData(SegmentPath(seg.id), seg.footer));
    parts.push_back(std::move(part));
  }
  // Memtable rows ride along unpruned — they have no zone maps and the
  // Filter above the scan re-applies the predicate anyway.
  for (const engine::Table& batch : state.memtable) parts.push_back(batch);
  if (stats != nullptr) *stats = local;
  if (parts.empty()) return engine::Table::Empty(state.schema);
  return engine::Table::Concat(parts);
}

Result<engine::ScanStats> StorageEngine::PrunePreview(
    const std::string& name, const engine::Expr* prune_filter) const {
  std::shared_lock lock(mu_);
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) {
    return Status::NotFound("no disk table named '" + name + "'");
  }
  std::vector<PruneConjunct> conjuncts;
  if (prune_filter != nullptr) {
    conjuncts = ExtractPruneConjuncts(*prune_filter);
  }
  engine::ScanStats stats;
  stats.total = static_cast<int64_t>(it->second.segments.size());
  for (const SegmentState& seg : it->second.segments) {
    if (SegmentCanMatch(seg.footer, conjuncts)) {
      ++stats.scanned;
    } else {
      ++stats.pruned;
    }
  }
  return stats;
}

Result<uint64_t> StorageEngine::SegmentCount(const std::string& name) const {
  std::shared_lock lock(mu_);
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) {
    return Status::NotFound("no disk table named '" + name + "'");
  }
  return static_cast<uint64_t>(it->second.segments.size());
}

Result<uint64_t> StorageEngine::MemtableRows(const std::string& name) const {
  std::shared_lock lock(mu_);
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) {
    return Status::NotFound("no disk table named '" + name + "'");
  }
  return it->second.memtable_rows;
}

}  // namespace mip::storage
