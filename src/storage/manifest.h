#ifndef MIP_STORAGE_MANIFEST_H_
#define MIP_STORAGE_MANIFEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/table.h"

namespace mip::storage {

/// \brief The store's committed-state root: which segments belong to which
/// table, and which WAL epoch is live.
///
/// Written atomically (tmp + fsync + rename) on every flush; the manifest
/// on disk therefore always describes a consistent snapshot. Layout:
///
///   u32 magic        "MMF1"
///   u8  version      1
///   u64 wal_id       live WAL epoch; recovery replays wal-<wal_id>.log
///   u64 next_segment_id
///   varint num_tables, per table:
///     string name
///     varint num_fields, per field: string name, u8 type
///     varint num_segments, per segment: varint id, varint rows
///   u32 crc32        of everything before it
///
/// Segment files not referenced by the manifest and WAL files other than
/// wal-<wal_id>.log are orphans from an interrupted flush; recovery deletes
/// them.
inline constexpr uint32_t kManifestMagic = 0x31464D4Du;  // "MMF1"
inline constexpr uint8_t kManifestVersion = 1;
inline constexpr uint64_t kMaxManifestTables = 65536;
inline constexpr uint64_t kMaxManifestSegments = 1u << 24;

struct ManifestSegment {
  uint64_t id = 0;
  uint64_t rows = 0;
};

struct ManifestTable {
  std::string name;
  engine::Schema schema;
  std::vector<ManifestSegment> segments;
};

struct Manifest {
  uint64_t wal_id = 0;
  uint64_t next_segment_id = 0;
  std::vector<ManifestTable> tables;

  ManifestTable* FindTable(const std::string& name);
};

/// Serializes and writes crash-atomically.
Status SaveManifest(const std::string& path, const Manifest& manifest);

/// Reads and validates (magic, version, CRC, counts, duplicate names).
/// Any corruption is kIOError.
Result<Manifest> LoadManifest(const std::string& path);

}  // namespace mip::storage

#endif  // MIP_STORAGE_MANIFEST_H_
