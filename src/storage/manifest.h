#ifndef MIP_STORAGE_MANIFEST_H_
#define MIP_STORAGE_MANIFEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/table.h"

namespace mip::storage {

/// \brief The store's committed-state root: which segments (and their
/// ordered secondary indexes) belong to which table, which compaction
/// group each segment is part of, and which WAL epoch is live.
///
/// Written atomically (tmp + fsync + rename) on every flush or compaction;
/// the manifest on disk therefore always describes a consistent snapshot —
/// it is the single commit point for both. Layout (version 2):
///
///   u32 magic        "MMF1"
///   u8  version      2
///   u64 wal_id       live WAL epoch; recovery replays wal-<wal_id>.log
///   u64 next_segment_id
///   u64 next_index_id
///   varint num_tables, per table:
///     string name
///     varint num_fields, per field: string name, u8 type
///     varint num_segments, per segment:
///       varint id, varint rows
///       varint group      compaction group id; 0 = not compacted. Segments
///                         of one group are contiguous in the list and
///                         carry a hidden position column that lets scans
///                         restore the pre-compaction row order.
///       varint num_indexes, per index: varint id, string column
///   u32 crc32        of everything before it
///
/// Version 1 (no index/group fields) is still accepted on load — PR-7 data
/// directories open cleanly and gain indexes on their next flush/boot.
///
/// Segment/index files not referenced by the manifest and WAL files other
/// than wal-<wal_id>.log are orphans from an interrupted flush or
/// compaction; recovery deletes them.
inline constexpr uint32_t kManifestMagic = 0x31464D4Du;  // "MMF1"
inline constexpr uint8_t kManifestVersion = 2;
inline constexpr uint64_t kMaxManifestTables = 65536;
inline constexpr uint64_t kMaxManifestSegments = 1u << 24;
inline constexpr uint64_t kMaxManifestIndexes = 4096;  // per segment

struct ManifestIndex {
  uint64_t id = 0;
  std::string column;
};

struct ManifestSegment {
  uint64_t id = 0;
  uint64_t rows = 0;
  uint64_t group = 0;  // 0 = not part of a compaction group
  std::vector<ManifestIndex> indexes;
};

struct ManifestTable {
  std::string name;
  engine::Schema schema;
  std::vector<ManifestSegment> segments;
};

struct Manifest {
  uint64_t wal_id = 0;
  uint64_t next_segment_id = 0;
  uint64_t next_index_id = 0;
  std::vector<ManifestTable> tables;

  ManifestTable* FindTable(const std::string& name);
};

/// Serializes and writes crash-atomically.
Status SaveManifest(const std::string& path, const Manifest& manifest);

/// Reads and validates (magic, version, CRC, counts, duplicate names).
/// Any corruption is kIOError.
Result<Manifest> LoadManifest(const std::string& path);

}  // namespace mip::storage

#endif  // MIP_STORAGE_MANIFEST_H_
