#ifndef MIP_STORAGE_IO_H_
#define MIP_STORAGE_IO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace mip::storage {

/// POSIX file helpers for the storage layer. Every failure is a typed
/// Status::IOError carrying errno text — the code the serving layer maps to
/// a typed error frame and the federation fan-out treats as retryable.

/// Whole-file read.
Result<std::vector<uint8_t>> ReadFileBytes(const std::string& path);

/// Reads `n` bytes starting at `offset`; fails (kIOError) when the range
/// extends past EOF.
Result<std::vector<uint8_t>> ReadFileRange(const std::string& path,
                                           uint64_t offset, uint64_t n);

Result<uint64_t> FileSize(const std::string& path);
bool FileExists(const std::string& path);

/// Crash-atomic whole-file publish: write `<path>.tmp`, fsync it, rename
/// over `path`, fsync the parent directory. Readers see either the old or
/// the new content, never a partial write.
Status WriteFileAtomic(const std::string& path,
                       const std::vector<uint8_t>& bytes);

/// Appends to (creating if absent) `path` and fsyncs — the WAL's durability
/// primitive.
Status AppendFileSync(const std::string& path,
                      const std::vector<uint8_t>& bytes);

/// Truncates `path` to `size` bytes (torn-tail amputation on WAL replay).
Status TruncateFile(const std::string& path, uint64_t size);

Status RemoveFile(const std::string& path);

/// Creates the directory if missing (one level).
Status EnsureDir(const std::string& path);

/// Non-recursive listing of plain-file names (not paths) in `dir`.
Result<std::vector<std::string>> ListDir(const std::string& dir);

}  // namespace mip::storage

#endif  // MIP_STORAGE_IO_H_
