#include "algorithms/anova.h"

#include <array>
#include <cmath>
#include <map>
#include <sstream>

#include "algorithms/common.h"
#include "common/string_util.h"
#include "stats/distributions.h"

namespace mip::algorithms {

namespace {

Status RegisterSteps(federation::LocalFunctionRegistry* registry) {
  // Dynamic per-level moments (plain path; level set discovered).
  MIP_RETURN_NOT_OK(EnsureLocal(
      registry, "anova.levels",
      [](federation::WorkerContext& ctx,
         const federation::TransferData& args)
          -> Result<federation::TransferData> {
        MIP_ASSIGN_OR_RETURN(std::vector<std::string> vars,
                             args.GetStringList("numeric_vars"));
        MIP_ASSIGN_OR_RETURN(std::string factor, args.GetString("factor"));
        MIP_ASSIGN_OR_RETURN(
            LocalData data,
            GatherData(ctx, WorkerDatasets(ctx, args), vars, {factor}));
        std::map<std::string, std::array<double, 3>> levels;
        for (size_t r = 0; r < data.num_rows; ++r) {
          auto& m = levels[data.categorical[0][r]];
          const double v = data.numeric(r, 0);
          m[0] += 1;
          m[1] += v;
          m[2] += v * v;
        }
        federation::TransferData out;
        for (const auto& [level, m] : levels) {
          out.PutVector("lvl/" + level, {m[0], m[1], m[2]});
        }
        return out;
      }));

  // Fixed-grid cell moments over levels_a x levels_b (or 1 x levels when
  // one-way); identically shaped across workers, hence SMPC-compatible.
  MIP_RETURN_NOT_OK(EnsureLocal(
      registry, "anova.cells",
      [](federation::WorkerContext& ctx,
         const federation::TransferData& args)
          -> Result<federation::TransferData> {
        MIP_ASSIGN_OR_RETURN(std::vector<std::string> vars,
                             args.GetStringList("numeric_vars"));
        MIP_ASSIGN_OR_RETURN(std::vector<std::string> levels_a,
                             args.GetStringList("levels_a"));
        MIP_ASSIGN_OR_RETURN(std::vector<std::string> levels_b,
                             args.GetStringList("levels_b"));
        std::vector<std::string> cats;
        MIP_ASSIGN_OR_RETURN(std::string factor_a, args.GetString("factor_a"));
        cats.push_back(factor_a);
        const bool two_way = args.HasString("factor_b");
        if (two_way) {
          MIP_ASSIGN_OR_RETURN(std::string factor_b,
                               args.GetString("factor_b"));
          cats.push_back(factor_b);
        }
        MIP_ASSIGN_OR_RETURN(
            LocalData data,
            GatherData(ctx, WorkerDatasets(ctx, args), vars, cats));
        const size_t a = levels_a.size();
        const size_t b = two_way ? levels_b.size() : 1;
        std::vector<double> cells(3 * a * b, 0.0);
        for (size_t r = 0; r < data.num_rows; ++r) {
          int ia = -1, ib = two_way ? -1 : 0;
          for (size_t i = 0; i < a; ++i) {
            if (data.categorical[0][r] == levels_a[i]) {
              ia = static_cast<int>(i);
              break;
            }
          }
          if (two_way) {
            for (size_t j = 0; j < levels_b.size(); ++j) {
              if (data.categorical[1][r] == levels_b[j]) {
                ib = static_cast<int>(j);
                break;
              }
            }
          }
          if (ia < 0 || ib < 0) continue;
          const size_t cell =
              (static_cast<size_t>(ia) * b + static_cast<size_t>(ib)) * 3;
          const double v = data.numeric(r, 0);
          cells[cell] += 1;
          cells[cell + 1] += v;
          cells[cell + 2] += v * v;
        }
        federation::TransferData out;
        out.PutVector("cells", std::move(cells));
        return out;
      }));
  return Status::OK();
}

}  // namespace

Result<AnovaOneWayResult> RunAnovaOneWay(
    federation::FederationSession* session, const AnovaOneWaySpec& spec) {
  MIP_RETURN_NOT_OK(RegisterSteps(session->master().functions().get()));

  // level -> (n, sum, sumsq)
  std::map<std::string, std::array<double, 3>> levels;

  if (spec.levels.empty()) {
    if (spec.mode == federation::AggregationMode::kSecure) {
      return Status::InvalidArgument(
          "secure one-way ANOVA requires the level list up front");
    }
    federation::TransferData args = MakeArgs(spec.datasets, {spec.outcome});
    args.PutString("factor", spec.factor);
    MIP_ASSIGN_OR_RETURN(std::vector<federation::TransferData> parts,
                         session->LocalRun("anova.levels", args));
    for (const federation::TransferData& part : parts) {
      for (const auto& [key, v] : part.vectors()) {
        if (!StartsWith(key, "lvl/")) continue;
        auto& m = levels[key.substr(4)];
        m[0] += v[0];
        m[1] += v[1];
        m[2] += v[2];
      }
    }
  } else {
    federation::TransferData args = MakeArgs(spec.datasets, {spec.outcome});
    args.PutString("factor_a", spec.factor);
    args.PutStringList("levels_a", spec.levels);
    args.PutStringList("levels_b", {});
    MIP_ASSIGN_OR_RETURN(
        federation::TransferData agg,
        session->LocalRunAndAggregate("anova.cells", args, spec.mode));
    MIP_ASSIGN_OR_RETURN(std::vector<double> cells, agg.GetVector("cells"));
    for (size_t i = 0; i < spec.levels.size(); ++i) {
      levels[spec.levels[i]] = {cells[3 * i], cells[3 * i + 1],
                                cells[3 * i + 2]};
    }
  }

  AnovaOneWayResult out;
  double n_total = 0, sum_total = 0, ss_total = 0;
  for (const auto& [level, m] : levels) {
    if (m[0] < 1) continue;
    out.levels.push_back(level);
    out.level_counts.push_back(static_cast<int64_t>(std::llround(m[0])));
    out.level_means.push_back(m[1] / m[0]);
    n_total += m[0];
    sum_total += m[1];
    ss_total += m[2];
  }
  const size_t g = out.levels.size();
  if (g < 2) return Status::ExecutionError("need at least two factor levels");
  if (n_total <= static_cast<double>(g)) {
    return Status::ExecutionError("not enough observations");
  }
  const double grand_mean = sum_total / n_total;
  for (size_t i = 0; i < g; ++i) {
    const double n = static_cast<double>(out.level_counts[i]);
    const double diff = out.level_means[i] - grand_mean;
    out.ss_between += n * diff * diff;
  }
  const double ss_tot = ss_total - n_total * grand_mean * grand_mean;
  out.ss_within = ss_tot - out.ss_between;
  out.df_between = static_cast<double>(g) - 1.0;
  out.df_within = n_total - static_cast<double>(g);
  out.f_statistic = (out.ss_between / out.df_between) /
                    (out.ss_within / out.df_within);
  out.p_value = stats::FSf(out.f_statistic, out.df_between, out.df_within);
  return out;
}

Result<AnovaTwoWayResult> RunAnovaTwoWay(
    federation::FederationSession* session, const AnovaTwoWaySpec& spec) {
  MIP_RETURN_NOT_OK(RegisterSteps(session->master().functions().get()));
  if (spec.levels_a.size() < 2 || spec.levels_b.size() < 2) {
    return Status::InvalidArgument(
        "two-way ANOVA needs at least 2 levels per factor");
  }
  federation::TransferData args = MakeArgs(spec.datasets, {spec.outcome});
  args.PutString("factor_a", spec.factor_a);
  args.PutString("factor_b", spec.factor_b);
  args.PutStringList("levels_a", spec.levels_a);
  args.PutStringList("levels_b", spec.levels_b);
  MIP_ASSIGN_OR_RETURN(
      federation::TransferData agg,
      session->LocalRunAndAggregate("anova.cells", args, spec.mode));
  MIP_ASSIGN_OR_RETURN(std::vector<double> cells, agg.GetVector("cells"));

  const size_t a = spec.levels_a.size();
  const size_t b = spec.levels_b.size();
  stats::Matrix n(a, b), mean(a, b);
  double n_total = 0, ss_error = 0, inv_n_sum = 0;
  for (size_t i = 0; i < a; ++i) {
    for (size_t j = 0; j < b; ++j) {
      const size_t c = (i * b + j) * 3;
      n(i, j) = cells[c];
      if (n(i, j) < 1) {
        return Status::ExecutionError(
            "empty cell (" + spec.levels_a[i] + ", " + spec.levels_b[j] +
            "); the unweighted-means analysis requires all cells filled");
      }
      mean(i, j) = cells[c + 1] / n(i, j);
      ss_error += cells[c + 2] - n(i, j) * mean(i, j) * mean(i, j);
      n_total += n(i, j);
      inv_n_sum += 1.0 / n(i, j);
    }
  }
  const double ab = static_cast<double>(a * b);
  const double n_h = ab / inv_n_sum;  // harmonic cell size

  std::vector<double> row_mean(a, 0.0), col_mean(b, 0.0);
  double grand = 0.0;
  for (size_t i = 0; i < a; ++i) {
    for (size_t j = 0; j < b; ++j) {
      row_mean[i] += mean(i, j) / static_cast<double>(b);
      col_mean[j] += mean(i, j) / static_cast<double>(a);
      grand += mean(i, j) / ab;
    }
  }

  AnovaTwoWayResult out;
  out.effect_a.name = spec.factor_a;
  out.effect_b.name = spec.factor_b;
  out.interaction.name = spec.factor_a + ":" + spec.factor_b;
  for (size_t i = 0; i < a; ++i) {
    out.effect_a.sum_of_squares +=
        n_h * static_cast<double>(b) * (row_mean[i] - grand) *
        (row_mean[i] - grand);
  }
  for (size_t j = 0; j < b; ++j) {
    out.effect_b.sum_of_squares +=
        n_h * static_cast<double>(a) * (col_mean[j] - grand) *
        (col_mean[j] - grand);
  }
  for (size_t i = 0; i < a; ++i) {
    for (size_t j = 0; j < b; ++j) {
      const double dev = mean(i, j) - row_mean[i] - col_mean[j] + grand;
      out.interaction.sum_of_squares += n_h * dev * dev;
    }
  }
  out.ss_error = ss_error;
  out.df_error = n_total - ab;
  out.effect_a.df = static_cast<double>(a) - 1.0;
  out.effect_b.df = static_cast<double>(b) - 1.0;
  out.interaction.df = out.effect_a.df * out.effect_b.df;
  const double mse = out.ss_error / out.df_error;
  for (AnovaEffect* e : {&out.effect_a, &out.effect_b, &out.interaction}) {
    e->f_statistic = (e->sum_of_squares / e->df) / mse;
    e->p_value = stats::FSf(e->f_statistic, e->df, out.df_error);
  }
  return out;
}

std::string AnovaOneWayResult::ToString() const {
  std::ostringstream os;
  os.precision(4);
  os << std::fixed;
  os << "One-way ANOVA: F(" << df_between << ", " << df_within
     << ") = " << f_statistic << ", p = " << p_value << "\n";
  for (size_t i = 0; i < levels.size(); ++i) {
    os << "  " << levels[i] << ": n=" << level_counts[i]
       << " mean=" << level_means[i] << "\n";
  }
  return os.str();
}

std::string AnovaTwoWayResult::ToString() const {
  std::ostringstream os;
  os.precision(4);
  os << std::fixed;
  os << "Two-way ANOVA (df error=" << df_error << ", SSE=" << ss_error
     << ")\n";
  for (const AnovaEffect* e : {&effect_a, &effect_b, &interaction}) {
    os << "  " << e->name << ": SS=" << e->sum_of_squares << " df=" << e->df
       << " F=" << e->f_statistic << " p=" << e->p_value << "\n";
  }
  return os.str();
}

}  // namespace mip::algorithms
