#include "algorithms/kaplan_meier.h"

#include <cmath>
#include <limits>
#include <map>
#include <set>
#include <sstream>

#include "algorithms/common.h"
#include "common/string_util.h"
#include "stats/special.h"

namespace mip::algorithms {

namespace {

Status RegisterSteps(federation::LocalFunctionRegistry* registry) {
  // Per (group, time): [events, censored] — the classic life-table
  // aggregate. Individual follow-up times do leave as table rows; MIP
  // treats these as aggregates (they carry no identifiers), matching the
  // plain path. Secure grids would bucket times first.
  return EnsureLocal(
      registry, "km.table",
      [](federation::WorkerContext& ctx,
         const federation::TransferData& args)
          -> Result<federation::TransferData> {
        MIP_ASSIGN_OR_RETURN(std::vector<std::string> vars,
                             args.GetStringList("numeric_vars"));
        std::vector<std::string> cats;
        if (args.HasString("group_variable")) {
          MIP_ASSIGN_OR_RETURN(std::string g,
                               args.GetString("group_variable"));
          cats.push_back(g);
        }
        MIP_ASSIGN_OR_RETURN(
            LocalData data,
            GatherData(ctx, WorkerDatasets(ctx, args), vars, cats));
        // key: (group, time) -> [events, censored]
        std::map<std::string, std::map<double, std::pair<double, double>>>
            tables;
        for (size_t r = 0; r < data.num_rows; ++r) {
          const std::string group =
              cats.empty() ? "(all)" : data.categorical[0][r];
          const double t = data.numeric(r, 0);
          const bool event = data.numeric(r, 1) >= 0.5;
          auto& cell = tables[group][t];
          if (event) {
            cell.first += 1;
          } else {
            cell.second += 1;
          }
        }
        federation::TransferData out;
        for (const auto& [group, table] : tables) {
          std::vector<double> flat;
          for (const auto& [t, dc] : table) {
            flat.push_back(t);
            flat.push_back(dc.first);
            flat.push_back(dc.second);
          }
          out.PutVector("km/" + group, std::move(flat));
        }
        return out;
      });
}

}  // namespace

Result<KaplanMeierResult> RunKaplanMeier(
    federation::FederationSession* session, const KaplanMeierSpec& spec) {
  if (spec.mode == federation::AggregationMode::kSecure) {
    return Status::NotImplemented(
        "Kaplan-Meier currently ships life tables on the plain path");
  }
  MIP_RETURN_NOT_OK(RegisterSteps(session->master().functions().get()));
  federation::TransferData args =
      MakeArgs(spec.datasets, {spec.time_variable, spec.event_variable});
  if (!spec.group_variable.empty()) {
    args.PutString("group_variable", spec.group_variable);
  }
  MIP_ASSIGN_OR_RETURN(std::vector<federation::TransferData> parts,
                       session->LocalRun("km.table", args));

  // Merge: (group, time) -> (events, censored).
  std::map<std::string, std::map<double, std::pair<double, double>>> merged;
  for (const auto& part : parts) {
    for (const auto& [key, flat] : part.vectors()) {
      if (!StartsWith(key, "km/")) continue;
      auto& table = merged[key.substr(3)];
      for (size_t i = 0; i + 2 < flat.size(); i += 3) {
        table[flat[i]].first += flat[i + 1];
        table[flat[i]].second += flat[i + 2];
      }
    }
  }

  KaplanMeierResult out;

  // --- Log-rank test across groups (conservative (O-E)^2/E form) -------
  if (merged.size() >= 2) {
    // Union of event times.
    std::set<double> event_times;
    for (const auto& [group, table] : merged) {
      for (const auto& [t, dc] : table) {
        if (dc.first > 0) event_times.insert(t);
      }
    }
    // Per-group totals and a cursor to maintain at-risk counts.
    std::vector<const std::map<double, std::pair<double, double>>*> tables;
    std::vector<double> at_risk;
    std::vector<std::map<double, std::pair<double, double>>::const_iterator>
        cursors;
    for (const auto& [group, table] : merged) {
      double total = 0;
      for (const auto& [t, dc] : table) total += dc.first + dc.second;
      tables.push_back(&table);
      at_risk.push_back(total);
      cursors.push_back(table.begin());
    }
    std::vector<double> observed(tables.size(), 0.0);
    std::vector<double> expected(tables.size(), 0.0);
    for (double t : event_times) {
      // Advance cursors: remove subjects with events/censorings BEFORE t.
      for (size_t j = 0; j < tables.size(); ++j) {
        while (cursors[j] != tables[j]->end() && cursors[j]->first < t) {
          at_risk[j] -= cursors[j]->second.first + cursors[j]->second.second;
          ++cursors[j];
        }
      }
      double total_at_risk = 0, total_deaths = 0;
      std::vector<double> deaths(tables.size(), 0.0);
      for (size_t j = 0; j < tables.size(); ++j) {
        total_at_risk += at_risk[j];
        auto it = tables[j]->find(t);
        if (it != tables[j]->end()) deaths[j] = it->second.first;
        total_deaths += deaths[j];
      }
      if (total_at_risk <= 0 || total_deaths <= 0) continue;
      for (size_t j = 0; j < tables.size(); ++j) {
        observed[j] += deaths[j];
        expected[j] += total_deaths * at_risk[j] / total_at_risk;
      }
    }
    double chi2 = 0;
    for (size_t j = 0; j < tables.size(); ++j) {
      if (expected[j] > 0) {
        chi2 += (observed[j] - expected[j]) * (observed[j] - expected[j]) /
                expected[j];
      }
    }
    out.log_rank_chi2 = chi2;
    out.log_rank_df = static_cast<double>(tables.size()) - 1.0;
    out.log_rank_p = 1.0 - stats::RegularizedGammaP(out.log_rank_df / 2.0,
                                                    chi2 / 2.0);
  }

  for (const auto& [group, table] : merged) {
    KaplanMeierCurve curve;
    curve.group = group;
    double n_at_risk = 0;
    for (const auto& [t, dc] : table) n_at_risk += dc.first + dc.second;

    double survival = 1.0;
    double greenwood = 0.0;
    curve.median_survival_time = std::numeric_limits<double>::quiet_NaN();
    for (const auto& [t, dc] : table) {
      const double d = dc.first;
      const double c = dc.second;
      KaplanMeierPoint pt;
      pt.time = t;
      pt.at_risk = static_cast<int64_t>(std::llround(n_at_risk));
      pt.events = static_cast<int64_t>(std::llround(d));
      pt.censored = static_cast<int64_t>(std::llround(c));
      if (d > 0 && n_at_risk > 0) {
        survival *= 1.0 - d / n_at_risk;
        if (n_at_risk > d) {
          greenwood += d / (n_at_risk * (n_at_risk - d));
        }
      }
      pt.survival = survival;
      pt.std_error = survival * std::sqrt(greenwood);
      // Log-log CI (stays inside [0, 1]).
      if (survival > 0 && survival < 1) {
        const double z = stats::NormalQuantile(0.975);
        const double theta =
            z * std::sqrt(greenwood) / std::log(survival);
        pt.ci_low = std::pow(survival, std::exp(theta));
        pt.ci_high = std::pow(survival, std::exp(-theta));
        if (pt.ci_low > pt.ci_high) std::swap(pt.ci_low, pt.ci_high);
      } else {
        pt.ci_low = pt.ci_high = survival;
      }
      if (std::isnan(curve.median_survival_time) && survival <= 0.5) {
        curve.median_survival_time = t;
      }
      curve.points.push_back(pt);
      n_at_risk -= d + c;
    }
    out.curves.push_back(std::move(curve));
  }
  return out;
}

std::string KaplanMeierResult::ToString() const {
  std::ostringstream os;
  os.precision(4);
  os << std::fixed;
  if (curves.size() >= 2) {
    os << "Log-rank: chi2(" << log_rank_df << ") = " << log_rank_chi2
       << ", p = " << log_rank_p << "\n";
  }
  for (const KaplanMeierCurve& curve : curves) {
    os << "Kaplan-Meier curve for " << curve.group
       << " (median survival time = " << curve.median_survival_time << ")\n";
    for (const KaplanMeierPoint& p : curve.points) {
      os << "  t=" << p.time << " at_risk=" << p.at_risk
         << " events=" << p.events << " S=" << p.survival << " [" << p.ci_low
         << ", " << p.ci_high << "]\n";
    }
  }
  return os.str();
}

}  // namespace mip::algorithms
