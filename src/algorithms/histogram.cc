#include "algorithms/histogram.h"

#include <cmath>
#include <map>
#include <sstream>

#include "algorithms/common.h"
#include "common/string_util.h"

namespace mip::algorithms {

namespace {

Status RegisterSteps(federation::LocalFunctionRegistry* registry) {
  // Local min/max for the numeric grid.
  MIP_RETURN_NOT_OK(EnsureLocal(
      registry, "hist.range",
      [](federation::WorkerContext& ctx,
         const federation::TransferData& args)
          -> Result<federation::TransferData> {
        MIP_ASSIGN_OR_RETURN(std::vector<std::string> vars,
                             args.GetStringList("numeric_vars"));
        MIP_ASSIGN_OR_RETURN(
            LocalData data,
            GatherData(ctx, WorkerDatasets(ctx, args), vars, {}));
        double lo = 1e300, hi = -1e300;
        for (size_t r = 0; r < data.num_rows; ++r) {
          lo = std::min(lo, data.numeric(r, 0));
          hi = std::max(hi, data.numeric(r, 0));
        }
        federation::TransferData out;
        out.PutVector("range", {lo, hi});
        return out;
      }));

  // Fixed-grid numeric bin counts (identically shaped -> SMPC-capable).
  MIP_RETURN_NOT_OK(EnsureLocal(
      registry, "hist.counts",
      [](federation::WorkerContext& ctx,
         const federation::TransferData& args)
          -> Result<federation::TransferData> {
        MIP_ASSIGN_OR_RETURN(std::vector<std::string> vars,
                             args.GetStringList("numeric_vars"));
        MIP_ASSIGN_OR_RETURN(std::vector<double> edges,
                             args.GetVector("edges"));
        MIP_ASSIGN_OR_RETURN(
            LocalData data,
            GatherData(ctx, WorkerDatasets(ctx, args), vars, {}));
        const size_t bins = edges.size() - 1;
        std::vector<double> counts(bins, 0.0);
        for (size_t r = 0; r < data.num_rows; ++r) {
          const double v = data.numeric(r, 0);
          if (v < edges.front() || v > edges.back()) continue;
          size_t b = bins - 1;
          for (size_t e = 1; e < edges.size(); ++e) {
            if (v < edges[e]) {
              b = e - 1;
              break;
            }
          }
          counts[b] += 1;
        }
        federation::TransferData out;
        out.PutVector("counts", std::move(counts));
        return out;
      }));

  // Nominal counts: fixed levels -> vector; otherwise dynamic keys.
  MIP_RETURN_NOT_OK(EnsureLocal(
      registry, "hist.nominal",
      [](federation::WorkerContext& ctx,
         const federation::TransferData& args)
          -> Result<federation::TransferData> {
        MIP_ASSIGN_OR_RETURN(std::string variable,
                             args.GetString("variable"));
        const std::vector<std::string> levels =
            args.GetStringListOrEmpty("levels");
        MIP_ASSIGN_OR_RETURN(
            LocalData data,
            GatherData(ctx, WorkerDatasets(ctx, args), {}, {variable}));
        federation::TransferData out;
        if (!levels.empty()) {
          std::vector<double> counts(levels.size(), 0.0);
          for (size_t r = 0; r < data.num_rows; ++r) {
            for (size_t l = 0; l < levels.size(); ++l) {
              if (data.categorical[0][r] == levels[l]) {
                counts[l] += 1;
                break;
              }
            }
          }
          out.PutVector("counts", std::move(counts));
        } else {
          std::map<std::string, double> counts;
          for (size_t r = 0; r < data.num_rows; ++r) {
            counts[data.categorical[0][r]] += 1;
          }
          for (const auto& [level, n] : counts) {
            out.PutVector("lvl/" + level, {n});
          }
        }
        return out;
      }));
  return Status::OK();
}

void ApplySuppression(HistogramResult* result, int64_t threshold) {
  for (HistogramBin& bin : result->bins) {
    if (bin.count > 0 && bin.count < threshold) {
      bin.suppressed = true;
      bin.count = 0;
      ++result->suppressed_bins;
    }
    result->total += bin.count;
  }
}

}  // namespace

Result<HistogramResult> RunHistogram(federation::FederationSession* session,
                                     const HistogramSpec& spec) {
  MIP_RETURN_NOT_OK(RegisterSteps(session->master().functions().get()));
  HistogramResult result;
  result.variable = spec.variable;

  if (spec.nominal) {
    federation::TransferData args = MakeArgs(spec.datasets, {});
    args.PutString("variable", spec.variable);
    if (!spec.levels.empty()) args.PutStringList("levels", spec.levels);
    if (spec.levels.empty()) {
      if (spec.mode == federation::AggregationMode::kSecure) {
        return Status::InvalidArgument(
            "secure nominal histograms need the level list up front");
      }
      MIP_ASSIGN_OR_RETURN(std::vector<federation::TransferData> parts,
                           session->LocalRun("hist.nominal", args));
      std::map<std::string, int64_t> merged;
      for (const auto& part : parts) {
        for (const auto& [key, v] : part.vectors()) {
          if (StartsWith(key, "lvl/")) {
            merged[key.substr(4)] +=
                static_cast<int64_t>(std::llround(v[0]));
          }
        }
      }
      for (const auto& [level, count] : merged) {
        HistogramBin bin;
        bin.label = level;
        bin.count = count;
        result.bins.push_back(bin);
      }
    } else {
      MIP_ASSIGN_OR_RETURN(
          federation::TransferData agg,
          session->LocalRunAndAggregate("hist.nominal", args, spec.mode));
      MIP_ASSIGN_OR_RETURN(std::vector<double> counts,
                           agg.GetVector("counts"));
      for (size_t l = 0; l < spec.levels.size(); ++l) {
        HistogramBin bin;
        bin.label = spec.levels[l];
        bin.count = static_cast<int64_t>(std::llround(counts[l]));
        result.bins.push_back(bin);
      }
    }
    ApplySuppression(&result, spec.privacy_threshold);
    return result;
  }

  // Numeric path: federated range, then fixed-grid counts.
  if (spec.bins < 1) return Status::InvalidArgument("bins must be >= 1");
  federation::TransferData range_args = MakeArgs(spec.datasets,
                                                 {spec.variable});
  MIP_ASSIGN_OR_RETURN(std::vector<federation::TransferData> parts,
                       session->LocalRun("hist.range", range_args));
  double lo = 1e300, hi = -1e300;
  for (const auto& part : parts) {
    MIP_ASSIGN_OR_RETURN(std::vector<double> range, part.GetVector("range"));
    lo = std::min(lo, range[0]);
    hi = std::max(hi, range[1]);
  }
  if (lo > hi) return Status::ExecutionError("no data for histogram");
  if (lo == hi) hi = lo + 1.0;

  std::vector<double> edges(static_cast<size_t>(spec.bins) + 1);
  for (int e = 0; e <= spec.bins; ++e) {
    edges[static_cast<size_t>(e)] =
        lo + (hi - lo) * static_cast<double>(e) /
                 static_cast<double>(spec.bins);
  }
  federation::TransferData count_args = MakeArgs(spec.datasets,
                                                 {spec.variable});
  count_args.PutVector("edges", edges);
  MIP_ASSIGN_OR_RETURN(
      federation::TransferData agg,
      session->LocalRunAndAggregate("hist.counts", count_args, spec.mode));
  MIP_ASSIGN_OR_RETURN(std::vector<double> counts, agg.GetVector("counts"));
  for (int b = 0; b < spec.bins; ++b) {
    HistogramBin bin;
    bin.lo = edges[static_cast<size_t>(b)];
    bin.hi = edges[static_cast<size_t>(b) + 1];
    std::ostringstream label;
    label.precision(3);
    label << std::fixed << "[" << bin.lo << ", " << bin.hi
          << (b + 1 == spec.bins ? "]" : ")");
    bin.label = label.str();
    bin.count = static_cast<int64_t>(std::llround(counts[static_cast<size_t>(b)]));
    result.bins.push_back(bin);
  }
  ApplySuppression(&result, spec.privacy_threshold);
  return result;
}

std::string HistogramResult::ToString() const {
  std::ostringstream os;
  os << "Histogram of " << variable << " (total " << total;
  if (suppressed_bins > 0) {
    os << ", " << suppressed_bins << " small bins suppressed";
  }
  os << ")\n";
  int64_t max_count = 1;
  for (const HistogramBin& b : bins) max_count = std::max(max_count, b.count);
  for (const HistogramBin& b : bins) {
    os << "  " << b.label << " ";
    if (b.suppressed) {
      os << "<suppressed>";
    } else {
      const int width = static_cast<int>(40 * b.count / max_count);
      for (int i = 0; i < width; ++i) os << '#';
      os << " " << b.count;
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace mip::algorithms
