#ifndef MIP_ALGORITHMS_HISTOGRAM_H_
#define MIP_ALGORITHMS_HISTOGRAM_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "federation/master.h"

namespace mip::algorithms {

/// \brief Federated histogram — the dashboard's variable-exploration panel.
///
/// Numeric variables are bucketed on a fixed grid derived from the
/// federated range; nominal variables count categories. Bin counts are sums
/// (SMPC-compatible for numeric / fixed-level nominal). Disclosure control:
/// bins whose count is positive but below `privacy_threshold` are
/// suppressed before leaving the Master (MIP never displays small cells
/// that could identify patients).
struct HistogramSpec {
  std::vector<std::string> datasets;
  std::string variable;
  /// true = categorical variable (counts per level).
  bool nominal = false;
  int bins = 10;  ///< numeric path
  /// Nominal levels; required on the secure path, discovered when empty on
  /// the plain path.
  std::vector<std::string> levels;
  /// Counts in (0, privacy_threshold) are suppressed.
  int64_t privacy_threshold = 10;
  federation::AggregationMode mode = federation::AggregationMode::kPlain;
};

struct HistogramBin {
  std::string label;  ///< "[lo, hi)" or the category value
  double lo = 0.0;
  double hi = 0.0;
  int64_t count = 0;
  bool suppressed = false;  ///< small cell withheld (count forced to 0)
};

struct HistogramResult {
  std::string variable;
  std::vector<HistogramBin> bins;
  int64_t total = 0;            ///< displayed total (post suppression)
  int64_t suppressed_bins = 0;

  std::string ToString() const;
};

Result<HistogramResult> RunHistogram(federation::FederationSession* session,
                                     const HistogramSpec& spec);

}  // namespace mip::algorithms

#endif  // MIP_ALGORITHMS_HISTOGRAM_H_
