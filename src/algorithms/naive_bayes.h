#ifndef MIP_ALGORITHMS_NAIVE_BAYES_H_
#define MIP_ALGORITHMS_NAIVE_BAYES_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "federation/master.h"

namespace mip::algorithms {

/// \brief Federated Naive Bayes: Gaussian likelihoods for numeric features,
/// multinomial (Laplace-smoothed) likelihoods for categorical features.
/// Workers ship per-class counts / sums / sums-of-squares and per-(feature,
/// value, class) counts — all sums.
struct NaiveBayesSpec {
  std::vector<std::string> datasets;
  std::vector<std::string> numeric_features;
  std::vector<std::string> categorical_features;
  std::string target;  ///< categorical class variable
  /// Class labels; required for the secure path, discovered when empty on
  /// the plain path.
  std::vector<std::string> classes;
  /// Categorical feature domains (parallel to categorical_features);
  /// required for the secure path.
  std::vector<std::vector<std::string>> categorical_domains;
  double laplace_alpha = 1.0;
  federation::AggregationMode mode = federation::AggregationMode::kPlain;
};

struct NaiveBayesModel {
  std::vector<std::string> classes;
  std::vector<double> priors;  ///< per class
  std::vector<std::string> numeric_features;
  /// [class][feature] Gaussian parameters.
  std::vector<std::vector<double>> gaussian_mean;
  std::vector<std::vector<double>> gaussian_var;
  std::vector<std::string> categorical_features;
  std::vector<std::vector<std::string>> categorical_domains;
  /// [class][feature][domain value] smoothed log-probabilities.
  std::vector<std::vector<std::vector<double>>> categorical_logp;
  int64_t n = 0;

  /// Predicts the class for one example (numeric + categorical values in
  /// feature order).
  Result<std::string> Predict(const std::vector<double>& numeric,
                              const std::vector<std::string>& categorical)
      const;

  std::string ToString() const;
};

Result<NaiveBayesModel> RunNaiveBayes(federation::FederationSession* session,
                                      const NaiveBayesSpec& spec);

/// \brief k-fold cross-validated Naive Bayes; held-out accuracy per fold.
struct NaiveBayesCvResult {
  int folds = 0;
  std::vector<double> accuracy_per_fold;
  double mean_accuracy = 0.0;

  std::string ToString() const;
};

Result<NaiveBayesCvResult> RunNaiveBayesCv(
    federation::FederationSession* session, const NaiveBayesSpec& spec,
    int folds);

}  // namespace mip::algorithms

#endif  // MIP_ALGORITHMS_NAIVE_BAYES_H_
