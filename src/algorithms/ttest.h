#ifndef MIP_ALGORITHMS_TTEST_H_
#define MIP_ALGORITHMS_TTEST_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "federation/master.h"

namespace mip::algorithms {

/// Shared result shape of the three federated t-tests.
struct TTestResult {
  double t_statistic = 0.0;
  double degrees_of_freedom = 0.0;
  double p_value = 0.0;
  double mean_difference = 0.0;  ///< mean (or mean - mu0, or group diff)
  double ci_low = 0.0;           ///< 95% confidence interval
  double ci_high = 0.0;
  int64_t n1 = 0;
  int64_t n2 = 0;

  std::string ToString() const;
};

/// \brief One-sample t-test: H0: mean(variable) == mu0. Workers ship
/// (n, sum, sumsq).
struct TTestOneSampleSpec {
  std::vector<std::string> datasets;
  std::string variable;
  double mu0 = 0.0;
  federation::AggregationMode mode = federation::AggregationMode::kPlain;
};
Result<TTestResult> RunTTestOneSample(federation::FederationSession* session,
                                      const TTestOneSampleSpec& spec);

/// \brief Independent two-sample t-test of `variable` between the two
/// levels of `group_variable` (Welch by default, pooled optional).
struct TTestIndependentSpec {
  std::vector<std::string> datasets;
  std::string variable;
  std::string group_variable;
  std::string group_a;  ///< level treated as group 1
  std::string group_b;  ///< level treated as group 2
  bool pooled = false;  ///< false = Welch (unequal variances)
  federation::AggregationMode mode = federation::AggregationMode::kPlain;
};
Result<TTestResult> RunTTestIndependent(federation::FederationSession* session,
                                        const TTestIndependentSpec& spec);

/// \brief Paired t-test of two numeric variables measured on the same rows.
struct TTestPairedSpec {
  std::vector<std::string> datasets;
  std::string variable_a;
  std::string variable_b;
  federation::AggregationMode mode = federation::AggregationMode::kPlain;
};
Result<TTestResult> RunTTestPaired(federation::FederationSession* session,
                                   const TTestPairedSpec& spec);

}  // namespace mip::algorithms

#endif  // MIP_ALGORITHMS_TTEST_H_
