#ifndef MIP_ALGORITHMS_CALIBRATION_BELT_H_
#define MIP_ALGORITHMS_CALIBRATION_BELT_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "federation/master.h"

namespace mip::algorithms {

/// \brief Federated Calibration Belt (GiViTI): assesses the calibration of a
/// probabilistic classifier by fitting a polynomial logistic recalibration
/// of the outcome on logit(predicted probability). The polynomial degree is
/// chosen by forward likelihood-ratio tests; the belt is the pointwise
/// confidence band of the fitted calibration curve over a probability grid.
///
/// Every fitting iteration ships only gradient/Hessian sums — the same
/// federated IRLS machinery as logistic regression.
struct CalibrationBeltSpec {
  std::vector<std::string> datasets;
  std::string probability_variable;  ///< predicted probability in (0, 1)
  std::string outcome_variable;      ///< numeric 0/1 outcome
  int max_degree = 3;
  double lr_test_alpha = 0.95;  ///< significance for the forward LR test
  int grid_points = 20;
  federation::AggregationMode mode = federation::AggregationMode::kPlain;
};

struct CalibrationBeltPoint {
  double predicted = 0.0;  ///< grid probability
  double observed = 0.0;   ///< fitted calibration curve
  double ci80_low = 0.0;
  double ci80_high = 0.0;
  double ci95_low = 0.0;
  double ci95_high = 0.0;
};

struct CalibrationBeltResult {
  int degree = 1;  ///< selected polynomial degree
  std::vector<double> coefficients;
  std::vector<CalibrationBeltPoint> belt;
  int64_t n = 0;
  /// True when the 95% belt contains the diagonal everywhere (the model is
  /// well calibrated).
  bool covers_diagonal_95 = true;

  std::string ToString() const;
};

Result<CalibrationBeltResult> RunCalibrationBelt(
    federation::FederationSession* session, const CalibrationBeltSpec& spec);

}  // namespace mip::algorithms

#endif  // MIP_ALGORITHMS_CALIBRATION_BELT_H_
