#include "algorithms/decision_tree.h"

#include <cmath>
#include <map>
#include <sstream>

#include "algorithms/common.h"
#include "common/string_util.h"

namespace mip::algorithms {

namespace {

double Entropy(const std::map<std::string, double>& counts, double total) {
  if (total <= 0) return 0.0;
  double h = 0.0;
  for (const auto& [cls, n] : counts) {
    if (n <= 0) continue;
    const double p = n / total;
    h -= p * std::log2(p);
  }
  return h;
}

double Gini(const std::map<std::string, double>& counts, double total) {
  if (total <= 0) return 0.0;
  double g = 1.0;
  for (const auto& [cls, n] : counts) {
    const double p = n / total;
    g -= p * p;
  }
  return g;
}

// Does row r satisfy the ID3 path constraints?
bool SatisfiesCategorical(const LocalData& data,
                          const std::vector<std::string>& all_features,
                          size_t r,
                          const std::vector<std::string>& path_features,
                          const std::vector<std::string>& path_values) {
  for (size_t c = 0; c < path_features.size(); ++c) {
    int idx = -1;
    for (size_t j = 0; j < all_features.size(); ++j) {
      if (all_features[j] == path_features[c]) {
        idx = static_cast<int>(j);
        break;
      }
    }
    if (idx < 0) return false;
    if (data.categorical[static_cast<size_t>(idx)][r] != path_values[c]) {
      return false;
    }
  }
  return true;
}

bool SatisfiesNumeric(const LocalData& data,
                      const std::vector<std::string>& all_features, size_t r,
                      const std::vector<std::string>& path_features,
                      const std::vector<double>& path_thresholds,
                      const std::vector<double>& path_dirs) {
  for (size_t c = 0; c < path_features.size(); ++c) {
    int idx = -1;
    for (size_t j = 0; j < all_features.size(); ++j) {
      if (all_features[j] == path_features[c]) {
        idx = static_cast<int>(j);
        break;
      }
    }
    if (idx < 0) return false;
    const double v = data.numeric(r, static_cast<size_t>(idx));
    if (path_dirs[c] < 0.5) {
      if (!(v <= path_thresholds[c])) return false;
    } else {
      if (!(v > path_thresholds[c])) return false;
    }
  }
  return true;
}

Status RegisterSteps(federation::LocalFunctionRegistry* registry) {
  // ID3: class histogram overall and per (feature, value) at the node
  // selected by the path constraints.
  MIP_RETURN_NOT_OK(EnsureLocal(
      registry, "id3.histogram",
      [](federation::WorkerContext& ctx,
         const federation::TransferData& args)
          -> Result<federation::TransferData> {
        MIP_ASSIGN_OR_RETURN(std::vector<std::string> features,
                             args.GetStringList("categorical_vars"));
        MIP_ASSIGN_OR_RETURN(std::string target, args.GetString("target"));
        const std::vector<std::string> path_features =
            args.GetStringListOrEmpty("path_features");
        const std::vector<std::string> path_values =
            args.GetStringListOrEmpty("path_values");
        std::vector<std::string> cats = features;
        cats.push_back(target);
        MIP_ASSIGN_OR_RETURN(
            LocalData data,
            GatherData(ctx, WorkerDatasets(ctx, args), {}, cats));
        const size_t target_idx = features.size();
        std::map<std::string, double> out_counts;
        for (size_t r = 0; r < data.num_rows; ++r) {
          if (!SatisfiesCategorical(data, features, r, path_features,
                                    path_values)) {
            continue;
          }
          const std::string& cls = data.categorical[target_idx][r];
          out_counts["cls/" + cls] += 1;
          for (size_t j = 0; j < features.size(); ++j) {
            out_counts["h/" + features[j] + "/" + data.categorical[j][r] +
                       "/" + cls] += 1;
          }
        }
        federation::TransferData out;
        for (const auto& [k, v] : out_counts) out.PutVector(k, {v});
        return out;
      }));

  // CART: class histogram overall and cumulative (x <= threshold)
  // histograms for each candidate (feature, threshold) at the node.
  MIP_RETURN_NOT_OK(EnsureLocal(
      registry, "cart.histogram",
      [](federation::WorkerContext& ctx,
         const federation::TransferData& args)
          -> Result<federation::TransferData> {
        MIP_ASSIGN_OR_RETURN(std::vector<std::string> features,
                             args.GetStringList("numeric_vars"));
        MIP_ASSIGN_OR_RETURN(std::string target, args.GetString("target"));
        const std::vector<std::string> path_features =
            args.GetStringListOrEmpty("path_features");
        std::vector<double> path_thresholds;
        std::vector<double> path_dirs;
        if (args.HasVector("path_thresholds")) {
          MIP_ASSIGN_OR_RETURN(path_thresholds,
                               args.GetVector("path_thresholds"));
          MIP_ASSIGN_OR_RETURN(path_dirs, args.GetVector("path_dirs"));
        }
        MIP_ASSIGN_OR_RETURN(
            LocalData data,
            GatherData(ctx, WorkerDatasets(ctx, args), features, {target}));
        std::map<std::string, double> out_counts;
        for (size_t r = 0; r < data.num_rows; ++r) {
          if (!SatisfiesNumeric(data, features, r, path_features,
                                path_thresholds, path_dirs)) {
            continue;
          }
          const std::string& cls = data.categorical[0][r];
          out_counts["cls/" + cls] += 1;
          for (size_t j = 0; j < features.size(); ++j) {
            MIP_ASSIGN_OR_RETURN(
                std::vector<double> grid,
                args.GetVector("thr/" + features[j]));
            for (size_t t = 0; t < grid.size(); ++t) {
              if (data.numeric(r, j) <= grid[t]) {
                out_counts["le/" + features[j] + "/" + std::to_string(t) +
                           "/" + cls] += 1;
              }
            }
          }
        }
        federation::TransferData out;
        for (const auto& [k, v] : out_counts) out.PutVector(k, {v});
        return out;
      }));

  // Per-feature min/max for the CART threshold grid.
  MIP_RETURN_NOT_OK(EnsureLocal(
      registry, "cart.ranges",
      [](federation::WorkerContext& ctx,
         const federation::TransferData& args)
          -> Result<federation::TransferData> {
        MIP_ASSIGN_OR_RETURN(std::vector<std::string> features,
                             args.GetStringList("numeric_vars"));
        MIP_ASSIGN_OR_RETURN(
            LocalData data,
            GatherData(ctx, WorkerDatasets(ctx, args), features, {}));
        federation::TransferData out;
        for (size_t j = 0; j < features.size(); ++j) {
          double lo = 1e300, hi = -1e300;
          for (size_t r = 0; r < data.num_rows; ++r) {
            lo = std::min(lo, data.numeric(r, j));
            hi = std::max(hi, data.numeric(r, j));
          }
          out.PutVector("range/" + features[j], {lo, hi});
        }
        return out;
      }));
  return Status::OK();
}

// Merges dynamic count keys across workers' transfers.
std::map<std::string, double> MergeCounts(
    const std::vector<federation::TransferData>& parts) {
  std::map<std::string, double> merged;
  for (const auto& part : parts) {
    for (const auto& [k, v] : part.vectors()) merged[k] += v[0];
  }
  return merged;
}

std::string MajorityClass(const std::map<std::string, double>& counts) {
  std::string best;
  double best_n = -1;
  for (const auto& [cls, n] : counts) {
    if (n > best_n) {
      best_n = n;
      best = cls;
    }
  }
  return best;
}

struct TreeMetrics {
  int nodes = 0;
  int depth = 0;
};

// --- ID3 recursion ---------------------------------------------------------

Result<std::unique_ptr<TreeNode>> GrowId3(
    federation::FederationSession* session, const Id3Spec& spec,
    std::vector<std::string> remaining,
    const std::vector<std::string>& path_features,
    const std::vector<std::string>& path_values, int depth,
    TreeMetrics* metrics) {
  federation::TransferData args = MakeArgs(spec.datasets, {}, remaining);
  args.PutString("target", spec.target);
  args.PutStringList("path_features", path_features);
  args.PutStringList("path_values", path_values);
  MIP_ASSIGN_OR_RETURN(std::vector<federation::TransferData> parts,
                       session->LocalRun("id3.histogram", args));
  const std::map<std::string, double> merged = MergeCounts(parts);

  std::map<std::string, double> cls_counts;
  double total = 0;
  for (const auto& [k, v] : merged) {
    if (StartsWith(k, "cls/")) {
      cls_counts[k.substr(4)] = v;
      total += v;
    }
  }
  auto node = std::make_unique<TreeNode>();
  node->n = static_cast<int64_t>(std::llround(total));
  node->impurity = Entropy(cls_counts, total);
  node->prediction = MajorityClass(cls_counts);
  ++metrics->nodes;
  metrics->depth = std::max(metrics->depth, depth);

  if (depth >= spec.max_depth || node->n < spec.min_samples_split ||
      node->impurity <= 1e-12 || remaining.empty()) {
    return node;
  }

  // Pick the feature with the highest information gain.
  std::string best_feature;
  double best_gain = 1e-9;
  std::vector<std::string> best_values;
  for (const std::string& f : remaining) {
    // value -> (class -> count)
    std::map<std::string, std::map<std::string, double>> by_value;
    for (const auto& [k, v] : merged) {
      if (!StartsWith(k, "h/" + f + "/")) continue;
      const std::vector<std::string> bits = Split(k, '/');
      if (bits.size() != 4) continue;
      by_value[bits[2]][bits[3]] += v;
    }
    if (by_value.size() < 2) continue;
    double cond = 0.0;
    for (const auto& [value, counts] : by_value) {
      double n_v = 0;
      for (const auto& [cls, n] : counts) n_v += n;
      cond += (n_v / total) * Entropy(counts, n_v);
    }
    const double gain = node->impurity - cond;
    if (gain > best_gain) {
      best_gain = gain;
      best_feature = f;
      best_values.clear();
      for (const auto& [value, counts] : by_value) {
        best_values.push_back(value);
      }
    }
  }
  if (best_feature.empty()) return node;

  node->is_leaf = false;
  node->categorical_split = true;
  node->split_feature = best_feature;
  node->split_values = best_values;
  std::vector<std::string> child_remaining;
  for (const std::string& f : remaining) {
    if (f != best_feature) child_remaining.push_back(f);
  }
  for (const std::string& value : best_values) {
    std::vector<std::string> pf = path_features;
    std::vector<std::string> pv = path_values;
    pf.push_back(best_feature);
    pv.push_back(value);
    MIP_ASSIGN_OR_RETURN(
        std::unique_ptr<TreeNode> child,
        GrowId3(session, spec, child_remaining, pf, pv, depth + 1, metrics));
    node->children.push_back(std::move(child));
  }
  return node;
}

// --- CART recursion --------------------------------------------------------

Result<std::unique_ptr<TreeNode>> GrowCart(
    federation::FederationSession* session, const CartSpec& spec,
    const std::map<std::string, std::vector<double>>& grids,
    const std::vector<std::string>& path_features,
    const std::vector<double>& path_thresholds,
    const std::vector<double>& path_dirs, int depth, TreeMetrics* metrics) {
  federation::TransferData args = MakeArgs(spec.datasets, spec.features);
  args.PutString("target", spec.target);
  args.PutStringList("path_features", path_features);
  args.PutVector("path_thresholds", path_thresholds);
  args.PutVector("path_dirs", path_dirs);
  for (const auto& [f, grid] : grids) args.PutVector("thr/" + f, grid);
  MIP_ASSIGN_OR_RETURN(std::vector<federation::TransferData> parts,
                       session->LocalRun("cart.histogram", args));
  const std::map<std::string, double> merged = MergeCounts(parts);

  std::map<std::string, double> cls_counts;
  double total = 0;
  for (const auto& [k, v] : merged) {
    if (StartsWith(k, "cls/")) {
      cls_counts[k.substr(4)] = v;
      total += v;
    }
  }
  auto node = std::make_unique<TreeNode>();
  node->n = static_cast<int64_t>(std::llround(total));
  node->impurity = Gini(cls_counts, total);
  node->prediction = MajorityClass(cls_counts);
  ++metrics->nodes;
  metrics->depth = std::max(metrics->depth, depth);

  if (depth >= spec.max_depth || node->n < spec.min_samples_split ||
      node->impurity <= 1e-12) {
    return node;
  }

  std::string best_feature;
  double best_threshold = 0.0;
  double best_score = node->impurity - 1e-9;
  for (const std::string& f : spec.features) {
    const std::vector<double>& grid = grids.at(f);
    for (size_t t = 0; t < grid.size(); ++t) {
      std::map<std::string, double> left;
      double n_left = 0;
      for (const auto& [cls, n] : cls_counts) {
        auto it =
            merged.find("le/" + f + "/" + std::to_string(t) + "/" + cls);
        const double c = it != merged.end() ? it->second : 0.0;
        left[cls] = c;
        n_left += c;
      }
      const double n_right = total - n_left;
      if (n_left < 1 || n_right < 1) continue;
      std::map<std::string, double> right;
      for (const auto& [cls, n] : cls_counts) right[cls] = n - left[cls];
      const double score = (n_left / total) * Gini(left, n_left) +
                           (n_right / total) * Gini(right, n_right);
      if (score < best_score) {
        best_score = score;
        best_feature = f;
        best_threshold = grid[t];
      }
    }
  }
  if (best_feature.empty()) return node;

  node->is_leaf = false;
  node->categorical_split = false;
  node->split_feature = best_feature;
  node->threshold = best_threshold;
  for (double dir : {0.0, 1.0}) {
    std::vector<std::string> pf = path_features;
    std::vector<double> pt = path_thresholds;
    std::vector<double> pd = path_dirs;
    pf.push_back(best_feature);
    pt.push_back(best_threshold);
    pd.push_back(dir);
    MIP_ASSIGN_OR_RETURN(
        std::unique_ptr<TreeNode> child,
        GrowCart(session, spec, grids, pf, pt, pd, depth + 1, metrics));
    node->children.push_back(std::move(child));
  }
  return node;
}

}  // namespace

Result<DecisionTreeResult> RunId3(federation::FederationSession* session,
                                  const Id3Spec& spec) {
  if (spec.mode == federation::AggregationMode::kSecure) {
    return Status::NotImplemented(
        "ID3 currently supports the plain aggregation path (dynamic "
        "histogram shapes)");
  }
  MIP_RETURN_NOT_OK(RegisterSteps(session->master().functions().get()));
  DecisionTreeResult out;
  TreeMetrics metrics;
  MIP_ASSIGN_OR_RETURN(out.root, GrowId3(session, spec, spec.features, {}, {},
                                         0, &metrics));
  out.nodes = metrics.nodes;
  out.depth = metrics.depth;
  return out;
}

Result<DecisionTreeResult> RunCart(federation::FederationSession* session,
                                   const CartSpec& spec) {
  if (spec.mode == federation::AggregationMode::kSecure) {
    return Status::NotImplemented(
        "CART currently supports the plain aggregation path");
  }
  MIP_RETURN_NOT_OK(RegisterSteps(session->master().functions().get()));

  // Build the per-feature threshold grid once from federated ranges.
  federation::TransferData range_args = MakeArgs(spec.datasets, spec.features);
  MIP_ASSIGN_OR_RETURN(std::vector<federation::TransferData> parts,
                       session->LocalRun("cart.ranges", range_args));
  std::map<std::string, std::vector<double>> grids;
  for (const std::string& f : spec.features) {
    double lo = 1e300, hi = -1e300;
    for (const auto& part : parts) {
      if (!part.HasVector("range/" + f)) continue;
      MIP_ASSIGN_OR_RETURN(std::vector<double> range,
                           part.GetVector("range/" + f));
      lo = std::min(lo, range[0]);
      hi = std::max(hi, range[1]);
    }
    std::vector<double> grid;
    const int k = std::max(1, spec.candidate_thresholds);
    for (int t = 1; t <= k; ++t) {
      grid.push_back(lo + (hi - lo) * static_cast<double>(t) /
                              static_cast<double>(k + 1));
    }
    grids[f] = std::move(grid);
  }

  DecisionTreeResult out;
  TreeMetrics metrics;
  MIP_ASSIGN_OR_RETURN(out.root,
                       GrowCart(session, spec, grids, {}, {}, {}, 0,
                                &metrics));
  out.nodes = metrics.nodes;
  out.depth = metrics.depth;
  return out;
}

std::string TreeNode::ToString(int indent) const {
  std::ostringstream os;
  const std::string pad(static_cast<size_t>(indent) * 2, ' ');
  if (is_leaf) {
    os << pad << "leaf -> " << prediction << " (n=" << n
       << ", impurity=" << impurity << ")\n";
    return os.str();
  }
  if (categorical_split) {
    os << pad << "split on " << split_feature << " (n=" << n << ")\n";
    for (size_t i = 0; i < children.size(); ++i) {
      os << pad << " = " << split_values[i] << ":\n"
         << children[i]->ToString(indent + 1);
    }
  } else {
    os << pad << "split on " << split_feature << " <= " << threshold
       << " (n=" << n << ")\n";
    os << children[0]->ToString(indent + 1);
    os << pad << " > " << threshold << ":\n"
       << children[1]->ToString(indent + 1);
  }
  return os.str();
}

std::string DecisionTreeResult::ToString() const {
  std::ostringstream os;
  os << "Decision tree: " << nodes << " nodes, depth " << depth << "\n";
  if (root != nullptr) os << root->ToString(1);
  return os.str();
}

}  // namespace mip::algorithms
