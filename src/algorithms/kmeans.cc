#include "algorithms/kmeans.h"

#include <cmath>
#include <sstream>

#include "algorithms/common.h"
#include "engine/exec_context.h"
#include "common/rng.h"

namespace mip::algorithms {

namespace {

Status RegisterSteps(federation::LocalFunctionRegistry* registry) {
  // Per-variable moments for initialization / standardization.
  MIP_RETURN_NOT_OK(EnsureLocal(
      registry, "kmeans.moments",
      [](federation::WorkerContext& ctx,
         const federation::TransferData& args)
          -> Result<federation::TransferData> {
        MIP_ASSIGN_OR_RETURN(std::vector<std::string> vars,
                             args.GetStringList("numeric_vars"));
        MIP_ASSIGN_OR_RETURN(
            LocalData data,
            GatherData(ctx, WorkerDatasets(ctx, args), vars, {}));
        const size_t d = vars.size();
        // Per-morsel partial sums merged in morsel order (deterministic at
        // any thread count).
        const engine::ExecContext& exec = ctx.exec();
        struct Partial {
          std::vector<double> sum, sumsq;
        };
        std::vector<Partial> parts(exec.NumMorsels(data.num_rows));
        exec.ForEachMorsel(
            data.num_rows, [&](size_t m, size_t begin, size_t end) {
              Partial& part = parts[m];
              part.sum.assign(d, 0.0);
              part.sumsq.assign(d, 0.0);
              for (size_t r = begin; r < end; ++r) {
                for (size_t j = 0; j < d; ++j) {
                  part.sum[j] += data.numeric(r, j);
                  part.sumsq[j] += data.numeric(r, j) * data.numeric(r, j);
                }
              }
            });
        std::vector<double> sum(d, 0.0), sumsq(d, 0.0);
        for (const Partial& part : parts) {
          for (size_t j = 0; j < d; ++j) {
            sum[j] += part.sum[j];
            sumsq[j] += part.sumsq[j];
          }
        }
        federation::TransferData out;
        out.PutScalar("n", static_cast<double>(data.num_rows));
        out.PutVector("sum", std::move(sum));
        out.PutVector("sumsq", std::move(sumsq));
        return out;
      }));

  // Lloyd assignment step: per-cluster sums, counts, and inertia.
  MIP_RETURN_NOT_OK(EnsureLocal(
      registry, "kmeans.assign",
      [](federation::WorkerContext& ctx,
         const federation::TransferData& args)
          -> Result<federation::TransferData> {
        MIP_ASSIGN_OR_RETURN(std::vector<std::string> vars,
                             args.GetStringList("numeric_vars"));
        MIP_ASSIGN_OR_RETURN(stats::Matrix centroids,
                             args.GetMatrix("centroids"));
        MIP_ASSIGN_OR_RETURN(std::vector<double> mean,
                             args.GetVector("standardize_mean"));
        MIP_ASSIGN_OR_RETURN(std::vector<double> scale,
                             args.GetVector("standardize_scale"));
        MIP_ASSIGN_OR_RETURN(
            LocalData data,
            GatherData(ctx, WorkerDatasets(ctx, args), vars, {}));
        const size_t d = vars.size();
        const size_t k = centroids.rows();
        // Morsel-parallel Lloyd assignment: each morsel assigns its rows
        // against the fixed centroids and accumulates private per-cluster
        // sums; partials merge in morsel order.
        const engine::ExecContext& exec = ctx.exec();
        struct Partial {
          stats::Matrix sums;
          std::vector<double> counts;
          double inertia = 0.0;
        };
        std::vector<Partial> parts(exec.NumMorsels(data.num_rows));
        exec.ForEachMorsel(
            data.num_rows, [&](size_t m, size_t begin, size_t end) {
              Partial& part = parts[m];
              part.sums = stats::Matrix(k, d);
              part.counts.assign(k, 0.0);
              std::vector<double> x(d);
              for (size_t r = begin; r < end; ++r) {
                for (size_t j = 0; j < d; ++j) {
                  x[j] = (data.numeric(r, j) - mean[j]) / scale[j];
                }
                size_t best = 0;
                double best_dist = 1e300;
                for (size_t c = 0; c < k; ++c) {
                  double dist = 0.0;
                  for (size_t j = 0; j < d; ++j) {
                    const double diff = x[j] - centroids(c, j);
                    dist += diff * diff;
                  }
                  if (dist < best_dist) {
                    best_dist = dist;
                    best = c;
                  }
                }
                for (size_t j = 0; j < d; ++j) part.sums(best, j) += x[j];
                part.counts[best] += 1.0;
                part.inertia += best_dist;
              }
            });
        stats::Matrix sums(k, d);
        std::vector<double> counts(k, 0.0);
        double inertia = 0.0;
        for (const Partial& part : parts) {
          for (size_t c = 0; c < k; ++c) {
            for (size_t j = 0; j < d; ++j) sums(c, j) += part.sums(c, j);
            counts[c] += part.counts[c];
          }
          inertia += part.inertia;
        }
        federation::TransferData out;
        out.PutMatrix("sums", std::move(sums));
        out.PutVector("counts", std::move(counts));
        out.PutScalar("inertia", inertia);
        return out;
      }));
  return Status::OK();
}

}  // namespace

Result<KMeansResult> RunKMeans(federation::FederationSession* session,
                               const KMeansSpec& spec) {
  MIP_RETURN_NOT_OK(RegisterSteps(session->master().functions().get()));
  const size_t d = spec.variables.size();
  const size_t k = static_cast<size_t>(spec.k);

  federation::TransferData args = MakeArgs(spec.datasets, spec.variables);

  // Federated moments for init ranges and (optionally) standardization.
  MIP_ASSIGN_OR_RETURN(
      federation::TransferData mom,
      session->LocalRunAndAggregate("kmeans.moments", args, spec.mode));
  MIP_ASSIGN_OR_RETURN(double n_total, mom.GetScalar("n"));
  MIP_ASSIGN_OR_RETURN(std::vector<double> sum, mom.GetVector("sum"));
  MIP_ASSIGN_OR_RETURN(std::vector<double> sumsq, mom.GetVector("sumsq"));
  if (n_total < static_cast<double>(k)) {
    return Status::ExecutionError("fewer rows than clusters");
  }
  std::vector<double> mean(d), stddev(d);
  for (size_t j = 0; j < d; ++j) {
    mean[j] = sum[j] / n_total;
    const double var =
        std::max(0.0, (sumsq[j] - sum[j] * sum[j] / n_total) /
                          std::max(1.0, n_total - 1.0));
    stddev[j] = std::sqrt(var);
    if (stddev[j] <= 0) stddev[j] = 1.0;
  }
  std::vector<double> std_mean(d, 0.0), std_scale(d, 1.0);
  if (spec.standardize) {
    std_mean = mean;
    std_scale = stddev;
  }

  // Initialize centroids: spread across +-2 sd around the federated mean in
  // standardized space (deterministic given the seed).
  Rng rng(spec.seed);
  stats::Matrix centroids(k, d);
  for (size_t c = 0; c < k; ++c) {
    for (size_t j = 0; j < d; ++j) {
      const double m = spec.standardize ? 0.0 : mean[j];
      const double s = spec.standardize ? 1.0 : stddev[j];
      centroids(c, j) = m + s * rng.NextUniform(-2.0, 2.0);
    }
  }

  KMeansResult result;
  args.PutVector("standardize_mean", std_mean);
  args.PutVector("standardize_scale", std_scale);

  for (int iter = 0; iter < spec.max_iterations; ++iter) {
    args.PutMatrix("centroids", centroids);
    MIP_ASSIGN_OR_RETURN(
        federation::TransferData agg,
        session->LocalRunAndAggregate("kmeans.assign", args, spec.mode));
    MIP_ASSIGN_OR_RETURN(stats::Matrix sums, agg.GetMatrix("sums"));
    MIP_ASSIGN_OR_RETURN(std::vector<double> counts,
                         agg.GetVector("counts"));
    MIP_ASSIGN_OR_RETURN(result.inertia, agg.GetScalar("inertia"));

    double movement = 0.0;
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] < 0.5) continue;  // empty cluster keeps its centroid
      for (size_t j = 0; j < d; ++j) {
        const double next = sums(c, j) / counts[c];
        movement += std::fabs(next - centroids(c, j));
        centroids(c, j) = next;
      }
    }
    result.iterations = iter + 1;
    result.cluster_sizes.assign(k, 0);
    for (size_t c = 0; c < k; ++c) {
      result.cluster_sizes[c] = static_cast<int64_t>(std::llround(counts[c]));
    }
    if (movement < spec.tolerance) {
      result.converged = true;
      break;
    }
  }

  // Report centroids in original units.
  result.centroids = stats::Matrix(k, d);
  for (size_t c = 0; c < k; ++c) {
    for (size_t j = 0; j < d; ++j) {
      result.centroids(c, j) = centroids(c, j) * std_scale[j] + std_mean[j];
    }
  }
  return result;
}

std::string KMeansResult::ToString() const {
  std::ostringstream os;
  os.precision(4);
  os << std::fixed;
  os << "k-means: " << centroids.rows() << " clusters, inertia=" << inertia
     << ", iterations=" << iterations
     << (converged ? " (converged)" : " (max iterations)") << "\n";
  for (size_t c = 0; c < centroids.rows(); ++c) {
    os << "  cluster " << c << " (n=" << cluster_sizes[c] << "): [";
    for (size_t j = 0; j < centroids.cols(); ++j) {
      if (j > 0) os << ", ";
      os << centroids(c, j);
    }
    os << "]\n";
  }
  return os.str();
}

}  // namespace mip::algorithms
