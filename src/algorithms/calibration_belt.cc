#include "algorithms/calibration_belt.h"

#include <cmath>
#include <sstream>

#include "algorithms/common.h"
#include "stats/distributions.h"
#include "stats/linalg.h"

namespace mip::algorithms {

namespace {

double Sigmoid(double z) {
  if (z >= 0) return 1.0 / (1.0 + std::exp(-z));
  const double e = std::exp(z);
  return e / (1.0 + e);
}

double Logit(double p) {
  const double q = std::min(std::max(p, 1e-8), 1.0 - 1e-8);
  return std::log(q / (1.0 - q));
}

Status RegisterSteps(federation::LocalFunctionRegistry* registry) {
  // IRLS step on the polynomial-in-logit design: features are
  // [1, l, l^2, ..., l^degree] with l = logit(p_hat).
  return EnsureLocal(
      registry, "calbelt.step",
      [](federation::WorkerContext& ctx,
         const federation::TransferData& args)
          -> Result<federation::TransferData> {
        MIP_ASSIGN_OR_RETURN(std::vector<std::string> vars,
                             args.GetStringList("numeric_vars"));
        MIP_ASSIGN_OR_RETURN(double degree_d, args.GetScalar("degree"));
        MIP_ASSIGN_OR_RETURN(std::vector<double> beta,
                             args.GetVector("beta"));
        const int degree = static_cast<int>(degree_d);
        MIP_ASSIGN_OR_RETURN(
            LocalData data,
            GatherData(ctx, WorkerDatasets(ctx, args), vars, {}));
        const size_t p = static_cast<size_t>(degree) + 1;
        std::vector<double> grad(p, 0.0);
        stats::Matrix hess(p, p);
        double ll = 0.0, n = 0.0;
        std::vector<double> x(p);
        for (size_t r = 0; r < data.num_rows; ++r) {
          const double prob = data.numeric(r, 0);
          const double y = data.numeric(r, 1) >= 0.5 ? 1.0 : 0.0;
          const double l = Logit(prob);
          x[0] = 1.0;
          for (size_t j = 1; j < p; ++j) x[j] = x[j - 1] * l;
          double z = 0.0;
          for (size_t j = 0; j < p; ++j) z += beta[j] * x[j];
          const double mu = Sigmoid(z);
          ll += y * std::log(std::max(mu, 1e-300)) +
                (1 - y) * std::log(std::max(1 - mu, 1e-300));
          const double w = mu * (1 - mu);
          for (size_t j = 0; j < p; ++j) {
            grad[j] += (y - mu) * x[j];
            for (size_t k = 0; k < p; ++k) hess(j, k) += w * x[j] * x[k];
          }
          n += 1;
        }
        federation::TransferData out;
        out.PutVector("grad", std::move(grad));
        out.PutMatrix("hess", std::move(hess));
        out.PutScalar("ll", ll);
        out.PutScalar("n", n);
        return out;
      });
}

struct PolyFit {
  std::vector<double> beta;
  stats::Matrix cov;  // inverse Hessian
  double ll = 0.0;
  double n = 0.0;
};

Result<PolyFit> FitDegree(federation::FederationSession* session,
                          const CalibrationBeltSpec& spec, int degree) {
  const size_t p = static_cast<size_t>(degree) + 1;
  PolyFit fit;
  fit.beta.assign(p, 0.0);
  federation::TransferData args =
      MakeArgs(spec.datasets,
               {spec.probability_variable, spec.outcome_variable});
  args.PutScalar("degree", degree);
  for (int iter = 0; iter < 30; ++iter) {
    args.PutVector("beta", fit.beta);
    MIP_ASSIGN_OR_RETURN(
        federation::TransferData agg,
        session->LocalRunAndAggregate("calbelt.step", args, spec.mode));
    MIP_ASSIGN_OR_RETURN(std::vector<double> grad, agg.GetVector("grad"));
    MIP_ASSIGN_OR_RETURN(stats::Matrix hess, agg.GetMatrix("hess"));
    MIP_ASSIGN_OR_RETURN(fit.ll, agg.GetScalar("ll"));
    MIP_ASSIGN_OR_RETURN(fit.n, agg.GetScalar("n"));
    for (size_t j = 0; j < p; ++j) hess(j, j) += 1e-9;
    MIP_ASSIGN_OR_RETURN(std::vector<double> step,
                         stats::SolveSpd(hess, grad));
    double norm = 0.0;
    for (size_t j = 0; j < p; ++j) {
      fit.beta[j] += step[j];
      norm += step[j] * step[j];
    }
    MIP_ASSIGN_OR_RETURN(fit.cov, stats::InverseSpd(hess));
    if (std::sqrt(norm) < 1e-9) break;
  }
  return fit;
}

}  // namespace

Result<CalibrationBeltResult> RunCalibrationBelt(
    federation::FederationSession* session, const CalibrationBeltSpec& spec) {
  MIP_RETURN_NOT_OK(RegisterSteps(session->master().functions().get()));

  // Forward selection: start at degree 1, extend while the LR test accepts.
  MIP_ASSIGN_OR_RETURN(PolyFit current, FitDegree(session, spec, 1));
  int degree = 1;
  for (int d = 2; d <= spec.max_degree; ++d) {
    MIP_ASSIGN_OR_RETURN(PolyFit next, FitDegree(session, spec, d));
    const double lr = 2.0 * (next.ll - current.ll);
    const double crit = stats::ChiSquaredCdf(lr, 1.0);
    if (crit >= spec.lr_test_alpha) {
      current = std::move(next);
      degree = d;
    } else {
      break;
    }
  }

  CalibrationBeltResult out;
  out.degree = degree;
  out.coefficients = current.beta;
  out.n = static_cast<int64_t>(std::llround(current.n));

  const size_t p = current.beta.size();
  const double z80 = 1.2815515655446004;  // one-sided 90% => 80% band
  const double z95 = 1.959963984540054;
  for (int g = 0; g < spec.grid_points; ++g) {
    const double prob =
        (static_cast<double>(g) + 0.5) / static_cast<double>(spec.grid_points);
    const double l = Logit(prob);
    std::vector<double> x(p);
    x[0] = 1.0;
    for (size_t j = 1; j < p; ++j) x[j] = x[j - 1] * l;
    double eta = 0.0;
    for (size_t j = 0; j < p; ++j) eta += current.beta[j] * x[j];
    // Delta-method variance of the linear predictor.
    double var = 0.0;
    for (size_t i = 0; i < p; ++i) {
      for (size_t j = 0; j < p; ++j) {
        var += x[i] * current.cov(i, j) * x[j];
      }
    }
    const double se = std::sqrt(std::max(var, 0.0));
    CalibrationBeltPoint pt;
    pt.predicted = prob;
    pt.observed = Sigmoid(eta);
    pt.ci80_low = Sigmoid(eta - z80 * se);
    pt.ci80_high = Sigmoid(eta + z80 * se);
    pt.ci95_low = Sigmoid(eta - z95 * se);
    pt.ci95_high = Sigmoid(eta + z95 * se);
    if (prob < pt.ci95_low || prob > pt.ci95_high) {
      out.covers_diagonal_95 = false;
    }
    out.belt.push_back(pt);
  }
  return out;
}

std::string CalibrationBeltResult::ToString() const {
  std::ostringstream os;
  os.precision(4);
  os << std::fixed;
  os << "Calibration belt (n=" << n << ", degree=" << degree << ", "
     << (covers_diagonal_95 ? "well calibrated at 95%"
                            : "MIScalibrated at 95%")
     << ")\n";
  for (const CalibrationBeltPoint& p : belt) {
    os << "  p=" << p.predicted << " obs=" << p.observed << " 95% ["
       << p.ci95_low << ", " << p.ci95_high << "]\n";
  }
  return os.str();
}

}  // namespace mip::algorithms
