#include "algorithms/pearson.h"

#include <cmath>
#include <sstream>

#include "algorithms/common.h"
#include "stats/distributions.h"

namespace mip::algorithms {

namespace {

Status RegisterSteps(federation::LocalFunctionRegistry* registry) {
  return EnsureLocal(
      registry, "pearson.sums",
      [](federation::WorkerContext& ctx,
         const federation::TransferData& args)
          -> Result<federation::TransferData> {
        MIP_ASSIGN_OR_RETURN(std::vector<std::string> vars,
                             args.GetStringList("numeric_vars"));
        MIP_ASSIGN_OR_RETURN(
            LocalData data,
            GatherData(ctx, WorkerDatasets(ctx, args), vars, {}));
        const size_t d = vars.size();
        stats::Matrix cross(d, d);
        std::vector<double> sum(d, 0.0);
        for (size_t r = 0; r < data.num_rows; ++r) {
          for (size_t i = 0; i < d; ++i) {
            sum[i] += data.numeric(r, i);
            for (size_t j = 0; j < d; ++j) {
              cross(i, j) += data.numeric(r, i) * data.numeric(r, j);
            }
          }
        }
        federation::TransferData out;
        out.PutScalar("n", static_cast<double>(data.num_rows));
        out.PutVector("sum", std::move(sum));
        out.PutMatrix("cross", std::move(cross));
        return out;
      });
}

}  // namespace

Result<PearsonResult> RunPearson(federation::FederationSession* session,
                                 const PearsonSpec& spec) {
  if (spec.variables.size() < 2) {
    return Status::InvalidArgument("Pearson needs at least two variables");
  }
  MIP_RETURN_NOT_OK(RegisterSteps(session->master().functions().get()));
  federation::TransferData args = MakeArgs(spec.datasets, spec.variables);
  MIP_ASSIGN_OR_RETURN(
      federation::TransferData agg,
      session->LocalRunAndAggregate("pearson.sums", args, spec.mode));
  MIP_ASSIGN_OR_RETURN(double n, agg.GetScalar("n"));
  MIP_ASSIGN_OR_RETURN(std::vector<double> sum, agg.GetVector("sum"));
  MIP_ASSIGN_OR_RETURN(stats::Matrix cross, agg.GetMatrix("cross"));
  if (n < 3) return Status::ExecutionError("not enough rows for correlation");

  const size_t d = spec.variables.size();
  PearsonResult out;
  out.variables = spec.variables;
  out.n = static_cast<int64_t>(std::llround(n));
  out.correlations = stats::Matrix(d, d);
  out.p_values = stats::Matrix(d, d);
  for (size_t i = 0; i < d; ++i) {
    for (size_t j = 0; j < d; ++j) {
      const double cov = cross(i, j) - sum[i] * sum[j] / n;
      const double var_i = cross(i, i) - sum[i] * sum[i] / n;
      const double var_j = cross(j, j) - sum[j] * sum[j] / n;
      double r = i == j ? 1.0 : cov / std::sqrt(var_i * var_j);
      r = std::max(-1.0, std::min(1.0, r));
      out.correlations(i, j) = r;
      if (i == j) {
        out.p_values(i, j) = 0.0;
      } else {
        const double df = n - 2.0;
        const double t =
            r * std::sqrt(df / std::max(1e-300, 1.0 - r * r));
        out.p_values(i, j) = stats::StudentTTwoSidedP(t, df);
      }
    }
  }
  return out;
}

Result<double> PearsonResult::Correlation(const std::string& a,
                                          const std::string& b) const {
  int ia = -1, ib = -1;
  for (size_t i = 0; i < variables.size(); ++i) {
    if (variables[i] == a) ia = static_cast<int>(i);
    if (variables[i] == b) ib = static_cast<int>(i);
  }
  if (ia < 0 || ib < 0) return Status::NotFound("variable not in result");
  return correlations(static_cast<size_t>(ia), static_cast<size_t>(ib));
}

std::string PearsonResult::ToString() const {
  std::ostringstream os;
  os.precision(4);
  os << std::fixed;
  os << "Pearson correlation (n=" << n << "):\n";
  for (size_t i = 0; i < variables.size(); ++i) {
    for (size_t j = i + 1; j < variables.size(); ++j) {
      os << "  " << variables[i] << " ~ " << variables[j] << ": r="
         << correlations(i, j) << " p=" << p_values(i, j) << "\n";
    }
  }
  return os.str();
}

}  // namespace mip::algorithms
