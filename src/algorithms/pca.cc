#include "algorithms/pca.h"

#include <cmath>
#include <sstream>

#include "algorithms/common.h"
#include "stats/linalg.h"

namespace mip::algorithms {

namespace {

Status RegisterSteps(federation::LocalFunctionRegistry* registry) {
  return EnsureLocal(
      registry, "pca.gram",
      [](federation::WorkerContext& ctx,
         const federation::TransferData& args)
          -> Result<federation::TransferData> {
        MIP_ASSIGN_OR_RETURN(std::vector<std::string> vars,
                             args.GetStringList("numeric_vars"));
        MIP_ASSIGN_OR_RETURN(
            LocalData data,
            GatherData(ctx, WorkerDatasets(ctx, args), vars, {}));
        const size_t d = vars.size();
        stats::Matrix gram(d, d);
        std::vector<double> sum(d, 0.0);
        for (size_t r = 0; r < data.num_rows; ++r) {
          for (size_t i = 0; i < d; ++i) {
            sum[i] += data.numeric(r, i);
            for (size_t j = 0; j < d; ++j) {
              gram(i, j) += data.numeric(r, i) * data.numeric(r, j);
            }
          }
        }
        federation::TransferData out;
        out.PutScalar("n", static_cast<double>(data.num_rows));
        out.PutVector("sum", std::move(sum));
        out.PutMatrix("gram", std::move(gram));
        return out;
      });
}

}  // namespace

Result<PcaResult> RunPca(federation::FederationSession* session,
                         const PcaSpec& spec) {
  MIP_RETURN_NOT_OK(RegisterSteps(session->master().functions().get()));
  federation::TransferData args = MakeArgs(spec.datasets, spec.variables);
  MIP_ASSIGN_OR_RETURN(
      federation::TransferData agg,
      session->LocalRunAndAggregate("pca.gram", args, spec.mode));
  MIP_ASSIGN_OR_RETURN(double n, agg.GetScalar("n"));
  MIP_ASSIGN_OR_RETURN(std::vector<double> sum, agg.GetVector("sum"));
  MIP_ASSIGN_OR_RETURN(stats::Matrix gram, agg.GetMatrix("gram"));
  const size_t d = spec.variables.size();
  if (n < 2) return Status::ExecutionError("not enough rows for PCA");

  // Covariance from the aggregated Gram matrix.
  stats::Matrix cov(d, d);
  std::vector<double> mean(d);
  for (size_t i = 0; i < d; ++i) mean[i] = sum[i] / n;
  for (size_t i = 0; i < d; ++i) {
    for (size_t j = 0; j < d; ++j) {
      cov(i, j) = (gram(i, j) - n * mean[i] * mean[j]) / (n - 1.0);
    }
  }
  if (spec.scale) {
    std::vector<double> sd(d);
    for (size_t i = 0; i < d; ++i) {
      sd[i] = std::sqrt(std::max(cov(i, i), 1e-300));
    }
    for (size_t i = 0; i < d; ++i) {
      for (size_t j = 0; j < d; ++j) cov(i, j) /= sd[i] * sd[j];
    }
  }

  MIP_ASSIGN_OR_RETURN(stats::EigenResult eig, stats::EigenSymmetric(cov));
  PcaResult out;
  out.n = static_cast<int64_t>(std::llround(n));
  out.eigenvalues = eig.eigenvalues;
  out.components = eig.eigenvectors;
  out.means = std::move(mean);
  double total = 0.0;
  for (double v : out.eigenvalues) total += std::max(v, 0.0);
  for (double v : out.eigenvalues) {
    out.explained_ratio.push_back(total > 0 ? std::max(v, 0.0) / total : 0.0);
  }
  return out;
}

std::string PcaResult::ToString() const {
  std::ostringstream os;
  os.precision(4);
  os << std::fixed;
  os << "PCA (n=" << n << "):\n";
  for (size_t i = 0; i < eigenvalues.size(); ++i) {
    os << "  PC" << i + 1 << ": eigenvalue=" << eigenvalues[i]
       << " explained=" << explained_ratio[i] * 100 << "%\n";
  }
  return os.str();
}

}  // namespace mip::algorithms
