#include "algorithms/common.h"

#include <cmath>

namespace mip::algorithms {

Status EnsureLocal(federation::LocalFunctionRegistry* registry,
                   const std::string& name, federation::LocalFn fn) {
  if (registry->Has(name)) return Status::OK();
  return registry->Register(name, std::move(fn));
}

std::vector<std::string> WorkerDatasets(
    federation::WorkerContext& ctx, const federation::TransferData& args) {
  const std::vector<std::string> filter =
      args.GetStringListOrEmpty("datasets");
  std::vector<std::string> out;
  for (const std::string& hosted : ctx.datasets()) {
    if (filter.empty()) {
      out.push_back(hosted);
      continue;
    }
    for (const std::string& f : filter) {
      if (f == hosted) {
        out.push_back(hosted);
        break;
      }
    }
  }
  return out;
}

Result<LocalData> GatherData(
    federation::WorkerContext& ctx, const std::vector<std::string>& datasets,
    const std::vector<std::string>& numeric_vars,
    const std::vector<std::string>& categorical_vars) {
  LocalData out;
  std::vector<std::vector<double>> numeric_rows;
  out.categorical.resize(categorical_vars.size());

  for (const std::string& ds : datasets) {
    MIP_ASSIGN_OR_RETURN(engine::Table table, ctx.db().GetTable(ds));
    std::vector<const engine::Column*> num_cols;
    for (const std::string& v : numeric_vars) {
      MIP_ASSIGN_OR_RETURN(const engine::Column* c, table.ColumnByName(v));
      num_cols.push_back(c);
    }
    std::vector<const engine::Column*> cat_cols;
    for (const std::string& v : categorical_vars) {
      MIP_ASSIGN_OR_RETURN(const engine::Column* c, table.ColumnByName(v));
      cat_cols.push_back(c);
    }
    for (size_t r = 0; r < table.num_rows(); ++r) {
      bool complete = true;
      std::vector<double> row(num_cols.size());
      for (size_t j = 0; j < num_cols.size(); ++j) {
        const double v = num_cols[j]->AsDoubleAt(r);
        if (std::isnan(v)) {
          complete = false;
          break;
        }
        row[j] = v;
      }
      if (!complete) continue;
      for (size_t j = 0; j < cat_cols.size(); ++j) {
        if (!cat_cols[j]->IsValid(r)) {
          complete = false;
          break;
        }
      }
      if (!complete) continue;
      numeric_rows.push_back(std::move(row));
      for (size_t j = 0; j < cat_cols.size(); ++j) {
        out.categorical[j].push_back(cat_cols[j]->ValueAt(r).ToString());
      }
    }
  }
  out.num_rows = numeric_rows.size();
  out.numeric = stats::Matrix(out.num_rows, numeric_vars.size());
  for (size_t r = 0; r < numeric_rows.size(); ++r) {
    for (size_t c = 0; c < numeric_vars.size(); ++c) {
      out.numeric(r, c) = numeric_rows[r][c];
    }
  }
  return out;
}

federation::TransferData MakeArgs(
    const std::vector<std::string>& datasets,
    const std::vector<std::string>& numeric_vars,
    const std::vector<std::string>& categorical_vars) {
  federation::TransferData args;
  args.PutStringList("datasets", datasets);
  args.PutStringList("numeric_vars", numeric_vars);
  args.PutStringList("categorical_vars", categorical_vars);
  return args;
}

}  // namespace mip::algorithms
