#include "algorithms/logistic_regression.h"

#include <cmath>
#include <cstring>
#include <sstream>

#include "algorithms/common.h"
#include "stats/distributions.h"
#include "stats/linalg.h"

namespace mip::algorithms {

namespace {

double Sigmoid(double z) {
  if (z >= 0) {
    return 1.0 / (1.0 + std::exp(-z));
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}

size_t FoldOfRow(const double* row, size_t width, int folds) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (size_t i = 0; i < width; ++i) {
    uint64_t bits;
    std::memcpy(&bits, &row[i], sizeof(bits));
    h = (h ^ bits) * 0x100000001b3ull;
  }
  return static_cast<size_t>(h % static_cast<uint64_t>(folds));
}

struct GatheredXy {
  stats::Matrix x;  // design matrix incl. intercept column
  std::vector<double> y;
  stats::Matrix raw;  // raw numeric matrix used for fold hashing
};

Result<GatheredXy> GatherXy(federation::WorkerContext& ctx,
                            const federation::TransferData& args) {
  MIP_ASSIGN_OR_RETURN(std::vector<std::string> x_vars,
                       args.GetStringList("numeric_vars"));
  MIP_ASSIGN_OR_RETURN(std::string target, args.GetString("target"));
  const bool intercept = args.HasScalar("intercept");
  std::string positive_class;
  if (args.HasString("positive_class")) {
    MIP_ASSIGN_OR_RETURN(positive_class, args.GetString("positive_class"));
  }

  LocalData data;
  if (positive_class.empty()) {
    std::vector<std::string> all_vars = x_vars;
    all_vars.push_back(target);
    MIP_ASSIGN_OR_RETURN(
        data, GatherData(ctx, WorkerDatasets(ctx, args), all_vars, {}));
  } else {
    MIP_ASSIGN_OR_RETURN(data, GatherData(ctx, WorkerDatasets(ctx, args),
                                          x_vars, {target}));
  }

  const size_t p_x = x_vars.size();
  const size_t p = p_x + (intercept ? 1 : 0);
  GatheredXy out;
  out.x = stats::Matrix(data.num_rows, p);
  out.y.resize(data.num_rows);
  out.raw = data.numeric;
  for (size_t r = 0; r < data.num_rows; ++r) {
    size_t k = 0;
    if (intercept) out.x(r, k++) = 1.0;
    for (size_t j = 0; j < p_x; ++j) out.x(r, k++) = data.numeric(r, j);
    if (positive_class.empty()) {
      out.y[r] = data.numeric(r, p_x) >= 0.5 ? 1.0 : 0.0;
    } else {
      out.y[r] = data.categorical[0][r] == positive_class ? 1.0 : 0.0;
    }
  }
  return out;
}

Status RegisterSteps(federation::LocalFunctionRegistry* registry) {
  // One Newton round: gradient, Hessian and log-likelihood at `beta`.
  MIP_RETURN_NOT_OK(EnsureLocal(
      registry, "logreg.step",
      [](federation::WorkerContext& ctx,
         const federation::TransferData& args)
          -> Result<federation::TransferData> {
        MIP_ASSIGN_OR_RETURN(GatheredXy data, GatherXy(ctx, args));
        MIP_ASSIGN_OR_RETURN(std::vector<double> beta,
                             args.GetVector("beta"));
        const int folds =
            args.HasScalar("folds")
                ? static_cast<int>(args.GetScalar("folds").ValueOrDie())
                : 0;
        const int holdout =
            args.HasScalar("holdout")
                ? static_cast<int>(args.GetScalar("holdout").ValueOrDie())
                : -1;
        const size_t p = data.x.cols();
        std::vector<double> grad(p, 0.0);
        stats::Matrix hess(p, p);
        double ll = 0.0;
        double n = 0.0;
        double correct = 0.0;
        for (size_t r = 0; r < data.x.rows(); ++r) {
          if (folds > 0 && static_cast<int>(FoldOfRow(
                               data.raw.row(r), data.raw.cols(), folds)) ==
                               holdout) {
            continue;
          }
          double z = 0.0;
          for (size_t j = 0; j < p; ++j) z += beta[j] * data.x(r, j);
          const double mu = Sigmoid(z);
          const double y = data.y[r];
          ll += y * std::log(std::max(mu, 1e-300)) +
                (1.0 - y) * std::log(std::max(1.0 - mu, 1e-300));
          const double w = mu * (1.0 - mu);
          for (size_t j = 0; j < p; ++j) {
            grad[j] += (y - mu) * data.x(r, j);
            for (size_t k = 0; k < p; ++k) {
              hess(j, k) += w * data.x(r, j) * data.x(r, k);
            }
          }
          if ((mu >= 0.5) == (y >= 0.5)) correct += 1.0;
          n += 1.0;
        }
        federation::TransferData out;
        out.PutVector("grad", std::move(grad));
        out.PutMatrix("hess", std::move(hess));
        out.PutScalar("ll", ll);
        out.PutScalar("n", n);
        out.PutScalar("y_sum", [&data, folds, holdout]() {
          double s = 0.0;
          for (size_t r = 0; r < data.x.rows(); ++r) {
            if (folds > 0 &&
                static_cast<int>(FoldOfRow(data.raw.row(r), data.raw.cols(),
                                           folds)) == holdout) {
              continue;
            }
            s += data.y[r];
          }
          return s;
        }());
        out.PutScalar("correct", correct);
        return out;
      }));

  // Held-out evaluation for CV: confusion-matrix counts on fold `holdout`.
  MIP_RETURN_NOT_OK(EnsureLocal(
      registry, "logreg.eval",
      [](federation::WorkerContext& ctx,
         const federation::TransferData& args)
          -> Result<federation::TransferData> {
        MIP_ASSIGN_OR_RETURN(GatheredXy data, GatherXy(ctx, args));
        MIP_ASSIGN_OR_RETURN(std::vector<double> beta,
                             args.GetVector("beta"));
        MIP_ASSIGN_OR_RETURN(double folds_d, args.GetScalar("folds"));
        MIP_ASSIGN_OR_RETURN(double holdout_d, args.GetScalar("holdout"));
        const int folds = static_cast<int>(folds_d);
        const int holdout = static_cast<int>(holdout_d);
        double tp = 0, tn = 0, fp = 0, fn = 0;
        for (size_t r = 0; r < data.x.rows(); ++r) {
          if (static_cast<int>(FoldOfRow(data.raw.row(r), data.raw.cols(),
                                         folds)) != holdout) {
            continue;
          }
          double z = 0.0;
          for (size_t j = 0; j < data.x.cols(); ++j) {
            z += beta[j] * data.x(r, j);
          }
          const bool pred = Sigmoid(z) >= 0.5;
          const bool truth = data.y[r] >= 0.5;
          if (pred && truth) tp += 1;
          if (pred && !truth) fp += 1;
          if (!pred && truth) fn += 1;
          if (!pred && !truth) tn += 1;
        }
        federation::TransferData out;
        out.PutScalar("tp", tp);
        out.PutScalar("tn", tn);
        out.PutScalar("fp", fp);
        out.PutScalar("fn", fn);
        return out;
      }));
  return Status::OK();
}

federation::TransferData BaseArgs(const LogisticRegressionSpec& spec) {
  federation::TransferData args = MakeArgs(spec.datasets, spec.covariates);
  args.PutString("target", spec.target);
  if (!spec.positive_class.empty()) {
    args.PutString("positive_class", spec.positive_class);
  }
  if (spec.intercept) args.PutScalar("intercept", 1.0);
  return args;
}

struct IrlsFit {
  std::vector<double> beta;
  stats::Matrix hess_inv;
  double ll = 0.0;
  double n = 0.0;
  double y_sum = 0.0;
  double correct = 0.0;
  int iterations = 0;
  bool converged = false;
};

Result<IrlsFit> RunIrls(federation::FederationSession* session,
                        const LogisticRegressionSpec& spec,
                        federation::TransferData args, size_t p) {
  IrlsFit fit;
  fit.beta.assign(p, 0.0);
  for (int iter = 0; iter < spec.max_iterations; ++iter) {
    args.PutVector("beta", fit.beta);
    MIP_ASSIGN_OR_RETURN(
        federation::TransferData agg,
        session->LocalRunAndAggregate("logreg.step", args, spec.mode));
    MIP_ASSIGN_OR_RETURN(std::vector<double> grad, agg.GetVector("grad"));
    MIP_ASSIGN_OR_RETURN(stats::Matrix hess, agg.GetMatrix("hess"));
    MIP_ASSIGN_OR_RETURN(fit.ll, agg.GetScalar("ll"));
    MIP_ASSIGN_OR_RETURN(fit.n, agg.GetScalar("n"));
    MIP_ASSIGN_OR_RETURN(fit.y_sum, agg.GetScalar("y_sum"));
    MIP_ASSIGN_OR_RETURN(fit.correct, agg.GetScalar("correct"));
    // Light ridge for numerical safety on near-separable data.
    for (size_t j = 0; j < p; ++j) hess(j, j) += 1e-9;
    MIP_ASSIGN_OR_RETURN(std::vector<double> step,
                         stats::SolveSpd(hess, grad));
    double step_norm = 0.0;
    for (size_t j = 0; j < p; ++j) {
      fit.beta[j] += step[j];
      step_norm += step[j] * step[j];
    }
    fit.iterations = iter + 1;
    MIP_ASSIGN_OR_RETURN(fit.hess_inv, stats::InverseSpd(hess));
    if (std::sqrt(step_norm) < spec.tolerance) {
      fit.converged = true;
      break;
    }
  }
  return fit;
}

}  // namespace

Result<LogisticRegressionResult> RunLogisticRegression(
    federation::FederationSession* session,
    const LogisticRegressionSpec& spec) {
  MIP_RETURN_NOT_OK(RegisterSteps(session->master().functions().get()));
  const size_t p = spec.covariates.size() + (spec.intercept ? 1 : 0);
  MIP_ASSIGN_OR_RETURN(IrlsFit fit,
                       RunIrls(session, spec, BaseArgs(spec), p));

  LogisticRegressionResult out;
  out.n = static_cast<int64_t>(std::llround(fit.n));
  out.iterations = fit.iterations;
  out.converged = fit.converged;
  out.log_likelihood = fit.ll;
  const double pbar = fit.y_sum / fit.n;
  out.null_log_likelihood =
      fit.n * (pbar * std::log(std::max(pbar, 1e-300)) +
               (1 - pbar) * std::log(std::max(1 - pbar, 1e-300)));
  out.pseudo_r_squared =
      out.null_log_likelihood != 0
          ? 1.0 - out.log_likelihood / out.null_log_likelihood
          : 0.0;
  out.accuracy = fit.correct / fit.n;

  std::vector<std::string> names;
  if (spec.intercept) names.push_back("(intercept)");
  for (const std::string& v : spec.covariates) names.push_back(v);
  for (size_t i = 0; i < p; ++i) {
    CoefficientStat c;
    c.name = names[i];
    c.estimate = fit.beta[i];
    c.std_error = std::sqrt(fit.hess_inv(i, i));
    c.t_value = c.estimate / c.std_error;  // Wald z
    c.p_value = 2.0 * (1.0 - stats::NormalCdf(std::fabs(c.t_value)));
    out.coefficients.push_back(c);
  }
  return out;
}

Result<LogisticRegressionCvResult> RunLogisticRegressionCv(
    federation::FederationSession* session,
    const LogisticRegressionSpec& spec, int folds) {
  if (folds < 2) return Status::InvalidArgument("need at least 2 folds");
  MIP_RETURN_NOT_OK(RegisterSteps(session->master().functions().get()));
  const size_t p = spec.covariates.size() + (spec.intercept ? 1 : 0);

  LogisticRegressionCvResult out;
  out.folds = folds;
  for (int fold = 0; fold < folds; ++fold) {
    federation::TransferData args = BaseArgs(spec);
    args.PutScalar("folds", folds);
    args.PutScalar("holdout", fold);
    MIP_ASSIGN_OR_RETURN(IrlsFit fit, RunIrls(session, spec, args, p));

    federation::TransferData eval_args = BaseArgs(spec);
    eval_args.PutScalar("folds", folds);
    eval_args.PutScalar("holdout", fold);
    eval_args.PutVector("beta", fit.beta);
    MIP_ASSIGN_OR_RETURN(
        federation::TransferData eval,
        session->LocalRunAndAggregate("logreg.eval", eval_args, spec.mode));
    MIP_ASSIGN_OR_RETURN(double tp, eval.GetScalar("tp"));
    MIP_ASSIGN_OR_RETURN(double tn, eval.GetScalar("tn"));
    MIP_ASSIGN_OR_RETURN(double fp, eval.GetScalar("fp"));
    MIP_ASSIGN_OR_RETURN(double fn, eval.GetScalar("fn"));
    const double total = tp + tn + fp + fn;
    if (total <= 0) continue;
    out.accuracy_per_fold.push_back((tp + tn) / total);
    out.true_positive += static_cast<int64_t>(std::llround(tp));
    out.true_negative += static_cast<int64_t>(std::llround(tn));
    out.false_positive += static_cast<int64_t>(std::llround(fp));
    out.false_negative += static_cast<int64_t>(std::llround(fn));
  }
  for (double a : out.accuracy_per_fold) out.mean_accuracy += a;
  if (!out.accuracy_per_fold.empty()) {
    out.mean_accuracy /= static_cast<double>(out.accuracy_per_fold.size());
  }
  return out;
}

std::string LogisticRegressionResult::ToString() const {
  std::ostringstream os;
  os.precision(4);
  os << std::fixed;
  os << "Logistic regression (n=" << n << ", iterations=" << iterations
     << (converged ? ", converged" : ", NOT converged")
     << ", ll=" << log_likelihood << ", McFadden R^2=" << pseudo_r_squared
     << ", accuracy=" << accuracy << ")\n";
  for (const CoefficientStat& c : coefficients) {
    os << "  " << c.name << ": " << c.estimate << " (se=" << c.std_error
       << ", z=" << c.t_value << ", p=" << c.p_value << ")\n";
  }
  return os.str();
}

std::string LogisticRegressionCvResult::ToString() const {
  std::ostringstream os;
  os.precision(4);
  os << std::fixed;
  os << "Logistic regression " << folds
     << "-fold CV: mean accuracy=" << mean_accuracy << " (tp=" << true_positive
     << " tn=" << true_negative << " fp=" << false_positive
     << " fn=" << false_negative << ")\n";
  return os.str();
}

}  // namespace mip::algorithms
