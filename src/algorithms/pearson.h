#ifndef MIP_ALGORITHMS_PEARSON_H_
#define MIP_ALGORITHMS_PEARSON_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "federation/master.h"
#include "stats/matrix.h"

namespace mip::algorithms {

/// \brief Federated Pearson correlation over a set of variables: Workers
/// ship n, sums and the cross-product matrix; the Master derives the full
/// correlation matrix with per-pair t statistics and p-values.
struct PearsonSpec {
  std::vector<std::string> datasets;
  std::vector<std::string> variables;  ///< >= 2 numeric variables
  federation::AggregationMode mode = federation::AggregationMode::kPlain;
};

struct PearsonResult {
  std::vector<std::string> variables;
  stats::Matrix correlations;  ///< symmetric, unit diagonal
  stats::Matrix p_values;
  int64_t n = 0;

  /// Correlation and p for one pair by variable name.
  Result<double> Correlation(const std::string& a, const std::string& b) const;

  std::string ToString() const;
};

Result<PearsonResult> RunPearson(federation::FederationSession* session,
                                 const PearsonSpec& spec);

}  // namespace mip::algorithms

#endif  // MIP_ALGORITHMS_PEARSON_H_
