#include "algorithms/ttest.h"

#include <cmath>
#include <sstream>

#include "algorithms/common.h"
#include "stats/distributions.h"

namespace mip::algorithms {

namespace {

Status RegisterSteps(federation::LocalFunctionRegistry* registry) {
  // Moments of one variable: [n, sum, sumsq].
  MIP_RETURN_NOT_OK(EnsureLocal(
      registry, "ttest.moments",
      [](federation::WorkerContext& ctx,
         const federation::TransferData& args)
          -> Result<federation::TransferData> {
        MIP_ASSIGN_OR_RETURN(std::vector<std::string> vars,
                             args.GetStringList("numeric_vars"));
        MIP_ASSIGN_OR_RETURN(
            LocalData data,
            GatherData(ctx, WorkerDatasets(ctx, args), vars, {}));
        double n = 0, sum = 0, sumsq = 0;
        for (size_t r = 0; r < data.num_rows; ++r) {
          const double v = data.numeric(r, 0);
          n += 1;
          sum += v;
          sumsq += v * v;
        }
        federation::TransferData out;
        out.PutVector("m", {n, sum, sumsq});
        return out;
      }));

  // Per-group moments of `variable` for the two requested levels of the
  // grouping variable: [n1, s1, ss1, n2, s2, ss2].
  MIP_RETURN_NOT_OK(EnsureLocal(
      registry, "ttest.group_moments",
      [](federation::WorkerContext& ctx,
         const federation::TransferData& args)
          -> Result<federation::TransferData> {
        MIP_ASSIGN_OR_RETURN(std::vector<std::string> vars,
                             args.GetStringList("numeric_vars"));
        MIP_ASSIGN_OR_RETURN(std::string group_var,
                             args.GetString("group_variable"));
        MIP_ASSIGN_OR_RETURN(std::string ga, args.GetString("group_a"));
        MIP_ASSIGN_OR_RETURN(std::string gb, args.GetString("group_b"));
        MIP_ASSIGN_OR_RETURN(
            LocalData data,
            GatherData(ctx, WorkerDatasets(ctx, args), vars, {group_var}));
        double m[6] = {0, 0, 0, 0, 0, 0};
        for (size_t r = 0; r < data.num_rows; ++r) {
          const double v = data.numeric(r, 0);
          const std::string& g = data.categorical[0][r];
          if (g == ga) {
            m[0] += 1;
            m[1] += v;
            m[2] += v * v;
          } else if (g == gb) {
            m[3] += 1;
            m[4] += v;
            m[5] += v * v;
          }
        }
        federation::TransferData out;
        out.PutVector("m", {m[0], m[1], m[2], m[3], m[4], m[5]});
        return out;
      }));

  // Moments of the pairwise difference a - b.
  MIP_RETURN_NOT_OK(EnsureLocal(
      registry, "ttest.diff_moments",
      [](federation::WorkerContext& ctx,
         const federation::TransferData& args)
          -> Result<federation::TransferData> {
        MIP_ASSIGN_OR_RETURN(std::vector<std::string> vars,
                             args.GetStringList("numeric_vars"));
        MIP_ASSIGN_OR_RETURN(
            LocalData data,
            GatherData(ctx, WorkerDatasets(ctx, args), vars, {}));
        double n = 0, sum = 0, sumsq = 0;
        for (size_t r = 0; r < data.num_rows; ++r) {
          const double d = data.numeric(r, 0) - data.numeric(r, 1);
          n += 1;
          sum += d;
          sumsq += d * d;
        }
        federation::TransferData out;
        out.PutVector("m", {n, sum, sumsq});
        return out;
      }));
  return Status::OK();
}

// One-sample machinery shared by the one-sample and paired tests.
TTestResult OneSampleFromMoments(double n, double sum, double sumsq,
                                 double mu0) {
  TTestResult out;
  const double mean = sum / n;
  const double var = (sumsq - sum * sum / n) / (n - 1.0);
  const double se = std::sqrt(var / n);
  out.n1 = static_cast<int64_t>(std::llround(n));
  out.mean_difference = mean - mu0;
  out.t_statistic = out.mean_difference / se;
  out.degrees_of_freedom = n - 1.0;
  out.p_value =
      stats::StudentTTwoSidedP(out.t_statistic, out.degrees_of_freedom);
  const double tcrit = stats::StudentTQuantile(0.975, out.degrees_of_freedom);
  out.ci_low = out.mean_difference - tcrit * se;
  out.ci_high = out.mean_difference + tcrit * se;
  return out;
}

}  // namespace

Result<TTestResult> RunTTestOneSample(federation::FederationSession* session,
                                      const TTestOneSampleSpec& spec) {
  MIP_RETURN_NOT_OK(RegisterSteps(session->master().functions().get()));
  federation::TransferData args = MakeArgs(spec.datasets, {spec.variable});
  MIP_ASSIGN_OR_RETURN(
      federation::TransferData agg,
      session->LocalRunAndAggregate("ttest.moments", args, spec.mode));
  MIP_ASSIGN_OR_RETURN(std::vector<double> m, agg.GetVector("m"));
  if (m[0] < 2) return Status::ExecutionError("not enough observations");
  return OneSampleFromMoments(m[0], m[1], m[2], spec.mu0);
}

Result<TTestResult> RunTTestIndependent(
    federation::FederationSession* session,
    const TTestIndependentSpec& spec) {
  MIP_RETURN_NOT_OK(RegisterSteps(session->master().functions().get()));
  federation::TransferData args = MakeArgs(spec.datasets, {spec.variable});
  args.PutString("group_variable", spec.group_variable);
  args.PutString("group_a", spec.group_a);
  args.PutString("group_b", spec.group_b);
  MIP_ASSIGN_OR_RETURN(
      federation::TransferData agg,
      session->LocalRunAndAggregate("ttest.group_moments", args, spec.mode));
  MIP_ASSIGN_OR_RETURN(std::vector<double> m, agg.GetVector("m"));
  const double n1 = m[0], s1 = m[1], ss1 = m[2];
  const double n2 = m[3], s2 = m[4], ss2 = m[5];
  if (n1 < 2 || n2 < 2) {
    return Status::ExecutionError("each group needs at least 2 observations");
  }
  const double mean1 = s1 / n1;
  const double mean2 = s2 / n2;
  const double var1 = (ss1 - s1 * s1 / n1) / (n1 - 1.0);
  const double var2 = (ss2 - s2 * s2 / n2) / (n2 - 1.0);

  TTestResult out;
  out.n1 = static_cast<int64_t>(std::llround(n1));
  out.n2 = static_cast<int64_t>(std::llround(n2));
  out.mean_difference = mean1 - mean2;
  double se;
  if (spec.pooled) {
    const double sp2 =
        ((n1 - 1.0) * var1 + (n2 - 1.0) * var2) / (n1 + n2 - 2.0);
    se = std::sqrt(sp2 * (1.0 / n1 + 1.0 / n2));
    out.degrees_of_freedom = n1 + n2 - 2.0;
  } else {
    // Welch-Satterthwaite.
    const double a = var1 / n1;
    const double b = var2 / n2;
    se = std::sqrt(a + b);
    out.degrees_of_freedom =
        (a + b) * (a + b) /
        (a * a / (n1 - 1.0) + b * b / (n2 - 1.0));
  }
  out.t_statistic = out.mean_difference / se;
  out.p_value =
      stats::StudentTTwoSidedP(out.t_statistic, out.degrees_of_freedom);
  const double tcrit = stats::StudentTQuantile(0.975, out.degrees_of_freedom);
  out.ci_low = out.mean_difference - tcrit * se;
  out.ci_high = out.mean_difference + tcrit * se;
  return out;
}

Result<TTestResult> RunTTestPaired(federation::FederationSession* session,
                                   const TTestPairedSpec& spec) {
  MIP_RETURN_NOT_OK(RegisterSteps(session->master().functions().get()));
  federation::TransferData args =
      MakeArgs(spec.datasets, {spec.variable_a, spec.variable_b});
  MIP_ASSIGN_OR_RETURN(
      federation::TransferData agg,
      session->LocalRunAndAggregate("ttest.diff_moments", args, spec.mode));
  MIP_ASSIGN_OR_RETURN(std::vector<double> m, agg.GetVector("m"));
  if (m[0] < 2) return Status::ExecutionError("not enough pairs");
  return OneSampleFromMoments(m[0], m[1], m[2], 0.0);
}

std::string TTestResult::ToString() const {
  std::ostringstream os;
  os.precision(4);
  os << std::fixed;
  os << "t = " << t_statistic << ", df = " << degrees_of_freedom
     << ", p = " << p_value << ", diff = " << mean_difference << " [95% CI "
     << ci_low << ", " << ci_high << "], n1 = " << n1;
  if (n2 > 0) os << ", n2 = " << n2;
  os << "\n";
  return os.str();
}

}  // namespace mip::algorithms
