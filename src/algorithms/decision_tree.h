#ifndef MIP_ALGORITHMS_DECISION_TREE_H_
#define MIP_ALGORITHMS_DECISION_TREE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "federation/master.h"

namespace mip::algorithms {

/// \brief Node of a federated decision tree (shared by ID3 and CART).
struct TreeNode {
  bool is_leaf = true;
  std::string prediction;  ///< majority class at this node

  // ID3 split: categorical feature, one child per domain value.
  // CART split: numeric feature with threshold, two children (<=, >).
  bool categorical_split = true;
  std::string split_feature;
  std::vector<std::string> split_values;  ///< ID3 child labels
  double threshold = 0.0;                 ///< CART
  std::vector<std::unique_ptr<TreeNode>> children;

  int64_t n = 0;
  double impurity = 0.0;  ///< entropy (ID3) or Gini (CART) at the node

  /// Renders the subtree with indentation.
  std::string ToString(int indent = 0) const;
};

/// \brief Federated ID3: categorical features, categorical target, splits by
/// information gain. At every node the Master asks the Workers for class
/// histograms of each candidate feature conditioned on the path constraints
/// — only counts (sums) ever leave a hospital.
struct Id3Spec {
  std::vector<std::string> datasets;
  std::vector<std::string> features;  ///< categorical features
  std::string target;                 ///< categorical class variable
  int max_depth = 4;
  int64_t min_samples_split = 10;
  federation::AggregationMode mode = federation::AggregationMode::kPlain;
};

struct DecisionTreeResult {
  std::unique_ptr<TreeNode> root;
  int nodes = 0;
  int depth = 0;

  std::string ToString() const;
};

Result<DecisionTreeResult> RunId3(federation::FederationSession* session,
                                  const Id3Spec& spec);

/// \brief Federated CART: numeric features, binary splits on thresholds
/// drawn from a per-feature quantile grid, Gini impurity.
struct CartSpec {
  std::vector<std::string> datasets;
  std::vector<std::string> features;  ///< numeric features
  std::string target;                 ///< categorical class variable
  int max_depth = 4;
  int64_t min_samples_split = 10;
  int candidate_thresholds = 8;  ///< grid size per feature
  federation::AggregationMode mode = federation::AggregationMode::kPlain;
};

Result<DecisionTreeResult> RunCart(federation::FederationSession* session,
                                   const CartSpec& spec);

}  // namespace mip::algorithms

#endif  // MIP_ALGORITHMS_DECISION_TREE_H_
