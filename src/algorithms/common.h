#ifndef MIP_ALGORITHMS_COMMON_H_
#define MIP_ALGORITHMS_COMMON_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "federation/master.h"
#include "federation/worker.h"
#include "stats/matrix.h"

namespace mip::algorithms {

/// Registers a local step if it is not registered yet (algorithms are
/// re-runnable; shipping the same code twice is a no-op).
Status EnsureLocal(federation::LocalFunctionRegistry* registry,
                   const std::string& name, federation::LocalFn fn);

/// \brief A worker's view of the requested data: numeric design matrix plus
/// aligned categorical columns, gathered across the datasets the worker
/// hosts (restricted to `datasets` when non-empty).
struct LocalData {
  stats::Matrix numeric;                          ///< rows x numeric vars
  std::vector<std::vector<std::string>> categorical;  ///< [var][row]
  size_t num_rows = 0;
};

/// Gathers `numeric_vars` and `categorical_vars` from the worker's hosted
/// datasets. Rows with a missing value in ANY requested variable are
/// dropped (complete-case analysis, MIP's default).
Result<LocalData> GatherData(federation::WorkerContext& ctx,
                             const std::vector<std::string>& datasets,
                             const std::vector<std::string>& numeric_vars,
                             const std::vector<std::string>& categorical_vars);

/// Builds the standard args transfer: datasets filter + variable lists.
federation::TransferData MakeArgs(
    const std::vector<std::string>& datasets,
    const std::vector<std::string>& numeric_vars,
    const std::vector<std::string>& categorical_vars = {});

/// Datasets a worker should scan: the args filter intersected with what the
/// worker hosts (all hosted datasets when the filter is empty).
std::vector<std::string> WorkerDatasets(
    federation::WorkerContext& ctx,
    const federation::TransferData& args);

}  // namespace mip::algorithms

#endif  // MIP_ALGORITHMS_COMMON_H_
