#ifndef MIP_ALGORITHMS_PCA_H_
#define MIP_ALGORITHMS_PCA_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "federation/master.h"
#include "stats/matrix.h"

namespace mip::algorithms {

/// \brief Federated principal components analysis: Workers ship n, the sum
/// vector and the Gram matrix X'X (all sums); the Master assembles the
/// covariance (or correlation) matrix and eigendecomposes it.
struct PcaSpec {
  std::vector<std::string> datasets;
  std::vector<std::string> variables;
  /// true = correlation-matrix PCA (standardized variables).
  bool scale = true;
  federation::AggregationMode mode = federation::AggregationMode::kPlain;
};

struct PcaResult {
  std::vector<double> eigenvalues;       ///< descending
  stats::Matrix components;              ///< columns = principal axes
  std::vector<double> explained_ratio;   ///< eigenvalue / total
  std::vector<double> means;             ///< federated variable means
  int64_t n = 0;

  std::string ToString() const;
};

Result<PcaResult> RunPca(federation::FederationSession* session,
                         const PcaSpec& spec);

}  // namespace mip::algorithms

#endif  // MIP_ALGORITHMS_PCA_H_
