#ifndef MIP_ALGORITHMS_LOGISTIC_REGRESSION_H_
#define MIP_ALGORITHMS_LOGISTIC_REGRESSION_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "federation/master.h"
#include "algorithms/linear_regression.h"  // CoefficientStat

namespace mip::algorithms {

/// \brief Federated binary logistic regression via iterated Newton-Raphson:
/// each round, Workers compute the local gradient and Hessian at the current
/// coefficients; the Master aggregates (plain or SMPC — both are sums) and
/// takes the Newton step. Iterations stop when the step norm falls below
/// `tolerance`.
struct LogisticRegressionSpec {
  std::vector<std::string> datasets;
  std::vector<std::string> covariates;
  /// Numeric 0/1 outcome, or a categorical variable with `positive_class`.
  std::string target;
  std::string positive_class;  ///< empty = target is already numeric 0/1
  bool intercept = true;
  int max_iterations = 25;
  double tolerance = 1e-8;
  federation::AggregationMode mode = federation::AggregationMode::kPlain;
};

struct LogisticRegressionResult {
  std::vector<CoefficientStat> coefficients;  ///< z-statistics in t_value
  int64_t n = 0;
  int iterations = 0;
  bool converged = false;
  double log_likelihood = 0.0;
  double null_log_likelihood = 0.0;
  /// McFadden pseudo-R^2.
  double pseudo_r_squared = 0.0;
  /// Training accuracy at threshold 0.5.
  double accuracy = 0.0;

  std::string ToString() const;
};

Result<LogisticRegressionResult> RunLogisticRegression(
    federation::FederationSession* session,
    const LogisticRegressionSpec& spec);

/// \brief k-fold cross-validated logistic regression; reports held-out
/// accuracy and the pooled confusion matrix.
struct LogisticRegressionCvResult {
  int folds = 0;
  std::vector<double> accuracy_per_fold;
  double mean_accuracy = 0.0;
  int64_t true_positive = 0;
  int64_t true_negative = 0;
  int64_t false_positive = 0;
  int64_t false_negative = 0;

  std::string ToString() const;
};

Result<LogisticRegressionCvResult> RunLogisticRegressionCv(
    federation::FederationSession* session, const LogisticRegressionSpec& spec,
    int folds);

}  // namespace mip::algorithms

#endif  // MIP_ALGORITHMS_LOGISTIC_REGRESSION_H_
