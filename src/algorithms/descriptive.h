#ifndef MIP_ALGORITHMS_DESCRIPTIVE_H_
#define MIP_ALGORITHMS_DESCRIPTIVE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "federation/master.h"
#include "stats/summary.h"

namespace mip::algorithms {

/// \brief Spec for the dashboard's "Descriptive Analysis" (paper Figure 3):
/// per-dataset statistics for each variable of interest, plus a federated
/// row across all selected datasets.
struct DescriptiveSpec {
  std::vector<std::string> datasets;   ///< empty = all in the federation
  std::vector<std::string> variables;  ///< numeric CDE variables
  federation::AggregationMode mode = federation::AggregationMode::kPlain;
};

struct DescriptiveResult {
  /// One row per (variable, dataset) — quartiles included (dataset-local
  /// statistics, computed where the dataset lives, exactly as the MIP
  /// dashboard renders them).
  std::vector<stats::DescriptiveRow> per_dataset;
  /// One row per variable across all datasets. On the secure path these
  /// moments come out of the SMPC cluster (sum aggregation + secure
  /// min/max); quartiles are not exactly computable from aggregates and are
  /// reported as NaN.
  std::vector<stats::DescriptiveRow> federated;

  /// Dashboard-like fixed-width rendering.
  std::string ToString() const;
};

/// Runs the descriptive analysis over the session's workers.
Result<DescriptiveResult> RunDescriptive(federation::FederationSession* session,
                                         const DescriptiveSpec& spec);

}  // namespace mip::algorithms

#endif  // MIP_ALGORITHMS_DESCRIPTIVE_H_
