#ifndef MIP_ALGORITHMS_KMEANS_H_
#define MIP_ALGORITHMS_KMEANS_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "federation/master.h"
#include "stats/matrix.h"

namespace mip::algorithms {

/// \brief Federated Lloyd k-means: the Master ships the current centroids;
/// each Worker assigns its local rows and returns per-cluster sums and
/// counts (sums — SMPC-aggregatable); the Master recomputes centroids until
/// movement falls below `tolerance`.
///
/// This is one of the two algorithms powering the paper's Alzheimer's case
/// study (clusters on Abeta42, pTau and left entorhinal volume).
struct KMeansSpec {
  std::vector<std::string> datasets;
  std::vector<std::string> variables;
  int k = 3;
  int max_iterations = 100;
  double tolerance = 1e-6;
  /// When true, variables are standardized with federated mean/std first.
  bool standardize = false;
  uint64_t seed = 0xC1;
  federation::AggregationMode mode = federation::AggregationMode::kPlain;
};

struct KMeansResult {
  stats::Matrix centroids;  ///< k x d (original variable units)
  std::vector<int64_t> cluster_sizes;
  double inertia = 0.0;  ///< total within-cluster sum of squares
  int iterations = 0;
  bool converged = false;

  std::string ToString() const;
};

Result<KMeansResult> RunKMeans(federation::FederationSession* session,
                               const KMeansSpec& spec);

}  // namespace mip::algorithms

#endif  // MIP_ALGORITHMS_KMEANS_H_
