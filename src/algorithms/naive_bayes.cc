#include "algorithms/naive_bayes.h"

#include <cmath>
#include <cstring>
#include <map>
#include <set>
#include <sstream>

#include "algorithms/common.h"
#include "common/string_util.h"

namespace mip::algorithms {

namespace {

uint64_t HashRow(const stats::Matrix& numeric, size_t r,
                 const std::vector<std::vector<std::string>>& cats) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (size_t j = 0; j < numeric.cols(); ++j) {
    uint64_t bits;
    const double v = numeric(r, j);
    std::memcpy(&bits, &v, sizeof(bits));
    h = (h ^ bits) * 0x100000001b3ull;
  }
  for (const auto& col : cats) {
    for (char c : col[r]) {
      h = (h ^ static_cast<uint64_t>(static_cast<unsigned char>(c))) *
          0x100000001b3ull;
    }
  }
  return h;
}

struct NbGathered {
  LocalData data;
  std::vector<std::string> numeric_vars;
  std::vector<std::string> cat_vars;  // categorical features (target last
                                      // in data.categorical)
};

Result<NbGathered> GatherNb(federation::WorkerContext& ctx,
                            const federation::TransferData& args) {
  NbGathered out;
  MIP_ASSIGN_OR_RETURN(out.numeric_vars, args.GetStringList("numeric_vars"));
  MIP_ASSIGN_OR_RETURN(out.cat_vars, args.GetStringList("categorical_vars"));
  MIP_ASSIGN_OR_RETURN(std::string target, args.GetString("target"));
  std::vector<std::string> cats = out.cat_vars;
  cats.push_back(target);
  MIP_ASSIGN_OR_RETURN(out.data, GatherData(ctx, WorkerDatasets(ctx, args),
                                            out.numeric_vars, cats));
  return out;
}

bool InHoldout(const NbGathered& g, size_t r,
               const federation::TransferData& args) {
  if (!args.HasScalar("folds")) return false;
  const int folds =
      static_cast<int>(args.GetScalar("folds").ValueOrDie());
  const int holdout =
      static_cast<int>(args.GetScalar("holdout").ValueOrDie());
  return static_cast<int>(HashRow(g.data.numeric, r, g.data.categorical) %
                          static_cast<uint64_t>(folds)) == holdout;
}

Status RegisterSteps(federation::LocalFunctionRegistry* registry) {
  // Per-class statistics. Dynamic keys (plain path): "cls/<c>",
  // "g/<c>/<i>" = [sum, sumsq], "c/<c>/<j>/<value>" = [count].
  MIP_RETURN_NOT_OK(EnsureLocal(
      registry, "nb.stats",
      [](federation::WorkerContext& ctx,
         const federation::TransferData& args)
          -> Result<federation::TransferData> {
        MIP_ASSIGN_OR_RETURN(NbGathered g, GatherNb(ctx, args));
        const size_t target_idx = g.cat_vars.size();
        federation::TransferData out;
        std::map<std::string, double> cls;
        std::map<std::string, std::vector<double>> gaussians;
        std::map<std::string, double> counts;
        for (size_t r = 0; r < g.data.num_rows; ++r) {
          if (InHoldout(g, r, args)) continue;
          const std::string& c = g.data.categorical[target_idx][r];
          cls[c] += 1;
          for (size_t i = 0; i < g.numeric_vars.size(); ++i) {
            auto& acc = gaussians["g/" + c + "/" + std::to_string(i)];
            if (acc.empty()) acc.assign(2, 0.0);
            const double v = g.data.numeric(r, i);
            acc[0] += v;
            acc[1] += v * v;
          }
          for (size_t j = 0; j < g.cat_vars.size(); ++j) {
            counts["c/" + c + "/" + std::to_string(j) + "/" +
                   g.data.categorical[j][r]] += 1;
          }
        }
        for (const auto& [k, v] : cls) out.PutVector("cls/" + k, {v});
        for (const auto& [k, v] : gaussians) out.PutVector(k, v);
        for (const auto& [k, v] : counts) out.PutVector(k, {v});
        return out;
      }));

  // Held-out evaluation given a flattened model.
  MIP_RETURN_NOT_OK(EnsureLocal(
      registry, "nb.eval",
      [](federation::WorkerContext& ctx,
         const federation::TransferData& args)
          -> Result<federation::TransferData> {
        MIP_ASSIGN_OR_RETURN(NbGathered g, GatherNb(ctx, args));
        const size_t target_idx = g.cat_vars.size();

        NaiveBayesModel model;
        MIP_ASSIGN_OR_RETURN(model.classes, args.GetStringList("m_classes"));
        MIP_ASSIGN_OR_RETURN(model.priors, args.GetVector("m_priors"));
        model.numeric_features = g.numeric_vars;
        model.categorical_features = g.cat_vars;
        const size_t nc = model.classes.size();
        const size_t nf = g.numeric_vars.size();
        MIP_ASSIGN_OR_RETURN(std::vector<double> means,
                             args.GetVector("m_means"));
        MIP_ASSIGN_OR_RETURN(std::vector<double> vars,
                             args.GetVector("m_vars"));
        model.gaussian_mean.assign(nc, std::vector<double>(nf));
        model.gaussian_var.assign(nc, std::vector<double>(nf));
        for (size_t c = 0; c < nc; ++c) {
          for (size_t i = 0; i < nf; ++i) {
            model.gaussian_mean[c][i] = means[c * nf + i];
            model.gaussian_var[c][i] = vars[c * nf + i];
          }
        }
        MIP_ASSIGN_OR_RETURN(std::vector<double> logp_flat,
                             args.GetVector("m_logp"));
        // Domains come in as "dom<j>" string lists.
        model.categorical_domains.resize(g.cat_vars.size());
        size_t pos = 0;
        model.categorical_logp.assign(
            nc, std::vector<std::vector<double>>(g.cat_vars.size()));
        for (size_t j = 0; j < g.cat_vars.size(); ++j) {
          MIP_ASSIGN_OR_RETURN(model.categorical_domains[j],
                               args.GetStringList("dom" + std::to_string(j)));
        }
        for (size_t c = 0; c < nc; ++c) {
          for (size_t j = 0; j < g.cat_vars.size(); ++j) {
            const size_t dom = model.categorical_domains[j].size();
            model.categorical_logp[c][j].assign(
                logp_flat.begin() + static_cast<long>(pos),
                logp_flat.begin() + static_cast<long>(pos + dom));
            pos += dom;
          }
        }

        double correct = 0, total = 0;
        std::vector<double> xnum(nf);
        std::vector<std::string> xcat(g.cat_vars.size());
        for (size_t r = 0; r < g.data.num_rows; ++r) {
          if (!InHoldout(g, r, args)) continue;
          for (size_t i = 0; i < nf; ++i) xnum[i] = g.data.numeric(r, i);
          for (size_t j = 0; j < g.cat_vars.size(); ++j) {
            xcat[j] = g.data.categorical[j][r];
          }
          MIP_ASSIGN_OR_RETURN(std::string pred, model.Predict(xnum, xcat));
          if (pred == g.data.categorical[target_idx][r]) correct += 1;
          total += 1;
        }
        federation::TransferData out;
        out.PutScalar("correct", correct);
        out.PutScalar("total", total);
        return out;
      }));
  return Status::OK();
}

federation::TransferData BaseArgs(const NaiveBayesSpec& spec) {
  federation::TransferData args = MakeArgs(spec.datasets,
                                           spec.numeric_features,
                                           spec.categorical_features);
  args.PutString("target", spec.target);
  return args;
}

Result<NaiveBayesModel> BuildModel(
    const NaiveBayesSpec& spec,
    const std::vector<federation::TransferData>& parts) {
  // Merge dynamic keys across workers.
  std::map<std::string, std::vector<double>> merged;
  for (const auto& part : parts) {
    for (const auto& [k, v] : part.vectors()) {
      auto& acc = merged[k];
      if (acc.empty()) acc.assign(v.size(), 0.0);
      for (size_t i = 0; i < v.size(); ++i) acc[i] += v[i];
    }
  }

  NaiveBayesModel model;
  model.numeric_features = spec.numeric_features;
  model.categorical_features = spec.categorical_features;

  // Classes: from spec or discovered.
  if (!spec.classes.empty()) {
    model.classes = spec.classes;
  } else {
    for (const auto& [k, v] : merged) {
      if (StartsWith(k, "cls/")) model.classes.push_back(k.substr(4));
    }
  }
  const size_t nc = model.classes.size();
  if (nc < 2) return Status::ExecutionError("need at least two classes");
  const size_t nf = spec.numeric_features.size();

  // Domains: from spec or discovered.
  model.categorical_domains.resize(spec.categorical_features.size());
  if (!spec.categorical_domains.empty()) {
    model.categorical_domains = spec.categorical_domains;
  } else {
    for (size_t j = 0; j < spec.categorical_features.size(); ++j) {
      std::set<std::string> domain;
      for (const auto& [k, v] : merged) {
        if (!StartsWith(k, "c/")) continue;
        // key: c/<class>/<j>/<value>
        const std::vector<std::string> bits = Split(k, '/');
        if (bits.size() == 4 && bits[2] == std::to_string(j)) {
          domain.insert(bits[3]);
        }
      }
      model.categorical_domains[j].assign(domain.begin(), domain.end());
    }
  }

  double n_total = 0;
  std::vector<double> class_n(nc, 0.0);
  for (size_t c = 0; c < nc; ++c) {
    auto it = merged.find("cls/" + model.classes[c]);
    class_n[c] = it != merged.end() ? it->second[0] : 0.0;
    n_total += class_n[c];
  }
  if (n_total < 1) return Status::ExecutionError("no training rows");
  model.n = static_cast<int64_t>(std::llround(n_total));
  for (size_t c = 0; c < nc; ++c) {
    model.priors.push_back(class_n[c] / n_total);
  }

  model.gaussian_mean.assign(nc, std::vector<double>(nf, 0.0));
  model.gaussian_var.assign(nc, std::vector<double>(nf, 1.0));
  for (size_t c = 0; c < nc; ++c) {
    for (size_t i = 0; i < nf; ++i) {
      auto it = merged.find("g/" + model.classes[c] + "/" +
                            std::to_string(i));
      if (it == merged.end() || class_n[c] < 2) continue;
      const double sum = it->second[0];
      const double sumsq = it->second[1];
      const double n = class_n[c];
      model.gaussian_mean[c][i] = sum / n;
      model.gaussian_var[c][i] =
          std::max(1e-9, (sumsq - sum * sum / n) / (n - 1.0));
    }
  }

  model.categorical_logp.assign(
      nc, std::vector<std::vector<double>>(spec.categorical_features.size()));
  for (size_t c = 0; c < nc; ++c) {
    for (size_t j = 0; j < spec.categorical_features.size(); ++j) {
      const auto& domain = model.categorical_domains[j];
      std::vector<double>& logp = model.categorical_logp[c][j];
      logp.resize(domain.size());
      const double denom =
          class_n[c] +
          spec.laplace_alpha * static_cast<double>(domain.size());
      for (size_t v = 0; v < domain.size(); ++v) {
        double count = 0;
        auto it = merged.find("c/" + model.classes[c] + "/" +
                              std::to_string(j) + "/" + domain[v]);
        if (it != merged.end()) count = it->second[0];
        logp[v] = std::log((count + spec.laplace_alpha) / denom);
      }
    }
  }
  return model;
}

}  // namespace

Result<NaiveBayesModel> RunNaiveBayes(federation::FederationSession* session,
                                      const NaiveBayesSpec& spec) {
  MIP_RETURN_NOT_OK(RegisterSteps(session->master().functions().get()));
  if (spec.mode == federation::AggregationMode::kSecure &&
      (spec.classes.empty() || (spec.categorical_domains.empty() &&
                                !spec.categorical_features.empty()))) {
    return Status::InvalidArgument(
        "secure Naive Bayes requires classes and categorical domains up "
        "front (fixed transfer shape)");
  }
  MIP_ASSIGN_OR_RETURN(std::vector<federation::TransferData> parts,
                       session->LocalRun("nb.stats", BaseArgs(spec)));
  return BuildModel(spec, parts);
}

Result<NaiveBayesCvResult> RunNaiveBayesCv(
    federation::FederationSession* session, const NaiveBayesSpec& spec,
    int folds) {
  if (folds < 2) return Status::InvalidArgument("need at least 2 folds");
  MIP_RETURN_NOT_OK(RegisterSteps(session->master().functions().get()));

  NaiveBayesCvResult out;
  out.folds = folds;
  for (int fold = 0; fold < folds; ++fold) {
    federation::TransferData args = BaseArgs(spec);
    args.PutScalar("folds", folds);
    args.PutScalar("holdout", fold);
    MIP_ASSIGN_OR_RETURN(std::vector<federation::TransferData> parts,
                         session->LocalRun("nb.stats", args));
    MIP_ASSIGN_OR_RETURN(NaiveBayesModel model, BuildModel(spec, parts));

    // Ship the flattened model for held-out evaluation.
    federation::TransferData eval_args = BaseArgs(spec);
    eval_args.PutScalar("folds", folds);
    eval_args.PutScalar("holdout", fold);
    eval_args.PutStringList("m_classes", model.classes);
    eval_args.PutVector("m_priors", model.priors);
    const size_t nc = model.classes.size();
    const size_t nf = model.numeric_features.size();
    std::vector<double> means(nc * nf), vars(nc * nf), logp;
    for (size_t c = 0; c < nc; ++c) {
      for (size_t i = 0; i < nf; ++i) {
        means[c * nf + i] = model.gaussian_mean[c][i];
        vars[c * nf + i] = model.gaussian_var[c][i];
      }
      for (size_t j = 0; j < model.categorical_features.size(); ++j) {
        logp.insert(logp.end(), model.categorical_logp[c][j].begin(),
                    model.categorical_logp[c][j].end());
      }
    }
    eval_args.PutVector("m_means", means);
    eval_args.PutVector("m_vars", vars);
    eval_args.PutVector("m_logp", logp);
    for (size_t j = 0; j < model.categorical_domains.size(); ++j) {
      eval_args.PutStringList("dom" + std::to_string(j),
                              model.categorical_domains[j]);
    }
    MIP_ASSIGN_OR_RETURN(
        federation::TransferData eval,
        session->LocalRunAndAggregate("nb.eval", eval_args,
                                      federation::AggregationMode::kPlain));
    MIP_ASSIGN_OR_RETURN(double correct, eval.GetScalar("correct"));
    MIP_ASSIGN_OR_RETURN(double total, eval.GetScalar("total"));
    if (total > 0) out.accuracy_per_fold.push_back(correct / total);
  }
  for (double a : out.accuracy_per_fold) out.mean_accuracy += a;
  if (!out.accuracy_per_fold.empty()) {
    out.mean_accuracy /= static_cast<double>(out.accuracy_per_fold.size());
  }
  return out;
}

Result<std::string> NaiveBayesModel::Predict(
    const std::vector<double>& numeric,
    const std::vector<std::string>& categorical) const {
  if (numeric.size() != numeric_features.size() ||
      categorical.size() != categorical_features.size()) {
    return Status::InvalidArgument("feature count mismatch in Predict");
  }
  double best_score = -1e300;
  size_t best = 0;
  for (size_t c = 0; c < classes.size(); ++c) {
    double score = std::log(std::max(priors[c], 1e-300));
    for (size_t i = 0; i < numeric.size(); ++i) {
      const double mu = gaussian_mean[c][i];
      const double var = gaussian_var[c][i];
      score += -0.5 * std::log(2.0 * M_PI * var) -
               (numeric[i] - mu) * (numeric[i] - mu) / (2.0 * var);
    }
    for (size_t j = 0; j < categorical.size(); ++j) {
      const auto& domain = categorical_domains[j];
      bool found = false;
      for (size_t v = 0; v < domain.size(); ++v) {
        if (domain[v] == categorical[j]) {
          score += categorical_logp[c][j][v];
          found = true;
          break;
        }
      }
      if (!found) score += std::log(1e-6);  // unseen value
    }
    if (score > best_score) {
      best_score = score;
      best = c;
    }
  }
  return classes[best];
}

std::string NaiveBayesModel::ToString() const {
  std::ostringstream os;
  os.precision(4);
  os << std::fixed;
  os << "Naive Bayes (n=" << n << "): classes";
  for (size_t c = 0; c < classes.size(); ++c) {
    os << " " << classes[c] << "(prior=" << priors[c] << ")";
  }
  os << "\n";
  return os.str();
}

std::string NaiveBayesCvResult::ToString() const {
  std::ostringstream os;
  os.precision(4);
  os << std::fixed;
  os << "Naive Bayes " << folds
     << "-fold CV: mean accuracy=" << mean_accuracy << "\n";
  return os.str();
}

}  // namespace mip::algorithms
