#include "algorithms/descriptive.h"

#include <cmath>
#include <limits>
#include <set>
#include <sstream>

#include "algorithms/common.h"
#include "engine/exec_context.h"
#include "common/string_util.h"
#include "stats/summary.h"

namespace mip::algorithms {

namespace {

constexpr double kSentinel = 1e9;  // "no data" stand-in for secure min/max

Status RegisterSteps(federation::LocalFunctionRegistry* registry) {
  // Per-(dataset, variable) dashboard rows: dataset-local statistics,
  // computed next to the data; quartiles are exact.
  MIP_RETURN_NOT_OK(EnsureLocal(
      registry, "descriptive.rows",
      [](federation::WorkerContext& ctx,
         const federation::TransferData& args)
          -> Result<federation::TransferData> {
        MIP_ASSIGN_OR_RETURN(std::vector<std::string> variables,
                             args.GetStringList("numeric_vars"));
        federation::TransferData out;
        for (const std::string& ds : WorkerDatasets(ctx, args)) {
          MIP_ASSIGN_OR_RETURN(engine::Table table, ctx.db().GetTable(ds));
          for (const std::string& var : variables) {
            MIP_ASSIGN_OR_RETURN(const engine::Column* col,
                                 table.ColumnByName(var));
            // Morsel-parallel accumulation, merged in morsel order (the
            // same merge the federated path applies across workers).
            const engine::ExecContext& exec = ctx.exec();
            std::vector<stats::SummaryAccumulator> parts(
                exec.NumMorsels(col->length()));
            exec.ForEachMorsel(
                col->length(), [&](size_t m, size_t begin, size_t end) {
                  for (size_t r = begin; r < end; ++r) {
                    parts[m].Add(col->AsDoubleAt(r));
                  }
                });
            stats::SummaryAccumulator acc;
            for (const stats::SummaryAccumulator& part : parts) {
              acc.Merge(part);
            }
            std::vector<double> values = col->NonNullDoubles();
            std::vector<double> row = acc.ToVector();  // n,na,mean,m2,min,max
            row.push_back(stats::Quantile(values, 0.25));
            row.push_back(stats::Quantile(values, 0.50));
            row.push_back(stats::Quantile(values, 0.75));
            out.PutVector("row/" + ds + "/" + var, std::move(row));
          }
        }
        return out;
      }));

  // Sum-able moments per variable across the worker's datasets:
  // [n, na, sum, sumsq] — exactly what SMPC sum aggregation supports.
  MIP_RETURN_NOT_OK(EnsureLocal(
      registry, "descriptive.moments",
      [](federation::WorkerContext& ctx,
         const federation::TransferData& args)
          -> Result<federation::TransferData> {
        MIP_ASSIGN_OR_RETURN(std::vector<std::string> variables,
                             args.GetStringList("numeric_vars"));
        federation::TransferData out;
        for (const std::string& var : variables) {
          double n = 0, na = 0, sum = 0, sumsq = 0;
          for (const std::string& ds : WorkerDatasets(ctx, args)) {
            MIP_ASSIGN_OR_RETURN(engine::Table table, ctx.db().GetTable(ds));
            MIP_ASSIGN_OR_RETURN(const engine::Column* col,
                                 table.ColumnByName(var));
            const engine::ExecContext& exec = ctx.exec();
            struct Partial {
              double n = 0, na = 0, sum = 0, sumsq = 0;
            };
            std::vector<Partial> parts(exec.NumMorsels(col->length()));
            exec.ForEachMorsel(
                col->length(), [&](size_t m, size_t begin, size_t end) {
                  Partial& p = parts[m];
                  for (size_t r = begin; r < end; ++r) {
                    const double v = col->AsDoubleAt(r);
                    if (std::isnan(v)) {
                      p.na += 1;
                    } else {
                      p.n += 1;
                      p.sum += v;
                      p.sumsq += v * v;
                    }
                  }
                });
            for (const Partial& p : parts) {
              n += p.n;
              na += p.na;
              sum += p.sum;
              sumsq += p.sumsq;
            }
          }
          out.PutVector("mom/" + var, {n, na, sum, sumsq});
        }
        return out;
      }));

  // Local extrema vector (one entry per variable), for secure min/max.
  MIP_RETURN_NOT_OK(EnsureLocal(
      registry, "descriptive.extrema",
      [](federation::WorkerContext& ctx,
         const federation::TransferData& args)
          -> Result<federation::TransferData> {
        MIP_ASSIGN_OR_RETURN(std::vector<std::string> variables,
                             args.GetStringList("numeric_vars"));
        const bool want_min = args.HasScalar("want_min");
        std::vector<double> vals;
        for (const std::string& var : variables) {
          double best = want_min ? kSentinel : -kSentinel;
          for (const std::string& ds : WorkerDatasets(ctx, args)) {
            MIP_ASSIGN_OR_RETURN(engine::Table table, ctx.db().GetTable(ds));
            MIP_ASSIGN_OR_RETURN(const engine::Column* col,
                                 table.ColumnByName(var));
            for (double v : col->NonNullDoubles()) {
              best = want_min ? std::min(best, v) : std::max(best, v);
            }
          }
          vals.push_back(best);
        }
        federation::TransferData out;
        out.PutVector("vals", std::move(vals));
        return out;
      }));
  return Status::OK();
}

stats::DescriptiveRow RowFromVector(const std::string& variable,
                                    const std::string& dataset,
                                    const std::vector<double>& v) {
  stats::DescriptiveRow row;
  row.variable = variable;
  row.dataset = dataset;
  stats::SummaryAccumulator acc = stats::SummaryAccumulator::FromVector(
      std::vector<double>(v.begin(), v.begin() + 6));
  row.datapoints = acc.count();
  row.na = acc.na_count();
  row.se = acc.standard_error();
  row.mean = acc.mean();
  row.min = acc.min();
  row.max = acc.max();
  if (v.size() >= 9) {
    row.q1 = v[6];
    row.q2 = v[7];
    row.q3 = v[8];
  } else {
    row.q1 = row.q2 = row.q3 = std::numeric_limits<double>::quiet_NaN();
  }
  return row;
}

}  // namespace

Result<DescriptiveResult> RunDescriptive(
    federation::FederationSession* session, const DescriptiveSpec& spec) {
  MIP_RETURN_NOT_OK(RegisterSteps(session->master().functions().get()));
  federation::TransferData args = MakeArgs(spec.datasets, spec.variables);

  DescriptiveResult result;

  // Per-dataset rows: computed where the dataset lives, shipped as the
  // published dashboard aggregates.
  MIP_ASSIGN_OR_RETURN(std::vector<federation::TransferData> row_parts,
                       session->LocalRun("descriptive.rows", args));
  // A dataset name may span several workers (a multi-centre study); moments
  // and extrema merge exactly, quartiles only survive when the dataset
  // lives on a single worker (they are dataset-local statistics).
  std::map<std::string, std::vector<std::vector<double>>> rows_by_key;
  for (const federation::TransferData& part : row_parts) {
    for (const auto& [key, vec] : part.vectors()) {
      if (!StartsWith(key, "row/")) continue;
      rows_by_key[key].push_back(vec);
    }
  }
  for (const auto& [key, vecs] : rows_by_key) {
    const std::vector<std::string> bits = Split(key, '/');
    if (bits.size() != 3) continue;
    if (vecs.size() == 1) {
      result.per_dataset.push_back(RowFromVector(bits[2], bits[1], vecs[0]));
      continue;
    }
    stats::SummaryAccumulator merged;
    for (const auto& vec : vecs) {
      merged.Merge(stats::SummaryAccumulator::FromVector(
          std::vector<double>(vec.begin(), vec.begin() + 6)));
    }
    result.per_dataset.push_back(
        RowFromVector(bits[2], bits[1], merged.ToVector()));
  }

  // Federated row per variable.
  if (spec.mode == federation::AggregationMode::kPlain) {
    MIP_ASSIGN_OR_RETURN(
        federation::TransferData merged,
        session->LocalRunAndAggregate("descriptive.moments", args,
                                      federation::AggregationMode::kPlain));
    for (const std::string& var : spec.variables) {
      MIP_ASSIGN_OR_RETURN(std::vector<double> mom,
                           merged.GetVector("mom/" + var));
      stats::DescriptiveRow row;
      row.variable = var;
      row.dataset = "(all)";
      const double n = mom[0];
      row.datapoints = static_cast<int64_t>(n);
      row.na = static_cast<int64_t>(mom[1]);
      row.mean = n > 0 ? mom[2] / n : std::numeric_limits<double>::quiet_NaN();
      const double var_hat =
          n > 1 ? (mom[3] - mom[2] * mom[2] / n) / (n - 1)
                : std::numeric_limits<double>::quiet_NaN();
      row.se = n > 1 ? std::sqrt(var_hat / n)
                     : std::numeric_limits<double>::quiet_NaN();
      row.q1 = row.q2 = row.q3 = std::numeric_limits<double>::quiet_NaN();
      // Plain-path extrema come from the per-dataset rows.
      row.min = std::numeric_limits<double>::infinity();
      row.max = -std::numeric_limits<double>::infinity();
      for (const stats::DescriptiveRow& r : result.per_dataset) {
        if (r.variable != var || r.datapoints == 0) continue;
        row.min = std::min(row.min, r.min);
        row.max = std::max(row.max, r.max);
      }
      result.federated.push_back(row);
    }
  } else {
    MIP_ASSIGN_OR_RETURN(
        federation::TransferData merged,
        session->LocalRunAndAggregate("descriptive.moments", args,
                                      federation::AggregationMode::kSecure));
    federation::TransferData min_args = args;
    min_args.PutScalar("want_min", 1.0);
    MIP_ASSIGN_OR_RETURN(
        std::vector<double> mins,
        session->LocalRunSecureOp("descriptive.extrema", min_args, "vals",
                                  smpc::SmpcOp::kMin));
    MIP_ASSIGN_OR_RETURN(
        std::vector<double> maxs,
        session->LocalRunSecureOp("descriptive.extrema", args, "vals",
                                  smpc::SmpcOp::kMax));
    for (size_t i = 0; i < spec.variables.size(); ++i) {
      const std::string& var = spec.variables[i];
      MIP_ASSIGN_OR_RETURN(std::vector<double> mom,
                           merged.GetVector("mom/" + var));
      stats::DescriptiveRow row;
      row.variable = var;
      row.dataset = "(all, secure)";
      // Fixed-point round-trip: counts come back as near-integers.
      const double n = std::round(mom[0]);
      row.datapoints = static_cast<int64_t>(n);
      row.na = static_cast<int64_t>(std::round(mom[1]));
      row.mean = n > 0 ? mom[2] / n : std::numeric_limits<double>::quiet_NaN();
      const double var_hat =
          n > 1 ? (mom[3] - mom[2] * mom[2] / n) / (n - 1)
                : std::numeric_limits<double>::quiet_NaN();
      row.se = n > 1 ? std::sqrt(var_hat / n)
                     : std::numeric_limits<double>::quiet_NaN();
      row.min = mins[i];
      row.max = maxs[i];
      row.q1 = row.q2 = row.q3 = std::numeric_limits<double>::quiet_NaN();
      result.federated.push_back(row);
    }
  }
  return result;
}

std::string DescriptiveResult::ToString() const {
  std::ostringstream os;
  os.precision(3);
  os << std::fixed;
  auto print_row = [&os](const stats::DescriptiveRow& r) {
    os << "  " << r.variable << " @ " << r.dataset << ": n=" << r.datapoints
       << " na=" << r.na << " mean=" << r.mean << " se=" << r.se
       << " min=" << r.min << " q1=" << r.q1 << " q2=" << r.q2
       << " q3=" << r.q3 << " max=" << r.max << "\n";
  };
  os << "Per-dataset descriptive statistics:\n";
  for (const auto& r : per_dataset) print_row(r);
  os << "Federated (all datasets):\n";
  for (const auto& r : federated) print_row(r);
  return os.str();
}

}  // namespace mip::algorithms
