#ifndef MIP_ALGORITHMS_KAPLAN_MEIER_H_
#define MIP_ALGORITHMS_KAPLAN_MEIER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "federation/master.h"

namespace mip::algorithms {

/// \brief Federated Kaplan-Meier estimator: Workers ship per-time-point
/// event/censoring counts; the Master merges the event tables and computes
/// the product-limit survival curve with Greenwood confidence intervals.
struct KaplanMeierSpec {
  std::vector<std::string> datasets;
  std::string time_variable;    ///< numeric follow-up time
  std::string event_variable;   ///< numeric: 1 = event, 0 = censored
  /// Optional categorical variable; one curve per level.
  std::string group_variable;
  federation::AggregationMode mode = federation::AggregationMode::kPlain;
};

struct KaplanMeierPoint {
  double time = 0.0;
  int64_t at_risk = 0;
  int64_t events = 0;
  int64_t censored = 0;
  double survival = 1.0;
  double std_error = 0.0;  ///< Greenwood
  double ci_low = 1.0;
  double ci_high = 1.0;
};

struct KaplanMeierCurve {
  std::string group;  ///< "(all)" when ungrouped
  std::vector<KaplanMeierPoint> points;
  double median_survival_time = 0.0;  ///< NaN when never below 0.5
};

struct KaplanMeierResult {
  std::vector<KaplanMeierCurve> curves;
  /// Log-rank test across the groups (only when >= 2 curves): H0 = equal
  /// hazard in all groups. Computed from the same merged life tables — no
  /// extra federation round.
  double log_rank_chi2 = 0.0;
  double log_rank_df = 0.0;
  double log_rank_p = 1.0;

  std::string ToString() const;
};

Result<KaplanMeierResult> RunKaplanMeier(federation::FederationSession* session,
                                         const KaplanMeierSpec& spec);

}  // namespace mip::algorithms

#endif  // MIP_ALGORITHMS_KAPLAN_MEIER_H_
