#include "algorithms/linear_regression.h"

#include <cmath>
#include <cstring>
#include <sstream>

#include "algorithms/common.h"
#include "engine/exec_context.h"
#include "stats/distributions.h"
#include "stats/linalg.h"

namespace mip::algorithms {

namespace {

// Deterministic fold assignment: every worker hashes its rows the same way,
// using the row's feature bytes, so folds are stable across steps without
// any coordination.
size_t FoldOfRow(const double* row, size_t width, int folds) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (size_t i = 0; i < width; ++i) {
    uint64_t bits;
    static_assert(sizeof(double) == sizeof(uint64_t));
    std::memcpy(&bits, &row[i], sizeof(bits));
    h = (h ^ bits) * 0x100000001b3ull;
  }
  return static_cast<size_t>(h % static_cast<uint64_t>(folds));
}

// Builds the design matrix row (optionally with leading 1 for intercept).
void FillDesignRow(const stats::Matrix& data, size_t r, bool intercept,
                   size_t p_x, std::vector<double>* row) {
  size_t k = 0;
  if (intercept) (*row)[k++] = 1.0;
  for (size_t j = 0; j < p_x; ++j) (*row)[k++] = data(r, j);
}

Status RegisterSteps(federation::LocalFunctionRegistry* registry) {
  // Sufficient statistics for the normal equations; optionally restricted
  // to rows outside fold `holdout` (for CV training passes).
  MIP_RETURN_NOT_OK(EnsureLocal(
      registry, "linreg.fit_local",
      [](federation::WorkerContext& ctx,
         const federation::TransferData& args)
          -> Result<federation::TransferData> {
        MIP_ASSIGN_OR_RETURN(std::vector<std::string> x_vars,
                             args.GetStringList("numeric_vars"));
        MIP_ASSIGN_OR_RETURN(std::string target, args.GetString("target"));
        const bool intercept = args.HasScalar("intercept");
        const int folds =
            args.HasScalar("folds")
                ? static_cast<int>(args.GetScalar("folds").ValueOrDie())
                : 0;
        const int holdout =
            args.HasScalar("holdout")
                ? static_cast<int>(args.GetScalar("holdout").ValueOrDie())
                : -1;

        std::vector<std::string> all_vars = x_vars;
        all_vars.push_back(target);
        MIP_ASSIGN_OR_RETURN(
            LocalData data,
            GatherData(ctx, WorkerDatasets(ctx, args), all_vars, {}));
        const size_t p_x = x_vars.size();
        const size_t p = p_x + (intercept ? 1 : 0);

        // Morsel-parallel sufficient statistics: per-morsel partial
        // normal-equation blocks, merged in morsel order — the same sums
        // at any thread count.
        const engine::ExecContext& exec = ctx.exec();
        struct Partial {
          stats::Matrix xtx;
          std::vector<double> xty;
          double yty = 0.0;
          double y_sum = 0.0;
          double n = 0.0;
        };
        std::vector<Partial> parts(exec.NumMorsels(data.num_rows));
        exec.ForEachMorsel(
            data.num_rows, [&](size_t m, size_t begin, size_t end) {
              Partial& part = parts[m];
              part.xtx = stats::Matrix(p, p);
              part.xty.assign(p, 0.0);
              std::vector<double> xrow(p);
              for (size_t r = begin; r < end; ++r) {
                if (folds > 0 &&
                    static_cast<int>(FoldOfRow(data.numeric.row(r),
                                               data.numeric.cols(),
                                               folds)) == holdout) {
                  continue;
                }
                FillDesignRow(data.numeric, r, intercept, p_x, &xrow);
                const double y = data.numeric(r, p_x);
                for (size_t i = 0; i < p; ++i) {
                  for (size_t j = 0; j < p; ++j) {
                    part.xtx(i, j) += xrow[i] * xrow[j];
                  }
                  part.xty[i] += xrow[i] * y;
                }
                part.yty += y * y;
                part.y_sum += y;
                part.n += 1.0;
              }
            });
        stats::Matrix xtx(p, p);
        std::vector<double> xty(p, 0.0);
        double yty = 0.0;
        double y_sum = 0.0;
        double n = 0.0;
        for (const Partial& part : parts) {
          for (size_t i = 0; i < p; ++i) {
            for (size_t j = 0; j < p; ++j) {
              xtx(i, j) += part.xtx(i, j);
            }
            xty[i] += part.xty[i];
          }
          yty += part.yty;
          y_sum += part.y_sum;
          n += part.n;
        }
        federation::TransferData out;
        out.PutMatrix("xtx", std::move(xtx));
        out.PutVector("xty", std::move(xty));
        out.PutScalar("yty", yty);
        out.PutScalar("y_sum", y_sum);
        out.PutScalar("n", n);
        return out;
      }));

  // Held-out scoring for CV: SSE / SAE on rows inside fold `holdout` given
  // the fitted coefficients.
  MIP_RETURN_NOT_OK(EnsureLocal(
      registry, "linreg.score_local",
      [](federation::WorkerContext& ctx,
         const federation::TransferData& args)
          -> Result<federation::TransferData> {
        MIP_ASSIGN_OR_RETURN(std::vector<std::string> x_vars,
                             args.GetStringList("numeric_vars"));
        MIP_ASSIGN_OR_RETURN(std::string target, args.GetString("target"));
        MIP_ASSIGN_OR_RETURN(std::vector<double> beta,
                             args.GetVector("beta"));
        const bool intercept = args.HasScalar("intercept");
        MIP_ASSIGN_OR_RETURN(double folds_d, args.GetScalar("folds"));
        MIP_ASSIGN_OR_RETURN(double holdout_d, args.GetScalar("holdout"));
        const int folds = static_cast<int>(folds_d);
        const int holdout = static_cast<int>(holdout_d);

        std::vector<std::string> all_vars = x_vars;
        all_vars.push_back(target);
        MIP_ASSIGN_OR_RETURN(
            LocalData data,
            GatherData(ctx, WorkerDatasets(ctx, args), all_vars, {}));
        const size_t p_x = x_vars.size();
        const size_t p = p_x + (intercept ? 1 : 0);
        std::vector<double> xrow(p);
        double sse = 0.0, sae = 0.0, n = 0.0;
        for (size_t r = 0; r < data.num_rows; ++r) {
          if (static_cast<int>(FoldOfRow(data.numeric.row(r),
                                         data.numeric.cols(), folds)) !=
              holdout) {
            continue;
          }
          FillDesignRow(data.numeric, r, intercept, p_x, &xrow);
          double pred = 0.0;
          for (size_t i = 0; i < p; ++i) pred += beta[i] * xrow[i];
          const double err = data.numeric(r, p_x) - pred;
          sse += err * err;
          sae += std::fabs(err);
          n += 1.0;
        }
        federation::TransferData out;
        out.PutScalar("sse", sse);
        out.PutScalar("sae", sae);
        out.PutScalar("n", n);
        return out;
      }));
  return Status::OK();
}

struct FitInternals {
  std::vector<double> beta;
  stats::Matrix xtx_inv;
  double sse = 0.0;
  double sst = 0.0;
  double n = 0.0;
};

Result<FitInternals> SolveFromAggregates(const federation::TransferData& agg) {
  MIP_ASSIGN_OR_RETURN(stats::Matrix xtx, agg.GetMatrix("xtx"));
  MIP_ASSIGN_OR_RETURN(std::vector<double> xty, agg.GetVector("xty"));
  MIP_ASSIGN_OR_RETURN(double yty, agg.GetScalar("yty"));
  MIP_ASSIGN_OR_RETURN(double y_sum, agg.GetScalar("y_sum"));
  MIP_ASSIGN_OR_RETURN(double n, agg.GetScalar("n"));

  FitInternals fit;
  fit.n = n;
  MIP_ASSIGN_OR_RETURN(fit.beta, stats::SolveSpd(xtx, xty));
  MIP_ASSIGN_OR_RETURN(fit.xtx_inv, stats::InverseSpd(xtx));
  // SSE = y'y - beta' X'y (normal-equation identity).
  double bxty = 0.0;
  for (size_t i = 0; i < fit.beta.size(); ++i) bxty += fit.beta[i] * xty[i];
  fit.sse = yty - bxty;
  fit.sst = yty - y_sum * y_sum / n;
  return fit;
}

}  // namespace

Result<LinearRegressionResult> RunLinearRegression(
    federation::FederationSession* session,
    const LinearRegressionSpec& spec) {
  MIP_RETURN_NOT_OK(RegisterSteps(session->master().functions().get()));

  federation::TransferData args = MakeArgs(spec.datasets, spec.covariates);
  args.PutString("target", spec.target);
  if (spec.intercept) args.PutScalar("intercept", 1.0);

  MIP_ASSIGN_OR_RETURN(
      federation::TransferData agg,
      session->LocalRunAndAggregate("linreg.fit_local", args, spec.mode));
  MIP_ASSIGN_OR_RETURN(FitInternals fit, SolveFromAggregates(agg));

  const size_t p = fit.beta.size();
  const double df = fit.n - static_cast<double>(p);
  if (df <= 0) {
    return Status::ExecutionError("not enough rows for the requested model");
  }
  const double sigma2 = fit.sse / df;

  LinearRegressionResult out;
  out.n = static_cast<int64_t>(std::llround(fit.n));
  out.residual_std_error = std::sqrt(sigma2);
  out.r_squared = fit.sst > 0 ? 1.0 - fit.sse / fit.sst : 0.0;
  const double p_model =
      static_cast<double>(p) - (spec.intercept ? 1.0 : 0.0);
  out.adjusted_r_squared =
      1.0 - (1.0 - out.r_squared) * (fit.n - 1.0) / df;
  if (p_model > 0) {
    out.f_statistic =
        (fit.sst - fit.sse) / p_model / sigma2;
    out.f_p_value = stats::FSf(out.f_statistic, p_model, df);
  }

  std::vector<std::string> names;
  if (spec.intercept) names.push_back("(intercept)");
  for (const std::string& v : spec.covariates) names.push_back(v);
  for (size_t i = 0; i < p; ++i) {
    CoefficientStat c;
    c.name = names[i];
    c.estimate = fit.beta[i];
    c.std_error = std::sqrt(sigma2 * fit.xtx_inv(i, i));
    c.t_value = c.estimate / c.std_error;
    c.p_value = stats::StudentTTwoSidedP(c.t_value, df);
    out.coefficients.push_back(c);
  }
  return out;
}

Result<LinearRegressionCvResult> RunLinearRegressionCv(
    federation::FederationSession* session, const LinearRegressionSpec& spec,
    int folds) {
  if (folds < 2) return Status::InvalidArgument("need at least 2 folds");
  MIP_RETURN_NOT_OK(RegisterSteps(session->master().functions().get()));

  LinearRegressionCvResult out;
  out.folds = folds;
  for (int fold = 0; fold < folds; ++fold) {
    federation::TransferData args = MakeArgs(spec.datasets, spec.covariates);
    args.PutString("target", spec.target);
    if (spec.intercept) args.PutScalar("intercept", 1.0);
    args.PutScalar("folds", folds);
    args.PutScalar("holdout", fold);

    MIP_ASSIGN_OR_RETURN(
        federation::TransferData agg,
        session->LocalRunAndAggregate("linreg.fit_local", args, spec.mode));
    MIP_ASSIGN_OR_RETURN(FitInternals fit, SolveFromAggregates(agg));

    federation::TransferData score_args = args;
    score_args.PutVector("beta", fit.beta);
    MIP_ASSIGN_OR_RETURN(
        federation::TransferData score,
        session->LocalRunAndAggregate("linreg.score_local", score_args,
                                      spec.mode));
    MIP_ASSIGN_OR_RETURN(double sse, score.GetScalar("sse"));
    MIP_ASSIGN_OR_RETURN(double sae, score.GetScalar("sae"));
    MIP_ASSIGN_OR_RETURN(double n, score.GetScalar("n"));
    if (n <= 0) continue;
    out.rmse_per_fold.push_back(std::sqrt(sse / n));
    out.mae_per_fold.push_back(sae / n);
  }
  for (double v : out.rmse_per_fold) out.mean_rmse += v;
  for (double v : out.mae_per_fold) out.mean_mae += v;
  if (!out.rmse_per_fold.empty()) {
    out.mean_rmse /= static_cast<double>(out.rmse_per_fold.size());
    out.mean_mae /= static_cast<double>(out.mae_per_fold.size());
  }
  return out;
}

std::string LinearRegressionResult::ToString() const {
  std::ostringstream os;
  os.precision(4);
  os << std::fixed;
  os << "Linear regression (n=" << n << ", R^2=" << r_squared
     << ", adj R^2=" << adjusted_r_squared << ", F=" << f_statistic
     << " p=" << f_p_value << ")\n";
  for (const CoefficientStat& c : coefficients) {
    os << "  " << c.name << ": " << c.estimate << " (se=" << c.std_error
       << ", t=" << c.t_value << ", p=" << c.p_value << ")\n";
  }
  return os.str();
}

std::string LinearRegressionCvResult::ToString() const {
  std::ostringstream os;
  os.precision(4);
  os << std::fixed;
  os << "Linear regression " << folds << "-fold CV: mean RMSE=" << mean_rmse
     << ", mean MAE=" << mean_mae << "\n";
  return os.str();
}

}  // namespace mip::algorithms
