#ifndef MIP_ALGORITHMS_ANOVA_H_
#define MIP_ALGORITHMS_ANOVA_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "federation/master.h"

namespace mip::algorithms {

/// \brief One-way ANOVA of a numeric outcome across the levels of one
/// categorical factor. Workers ship per-level (n, sum, sumsq).
///
/// `levels` may be left empty on the plain path (levels are discovered from
/// the workers' transfers); the secure path requires them up front so every
/// worker produces an identically-shaped vector for the SMPC sum.
struct AnovaOneWaySpec {
  std::vector<std::string> datasets;
  std::string outcome;
  std::string factor;
  std::vector<std::string> levels;
  federation::AggregationMode mode = federation::AggregationMode::kPlain;
};

struct AnovaOneWayResult {
  std::vector<std::string> levels;
  std::vector<int64_t> level_counts;
  std::vector<double> level_means;
  double ss_between = 0.0;
  double ss_within = 0.0;
  double df_between = 0.0;
  double df_within = 0.0;
  double f_statistic = 0.0;
  double p_value = 0.0;

  std::string ToString() const;
};

Result<AnovaOneWayResult> RunAnovaOneWay(federation::FederationSession* session,
                                         const AnovaOneWaySpec& spec);

/// \brief Two-way ANOVA (factors A and B with interaction) using the
/// unweighted cell-means decomposition. Level lists are required (the cell
/// grid must be fixed across workers).
struct AnovaTwoWaySpec {
  std::vector<std::string> datasets;
  std::string outcome;
  std::string factor_a;
  std::string factor_b;
  std::vector<std::string> levels_a;
  std::vector<std::string> levels_b;
  federation::AggregationMode mode = federation::AggregationMode::kPlain;
};

struct AnovaEffect {
  std::string name;
  double sum_of_squares = 0.0;
  double df = 0.0;
  double f_statistic = 0.0;
  double p_value = 0.0;
};

struct AnovaTwoWayResult {
  AnovaEffect effect_a;
  AnovaEffect effect_b;
  AnovaEffect interaction;
  double ss_error = 0.0;
  double df_error = 0.0;

  std::string ToString() const;
};

Result<AnovaTwoWayResult> RunAnovaTwoWay(federation::FederationSession* session,
                                         const AnovaTwoWaySpec& spec);

}  // namespace mip::algorithms

#endif  // MIP_ALGORITHMS_ANOVA_H_
