#ifndef MIP_ALGORITHMS_LINEAR_REGRESSION_H_
#define MIP_ALGORITHMS_LINEAR_REGRESSION_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "federation/master.h"

namespace mip::algorithms {

/// \brief Federated ordinary least squares (the paper's Figure 2 algorithm).
///
/// Each Worker computes the sufficient statistics (X'X, X'y, y'y, n) on its
/// local rows; the Master aggregates them (plainly or through SMPC — the
/// statistics are sums, exactly what the SMPC engine supports) and solves
/// the normal equations. The fit is bit-for-bit the one a pooled dataset
/// would give, which the equivalence tests assert.
struct LinearRegressionSpec {
  std::vector<std::string> datasets;
  std::vector<std::string> covariates;  ///< numeric x variables
  std::string target;                   ///< numeric y variable
  bool intercept = true;
  federation::AggregationMode mode = federation::AggregationMode::kPlain;
};

struct CoefficientStat {
  std::string name;
  double estimate = 0.0;
  double std_error = 0.0;
  double t_value = 0.0;
  double p_value = 0.0;
};

struct LinearRegressionResult {
  std::vector<CoefficientStat> coefficients;
  int64_t n = 0;
  double r_squared = 0.0;
  double adjusted_r_squared = 0.0;
  double f_statistic = 0.0;
  double f_p_value = 0.0;
  double residual_std_error = 0.0;

  std::string ToString() const;
};

Result<LinearRegressionResult> RunLinearRegression(
    federation::FederationSession* session, const LinearRegressionSpec& spec);

/// \brief k-fold cross-validated federated OLS: rows are assigned to folds
/// by a deterministic hash; for each fold the model is fitted on the
/// complement (federated) and scored on the held-out rows (federated).
struct LinearRegressionCvResult {
  int folds = 0;
  std::vector<double> rmse_per_fold;
  std::vector<double> mae_per_fold;
  double mean_rmse = 0.0;
  double mean_mae = 0.0;

  std::string ToString() const;
};

Result<LinearRegressionCvResult> RunLinearRegressionCv(
    federation::FederationSession* session, const LinearRegressionSpec& spec,
    int folds);

}  // namespace mip::algorithms

#endif  // MIP_ALGORITHMS_LINEAR_REGRESSION_H_
