#include "net/tcp_transport.h"

#include <utility>

#include "common/logging.h"
#include "common/stopwatch.h"

namespace mip::net {

namespace {
EpollServerOptions ServerOptions(const TcpTransportOptions& options) {
  EpollServerOptions server;
  server.bind_host = options.bind_host;
  server.wire_version = options.wire_version;
  server.max_frame_payload = options.max_frame_payload;
  server.serve_threads = options.serve_threads;
  server.read_deadline_ms = options.read_deadline_ms;
  server.max_connections = options.max_connections;
  return server;
}
}  // namespace

TcpTransport::TcpTransport(TcpTransportOptions options)
    : options_(std::move(options)), server_(ServerOptions(options_)) {}

TcpTransport::~TcpTransport() { Shutdown(); }

Status TcpTransport::Listen(int port) { return server_.Listen(port); }

void TcpTransport::AddPeer(const std::string& node_id,
                           const std::string& host, int port) {
  std::lock_guard<std::mutex> lock(peers_mu_);
  Peer& peer = peers_[node_id];
  peer.host = host;
  peer.port = port;
  peer.idle.clear();  // stale connections to an old address are useless
}

bool TcpTransport::HasPeer(const std::string& node_id) const {
  std::lock_guard<std::mutex> lock(peers_mu_);
  return peers_.count(node_id) > 0;
}

Status TcpTransport::RegisterEndpoint(const std::string& node_id,
                                      Handler handler) {
  // Endpoint serving lives entirely in the epoll server: frame decode, the
  // hello handshake, codec_ok negotiation, handler dispatch, reply framing.
  return server_.RegisterEndpoint(node_id, std::move(handler));
}

Status TcpTransport::RoundTrip(Socket* sock,
                               const std::vector<uint8_t>& frame,
                               double timeout_ms,
                               std::vector<uint8_t>* reply_payload,
                               uint64_t* reply_wire_bytes) {
  Stopwatch sw;
  MIP_RETURN_NOT_OK(sock->SendAll(frame.data(), frame.size(), timeout_ms));
  FrameDecoder decoder(options_.max_frame_payload);
  uint8_t chunk[16384];
  for (;;) {
    double remaining = 0.0;
    if (timeout_ms > 0) {
      remaining = timeout_ms - sw.ElapsedMillis();
      if (remaining <= 0) {
        return Status::Unavailable("request deadline of " +
                                   std::to_string(timeout_ms) +
                                   " ms expired");
      }
    }
    MIP_ASSIGN_OR_RETURN(size_t got,
                         sock->RecvSome(chunk, sizeof(chunk), remaining));
    decoder.Feed(chunk, got);
    MIP_ASSIGN_OR_RETURN(bool done, decoder.Next(reply_payload));
    if (done) {
      if (decoder.buffered() != 0) {
        return Status::IOError("unexpected bytes after the reply frame");
      }
      *reply_wire_bytes = kFrameHeaderBytes + reply_payload->size();
      return Status::OK();
    }
  }
}

void TcpTransport::MeterRequestOnly(const Envelope& envelope,
                                    uint64_t wire_bytes) {
  const std::string link = envelope.from + "->" + envelope.to;
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_.messages += 1;
  stats_.bytes += wire_bytes;
  link_stats_[link].messages += 1;
  link_stats_[link].bytes += wire_bytes;
}

uint8_t TcpTransport::NegotiatedVersion(const std::string& peer_id) {
  if (options_.wire_version < kFrameVersionCodec) return kFrameVersionMin;
  std::string host;
  int peer_port = 0;
  {
    std::lock_guard<std::mutex> lock(peers_mu_);
    auto it = peers_.find(peer_id);
    if (it == peers_.end()) return kFrameVersionMin;
    if (it->second.version != 0) {
      return std::min(options_.wire_version, it->second.version);
    }
    host = it->second.host;
    peer_port = it->second.port;
  }

  // First contact: one v1-framed hello round trip asking the peer which
  // version it speaks. An old peer cannot answer the question directly, but
  // fails it with a clean handler error — which is the answer (version 1).
  Envelope hello;
  hello.to = peer_id;
  hello.type = kHelloMsgType;
  hello.payload = {options_.wire_version};
  BufferWriter w;
  EncodeFrame(EncodeEnvelopePayload(hello), &w, kFrameVersionMin);
  const std::vector<uint8_t> frame = w.TakeBytes();

  Socket conn;
  {
    std::lock_guard<std::mutex> lock(peers_mu_);
    auto it = peers_.find(peer_id);
    if (it != peers_.end() && !it->second.idle.empty()) {
      conn = std::move(it->second.idle.back());
      it->second.idle.pop_back();
    }
  }
  if (!conn.valid()) {
    Result<Socket> dialed =
        Socket::ConnectTcp(host, peer_port, options_.connect_timeout_ms);
    if (!dialed.ok()) return kFrameVersionMin;  // transient: retry next send
    conn = std::move(dialed).MoveValueUnsafe();
  }
  std::vector<uint8_t> reply_payload;
  uint64_t reply_wire_bytes = 0;
  Status rt = RoundTrip(&conn, frame, options_.io_timeout_ms, &reply_payload,
                        &reply_wire_bytes);
  if (!rt.ok()) {
    conn.Close();
    return kFrameVersionMin;  // transport-level failure: not cached either
  }
  uint8_t peer_version = kFrameVersionMin;
  Result<std::vector<uint8_t>> reply = DecodeReplyPayload(reply_payload);
  if (reply.ok() && reply.ValueOrDie().size() == 1 &&
      reply.ValueOrDie()[0] >= kFrameVersionMin) {
    peer_version = reply.ValueOrDie()[0];
  }
  {
    std::lock_guard<std::mutex> lock(peers_mu_);
    auto it = peers_.find(peer_id);
    if (it != peers_.end()) {
      it->second.version = peer_version;
      if (it->second.idle.size() < options_.max_idle_per_peer &&
          !stopping_.load()) {
        it->second.idle.push_back(std::move(conn));
      }
    }
  }
  return std::min(options_.wire_version, peer_version);
}

bool TcpTransport::SupportsCodecs(const std::string& peer_id) {
  return NegotiatedVersion(peer_id) >= kFrameVersionCodec;
}

void TcpTransport::MeterCodec(const std::string& from, const std::string& to,
                              uint64_t raw_bytes, uint64_t wire_bytes) {
  const std::string link = from + "->" + to;
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_.bytes_raw += raw_bytes;
  stats_.bytes_wire += wire_bytes;
  link_stats_[link].bytes_raw += raw_bytes;
  link_stats_[link].bytes_wire += wire_bytes;
}

Result<std::vector<uint8_t>> TcpTransport::Send(Envelope envelope) {
  // Negotiation runs before framing: the request's frame version tells the
  // peer whether a codec-compressed reply is acceptable. The hello round
  // trip (first contact only) is unmetered and skips the FaultHook, so
  // stats and seeded fault sequences stay identical to the bus.
  const uint8_t wire_version = NegotiatedVersion(envelope.to);
  BufferWriter w;
  EncodeFrame(EncodeEnvelopePayload(envelope), &w, wire_version);
  const std::vector<uint8_t> frame = w.TakeBytes();

  // Fault injection simulates the wire on the sender, before any bytes
  // leave — identical placement (and therefore identical seeded decision
  // sequences) to the in-process bus.
  if (FaultHook* hook = hook_.load()) {
    Status fault = hook->BeforeDeliver(envelope);
    if (!fault.ok()) {
      MeterRequestOnly(envelope, frame.size());
      return fault;
    }
  }

  std::string host;
  int peer_port = 0;
  Socket conn;
  bool pooled = false;
  {
    std::lock_guard<std::mutex> lock(peers_mu_);
    auto it = peers_.find(envelope.to);
    if (it == peers_.end()) {
      return Status::NotFound("no peer '" + envelope.to +
                              "' registered on the transport");
    }
    host = it->second.host;
    peer_port = it->second.port;
    if (!it->second.idle.empty()) {
      conn = std::move(it->second.idle.back());
      it->second.idle.pop_back();
      pooled = true;
    }
  }

  const double timeout = envelope.deadline_ms > 0 ? envelope.deadline_ms
                                                  : options_.io_timeout_ms;
  Stopwatch rtt;
  if (!conn.valid()) {
    Result<Socket> dialed =
        Socket::ConnectTcp(host, peer_port, options_.connect_timeout_ms);
    if (!dialed.ok()) {
      MeterRequestOnly(envelope, frame.size());
      return dialed.status();
    }
    conn = std::move(dialed).MoveValueUnsafe();
  }

  std::vector<uint8_t> reply_payload;
  uint64_t reply_wire_bytes = 0;
  Status rt = RoundTrip(&conn, frame, timeout, &reply_payload,
                        &reply_wire_bytes);
  if (!rt.ok() && pooled) {
    // A pooled connection may have been closed by the peer while idle;
    // retry exactly once on a fresh dial before reporting failure.
    conn.Close();
    Result<Socket> dialed =
        Socket::ConnectTcp(host, peer_port, options_.connect_timeout_ms);
    if (dialed.ok()) {
      conn = std::move(dialed).MoveValueUnsafe();
      reply_payload.clear();
      rt = RoundTrip(&conn, frame, timeout, &reply_payload,
                     &reply_wire_bytes);
    }
  }
  if (!rt.ok()) {
    // The connection state is unknown (a late reply may still arrive);
    // never return it to the pool.
    conn.Close();
    MeterRequestOnly(envelope, frame.size());
    return rt;
  }

  const double wall = rtt.ElapsedMillis();
  {
    const std::string link = envelope.from + "->" + envelope.to;
    const std::string reverse = envelope.to + "->" + envelope.from;
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.messages += 2;
    stats_.bytes += frame.size() + reply_wire_bytes;
    stats_.round_trips += 1;
    stats_.wall_ms += wall;
    NetworkStats& fwd = link_stats_[link];
    fwd.messages += 1;
    fwd.bytes += frame.size();
    fwd.round_trips += 1;
    fwd.wall_ms += wall;
    NetworkStats& rev = link_stats_[reverse];
    rev.messages += 1;
    rev.bytes += reply_wire_bytes;
    link_hist_[link].Record(wall);
  }

  {
    std::lock_guard<std::mutex> lock(peers_mu_);
    auto it = peers_.find(envelope.to);
    if (it != peers_.end() &&
        it->second.idle.size() < options_.max_idle_per_peer &&
        !stopping_.load()) {
      it->second.idle.push_back(std::move(conn));
    }
  }

  return DecodeReplyPayload(reply_payload);
}

NetworkStats TcpTransport::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

std::map<std::string, NetworkStats> TcpTransport::link_stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return link_stats_;
}

std::map<std::string, LatencyHistogram> TcpTransport::link_histograms() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return link_hist_;
}

void TcpTransport::ResetStats() {
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_ = NetworkStats();
  link_stats_.clear();
  link_hist_.clear();
}

void TcpTransport::Shutdown() {
  if (stopping_.exchange(true)) return;
  server_.Shutdown();
  std::lock_guard<std::mutex> lock(peers_mu_);
  for (auto& [id, peer] : peers_) peer.idle.clear();
}

}  // namespace mip::net
