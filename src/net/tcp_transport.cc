#include "net/tcp_transport.h"

#include <utility>

#include "common/logging.h"
#include "common/stopwatch.h"

namespace mip::net {

TcpTransport::TcpTransport(TcpTransportOptions options)
    : options_(std::move(options)) {}

TcpTransport::~TcpTransport() { Shutdown(); }

Status TcpTransport::Listen(int port) {
  if (listener_.valid()) {
    return Status::AlreadyExists("transport is already listening on port " +
                                 std::to_string(port_));
  }
  MIP_ASSIGN_OR_RETURN(listener_,
                       Socket::ListenTcp(options_.bind_host, port));
  MIP_ASSIGN_OR_RETURN(port_, listener_.BoundPort());
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void TcpTransport::AddPeer(const std::string& node_id,
                           const std::string& host, int port) {
  std::lock_guard<std::mutex> lock(peers_mu_);
  Peer& peer = peers_[node_id];
  peer.host = host;
  peer.port = port;
  peer.idle.clear();  // stale connections to an old address are useless
}

bool TcpTransport::HasPeer(const std::string& node_id) const {
  std::lock_guard<std::mutex> lock(peers_mu_);
  return peers_.count(node_id) > 0;
}

Status TcpTransport::RegisterEndpoint(const std::string& node_id,
                                      Handler handler) {
  std::lock_guard<std::mutex> lock(handlers_mu_);
  if (handlers_.count(node_id) > 0) {
    return Status::AlreadyExists("endpoint '" + node_id +
                                 "' already registered");
  }
  handlers_.emplace(node_id, std::move(handler));
  return Status::OK();
}

void TcpTransport::AcceptLoop() {
  while (!stopping_.load()) {
    // Short accept timeout so shutdown is observed promptly.
    Result<Socket> conn = listener_.Accept(250.0);
    if (!conn.ok()) continue;  // poll tick or transient accept error
    std::lock_guard<std::mutex> lock(serve_mu_);
    if (stopping_.load()) return;
    // One thread per connection: the Master holds few connections per
    // worker (pool-bounded), so the thread count stays small. Threads are
    // joined in Shutdown().
    serve_threads_.emplace_back(
        [this, sock = std::move(conn).MoveValueUnsafe()]() mutable {
          ServeConnection(std::move(sock));
        });
  }
}

void TcpTransport::ServeConnection(Socket sock) {
  FrameDecoder decoder(options_.max_frame_payload);
  uint8_t chunk[16384];
  while (!stopping_.load()) {
    Result<size_t> got = sock.RecvSome(chunk, sizeof(chunk), 250.0);
    if (!got.ok()) {
      if (got.status().code() == StatusCode::kUnavailable) continue;  // idle
      return;  // peer went away
    }
    decoder.Feed(chunk, got.ValueOrDie());
    for (;;) {
      std::vector<uint8_t> payload;
      Result<bool> next = decoder.Next(&payload);
      if (!next.ok()) {
        // Corrupt stream: nothing downstream can be trusted; drop the
        // connection (the client maps this to a retryable failure).
        MIP_LOG(Warning) << "dropping connection: "
                         << next.status().ToString();
        return;
      }
      if (!next.ValueOrDie()) break;
      const uint8_t request_version = decoder.last_version();

      Status status;
      std::vector<uint8_t> reply;
      Result<Envelope> envelope = DecodeEnvelopePayload(payload);
      if (!envelope.ok()) {
        status = envelope.status();
      } else if (envelope.ValueOrDie().type == kHelloMsgType) {
        // Version handshake: answer with the version this node speaks,
        // without touching any endpoint handler.
        reply = {options_.wire_version};
      } else {
        Envelope& env = envelope.ValueOrDie();
        // The handler may compress its reply only when both sides speak a
        // codec-capable protocol version.
        env.codec_ok = request_version >= kFrameVersionCodec &&
                       options_.wire_version >= kFrameVersionCodec;
        Handler handler;
        {
          std::lock_guard<std::mutex> lock(handlers_mu_);
          auto it = handlers_.find(env.to);
          if (it != handlers_.end()) handler = it->second;
        }
        if (!handler) {
          status = Status::NotFound("no endpoint '" + env.to +
                                    "' on this transport");
        } else {
          Result<std::vector<uint8_t>> r = handler(env);
          if (r.ok()) {
            reply = std::move(r).MoveValueUnsafe();
          } else {
            status = r.status();
          }
        }
      }

      BufferWriter w;
      // Mirror the requester's version so a v1 peer's decoder accepts the
      // reply stream.
      EncodeFrame(EncodeReplyPayload(status, reply), &w,
                  std::min(request_version, options_.wire_version));
      const std::vector<uint8_t> out = w.TakeBytes();
      if (!sock.SendAll(out.data(), out.size(), options_.io_timeout_ms)
               .ok()) {
        return;
      }
    }
  }
}

Status TcpTransport::RoundTrip(Socket* sock,
                               const std::vector<uint8_t>& frame,
                               double timeout_ms,
                               std::vector<uint8_t>* reply_payload,
                               uint64_t* reply_wire_bytes) {
  Stopwatch sw;
  MIP_RETURN_NOT_OK(sock->SendAll(frame.data(), frame.size(), timeout_ms));
  FrameDecoder decoder(options_.max_frame_payload);
  uint8_t chunk[16384];
  for (;;) {
    double remaining = 0.0;
    if (timeout_ms > 0) {
      remaining = timeout_ms - sw.ElapsedMillis();
      if (remaining <= 0) {
        return Status::Unavailable("request deadline of " +
                                   std::to_string(timeout_ms) +
                                   " ms expired");
      }
    }
    MIP_ASSIGN_OR_RETURN(size_t got,
                         sock->RecvSome(chunk, sizeof(chunk), remaining));
    decoder.Feed(chunk, got);
    MIP_ASSIGN_OR_RETURN(bool done, decoder.Next(reply_payload));
    if (done) {
      if (decoder.buffered() != 0) {
        return Status::IOError("unexpected bytes after the reply frame");
      }
      *reply_wire_bytes = kFrameHeaderBytes + reply_payload->size();
      return Status::OK();
    }
  }
}

void TcpTransport::MeterRequestOnly(const Envelope& envelope,
                                    uint64_t wire_bytes) {
  const std::string link = envelope.from + "->" + envelope.to;
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_.messages += 1;
  stats_.bytes += wire_bytes;
  link_stats_[link].messages += 1;
  link_stats_[link].bytes += wire_bytes;
}

uint8_t TcpTransport::NegotiatedVersion(const std::string& peer_id) {
  if (options_.wire_version < kFrameVersionCodec) return kFrameVersionMin;
  std::string host;
  int peer_port = 0;
  {
    std::lock_guard<std::mutex> lock(peers_mu_);
    auto it = peers_.find(peer_id);
    if (it == peers_.end()) return kFrameVersionMin;
    if (it->second.version != 0) {
      return std::min(options_.wire_version, it->second.version);
    }
    host = it->second.host;
    peer_port = it->second.port;
  }

  // First contact: one v1-framed hello round trip asking the peer which
  // version it speaks. An old peer cannot answer the question directly, but
  // fails it with a clean handler error — which is the answer (version 1).
  Envelope hello;
  hello.to = peer_id;
  hello.type = kHelloMsgType;
  hello.payload = {options_.wire_version};
  BufferWriter w;
  EncodeFrame(EncodeEnvelopePayload(hello), &w, kFrameVersionMin);
  const std::vector<uint8_t> frame = w.TakeBytes();

  Socket conn;
  {
    std::lock_guard<std::mutex> lock(peers_mu_);
    auto it = peers_.find(peer_id);
    if (it != peers_.end() && !it->second.idle.empty()) {
      conn = std::move(it->second.idle.back());
      it->second.idle.pop_back();
    }
  }
  if (!conn.valid()) {
    Result<Socket> dialed =
        Socket::ConnectTcp(host, peer_port, options_.connect_timeout_ms);
    if (!dialed.ok()) return kFrameVersionMin;  // transient: retry next send
    conn = std::move(dialed).MoveValueUnsafe();
  }
  std::vector<uint8_t> reply_payload;
  uint64_t reply_wire_bytes = 0;
  Status rt = RoundTrip(&conn, frame, options_.io_timeout_ms, &reply_payload,
                        &reply_wire_bytes);
  if (!rt.ok()) {
    conn.Close();
    return kFrameVersionMin;  // transport-level failure: not cached either
  }
  uint8_t peer_version = kFrameVersionMin;
  Result<std::vector<uint8_t>> reply = DecodeReplyPayload(reply_payload);
  if (reply.ok() && reply.ValueOrDie().size() == 1 &&
      reply.ValueOrDie()[0] >= kFrameVersionMin) {
    peer_version = reply.ValueOrDie()[0];
  }
  {
    std::lock_guard<std::mutex> lock(peers_mu_);
    auto it = peers_.find(peer_id);
    if (it != peers_.end()) {
      it->second.version = peer_version;
      if (it->second.idle.size() < options_.max_idle_per_peer &&
          !stopping_.load()) {
        it->second.idle.push_back(std::move(conn));
      }
    }
  }
  return std::min(options_.wire_version, peer_version);
}

bool TcpTransport::SupportsCodecs(const std::string& peer_id) {
  return NegotiatedVersion(peer_id) >= kFrameVersionCodec;
}

void TcpTransport::MeterCodec(const std::string& from, const std::string& to,
                              uint64_t raw_bytes, uint64_t wire_bytes) {
  const std::string link = from + "->" + to;
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_.bytes_raw += raw_bytes;
  stats_.bytes_wire += wire_bytes;
  link_stats_[link].bytes_raw += raw_bytes;
  link_stats_[link].bytes_wire += wire_bytes;
}

Result<std::vector<uint8_t>> TcpTransport::Send(Envelope envelope) {
  // Negotiation runs before framing: the request's frame version tells the
  // peer whether a codec-compressed reply is acceptable. The hello round
  // trip (first contact only) is unmetered and skips the FaultHook, so
  // stats and seeded fault sequences stay identical to the bus.
  const uint8_t wire_version = NegotiatedVersion(envelope.to);
  BufferWriter w;
  EncodeFrame(EncodeEnvelopePayload(envelope), &w, wire_version);
  const std::vector<uint8_t> frame = w.TakeBytes();

  // Fault injection simulates the wire on the sender, before any bytes
  // leave — identical placement (and therefore identical seeded decision
  // sequences) to the in-process bus.
  if (FaultHook* hook = hook_.load()) {
    Status fault = hook->BeforeDeliver(envelope);
    if (!fault.ok()) {
      MeterRequestOnly(envelope, frame.size());
      return fault;
    }
  }

  std::string host;
  int peer_port = 0;
  Socket conn;
  bool pooled = false;
  {
    std::lock_guard<std::mutex> lock(peers_mu_);
    auto it = peers_.find(envelope.to);
    if (it == peers_.end()) {
      return Status::NotFound("no peer '" + envelope.to +
                              "' registered on the transport");
    }
    host = it->second.host;
    peer_port = it->second.port;
    if (!it->second.idle.empty()) {
      conn = std::move(it->second.idle.back());
      it->second.idle.pop_back();
      pooled = true;
    }
  }

  const double timeout = envelope.deadline_ms > 0 ? envelope.deadline_ms
                                                  : options_.io_timeout_ms;
  Stopwatch rtt;
  if (!conn.valid()) {
    Result<Socket> dialed =
        Socket::ConnectTcp(host, peer_port, options_.connect_timeout_ms);
    if (!dialed.ok()) {
      MeterRequestOnly(envelope, frame.size());
      return dialed.status();
    }
    conn = std::move(dialed).MoveValueUnsafe();
  }

  std::vector<uint8_t> reply_payload;
  uint64_t reply_wire_bytes = 0;
  Status rt = RoundTrip(&conn, frame, timeout, &reply_payload,
                        &reply_wire_bytes);
  if (!rt.ok() && pooled) {
    // A pooled connection may have been closed by the peer while idle;
    // retry exactly once on a fresh dial before reporting failure.
    conn.Close();
    Result<Socket> dialed =
        Socket::ConnectTcp(host, peer_port, options_.connect_timeout_ms);
    if (dialed.ok()) {
      conn = std::move(dialed).MoveValueUnsafe();
      reply_payload.clear();
      rt = RoundTrip(&conn, frame, timeout, &reply_payload,
                     &reply_wire_bytes);
    }
  }
  if (!rt.ok()) {
    // The connection state is unknown (a late reply may still arrive);
    // never return it to the pool.
    conn.Close();
    MeterRequestOnly(envelope, frame.size());
    return rt;
  }

  const double wall = rtt.ElapsedMillis();
  {
    const std::string link = envelope.from + "->" + envelope.to;
    const std::string reverse = envelope.to + "->" + envelope.from;
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.messages += 2;
    stats_.bytes += frame.size() + reply_wire_bytes;
    stats_.round_trips += 1;
    stats_.wall_ms += wall;
    NetworkStats& fwd = link_stats_[link];
    fwd.messages += 1;
    fwd.bytes += frame.size();
    fwd.round_trips += 1;
    fwd.wall_ms += wall;
    NetworkStats& rev = link_stats_[reverse];
    rev.messages += 1;
    rev.bytes += reply_wire_bytes;
  }

  {
    std::lock_guard<std::mutex> lock(peers_mu_);
    auto it = peers_.find(envelope.to);
    if (it != peers_.end() &&
        it->second.idle.size() < options_.max_idle_per_peer &&
        !stopping_.load()) {
      it->second.idle.push_back(std::move(conn));
    }
  }

  return DecodeReplyPayload(reply_payload);
}

NetworkStats TcpTransport::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

std::map<std::string, NetworkStats> TcpTransport::link_stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return link_stats_;
}

void TcpTransport::ResetStats() {
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_ = NetworkStats();
  link_stats_.clear();
}

void TcpTransport::Shutdown() {
  if (stopping_.exchange(true)) return;
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(serve_mu_);
    threads.swap(serve_threads_);
  }
  for (std::thread& t : threads) t.join();
  listener_.Close();
  std::lock_guard<std::mutex> lock(peers_mu_);
  for (auto& [id, peer] : peers_) peer.idle.clear();
}

}  // namespace mip::net
