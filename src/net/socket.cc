#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/stopwatch.h"

namespace mip::net {

namespace {

Status Errno(const std::string& op) {
  return Status::IOError(op + ": " + std::strerror(errno));
}

Status SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(O_NONBLOCK)");
  }
  return Status::OK();
}

Result<sockaddr_in> ResolveV4(const std::string& host, int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  const std::string numeric = host == "localhost" ? "127.0.0.1" : host;
  if (inet_pton(AF_INET, numeric.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("cannot parse IPv4 address '" + host + "'");
  }
  return addr;
}

/// Waits for `events` on fd. Returns OK when ready, Unavailable on deadline.
Status PollFor(int fd, short events, double timeout_ms, const char* what) {
  pollfd p{fd, events, 0};
  const int t = timeout_ms <= 0
                    ? -1
                    : static_cast<int>(timeout_ms < 1.0 ? 1 : timeout_ms);
  for (;;) {
    const int rc = poll(&p, 1, t);
    if (rc > 0) return Status::OK();
    if (rc == 0) {
      return Status::Unavailable(std::string(what) + " deadline expired");
    }
    if (errno != EINTR) return Errno("poll");
  }
}

/// Remaining budget given a started stopwatch; <=0 total means "no deadline".
double Remaining(double timeout_ms, const Stopwatch& sw) {
  if (timeout_ms <= 0) return 0.0;
  const double left = timeout_ms - sw.ElapsedMillis();
  // Clamp to a floor of 1ms so we always make one poll attempt; the
  // deadline check below catches true expiry.
  return left < 1.0 ? 1.0 : left;
}

bool Expired(double timeout_ms, const Stopwatch& sw) {
  return timeout_ms > 0 && sw.ElapsedMillis() >= timeout_ms;
}

}  // namespace

Result<Socket> Socket::ConnectTcp(const std::string& host, int port,
                                  double timeout_ms) {
  MIP_ASSIGN_OR_RETURN(sockaddr_in addr, ResolveV4(host, port));
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  Socket sock(fd);
  MIP_RETURN_NOT_OK(SetNonBlocking(fd));
  const int one = 1;
  (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  if (connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    if (errno != EINPROGRESS) {
      return Status::Unavailable("connect to " + host + ":" +
                                 std::to_string(port) + " failed: " +
                                 std::strerror(errno));
    }
    MIP_RETURN_NOT_OK(PollFor(fd, POLLOUT, timeout_ms, "connect"));
    int err = 0;
    socklen_t len = sizeof(err);
    if (getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0) {
      return Errno("getsockopt(SO_ERROR)");
    }
    if (err != 0) {
      return Status::Unavailable("connect to " + host + ":" +
                                 std::to_string(port) + " failed: " +
                                 std::strerror(err));
    }
  }
  return sock;
}

Result<Socket> Socket::ListenTcp(const std::string& host, int port,
                                 int backlog) {
  MIP_ASSIGN_OR_RETURN(sockaddr_in addr, ResolveV4(host, port));
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  Socket sock(fd);
  const int one = 1;
  (void)setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    return Errno("bind to port " + std::to_string(port));
  }
  if (listen(fd, backlog) < 0) return Errno("listen");
  MIP_RETURN_NOT_OK(SetNonBlocking(fd));
  return sock;
}

Result<Socket> Socket::Accept(double timeout_ms) {
  MIP_RETURN_NOT_OK(PollFor(fd_, POLLIN, timeout_ms, "accept"));
  return TryAccept();
}

Result<Socket> Socket::TryAccept() {
  int conn;
  do {
    conn = accept(fd_, nullptr, nullptr);
  } while (conn < 0 && errno == EINTR);
  if (conn < 0) {
    // EAGAIN: another accepter won the race / queue drained. ECONNABORTED
    // (and EPROTO on some kernels): the connection died in the backlog.
    // Both are per-connection events, not listener failures — report them
    // retryable so accept loops keep serving instead of exiting.
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::Unavailable("accept raced: no pending connection");
    }
    if (errno == ECONNABORTED || errno == EPROTO) {
      return Status::Unavailable("accepted connection aborted in the backlog");
    }
    return Errno("accept");
  }
  Socket sock(conn);
  MIP_RETURN_NOT_OK(SetNonBlocking(conn));
  const int one = 1;
  (void)setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return sock;
}

Result<size_t> Socket::TryRecv(uint8_t* out, size_t n) {
  for (;;) {
    const ssize_t rc = recv(fd_, out, n, 0);
    if (rc > 0) return static_cast<size_t>(rc);
    if (rc == 0) return Status::IOError("peer closed the connection");
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::Unavailable("no bytes available");
    }
    if (errno != EINTR) return Errno("recv");
  }
}

Result<size_t> Socket::TrySend(const uint8_t* data, size_t n) {
  for (;;) {
    const ssize_t rc = send(fd_, data, n, MSG_NOSIGNAL);
    if (rc >= 0) return static_cast<size_t>(rc);
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::Unavailable("kernel send buffer full");
    }
    if (errno != EINTR) return Errno("send");
  }
}

Result<int> Socket::BoundPort() const {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    return Errno("getsockname");
  }
  return static_cast<int>(ntohs(addr.sin_port));
}

Status Socket::SendAll(const uint8_t* data, size_t n, double timeout_ms) {
  Stopwatch sw;
  size_t sent = 0;
  while (sent < n) {
    if (Expired(timeout_ms, sw)) {
      return Status::Unavailable("send deadline expired");
    }
    const ssize_t rc = send(fd_, data + sent, n - sent, MSG_NOSIGNAL);
    if (rc > 0) {
      sent += static_cast<size_t>(rc);
      continue;
    }
    if (rc < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      MIP_RETURN_NOT_OK(
          PollFor(fd_, POLLOUT, Remaining(timeout_ms, sw), "send"));
      continue;
    }
    if (rc < 0 && errno == EINTR) continue;
    return Errno("send");
  }
  return Status::OK();
}

Result<size_t> Socket::RecvSome(uint8_t* out, size_t n, double timeout_ms) {
  Stopwatch sw;
  for (;;) {
    if (Expired(timeout_ms, sw)) {
      return Status::Unavailable("receive deadline expired");
    }
    const ssize_t rc = recv(fd_, out, n, 0);
    if (rc > 0) return static_cast<size_t>(rc);
    if (rc == 0) return Status::IOError("peer closed the connection");
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      MIP_RETURN_NOT_OK(
          PollFor(fd_, POLLIN, Remaining(timeout_ms, sw), "receive"));
      continue;
    }
    if (errno == EINTR) continue;
    return Errno("recv");
  }
}

Status Socket::RecvAll(uint8_t* out, size_t n, double timeout_ms) {
  Stopwatch sw;
  size_t got = 0;
  while (got < n) {
    if (Expired(timeout_ms, sw)) {
      return Status::Unavailable("receive deadline expired");
    }
    MIP_ASSIGN_OR_RETURN(
        size_t chunk,
        RecvSome(out + got, n - got, Remaining(timeout_ms, sw)));
    got += chunk;
  }
  return Status::OK();
}

void Socket::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

}  // namespace mip::net
