#include "net/transport.h"

namespace mip::net {

double SimulatedLinkSeconds(uint64_t messages, uint64_t bytes,
                            double latency_ms_per_message,
                            double bandwidth_mbps) {
  const double latency =
      static_cast<double>(messages) * latency_ms_per_message / 1e3;
  const double transfer =
      static_cast<double>(bytes) * 8.0 / (bandwidth_mbps * 1e6);
  return latency + transfer;
}

}  // namespace mip::net
