#ifndef MIP_NET_TRANSPORT_H_
#define MIP_NET_TRANSPORT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/result.h"

namespace mip::net {

/// \brief One request crossing a node boundary (Master <-> Worker <-> SMPC
/// front end). The same envelope rides the in-process MessageBus and the
/// TCP transport; only the delivery mechanism differs.
struct Envelope {
  std::string from;
  std::string to;
  std::string type;  ///< message kind (e.g. "local_run", "fetch_table")
  std::string job_id;
  std::vector<uint8_t> payload;
  /// Round-trip deadline for this request in milliseconds; 0 uses the
  /// transport's default. Local delivery metadata — never serialized.
  double deadline_ms = 0.0;
  /// Set by the receiving transport before the handler runs: true when the
  /// requester negotiated codec support, so the handler may answer with a
  /// compressed payload. Delivery metadata — never serialized.
  bool codec_ok = false;
};

/// \brief Shared link cost model: per-message latency plus bytes over
/// bandwidth. The single home of the formula previously duplicated between
/// the federation bus and the SMPC cluster report.
double SimulatedLinkSeconds(uint64_t messages, uint64_t bytes,
                            double latency_ms_per_message,
                            double bandwidth_mbps);

/// \brief Per-link traffic accounting. `messages`/`bytes` feed the simulated
/// latency model; `round_trips`/`wall_ms` are measured wall-clock figures
/// (real time spent waiting on the link), so experiments can report the
/// modelled and the observed cost side by side.
struct NetworkStats {
  uint64_t messages = 0;
  uint64_t bytes = 0;
  /// Completed request/reply pairs charged to this link.
  uint64_t round_trips = 0;
  /// Measured wall-clock across those round trips (TCP: socket round trip;
  /// in-process bus: handler round trip).
  double wall_ms = 0.0;
  /// Codec ledger, fed by Transport::MeterCodec for payloads that went
  /// through the columnar wire codecs: what the legacy fixed-width layout
  /// would have cost vs what actually crossed the link. bytes_wire <=
  /// bytes_raw always (the encoder falls back to raw when compression
  /// would not pay).
  uint64_t bytes_raw = 0;
  uint64_t bytes_wire = 0;

  /// latency-per-message + bytes/bandwidth (the simulated model).
  double SimulatedSeconds(double latency_ms_per_message,
                          double bandwidth_mbps) const {
    return SimulatedLinkSeconds(messages, bytes, latency_ms_per_message,
                                bandwidth_mbps);
  }
  /// raw/wire over the codec-metered traffic; 1.0 when nothing was metered.
  double CompressionRatio() const {
    return bytes_wire > 0
               ? static_cast<double>(bytes_raw) /
                     static_cast<double>(bytes_wire)
               : 1.0;
  }
  /// Measured mean round-trip time, 0 when nothing completed yet.
  double MeanRoundTripMs() const {
    return round_trips > 0 ? wall_ms / static_cast<double>(round_trips) : 0.0;
  }
};

/// \brief Fault-injection hook consulted by every transport before a request
/// leaves the sender. Implementations may sleep (simulated transit delay)
/// and return non-OK to drop the delivery. Keying decisions off the
/// envelope's from/to keeps seeded fault sequences identical across
/// transports.
class FaultHook {
 public:
  virtual ~FaultHook() = default;
  virtual Status BeforeDeliver(const Envelope& envelope) = 0;
};

/// \brief Abstract request/reply transport between federation nodes.
///
/// Two implementations exist: the in-process MessageBus (every node in one
/// address space — the test and simulation default) and TcpTransport
/// (length-prefixed binary frames over real sockets, one process per node).
/// Both meter every payload that crosses a node boundary, honor the same
/// FaultHook, and surface delivery failures as retryable Status codes
/// (Unavailable / IOError) so the federation fan-out policy treats them
/// uniformly.
class Transport {
 public:
  /// A handler consumes an envelope and produces a serialized reply payload.
  using Handler = std::function<Result<std::vector<uint8_t>>(const Envelope&)>;

  virtual ~Transport() = default;

  /// Registers a local endpoint (node id must be unique on this transport).
  virtual Status RegisterEndpoint(const std::string& node_id,
                                  Handler handler) = 0;

  /// Sends a request and returns the reply payload. Both directions are
  /// metered; a request lost to fault injection or the wire meters the
  /// request bytes only (they did leave the sender).
  virtual Result<std::vector<uint8_t>> Send(Envelope envelope) = 0;

  /// Totals across all links.
  virtual NetworkStats stats() const = 0;
  /// Per-link accounting keyed "from->to". The messages/bytes sums over
  /// links equal stats() — the invariant the concurrency tests check.
  virtual std::map<std::string, NetworkStats> link_stats() const = 0;
  virtual void ResetStats() = 0;

  /// Measured round-trip latency distributions per link (milliseconds),
  /// keyed like link_stats() by the requesting side "from->to". Feeds the
  /// gateway's /metrics p50/p99/p999 per link. Default: not tracked.
  virtual std::map<std::string, LatencyHistogram> link_histograms() const {
    return {};
  }

  /// Optional fault-injection hook consulted before every delivery. Not
  /// owned; pass nullptr to detach. Set while no traffic is in flight.
  virtual void set_fault_hook(FaultHook* hook) = 0;

  /// True when payloads sent to `peer_id` may use the columnar wire codecs.
  /// The TCP transport answers via a one-time version handshake with the
  /// peer (so old and new builds interoperate); the in-process bus answers
  /// from its own configuration. Default: no codec support.
  virtual bool SupportsCodecs(const std::string& peer_id) {
    (void)peer_id;
    return false;
  }

  /// Records one codec-encoded payload on the from->to link: `raw_bytes` is
  /// the fixed-width size the payload would have had, `wire_bytes` what
  /// actually crossed. Callers that decode a payload know both sides; the
  /// transport only keeps the ledger. Default: no accounting.
  virtual void MeterCodec(const std::string& from, const std::string& to,
                          uint64_t raw_bytes, uint64_t wire_bytes) {
    (void)from;
    (void)to;
    (void)raw_bytes;
    (void)wire_bytes;
  }
};

}  // namespace mip::net

#endif  // MIP_NET_TRANSPORT_H_
