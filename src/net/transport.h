#ifndef MIP_NET_TRANSPORT_H_
#define MIP_NET_TRANSPORT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"

namespace mip::net {

/// \brief One request crossing a node boundary (Master <-> Worker <-> SMPC
/// front end). The same envelope rides the in-process MessageBus and the
/// TCP transport; only the delivery mechanism differs.
struct Envelope {
  std::string from;
  std::string to;
  std::string type;  ///< message kind (e.g. "local_run", "fetch_table")
  std::string job_id;
  std::vector<uint8_t> payload;
  /// Round-trip deadline for this request in milliseconds; 0 uses the
  /// transport's default. Local delivery metadata — never serialized.
  double deadline_ms = 0.0;
};

/// \brief Shared link cost model: per-message latency plus bytes over
/// bandwidth. The single home of the formula previously duplicated between
/// the federation bus and the SMPC cluster report.
double SimulatedLinkSeconds(uint64_t messages, uint64_t bytes,
                            double latency_ms_per_message,
                            double bandwidth_mbps);

/// \brief Per-link traffic accounting. `messages`/`bytes` feed the simulated
/// latency model; `round_trips`/`wall_ms` are measured wall-clock figures
/// (real time spent waiting on the link), so experiments can report the
/// modelled and the observed cost side by side.
struct NetworkStats {
  uint64_t messages = 0;
  uint64_t bytes = 0;
  /// Completed request/reply pairs charged to this link.
  uint64_t round_trips = 0;
  /// Measured wall-clock across those round trips (TCP: socket round trip;
  /// in-process bus: handler round trip).
  double wall_ms = 0.0;

  /// latency-per-message + bytes/bandwidth (the simulated model).
  double SimulatedSeconds(double latency_ms_per_message,
                          double bandwidth_mbps) const {
    return SimulatedLinkSeconds(messages, bytes, latency_ms_per_message,
                                bandwidth_mbps);
  }
  /// Measured mean round-trip time, 0 when nothing completed yet.
  double MeanRoundTripMs() const {
    return round_trips > 0 ? wall_ms / static_cast<double>(round_trips) : 0.0;
  }
};

/// \brief Fault-injection hook consulted by every transport before a request
/// leaves the sender. Implementations may sleep (simulated transit delay)
/// and return non-OK to drop the delivery. Keying decisions off the
/// envelope's from/to keeps seeded fault sequences identical across
/// transports.
class FaultHook {
 public:
  virtual ~FaultHook() = default;
  virtual Status BeforeDeliver(const Envelope& envelope) = 0;
};

/// \brief Abstract request/reply transport between federation nodes.
///
/// Two implementations exist: the in-process MessageBus (every node in one
/// address space — the test and simulation default) and TcpTransport
/// (length-prefixed binary frames over real sockets, one process per node).
/// Both meter every payload that crosses a node boundary, honor the same
/// FaultHook, and surface delivery failures as retryable Status codes
/// (Unavailable / IOError) so the federation fan-out policy treats them
/// uniformly.
class Transport {
 public:
  /// A handler consumes an envelope and produces a serialized reply payload.
  using Handler = std::function<Result<std::vector<uint8_t>>(const Envelope&)>;

  virtual ~Transport() = default;

  /// Registers a local endpoint (node id must be unique on this transport).
  virtual Status RegisterEndpoint(const std::string& node_id,
                                  Handler handler) = 0;

  /// Sends a request and returns the reply payload. Both directions are
  /// metered; a request lost to fault injection or the wire meters the
  /// request bytes only (they did leave the sender).
  virtual Result<std::vector<uint8_t>> Send(Envelope envelope) = 0;

  /// Totals across all links.
  virtual NetworkStats stats() const = 0;
  /// Per-link accounting keyed "from->to". The messages/bytes sums over
  /// links equal stats() — the invariant the concurrency tests check.
  virtual std::map<std::string, NetworkStats> link_stats() const = 0;
  virtual void ResetStats() = 0;

  /// Optional fault-injection hook consulted before every delivery. Not
  /// owned; pass nullptr to detach. Set while no traffic is in flight.
  virtual void set_fault_hook(FaultHook* hook) = 0;
};

}  // namespace mip::net

#endif  // MIP_NET_TRANSPORT_H_
