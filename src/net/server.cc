#include "net/server.h"

#include <sys/epoll.h>

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace mip::net {

EpollServer::EpollServer(EpollServerOptions options)
    : options_(std::move(options)) {}

EpollServer::~EpollServer() { Shutdown(); }

Status EpollServer::RegisterEndpoint(const std::string& node_id,
                                     Handler handler) {
  std::lock_guard<std::mutex> lock(handlers_mu_);
  if (handlers_.count(node_id) > 0) {
    return Status::AlreadyExists("endpoint '" + node_id +
                                 "' already registered");
  }
  handlers_.emplace(node_id, std::move(handler));
  return Status::OK();
}

Status EpollServer::Listen(int port) {
  if (listening_) {
    return Status::AlreadyExists("server is already listening on port " +
                                 std::to_string(port_));
  }
  MIP_ASSIGN_OR_RETURN(listener_, Socket::ListenTcp(options_.bind_host, port,
                                                    options_.listen_backlog));
  MIP_ASSIGN_OR_RETURN(port_, listener_.BoundPort());
  if (options_.serve_threads > 0) {
    pool_ = std::make_unique<ThreadPool>(options_.serve_threads);
  }
  MIP_RETURN_NOT_OK(loop_.Init());
  MIP_RETURN_NOT_OK(
      loop_.Add(listener_.fd(), EPOLLIN, [this](uint32_t) { OnAcceptable(); }));
  // Housekeeping tick: the read deadline wants ~4 checks per budget; with no
  // deadline a coarse tick still re-arms accept after fd-exhaustion backoff.
  double tick = 100.0;
  if (options_.read_deadline_ms > 0) {
    tick = std::max(1.0, std::min(100.0, options_.read_deadline_ms / 4.0));
  }
  MIP_RETURN_NOT_OK(loop_.Start(tick, [this] { EvictStalled(); }));
  listening_ = true;
  return Status::OK();
}

void EpollServer::OnAcceptable() {
  for (;;) {
    Result<Socket> accepted = listener_.TryAccept();
    if (!accepted.ok()) {
      if (accepted.status().code() == StatusCode::kUnavailable) {
        return;  // backlog drained (or a queued connection aborted)
      }
      // Listener-level failure (EMFILE/ENFILE/ENOBUFS). Level-triggered
      // epoll would re-report the pending connection immediately and spin,
      // so mute the listener and let the housekeeping tick re-arm it — a
      // bounded backoff that keeps serving established connections.
      MIP_LOG(Warning) << "accept failed, backing off: "
                       << accepted.status().ToString();
      (void)loop_.Modify(listener_.fd(), 0);
      accept_paused_ = true;
      return;
    }
    Socket sock = std::move(accepted).MoveValueUnsafe();
    if (conns_.size() >= options_.max_connections) {
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_.rejected_overload += 1;
      continue;  // closed on scope exit; keep draining the backlog
    }
    const int fd = sock.fd();
    auto conn =
        std::make_shared<Conn>(std::move(sock), options_.max_frame_payload);
    conns_[fd] = conn;
    // If this fd number was closed and reused within the current epoll
    // batch, one stale readiness event may dispatch against the new
    // connection — harmless, the non-blocking read just reports EAGAIN.
    Status added = loop_.Add(
        fd, EPOLLIN, [this, fd](uint32_t events) { OnConnEvent(fd, events); });
    if (!added.ok()) {
      conns_.erase(fd);
      continue;
    }
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.accepted += 1;
    stats_.active = conns_.size();
  }
}

void EpollServer::OnConnEvent(int fd, uint32_t events) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;  // closed earlier in this batch
  std::shared_ptr<Conn> conn = it->second;
  if (events & EPOLLIN) ReadConn(conn);
  if (conn->dead) return;
  if (events & EPOLLOUT) FlushConn(conn);
  if (conn->dead) return;
  if ((events & (EPOLLHUP | EPOLLERR)) && !(events & EPOLLIN)) {
    CloseConn(conn);
  }
}

void EpollServer::ReadConn(const std::shared_ptr<Conn>& conn) {
  uint8_t chunk[16384];
  // Bounded reads per readiness event so one fast sender cannot starve the
  // other connections; level-triggered epoll re-reports leftover bytes.
  for (int i = 0; i < 4; ++i) {
    Result<size_t> got = conn->sock.TryRecv(chunk, sizeof(chunk));
    if (!got.ok()) {
      if (got.status().code() != StatusCode::kUnavailable) {
        CloseConn(conn);  // EOF or a socket error
      }
      break;
    }
    conn->decoder.Feed(chunk, got.ValueOrDie());
    if (got.ValueOrDie() < sizeof(chunk)) break;
  }
  if (!conn->dead) Pump(conn);
}

void EpollServer::Pump(const std::shared_ptr<Conn>& conn) {
  for (;;) {
    std::vector<uint8_t> payload;
    Result<bool> next = conn->decoder.Next(&payload);
    if (!next.ok()) {
      // Corrupt stream (bad magic/version/length/CRC): nothing after it can
      // be trusted; drop only this connection.
      MIP_LOG(Warning) << "dropping connection: " << next.status().ToString();
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        stats_.dropped_corrupt += 1;
      }
      CloseConn(conn);
      return;
    }
    if (!next.ValueOrDie()) break;
    conn->inbox.emplace_back(std::move(payload), conn->decoder.last_version());
  }
  if (conn->inbox.size() > options_.max_pipeline) {
    MIP_LOG(Warning) << "dropping connection: pipeline depth "
                     << conn->inbox.size() << " exceeds cap "
                     << options_.max_pipeline;
    CloseConn(conn);
    return;
  }
  // The stall clock runs only while a partial frame sits in the decoder and
  // starts when the partial appears — a byte-at-a-time trickle cannot keep
  // resetting it, which is exactly the slow-loris case the deadline evicts.
  if (conn->decoder.buffered() > 0) {
    if (!conn->stalled) {
      conn->stalled = true;
      conn->stall.Reset();
    }
  } else {
    conn->stalled = false;
  }
  DispatchNext(conn);
}

void EpollServer::DispatchNext(const std::shared_ptr<Conn>& conn) {
  if (conn->busy || conn->dead || conn->inbox.empty()) return;
  std::vector<uint8_t> payload = std::move(conn->inbox.front().first);
  const uint8_t version = conn->inbox.front().second;
  conn->inbox.pop_front();
  conn->busy = true;
  // Only a weak reference crosses the handler boundary: when the client
  // disconnects mid-request the connection is torn down immediately and the
  // late reply is dropped here instead of being written to a reused fd.
  std::weak_ptr<Conn> weak = conn;
  auto work = [this, weak, payload = std::move(payload), version]() {
    std::vector<uint8_t> frame = HandleFrame(payload, version);
    loop_.RunInLoop([this, weak, frame = std::move(frame)]() mutable {
      std::shared_ptr<Conn> live = weak.lock();
      if (!live || live->dead) return;
      live->busy = false;
      FinishFrame(live, std::move(frame));
    });
  };
  if (pool_) {
    pool_->Submit(std::move(work));
  } else {
    work();  // inline mode: runs on the loop thread
  }
}

std::vector<uint8_t> EpollServer::HandleFrame(
    const std::vector<uint8_t>& payload, uint8_t request_version) {
  Status status;
  std::vector<uint8_t> reply;
  Result<Envelope> envelope = DecodeEnvelopePayload(payload);
  if (!envelope.ok()) {
    status = envelope.status();
  } else if (envelope.ValueOrDie().type == kHelloMsgType) {
    // Version handshake: answer with the version this node speaks, without
    // touching any endpoint handler.
    reply = {options_.wire_version};
  } else {
    Envelope& env = envelope.ValueOrDie();
    // The handler may compress its reply only when both sides speak a
    // codec-capable protocol version.
    env.codec_ok = request_version >= kFrameVersionCodec &&
                   options_.wire_version >= kFrameVersionCodec;
    Handler handler;
    {
      std::lock_guard<std::mutex> lock(handlers_mu_);
      auto it = handlers_.find(env.to);
      if (it != handlers_.end()) handler = it->second;
    }
    if (!handler) {
      status = Status::NotFound("no endpoint '" + env.to +
                                "' on this transport");
    } else {
      Result<std::vector<uint8_t>> r = handler(env);
      if (r.ok()) {
        reply = std::move(r).MoveValueUnsafe();
      } else {
        status = r.status();
      }
    }
  }
  BufferWriter w;
  // Mirror the requester's version so a v1 peer's decoder accepts the reply.
  EncodeFrame(EncodeReplyPayload(status, reply), &w,
              std::min(request_version, options_.wire_version));
  return w.TakeBytes();
}

void EpollServer::FinishFrame(const std::shared_ptr<Conn>& conn,
                              std::vector<uint8_t> reply_frame) {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.frames_served += 1;
  }
  conn->outbox.insert(conn->outbox.end(), reply_frame.begin(),
                      reply_frame.end());
  FlushConn(conn);
  if (!conn->dead) DispatchNext(conn);  // next pipelined request, in order
}

void EpollServer::FlushConn(const std::shared_ptr<Conn>& conn) {
  while (conn->out_pos < conn->outbox.size()) {
    Result<size_t> sent = conn->sock.TrySend(
        conn->outbox.data() + conn->out_pos,
        conn->outbox.size() - conn->out_pos);
    if (!sent.ok()) {
      if (sent.status().code() == StatusCode::kUnavailable) {
        // Kernel send buffer full: finish when EPOLLOUT fires.
        if (!conn->want_write) {
          conn->want_write = true;
          (void)loop_.Modify(conn->sock.fd(), EPOLLIN | EPOLLOUT);
        }
        return;
      }
      CloseConn(conn);
      return;
    }
    conn->out_pos += sent.ValueOrDie();
  }
  conn->outbox.clear();
  conn->out_pos = 0;
  if (conn->want_write) {
    conn->want_write = false;
    (void)loop_.Modify(conn->sock.fd(), EPOLLIN);
  }
}

void EpollServer::CloseConn(const std::shared_ptr<Conn>& conn) {
  if (conn->dead) return;
  conn->dead = true;
  loop_.Remove(conn->sock.fd());
  conns_.erase(conn->sock.fd());
  conn->sock.Close();
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_.active = conns_.size();
}

void EpollServer::EvictStalled() {
  if (accept_paused_) {
    accept_paused_ = false;
    (void)loop_.Modify(listener_.fd(), EPOLLIN);
  }
  if (options_.read_deadline_ms <= 0) return;
  std::vector<std::shared_ptr<Conn>> stalled;
  for (const auto& [fd, conn] : conns_) {
    if (conn->stalled &&
        conn->stall.ElapsedMillis() >= options_.read_deadline_ms) {
      stalled.push_back(conn);
    }
  }
  for (const auto& conn : stalled) {
    MIP_LOG(Warning) << "evicting stalled connection: partial frame older "
                     << "than " << options_.read_deadline_ms << " ms";
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_.evicted_deadline += 1;
    }
    CloseConn(conn);
  }
}

void EpollServer::Shutdown() {
  if (shutdown_.exchange(true)) return;
  loop_.Stop();
  // Drains in-flight handlers; their completions are dropped by RunInLoop
  // (the loop is already stopped), never written to dead sockets.
  pool_.reset();
  conns_.clear();
  listener_.Close();
}

EpollServer::Stats EpollServer::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

}  // namespace mip::net
