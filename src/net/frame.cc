#include "net/frame.h"

#include <cstring>

namespace mip::net {

namespace {

Status CorruptStream(const std::string& why) {
  return Status::ParseError("corrupt frame stream: " + why);
}

/// Highest valid StatusCode value on the wire (keep in sync with status.h).
constexpr uint8_t kMaxStatusCode =
    static_cast<uint8_t>(StatusCode::kResourceExhausted);

}  // namespace

void EncodeFrame(const uint8_t* payload, size_t n, BufferWriter* out,
                 uint8_t version) {
  out->WriteU32(kFrameMagic);
  out->WriteU8(version);
  out->WriteU32(static_cast<uint32_t>(n));
  out->WriteU32(Crc32(payload, n));
  out->AppendRaw(payload, n);
}

void FrameDecoder::Feed(const uint8_t* data, size_t n) {
  // Compact once the consumed prefix dominates, so long-lived connections
  // don't grow the buffer without bound.
  if (pos_ > 0 && pos_ >= buf_.size() / 2) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<long>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data, data + n);
}

Result<bool> FrameDecoder::Next(std::vector<uint8_t>* payload) {
  if (buffered() < kFrameHeaderBytes) return false;
  const uint8_t* h = buf_.data() + pos_;
  uint32_t magic = 0;
  std::memcpy(&magic, h, sizeof(magic));
  if (magic != kFrameMagic) return CorruptStream("bad magic");
  const uint8_t version = h[4];
  if (version < kFrameVersionMin || version > kFrameVersion) {
    return CorruptStream("unsupported version " + std::to_string(version));
  }
  uint32_t length = 0;
  std::memcpy(&length, h + 5, sizeof(length));
  if (length > max_payload_) {
    return CorruptStream("frame payload of " + std::to_string(length) +
                         " bytes exceeds the " +
                         std::to_string(max_payload_) + " byte limit");
  }
  uint32_t crc = 0;
  std::memcpy(&crc, h + 9, sizeof(crc));
  if (buffered() < kFrameHeaderBytes + length) return false;
  const uint8_t* body = h + kFrameHeaderBytes;
  if (Crc32(body, length) != crc) return CorruptStream("CRC mismatch");
  payload->assign(body, body + length);
  pos_ += kFrameHeaderBytes + length;
  last_version_ = version;
  return true;
}

std::vector<uint8_t> EncodeEnvelopePayload(const Envelope& envelope) {
  BufferWriter w;
  w.WriteString(envelope.from);
  w.WriteString(envelope.to);
  w.WriteString(envelope.type);
  w.WriteString(envelope.job_id);
  w.WriteBytes(envelope.payload);
  return w.TakeBytes();
}

Result<Envelope> DecodeEnvelopePayload(const std::vector<uint8_t>& payload) {
  BufferReader r(payload);
  Envelope e;
  MIP_ASSIGN_OR_RETURN(e.from, r.ReadString());
  MIP_ASSIGN_OR_RETURN(e.to, r.ReadString());
  MIP_ASSIGN_OR_RETURN(e.type, r.ReadString());
  MIP_ASSIGN_OR_RETURN(e.job_id, r.ReadString());
  MIP_ASSIGN_OR_RETURN(e.payload, r.ReadBytes());
  if (!r.AtEnd()) {
    return Status::ParseError("trailing bytes after envelope");
  }
  return e;
}

std::vector<uint8_t> EncodeReplyPayload(const Status& status,
                                        const std::vector<uint8_t>& reply) {
  BufferWriter w;
  w.WriteU8(static_cast<uint8_t>(status.code()));
  w.WriteString(status.message());
  w.WriteBytes(status.ok() ? reply : std::vector<uint8_t>{});
  return w.TakeBytes();
}

Result<std::vector<uint8_t>> DecodeReplyPayload(
    const std::vector<uint8_t>& payload) {
  BufferReader r(payload);
  MIP_ASSIGN_OR_RETURN(uint8_t code, r.ReadU8());
  if (code > kMaxStatusCode) {
    return Status::ParseError("reply carries unknown status code " +
                              std::to_string(code));
  }
  MIP_ASSIGN_OR_RETURN(std::string message, r.ReadString());
  MIP_ASSIGN_OR_RETURN(std::vector<uint8_t> reply, r.ReadBytes());
  if (!r.AtEnd()) {
    return Status::ParseError("trailing bytes after reply");
  }
  if (code != 0) {
    return Status(static_cast<StatusCode>(code), std::move(message));
  }
  return reply;
}

}  // namespace mip::net
