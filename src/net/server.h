#ifndef MIP_NET_SERVER_H_
#define MIP_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "common/stopwatch.h"
#include "net/event_loop.h"
#include "net/frame.h"
#include "net/socket.h"
#include "net/transport.h"

namespace mip::net {

struct EpollServerOptions {
  std::string bind_host = "127.0.0.1";
  /// Protocol version this server speaks (the hello handshake answer; also
  /// caps the version replies are framed with).
  uint8_t wire_version = kFrameVersion;
  size_t max_frame_payload = kDefaultMaxFramePayload;
  /// Handler threads. Frames decoded on the loop thread are dispatched to
  /// this pool so a slow handler (remote SQL, big aggregation) never stalls
  /// other connections; 0 runs handlers inline on the loop thread.
  int serve_threads = 4;
  /// A connection that has buffered part of a frame but not completed it
  /// within this budget is evicted (slow-loris defense and stuck-client
  /// reaper). 0 disables. Healthy idle connections — no partial frame —
  /// are never evicted.
  double read_deadline_ms = 0.0;
  /// Accepted-connection ceiling; beyond it new connections are closed
  /// immediately (counted in Stats::rejected_overload).
  size_t max_connections = 4096;
  /// Complete frames queued behind an in-flight handler, per connection
  /// (requests pipeline; replies stay in request order). Beyond this the
  /// connection is dropped as abusive.
  size_t max_pipeline = 128;
  int listen_backlog = 256;
};

/// \brief Epoll event-loop frame server: multiplexes many client
/// connections on one loop thread with per-connection incremental
/// FrameDecoder state, replacing the thread-per-connection serve path.
///
/// Responsibilities: accept (with transient-error retry/backoff), framed
/// request decode, the __mip_hello version handshake, handler dispatch on a
/// bounded pool with in-order replies per connection, buffered non-blocking
/// writes, and deadline eviction of stalled readers. Corrupt streams (bad
/// magic/version/CRC, oversized length) drop only the offending connection.
///
/// Endpoint semantics match the transports: a handler consumes an Envelope
/// and returns reply bytes; Envelope::codec_ok is set from the negotiated
/// versions before the handler runs.
class EpollServer {
 public:
  using Handler = Transport::Handler;

  struct Stats {
    uint64_t accepted = 0;
    uint64_t active = 0;            ///< currently open connections
    uint64_t frames_served = 0;     ///< requests answered (incl. errors)
    uint64_t evicted_deadline = 0;  ///< closed by the read deadline
    uint64_t dropped_corrupt = 0;   ///< closed on a corrupt/oversized frame
    uint64_t rejected_overload = 0; ///< closed at accept (connection cap)
  };

  explicit EpollServer(EpollServerOptions options = EpollServerOptions());
  ~EpollServer();

  EpollServer(const EpollServer&) = delete;
  EpollServer& operator=(const EpollServer&) = delete;

  /// Registers an endpoint by node id (routing key of Envelope::to).
  /// Allowed before or after Listen.
  Status RegisterEndpoint(const std::string& node_id, Handler handler);

  /// Binds, listens (port 0 = ephemeral) and starts the loop thread.
  Status Listen(int port);
  int port() const { return port_; }

  /// Stops the loop, drains in-flight handlers, closes every connection.
  /// Idempotent; called by the destructor.
  void Shutdown();

  Stats stats() const;

 private:
  struct Conn {
    Socket sock;
    FrameDecoder decoder;
    /// Complete frames (payload, frame version) awaiting dispatch.
    std::deque<std::pair<std::vector<uint8_t>, uint8_t>> inbox;
    bool busy = false;      ///< a handler for this connection is in flight
    bool dead = false;      ///< closed; late handler completions drop out
    bool want_write = false;
    std::vector<uint8_t> outbox;
    size_t out_pos = 0;
    /// Running while a partial frame is buffered (read-deadline basis).
    Stopwatch stall;
    bool stalled = false;

    explicit Conn(Socket s, size_t max_payload)
        : sock(std::move(s)), decoder(max_payload) {}
  };

  void OnAcceptable();
  void OnConnEvent(int fd, uint32_t events);
  void ReadConn(const std::shared_ptr<Conn>& conn);
  void Pump(const std::shared_ptr<Conn>& conn);
  void DispatchNext(const std::shared_ptr<Conn>& conn);
  void FinishFrame(const std::shared_ptr<Conn>& conn,
                   std::vector<uint8_t> reply_frame);
  void FlushConn(const std::shared_ptr<Conn>& conn);
  void CloseConn(const std::shared_ptr<Conn>& conn);
  void EvictStalled();
  /// Full request processing for one frame: envelope decode, hello
  /// handshake, handler dispatch, reply framing. Runs on a pool thread (or
  /// inline) — touches no connection state.
  std::vector<uint8_t> HandleFrame(const std::vector<uint8_t>& payload,
                                   uint8_t request_version);

  EpollServerOptions options_;
  EventLoop loop_;
  Socket listener_;
  int port_ = 0;
  bool listening_ = false;
  std::atomic<bool> shutdown_{false};
  std::unique_ptr<ThreadPool> pool_;

  /// Loop-thread state: open connections by fd, and whether the listener is
  /// muted after an fd-exhaustion accept failure (the tick re-arms it).
  std::map<int, std::shared_ptr<Conn>> conns_;
  bool accept_paused_ = false;

  std::mutex handlers_mu_;
  std::map<std::string, Handler> handlers_;

  mutable std::mutex stats_mu_;
  Stats stats_;
};

}  // namespace mip::net

#endif  // MIP_NET_SERVER_H_
