#ifndef MIP_NET_SOCKET_H_
#define MIP_NET_SOCKET_H_

#include <cstdint>
#include <string>

#include "common/result.h"

namespace mip::net {

/// \brief Move-only RAII wrapper over a POSIX TCP socket with deadline-aware
/// I/O (non-blocking fd + poll), the primitive under TcpTransport.
///
/// Error mapping feeds the federation retry machinery: deadline expiry
/// returns Unavailable (the peer may still be alive — retryable), while
/// connection resets / EOF / refused connections return IOError or
/// Unavailable depending on whether the peer was ever reached. All timeouts
/// are milliseconds; <= 0 blocks indefinitely.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }

  /// Dials host:port (numeric IPv4 or "localhost") within the deadline.
  /// The returned socket is connected, non-blocking, with TCP_NODELAY set.
  static Result<Socket> ConnectTcp(const std::string& host, int port,
                                   double timeout_ms);

  /// Binds and listens on host:port (port 0 picks an ephemeral port; read it
  /// back with BoundPort).
  static Result<Socket> ListenTcp(const std::string& host, int port,
                                  int backlog = 64);

  /// Accepts one connection, waiting at most `timeout_ms`. Unavailable on
  /// timeout (callers poll in a loop so listeners can shut down cleanly).
  /// Transient per-connection failures (EINTR, a connection aborted while
  /// queued in the backlog) are also Unavailable — only listener-level
  /// failures (fd exhaustion and the like) surface as IOError.
  Result<Socket> Accept(double timeout_ms);

  /// Non-blocking accept for event loops: Unavailable when the backlog is
  /// drained (or a queued connection aborted), IOError on listener-level
  /// failures. Never waits.
  Result<Socket> TryAccept();

  /// Port this socket is bound to (listener side).
  Result<int> BoundPort() const;

  /// Writes exactly `n` bytes within the deadline.
  Status SendAll(const uint8_t* data, size_t n, double timeout_ms);

  /// Reads 1..n bytes within the deadline. IOError("peer closed") on EOF.
  Result<size_t> RecvSome(uint8_t* out, size_t n, double timeout_ms);

  /// Reads exactly `n` bytes within the deadline.
  Status RecvAll(uint8_t* out, size_t n, double timeout_ms);

  /// Non-blocking read for event loops: 1..n bytes, Unavailable when the
  /// socket has nothing buffered, IOError("peer closed ...") on EOF.
  Result<size_t> TryRecv(uint8_t* out, size_t n);

  /// Non-blocking write for event loops: returns bytes written (possibly
  /// short), Unavailable when the kernel send buffer is full.
  Result<size_t> TrySend(const uint8_t* data, size_t n);

  void Close();
  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

 private:
  int fd_ = -1;
};

}  // namespace mip::net

#endif  // MIP_NET_SOCKET_H_
