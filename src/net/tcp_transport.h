#ifndef MIP_NET_TCP_TRANSPORT_H_
#define MIP_NET_TCP_TRANSPORT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "net/frame.h"
#include "net/server.h"
#include "net/socket.h"
#include "net/transport.h"

namespace mip::net {

struct TcpTransportOptions {
  /// Interface the server side binds to. Loopback by default: the
  /// reproduction federates processes, not machines.
  std::string bind_host = "127.0.0.1";
  /// Dial deadline for new peer connections.
  double connect_timeout_ms = 2000.0;
  /// Default round-trip deadline per request (Envelope::deadline_ms
  /// overrides it per call; the federation fan-out sets it from
  /// FanoutPolicy::worker_timeout_ms).
  double io_timeout_ms = 10000.0;
  /// Idle connections kept per peer; extras are closed on check-in.
  size_t max_idle_per_peer = 4;
  /// Frame payload ceiling for both directions.
  size_t max_frame_payload = kDefaultMaxFramePayload;
  /// Protocol version this node speaks (kFrameVersion by default). Set to 1
  /// to emulate a pre-codec build: no handshake is attempted, requests are
  /// framed v1 and replies are never codec-compressed — the interop knob
  /// the mixed old/new negotiation test exercises.
  uint8_t wire_version = kFrameVersion;
  /// Handler threads of the server side (see EpollServerOptions); requests
  /// from different connections execute concurrently up to this bound.
  int serve_threads = 4;
  /// Server-side eviction budget for connections stuck mid-frame
  /// (EpollServerOptions::read_deadline_ms); 0 disables.
  double read_deadline_ms = 0.0;
  /// Server-side connection ceiling (EpollServerOptions::max_connections).
  size_t max_connections = 4096;
};

/// \brief Real socket implementation of Transport: length-prefixed binary
/// frames (magic + version + CRC32) over TCP, per-peer connection pooling,
/// and connect/send/receive deadlines.
///
/// One TcpTransport can act as client (AddPeer + Send), server (Listen +
/// RegisterEndpoint) or both — a worker daemon listens for the Master while
/// the Master only dials. The server side is an EpollServer: one event-loop
/// thread multiplexes every connection and a bounded pool runs the handlers,
/// so connection count no longer dictates thread count. Requests are
/// synchronous: a pooled connection is checked out for the full round trip,
/// so concurrent Send()s to one peer use distinct connections (up to pool +
/// dial capacity).
///
/// Failure mapping mirrors the in-process bus: deadline expiry and refused
/// connections surface as Unavailable, mid-stream resets as IOError — both
/// retryable by FanoutPolicy — while remote handler errors come back with
/// their original status code and are not retried. The FaultHook runs on
/// the sender before any bytes leave, exactly like the bus, so seeded fault
/// sequences are identical on both transports.
class TcpTransport : public Transport {
 public:
  explicit TcpTransport(TcpTransportOptions options = TcpTransportOptions());
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  /// Starts the server side on `port` (0 picks an ephemeral port): the
  /// epoll loop thread plus the handler pool. Required only for transports
  /// that host endpoints.
  Status Listen(int port);
  /// Bound port after a successful Listen().
  int port() const { return server_.port(); }
  /// Server-side connection/frame counters (accepted, evicted, ...).
  EpollServer::Stats server_stats() const { return server_.stats(); }

  /// Declares where a remote node lives. Send() routes by Envelope::to.
  void AddPeer(const std::string& node_id, const std::string& host, int port);
  bool HasPeer(const std::string& node_id) const;

  /// Stops the server loop, drains in-flight handlers, closes every socket.
  /// Idempotent; called by the destructor.
  void Shutdown();

  // Transport:
  Status RegisterEndpoint(const std::string& node_id,
                          Handler handler) override;
  Result<std::vector<uint8_t>> Send(Envelope envelope) override;
  NetworkStats stats() const override;
  std::map<std::string, NetworkStats> link_stats() const override;
  std::map<std::string, LatencyHistogram> link_histograms() const override;
  void ResetStats() override;
  void set_fault_hook(FaultHook* hook) override { hook_ = hook; }
  /// True once the peer has answered the version handshake with a
  /// codec-capable version (triggers the handshake on first call).
  bool SupportsCodecs(const std::string& peer_id) override;
  void MeterCodec(const std::string& from, const std::string& to,
                  uint64_t raw_bytes, uint64_t wire_bytes) override;

 private:
  struct Peer {
    std::string host;
    int port = 0;
    std::vector<Socket> idle;
    /// Protocol version the peer answered in the hello handshake;
    /// 0 = not negotiated yet.
    uint8_t version = 0;
  };

  /// One request/reply over one connection. Fills *reply_wire_bytes with
  /// the framed reply size on success.
  Status RoundTrip(Socket* sock, const std::vector<uint8_t>& frame,
                   double timeout_ms, std::vector<uint8_t>* reply_payload,
                   uint64_t* reply_wire_bytes);
  void MeterRequestOnly(const Envelope& envelope, uint64_t wire_bytes);
  /// min(our version, the peer's). Runs the (unmetered, fault-hook-free)
  /// hello round trip on first use and caches the answer per peer; a
  /// transport-level failure is not cached, so the next send retries the
  /// handshake. Unknown peers and transient failures answer 1.
  uint8_t NegotiatedVersion(const std::string& peer_id);

  TcpTransportOptions options_;
  std::atomic<bool> stopping_{false};

  /// The server side: endpoint registration and Listen() delegate here.
  EpollServer server_;

  mutable std::mutex peers_mu_;
  std::map<std::string, Peer> peers_;

  mutable std::mutex stats_mu_;
  NetworkStats stats_;
  std::map<std::string, NetworkStats> link_stats_;
  /// Measured round-trip wall time per "from->to" link, milliseconds.
  std::map<std::string, LatencyHistogram> link_hist_;

  std::atomic<FaultHook*> hook_{nullptr};
};

}  // namespace mip::net

#endif  // MIP_NET_TCP_TRANSPORT_H_
