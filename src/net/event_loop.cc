#include "net/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/logging.h"
#include "common/stopwatch.h"

namespace mip::net {

namespace {
Status Errno(const char* op) {
  return Status::IOError(std::string(op) + ": " + std::strerror(errno));
}
}  // namespace

EventLoop::~EventLoop() {
  Stop();
  if (wake_fd_ >= 0) close(wake_fd_);
  if (epoll_fd_ >= 0) close(epoll_fd_);
}

Status EventLoop::Init() {
  if (epoll_fd_ >= 0) return Status::AlreadyExists("event loop initialized");
  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) return Errno("epoll_create1");
  wake_fd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) return Errno("eventfd");
  return Add(wake_fd_, EPOLLIN, [this](uint32_t) { DrainWake(); });
}

Status EventLoop::Add(int fd, uint32_t events, IoCallback callback) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
    return Errno("epoll_ctl(ADD)");
  }
  callbacks_[fd] = std::make_shared<IoCallback>(std::move(callback));
  return Status::OK();
}

Status EventLoop::Modify(int fd, uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) < 0) {
    return Errno("epoll_ctl(MOD)");
  }
  return Status::OK();
}

void EventLoop::Remove(int fd) {
  // DEL may fail if the fd was already closed; the callback map is what
  // actually prevents further dispatch.
  (void)epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  callbacks_.erase(fd);
}

void EventLoop::RunInLoop(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    if (stopping_.load()) return;  // late completions after Stop: drop
    pending_.push_back(std::move(fn));
  }
  const uint64_t one = 1;
  // A full eventfd counter (EAGAIN) still wakes the loop; ignore errors.
  [[maybe_unused]] ssize_t rc = write(wake_fd_, &one, sizeof(one));
}

void EventLoop::DrainWake() {
  uint64_t n = 0;
  while (read(wake_fd_, &n, sizeof(n)) > 0) {
  }
}

Status EventLoop::Start(double tick_ms, std::function<void()> on_tick) {
  if (epoll_fd_ < 0) MIP_RETURN_NOT_OK(Init());
  if (thread_.joinable()) return Status::AlreadyExists("loop running");
  tick_ms_ = tick_ms;
  on_tick_ = std::move(on_tick);
  thread_ = std::thread([this] { Run(); });
  loop_thread_id_ = thread_.get_id();
  return Status::OK();
}

void EventLoop::Run() {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  // Wake at least every 250 ms so Stop() is observed promptly even with no
  // traffic and no tick configured.
  int timeout = 250;
  if (tick_ms_ > 0.0 && tick_ms_ < timeout) {
    timeout = tick_ms_ < 1.0 ? 1 : static_cast<int>(tick_ms_);
  }
  Stopwatch since_tick;
  while (!stopping_.load()) {
    const int n = epoll_wait(epoll_fd_, events, kMaxEvents, timeout);
    if (n < 0 && errno != EINTR) {
      MIP_LOG(Error) << "epoll_wait: " << std::strerror(errno);
      break;
    }
    for (int i = 0; i < n && !stopping_.load(); ++i) {
      auto it = callbacks_.find(events[i].data.fd);
      if (it == callbacks_.end()) continue;  // removed earlier in this batch
      // Hold a reference: the callback may remove itself mid-dispatch.
      std::shared_ptr<IoCallback> cb = it->second;
      (*cb)(events[i].events);
    }
    // Queued cross-thread work (handler completions, control ops).
    std::vector<std::function<void()>> todo;
    {
      std::lock_guard<std::mutex> lock(pending_mu_);
      todo.swap(pending_);
    }
    for (auto& fn : todo) fn();
    if (on_tick_ && tick_ms_ > 0.0 && since_tick.ElapsedMillis() >= tick_ms_) {
      since_tick.Reset();
      on_tick_();
    }
  }
}

void EventLoop::Stop() {
  if (stopping_.exchange(true)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  if (wake_fd_ >= 0) {
    const uint64_t one = 1;
    [[maybe_unused]] ssize_t rc = write(wake_fd_, &one, sizeof(one));
  }
  if (thread_.joinable()) thread_.join();
}

}  // namespace mip::net
