#ifndef MIP_NET_EVENT_LOOP_H_
#define MIP_NET_EVENT_LOOP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/result.h"

namespace mip::net {

/// \brief A single-threaded epoll reactor: the multiplexing primitive under
/// EpollServer.
///
/// One loop thread watches any number of file descriptors and dispatches
/// their readiness callbacks, so thousands of idle connections cost zero
/// threads (the previous server side spent one blocked thread per
/// connection). Work is handed off the loop thread via RunInLoop(), which is
/// the only thread-safe entry point besides Stop(); Add/Modify/Remove and
/// every callback run on the loop thread.
///
/// The loop also drives a coarse periodic tick (set_tick) used by the server
/// for deadline eviction — epoll_wait wakes at least that often.
class EventLoop {
 public:
  /// Callback invoked with the epoll event mask (EPOLLIN/EPOLLOUT/...).
  using IoCallback = std::function<void(uint32_t events)>;

  EventLoop() = default;
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Creates the epoll instance and the wakeup eventfd.
  Status Init();

  /// Registers `fd` for `events`. Loop thread only (or before Start).
  Status Add(int fd, uint32_t events, IoCallback callback);
  /// Changes the watched event mask of a registered fd.
  Status Modify(int fd, uint32_t events);
  /// Stops watching `fd` and drops its callback. The fd itself is not
  /// closed — the owner closes it. Safe to call from inside any callback,
  /// including the removed fd's own: dispatch holds a reference.
  void Remove(int fd);

  /// Queues `fn` to run on the loop thread and wakes the loop. Thread-safe.
  /// After Stop() the function is silently dropped.
  void RunInLoop(std::function<void()> fn);

  /// Spawns the loop thread. `tick_ms`/`on_tick` install the periodic
  /// housekeeping callback (0 disables; the loop still wakes every 250 ms
  /// to observe Stop()).
  Status Start(double tick_ms = 0.0, std::function<void()> on_tick = nullptr);

  /// Stops the loop and joins its thread. Thread-safe, idempotent.
  void Stop();

  bool in_loop_thread() const {
    return std::this_thread::get_id() == loop_thread_id_;
  }

 private:
  void Run();
  void DrainWake();

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::thread thread_;
  std::thread::id loop_thread_id_;

  double tick_ms_ = 0.0;
  std::function<void()> on_tick_;

  /// shared_ptr so a callback stays alive while being dispatched even if it
  /// Remove()s itself (or another callback removes it) mid-batch.
  std::map<int, std::shared_ptr<IoCallback>> callbacks_;

  std::mutex pending_mu_;
  std::vector<std::function<void()>> pending_;
};

}  // namespace mip::net

#endif  // MIP_NET_EVENT_LOOP_H_
