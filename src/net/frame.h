#ifndef MIP_NET_FRAME_H_
#define MIP_NET_FRAME_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/crc32.h"
#include "common/result.h"
#include "net/transport.h"

namespace mip::net {

/// Wire format of one frame (all integers little-endian):
///
///   u32 magic      "MIPF" (0x4650494D)
///   u8  version    kFrameVersion
///   u32 length     payload byte count
///   u32 crc32      CRC-32 (IEEE 802.3) of the payload bytes
///   u8[length]     payload
///
/// A decoder that sees a bad magic, an unknown version, an oversized length
/// or a CRC mismatch reports a clean ParseError — the stream is unusable and
/// the connection must be dropped. A short read is not an error: the decoder
/// simply waits for more bytes.
///
/// Version history (layout is identical across versions; the version byte is
/// a capability advertisement):
///   1  original framing
///   2  sender understands the columnar wire codecs (engine/encoding.h) —
///      a v2 request invites a codec-compressed reply; v1 peers keep
///      exchanging v1 frames with fixed-width payloads.
inline constexpr uint32_t kFrameMagic = 0x4650494Du;  // "MIPF" on the wire
inline constexpr uint8_t kFrameVersion = 2;
/// Lowest version still accepted off the wire.
inline constexpr uint8_t kFrameVersionMin = 1;
/// First version that advertises codec support.
inline constexpr uint8_t kFrameVersionCodec = 2;
inline constexpr size_t kFrameHeaderBytes = 4 + 1 + 4 + 4;
/// Hard ceiling on a frame payload (defends against hostile/corrupt length
/// fields driving allocations).
inline constexpr size_t kDefaultMaxFramePayload = 256u << 20;  // 256 MiB

/// Internal handshake message type: a client asks a peer which protocol
/// version it speaks before first using codecs with it. The round trip is
/// v1-framed (old servers must parse it), bypasses the FaultHook and is not
/// metered, so seeded fault sequences and message counts stay identical to
/// the in-process bus. Servers answer with a single byte: their version.
inline constexpr char kHelloMsgType[] = "__mip_hello";

/// CRC-32 (IEEE 802.3, reflected, init/xorout 0xFFFFFFFF).
/// Crc32("123456789") == 0xCBF43926. The implementation lives in
/// common/crc32.h (shared with the on-disk storage formats); this alias
/// keeps the historical net-layer spelling working.
using ::mip::Crc32;

/// Appends one framed payload to `out`. `version` is what goes on the wire:
/// a transport talking to a v1 peer frames with 1 so the peer's decoder
/// accepts the stream.
void EncodeFrame(const uint8_t* payload, size_t n, BufferWriter* out,
                 uint8_t version = kFrameVersion);
inline void EncodeFrame(const std::vector<uint8_t>& payload, BufferWriter* out,
                        uint8_t version = kFrameVersion) {
  EncodeFrame(payload.data(), payload.size(), out, version);
}

/// \brief Incremental frame decoder for a TCP byte stream: Feed() arbitrary
/// chunks, then call Next() until it reports "need more bytes".
class FrameDecoder {
 public:
  explicit FrameDecoder(size_t max_payload = kDefaultMaxFramePayload)
      : max_payload_(max_payload) {}

  /// Appends raw bytes read off the stream.
  void Feed(const uint8_t* data, size_t n);

  /// Attempts to extract the next complete frame. Returns true and fills
  /// `*payload` when a frame (with a valid CRC) was consumed, false when
  /// more bytes are needed, or ParseError when the stream is corrupt
  /// (bad magic / version / length / CRC) and must be abandoned.
  Result<bool> Next(std::vector<uint8_t>* payload);

  /// Bytes buffered but not yet consumed by Next().
  size_t buffered() const { return buf_.size() - pos_; }

  /// Version byte of the last frame Next() returned — how a server learns
  /// whether the requester speaks the codec-capable protocol.
  uint8_t last_version() const { return last_version_; }

 private:
  size_t max_payload_;
  std::vector<uint8_t> buf_;
  size_t pos_ = 0;  // consumed prefix, compacted lazily
  uint8_t last_version_ = kFrameVersionMin;
};

/// Serializes an envelope into a frame payload (deadline_ms is local
/// delivery metadata and deliberately does not cross the wire).
std::vector<uint8_t> EncodeEnvelopePayload(const Envelope& envelope);
Result<Envelope> DecodeEnvelopePayload(const std::vector<uint8_t>& payload);

/// Serializes a reply: the handler's Status (code + message) plus the reply
/// bytes on success. Decoding a non-OK reply returns that embedded Status,
/// so remote handler errors propagate to the caller with their original
/// code (algorithm errors stay non-retryable across the wire).
std::vector<uint8_t> EncodeReplyPayload(const Status& status,
                                        const std::vector<uint8_t>& reply);
Result<std::vector<uint8_t>> DecodeReplyPayload(
    const std::vector<uint8_t>& payload);

}  // namespace mip::net

#endif  // MIP_NET_FRAME_H_
