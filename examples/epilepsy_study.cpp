// Epilepsy surgery planning across three centers — the paper's second
// pathology ("epilepsy") and data type ("intracerebral EEG") exercised end
// to end: CDE harmonization of iEEG features, federated exploration, and
// outcome models for surgical candidacy.
//
// Build & run:  ./build/examples/epilepsy_study

#include <cstdio>

#include "algorithms/anova.h"
#include "algorithms/decision_tree.h"
#include "algorithms/histogram.h"
#include "algorithms/logistic_regression.h"
#include "common/status.h"
#include "data/synthetic.h"
#include "etl/cde.h"
#include "federation/master.h"

namespace {

using mip::Status;
using mip::federation::FederationSession;

Status Run() {
  mip::federation::MasterNode master;
  const mip::etl::CdeCatalog catalog = mip::etl::EpilepsyCatalog();
  for (int c = 0; c < 3; ++c) {
    const std::string id = "center_" + std::to_string(c);
    MIP_RETURN_NOT_OK(master.AddWorker(id).status());
    MIP_ASSIGN_OR_RETURN(mip::engine::Table raw,
                         mip::data::GenerateEpilepsyCohort(700, 500 + c));
    mip::etl::HarmonizationReport report;
    MIP_ASSIGN_OR_RETURN(mip::engine::Table clean,
                         mip::etl::Harmonize(raw, catalog, &report));
    MIP_RETURN_NOT_OK(master.LoadDataset(id, "epilepsy", std::move(clean)));
  }
  std::printf("3 epilepsy centers, 2100 surgical candidates, iEEG features "
              "harmonized against the %s CDE catalog\n\n",
              catalog.domain().c_str());

  // Exploration: distribution of surgical outcomes (with the disclosure
  // threshold active, as on the live platform).
  {
    mip::algorithms::HistogramSpec spec;
    spec.datasets = {"epilepsy"};
    spec.variable = "engel_class";
    spec.nominal = true;
    spec.privacy_threshold = 10;
    MIP_ASSIGN_OR_RETURN(FederationSession s,
                         master.StartSession({"epilepsy"}));
    MIP_ASSIGN_OR_RETURN(auto hist,
                         mip::algorithms::RunHistogram(&s, spec));
    std::printf("%s\n", hist.ToString().c_str());
  }

  // Does the iEEG HFO rate separate outcome classes?
  {
    mip::algorithms::AnovaOneWaySpec spec;
    spec.datasets = {"epilepsy"};
    spec.outcome = "ieeg_hfo_rate";
    spec.factor = "engel_class";
    MIP_ASSIGN_OR_RETURN(FederationSession s,
                         master.StartSession({"epilepsy"}));
    MIP_ASSIGN_OR_RETURN(auto r, mip::algorithms::RunAnovaOneWay(&s, spec));
    std::printf("HFO rate by Engel class:\n%s\n", r.ToString().c_str());
  }

  // Seizure-freedom model (secure aggregation: update sums via SMPC).
  {
    mip::algorithms::LogisticRegressionSpec spec;
    spec.datasets = {"epilepsy"};
    spec.covariates = {"ieeg_hfo_rate", "ieeg_spike_rate",
                       "seizure_frequency", "age_at_onset"};
    spec.target = "engel_class";
    spec.positive_class = "I";
    spec.mode = mip::federation::AggregationMode::kSecure;
    // Fixed-point rounding puts a ~1e-6 floor under the Newton step norm;
    // relax the convergence tolerance accordingly on the secure path.
    spec.tolerance = 1e-4;
    MIP_ASSIGN_OR_RETURN(FederationSession s,
                         master.StartSession({"epilepsy"}));
    MIP_ASSIGN_OR_RETURN(auto fit,
                         mip::algorithms::RunLogisticRegression(&s, spec));
    std::printf("Seizure-freedom (Engel I) model, secure aggregation:\n%s\n",
                fit.ToString().c_str());
  }

  // A clinician-readable decision tree on the same question.
  {
    mip::algorithms::CartSpec spec;
    spec.datasets = {"epilepsy"};
    spec.features = {"ieeg_hfo_rate", "seizure_frequency"};
    spec.target = "engel_class";
    spec.max_depth = 2;
    MIP_ASSIGN_OR_RETURN(FederationSession s,
                         master.StartSession({"epilepsy"}));
    MIP_ASSIGN_OR_RETURN(auto tree, mip::algorithms::RunCart(&s, spec));
    std::printf("CART on iEEG features:\n%s", tree.ToString().c_str());
  }
  return Status::OK();
}

}  // namespace

int main() {
  const Status st = Run();
  if (!st.ok()) {
    std::fprintf(stderr, "epilepsy_study failed: %s\n",
                 st.ToString().c_str());
    return 1;
  }
  return 0;
}
