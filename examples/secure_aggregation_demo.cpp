// A tour of the SMPC engine: both security modes (full threshold with
// SPDZ MACs vs. Shamir), all four aggregation operations, in-protocol DP
// noise, the offline/online split, and what happens when a node cheats.
//
// Build & run:  ./build/examples/secure_aggregation_demo

#include <cstdio>
#include <vector>

#include "common/status.h"
#include "smpc/cluster.h"

namespace {

using mip::Status;
using mip::smpc::NoiseSpec;
using mip::smpc::SmpcCluster;
using mip::smpc::SmpcConfig;
using mip::smpc::SmpcOp;
using mip::smpc::SmpcScheme;

void PrintVector(const char* label, const std::vector<double>& v) {
  std::printf("%-28s[", label);
  for (size_t i = 0; i < v.size(); ++i) {
    std::printf("%s%.3f", i ? ", " : "", v[i]);
  }
  std::printf("]\n");
}

Status RunScheme(SmpcScheme scheme, const char* name) {
  SmpcConfig config;
  config.scheme = scheme;
  config.num_nodes = 3;
  config.threshold = 1;
  SmpcCluster cluster(config);
  std::printf("=== %s, %d SMPC nodes ===\n", name, config.num_nodes);

  // Three hospitals secure-import their local aggregates (a job gets a
  // globally unique id; results are retrieved asynchronously by that id).
  MIP_RETURN_NOT_OK(cluster.ImportShares("exp-42/sum", {12.5, 3.0, -7.25}));
  MIP_RETURN_NOT_OK(cluster.ImportShares("exp-42/sum", {4.5, -1.0, 2.25}));
  MIP_RETURN_NOT_OK(cluster.ImportShares("exp-42/sum", {3.0, 8.0, 5.0}));
  MIP_RETURN_NOT_OK(cluster.Compute("exp-42/sum", SmpcOp::kSum));
  MIP_ASSIGN_OR_RETURN(std::vector<double> sum,
                       cluster.GetResult("exp-42/sum"));
  PrintVector("sum:", sum);

  MIP_RETURN_NOT_OK(cluster.ImportShares("exp-42/prod", {2.0, 1.5}));
  MIP_RETURN_NOT_OK(cluster.ImportShares("exp-42/prod", {3.0, -4.0}));
  MIP_RETURN_NOT_OK(cluster.Compute("exp-42/prod", SmpcOp::kProduct));
  MIP_ASSIGN_OR_RETURN(std::vector<double> prod,
                       cluster.GetResult("exp-42/prod"));
  PrintVector("product:", prod);

  MIP_RETURN_NOT_OK(cluster.ImportShares("exp-42/min", {10.0, -5.0}));
  MIP_RETURN_NOT_OK(cluster.ImportShares("exp-42/min", {7.0, -2.0}));
  MIP_RETURN_NOT_OK(cluster.Compute("exp-42/min", SmpcOp::kMin));
  MIP_ASSIGN_OR_RETURN(std::vector<double> mins,
                       cluster.GetResult("exp-42/min"));
  PrintVector("min:", mins);

  // In-protocol differential privacy: every node contributes a partial
  // Laplace draw; no single node knows the total noise.
  NoiseSpec noise;
  noise.kind = NoiseSpec::Kind::kLaplace;
  noise.param = 0.5;
  MIP_RETURN_NOT_OK(cluster.ImportShares("exp-42/dp", {100.0}));
  MIP_RETURN_NOT_OK(cluster.Compute("exp-42/dp", SmpcOp::kSum, noise));
  MIP_ASSIGN_OR_RETURN(std::vector<double> noised,
                       cluster.GetResult("exp-42/dp"));
  std::printf("%-28s%.3f  (true value 100, Laplace b=0.5 inside SMPC)\n",
              "noised sum:", noised[0]);

  std::printf(
      "cost: %llu bytes, %llu rounds, %llu triples, simulated network "
      "%.2f ms\n",
      static_cast<unsigned long long>(cluster.stats().bytes_transferred),
      static_cast<unsigned long long>(cluster.stats().rounds),
      static_cast<unsigned long long>(cluster.stats().triples_consumed),
      cluster.stats().SimulatedNetworkSeconds(config) * 1e3);

  // An actively malicious node corrupts its share.
  MIP_RETURN_NOT_OK(cluster.ImportShares("exp-42/tamper", {50.0}));
  MIP_RETURN_NOT_OK(cluster.TamperWithShare(1, "exp-42/tamper", 0, 0, 1234));
  const Status attacked = cluster.Compute("exp-42/tamper", SmpcOp::kSum);
  if (scheme == SmpcScheme::kFullThreshold) {
    std::printf("tamper attempt: %s\n\n",
                attacked.ok() ? "NOT DETECTED (bug!)"
                              : attacked.ToString().c_str());
  } else {
    MIP_ASSIGN_OR_RETURN(std::vector<double> wrong,
                         cluster.GetResult("exp-42/tamper"));
    std::printf(
        "tamper attempt: accepted silently, result %.3f instead of 50 — "
        "honest-but-curious\nmode does not defend against active "
        "adversaries (pick full threshold for that).\n\n",
        wrong[0]);
  }
  return Status::OK();
}

Status Run() {
  // Offline phase first: SPDZ precomputes Beaver triples so the online
  // multiplications are cheap.
  SmpcConfig config;
  config.scheme = SmpcScheme::kFullThreshold;
  SmpcCluster offline_demo(config);
  offline_demo.PrecomputeTriples(256);
  std::printf("offline phase: 256 Beaver triples in %.2f ms\n\n",
              offline_demo.stats().offline_seconds * 1e3);

  MIP_RETURN_NOT_OK(RunScheme(SmpcScheme::kFullThreshold,
                              "full threshold (SPDZ, active security)"));
  MIP_RETURN_NOT_OK(
      RunScheme(SmpcScheme::kShamir, "Shamir t=1 (honest-but-curious)"));
  return Status::OK();
}

}  // namespace

int main() {
  const Status st = Run();
  if (!st.ok()) {
    std::fprintf(stderr, "secure_aggregation_demo failed: %s\n",
                 st.ToString().c_str());
    return 1;
  }
  return 0;
}
