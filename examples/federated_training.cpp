// Federated learning per the paper's Training section: the Master ships the
// current model, Workers compute local updates next to the data, and the
// updates come back either with local DP noise or through SMPC secure
// aggregation (noise injected once, inside the protocol). This example
// contrasts the three privacy regimes on the same task.
//
// Build & run:  ./build/examples/federated_training

#include <cmath>
#include <cstdio>

#include "common/rng.h"
#include "common/status.h"
#include "federation/master.h"
#include "federation/training.h"

namespace {

using mip::Status;
using mip::engine::DataType;
using mip::engine::Schema;
using mip::engine::Table;
using mip::engine::Value;
using mip::federation::TransferData;
using mip::federation::WorkerContext;

Status Run() {
  mip::federation::MasterNode master;
  mip::Rng rng(99);

  // Five hospitals, each with a local logistic-regression dataset
  // (3 features; true weights {1.5, -2.0, 0.8}).
  const std::vector<double> kTrueWeights = {1.5, -2.0, 0.8};
  for (int h = 0; h < 5; ++h) {
    const std::string id = "hospital_" + std::to_string(h);
    MIP_RETURN_NOT_OK(master.AddWorker(id).status());
    Schema schema;
    MIP_RETURN_NOT_OK(schema.AddField({"x0", DataType::kFloat64}));
    MIP_RETURN_NOT_OK(schema.AddField({"x1", DataType::kFloat64}));
    MIP_RETURN_NOT_OK(schema.AddField({"x2", DataType::kFloat64}));
    MIP_RETURN_NOT_OK(schema.AddField({"y", DataType::kFloat64}));
    Table t = Table::Empty(schema);
    for (int i = 0; i < 400; ++i) {
      const double x0 = rng.NextGaussian();
      const double x1 = rng.NextGaussian();
      const double x2 = rng.NextGaussian();
      const double z =
          kTrueWeights[0] * x0 + kTrueWeights[1] * x1 + kTrueWeights[2] * x2;
      const double y =
          rng.NextDouble() < 1.0 / (1.0 + std::exp(-z)) ? 1.0 : 0.0;
      MIP_RETURN_NOT_OK(t.AppendRow({Value::Double(x0), Value::Double(x1),
                                     Value::Double(x2), Value::Double(y)}));
    }
    MIP_RETURN_NOT_OK(master.LoadDataset(id, "fl_data", std::move(t)));
  }

  // The local step: logistic gradient + loss on the worker's rows.
  MIP_RETURN_NOT_OK(master.functions()->Register(
      "fl.grad",
      [](WorkerContext& ctx,
         const TransferData& args) -> mip::Result<TransferData> {
        MIP_ASSIGN_OR_RETURN(std::vector<double> w,
                             args.GetVector("weights"));
        MIP_ASSIGN_OR_RETURN(Table t, ctx.db().GetTable("fl_data"));
        std::vector<double> grad(w.size(), 0.0);
        double loss = 0, n = 0;
        for (size_t r = 0; r < t.num_rows(); ++r) {
          double z = 0;
          for (size_t j = 0; j < w.size(); ++j) {
            z += w[j] * t.At(r, j).AsDouble();
          }
          const double y = t.At(r, w.size()).AsDouble();
          const double mu = 1.0 / (1.0 + std::exp(-z));
          for (size_t j = 0; j < w.size(); ++j) {
            grad[j] += (mu - y) * t.At(r, j).AsDouble();
          }
          loss += -(y * std::log(std::max(mu, 1e-12)) +
                    (1 - y) * std::log(std::max(1 - mu, 1e-12)));
          n += 1;
        }
        TransferData out;
        out.PutVector("grad", grad);
        out.PutScalar("loss", loss);
        out.PutScalar("n", n);
        return out;
      }));

  auto train = [&master](mip::federation::TrainingPrivacy privacy,
                         double epsilon)
      -> mip::Result<mip::federation::TrainingResult> {
    mip::federation::TrainingConfig config;
    config.rounds = 40;
    config.learning_rate = 2.0;
    config.privacy = privacy;
    config.epsilon = epsilon;
    config.delta = 1e-5;
    config.clip_norm = 1.0;
    MIP_ASSIGN_OR_RETURN(mip::federation::FederationSession session,
                         master.StartSession({"fl_data"}));
    mip::federation::FederatedTrainer trainer(&master, config);
    return trainer.Train(&session, "fl.grad", 3);
  };

  auto report = [&kTrueWeights](const char* label,
                                const mip::federation::TrainingResult& r) {
    double err = 0;
    for (size_t j = 0; j < kTrueWeights.size(); ++j) {
      err += (r.weights[j] - kTrueWeights[j]) * (r.weights[j] - kTrueWeights[j]);
    }
    std::printf(
        "%-28s final loss %.4f | weight L2 error %.3f | epsilon spent %.1f\n",
        label, r.history.back().loss, std::sqrt(err), r.spent_epsilon);
  };

  std::printf("Federated training: 5 hospitals x 400 examples, 40 rounds\n\n");
  MIP_ASSIGN_OR_RETURN(auto clean,
                       train(mip::federation::TrainingPrivacy::kNone, 0));
  report("no privacy (baseline)", clean);
  for (double eps : {1000.0, 200.0, 50.0}) {
    MIP_ASSIGN_OR_RETURN(
        auto dp, train(mip::federation::TrainingPrivacy::kLocalDp, eps));
    MIP_ASSIGN_OR_RETURN(
        auto sa,
        train(mip::federation::TrainingPrivacy::kSecureAggregation, eps));
    std::printf("\n-- privacy budget epsilon = %.0f --\n", eps);
    report("local DP (noise per worker)", dp);
    report("secure aggregation + DP", sa);
  }
  std::printf(
      "\nTakeaway: at the same budget, SA injects noise once into the "
      "aggregate,\nso it tracks the baseline much closer than local DP — "
      "the paper's rationale\nfor running aggregation inside the SMPC "
      "cluster.\n");
  return Status::OK();
}

}  // namespace

int main() {
  const Status st = Run();
  if (!st.ok()) {
    std::fprintf(stderr, "federated_training failed: %s\n",
                 st.ToString().c_str());
    return 1;
  }
  return 0;
}
