// The paper's case study: "Federated analyses in Alzheimer's disease".
//
// Four sites — Brescia (1960 patients), Lausanne (1032), Lille (1103) and
// the ADNI reference cohort (1066) — keep their data local while the
// analysis runs over the whole caseload. Objectives, per the paper:
//   (a) how brain volumes contribute to diagnosis,
//   (b) diagnosis specificity from the two key AD biomarkers
//       (amyloid beta 1-42 and p-Tau) — clusters on Abeta42, pTau and
//       left entorhinal volume,
//   (c) survival contrast across diagnostic groups (Kaplan-Meier).
// The study leverages the same two MIP algorithms the paper names:
// k-means and linear regression (plus the supporting analyses).
//
// Build & run:  ./build/examples/alzheimer_study

#include <cstdio>

#include "algorithms/anova.h"
#include "algorithms/kaplan_meier.h"
#include "algorithms/kmeans.h"
#include "algorithms/linear_regression.h"
#include "algorithms/logistic_regression.h"
#include "algorithms/pearson.h"
#include "common/status.h"
#include "data/synthetic.h"
#include "federation/master.h"

namespace {

using mip::Status;
using mip::federation::FederationSession;

Status Run() {
  mip::federation::MasterNode master;
  MIP_RETURN_NOT_OK(mip::data::SetupAlzheimerFederation(&master));
  const std::vector<std::string> datasets = {"edsd_brescia", "edsd_lausanne",
                                             "edsd_lille", "adni"};
  std::printf("Federation: 4 sites, %zu workers, data never leaves them.\n\n",
              master.num_workers());

  // (a) Brain-volume repartition across diagnoses: one-way ANOVA of the
  // hippocampus volume over CN / MCI / AD, then the regression the paper
  // pairs with it.
  {
    mip::algorithms::AnovaOneWaySpec anova;
    anova.datasets = datasets;
    anova.outcome = "left_hippocampus";
    anova.factor = "diagnosis";
    MIP_ASSIGN_OR_RETURN(FederationSession s, master.StartSession(datasets));
    MIP_ASSIGN_OR_RETURN(mip::algorithms::AnovaOneWayResult r,
                         mip::algorithms::RunAnovaOneWay(&s, anova));
    std::printf("(a) Brain volume repartition across diagnosis\n%s\n",
                r.ToString().c_str());

    mip::algorithms::LinearRegressionSpec reg;
    reg.datasets = datasets;
    reg.covariates = {"age", "abeta42", "p_tau"};
    reg.target = "left_hippocampus";
    reg.mode = mip::federation::AggregationMode::kSecure;
    MIP_ASSIGN_OR_RETURN(FederationSession s2, master.StartSession(datasets));
    MIP_ASSIGN_OR_RETURN(mip::algorithms::LinearRegressionResult fit,
                         mip::algorithms::RunLinearRegression(&s2, reg));
    std::printf("Hippocampal volume model (secure aggregation):\n%s\n",
                fit.ToString().c_str());
  }

  // (b) Clusters on Abeta42, pTau and left entorhinal volume — k-means,
  // standardized, k = 3 (the clinical CN / MCI / AD structure).
  {
    mip::algorithms::KMeansSpec km;
    km.datasets = datasets;
    km.variables = {"abeta42", "p_tau", "left_entorhinal_area"};
    km.k = 3;
    km.standardize = true;
    km.seed = 11;
    MIP_ASSIGN_OR_RETURN(FederationSession s, master.StartSession(datasets));
    MIP_ASSIGN_OR_RETURN(mip::algorithms::KMeansResult clusters,
                         mip::algorithms::RunKMeans(&s, km));
    std::printf("(b) Biomarker clusters (Abeta42 / pTau / entorhinal)\n%s\n",
                clusters.ToString().c_str());

    mip::algorithms::PearsonSpec corr;
    corr.datasets = datasets;
    corr.variables = {"abeta42", "p_tau", "left_entorhinal_area", "mmse"};
    MIP_ASSIGN_OR_RETURN(FederationSession s2, master.StartSession(datasets));
    MIP_ASSIGN_OR_RETURN(mip::algorithms::PearsonResult r,
                         mip::algorithms::RunPearson(&s2, corr));
    std::printf("%s\n", r.ToString().c_str());
  }

  // Diagnosis specificity: logistic regression AD-vs-rest with and without
  // the two AD biomarkers.
  {
    mip::algorithms::LogisticRegressionSpec base;
    base.datasets = datasets;
    base.covariates = {"age", "left_hippocampus"};
    base.target = "diagnosis";
    base.positive_class = "AD";
    MIP_ASSIGN_OR_RETURN(FederationSession s, master.StartSession(datasets));
    MIP_ASSIGN_OR_RETURN(mip::algorithms::LogisticRegressionResult no_bio,
                         mip::algorithms::RunLogisticRegression(&s, base));

    mip::algorithms::LogisticRegressionSpec with_bio = base;
    with_bio.covariates = {"age", "left_hippocampus", "abeta42", "p_tau"};
    MIP_ASSIGN_OR_RETURN(FederationSession s2, master.StartSession(datasets));
    MIP_ASSIGN_OR_RETURN(
        mip::algorithms::LogisticRegressionResult bio,
        mip::algorithms::RunLogisticRegression(&s2, with_bio));
    std::printf(
        "Diagnosis specificity (AD vs rest):\n"
        "  without biomarkers: accuracy %.3f (McFadden R^2 %.3f)\n"
        "  with Abeta42 + pTau: accuracy %.3f (McFadden R^2 %.3f)\n\n",
        no_bio.accuracy, no_bio.pseudo_r_squared, bio.accuracy,
        bio.pseudo_r_squared);
  }

  // (c) Survival by diagnosis: federated Kaplan-Meier.
  {
    mip::algorithms::KaplanMeierSpec km;
    km.datasets = datasets;
    km.time_variable = "followup_months";
    km.event_variable = "event";
    km.group_variable = "diagnosis";
    MIP_ASSIGN_OR_RETURN(FederationSession s, master.StartSession(datasets));
    MIP_ASSIGN_OR_RETURN(mip::algorithms::KaplanMeierResult r,
                         mip::algorithms::RunKaplanMeier(&s, km));
    std::printf("(c) Kaplan-Meier by diagnosis (median survival):\n");
    for (const auto& curve : r.curves) {
      std::printf("  %s: median %.1f months, %zu time points, final S=%.3f\n",
                  curve.group.c_str(), curve.median_survival_time,
                  curve.points.size(), curve.points.back().survival);
    }
  }

  std::printf("\nBus traffic for the whole study: %llu messages, %llu bytes\n",
              static_cast<unsigned long long>(master.bus().stats().messages),
              static_cast<unsigned long long>(master.bus().stats().bytes));
  return Status::OK();
}

}  // namespace

int main() {
  const Status st = Run();
  if (!st.ok()) {
    std::fprintf(stderr, "alzheimer_study failed: %s\n",
                 st.ToString().c_str());
    return 1;
  }
  return 0;
}
