// A tour of the Worker-side analytics engine: SQL, the UDFGenerator's
// procedural-to-declarative translation, and the three execution modes
// (row-at-a-time, vectorized, JIT-fused) the paper's in-database execution
// claims rest on.
//
// Build & run:  ./build/examples/engine_tour

#include <cstdio>

#include "common/rng.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "engine/database.h"
#include "udf/udf.h"

namespace {

using mip::Status;
using mip::engine::Database;
using mip::engine::Table;

Status Run() {
  Database db("worker_engine");

  // --- Plain SQL ---------------------------------------------------------
  MIP_RETURN_NOT_OK(db.ExecuteSql("CREATE TABLE visits (patient bigint, "
                                  "dx varchar, vol double, age double)")
                        .status());
  mip::Rng rng(2025);
  for (int i = 0; i < 8; ++i) {
    const char* dx = i % 3 == 0 ? "AD" : (i % 3 == 1 ? "MCI" : "CN");
    char sql[160];
    std::snprintf(sql, sizeof(sql),
                  "INSERT INTO visits VALUES (%d, '%s', %.2f, %.0f)", i, dx,
                  2.0 + 0.2 * (i % 5), 65.0 + i);
    MIP_RETURN_NOT_OK(db.ExecuteSql(sql).status());
  }
  MIP_ASSIGN_OR_RETURN(
      Table by_dx,
      db.ExecuteSql("SELECT dx, count(*) AS n, avg(vol) AS mean_vol "
                    "FROM visits GROUP BY dx ORDER BY dx"));
  std::printf("SQL group-by:\n%s\n", by_dx.ToString().c_str());

  // --- UDFGenerator: procedural program -> declarative SQL ---------------
  mip::udf::UdfDefinition def;
  def.name = "vol_zstats";
  MIP_RETURN_NOT_OK(def.input_schema.AddField(
      {"vol", mip::engine::DataType::kFloat64}));
  MIP_RETURN_NOT_OK(def.input_schema.AddField(
      {"age", mip::engine::DataType::kFloat64}));
  def.steps = {
      {mip::udf::UdfStep::Kind::kElementwise, "adjusted",
       "vol + 0.01 * (age - 70)", "", "", ""},
      {mip::udf::UdfStep::Kind::kReduce, "mean_adj", "", "avg", "adjusted",
       ""},
      {mip::udf::UdfStep::Kind::kReduce, "sd_adj", "", "stddev_samp",
       "adjusted", ""},
  };
  def.outputs = {"mean_adj", "sd_adj"};

  mip::udf::UdfGenerator generator(&db);
  MIP_ASSIGN_OR_RETURN(mip::udf::GeneratedUdf generated,
                       generator.Generate(def));
  std::printf("UDFGenerator emitted %s SQL:\n",
              generated.single_select ? "single-SELECT" : "multi-statement");
  for (const std::string& sql : generated.sql) {
    std::printf("  %s\n", sql.c_str());
  }
  std::printf("JIT lowering: %zu fused vector instructions\n\n",
              generated.jit_instructions);

  MIP_ASSIGN_OR_RETURN(Table udf_out,
                       db.ExecuteSql("SELECT * FROM vol_zstats('visits')"));
  std::printf("UDF result:\n%s\n", udf_out.ToString().c_str());

  // --- Execution-mode shootout on a bigger table -------------------------
  MIP_RETURN_NOT_OK(
      db.ExecuteSql("CREATE TABLE big (x double, y double)").status());
  {
    mip::engine::Column x(mip::engine::DataType::kFloat64);
    mip::engine::Column y(mip::engine::DataType::kFloat64);
    for (int i = 0; i < 2'000'000; ++i) {
      x.AppendDouble(rng.NextGaussian());
      y.AppendDouble(rng.NextUniform(0.5, 2.0));
    }
    mip::engine::Schema schema;
    MIP_RETURN_NOT_OK(schema.AddField({"x", mip::engine::DataType::kFloat64}));
    MIP_RETURN_NOT_OK(schema.AddField({"y", mip::engine::DataType::kFloat64}));
    MIP_ASSIGN_OR_RETURN(Table big, Table::Make(schema, {x, y}));
    MIP_RETURN_NOT_OK(db.PutTable("big", std::move(big)));
  }
  mip::udf::UdfDefinition heavy;
  heavy.name = "heavy";
  MIP_RETURN_NOT_OK(
      heavy.input_schema.AddField({"x", mip::engine::DataType::kFloat64}));
  MIP_RETURN_NOT_OK(
      heavy.input_schema.AddField({"y", mip::engine::DataType::kFloat64}));
  heavy.steps = {
      {mip::udf::UdfStep::Kind::kElementwise, "t",
       "sqrt(abs(x * y)) + exp(x / 10) - y * 0.5", "", "", ""},
      {mip::udf::UdfStep::Kind::kReduce, "total", "", "sum", "t", ""},
  };
  heavy.outputs = {"total"};

  const struct {
    mip::udf::UdfExecutionMode mode;
    const char* name;
  } kModes[] = {
      {mip::udf::UdfExecutionMode::kRowInterpreter, "row-at-a-time"},
      {mip::udf::UdfExecutionMode::kVectorized, "vectorized"},
      {mip::udf::UdfExecutionMode::kJitFused, "JIT-fused"},
  };
  std::printf("Execution modes on 2M rows:\n");
  for (const auto& m : kModes) {
    mip::Stopwatch sw;
    MIP_ASSIGN_OR_RETURN(Table out, generator.Execute(heavy, "big", m.mode));
    std::printf("  %-14s %8.1f ms   (total = %.1f)\n", m.name,
                sw.ElapsedMillis(), out.At(0, 0).AsDouble());
  }
  return Status::OK();
}

}  // namespace

int main() {
  const Status st = Run();
  if (!st.ok()) {
    std::fprintf(stderr, "engine_tour failed: %s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}
