// Quickstart: stand up a three-hospital MIP federation from raw CSV,
// harmonize against the dementia CDE catalog, and run a descriptive
// analysis plus a federated linear regression — first on the plain
// (merge-table) path, then through the SMPC secure path.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>
#include <string>

#include "algorithms/descriptive.h"
#include "algorithms/linear_regression.h"
#include "common/status.h"
#include "etl/cde.h"
#include "etl/csv.h"
#include "federation/master.h"

namespace {

using mip::Status;

// Raw exports as three hospitals might produce them: aliased column names,
// out-of-range values, missing cells. Harmonization fixes all of that.
const char* kHospitalCsv[3] = {
    // Hospital A uses "ptau" and lowercase diagnoses.
    "id,dx,age,ptau,lefthippocampus\n"
    "a1,ad,74,55.1,2.2\n"
    "a2,cn,68,18.0,3.4\n"
    "a3,mci,71,30.5,2.9\n"
    "a4,ad,79,61.2,2.0\n"
    "a5,cn,66,15.4,3.5\n",
    // Hospital B ships an impossible age and a missing volume.
    "id,dx,age,p_tau,left_hippocampus\n"
    "b1,CN,70,20.1,3.3\n"
    "b2,AD,203,58.9,2.1\n"
    "b3,MCI,69,33.0,\n"
    "b4,AD,81,49.7,2.3\n",
    // Hospital C.
    "id,dx,age,p_tau,left_hippocampus\n"
    "c1,CN,64,14.2,3.6\n"
    "c2,MCI,73,28.8,3.0\n"
    "c3,AD,77,52.3,2.1\n"
    "c4,CN,69,21.0,3.2\n"
    "c5,MCI,72,35.6,2.8\n"
    "c6,AD,83,66.0,1.9\n",
};

Status Run() {
  mip::federation::MasterNode master;
  const mip::etl::CdeCatalog catalog = mip::etl::DementiaCatalog();

  // --- ETL: ingest, harmonize, load onto the workers -------------------
  const std::string hospitals[3] = {"hospital_a", "hospital_b", "hospital_c"};
  for (int h = 0; h < 3; ++h) {
    MIP_RETURN_NOT_OK(master.AddWorker(hospitals[h]).status());
    MIP_ASSIGN_OR_RETURN(mip::engine::Table raw,
                         mip::etl::ReadCsvString(kHospitalCsv[h]));
    mip::etl::HarmonizationReport report;
    MIP_ASSIGN_OR_RETURN(mip::engine::Table clean,
                         mip::etl::Harmonize(raw, catalog, &report));
    std::printf("[%s] %s", hospitals[h].c_str(),
                report.ToString().c_str());
    MIP_RETURN_NOT_OK(
        master.LoadDataset(hospitals[h], "memory_clinic", std::move(clean)));
  }

  // --- Descriptive analysis (the dashboard's first panel) --------------
  mip::algorithms::DescriptiveSpec desc;
  desc.datasets = {"memory_clinic"};
  desc.variables = {"age", "p_tau", "left_hippocampus"};
  MIP_ASSIGN_OR_RETURN(mip::federation::FederationSession session,
                       master.StartSession({"memory_clinic"}));
  MIP_ASSIGN_OR_RETURN(mip::algorithms::DescriptiveResult stats,
                       mip::algorithms::RunDescriptive(&session, desc));
  std::printf("\n%s\n", stats.ToString().c_str());

  // --- Federated linear regression (plain path) -------------------------
  mip::algorithms::LinearRegressionSpec reg;
  reg.datasets = {"memory_clinic"};
  reg.covariates = {"p_tau", "age"};
  reg.target = "left_hippocampus";
  MIP_ASSIGN_OR_RETURN(mip::federation::FederationSession s2,
                       master.StartSession({"memory_clinic"}));
  MIP_ASSIGN_OR_RETURN(mip::algorithms::LinearRegressionResult fit,
                       mip::algorithms::RunLinearRegression(&s2, reg));
  std::printf("Plain aggregation:\n%s\n", fit.ToString().c_str());

  // --- Same regression, secure (SMPC) path ------------------------------
  reg.mode = mip::federation::AggregationMode::kSecure;
  MIP_ASSIGN_OR_RETURN(mip::federation::FederationSession s3,
                       master.StartSession({"memory_clinic"}));
  MIP_ASSIGN_OR_RETURN(mip::algorithms::LinearRegressionResult secure_fit,
                       mip::algorithms::RunLinearRegression(&s3, reg));
  std::printf("Secure aggregation (SMPC, %s):\n%s",
              master.smpc().config().scheme ==
                      mip::smpc::SmpcScheme::kFullThreshold
                  ? "full threshold"
                  : "Shamir",
              secure_fit.ToString().c_str());
  std::printf(
      "SMPC traffic: %llu bytes over %llu rounds, %llu Beaver triples\n",
      static_cast<unsigned long long>(master.smpc().stats().bytes_transferred),
      static_cast<unsigned long long>(master.smpc().stats().rounds),
      static_cast<unsigned long long>(master.smpc().stats().triples_consumed));
  return Status::OK();
}

}  // namespace

int main() {
  const Status st = Run();
  if (!st.ok()) {
    std::fprintf(stderr, "quickstart failed: %s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}
