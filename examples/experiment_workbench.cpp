// The user-facing workflow of the paper's dashboard (Figure 3), scripted:
// browse the Data Catalogue, check the Available Algorithms panel, create
// experiments with dashboard-style parameters, and review "My Experiments".
//
// Build & run:  ./build/examples/experiment_workbench

#include <cstdio>

#include "common/status.h"
#include "data/synthetic.h"
#include "federation/master.h"
#include "platform/experiment.h"

namespace {

using mip::Status;
using mip::platform::ExperimentRecord;
using mip::platform::ExperimentSpec;

Status Run() {
  mip::federation::MasterNode master;
  MIP_RETURN_NOT_OK(mip::data::SetupAlzheimerFederation(&master));
  mip::platform::ExperimentManager manager(&master);
  const std::vector<std::string> datasets = {"edsd_brescia", "edsd_lausanne",
                                             "edsd_lille", "adni"};

  // --- Data Catalogue tab ------------------------------------------------
  MIP_ASSIGN_OR_RETURN(mip::platform::DataCatalogue catalogue,
                       mip::platform::DataCatalogue::Build(&master));
  std::printf("%s\n", catalogue.ToString().c_str());

  // --- Available Algorithms panel -----------------------------------------
  std::printf("Available Algorithms:\n ");
  for (const std::string& name : manager.registry()->Names()) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\n\n");

  // --- Create Experiment: exploration first --------------------------------
  {
    ExperimentSpec spec;
    spec.algorithm = "histogram";
    spec.datasets = datasets;
    spec.params["variable"] = "mmse";
    spec.params["bins"] = "8";
    spec.params["privacy_threshold"] = "10";
    MIP_ASSIGN_OR_RETURN(std::string id, manager.Submit(spec));
    MIP_ASSIGN_OR_RETURN(ExperimentRecord record, manager.Get(id));
    std::printf("[%s] histogram -> %s\n%s\n", id.c_str(),
                ExperimentStatusName(record.status),
                record.result.c_str());
  }

  // --- k-means with the dashboard's parameters (Figure 3 right panel) -----
  {
    ExperimentSpec spec;
    spec.algorithm = "kmeans";
    spec.datasets = datasets;
    spec.list_params["variables"] = {"abeta42", "p_tau",
                                     "left_entorhinal_area"};
    spec.params["k"] = "3";
    spec.params["iterations_max_number"] = "1000";
    spec.params["standardize"] = "true";
    spec.mode = mip::federation::AggregationMode::kSecure;
    MIP_ASSIGN_OR_RETURN(std::string id, manager.Submit(spec));
    MIP_ASSIGN_OR_RETURN(ExperimentRecord record, manager.Get(id));
    std::printf("[%s] kmeans (secure) -> %s, %.1f ms\n%s\n", id.c_str(),
                ExperimentStatusName(record.status), record.runtime_ms,
                record.result.c_str());
  }

  // --- A failing experiment is recorded, not fatal -------------------------
  {
    ExperimentSpec spec;
    spec.algorithm = "linear_regression";
    spec.datasets = datasets;  // missing covariates/target on purpose
    MIP_ASSIGN_OR_RETURN(std::string id, manager.Submit(spec));
    MIP_ASSIGN_OR_RETURN(ExperimentRecord record, manager.Get(id));
    std::printf("[%s] linear_regression -> %s (%s)\n\n", id.c_str(),
                ExperimentStatusName(record.status), record.error.c_str());
  }

  // --- My Experiments tab ---------------------------------------------------
  std::printf("My Experiments:\n");
  for (const ExperimentRecord& record : manager.List()) {
    std::printf("  %-8s %-22s %-10s %8.1f ms\n", record.id.c_str(),
                record.spec.algorithm.c_str(),
                ExperimentStatusName(record.status), record.runtime_ms);
  }
  return Status::OK();
}

}  // namespace

int main() {
  const Status st = Run();
  if (!st.ok()) {
    std::fprintf(stderr, "experiment_workbench failed: %s\n",
                 st.ToString().c_str());
    return 1;
  }
  return 0;
}
