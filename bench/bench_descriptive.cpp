// Experiment E1 — the dashboard's "Descriptive Analysis" panel (Figure 3).
//
// Regenerates the per-dataset statistics table (datapoints, NA, SE, mean,
// min, Q1, Q2, Q3, max) for the case-study variables across the four
// federated sites, exactly the rows the MIP dashboard renders, and compares
// the plain and secure aggregation paths.

#include <cmath>
#include <cstdio>

#include "algorithms/descriptive.h"
#include "common/stopwatch.h"
#include "data/synthetic.h"
#include "federation/master.h"

int main() {
  std::printf("=== E1: Descriptive Analysis panel (paper Figure 3) ===\n\n");
  mip::federation::MasterNode master;
  if (!mip::data::SetupAlzheimerFederation(&master).ok()) return 1;
  const std::vector<std::string> datasets = {"edsd_brescia", "edsd_lausanne",
                                             "edsd_lille", "adni"};

  mip::algorithms::DescriptiveSpec spec;
  spec.datasets = datasets;
  spec.variables = {"p_tau", "abeta42", "left_entorhinal_area",
                    "left_hippocampus", "mmse"};

  auto session = master.StartSession(datasets);
  if (!session.ok()) return 1;
  mip::Stopwatch sw;
  auto result = mip::algorithms::RunDescriptive(&session.ValueOrDie(), spec);
  const double plain_ms = sw.ElapsedMillis();
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf(
      "%-22s %-14s %10s %6s %8s %9s %9s %9s %9s %9s %9s\n", "variable",
      "dataset", "datapoints", "NA", "SE", "mean", "min", "Q1", "Q2", "Q3",
      "max");
  for (const auto& row : result.ValueOrDie().per_dataset) {
    std::printf(
        "%-22s %-14s %10lld %6lld %8.3f %9.3f %9.3f %9.3f %9.3f %9.3f "
        "%9.3f\n",
        row.variable.c_str(), row.dataset.c_str(),
        static_cast<long long>(row.datapoints),
        static_cast<long long>(row.na), row.se, row.mean, row.min, row.q1,
        row.q2, row.q3, row.max);
  }
  std::printf("\nFederated rows (all datasets combined; quartiles are not "
              "derivable from aggregates):\n");
  std::printf("%-22s %-14s %10s %6s %8s %9s %9s %9s\n", "variable", "dataset",
              "datapoints", "NA", "SE", "mean", "min", "max");
  for (const auto& row : result.ValueOrDie().federated) {
    std::printf("%-22s %-14s %10lld %6lld %8.3f %9.3f %9.3f %9.3f\n",
                row.variable.c_str(), row.dataset.c_str(),
                static_cast<long long>(row.datapoints),
                static_cast<long long>(row.na), row.se, row.mean, row.min,
                row.max);
  }

  // Secure path for the same panel.
  spec.mode = mip::federation::AggregationMode::kSecure;
  auto s2 = master.StartSession(datasets);
  master.smpc().ResetStats();
  sw.Reset();
  auto secure = mip::algorithms::RunDescriptive(&s2.ValueOrDie(), spec);
  const double secure_ms = sw.ElapsedMillis();
  if (!secure.ok()) return 1;
  double max_mean_diff = 0;
  for (size_t v = 0; v < result.ValueOrDie().federated.size(); ++v) {
    max_mean_diff = std::max(
        max_mean_diff,
        std::fabs(result.ValueOrDie().federated[v].mean -
                  secure.ValueOrDie().federated[v].mean));
  }
  std::printf(
      "\nplain path: %.2f ms | secure path: %.2f ms (%.1fx), "
      "max |mean diff| = %.2e (fixed-point), SMPC bytes = %llu\n",
      plain_ms, secure_ms, secure_ms / plain_ms, max_mean_diff,
      static_cast<unsigned long long>(
          master.smpc().stats().bytes_transferred));

  // --- The literal Figure 3 panel: edsd / edsd-synthdata / ppmi ---------
  // The paper's screenshot shows leftententorhinalarea means of ~1.534 /
  // 1.536 / 1.704 across those three datasets; our generators reproduce
  // that layout (PPMI's healthier, younger cohort has larger volumes).
  {
    mip::federation::MasterNode fig3;
    if (!fig3.AddWorker("edsd_node").ok()) return 1;
    if (!fig3.AddWorker("synth_node").ok()) return 1;
    if (!fig3.AddWorker("ppmi_node").ok()) return 1;
    mip::data::DementiaCohortConfig edsd_config;
    edsd_config.num_patients = 474;  // the screenshot's caseload
    edsd_config.seed = 20240325;
    mip::data::DementiaCohortConfig synth_config = edsd_config;
    synth_config.num_patients = 1000;
    synth_config.seed = 20240326;
    (void)fig3.LoadDataset("edsd_node", "edsd",
                           *mip::data::GenerateDementiaCohort(edsd_config));
    (void)fig3.LoadDataset("synth_node", "edsd_synthdata",
                           *mip::data::GenerateDementiaCohort(synth_config));
    (void)fig3.LoadDataset("ppmi_node", "ppmi",
                           *mip::data::GeneratePpmiCohort(714, 20240327));
    mip::algorithms::DescriptiveSpec panel;
    panel.datasets = {"edsd", "edsd_synthdata", "ppmi"};
    panel.variables = {"left_entorhinal_area"};
    auto s3 = fig3.StartSession(panel.datasets);
    auto fig3_result =
        mip::algorithms::RunDescriptive(&s3.ValueOrDie(), panel);
    if (!fig3_result.ok()) return 1;
    std::printf("\nFigure 3 panel, leftententorhinalarea across "
                "edsd / edsd-synthdata / ppmi:\n");
    std::printf("%-18s %12s %6s %8s %8s %8s %8s %8s %8s\n", "dataset",
                "datapoints", "NA", "mean", "min", "Q1", "Q2", "Q3", "max");
    for (const auto& row : fig3_result.ValueOrDie().per_dataset) {
      std::printf("%-18s %12lld %6lld %8.3f %8.3f %8.3f %8.3f %8.3f %8.3f\n",
                  row.dataset.c_str(),
                  static_cast<long long>(row.datapoints),
                  static_cast<long long>(row.na), row.mean, row.min, row.q1,
                  row.q2, row.q3, row.max);
    }
    std::printf("(paper screenshot means: 1.534 / 1.536 / 1.704 — the PPMI "
                "column sits visibly higher, as here)\n");
  }
  std::printf(
      "\nShape vs paper: per-dataset panels match the dashboard layout; "
      "secure mode reproduces the same aggregates through SMPC at a "
      "modest constant overhead.\n");
  return 0;
}
