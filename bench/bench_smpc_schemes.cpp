// Experiment E4 — the paper's security-efficiency trade-off: "FT is very
// secure ... but computations are slow with FT. Shamir's secret sharing
// scheme is much faster, but is secure only against honest-but-curious
// threat models."
//
// Sweeps aggregate-vector size for both schemes and reports online wall
// time, bytes moved, protocol rounds and the simulated-network latency, for
// the sum aggregation (the federated-learning workhorse) and for products
// (where FT pays for Beaver triples + MAC arithmetic).

#include <cstdio>
#include <vector>

#include "common/stopwatch.h"
#include "smpc/cluster.h"

namespace {

struct RunCost {
  double wall_ms;
  double net_ms;
  unsigned long long bytes;
  unsigned long long rounds;
};

RunCost RunOnce(mip::smpc::SmpcScheme scheme, size_t n, int contributions,
                mip::smpc::SmpcOp op) {
  mip::smpc::SmpcConfig config;
  config.scheme = scheme;
  config.num_nodes = 3;
  config.threshold = 1;
  mip::smpc::SmpcCluster cluster(config);
  if (op == mip::smpc::SmpcOp::kProduct) {
    cluster.PrecomputeTriples(n * static_cast<size_t>(contributions));
    cluster.ResetStats();
  }
  std::vector<double> values(n);
  for (size_t i = 0; i < n; ++i) values[i] = 0.001 * static_cast<double>(i);
  mip::Stopwatch sw;
  for (int c = 0; c < contributions; ++c) {
    (void)cluster.ImportShares("job", values);
  }
  (void)cluster.Compute("job", op);
  RunCost cost;
  cost.wall_ms = sw.ElapsedMillis();
  cost.net_ms = cluster.stats().SimulatedNetworkSeconds(config) * 1e3;
  cost.bytes = cluster.stats().bytes_transferred;
  cost.rounds = cluster.stats().rounds;
  return cost;
}

void Sweep(const char* title, mip::smpc::SmpcOp op,
           const std::vector<size_t>& sizes) {
  std::printf("--- %s ---\n", title);
  std::printf("%10s | %12s %12s %10s %8s | %12s %12s %10s %8s | %8s\n",
              "vector n", "FT wall ms", "FT net ms", "FT bytes", "FT rnd",
              "SH wall ms", "SH net ms", "SH bytes", "SH rnd", "FT/SH");
  for (size_t n : sizes) {
    const RunCost ft = RunOnce(mip::smpc::SmpcScheme::kFullThreshold, n, 4, op);
    const RunCost sh = RunOnce(mip::smpc::SmpcScheme::kShamir, n, 4, op);
    std::printf(
        "%10zu | %12.3f %12.2f %10llu %8llu | %12.3f %12.2f %10llu %8llu | "
        "%7.2fx\n",
        n, ft.wall_ms, ft.net_ms, ft.bytes, ft.rounds, sh.wall_ms, sh.net_ms,
        sh.bytes, sh.rounds, ft.wall_ms / std::max(sh.wall_ms, 1e-9));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("=== E4: full threshold vs Shamir (4 contributions, 3 SMPC "
              "nodes) ===\n\n");
  Sweep("secure SUM (gradient/metric aggregation)", mip::smpc::SmpcOp::kSum,
        {100, 1000, 10000, 100000});
  Sweep("secure PRODUCT (Beaver triples on FT, resharing on Shamir)",
        mip::smpc::SmpcOp::kProduct, {100, 1000, 5000});
  std::printf(
      "Shape vs paper: FT moves ~2x the bytes (value + MAC shares), adds "
      "MAC-check\nrounds, and consumes a Beaver triple per multiplication — "
      "consistently slower\nthan Shamir at every size, while Shamir only "
      "resists honest-but-curious\nadversaries (see the tamper tests). The "
      "data owner picks the trade-off.\n");
  return 0;
}
