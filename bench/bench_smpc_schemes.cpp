// Experiment E4 — the paper's security-efficiency trade-off: "FT is very
// secure ... but computations are slow with FT. Shamir's secret sharing
// scheme is much faster, but is secure only against honest-but-curious
// threat models."
//
// Sweeps aggregate-vector size for both schemes and reports online wall
// time, bytes moved, protocol rounds and the simulated-network latency, for
// the sum aggregation (the federated-learning workhorse) and for products
// (where FT pays for Beaver triples + MAC arithmetic).
//
// Also sweeps the number of contributing sites (10 -> 50 -> 100) for the
// secure sum — the paper's 100-hospital scenario — and reports per-site
// cost, which must stay ~flat (sublinear growth) as sites are added: share
// import is batched per site and pipelined through the columnar wire
// format, so adding sites adds work linearly while per-site cost does not
// grow.
//
// Writes machine-readable results to BENCH_smpc.json in the current
// directory (ci/run_tests.sh smoke-parses it).

#include <algorithm>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/parallel.h"
#include "common/stopwatch.h"
#include "smpc/cluster.h"
#include "smpc/spdz.h"

namespace {

struct RunCost {
  double wall_ms;
  double net_ms;
  unsigned long long bytes;
  unsigned long long rounds;
};

RunCost RunOnce(mip::smpc::SmpcScheme scheme, size_t n, int contributions,
                mip::smpc::SmpcOp op) {
  mip::smpc::SmpcConfig config;
  config.scheme = scheme;
  config.num_nodes = 3;
  config.threshold = 1;
  mip::smpc::SmpcCluster cluster(config);
  if (op == mip::smpc::SmpcOp::kProduct) {
    cluster.PrecomputeTriples(n * static_cast<size_t>(contributions));
    cluster.ResetStats();
  }
  std::vector<double> values(n);
  for (size_t i = 0; i < n; ++i) values[i] = 0.001 * static_cast<double>(i);
  mip::Stopwatch sw;
  for (int c = 0; c < contributions; ++c) {
    (void)cluster.ImportShares("job", values);
  }
  (void)cluster.Compute("job", op);
  RunCost cost;
  cost.wall_ms = sw.ElapsedMillis();
  cost.net_ms = cluster.stats().SimulatedNetworkSeconds(config) * 1e3;
  cost.bytes = cluster.stats().bytes_transferred;
  cost.rounds = cluster.stats().rounds;
  return cost;
}

void Sweep(const char* title, mip::smpc::SmpcOp op,
           const std::vector<size_t>& sizes) {
  std::printf("--- %s ---\n", title);
  std::printf("%10s | %12s %12s %10s %8s | %12s %12s %10s %8s | %8s\n",
              "vector n", "FT wall ms", "FT net ms", "FT bytes", "FT rnd",
              "SH wall ms", "SH net ms", "SH bytes", "SH rnd", "FT/SH");
  for (size_t n : sizes) {
    const RunCost ft = RunOnce(mip::smpc::SmpcScheme::kFullThreshold, n, 4, op);
    const RunCost sh = RunOnce(mip::smpc::SmpcScheme::kShamir, n, 4, op);
    std::printf(
        "%10zu | %12.3f %12.2f %10llu %8llu | %12.3f %12.2f %10llu %8llu | "
        "%7.2fx\n",
        n, ft.wall_ms, ft.net_ms, ft.bytes, ft.rounds, sh.wall_ms, sh.net_ms,
        sh.bytes, sh.rounds, ft.wall_ms / std::max(sh.wall_ms, 1e-9));
  }
  std::printf("\n");
}

struct SitePoint {
  int sites;
  double wall_ms;
  double per_site_ms;
  unsigned long long bytes;
};

/// Secure sum with `sites` contributing data owners on a fixed 3-node SMPC
/// cluster (the paper's deployment shape: hospitals contribute, a small
/// cluster computes). Batched kernels + morsel parallelism + pipelined
/// columnar share distribution.
SitePoint RunSites(int sites, size_t n, mip::ThreadPool* pool) {
  mip::smpc::SmpcConfig config;
  config.scheme = mip::smpc::SmpcScheme::kFullThreshold;
  config.num_nodes = 3;
  config.threshold = 1;
  config.pool = pool;
  mip::smpc::SmpcCluster cluster(config);
  std::vector<double> values(n);
  for (size_t i = 0; i < n; ++i) {
    values[i] = 0.25 + 0.001 * static_cast<double>(i % 97);
  }
  mip::Stopwatch sw;
  for (int s = 0; s < sites; ++s) {
    (void)cluster.ImportShares("study", values);
  }
  (void)cluster.Compute("study", mip::smpc::SmpcOp::kSum);
  SitePoint pt;
  pt.sites = sites;
  pt.wall_ms = sw.ElapsedMillis();
  pt.per_site_ms = pt.wall_ms / sites;
  pt.bytes = cluster.stats().bytes_transferred;
  return pt;
}

}  // namespace

int main() {
  std::printf("=== E4: full threshold vs Shamir (4 contributions, 3 SMPC "
              "nodes) ===\n\n");
  Sweep("secure SUM (gradient/metric aggregation)", mip::smpc::SmpcOp::kSum,
        {100, 1000, 10000, 100000});
  Sweep("secure PRODUCT (Beaver triples on FT, resharing on Shamir)",
        mip::smpc::SmpcOp::kProduct, {100, 1000, 5000});

  // --- Site-count sweep: the 100-hospital secure sum. ---
  const unsigned hw = std::max(2u, std::thread::hardware_concurrency());
  mip::ThreadPool pool(static_cast<int>(hw));
  const size_t kElems = 10000;
  std::printf("--- secure SUM vs number of contributing sites (FT, %zu "
              "elements/site) ---\n",
              kElems);
  std::printf("%8s | %12s | %14s | %12s\n", "sites", "wall ms", "per-site ms",
              "bytes");
  std::vector<SitePoint> site_points;
  for (int sites : {10, 50, 100}) {
    // Warm-up run then measured run: steady-state is the serving regime.
    (void)RunSites(sites, kElems, &pool);
    const SitePoint pt = RunSites(sites, kElems, &pool);
    site_points.push_back(pt);
    std::printf("%8d | %12.2f | %14.3f | %12llu\n", pt.sites, pt.wall_ms,
                pt.per_site_ms, pt.bytes);
  }
  const double ratio =
      site_points.back().per_site_ms / site_points.front().per_site_ms;
  std::printf("per-site cost at 100 sites vs 10 sites: %.2fx "
              "(sublinear: %s)\n\n",
              ratio, ratio < 10.0 ? "yes" : "NO");

  // --- Offline dealer ablation (small, for the JSON; bench_spdz_offline
  // is the full-size version). ---
  const size_t kTriples = 100000;
  double scalar_ms = 1e30, batched_ms = 1e30;
  {
    mip::smpc::SpdzDealer dealer(3, 77);
    for (int rep = 0; rep < 3; ++rep) {
      mip::Stopwatch sw;
      dealer.PrecomputeTriplesScalar(kTriples);
      scalar_ms = std::min(scalar_ms, sw.ElapsedMillis());
      (void)dealer.TakeTriples(kTriples);
    }
  }
  {
    mip::smpc::SpdzDealer dealer(3, 77);
    mip::smpc::VecExec exec{&pool, 16384};
    for (int rep = 0; rep < 3; ++rep) {
      mip::Stopwatch sw;
      dealer.PrecomputeTriples(kTriples, exec);
      batched_ms = std::min(batched_ms, sw.ElapsedMillis());
      (void)dealer.TakeTriples(kTriples);
    }
  }
  std::printf("offline dealer, %zu triples: scalar %.1f ms, batched %.1f ms "
              "(%.2fx)\n\n",
              kTriples, scalar_ms, batched_ms, scalar_ms / batched_ms);

  // --- Machine-readable output for CI. ---
  if (std::FILE* f = std::fopen("BENCH_smpc.json", "w")) {
    std::fprintf(f, "{\n  \"sites_sweep\": [\n");
    for (size_t i = 0; i < site_points.size(); ++i) {
      const SitePoint& pt = site_points[i];
      std::fprintf(f,
                   "    {\"sites\": %d, \"wall_ms\": %.3f, \"per_site_ms\": "
                   "%.4f, \"bytes\": %llu}%s\n",
                   pt.sites, pt.wall_ms, pt.per_site_ms, pt.bytes,
                   i + 1 < site_points.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f,
                 "  \"per_site_100_vs_10\": %.4f,\n  \"sublinear\": %s,\n",
                 ratio, ratio < 10.0 ? "true" : "false");
    std::fprintf(f,
                 "  \"spdz_offline\": {\"triples\": %zu, \"scalar_ms\": %.3f, "
                 "\"batched_ms\": %.3f, \"speedup\": %.3f}\n}\n",
                 kTriples, scalar_ms, batched_ms, scalar_ms / batched_ms);
    std::fclose(f);
    std::printf("wrote BENCH_smpc.json\n\n");
  } else {
    std::fprintf(stderr, "could not write BENCH_smpc.json\n");
    return 1;
  }

  std::printf(
      "Shape vs paper: FT moves ~2x the bytes (value + MAC shares), adds "
      "MAC-check\nrounds, and consumes a Beaver triple per multiplication — "
      "consistently slower\nthan Shamir at every size, while Shamir only "
      "resists honest-but-curious\nadversaries (see the tamper tests). The "
      "data owner picks the trade-off.\n");
  return 0;
}
