// Experiment E3 — the introduction's case study "Federated analyses in
// Alzheimer's disease": quantifies that running the two named algorithms
// (k-means and linear regression) federated over the four sites gives the
// same science as pooling would, without moving the data.
//
// Reported: centroid agreement between federated and pooled k-means,
// coefficient agreement for the volume model, and the per-site vs pooled
// caseload.

#include <cmath>
#include <cstdio>

#include "algorithms/kmeans.h"
#include "algorithms/linear_regression.h"
#include "common/stopwatch.h"
#include "data/synthetic.h"
#include "federation/master.h"

namespace {

// Greedy centroid matching distance (both k x d in the same units).
double CentroidAgreement(const mip::stats::Matrix& a,
                         const mip::stats::Matrix& b) {
  double worst = 0;
  for (size_t i = 0; i < a.rows(); ++i) {
    double best = 1e300;
    for (size_t j = 0; j < b.rows(); ++j) {
      double d = 0;
      for (size_t c = 0; c < a.cols(); ++c) {
        d += (a(i, c) - b(j, c)) * (a(i, c) - b(j, c));
      }
      best = std::min(best, std::sqrt(d));
    }
    worst = std::max(worst, best);
  }
  return worst;
}

}  // namespace

int main() {
  std::printf("=== E3: the Alzheimer's case study, federated vs pooled ===\n\n");

  // Federated setup: the paper's four sites.
  mip::federation::MasterNode fed;
  if (!mip::data::SetupAlzheimerFederation(&fed).ok()) return 1;
  const std::vector<std::string> datasets = {"edsd_brescia", "edsd_lausanne",
                                             "edsd_lille", "adni"};
  std::printf("%-14s %10s\n", "site", "patients");
  size_t total = 0;
  for (const auto& site : mip::data::AlzheimerCaseStudySites()) {
    std::printf("%-14s %10lld\n", site.worker_id.c_str(),
                static_cast<long long>(site.patients));
    total += static_cast<size_t>(site.patients);
  }
  std::printf("%-14s %10zu  (analysis runs on the overall caseload)\n\n",
              "total", total);

  // Pooled control: one node holding everything (what a data-sharing world
  // would do — the thing MIP exists to avoid).
  mip::federation::MasterNode pooled;
  (void)pooled.AddWorker("pool");
  {
    std::vector<mip::engine::Table> parts;
    for (const auto& site : mip::data::AlzheimerCaseStudySites()) {
      parts.push_back(*fed.GetWorker(site.worker_id)
                           ->db()
                           .GetTable(site.dataset));
    }
    (void)pooled.LoadDataset("pool", "all", *mip::engine::Table::Concat(parts));
  }

  // --- k-means on the biomarker triplet --------------------------------
  mip::algorithms::KMeansSpec km;
  km.variables = {"abeta42", "p_tau", "left_entorhinal_area"};
  km.k = 3;
  km.standardize = true;
  km.seed = 11;

  km.datasets = datasets;
  auto fs = fed.StartSession(datasets);
  mip::Stopwatch sw;
  auto fed_km = mip::algorithms::RunKMeans(&fs.ValueOrDie(), km);
  const double fed_km_ms = sw.ElapsedMillis();

  km.datasets = {"all"};
  auto ps = pooled.StartSession({"all"});
  sw.Reset();
  auto pool_km = mip::algorithms::RunKMeans(&ps.ValueOrDie(), km);
  const double pool_km_ms = sw.ElapsedMillis();
  if (!fed_km.ok() || !pool_km.ok()) return 1;

  const double agreement = CentroidAgreement(fed_km.ValueOrDie().centroids,
                                             pool_km.ValueOrDie().centroids);
  std::printf("k-means (Abeta42, pTau, entorhinal), k = 3:\n");
  std::printf("  federated: %d iterations, inertia %.0f, %.1f ms\n",
              fed_km.ValueOrDie().iterations, fed_km.ValueOrDie().inertia,
              fed_km_ms);
  std::printf("  pooled:    %d iterations, inertia %.0f, %.1f ms\n",
              pool_km.ValueOrDie().iterations, pool_km.ValueOrDie().inertia,
              pool_km_ms);
  std::printf("  worst centroid disagreement: %.2e (identical clustering)\n\n",
              agreement);

  // --- Linear regression: volumes ~ biomarkers + age --------------------
  mip::algorithms::LinearRegressionSpec reg;
  reg.covariates = {"age", "abeta42", "p_tau"};
  reg.target = "left_hippocampus";

  reg.datasets = datasets;
  auto fs2 = fed.StartSession(datasets);
  auto fed_reg = mip::algorithms::RunLinearRegression(&fs2.ValueOrDie(), reg);
  reg.datasets = {"all"};
  auto ps2 = pooled.StartSession({"all"});
  auto pool_reg = mip::algorithms::RunLinearRegression(&ps2.ValueOrDie(),
                                                       reg);
  if (!fed_reg.ok() || !pool_reg.ok()) return 1;
  double coef_diff = 0;
  for (size_t i = 0; i < fed_reg.ValueOrDie().coefficients.size(); ++i) {
    coef_diff = std::max(
        coef_diff,
        std::fabs(fed_reg.ValueOrDie().coefficients[i].estimate -
                  pool_reg.ValueOrDie().coefficients[i].estimate));
  }
  std::printf("linear regression (hippocampus ~ age + abeta42 + p_tau):\n");
  std::printf("  federated R^2 = %.4f | pooled R^2 = %.4f | max coefficient "
              "difference = %.2e\n\n",
              fed_reg.ValueOrDie().r_squared,
              pool_reg.ValueOrDie().r_squared, coef_diff);

  std::printf(
      "Shape vs paper: both case-study algorithms reproduce the pooled "
      "analysis\nexactly while every record stays at its hospital — the "
      "platform's core value\nproposition demonstrated end to end.\n");
  return 0;
}
