// Experiment E14 — compressed columnar wire format for federated transfers.
//
// Two payload shapes bracket the codec design space:
//   * a dictionary-friendly clinical table (low-cardinality site/diagnosis
//     strings, sequential visit ids, boolean flags, sparse nulls) — the
//     fetch_table / merge-table pushdown traffic of a real study, where the
//     light-weight codecs must win big (acceptance: >= 2x fewer bytes);
//   * a pure-double weight vector — the gradient traffic of federated
//     training, where random mantissas are incompressible and the measured
//     fallback must keep the wire size within 5% of raw (acceptance: the
//     codec path never costs more than the fixed-width layout).
//
// Results are printed and also written to BENCH_net.json (in the working
// directory) for the CI smoke step.

#include <cstdio>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "engine/table.h"
#include "federation/transfer.h"

namespace {

using mip::BufferReader;
using mip::BufferWriter;
using mip::Rng;
using mip::engine::DataType;
using mip::engine::Schema;
using mip::engine::Table;
using mip::engine::Value;
using mip::federation::TransferData;

constexpr size_t kTableRows = 20000;
constexpr size_t kVectorLen = 100000;

/// The E3-style cohort shape: per-visit rows with hospital site, diagnosis
/// code, visit counter, a measured score and a handful of boolean flags.
Table MakeClinicalTable() {
  Schema schema;
  (void)schema.AddField({"site", DataType::kString});
  (void)schema.AddField({"diagnosis", DataType::kString});
  (void)schema.AddField({"visit_id", DataType::kInt64});
  (void)schema.AddField({"age", DataType::kInt64});
  (void)schema.AddField({"score", DataType::kFloat64});
  (void)schema.AddField({"on_medication", DataType::kBool});

  const std::vector<std::string> sites = {"athens", "paris", "madrid",
                                          "lyon", "genoa"};
  const std::vector<std::string> codes = {"AD", "MCI", "control",
                                          "epilepsy_focal",
                                          "epilepsy_general"};
  Rng rng(0xE14);
  Table t = Table::Empty(schema);
  for (size_t i = 0; i < kTableRows; ++i) {
    const bool null_score = rng.NextBounded(64) == 0;
    (void)t.AppendRow(
        {Value::String(sites[rng.NextBounded(sites.size())]),
         Value::String(codes[rng.NextBounded(codes.size())]),
         Value::Int(static_cast<int64_t>(1000000 + i)),
         Value::Int(static_cast<int64_t>(40 + rng.NextBounded(50))),
         null_score ? Value::Null()
                    : Value::Double(static_cast<double>(rng.NextBounded(400)) *
                                    0.25),
         Value::Bool(rng.NextBounded(4) != 0)});
  }
  return t;
}

struct WireMeasurement {
  size_t raw_bytes = 0;
  size_t wire_bytes = 0;
  double encode_ms = 0.0;
  double decode_ms = 0.0;
  double Ratio() const {
    return wire_bytes > 0 ? static_cast<double>(raw_bytes) /
                                static_cast<double>(wire_bytes)
                          : 1.0;
  }
};

WireMeasurement MeasureTransfer(const TransferData& t) {
  WireMeasurement m;
  m.raw_bytes = t.RawSerializedBytes();
  BufferWriter w;
  mip::Stopwatch enc;
  t.Serialize(&w, /*codecs=*/true);
  m.encode_ms = enc.ElapsedMillis();
  m.wire_bytes = w.size();
  BufferReader r(w.bytes().data(), w.size());
  mip::Stopwatch dec;
  auto back = TransferData::Deserialize(&r);
  m.decode_ms = dec.ElapsedMillis();
  if (!back.ok()) {
    std::printf("DECODE FAILED: %s\n", back.status().ToString().c_str());
    m.wire_bytes = 0;
  }
  return m;
}

void PrintMeasurement(const char* label, const WireMeasurement& m) {
  std::printf(
      "%-18s raw %9zu B -> wire %9zu B  (%5.2fx)  encode %6.2f ms  "
      "decode %6.2f ms\n",
      label, m.raw_bytes, m.wire_bytes, m.Ratio(), m.encode_ms, m.decode_ms);
}

}  // namespace

int main() {
  std::printf("=== E14: columnar wire codecs — bytes on the wire ===\n");
  std::printf("%zu-row clinical table vs %zu-element double vector\n\n",
              kTableRows, kVectorLen);

  // Dictionary-friendly table transfer.
  TransferData table_payload;
  table_payload.PutTable("cohort", MakeClinicalTable());
  const WireMeasurement table_m = MeasureTransfer(table_payload);
  PrintMeasurement("clinical table", table_m);

  // Pure-double gradient vector: random mantissas, incompressible.
  Rng rng(0xF14);
  std::vector<double> weights(kVectorLen);
  for (double& w : weights) w = rng.NextDouble() * 2.0 - 1.0;
  TransferData vector_payload;
  vector_payload.PutVector("weights", weights);
  const WireMeasurement vector_m = MeasureTransfer(vector_payload);
  PrintMeasurement("double vector", vector_m);

  const bool table_ok = table_m.Ratio() >= 2.0;
  // The measured fallback commits v2 only when smaller, so the wire side
  // can never exceed raw; the 5% band additionally catches a pathological
  // "wins by one byte" outcome where the codec work buys nothing.
  const bool vector_ok =
      vector_m.wire_bytes > 0 &&
      vector_m.wire_bytes <= vector_m.raw_bytes &&
      static_cast<double>(vector_m.raw_bytes - vector_m.wire_bytes) <=
          0.05 * static_cast<double>(vector_m.raw_bytes);

  std::printf("\ndictionary-friendly table: %s (need >= 2.00x, got %.2fx)\n",
              table_ok ? "PASS" : "FAIL", table_m.Ratio());
  std::printf("pure-double vector:        %s (wire within 5%% of raw and "
              "never above it)\n",
              vector_ok ? "PASS" : "FAIL");

  if (std::FILE* f = std::fopen("BENCH_net.json", "w")) {
    std::fprintf(
        f,
        "{\n"
        "  \"experiment\": \"E14\",\n"
        "  \"table\": {\"rows\": %zu, \"raw_bytes\": %zu, "
        "\"wire_bytes\": %zu, \"ratio\": %.3f,\n"
        "            \"encode_ms\": %.3f, \"decode_ms\": %.3f},\n"
        "  \"vector\": {\"len\": %zu, \"raw_bytes\": %zu, "
        "\"wire_bytes\": %zu, \"ratio\": %.3f,\n"
        "             \"encode_ms\": %.3f, \"decode_ms\": %.3f},\n"
        "  \"pass\": %s\n"
        "}\n",
        kTableRows, table_m.raw_bytes, table_m.wire_bytes, table_m.Ratio(),
        table_m.encode_ms, table_m.decode_ms, kVectorLen, vector_m.raw_bytes,
        vector_m.wire_bytes, vector_m.Ratio(), vector_m.encode_ms,
        vector_m.decode_ms, table_ok && vector_ok ? "true" : "false");
    std::fclose(f);
    std::printf("\nwrote BENCH_net.json\n");
  }

  return table_ok && vector_ok ? 0 : 1;
}
