// Experiment E8 — §2 Current status: "The MIP currently integrates 15+
// algorithms for data analysis". Runs the full integrated catalog against
// the standard 4-site Alzheimer's federation and reports wall time and a
// headline result per algorithm — the catalog row of the reproduction.

#include <cstdio>
#include <functional>
#include <string>

#include "algorithms/anova.h"
#include "algorithms/calibration_belt.h"
#include "algorithms/decision_tree.h"
#include "algorithms/descriptive.h"
#include "algorithms/histogram.h"
#include "algorithms/kaplan_meier.h"
#include "algorithms/kmeans.h"
#include "algorithms/linear_regression.h"
#include "algorithms/logistic_regression.h"
#include "algorithms/naive_bayes.h"
#include "algorithms/pca.h"
#include "algorithms/pearson.h"
#include "algorithms/ttest.h"
#include "common/stopwatch.h"
#include "data/synthetic.h"
#include "federation/master.h"

namespace {

using mip::federation::FederationSession;
using mip::federation::MasterNode;

struct CatalogRow {
  std::string name;
  std::function<mip::Result<std::string>(MasterNode*)> run;
};

const std::vector<std::string> kDatasets = {"edsd_brescia", "edsd_lausanne",
                                            "edsd_lille", "adni"};

mip::Result<FederationSession> S(MasterNode* m) {
  return m->StartSession(kDatasets);
}

char buffer[256];

}  // namespace

int main() {
  std::printf("=== E8: the integrated algorithm catalog (4-site Alzheimer "
              "federation, ~5200 patients) ===\n\n");
  MasterNode master;
  if (!mip::data::SetupAlzheimerFederation(&master).ok()) return 1;

  std::vector<CatalogRow> catalog;

  catalog.push_back({"Descriptive statistics", [](MasterNode* m) -> mip::Result<std::string> {
    mip::algorithms::DescriptiveSpec spec;
    spec.datasets = kDatasets;
    spec.variables = {"p_tau", "abeta42", "mmse"};
    MIP_ASSIGN_OR_RETURN(auto s, S(m));
    MIP_ASSIGN_OR_RETURN(auto r, RunDescriptive(&s, spec));
    std::snprintf(buffer, sizeof(buffer), "%zu dashboard rows",
                  r.per_dataset.size() + r.federated.size());
    return std::string(buffer);
  }});
  catalog.push_back({"Histogram", [](MasterNode* m) -> mip::Result<std::string> {
    mip::algorithms::HistogramSpec spec;
    spec.datasets = kDatasets;
    spec.variable = "mmse";
    spec.bins = 10;
    MIP_ASSIGN_OR_RETURN(auto s, S(m));
    MIP_ASSIGN_OR_RETURN(auto r, RunHistogram(&s, spec));
    std::snprintf(buffer, sizeof(buffer), "%zu bins, %lld shown",
                  r.bins.size(), static_cast<long long>(r.total));
    return std::string(buffer);
  }});
  catalog.push_back({"Pearson correlation", [](MasterNode* m) -> mip::Result<std::string> {
    mip::algorithms::PearsonSpec spec;
    spec.datasets = kDatasets;
    spec.variables = {"abeta42", "p_tau", "mmse", "left_hippocampus"};
    MIP_ASSIGN_OR_RETURN(auto s, S(m));
    MIP_ASSIGN_OR_RETURN(auto r, RunPearson(&s, spec));
    MIP_ASSIGN_OR_RETURN(double rho, r.Correlation("abeta42", "p_tau"));
    std::snprintf(buffer, sizeof(buffer), "r(abeta42, p_tau) = %.3f", rho);
    return std::string(buffer);
  }});
  catalog.push_back({"T-test one-sample", [](MasterNode* m) -> mip::Result<std::string> {
    mip::algorithms::TTestOneSampleSpec spec;
    spec.datasets = kDatasets;
    spec.variable = "mmse";
    spec.mu0 = 26.0;
    MIP_ASSIGN_OR_RETURN(auto s, S(m));
    MIP_ASSIGN_OR_RETURN(auto r, RunTTestOneSample(&s, spec));
    std::snprintf(buffer, sizeof(buffer), "t = %.2f, p = %.2g",
                  r.t_statistic, r.p_value);
    return std::string(buffer);
  }});
  catalog.push_back({"T-test independent", [](MasterNode* m) -> mip::Result<std::string> {
    mip::algorithms::TTestIndependentSpec spec;
    spec.datasets = kDatasets;
    spec.variable = "left_hippocampus";
    spec.group_variable = "diagnosis";
    spec.group_a = "AD";
    spec.group_b = "CN";
    MIP_ASSIGN_OR_RETURN(auto s, S(m));
    MIP_ASSIGN_OR_RETURN(auto r, RunTTestIndependent(&s, spec));
    std::snprintf(buffer, sizeof(buffer), "AD-CN diff = %.2f cm3, p = %.2g",
                  r.mean_difference, r.p_value);
    return std::string(buffer);
  }});
  catalog.push_back({"T-test paired", [](MasterNode* m) -> mip::Result<std::string> {
    mip::algorithms::TTestPairedSpec spec;
    spec.datasets = kDatasets;
    spec.variable_a = "left_hippocampus";
    spec.variable_b = "right_hippocampus";
    MIP_ASSIGN_OR_RETURN(auto s, S(m));
    MIP_ASSIGN_OR_RETURN(auto r, RunTTestPaired(&s, spec));
    std::snprintf(buffer, sizeof(buffer), "L-R diff = %.3f cm3, p = %.2g",
                  r.mean_difference, r.p_value);
    return std::string(buffer);
  }});
  catalog.push_back({"ANOVA one-way", [](MasterNode* m) -> mip::Result<std::string> {
    mip::algorithms::AnovaOneWaySpec spec;
    spec.datasets = kDatasets;
    spec.outcome = "p_tau";
    spec.factor = "diagnosis";
    MIP_ASSIGN_OR_RETURN(auto s, S(m));
    MIP_ASSIGN_OR_RETURN(auto r, RunAnovaOneWay(&s, spec));
    std::snprintf(buffer, sizeof(buffer), "F = %.1f, p = %.2g",
                  r.f_statistic, r.p_value);
    return std::string(buffer);
  }});
  catalog.push_back({"ANOVA two-way", [](MasterNode* m) -> mip::Result<std::string> {
    mip::algorithms::AnovaTwoWaySpec spec;
    spec.datasets = kDatasets;
    spec.outcome = "left_hippocampus";
    spec.factor_a = "diagnosis";
    spec.factor_b = "sex";
    spec.levels_a = {"CN", "MCI", "AD"};
    spec.levels_b = {"M", "F"};
    MIP_ASSIGN_OR_RETURN(auto s, S(m));
    MIP_ASSIGN_OR_RETURN(auto r, RunAnovaTwoWay(&s, spec));
    std::snprintf(buffer, sizeof(buffer), "F(dx) = %.1f, F(sex) = %.2f",
                  r.effect_a.f_statistic, r.effect_b.f_statistic);
    return std::string(buffer);
  }});
  catalog.push_back({"Linear regression", [](MasterNode* m) -> mip::Result<std::string> {
    mip::algorithms::LinearRegressionSpec spec;
    spec.datasets = kDatasets;
    spec.covariates = {"age", "abeta42", "p_tau"};
    spec.target = "left_hippocampus";
    MIP_ASSIGN_OR_RETURN(auto s, S(m));
    MIP_ASSIGN_OR_RETURN(auto r, RunLinearRegression(&s, spec));
    std::snprintf(buffer, sizeof(buffer), "R^2 = %.3f (n = %lld)",
                  r.r_squared, static_cast<long long>(r.n));
    return std::string(buffer);
  }});
  catalog.push_back({"Linear regression CV", [](MasterNode* m) -> mip::Result<std::string> {
    mip::algorithms::LinearRegressionSpec spec;
    spec.datasets = kDatasets;
    spec.covariates = {"age", "abeta42", "p_tau"};
    spec.target = "left_hippocampus";
    MIP_ASSIGN_OR_RETURN(auto s, S(m));
    MIP_ASSIGN_OR_RETURN(auto r, RunLinearRegressionCv(&s, spec, 5));
    std::snprintf(buffer, sizeof(buffer), "5-fold RMSE = %.3f", r.mean_rmse);
    return std::string(buffer);
  }});
  catalog.push_back({"Logistic regression", [](MasterNode* m) -> mip::Result<std::string> {
    mip::algorithms::LogisticRegressionSpec spec;
    spec.datasets = kDatasets;
    spec.covariates = {"age", "left_hippocampus", "abeta42", "p_tau"};
    spec.target = "diagnosis";
    spec.positive_class = "AD";
    MIP_ASSIGN_OR_RETURN(auto s, S(m));
    MIP_ASSIGN_OR_RETURN(auto r, RunLogisticRegression(&s, spec));
    std::snprintf(buffer, sizeof(buffer), "accuracy = %.3f in %d iters",
                  r.accuracy, r.iterations);
    return std::string(buffer);
  }});
  catalog.push_back({"Logistic regression CV", [](MasterNode* m) -> mip::Result<std::string> {
    mip::algorithms::LogisticRegressionSpec spec;
    spec.datasets = kDatasets;
    spec.covariates = {"age", "left_hippocampus", "abeta42", "p_tau"};
    spec.target = "diagnosis";
    spec.positive_class = "AD";
    MIP_ASSIGN_OR_RETURN(auto s, S(m));
    MIP_ASSIGN_OR_RETURN(auto r, RunLogisticRegressionCv(&s, spec, 5));
    std::snprintf(buffer, sizeof(buffer), "5-fold accuracy = %.3f",
                  r.mean_accuracy);
    return std::string(buffer);
  }});
  catalog.push_back({"k-means clustering", [](MasterNode* m) -> mip::Result<std::string> {
    mip::algorithms::KMeansSpec spec;
    spec.datasets = kDatasets;
    spec.variables = {"abeta42", "p_tau", "left_entorhinal_area"};
    spec.k = 3;
    spec.standardize = true;
    MIP_ASSIGN_OR_RETURN(auto s, S(m));
    MIP_ASSIGN_OR_RETURN(auto r, RunKMeans(&s, spec));
    std::snprintf(buffer, sizeof(buffer), "%d iterations, inertia = %.0f",
                  r.iterations, r.inertia);
    return std::string(buffer);
  }});
  catalog.push_back({"PCA", [](MasterNode* m) -> mip::Result<std::string> {
    mip::algorithms::PcaSpec spec;
    spec.datasets = kDatasets;
    spec.variables = {"abeta42", "p_tau", "left_entorhinal_area",
                      "left_hippocampus", "mmse"};
    MIP_ASSIGN_OR_RETURN(auto s, S(m));
    MIP_ASSIGN_OR_RETURN(auto r, RunPca(&s, spec));
    std::snprintf(buffer, sizeof(buffer), "PC1 explains %.0f%%",
                  r.explained_ratio[0] * 100);
    return std::string(buffer);
  }});
  catalog.push_back({"Naive Bayes training", [](MasterNode* m) -> mip::Result<std::string> {
    mip::algorithms::NaiveBayesSpec spec;
    spec.datasets = kDatasets;
    spec.numeric_features = {"abeta42", "p_tau", "left_hippocampus"};
    spec.target = "diagnosis";
    MIP_ASSIGN_OR_RETURN(auto s, S(m));
    MIP_ASSIGN_OR_RETURN(auto r, RunNaiveBayes(&s, spec));
    std::snprintf(buffer, sizeof(buffer), "%zu classes, n = %lld",
                  r.classes.size(), static_cast<long long>(r.n));
    return std::string(buffer);
  }});
  catalog.push_back({"Naive Bayes with CV", [](MasterNode* m) -> mip::Result<std::string> {
    mip::algorithms::NaiveBayesSpec spec;
    spec.datasets = kDatasets;
    spec.numeric_features = {"abeta42", "p_tau", "left_hippocampus"};
    spec.target = "diagnosis";
    MIP_ASSIGN_OR_RETURN(auto s, S(m));
    MIP_ASSIGN_OR_RETURN(auto r, RunNaiveBayesCv(&s, spec, 4));
    std::snprintf(buffer, sizeof(buffer), "4-fold accuracy = %.3f",
                  r.mean_accuracy);
    return std::string(buffer);
  }});
  catalog.push_back({"ID3", [](MasterNode* m) -> mip::Result<std::string> {
    mip::algorithms::Id3Spec spec;
    spec.datasets = kDatasets;
    spec.features = {"sex"};
    spec.target = "diagnosis";
    spec.max_depth = 2;
    MIP_ASSIGN_OR_RETURN(auto s, S(m));
    MIP_ASSIGN_OR_RETURN(auto r, RunId3(&s, spec));
    std::snprintf(buffer, sizeof(buffer), "%d nodes, depth %d", r.nodes,
                  r.depth);
    return std::string(buffer);
  }});
  catalog.push_back({"CART", [](MasterNode* m) -> mip::Result<std::string> {
    mip::algorithms::CartSpec spec;
    spec.datasets = kDatasets;
    spec.features = {"abeta42", "p_tau", "left_hippocampus"};
    spec.target = "diagnosis";
    spec.max_depth = 3;
    MIP_ASSIGN_OR_RETURN(auto s, S(m));
    MIP_ASSIGN_OR_RETURN(auto r, RunCart(&s, spec));
    std::snprintf(buffer, sizeof(buffer), "%d nodes, root on %s", r.nodes,
                  r.root->split_feature.c_str());
    return std::string(buffer);
  }});
  catalog.push_back({"Kaplan-Meier estimator", [](MasterNode* m) -> mip::Result<std::string> {
    mip::algorithms::KaplanMeierSpec spec;
    spec.datasets = kDatasets;
    spec.time_variable = "followup_months";
    spec.event_variable = "event";
    spec.group_variable = "diagnosis";
    MIP_ASSIGN_OR_RETURN(auto s, S(m));
    MIP_ASSIGN_OR_RETURN(auto r, RunKaplanMeier(&s, spec));
    std::snprintf(buffer, sizeof(buffer), "%zu survival curves",
                  r.curves.size());
    return std::string(buffer);
  }});
  catalog.push_back({"Calibration Belt", [](MasterNode* m) -> mip::Result<std::string> {
    // The belt runs on a risk cohort loaded onto the first worker.
    if (!m->GetWorker("brescia")->HasDataset("risk")) {
      MIP_ASSIGN_OR_RETURN(auto cohort,
                           mip::data::GenerateRiskCohort(3000, 5, 0.3));
      MIP_RETURN_NOT_OK(m->LoadDataset("brescia", "risk", std::move(cohort)));
    }
    mip::algorithms::CalibrationBeltSpec spec;
    spec.datasets = {"risk"};
    spec.probability_variable = "predicted_prob";
    spec.outcome_variable = "outcome";
    MIP_ASSIGN_OR_RETURN(auto s, m->StartSession({"risk"}));
    MIP_ASSIGN_OR_RETURN(auto r, RunCalibrationBelt(&s, spec));
    std::snprintf(buffer, sizeof(buffer), "degree %d, %s", r.degree,
                  r.covers_diagonal_95 ? "calibrated" : "miscalibrated");
    return std::string(buffer);
  }});

  std::printf("%-26s %10s   %s\n", "algorithm", "wall ms", "headline result");
  std::printf("%-26s %10s   %s\n", "---------", "-------", "---------------");
  int failures = 0;
  for (const CatalogRow& row : catalog) {
    mip::Stopwatch sw;
    auto result = row.run(&master);
    const double ms = sw.ElapsedMillis();
    if (result.ok()) {
      std::printf("%-26s %10.1f   %s\n", row.name.c_str(), ms,
                  result.ValueOrDie().c_str());
    } else {
      std::printf("%-26s %10.1f   FAILED: %s\n", row.name.c_str(), ms,
                  result.status().ToString().c_str());
      ++failures;
    }
  }
  std::printf("\n%zu algorithms integrated (paper: \"15+ algorithms\"); "
              "%d failures.\n",
              catalog.size(), failures);
  return failures == 0 ? 0 : 1;
}
