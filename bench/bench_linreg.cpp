// Experiment E2 — the Figure 2 algorithm: federated linear regression.
//
// Checks (i) exactness: the federated fit equals the pooled fit to machine
// precision on the plain path and to fixed-point precision on the secure
// path; (ii) scaling: wall time and bytes as the federation grows from 1 to
// 8 workers at constant total data.

#include <cmath>
#include <cstdio>

#include "algorithms/linear_regression.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "federation/master.h"

namespace {

using mip::engine::DataType;
using mip::engine::Schema;
using mip::engine::Table;
using mip::engine::Value;

Schema MakeSchema() {
  Schema s;
  (void)s.AddField({"x1", DataType::kFloat64});
  (void)s.AddField({"x2", DataType::kFloat64});
  (void)s.AddField({"x3", DataType::kFloat64});
  (void)s.AddField({"y", DataType::kFloat64});
  return s;
}

Table MakeRows(mip::Rng* rng, int n) {
  Table t = Table::Empty(MakeSchema());
  for (int i = 0; i < n; ++i) {
    const double x1 = rng->NextGaussian();
    const double x2 = rng->NextGaussian();
    const double x3 = rng->NextGaussian();
    const double y = 1.0 + 0.5 * x1 - 2.0 * x2 + 0.25 * x3 +
                     rng->NextGaussian(0, 0.5);
    (void)t.AppendRow({Value::Double(x1), Value::Double(x2), Value::Double(x3),
                       Value::Double(y)});
  }
  return t;
}

}  // namespace

int main() {
  std::printf("=== E2: federated linear regression (paper Figure 2) ===\n\n");
  const int kTotalRows = 40000;

  mip::algorithms::LinearRegressionResult pooled_fit;
  std::printf("%8s %12s %12s %14s %16s %12s\n", "workers", "plain ms",
              "secure ms", "max|b-pooled|", "secure|b-plain|", "bus bytes");

  for (int workers : {1, 2, 4, 8}) {
    mip::Rng rng(777);  // same data stream regardless of the split
    mip::federation::MasterNode master;
    for (int w = 0; w < workers; ++w) {
      (void)master.AddWorker("w" + std::to_string(w));
      (void)master.LoadDataset("w" + std::to_string(w), "d",
                               MakeRows(&rng, kTotalRows / workers));
    }
    mip::algorithms::LinearRegressionSpec spec;
    spec.datasets = {"d"};
    spec.covariates = {"x1", "x2", "x3"};
    spec.target = "y";

    auto s1 = master.StartSession({"d"});
    mip::Stopwatch sw;
    auto plain = mip::algorithms::RunLinearRegression(&s1.ValueOrDie(), spec);
    const double plain_ms = sw.ElapsedMillis();
    if (!plain.ok()) return 1;
    if (workers == 1) pooled_fit = plain.ValueOrDie();

    spec.mode = mip::federation::AggregationMode::kSecure;
    auto s2 = master.StartSession({"d"});
    sw.Reset();
    auto secure = mip::algorithms::RunLinearRegression(&s2.ValueOrDie(),
                                                       spec);
    const double secure_ms = sw.ElapsedMillis();
    if (!secure.ok()) return 1;

    double coef_diff = 0, secure_diff = 0;
    for (size_t i = 0; i < pooled_fit.coefficients.size(); ++i) {
      coef_diff = std::max(
          coef_diff, std::fabs(plain.ValueOrDie().coefficients[i].estimate -
                               pooled_fit.coefficients[i].estimate));
      secure_diff = std::max(
          secure_diff,
          std::fabs(secure.ValueOrDie().coefficients[i].estimate -
                    plain.ValueOrDie().coefficients[i].estimate));
    }
    std::printf("%8d %12.2f %12.2f %14.2e %16.2e %12llu\n", workers, plain_ms,
                secure_ms, coef_diff, secure_diff,
                static_cast<unsigned long long>(master.bus().stats().bytes));
  }
  std::printf(
      "\nShape vs paper: the federated fit is exact (sufficient statistics "
      "are sums);\nper-worker time shrinks with the split while coordination "
      "cost stays constant-size\n(one (p+1)^2 aggregate per worker, "
      "independent of row count).\n");
  return 0;
}
