// Ablation — the SMPC fixed-point encoding (DESIGN.md design choice):
// fractional bits trade numeric fidelity of the opened aggregate against
// representable magnitude (headroom before the field wraps). Sweeps
// frac_bits for a realistic secure-sum workload and reports the worst
// relative error and the remaining magnitude headroom.

#include <cmath>
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "smpc/cluster.h"
#include "smpc/fixed_point.h"

int main() {
  std::printf("=== Ablation: SMPC fixed-point fractional bits ===\n");
  std::printf("secure sum of 8 contributions x 1000 elements, values ~ "
              "N(0, 1000)\n\n");
  std::printf("%10s | %16s | %18s | %14s\n", "frac bits", "max |rel err|",
              "max encodable |x|", "sum headroom");

  for (int bits : {8, 12, 16, 20, 24, 28, 32}) {
    mip::Rng rng(42);
    const int contributions = 8;
    const size_t n = 1000;
    std::vector<std::vector<double>> inputs(
        contributions, std::vector<double>(n));
    std::vector<double> truth(n, 0.0);
    for (auto& v : inputs) {
      for (size_t i = 0; i < n; ++i) {
        v[i] = rng.NextGaussian(0, 1000);
        }
    }
    for (size_t i = 0; i < n; ++i) {
      for (const auto& v : inputs) truth[i] += v[i];
    }

    mip::smpc::SmpcConfig config;
    config.frac_bits = bits;
    mip::smpc::SmpcCluster cluster(config);
    for (const auto& v : inputs) {
      if (!cluster.ImportShares("j", v).ok()) return 1;
    }
    if (!cluster.Compute("j", mip::smpc::SmpcOp::kSum).ok()) return 1;
    const std::vector<double> opened = *cluster.GetResult("j");

    double max_rel = 0;
    for (size_t i = 0; i < n; ++i) {
      const double err = std::fabs(opened[i] - truth[i]);
      max_rel = std::max(max_rel,
                         err / std::max(1.0, std::fabs(truth[i])));
    }
    const mip::smpc::FixedPointCodec codec(bits);
    std::printf("%10d | %16.3e | %18.3e | %13.0fx\n", bits, max_rel,
                codec.MaxMagnitude(),
                codec.MaxMagnitude() / (1000.0 * 8 * 4));
  }
  std::printf(
      "\nReading: each extra fractional bit halves the rounding error and "
      "the magnitude\nheadroom; 20 bits (the default) keeps clinical "
      "aggregates below 1e-6 relative\nerror with ~1e6x headroom before "
      "field wrap-around.\n");
  return 0;
}
