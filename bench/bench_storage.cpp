// Experiment E17 — disk-backed segment store: LSM ingest throughput and
// zone-map pruning on selective scans.
//
// A 2M-row table is ingested through the WAL'd append path (memtable budget
// far below the dataset, so everything lands in ~32 immutable segments on
// disk — the scan works a dataset well beyond its in-memory buffer). The
// bench then measures:
//   * ingest throughput (rows/s through WAL + memtable + flush);
//   * full-scan latency (every segment read and decoded);
//   * selective scans over one id-range, pruned (optimizer pushes the
//     predicate into the scan, zone maps skip non-overlapping segments)
//     vs unpruned (optimizer off: every segment read, filter on top).
//
// Acceptance: pruned and unpruned results identical, pruning skips >= 75%
// of segments, and pruned p50 is at least 2x faster. Results go to
// BENCH_storage.json for the CI smoke step.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "engine/database.h"
#include "engine/expr.h"
#include "engine/table.h"
#include "storage/io.h"
#include "storage/store.h"

namespace {

using mip::LatencyHistogram;
using mip::Rng;
using mip::Stopwatch;
using mip::engine::Column;
using mip::engine::DataType;
using mip::engine::Database;
using mip::engine::Schema;
using mip::engine::Table;

constexpr int64_t kRows = 2'000'000;
constexpr int64_t kBatchRows = 100'000;
constexpr uint64_t kSegmentRows = 64 * 1024;
constexpr int kSelectiveReps = 15;

Table MakeBatch(int64_t start, int64_t count) {
  std::vector<int64_t> ids;
  std::vector<double> vals;
  std::vector<std::string> sites;
  ids.reserve(count);
  vals.reserve(count);
  sites.reserve(count);
  Rng rng(0xE17 + static_cast<uint64_t>(start));
  for (int64_t i = start; i < start + count; ++i) {
    ids.push_back(i);
    vals.push_back(static_cast<double>(rng.NextBounded(100000)) * 0.01);
    sites.push_back("site_" + std::to_string(i % 7));
  }
  Schema schema({{"id", DataType::kInt64},
                 {"val", DataType::kFloat64},
                 {"site", DataType::kString}});
  return Table::Make(schema, {Column::FromInts(std::move(ids)),
                              Column::FromDoubles(std::move(vals)),
                              Column::FromStrings(std::move(sites))})
      .ValueOrDie();
}

}  // namespace

int main() {
  std::printf("=== E17: disk segment store — LSM ingest + zone-map scans ===\n");
  std::printf("%lld rows, %llu-row segments, memtable budget 4 MiB\n\n",
              static_cast<long long>(kRows),
              static_cast<unsigned long long>(kSegmentRows));

  const std::string dir = "bench_storage_data";
  if (mip::storage::FileExists(dir)) {
    if (auto names = mip::storage::ListDir(dir); names.ok()) {
      for (const std::string& f : names.ValueOrDie()) {
        (void)mip::storage::RemoveFile(dir + "/" + f);
      }
    }
  }

  mip::storage::StorageOptions options;
  options.target_segment_rows = kSegmentRows;
  auto opened = mip::storage::StorageEngine::Open(dir, options);
  if (!opened.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 opened.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<mip::storage::StorageEngine> store =
      std::move(opened.ValueOrDie());

  // --- Ingest: WAL-first appends, auto-flushing past the memtable budget.
  Stopwatch ingest_sw;
  for (int64_t start = 0; start < kRows; start += kBatchRows) {
    auto st = store->AppendRows("events", MakeBatch(start, kBatchRows));
    if (!st.ok()) {
      std::fprintf(stderr, "append failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  if (auto st = store->Flush(); !st.ok()) {
    std::fprintf(stderr, "flush failed: %s\n", st.ToString().c_str());
    return 1;
  }
  const double ingest_ms = ingest_sw.ElapsedMillis();
  const double ingest_rows_per_s = 1000.0 * kRows / ingest_ms;
  const uint64_t segments = store->SegmentCount("events").ValueOrDie();
  std::printf("ingest: %lld rows in %.0f ms -> %.0f rows/s, %llu segments\n",
              static_cast<long long>(kRows), ingest_ms, ingest_rows_per_s,
              static_cast<unsigned long long>(segments));

  Database db("benchstore");
  if (auto st = db.AttachStorage(store.get()); !st.ok()) {
    std::fprintf(stderr, "attach failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // --- Full scan: every segment decoded (the beyond-buffer baseline).
  Stopwatch full_sw;
  auto full = db.ExecuteSql("SELECT count(*) AS n, sum(val) AS s FROM events");
  const double full_ms = full_sw.ElapsedMillis();
  if (!full.ok()) {
    std::fprintf(stderr, "full scan failed: %s\n",
                 full.status().ToString().c_str());
    return 1;
  }
  std::printf("full scan: %.1f ms (%lld rows)\n", full_ms,
              static_cast<long long>(full.ValueOrDie().At(0, 0).int_value()));

  // --- Selective scan: one ~64K-id slice out of 2M. Zone maps should skip
  // every segment whose id range misses the slice.
  const int64_t lo = kRows / 2;
  const int64_t hi = lo + static_cast<int64_t>(kSegmentRows);
  const std::string selective_sql =
      "SELECT count(*) AS n, sum(val) AS s FROM events WHERE id >= " +
      std::to_string(lo) + " AND id < " + std::to_string(hi);

  // Prune accounting for the exact pushed-down predicate.
  using mip::engine::Binary;
  using mip::engine::BinaryOp;
  using mip::engine::Col;
  using mip::engine::LitInt;
  auto prune_expr = mip::engine::And(
      Binary(BinaryOp::kGe, Col("id"), LitInt(lo)),
      Binary(BinaryOp::kLt, Col("id"), LitInt(hi)));
  const auto preview = store->PrunePreview("events", prune_expr.get());
  const int64_t pruned_segments = preview.ok() ? preview.ValueOrDie().pruned : 0;
  const int64_t total_segments = preview.ok() ? preview.ValueOrDie().total : 0;

  LatencyHistogram pruned_lat, unpruned_lat;
  std::string pruned_rows, unpruned_rows;
  for (int rep = 0; rep < kSelectiveReps; ++rep) {
    db.set_optimizer_enabled(true);
    Stopwatch sw1;
    auto r1 = db.ExecuteSql(selective_sql);
    pruned_lat.Record(sw1.ElapsedMillis());
    db.set_optimizer_enabled(false);  // no pushdown -> no prune hint
    Stopwatch sw2;
    auto r2 = db.ExecuteSql(selective_sql);
    unpruned_lat.Record(sw2.ElapsedMillis());
    if (!r1.ok() || !r2.ok()) {
      std::fprintf(stderr, "selective scan failed\n");
      return 1;
    }
    pruned_rows = r1.ValueOrDie().ToString(10);
    unpruned_rows = r2.ValueOrDie().ToString(10);
    if (pruned_rows != unpruned_rows) break;
  }

  const double p50_pruned = pruned_lat.Quantile(0.5);
  const double p50_unpruned = unpruned_lat.Quantile(0.5);
  const double speedup = p50_pruned > 0.0 ? p50_unpruned / p50_pruned : 0.0;
  const bool identical = pruned_rows == unpruned_rows;
  const bool pruned_enough =
      total_segments > 0 && pruned_segments * 4 >= total_segments * 3;
  const bool fast_enough = speedup >= 2.0;

  std::printf("selective (pruned):   %s\n", pruned_lat.Summary().c_str());
  std::printf("selective (unpruned): %s\n", unpruned_lat.Summary().c_str());
  std::printf("segments: pruned %lld / %lld\n",
              static_cast<long long>(pruned_segments),
              static_cast<long long>(total_segments));
  std::printf("\nresults identical:  %s\n", identical ? "PASS" : "FAIL");
  std::printf("pruning >= 75%%:     %s\n", pruned_enough ? "PASS" : "FAIL");
  std::printf("p50 speedup >= 2x:  %s (got %.1fx)\n",
              fast_enough ? "PASS" : "FAIL", speedup);

  const bool pass = identical && pruned_enough && fast_enough;
  if (std::FILE* f = std::fopen("BENCH_storage.json", "w")) {
    std::fprintf(
        f,
        "{\n"
        "  \"experiment\": \"E17\",\n"
        "  \"rows\": %lld, \"segments\": %llu,\n"
        "  \"ingest_rows_per_s\": %.0f,\n"
        "  \"full_scan_ms\": %.2f,\n"
        "  \"selective_pruned_p50_ms\": %.3f,\n"
        "  \"selective_unpruned_p50_ms\": %.3f,\n"
        "  \"speedup_p50\": %.2f,\n"
        "  \"segments_pruned\": %lld, \"segments_total\": %lld,\n"
        "  \"results_identical\": %s,\n"
        "  \"pass\": %s\n"
        "}\n",
        static_cast<long long>(kRows),
        static_cast<unsigned long long>(segments), ingest_rows_per_s, full_ms,
        p50_pruned, p50_unpruned, speedup,
        static_cast<long long>(pruned_segments),
        static_cast<long long>(total_segments), identical ? "true" : "false",
        pass ? "true" : "false");
    std::fclose(f);
    std::printf("wrote BENCH_storage.json\n");
  }
  return pass ? 0 : 1;
}
