// Experiments E17 + E18 — disk-backed segment store.
//
// E17: LSM ingest throughput and zone-map pruning on selective scans.
// A 2M-row table is ingested through the WAL'd append path (memtable budget
// far below the dataset, so everything lands in ~32 immutable segments on
// disk — the scan works a dataset well beyond its in-memory buffer). The
// bench then measures:
//   * ingest throughput (rows/s through WAL + memtable + flush);
//   * full-scan latency (every segment read and decoded);
//   * selective scans over one id-range, pruned (optimizer pushes the
//     predicate into the scan, zone maps skip non-overlapping segments)
//     vs unpruned (optimizer off: every segment read, filter on top).
//
// E18: ordered secondary indexes on an UNSORTED high-cardinality column.
// The same table carries a `key` column scattered by a Knuth-multiplier
// bijection, so every segment's zone range spans nearly the whole key space
// and zone maps prune nothing. The ordered per-segment indexes built at
// flush are the only way to skip work. Measured, at ~15x the 4 MiB memtable
// budget (well beyond RAM buffers):
//   * point and narrow-range queries with the IndexScan access path vs the
//     zone-map-only path (set_index_scan(false) ablation), p50 over reps;
//   * byte-parity of both paths at 1 and 8 threads;
//   * EXPLAIN surfacing the chosen path with probe counts;
//   * the same queries after background-style compaction re-sorts the
//     table by `key` (sorted runs make narrow ranges cheap for both paths).
//
// Acceptance: E17 as before (identical results, >= 75% pruned, >= 2x p50);
// E18 adds byte-identical results across path/threads/compaction, EXPLAIN
// showing `IndexScan ... index: probes=`, and a >= 10x point-query p50
// speedup for the index path. Results go to BENCH_storage.json for CI.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "engine/database.h"
#include "engine/exec_context.h"
#include "engine/expr.h"
#include "engine/table.h"
#include "storage/io.h"
#include "storage/store.h"

namespace {

using mip::LatencyHistogram;
using mip::Rng;
using mip::Stopwatch;
using mip::engine::Column;
using mip::engine::DataType;
using mip::engine::Database;
using mip::engine::Schema;
using mip::engine::Table;

constexpr int64_t kRows = 2'000'000;
constexpr int64_t kBatchRows = 100'000;
constexpr uint64_t kSegmentRows = 64 * 1024;
constexpr int kSelectiveReps = 15;
constexpr int kIndexReps = 9;

// Unsorted high-cardinality key: a Knuth-multiplier bijection scatters row
// position across the key space, so segment zone ranges all overlap and
// only the ordered index can localize a key.
int64_t KeyOf(int64_t i) { return (i * 2654435761LL) % 999999937LL; }

Table MakeBatch(int64_t start, int64_t count) {
  std::vector<int64_t> ids;
  std::vector<int64_t> keys;
  std::vector<double> vals;
  std::vector<std::string> sites;
  ids.reserve(count);
  keys.reserve(count);
  vals.reserve(count);
  sites.reserve(count);
  Rng rng(0xE17 + static_cast<uint64_t>(start));
  for (int64_t i = start; i < start + count; ++i) {
    ids.push_back(i);
    keys.push_back(KeyOf(i));
    vals.push_back(static_cast<double>(rng.NextBounded(100000)) * 0.01);
    sites.push_back("site_" + std::to_string(i % 7));
  }
  Schema schema({{"id", DataType::kInt64},
                 {"key", DataType::kInt64},
                 {"val", DataType::kFloat64},
                 {"site", DataType::kString}});
  return Table::Make(schema, {Column::FromInts(std::move(ids)),
                              Column::FromInts(std::move(keys)),
                              Column::FromDoubles(std::move(vals)),
                              Column::FromStrings(std::move(sites))})
      .ValueOrDie();
}

// Joins an EXPLAIN result's rows back into the rendered plan text.
std::string ExplainText(Database* db, const std::string& sql) {
  auto out = db->ExecuteSql("EXPLAIN " + sql);
  if (!out.ok()) return "";
  std::string text;
  for (size_t r = 0; r < out.ValueOrDie().num_rows(); ++r) {
    text += out.ValueOrDie().At(r, 0).string_value();
    text += '\n';
  }
  return text;
}

}  // namespace

int main() {
  std::printf("=== E17: disk segment store — LSM ingest + zone-map scans ===\n");
  std::printf("%lld rows, %llu-row segments, memtable budget 4 MiB\n\n",
              static_cast<long long>(kRows),
              static_cast<unsigned long long>(kSegmentRows));

  const std::string dir = "bench_storage_data";
  if (mip::storage::FileExists(dir)) {
    if (auto names = mip::storage::ListDir(dir); names.ok()) {
      for (const std::string& f : names.ValueOrDie()) {
        (void)mip::storage::RemoveFile(dir + "/" + f);
      }
    }
  }

  mip::storage::StorageOptions options;
  options.target_segment_rows = kSegmentRows;
  // E18: compaction re-sorts by the scattered key, turning the table into
  // one sorted run (flush segments stay unsorted until then).
  options.cluster_key = "key";
  auto opened = mip::storage::StorageEngine::Open(dir, options);
  if (!opened.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 opened.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<mip::storage::StorageEngine> store =
      std::move(opened.ValueOrDie());

  // --- Ingest: WAL-first appends, auto-flushing past the memtable budget.
  Stopwatch ingest_sw;
  for (int64_t start = 0; start < kRows; start += kBatchRows) {
    auto st = store->AppendRows("events", MakeBatch(start, kBatchRows));
    if (!st.ok()) {
      std::fprintf(stderr, "append failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  if (auto st = store->Flush(); !st.ok()) {
    std::fprintf(stderr, "flush failed: %s\n", st.ToString().c_str());
    return 1;
  }
  const double ingest_ms = ingest_sw.ElapsedMillis();
  const double ingest_rows_per_s = 1000.0 * kRows / ingest_ms;
  const uint64_t segments = store->SegmentCount("events").ValueOrDie();
  std::printf("ingest: %lld rows in %.0f ms -> %.0f rows/s, %llu segments\n",
              static_cast<long long>(kRows), ingest_ms, ingest_rows_per_s,
              static_cast<unsigned long long>(segments));

  Database db("benchstore");
  if (auto st = db.AttachStorage(store.get()); !st.ok()) {
    std::fprintf(stderr, "attach failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // --- Full scan: every segment decoded (the beyond-buffer baseline).
  Stopwatch full_sw;
  auto full = db.ExecuteSql("SELECT count(*) AS n, sum(val) AS s FROM events");
  const double full_ms = full_sw.ElapsedMillis();
  if (!full.ok()) {
    std::fprintf(stderr, "full scan failed: %s\n",
                 full.status().ToString().c_str());
    return 1;
  }
  std::printf("full scan: %.1f ms (%lld rows)\n", full_ms,
              static_cast<long long>(full.ValueOrDie().At(0, 0).int_value()));

  // --- Selective scan: one ~64K-id slice out of 2M. Zone maps should skip
  // every segment whose id range misses the slice.
  const int64_t lo = kRows / 2;
  const int64_t hi = lo + static_cast<int64_t>(kSegmentRows);
  const std::string selective_sql =
      "SELECT count(*) AS n, sum(val) AS s FROM events WHERE id >= " +
      std::to_string(lo) + " AND id < " + std::to_string(hi);

  // Prune accounting for the exact pushed-down predicate.
  using mip::engine::Binary;
  using mip::engine::BinaryOp;
  using mip::engine::Col;
  using mip::engine::LitInt;
  auto prune_expr = mip::engine::And(
      Binary(BinaryOp::kGe, Col("id"), LitInt(lo)),
      Binary(BinaryOp::kLt, Col("id"), LitInt(hi)));
  const auto preview = store->PrunePreview("events", prune_expr.get());
  const int64_t pruned_segments = preview.ok() ? preview.ValueOrDie().pruned : 0;
  const int64_t total_segments = preview.ok() ? preview.ValueOrDie().total : 0;

  LatencyHistogram pruned_lat, unpruned_lat;
  std::string pruned_rows, unpruned_rows;
  for (int rep = 0; rep < kSelectiveReps; ++rep) {
    db.set_optimizer_enabled(true);
    Stopwatch sw1;
    auto r1 = db.ExecuteSql(selective_sql);
    pruned_lat.Record(sw1.ElapsedMillis());
    db.set_optimizer_enabled(false);  // no pushdown -> no prune hint
    Stopwatch sw2;
    auto r2 = db.ExecuteSql(selective_sql);
    unpruned_lat.Record(sw2.ElapsedMillis());
    if (!r1.ok() || !r2.ok()) {
      std::fprintf(stderr, "selective scan failed\n");
      return 1;
    }
    pruned_rows = r1.ValueOrDie().ToString(10);
    unpruned_rows = r2.ValueOrDie().ToString(10);
    if (pruned_rows != unpruned_rows) break;
  }

  const double p50_pruned = pruned_lat.Quantile(0.5);
  const double p50_unpruned = unpruned_lat.Quantile(0.5);
  const double speedup = p50_pruned > 0.0 ? p50_unpruned / p50_pruned : 0.0;
  const bool identical = pruned_rows == unpruned_rows;
  const bool pruned_enough =
      total_segments > 0 && pruned_segments * 4 >= total_segments * 3;
  const bool fast_enough = speedup >= 2.0;

  std::printf("selective (pruned):   %s\n", pruned_lat.Summary().c_str());
  std::printf("selective (unpruned): %s\n", unpruned_lat.Summary().c_str());
  std::printf("segments: pruned %lld / %lld\n",
              static_cast<long long>(pruned_segments),
              static_cast<long long>(total_segments));
  std::printf("\nresults identical:  %s\n", identical ? "PASS" : "FAIL");
  std::printf("pruning >= 75%%:     %s\n", pruned_enough ? "PASS" : "FAIL");
  std::printf("p50 speedup >= 2x:  %s (got %.1fx)\n",
              fast_enough ? "PASS" : "FAIL", speedup);

  const bool e17_pass = identical && pruned_enough && fast_enough;

  // =========================================================================
  // E18: ordered secondary indexes vs zone-map-only scans on `key`.
  // =========================================================================
  std::printf("\n=== E18: ordered indexes on an unsorted high-card key ===\n");
  db.set_optimizer_enabled(true);
  db.set_index_scan(true);

  const int64_t point_key = KeyOf(1'234'567);
  const int64_t range_lo = 123'456'789;
  const int64_t range_hi = range_lo + 2'000;  // a handful of scattered rows
  const std::string point_sql =
      "SELECT count(*) AS n, sum(val) AS s FROM events WHERE key = " +
      std::to_string(point_key);
  const std::string range_sql =
      "SELECT count(*) AS n, sum(val) AS s FROM events WHERE key >= " +
      std::to_string(range_lo) + " AND key < " + std::to_string(range_hi);

  // The chosen access path must be visible in EXPLAIN, probe stats and all.
  const std::string explain = ExplainText(&db, point_sql);
  const bool explain_ok =
      explain.find("IndexScan") != std::string::npos &&
      explain.find("index: probes=") != std::string::npos;
  std::printf("%s", explain.c_str());

  // Byte parity: point + range, index path vs zone path, 1 vs 8 threads.
  mip::ThreadPool pool(8);
  const mip::engine::ExecContext parallel{
      &pool, mip::engine::ExecContext::kDefaultMorselSize};
  bool e18_identical = true;
  std::string point_ref, range_ref;
  for (const mip::engine::ExecContext* ctx :
       {&mip::engine::ExecContext::Serial(), &parallel}) {
    db.set_exec_context(ctx);
    for (bool use_index : {false, true}) {
      db.set_index_scan(use_index);
      auto p = db.ExecuteSql(point_sql);
      auto r = db.ExecuteSql(range_sql);
      if (!p.ok() || !r.ok()) {
        std::fprintf(stderr, "e18 query failed\n");
        return 1;
      }
      const std::string ps = p.ValueOrDie().ToString(10);
      const std::string rs = r.ValueOrDie().ToString(10);
      if (point_ref.empty()) {
        point_ref = ps;
        range_ref = rs;
      } else if (ps != point_ref || rs != range_ref) {
        e18_identical = false;
      }
    }
  }
  db.set_exec_context(nullptr);

  // p50 latencies: index path vs zone-map-only ablation.
  auto measure = [&db](const std::string& sql, bool use_index,
                       LatencyHistogram* lat) {
    db.set_index_scan(use_index);
    for (int rep = 0; rep < kIndexReps; ++rep) {
      Stopwatch sw;
      auto r = db.ExecuteSql(sql);
      lat->Record(sw.ElapsedMillis());
      if (!r.ok()) return false;
    }
    return true;
  };
  LatencyHistogram point_idx, point_zone, range_idx, range_zone;
  if (!measure(point_sql, true, &point_idx) ||
      !measure(point_sql, false, &point_zone) ||
      !measure(range_sql, true, &range_idx) ||
      !measure(range_sql, false, &range_zone)) {
    std::fprintf(stderr, "e18 latency sweep failed\n");
    return 1;
  }
  const double point_idx_p50 = point_idx.Quantile(0.5);
  const double point_zone_p50 = point_zone.Quantile(0.5);
  const double range_idx_p50 = range_idx.Quantile(0.5);
  const double range_zone_p50 = range_zone.Quantile(0.5);
  const double point_speedup =
      point_idx_p50 > 0.0 ? point_zone_p50 / point_idx_p50 : 0.0;
  const double range_speedup =
      range_idx_p50 > 0.0 ? range_zone_p50 / range_idx_p50 : 0.0;
  std::printf("point (index):  %s\n", point_idx.Summary().c_str());
  std::printf("point (zone):   %s\n", point_zone.Summary().c_str());
  std::printf("range (index):  %s\n", range_idx.Summary().c_str());
  std::printf("range (zone):   %s\n", range_zone.Summary().c_str());

  // Compaction: fold the flush segments into one run sorted by `key`,
  // then re-run the same queries — bytes must not move.
  Stopwatch compact_sw;
  if (auto st = store->Compact("events"); !st.ok()) {
    std::fprintf(stderr, "compact failed: %s\n", st.ToString().c_str());
    return 1;
  }
  const double compact_ms = compact_sw.ElapsedMillis();
  const uint64_t segments_after =
      store->SegmentCount("events").ValueOrDie();
  LatencyHistogram point_post, range_post;
  db.set_exec_context(&mip::engine::ExecContext::Serial());
  for (bool use_index : {false, true}) {
    db.set_index_scan(use_index);
    auto p = db.ExecuteSql(point_sql);
    auto r = db.ExecuteSql(range_sql);
    if (!p.ok() || !r.ok()) {
      std::fprintf(stderr, "post-compaction query failed\n");
      return 1;
    }
    if (p.ValueOrDie().ToString(10) != point_ref ||
        r.ValueOrDie().ToString(10) != range_ref) {
      e18_identical = false;
    }
  }
  db.set_exec_context(nullptr);
  db.set_index_scan(true);
  if (!measure(point_sql, true, &point_post) ||
      !measure(range_sql, true, &range_post)) {
    std::fprintf(stderr, "post-compaction sweep failed\n");
    return 1;
  }
  const double point_post_p50 = point_post.Quantile(0.5);
  const double range_post_p50 = range_post.Quantile(0.5);
  std::printf("compaction: %.0f ms -> %llu segments (sorted by key)\n",
              compact_ms, static_cast<unsigned long long>(segments_after));
  std::printf("point (post-compact): %s\n", point_post.Summary().c_str());
  std::printf("range (post-compact): %s\n", range_post.Summary().c_str());

  const bool e18_fast = point_speedup >= 10.0;
  std::printf("\ne18 results identical:      %s\n",
              e18_identical ? "PASS" : "FAIL");
  std::printf("e18 EXPLAIN shows IndexScan: %s\n",
              explain_ok ? "PASS" : "FAIL");
  std::printf("e18 point p50 >= 10x:        %s (got %.1fx; range %.1fx)\n",
              e18_fast ? "PASS" : "FAIL", point_speedup, range_speedup);
  const bool e18_pass = e18_identical && explain_ok && e18_fast;

  const bool pass = e17_pass && e18_pass;
  if (std::FILE* f = std::fopen("BENCH_storage.json", "w")) {
    std::fprintf(
        f,
        "{\n"
        "  \"experiment\": \"E17+E18\",\n"
        "  \"rows\": %lld, \"segments\": %llu,\n"
        "  \"ingest_rows_per_s\": %.0f,\n"
        "  \"full_scan_ms\": %.2f,\n"
        "  \"selective_pruned_p50_ms\": %.3f,\n"
        "  \"selective_unpruned_p50_ms\": %.3f,\n"
        "  \"speedup_p50\": %.2f,\n"
        "  \"segments_pruned\": %lld, \"segments_total\": %lld,\n"
        "  \"results_identical\": %s,\n"
        "  \"e18_point_index_p50_ms\": %.3f,\n"
        "  \"e18_point_zone_p50_ms\": %.3f,\n"
        "  \"e18_point_speedup\": %.2f,\n"
        "  \"e18_range_index_p50_ms\": %.3f,\n"
        "  \"e18_range_zone_p50_ms\": %.3f,\n"
        "  \"e18_range_speedup\": %.2f,\n"
        "  \"e18_compact_ms\": %.0f,\n"
        "  \"e18_segments_after_compact\": %llu,\n"
        "  \"e18_post_compact_point_p50_ms\": %.3f,\n"
        "  \"e18_post_compact_range_p50_ms\": %.3f,\n"
        "  \"e18_explain_shows_index_scan\": %s,\n"
        "  \"e18_results_identical\": %s,\n"
        "  \"e18_pass\": %s,\n"
        "  \"pass\": %s\n"
        "}\n",
        static_cast<long long>(kRows),
        static_cast<unsigned long long>(segments), ingest_rows_per_s, full_ms,
        p50_pruned, p50_unpruned, speedup,
        static_cast<long long>(pruned_segments),
        static_cast<long long>(total_segments), identical ? "true" : "false",
        point_idx_p50, point_zone_p50, point_speedup, range_idx_p50,
        range_zone_p50, range_speedup, compact_ms,
        static_cast<unsigned long long>(segments_after), point_post_p50,
        range_post_p50, explain_ok ? "true" : "false",
        e18_identical ? "true" : "false", e18_pass ? "true" : "false",
        pass ? "true" : "false");
    std::fclose(f);
    std::printf("wrote BENCH_storage.json\n");
  }
  return pass ? 0 : 1;
}
