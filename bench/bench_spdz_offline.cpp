// Experiment E9 — §2 Implementation: "Our software runs the SPDZ protocol,
// which speeds up computation by running a lot of the required SMPC
// computations in an offline phase."
//
// Measures (i) Beaver-triple generation throughput for the scalar reference
// dealer vs the batched kernel dealer — same seed, bit-identical pool — at
// one thread and with morsel parallelism, and (ii) online secure-product
// latency with a warm triple pool vs. generating triples on demand inside
// the online phase.
//
// The line "SPDZ_OFFLINE ... speedup=..." is machine-parsed by ci/run_tests.sh
// (the batched dealer must beat the scalar reference by at least the portable
// 2x floor; see EXPERIMENTS.md E9 for the full speedup on this machine).

#include <algorithm>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/parallel.h"
#include "common/stopwatch.h"
#include "smpc/cluster.h"
#include "smpc/spdz.h"

int main() {
  std::printf("=== E9: SPDZ offline/online split ===\n\n");

  // Offline throughput: scalar reference vs batched kernels, same run,
  // same seed. The pools they build are bit-identical (smpc_property_test
  // pins this); only the wall clock differs.
  // Steady-state measurement: each variant keeps ONE dealer alive and
  // refills its (drained) pool every rep — that is the serving system's
  // real regime, where the pool arrays' retained capacity means refills
  // run in warm, already-faulted memory for scalar and batched alike. The
  // first rep pays cold page faults for both; best-of-N reports the warm
  // floor.
  const size_t kCount = 200000;
  const int kReps = 4;
  const unsigned hw = std::max(2u, std::thread::hardware_concurrency());
  double scalar_ms = 1e30, batched_ms = 1e30, parallel_ms = 1e30;
  {
    mip::smpc::SpdzDealer dealer(3, 1234);
    for (int rep = 0; rep < kReps; ++rep) {
      mip::Stopwatch sw;
      dealer.PrecomputeTriplesScalar(kCount);
      scalar_ms = std::min(scalar_ms, sw.ElapsedMillis());
      (void)dealer.TakeTriples(kCount);  // drain (untimed), keep capacity
    }
  }
  {
    mip::smpc::SpdzDealer dealer(3, 1234);
    for (int rep = 0; rep < kReps; ++rep) {
      mip::Stopwatch sw;
      dealer.PrecomputeTriples(kCount);  // single-threaded batched
      batched_ms = std::min(batched_ms, sw.ElapsedMillis());
      (void)dealer.TakeTriples(kCount);
    }
  }
  {
    mip::ThreadPool pool(static_cast<int>(hw));
    mip::smpc::SpdzDealer dealer(3, 1234);
    mip::smpc::VecExec exec{&pool, 16384};
    for (int rep = 0; rep < kReps; ++rep) {
      mip::Stopwatch sw;
      dealer.PrecomputeTriples(kCount, exec);
      parallel_ms = std::min(parallel_ms, sw.ElapsedMillis());
      (void)dealer.TakeTriples(kCount);
    }
  }
  const double best_ms = std::min(batched_ms, parallel_ms);
  std::printf("offline phase, %zu triples, 3 parties:\n", kCount);
  std::printf("  scalar reference : %9.1f ms  (%.0f triples/s)\n", scalar_ms,
              kCount / scalar_ms * 1e3);
  std::printf("  batched, 1 thread: %9.1f ms  (%.0f triples/s)\n", batched_ms,
              kCount / batched_ms * 1e3);
  std::printf("  batched, %2u thr  : %9.1f ms  (%.0f triples/s)\n", hw,
              parallel_ms, kCount / parallel_ms * 1e3);
  std::printf("SPDZ_OFFLINE scalar_ms=%.2f batched_ms=%.2f speedup=%.2f\n\n",
              scalar_ms, best_ms, scalar_ms / best_ms);

  std::printf("%12s | %16s | %16s | %8s\n", "elements",
              "warm pool ms", "on-demand ms", "speedup");
  for (size_t n : {512, 4096, 32768}) {
    const std::vector<double> a(n, 1.5);
    const std::vector<double> b(n, -2.0);

    mip::smpc::SmpcConfig config;
    config.scheme = mip::smpc::SmpcScheme::kFullThreshold;

    // Warm: triples precomputed before the online phase starts.
    mip::smpc::SmpcCluster warm(config);
    warm.PrecomputeTriples(n);
    (void)warm.ImportShares("j", a);
    (void)warm.ImportShares("j", b);
    mip::Stopwatch sw;
    (void)warm.Compute("j", mip::smpc::SmpcOp::kProduct);
    const double warm_ms = sw.ElapsedMillis();

    // Cold: every multiplication generates its triple online.
    mip::smpc::SmpcCluster cold(config);
    (void)cold.ImportShares("j", a);
    (void)cold.ImportShares("j", b);
    sw.Reset();
    (void)cold.Compute("j", mip::smpc::SmpcOp::kProduct);
    const double cold_ms = sw.ElapsedMillis();

    std::printf("%12zu | %16.2f | %16.2f | %7.2fx\n", n, warm_ms, cold_ms,
                cold_ms / warm_ms);
  }
  std::printf(
      "\nShape vs paper: moving triple generation offline removes the "
      "dominant cost\nfrom the online critical path, exactly the SPDZ "
      "design rationale the paper cites;\nbatching the dealer shrinks the "
      "offline phase itself by the speedup above.\n");
  return 0;
}
