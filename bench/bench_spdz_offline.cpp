// Experiment E9 — §2 Implementation: "Our software runs the SPDZ protocol,
// which speeds up computation by running a lot of the required SMPC
// computations in an offline phase."
//
// Measures (i) Beaver-triple generation throughput (the offline phase) and
// (ii) online secure-product latency with a warm triple pool vs. generating
// triples on demand inside the online phase.

#include <cstdio>
#include <vector>

#include "common/stopwatch.h"
#include "smpc/cluster.h"
#include "smpc/spdz.h"

int main() {
  std::printf("=== E9: SPDZ offline/online split ===\n\n");

  // Offline throughput.
  {
    mip::smpc::SpdzDealer dealer(3, 1234);
    mip::Stopwatch sw;
    const size_t kCount = 200000;
    dealer.PrecomputeTriples(kCount);
    const double secs = sw.ElapsedSeconds();
    std::printf("offline phase: %zu triples in %.1f ms  (%.0f triples/s, "
                "3 parties)\n\n",
                kCount, secs * 1e3, static_cast<double>(kCount) / secs);
  }

  std::printf("%12s | %16s | %16s | %8s\n", "elements",
              "warm pool ms", "on-demand ms", "speedup");
  for (size_t n : {512, 4096, 32768}) {
    const std::vector<double> a(n, 1.5);
    const std::vector<double> b(n, -2.0);

    mip::smpc::SmpcConfig config;
    config.scheme = mip::smpc::SmpcScheme::kFullThreshold;

    // Warm: triples precomputed before the online phase starts.
    mip::smpc::SmpcCluster warm(config);
    warm.PrecomputeTriples(n);
    (void)warm.ImportShares("j", a);
    (void)warm.ImportShares("j", b);
    mip::Stopwatch sw;
    (void)warm.Compute("j", mip::smpc::SmpcOp::kProduct);
    const double warm_ms = sw.ElapsedMillis();

    // Cold: every multiplication generates its triple online.
    mip::smpc::SmpcCluster cold(config);
    (void)cold.ImportShares("j", a);
    (void)cold.ImportShares("j", b);
    sw.Reset();
    (void)cold.Compute("j", mip::smpc::SmpcOp::kProduct);
    const double cold_ms = sw.ElapsedMillis();

    std::printf("%12zu | %16.2f | %16.2f | %7.2fx\n", n, warm_ms, cold_ms,
                cold_ms / warm_ms);
  }
  std::printf(
      "\nShape vs paper: moving triple generation offline removes the "
      "dominant cost\nfrom the online critical path, exactly the SPDZ "
      "design rationale the paper cites.\n");
  return 0;
}
