// Experiment E5 — the two data-aggregation paths of §2: the non-secure
// remote/merge-table transfer vs. the SMPC path, end to end, as the
// federation grows.
//
// The task is the canonical one: aggregate a per-worker statistics vector
// (moments of 8 variables) on the Master. The merge-table path pulls the
// local aggregates through REMOTE tables into a MERGE view; the SMPC path
// secret-shares them. The sweep runs out to 100 workers — the paper's
// ~100-hospital scale — where the naive pull plan moves rows x workers
// bytes while pushdown and SMPC stay constant-size per worker.

#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "federation/master.h"

namespace {

using mip::engine::DataType;
using mip::engine::Schema;
using mip::engine::Table;
using mip::engine::Value;
using mip::federation::TransferData;
using mip::federation::WorkerContext;

constexpr int kRowsPerWorker = 5000;
constexpr int kVariables = 8;

void LoadWorkers(mip::federation::MasterNode* master, int workers) {
  mip::Rng rng(4242);
  for (int w = 0; w < workers; ++w) {
    const std::string id = "w" + std::to_string(w);
    (void)master->AddWorker(id);
    Schema schema;
    for (int v = 0; v < kVariables; ++v) {
      (void)schema.AddField({"v" + std::to_string(v), DataType::kFloat64});
    }
    Table t = Table::Empty(schema);
    for (int r = 0; r < kRowsPerWorker; ++r) {
      std::vector<Value> row;
      for (int v = 0; v < kVariables; ++v) {
        row.push_back(Value::Double(rng.NextGaussian()));
      }
      (void)t.AppendRow(row);
    }
    (void)master->LoadDataset(id, "d", std::move(t));
  }
  (void)master->functions()->Register(
      "moments",
      [](WorkerContext& ctx,
         const TransferData&) -> mip::Result<TransferData> {
        MIP_ASSIGN_OR_RETURN(Table t, ctx.db().GetTable("d"));
        std::vector<double> sums(2 * t.num_columns(), 0.0);
        for (size_t c = 0; c < t.num_columns(); ++c) {
          const auto& col = t.column(c);
          for (size_t r = 0; r < col.length(); ++r) {
            const double v = col.DoubleAt(r);
            sums[2 * c] += v;
            sums[2 * c + 1] += v * v;
          }
        }
        TransferData out;
        out.PutVector("m", std::move(sums));
        out.PutScalar("n", static_cast<double>(t.num_rows()));
        return out;
      });
}

}  // namespace

int main() {
  std::printf("=== E5: merge-table (non-secure) vs SMPC aggregation ===\n");
  std::printf("%d rows x %d variables per worker; aggregate = per-variable "
              "sums + sums of squares\n\n",
              kRowsPerWorker, kVariables);
  std::printf(
      "%8s | %12s %12s | %12s %12s | %12s %12s\n", "workers", "pull ms",
      "pull bytes", "pushdown ms", "push bytes", "SMPC ms", "SMPC bytes");
  for (int workers : {2, 8, 25, 50, 100}) {
    mip::federation::MasterNode master;
    LoadWorkers(&master, workers);
    auto view = master.CreateFederatedView("d");
    if (!view.ok()) return 1;
    std::string select = "SELECT count(*) AS n";
    for (int v = 0; v < kVariables; ++v) {
      select += ", sum(v" + std::to_string(v) + ") AS s" + std::to_string(v);
    }
    select += " FROM " + view.ValueOrDie();

    // Path 1a: merge-table with pushdown DISABLED — whole relations are
    // pulled over the bus (the naive remote-table plan).
    master.local_db().set_aggregate_pushdown(false);
    master.bus().ResetStats();
    mip::Stopwatch sw;
    auto pulled = master.local_db().ExecuteSql(select);
    const double pull_ms = sw.ElapsedMillis();
    const auto pull_bytes = master.bus().stats().bytes;
    if (!pulled.ok()) {
      std::fprintf(stderr, "%s\n", pulled.status().ToString().c_str());
      return 1;
    }

    // Path 1b: merge-table WITH aggregate pushdown — partial aggregates
    // computed next to the data (ablation of the same plan).
    master.local_db().set_aggregate_pushdown(true);
    master.bus().ResetStats();
    sw.Reset();
    auto pushed = master.local_db().ExecuteSql(select);
    const double push_ms = sw.ElapsedMillis();
    const auto push_bytes = master.bus().stats().bytes;
    if (!pushed.ok()) return 1;

    // Path 2: local partial aggregation + SMPC secure sum.
    master.bus().ResetStats();
    master.smpc().ResetStats();
    auto session = master.StartSession({"d"});
    sw.Reset();
    auto secure = session.ValueOrDie().LocalRunAndAggregate(
        "moments", TransferData(), mip::federation::AggregationMode::kSecure);
    const double smpc_ms = sw.ElapsedMillis();
    if (!secure.ok()) return 1;
    const auto smpc_bytes = master.bus().stats().bytes +
                            master.smpc().stats().bytes_transferred;

    std::printf("%8d | %12.2f %12llu | %12.2f %12llu | %12.2f %12llu\n",
                workers, pull_ms,
                static_cast<unsigned long long>(pull_bytes), push_ms,
                static_cast<unsigned long long>(push_bytes), smpc_ms,
                static_cast<unsigned long long>(smpc_bytes));
  }
  std::printf(
      "\nShape vs paper: pulling relations through remote tables moves "
      "bytes\nproportional to rows x workers; aggregate pushdown (MonetDB's "
      "actual merge-table\nplan) and the SMPC path both ship constant-size "
      "aggregates. SMPC adds encryption\non top for sensitive data — the "
      "privacy-compliant default.\n");
  return 0;
}
