// Experiment E15 — federated scan pushdown: bytes shipped and wall time for
// a selective filtered query over a federated merge table.
//
// Three workers each hold a 50k-row shard. The master runs
//   SELECT x, g FROM <view> WHERE k = 7
// (~1% selective) twice: with the plan optimizer off — every shard is
// fetched whole and filtered locally, the pre-plan-layer behavior — and
// with it on, where the planner lowers the filter and the pruned column
// list into the SQL each RemoteScan ships, so only matching rows of the
// referenced columns cross the bus. Results must be byte-identical;
// acceptance is >= 5x fewer wire bytes with pushdown on.
//
// Results are printed and written to BENCH_plan.json for the CI smoke step.

#include <cstdio>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "engine/database.h"
#include "engine/table.h"
#include "federation/master.h"

namespace {

using mip::BufferWriter;
using mip::Rng;
using mip::engine::DataType;
using mip::engine::Schema;
using mip::engine::Table;
using mip::engine::Value;

constexpr size_t kRowsPerWorker = 50000;
constexpr int kWorkers = 3;

std::vector<uint8_t> Bytes(const Table& t) {
  BufferWriter w;
  mip::engine::SerializeTable(t, &w);
  return w.TakeBytes();
}

struct RunMeasurement {
  uint64_t bytes_raw = 0;
  uint64_t bytes_wire = 0;
  double wall_ms = 0.0;
  std::vector<uint8_t> result;
  size_t rows = 0;
};

RunMeasurement RunOnce(mip::federation::MasterNode* master,
                       const std::string& sql, bool optimizer_on) {
  master->local_db().set_optimizer_enabled(optimizer_on);
  master->bus().ResetStats();
  mip::Stopwatch timer;
  auto out = master->local_db().ExecuteSql(sql);
  RunMeasurement m;
  m.wall_ms = timer.ElapsedMillis();
  if (!out.ok()) {
    std::printf("QUERY FAILED: %s\n", out.status().ToString().c_str());
    return m;
  }
  m.bytes_raw = master->bus().stats().bytes_raw;
  m.bytes_wire = master->bus().stats().bytes_wire;
  m.result = Bytes(*out);
  m.rows = out->num_rows();
  return m;
}

}  // namespace

int main() {
  std::printf("=== E15: federated scan pushdown — bytes shipped ===\n");
  std::printf("%d workers x %zu rows, ~1%% selective filter\n\n", kWorkers,
              kRowsPerWorker);

  mip::federation::MasterNode master;
  Rng rng(0xE15);
  const std::vector<std::string> groups = {"AD", "MCI", "control"};
  for (int w = 0; w < kWorkers; ++w) {
    const std::string id = "w" + std::to_string(w + 1);
    if (!master.AddWorker(id).ok()) return 1;
    Schema schema;
    (void)schema.AddField({"x", DataType::kFloat64});
    (void)schema.AddField({"k", DataType::kInt64});
    (void)schema.AddField({"g", DataType::kString});
    Table t = Table::Empty(schema);
    for (size_t i = 0; i < kRowsPerWorker; ++i) {
      (void)t.AppendRow(
          {Value::Double(rng.NextGaussian()),
           Value::Int(static_cast<int64_t>(rng.NextBounded(100))),
           Value::String(groups[rng.NextBounded(groups.size())])});
    }
    if (!master.LoadDataset(id, "d", std::move(t)).ok()) return 1;
  }
  auto view = master.CreateFederatedView("d");
  if (!view.ok()) return 1;
  const std::string sql = "SELECT x, g FROM " + *view + " WHERE k = 7";

  auto plan = master.local_db().ExecuteSql("EXPLAIN " + sql);
  if (plan.ok()) {
    std::printf("optimized plan:\n");
    for (size_t r = 0; r < plan->num_rows(); ++r) {
      std::printf("  %s\n", plan->At(r, 0).string_value().c_str());
    }
    std::printf("\n");
  }

  const RunMeasurement off = RunOnce(&master, sql, /*optimizer_on=*/false);
  const RunMeasurement on = RunOnce(&master, sql, /*optimizer_on=*/true);
  master.local_db().set_optimizer_enabled(true);

  std::printf("%-14s %10s %12s %12s %9s\n", "", "rows", "bytes_raw",
              "bytes_wire", "wall ms");
  std::printf("%-14s %10zu %12llu %12llu %9.2f\n", "pushdown off", off.rows,
              static_cast<unsigned long long>(off.bytes_raw),
              static_cast<unsigned long long>(off.bytes_wire), off.wall_ms);
  std::printf("%-14s %10zu %12llu %12llu %9.2f\n", "pushdown on", on.rows,
              static_cast<unsigned long long>(on.bytes_raw),
              static_cast<unsigned long long>(on.bytes_wire), on.wall_ms);

  const double wire_ratio =
      on.bytes_wire > 0 ? static_cast<double>(off.bytes_wire) /
                              static_cast<double>(on.bytes_wire)
                        : 0.0;
  const bool identical =
      !off.result.empty() && off.result == on.result && off.rows > 0;
  const bool wire_ok = wire_ratio >= 5.0;

  std::printf("\nwire reduction: %.1fx (need >= 5.0x) — %s\n", wire_ratio,
              wire_ok ? "PASS" : "FAIL");
  std::printf("byte-identical results: %s\n", identical ? "PASS" : "FAIL");

  if (std::FILE* f = std::fopen("BENCH_plan.json", "w")) {
    std::fprintf(
        f,
        "{\n"
        "  \"experiment\": \"E15\",\n"
        "  \"workers\": %d, \"rows_per_worker\": %zu,\n"
        "  \"query\": \"%s\",\n"
        "  \"pushdown_off\": {\"rows\": %zu, \"bytes_raw\": %llu, "
        "\"bytes_wire\": %llu, \"wall_ms\": %.3f},\n"
        "  \"pushdown_on\":  {\"rows\": %zu, \"bytes_raw\": %llu, "
        "\"bytes_wire\": %llu, \"wall_ms\": %.3f},\n"
        "  \"wire_ratio\": %.3f,\n"
        "  \"identical_results\": %s,\n"
        "  \"pass\": %s\n"
        "}\n",
        kWorkers, kRowsPerWorker, sql.c_str(), off.rows,
        static_cast<unsigned long long>(off.bytes_raw),
        static_cast<unsigned long long>(off.bytes_wire), off.wall_ms, on.rows,
        static_cast<unsigned long long>(on.bytes_raw),
        static_cast<unsigned long long>(on.bytes_wire), on.wall_ms,
        wire_ratio, identical ? "true" : "false",
        wire_ok && identical ? "true" : "false");
    std::fclose(f);
    std::printf("\nwrote BENCH_plan.json\n");
  }

  return wire_ok && identical ? 0 : 1;
}
