// Experiment E15 — federated scan pushdown: bytes shipped and wall time for
// a selective filtered query over a federated merge table.
//
// Three workers each hold a 50k-row shard. The master runs
//   SELECT x, g FROM <view> WHERE k = 7
// (~1% selective) twice: with the plan optimizer off — every shard is
// fetched whole and filtered locally, the pre-plan-layer behavior — and
// with it on, where the planner lowers the filter and the pruned column
// list into the SQL each RemoteScan ships, so only matching rows of the
// referenced columns cross the bus. Results must be byte-identical;
// acceptance is >= 5x fewer wire bytes with pushdown on.
//
// Experiment E19 — cost-based distributed joins: three workers each hold a
// 50k-row visits shard (patient_id in [0, 4096)); the master holds a cohort
// whose size sweeps 16 -> 32768 rows. For every cohort size the join runs
// forced-broadcast and forced-collect with wire bytes metered, plus an
// EXPLAIN under the cost model to record which strategy it picks.
// Acceptance: both strategies byte-identical at every point; the model
// picks broadcast for the smallest cohort and collect for the largest,
// flipping at most once across the sweep (a single predicted crossover);
// and broadcast ships >= 5x fewer bytes than collect on the smallest
// cohort.
//
// Results are printed and written to BENCH_plan.json for the CI smoke step.

#include <cstdio>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "engine/database.h"
#include "engine/table.h"
#include "federation/master.h"

namespace {

using mip::BufferWriter;
using mip::Rng;
using mip::engine::DataType;
using mip::engine::Schema;
using mip::engine::Table;
using mip::engine::Value;

constexpr size_t kRowsPerWorker = 50000;
constexpr int kWorkers = 3;

std::vector<uint8_t> Bytes(const Table& t) {
  BufferWriter w;
  mip::engine::SerializeTable(t, &w);
  return w.TakeBytes();
}

struct RunMeasurement {
  uint64_t bytes_raw = 0;
  uint64_t bytes_wire = 0;
  double wall_ms = 0.0;
  std::vector<uint8_t> result;
  size_t rows = 0;
};

RunMeasurement RunOnce(mip::federation::MasterNode* master,
                       const std::string& sql, bool optimizer_on) {
  master->local_db().set_optimizer_enabled(optimizer_on);
  master->bus().ResetStats();
  mip::Stopwatch timer;
  auto out = master->local_db().ExecuteSql(sql);
  RunMeasurement m;
  m.wall_ms = timer.ElapsedMillis();
  if (!out.ok()) {
    std::printf("QUERY FAILED: %s\n", out.status().ToString().c_str());
    return m;
  }
  m.bytes_raw = master->bus().stats().bytes_raw;
  m.bytes_wire = master->bus().stats().bytes_wire;
  m.result = Bytes(*out);
  m.rows = out->num_rows();
  return m;
}

// --- E19: broadcast/collect crossover sweep --------------------------------

struct SweepPoint {
  size_t cohort_rows = 0;
  std::string chosen;  // what the cost model picked ("broadcast"/"collect")
  uint64_t bytes_broadcast = 0;
  uint64_t bytes_collect = 0;
  double wall_broadcast_ms = 0.0;
  double wall_collect_ms = 0.0;
  size_t rows = 0;
  bool identical = false;
};

struct E19Result {
  std::vector<SweepPoint> sweep;
  int flips = 0;
  double small_ratio = 0.0;  // collect/broadcast bytes at the smallest |R|
  bool pass = false;
};

uint64_t MeasureBytes(mip::federation::MasterNode* master,
                      const std::string& sql, int force, double* wall_ms,
                      std::vector<uint8_t>* result, size_t* rows) {
  master->local_db().set_force_join_strategy(force);
  master->bus().ResetStats();
  mip::Stopwatch timer;
  auto out = master->local_db().ExecuteSql(sql);
  *wall_ms = timer.ElapsedMillis();
  master->local_db().set_force_join_strategy(-1);
  if (!out.ok()) {
    std::printf("E19 QUERY FAILED: %s\n", out.status().ToString().c_str());
    result->clear();
    *rows = 0;
    return 0;
  }
  *result = Bytes(*out);
  *rows = out->num_rows();
  return master->bus().stats().bytes;
}

E19Result RunE19() {
  E19Result e19;
  constexpr int64_t kPatients = 4096;
  mip::federation::MasterNode master;
  Rng rng(0xE19);
  for (int w = 0; w < kWorkers; ++w) {
    const std::string id = "w" + std::to_string(w + 1);
    if (!master.AddWorker(id).ok()) return e19;
    Schema schema;
    (void)schema.AddField({"patient_id", DataType::kInt64});
    (void)schema.AddField({"dur", DataType::kFloat64});
    Table t = Table::Empty(schema);
    for (size_t i = 0; i < kRowsPerWorker; ++i) {
      (void)t.AppendRow(
          {Value::Int(static_cast<int64_t>(rng.NextBounded(kPatients))),
           Value::Double(rng.NextGaussian())});
    }
    if (!master.LoadDataset(id, "visits", std::move(t)).ok()) return e19;
  }
  auto view = master.CreateFederatedView("visits");
  if (!view.ok()) return e19;
  const std::string sql = "SELECT label, dur FROM " + *view +
                          " JOIN cohort ON " + *view +
                          ".patient_id = cohort.patient_id";

  std::printf("%-12s %-10s %14s %14s %10s %10s %9s\n", "cohort_rows",
              "chosen", "bytes_bcast", "bytes_collect", "ms_bcast",
              "ms_collect", "rows");
  bool all_identical = true;
  for (const size_t cohort_rows :
       {size_t{16}, size_t{128}, size_t{1024}, size_t{4096}, size_t{16384},
        size_t{32768}}) {
    // Rebuild the cohort at this size; the PutTable bumps the catalog
    // version, so cached plans and statistics cannot leak across points.
    Schema schema;
    (void)schema.AddField({"patient_id", DataType::kInt64});
    (void)schema.AddField({"label", DataType::kString});
    Table cohort = Table::Empty(schema);
    for (size_t i = 0; i < cohort_rows; ++i) {
      (void)cohort.AppendRow({Value::Int(static_cast<int64_t>(i)),
                              Value::String(i % 2 == 0 ? "case" : "ctl")});
    }
    if (!master.local_db().PutTable("cohort", std::move(cohort)).ok()) {
      return e19;
    }

    SweepPoint p;
    p.cohort_rows = cohort_rows;
    master.local_db().set_force_join_strategy(-1);
    auto plan = master.local_db().ExecuteSql("EXPLAIN " + sql);
    if (plan.ok()) {
      std::string text;
      for (size_t r = 0; r < plan->num_rows(); ++r) {
        text += plan->At(r, 0).string_value();
      }
      p.chosen = text.find("strategy=broadcast") != std::string::npos
                     ? "broadcast"
                     : "collect";
    }
    std::vector<uint8_t> bcast_result, collect_result;
    size_t bcast_rows = 0;
    p.bytes_broadcast = MeasureBytes(&master, sql, /*force=*/1,
                                     &p.wall_broadcast_ms, &bcast_result,
                                     &bcast_rows);
    p.bytes_collect = MeasureBytes(&master, sql, /*force=*/0,
                                   &p.wall_collect_ms, &collect_result,
                                   &p.rows);
    p.identical = !bcast_result.empty() && bcast_result == collect_result;
    all_identical = all_identical && p.identical;
    std::printf("%-12zu %-10s %14llu %14llu %10.2f %10.2f %9zu%s\n",
                p.cohort_rows, p.chosen.c_str(),
                static_cast<unsigned long long>(p.bytes_broadcast),
                static_cast<unsigned long long>(p.bytes_collect),
                p.wall_broadcast_ms, p.wall_collect_ms, p.rows,
                p.identical ? "" : "  RESULTS DIVERGED");
    e19.sweep.push_back(p);
  }

  for (size_t i = 1; i < e19.sweep.size(); ++i) {
    if (e19.sweep[i].chosen != e19.sweep[i - 1].chosen) e19.flips += 1;
  }
  const SweepPoint& smallest = e19.sweep.front();
  e19.small_ratio =
      smallest.bytes_broadcast > 0
          ? static_cast<double>(smallest.bytes_collect) /
                static_cast<double>(smallest.bytes_broadcast)
          : 0.0;
  const bool crossover_ok = e19.sweep.front().chosen == "broadcast" &&
                            e19.sweep.back().chosen == "collect" &&
                            e19.flips <= 1;
  const bool ratio_ok = e19.small_ratio >= 5.0;
  e19.pass = all_identical && crossover_ok && ratio_ok;

  std::printf("\ncrossover: %s -> %s in %d flip(s) — %s\n",
              e19.sweep.front().chosen.c_str(),
              e19.sweep.back().chosen.c_str(), e19.flips,
              crossover_ok ? "PASS" : "FAIL");
  std::printf("smallest-cohort wire reduction: %.1fx (need >= 5.0x) — %s\n",
              e19.small_ratio, ratio_ok ? "PASS" : "FAIL");
  std::printf("byte-identical across strategies: %s\n",
              all_identical ? "PASS" : "FAIL");
  return e19;
}

}  // namespace

int main() {
  std::printf("=== E15: federated scan pushdown — bytes shipped ===\n");
  std::printf("%d workers x %zu rows, ~1%% selective filter\n\n", kWorkers,
              kRowsPerWorker);

  mip::federation::MasterNode master;
  Rng rng(0xE15);
  const std::vector<std::string> groups = {"AD", "MCI", "control"};
  for (int w = 0; w < kWorkers; ++w) {
    const std::string id = "w" + std::to_string(w + 1);
    if (!master.AddWorker(id).ok()) return 1;
    Schema schema;
    (void)schema.AddField({"x", DataType::kFloat64});
    (void)schema.AddField({"k", DataType::kInt64});
    (void)schema.AddField({"g", DataType::kString});
    Table t = Table::Empty(schema);
    for (size_t i = 0; i < kRowsPerWorker; ++i) {
      (void)t.AppendRow(
          {Value::Double(rng.NextGaussian()),
           Value::Int(static_cast<int64_t>(rng.NextBounded(100))),
           Value::String(groups[rng.NextBounded(groups.size())])});
    }
    if (!master.LoadDataset(id, "d", std::move(t)).ok()) return 1;
  }
  auto view = master.CreateFederatedView("d");
  if (!view.ok()) return 1;
  const std::string sql = "SELECT x, g FROM " + *view + " WHERE k = 7";

  auto plan = master.local_db().ExecuteSql("EXPLAIN " + sql);
  if (plan.ok()) {
    std::printf("optimized plan:\n");
    for (size_t r = 0; r < plan->num_rows(); ++r) {
      std::printf("  %s\n", plan->At(r, 0).string_value().c_str());
    }
    std::printf("\n");
  }

  const RunMeasurement off = RunOnce(&master, sql, /*optimizer_on=*/false);
  const RunMeasurement on = RunOnce(&master, sql, /*optimizer_on=*/true);
  master.local_db().set_optimizer_enabled(true);

  std::printf("%-14s %10s %12s %12s %9s\n", "", "rows", "bytes_raw",
              "bytes_wire", "wall ms");
  std::printf("%-14s %10zu %12llu %12llu %9.2f\n", "pushdown off", off.rows,
              static_cast<unsigned long long>(off.bytes_raw),
              static_cast<unsigned long long>(off.bytes_wire), off.wall_ms);
  std::printf("%-14s %10zu %12llu %12llu %9.2f\n", "pushdown on", on.rows,
              static_cast<unsigned long long>(on.bytes_raw),
              static_cast<unsigned long long>(on.bytes_wire), on.wall_ms);

  const double wire_ratio =
      on.bytes_wire > 0 ? static_cast<double>(off.bytes_wire) /
                              static_cast<double>(on.bytes_wire)
                        : 0.0;
  const bool identical =
      !off.result.empty() && off.result == on.result && off.rows > 0;
  const bool wire_ok = wire_ratio >= 5.0;

  std::printf("\nwire reduction: %.1fx (need >= 5.0x) — %s\n", wire_ratio,
              wire_ok ? "PASS" : "FAIL");
  std::printf("byte-identical results: %s\n", identical ? "PASS" : "FAIL");

  std::printf("\n=== E19: cost-based join strategy — crossover sweep ===\n");
  std::printf("%d workers x %zu visit rows, cohort 16 -> 32768\n\n", kWorkers,
              kRowsPerWorker);
  const E19Result e19 = RunE19();

  std::string e19_sweep_json;
  for (size_t i = 0; i < e19.sweep.size(); ++i) {
    const SweepPoint& p = e19.sweep[i];
    char buf[320];
    std::snprintf(buf, sizeof(buf),
                  "%s    {\"cohort_rows\": %zu, \"chosen\": \"%s\", "
                  "\"bytes_broadcast\": %llu, \"bytes_collect\": %llu, "
                  "\"wall_broadcast_ms\": %.3f, \"wall_collect_ms\": %.3f, "
                  "\"rows\": %zu, \"identical\": %s}",
                  i == 0 ? "" : ",\n", p.cohort_rows, p.chosen.c_str(),
                  static_cast<unsigned long long>(p.bytes_broadcast),
                  static_cast<unsigned long long>(p.bytes_collect),
                  p.wall_broadcast_ms, p.wall_collect_ms, p.rows,
                  p.identical ? "true" : "false");
    e19_sweep_json += buf;
  }

  if (std::FILE* f = std::fopen("BENCH_plan.json", "w")) {
    std::fprintf(
        f,
        "{\n"
        "  \"experiment\": \"E15\",\n"
        "  \"workers\": %d, \"rows_per_worker\": %zu,\n"
        "  \"query\": \"%s\",\n"
        "  \"pushdown_off\": {\"rows\": %zu, \"bytes_raw\": %llu, "
        "\"bytes_wire\": %llu, \"wall_ms\": %.3f},\n"
        "  \"pushdown_on\":  {\"rows\": %zu, \"bytes_raw\": %llu, "
        "\"bytes_wire\": %llu, \"wall_ms\": %.3f},\n"
        "  \"wire_ratio\": %.3f,\n"
        "  \"identical_results\": %s,\n"
        "  \"e19\": {\n"
        "  \"sweep\": [\n%s\n  ],\n"
        "  \"flips\": %d,\n"
        "  \"small_cohort_wire_ratio\": %.3f,\n"
        "  \"pass\": %s\n"
        "  },\n"
        "  \"pass\": %s\n"
        "}\n",
        kWorkers, kRowsPerWorker, sql.c_str(), off.rows,
        static_cast<unsigned long long>(off.bytes_raw),
        static_cast<unsigned long long>(off.bytes_wire), off.wall_ms, on.rows,
        static_cast<unsigned long long>(on.bytes_raw),
        static_cast<unsigned long long>(on.bytes_wire), on.wall_ms,
        wire_ratio, identical ? "true" : "false", e19_sweep_json.c_str(),
        e19.flips, e19.small_ratio, e19.pass ? "true" : "false",
        wire_ok && identical && e19.pass ? "true" : "false");
    std::fclose(f);
    std::printf("\nwrote BENCH_plan.json\n");
  }

  return wire_ok && identical && e19.pass ? 0 : 1;
}
