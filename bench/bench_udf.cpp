// Experiment E10 — the UDFGenerator (§2): procedural-to-SQL translation and
// in-engine execution. Measures translation overhead (generation +
// registration), execution through each engine mode, and the gap to a
// hand-written declarative SQL query — the paper's rationale for running
// algorithm steps inside the data engine.

#include <cstdio>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "engine/database.h"
#include "udf/udf.h"

namespace {

using mip::engine::Column;
using mip::engine::DataType;
using mip::engine::Database;
using mip::engine::Schema;
using mip::engine::Table;

void LoadData(Database* db, size_t rows) {
  mip::Rng rng(33);
  std::vector<double> x(rows), y(rows);
  for (size_t i = 0; i < rows; ++i) {
    x[i] = rng.NextGaussian();
    y[i] = rng.NextUniform(0.5, 2.0);
  }
  Schema schema;
  (void)schema.AddField({"x", DataType::kFloat64});
  (void)schema.AddField({"y", DataType::kFloat64});
  (void)db->PutTable("d", *Table::Make(schema, {Column::FromDoubles(x),
                                                Column::FromDoubles(y)}));
}

mip::udf::UdfDefinition MakeDefinition() {
  mip::udf::UdfDefinition def;
  def.name = "pipeline";
  (void)def.input_schema.AddField({"x", DataType::kFloat64});
  (void)def.input_schema.AddField({"y", DataType::kFloat64});
  def.steps = {
      {mip::udf::UdfStep::Kind::kElementwise, "score",
       "sqrt(abs(x * y)) + exp(x / 10) - y * 0.5", "", "", ""},
      {mip::udf::UdfStep::Kind::kElementwise, "score2",
       "score * score", "", "", ""},
      {mip::udf::UdfStep::Kind::kReduce, "total", "", "sum", "score", ""},
      {mip::udf::UdfStep::Kind::kReduce, "total2", "", "sum", "score2", ""},
      {mip::udf::UdfStep::Kind::kReduce, "n", "", "count", "score", ""},
  };
  def.outputs = {"total", "total2", "n"};
  return def;
}

}  // namespace

int main() {
  std::printf("=== E10: UDFGenerator — UDF-to-SQL translation and "
              "execution ===\n\n");
  const size_t kRows = 1'000'000;
  Database db("bench");
  LoadData(&db, kRows);
  mip::udf::UdfGenerator generator(&db);
  const mip::udf::UdfDefinition def = MakeDefinition();

  // Translation overhead.
  mip::Stopwatch sw;
  auto generated = generator.Generate(def);
  const double gen_ms = sw.ElapsedMillis();
  if (!generated.ok()) return 1;
  std::printf("translation (validate + lower + SQL + register): %.3f ms, "
              "%zu fused instructions\n",
              gen_ms, generated.ValueOrDie().jit_instructions);
  std::printf("generated SQL: %s\n\n", generated.ValueOrDie().sql[0].c_str());

  // Execution modes over 1M rows.
  std::printf("%-34s %12s %12s\n", "execution path", "wall ms",
              "vs hand SQL");
  std::string hand_sql =
      "SELECT sum(sqrt(abs(x * y)) + exp(x / 10) - y * 0.5) AS total, "
      "sum(pow(sqrt(abs(x * y)) + exp(x / 10) - y * 0.5, 2)) AS total2, "
      "count(x) AS n FROM d";
  sw.Reset();
  auto hand = db.ExecuteSql(hand_sql);
  const double hand_ms = sw.ElapsedMillis();
  if (!hand.ok()) {
    std::fprintf(stderr, "%s\n", hand.status().ToString().c_str());
    return 1;
  }
  std::printf("%-34s %12.1f %12s\n", "hand-written declarative SQL", hand_ms,
              "1.00x");

  const struct {
    mip::udf::UdfExecutionMode mode;
    const char* name;
  } kModes[] = {
      {mip::udf::UdfExecutionMode::kRowInterpreter,
       "UDF, row-at-a-time interpreter"},
      {mip::udf::UdfExecutionMode::kVectorized, "UDF, vectorized"},
      {mip::udf::UdfExecutionMode::kJitFused, "UDF, JIT-fused pipeline"},
  };
  double reference = -1;
  for (const auto& m : kModes) {
    sw.Reset();
    auto out = generator.Execute(def, "d", m.mode);
    const double ms = sw.ElapsedMillis();
    if (!out.ok()) return 1;
    if (reference < 0) reference = out.ValueOrDie().At(0, 0).AsDouble();
    std::printf("%-34s %12.1f %11.2fx\n", m.name, ms, ms / hand_ms);
  }
  std::printf(
      "\nShape vs paper: the generated pipeline executes inside the engine "
      "at\ndeclarative-SQL speed once JIT-fused; the tuple-at-a-time path "
      "(what a\nnaive external UDF would pay) is several times slower — "
      "the motivation for\nthe UDF-to-SQL approach.\n");
  return 0;
}
