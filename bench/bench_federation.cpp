// Experiment E11 — concurrent federated fan-out vs sequential dispatch.
// Simulates an 8-hospital cohort with per-link delivery latency (the
// FaultInjector's delay model) and measures wall-clock per local-run step
// and per training round for both dispatch modes, plus degraded-mode
// behavior when one site is down. The paper's platform federates 40+
// hospitals; sequential dispatch scales wall-clock linearly with cohort
// size, concurrent dispatch with the slowest link.

#include <cmath>
#include <cstdio>

#include "common/stopwatch.h"
#include "engine/table.h"
#include "federation/fault.h"
#include "federation/master.h"
#include "federation/training.h"

namespace {

using mip::engine::DataType;
using mip::engine::Schema;
using mip::engine::Table;
using mip::engine::Value;
using mip::federation::TransferData;
using mip::federation::WorkerContext;

constexpr int kWorkers = 8;
constexpr double kLinkDelayMs = 10.0;
constexpr int kSteps = 10;

void Setup(mip::federation::MasterNode* master) {
  for (int w = 0; w < kWorkers; ++w) {
    const std::string id = "h" + std::to_string(w);
    (void)master->AddWorker(id);
    Schema schema;
    (void)schema.AddField({"x", DataType::kFloat64});
    Table t = Table::Empty(schema);
    for (int r = 0; r < 100; ++r) {
      (void)t.AppendRow({Value::Double(w + r * 0.01)});
    }
    (void)master->LoadDataset(id, "cohort", std::move(t));
  }
  (void)master->functions()->Register(
      "stats",
      [](WorkerContext& ctx,
         const TransferData&) -> mip::Result<TransferData> {
        MIP_ASSIGN_OR_RETURN(Table t, ctx.db().GetTable("cohort"));
        double sum = 0, sum_sq = 0, n = 0;
        for (size_t r = 0; r < t.num_rows(); ++r) {
          const double x = t.At(r, 0).AsDouble();
          sum += x;
          sum_sq += x * x;
          n += 1;
        }
        TransferData out;
        out.PutScalar("sum", sum);
        out.PutScalar("sum_sq", sum_sq);
        out.PutScalar("n", n);
        return out;
      });
}

double RunSteps(mip::federation::MasterNode* master,
                const mip::federation::FanoutPolicy& policy) {
  auto session = master->StartSession({"cohort"});
  session.ValueOrDie().set_fanout_policy(policy);
  mip::Stopwatch sw;
  for (int s = 0; s < kSteps; ++s) {
    auto agg = session.ValueOrDie().LocalRunAndAggregate(
        "stats", TransferData(), mip::federation::AggregationMode::kPlain);
    if (!agg.ok()) {
      std::printf("step failed: %s\n", agg.status().ToString().c_str());
      return -1;
    }
  }
  return sw.ElapsedMillis() / kSteps;
}

}  // namespace

int main() {
  std::printf("=== E11: concurrent fan-out vs sequential dispatch ===\n");
  std::printf("%d workers, %.0f ms injected per-link delay, %d steps\n\n",
              kWorkers, kLinkDelayMs, kSteps);

  mip::federation::MasterNode master;
  Setup(&master);
  mip::federation::FaultInjector injector(20240807);
  mip::federation::FaultSpec link;
  link.delay_ms = kLinkDelayMs;
  link.jitter_ms = 2.0;
  for (int w = 0; w < kWorkers; ++w) {
    injector.SetEndpointFault("h" + std::to_string(w), link);
  }
  master.bus().set_fault_injector(&injector);

  mip::federation::FanoutPolicy sequential;
  sequential.max_concurrency = 1;
  mip::federation::FanoutPolicy concurrent;  // defaults: all lanes open

  const double seq_ms = RunSteps(&master, sequential);
  const double conc_ms = RunSteps(&master, concurrent);
  std::printf("sequential dispatch: %8.1f ms/step\n", seq_ms);
  std::printf("concurrent dispatch: %8.1f ms/step\n", conc_ms);
  std::printf("speedup:             %8.2fx (ideal %dx: wall-clock bound by "
              "slowest link)\n\n",
              seq_ms / conc_ms, kWorkers);

  // Degraded mode: one site down; quorum keeps the session alive.
  mip::federation::FaultSpec dead;
  dead.fail_first_n = 1 << 20;
  injector.SetEndpointFault("h3", dead);
  mip::federation::FanoutPolicy degraded;
  degraded.max_attempts = 2;
  degraded.retry_backoff_ms = 1.0;
  degraded.min_workers = kWorkers - 1;
  auto session = master.StartSession({"cohort"});
  session.ValueOrDie().set_fanout_policy(degraded);
  mip::Stopwatch sw;
  auto agg = session.ValueOrDie().LocalRunAndAggregate(
      "stats", TransferData(), mip::federation::AggregationMode::kPlain);
  std::printf("degraded cohort (1 of %d sites down, quorum %d): %s in "
              "%.1f ms, %zu excluded\n",
              kWorkers, kWorkers - 1,
              agg.ok() ? "completed" : agg.status().ToString().c_str(),
              sw.ElapsedMillis(),
              session.ValueOrDie().excluded_workers().size());

  std::printf("\nShape vs paper: sequential wall-clock grows linearly with "
              "cohort size;\nconcurrent dispatch stays flat at the slowest "
              "link, and a failed hospital\ncosts one retry budget instead "
              "of the whole study.\n");
  return seq_ms / conc_ms >= 2.0 ? 0 : 1;
}
